// Package darksim is a from-scratch Go reproduction of "New Trends in
// Dark Silicon" (Henkel, Khdr, Pagani, Shafique — DAC 2015): the revised,
// temperature-aware dark-silicon estimation methodology and every
// substrate its tool flow depends on.
//
// The repository root carries the benchmark harness (bench_test.go, one
// benchmark per paper table/figure plus the ablation studies); the
// library lives under internal/ and the executables under cmd/. See
// README.md for the architecture, DESIGN.md for the per-experiment index
// and EXPERIMENTS.md for paper-vs-measured results.
package darksim
