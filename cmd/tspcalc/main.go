// Command tspcalc prints the Thermal Safe Power table for a platform:
// the worst-case per-core power budget as a function of the number of
// active cores (Pagani et al., the §5 concept of the paper).
//
// Usage:
//
//	tspcalc -node 16 -cores 100 -tcrit 80
//	tspcalc -node 11 -cores 198 -max 64
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"darksim/internal/core"
	"darksim/internal/report"
	"darksim/internal/tech"
	"darksim/internal/tsp"
)

func main() {
	node := flag.Int("node", 16, "technology node in nm (22, 16, 11, 8)")
	cores := flag.Int("cores", 100, "number of cores on the chip")
	tcrit := flag.Float64("tcrit", core.DefaultTDTM, "critical temperature in °C")
	max := flag.Int("max", 0, "largest active-core count to tabulate (default: all cores)")
	step := flag.Int("step", 1, "tabulation step")
	flag.Parse()

	if err := run(tech.Node(*node), *cores, *tcrit, *max, *step); err != nil {
		fmt.Fprintf(os.Stderr, "tspcalc: %v\n", err)
		os.Exit(1)
	}
}

func run(node tech.Node, cores int, tcrit float64, max, step int) error {
	p, err := core.NewPlatformWith(node, core.Options{Cores: cores, TDTM: tcrit})
	if err != nil {
		return err
	}
	calc, err := tsp.New(p.Thermal, tcrit)
	if err != nil {
		return err
	}
	if max <= 0 || max > cores {
		max = cores
	}
	if step <= 0 {
		step = 1
	}
	t := &report.Table{
		Title:   fmt.Sprintf("Worst-case TSP, %s, %d cores, Tcrit = %.1f °C", node, cores, tcrit),
		Columns: []string{"active cores", "TSP/core [W]", "total [W]"},
	}
	for n := step; n <= max; n += step {
		entry, _, err := calc.WorstCase(context.Background(), n)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", entry),
			fmt.Sprintf("%.1f", entry*float64(n)))
	}
	return t.Render(os.Stdout)
}
