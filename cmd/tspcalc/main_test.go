package main

import (
	"testing"

	"darksim/internal/tech"
)

func TestRunTable(t *testing.T) {
	// run prints to stdout; correctness of the numbers is covered by
	// internal/tsp — here we exercise the CLI path end to end.
	if err := run(tech.Node16, 100, 80, 10, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunClampsAndDefaults(t *testing.T) {
	// max > cores clamps; step <= 0 resets to 1.
	if err := run(tech.Node16, 16, 80, 999, -3); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(tech.Node(14), 100, 80, 10, 5); err == nil {
		t.Errorf("unknown node should error")
	}
	if err := run(tech.Node16, 100, 30, 10, 5); err == nil {
		t.Errorf("threshold below ambient should error")
	}
}
