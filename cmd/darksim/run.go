package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"darksim/internal/jobs"
)

// Exit codes for `darksim run -follow`, mapping the run's terminal state:
// done exits 0, failed exits 1, cancelled exits 3 (2 is flag misuse).
const (
	exitOK        = 0
	exitFailed    = 1
	exitCancelled = 3
)

// runSubmission mirrors the POST /v1/runs request body.
type runSubmission struct {
	Experiment string          `json:"experiment,omitempty"`
	Duration   float64         `json:"duration,omitempty"`
	Scenario   json.RawMessage `json:"scenario,omitempty"`
}

// submittedRun mirrors the POST /v1/runs response.
type submittedRun struct {
	jobs.Run
	Deduped bool `json:"deduped"`
}

// runRun submits a computation to a darksimd daemon as an asynchronous
// run and, with -follow, streams its events — rendering each partial
// result as it lands — until the run reaches a terminal state. The
// returned code is the process exit code.
func runRun(ctx context.Context, args []string, format string, w io.Writer) (int, error) {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "darksimd base URL")
	specFile := fs.String("spec", "", "JSON scenario spec file ('-' for stdin) to run instead of an experiment")
	duration := fs.Float64("duration", 0, "override transient duration in seconds (fig11–fig13)")
	follow := fs.Bool("follow", false, "stream the run's events until it finishes; exit code reflects the terminal state")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: darksim run [-addr url] [-duration s] [-follow] <experiment>\n"+
			"       darksim run [-addr url] [-follow] -spec file.json\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	var sub runSubmission
	switch {
	case *specFile != "" && fs.NArg() != 0:
		fs.Usage()
		return 2, fmt.Errorf("run: -spec and an experiment name are mutually exclusive")
	case *specFile != "":
		data, err := readSpecFile(*specFile)
		if err != nil {
			return exitFailed, err
		}
		sub.Scenario = data
	case fs.NArg() == 1:
		sub.Experiment = fs.Arg(0)
		sub.Duration = *duration
	default:
		fs.Usage()
		return 2, fmt.Errorf("run: exactly one experiment name (or -spec) is required")
	}

	base := strings.TrimRight(*addr, "/")
	client := &http.Client{}
	run, err := submitRun(ctx, client, base, sub)
	if err != nil {
		return exitFailed, err
	}
	joined := ""
	if run.Deduped {
		joined = " (joined an identical in-flight run)"
	}
	fmt.Fprintf(w, "run %s: %s%s\n", run.ID, run.State, joined)
	if !*follow {
		return exitOK, nil
	}
	state, err := followRun(ctx, client, base, run.ID, run.LastSeq, format, w)
	if err != nil {
		return exitFailed, err
	}
	switch state {
	case jobs.StateDone:
		return exitOK, nil
	case jobs.StateCancelled:
		return exitCancelled, nil
	default:
		return exitFailed, nil
	}
}

// submitRun POSTs the submission and decodes the accepted run snapshot.
func submitRun(ctx context.Context, client *http.Client, base string, sub runSubmission) (*submittedRun, error) {
	body, err := json.Marshal(sub)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("run: submitting to %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("run: %s: %s", resp.Status, serverError(resp.Body))
	}
	var run submittedRun
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		return nil, fmt.Errorf("run: decoding response: %w", err)
	}
	return &run, nil
}

// followRun streams the run's SSE feed to a terminal state, reconnecting
// with the last seen event id after a dropped connection, exactly as a
// browser EventSource would.
func followRun(ctx context.Context, client *http.Client, base, id string, lastSeq int64, format string, w io.Writer) (jobs.State, error) {
	stalls := 0
	for {
		state, seq, err := streamRun(ctx, client, base, id, lastSeq, format, w)
		if state.Terminal() {
			return state, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		if seq > lastSeq {
			stalls = 0
		} else if stalls++; stalls > 5 {
			if err == nil {
				err = fmt.Errorf("run: stream of %s ended %d times with no progress past seq %d", id, stalls, lastSeq)
			}
			return "", err
		}
		lastSeq = seq
		select {
		case <-time.After(500 * time.Millisecond):
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// streamRun consumes one SSE connection, printing events as they
// arrive. It returns the terminal state if one was delivered, and the
// last event sequence seen (the resume point for a reconnect).
func streamRun(ctx context.Context, client *http.Client, base, id string, lastSeq int64, format string, w io.Writer) (jobs.State, int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		return "", lastSeq, err
	}
	if lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(lastSeq, 10))
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", lastSeq, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", lastSeq, fmt.Errorf("run: events of %s: %s: %s", id, resp.Status, serverError(resp.Body))
	}
	sc := bufio.NewScanner(resp.Body)
	// Terminal events carry full result tables on one data line.
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data: "):
			data = append([]byte(nil), line[len("data: "):]...)
		case line == "" && data != nil:
			var ev jobs.Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return "", lastSeq, fmt.Errorf("run: undecodable event: %w", err)
			}
			data = nil
			lastSeq = ev.Seq
			if err := printEvent(ev, format, w); err != nil {
				return "", lastSeq, err
			}
			if ev.Type == jobs.EventState && ev.State.Terminal() {
				return ev.State, lastSeq, nil
			}
		}
	}
	return "", lastSeq, sc.Err()
}

// printEvent renders one run event: JSON passes the event through
// verbatim; text renders partial-result tables as they land and one
// status line per state change.
func printEvent(ev jobs.Event, format string, w io.Writer) error {
	if format == "json" {
		enc := json.NewEncoder(w)
		return enc.Encode(ev)
	}
	switch ev.Type {
	case jobs.EventPoint:
		if ev.Table != nil {
			if err := ev.Table.Render(w); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "point %d/%d\n\n", ev.Done, ev.Total)
	case jobs.EventState:
		if ev.Error != "" {
			fmt.Fprintf(w, "state: %s (%s)\n", ev.State, ev.Error)
		} else {
			fmt.Fprintf(w, "state: %s\n", ev.State)
		}
		if ev.State == jobs.StateDone {
			fmt.Fprintln(w)
			for _, t := range ev.Tables {
				if err := t.Render(w); err != nil {
					return err
				}
				fmt.Fprintln(w)
			}
		}
	}
	return nil
}

// serverError extracts the {"error": ...} payload of a failed response.
func serverError(r io.Reader) string {
	body, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil {
		return err.Error()
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}
