package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"darksim/internal/policy"
)

// runPolicy races management policies head-to-head in the sandbox: a
// workload (a pack scenario via -pack, or a full policy spec via -spec),
// the registered policies (or the spec's selection), assertion-checked
// traces, and an optional tuning pass. The exit status reflects the
// assertion engine: a violated trace exits non-zero even though the
// frontier still prints, so scripted sweeps notice unsafe policies.
func runPolicy(ctx context.Context, args []string, format string, w io.Writer) error {
	fs := flag.NewFlagSet("policy", flag.ContinueOnError)
	specFile := fs.String("spec", "", "JSON policy-sandbox spec file ('-' for stdin)")
	pack := fs.String("pack", "", "race on a built-in pack scenario by name")
	list := fs.Bool("list", false, "list the registered policies")
	policies := fs.String("policies", "", "comma-separated policies to race with -pack (default constant,boost,dsrem)")
	duration := fs.Float64("duration", 0, "simulated seconds per policy with -pack (default 0.5)")
	tune := fs.String("tune", "", "hill-climb this policy's parameters after the head-to-head")
	seed := fs.Int64("seed", 0, "tuner seed with -tune (default 1)")
	budget := fs.Int("budget", 0, "tuner evaluation budget with -tune (default 12)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: darksim policy -spec file.json | -pack <pack scenario> [-policies a,b,c] [-tune name] | -list\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("policy takes no positional arguments")
	}
	if *list {
		for _, name := range policy.Names() {
			p, err := policy.ByName(name, nil)
			if err != nil {
				return err
			}
			tunable := " "
			if _, ok := p.(policy.Tunable); ok {
				tunable = "*"
			}
			fmt.Fprintf(w, "%-12s %s %s\n", name, tunable, p.Info())
		}
		fmt.Fprintln(w, "\n(* = tunable with -tune)")
		return nil
	}

	var spec policy.Spec
	switch {
	case *specFile != "" && *pack != "":
		return fmt.Errorf("policy: -spec and -pack are mutually exclusive")
	case *specFile != "":
		data, err := readSpecFile(*specFile)
		if err != nil {
			return err
		}
		if spec, err = policy.Parse(data); err != nil {
			return err
		}
	case *pack != "":
		spec = policy.Spec{Pack: *pack, DurationS: *duration, Tune: *tune, Seed: *seed, Budget: *budget}
		if *policies != "" {
			for _, name := range splitList(*policies) {
				spec.Policies = append(spec.Policies, policy.PolicyConfig{Name: name})
			}
		}
	default:
		fs.Usage()
		return fmt.Errorf("policy: one of -spec, -pack or -list is required")
	}

	res, err := policy.Execute(ctx, spec)
	if err != nil {
		return err
	}
	tables := res.Tables()
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(output{ID: "policy", Tables: tables}); err != nil {
			return err
		}
	} else {
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	}
	if res.Violated() {
		return fmt.Errorf("policy: assertion violations or run errors (see tables above)")
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}
