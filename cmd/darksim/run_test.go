package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"darksim/internal/jobs"
	"darksim/internal/report"
)

// fakeDaemon is a minimal darksimd stand-in: accepts one run submission
// and serves its canned event log over SSE, honoring Last-Event-ID. When
// dropAfter > 0, the first events connection is severed after that many
// frames, forcing the client to reconnect with its resume id.
type fakeDaemon struct {
	t         *testing.T
	events    []jobs.Event
	dropAfter int
	conns     atomic.Int64
	resumes   atomic.Int64 // connections that carried Last-Event-ID
}

func (d *fakeDaemon) server() *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		var req runSubmission
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		resp := submittedRun{}
		resp.ID = "r1"
		resp.State = jobs.StateQueued
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /v1/runs/r1/events", func(w http.ResponseWriter, r *http.Request) {
		conn := d.conns.Add(1)
		after := int64(0)
		if v := r.Header.Get("Last-Event-ID"); v != "" {
			d.resumes.Add(1)
			fmt.Sscanf(v, "%d", &after)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		sent := 0
		for _, ev := range d.events {
			if ev.Seq <= after {
				continue
			}
			if conn == 1 && d.dropAfter > 0 && sent == d.dropAfter {
				// Sever the stream mid-run (proxy hiccup, daemon pause).
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				d.t.Error(err)
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			sent++
		}
	})
	return httptest.NewServer(mux)
}

func runEvents(terminal jobs.State, errMsg string) []jobs.Event {
	tbl := &report.Table{Title: "frag", Columns: []string{"v"}, Rows: [][]string{{"1"}}}
	return []jobs.Event{
		{Seq: 1, Type: jobs.EventState, State: jobs.StateRunning},
		{Seq: 2, Type: jobs.EventPoint, Done: 1, Total: 2, Table: tbl},
		{Seq: 3, Type: jobs.EventPoint, Done: 2, Total: 2, Table: tbl},
		{Seq: 4, Type: jobs.EventState, State: terminal, Error: errMsg,
			Tables: []*report.Table{tbl}, Done: 2, Total: 2},
	}
}

func TestRunFollowStreamsToTerminalState(t *testing.T) {
	d := &fakeDaemon{t: t, events: runEvents(jobs.StateDone, "")}
	ts := d.server()
	defer ts.Close()

	var out bytes.Buffer
	code, err := runRun(context.Background(), []string{"-addr", ts.URL, "-follow", "fig12"}, "text", &out)
	if err != nil || code != exitOK {
		t.Fatalf("runRun = code %d, err %v\noutput:\n%s", code, err, out.String())
	}
	for _, want := range []string{"run r1", "point 1/2", "point 2/2", "state: done"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if d.resumes.Load() != 0 {
		t.Errorf("unbroken stream reconnected %d times", d.resumes.Load())
	}
}

func TestRunFollowReconnectsWithLastEventID(t *testing.T) {
	d := &fakeDaemon{t: t, events: runEvents(jobs.StateDone, ""), dropAfter: 2}
	ts := d.server()
	defer ts.Close()

	var out bytes.Buffer
	code, err := runRun(context.Background(), []string{"-addr", ts.URL, "-follow", "fig12"}, "text", &out)
	if err != nil || code != exitOK {
		t.Fatalf("runRun after drop = code %d, err %v\noutput:\n%s", code, err, out.String())
	}
	if d.conns.Load() < 2 || d.resumes.Load() < 1 {
		t.Fatalf("conns %d, resumes %d: client did not reconnect with Last-Event-ID",
			d.conns.Load(), d.resumes.Load())
	}
	// No event is duplicated across the reconnect.
	if n := strings.Count(out.String(), "point 1/2"); n != 1 {
		t.Errorf("point 1 printed %d times across reconnect, want once", n)
	}
	if !strings.Contains(out.String(), "state: done") {
		t.Errorf("terminal state missing after reconnect:\n%s", out.String())
	}
}

func TestRunFollowExitCodes(t *testing.T) {
	cases := []struct {
		state jobs.State
		code  int
	}{
		{jobs.StateDone, exitOK},
		{jobs.StateFailed, exitFailed},
		{jobs.StateCancelled, exitCancelled},
	}
	for _, c := range cases {
		d := &fakeDaemon{t: t, events: runEvents(c.state, "boom")}
		ts := d.server()
		var out bytes.Buffer
		code, err := runRun(context.Background(), []string{"-addr", ts.URL, "-follow", "fig12"}, "text", &out)
		ts.Close()
		if err != nil || code != c.code {
			t.Errorf("%s: code %d err %v, want %d", c.state, code, err, c.code)
		}
	}
}

func TestRunWithoutFollowSubmitsAndReturns(t *testing.T) {
	d := &fakeDaemon{t: t, events: runEvents(jobs.StateDone, "")}
	ts := d.server()
	defer ts.Close()

	var out bytes.Buffer
	code, err := runRun(context.Background(), []string{"-addr", ts.URL, "fig12"}, "text", &out)
	if err != nil || code != exitOK {
		t.Fatalf("runRun = code %d, err %v", code, err)
	}
	if !strings.Contains(out.String(), "run r1: queued") {
		t.Errorf("submission output missing run id/state:\n%s", out.String())
	}
	if d.conns.Load() != 0 {
		t.Errorf("non-follow submission opened %d event streams", d.conns.Load())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if code, err := runRun(context.Background(), nil, "text", &out); code != 2 || err == nil {
		t.Errorf("no args = code %d err %v, want usage failure", code, err)
	}
	if code, err := runRun(context.Background(), []string{"-spec", "x.json", "fig12"}, "text", &out); code != 2 || err == nil {
		t.Errorf("-spec plus experiment = code %d err %v, want usage failure", code, err)
	}
}
