// Command darksim runs the paper-reproduction experiments and prints the
// rows and series the paper's tables and figures report.
//
// Usage:
//
//	darksim list                 # list available experiments
//	darksim fig5                 # run one experiment
//	darksim all                  # run everything (transients included)
//	darksim -duration 20 fig11   # shorten the transient experiments
//	darksim -parallel 4 all      # run 4 figures concurrently
//	darksim -timeout 10m all     # abort a run that exceeds 10 minutes
//
// Transient experiments (fig11–fig13) default to the paper's run lengths;
// -duration trades fidelity for speed. With `all` and `ablations` the
// independent experiments run concurrently (bounded by -parallel), but
// their outputs are printed in registry order, byte-identical to a
// sequential run.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"darksim/internal/experiments"
	"darksim/internal/runner"
)

func main() {
	duration := flag.Float64("duration", 0, "override transient duration in seconds (fig11–fig13)")
	parallel := flag.Int("parallel", 0, "experiments to run concurrently for 'all'/'ablations' (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long, e.g. 10m (0 = no timeout)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		for _, e := range experiments.AblationRegistry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
	case "all":
		if err := runAll(ctx, experiments.Registry(), *parallel, *duration, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	case "ablations":
		if err := runAll(ctx, experiments.AblationRegistry(), *parallel, *duration, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := runOne(ctx, args[0], *duration); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	}
}

// runAll runs every experiment with up to `parallel` running concurrently
// and writes the rendered outputs to w in registry order regardless of
// completion order. On failure the outputs that did complete are still
// written (in order, with gaps) before the first failure is returned.
func runAll(ctx context.Context, entries []experiments.Experiment, parallel int, duration float64, w io.Writer) error {
	outs, err := runner.Map(ctx, entries, runner.Options{Workers: parallel},
		func(ctx context.Context, _ int, e experiments.Experiment) ([]byte, error) {
			// The sweep experiments already prefix their errors with the
			// figure id; add it only when missing.
			fail := func(err error) ([]byte, error) {
				if strings.HasPrefix(err.Error(), e.ID+":") {
					return nil, err
				}
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			var buf bytes.Buffer
			r, rerr := run(ctx, e.ID, duration)
			if rerr != nil {
				return fail(rerr)
			}
			fmt.Fprintf(&buf, "==== %s ====\n", e.ID)
			if rerr := r.Render(&buf); rerr != nil {
				return fail(rerr)
			}
			fmt.Fprintln(&buf)
			return buf.Bytes(), nil
		})
	for _, out := range outs {
		if out != nil {
			if _, werr := w.Write(out); werr != nil {
				return werr
			}
		}
	}
	return err
}

func runOne(ctx context.Context, id string, duration float64) error {
	r, err := run(ctx, id, duration)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s ====\n", id)
	if err := r.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// run dispatches with the optional duration override for the transient
// experiments.
func run(ctx context.Context, id string, duration float64) (experiments.Renderer, error) {
	if duration > 0 {
		switch id {
		case "fig11":
			return experiments.Fig11(ctx, experiments.Fig11Options{DurationS: duration})
		case "fig12":
			return experiments.Fig12(ctx, experiments.Fig12Options{DurationS: duration})
		case "fig13":
			return experiments.Fig13(ctx, experiments.Fig13Options{DurationS: duration})
		}
	}
	e, err := experiments.ByID(id)
	if err != nil {
		for _, ab := range experiments.AblationRegistry() {
			if ab.ID == id {
				return ab.Run(ctx)
			}
		}
		return nil, err
	}
	return e.Run(ctx)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: darksim [-duration s] [-parallel n] [-timeout d] <experiment|all|ablations|list>

Reproduces the tables and figures of "New Trends in Dark Silicon"
(Henkel, Khdr, Pagani, Shafique — DAC 2015), plus ablation studies of
this implementation's design choices.

`)
	flag.PrintDefaults()
}
