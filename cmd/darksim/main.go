// Command darksim runs the paper-reproduction experiments and prints the
// rows and series the paper's tables and figures report.
//
// Usage:
//
//	darksim list                 # list available experiments
//	darksim fig5                 # run one experiment
//	darksim all                  # run everything (transients included)
//	darksim -duration 20 fig11   # shorten the transient experiments
//	darksim -parallel 4 all      # run 4 figures concurrently
//	darksim -timeout 10m all     # abort a run that exceeds 10 minutes
//	darksim -format json fig1    # structured output (report.Table JSON)
//	darksim verify               # check figures against the golden corpus
//	darksim verify -update       # regenerate the golden corpus
//	darksim bench                # write the perf-trajectory JSON report
//	darksim run -follow fig12    # submit to a darksimd daemon and stream
//
// `darksim run` submits the computation to a running darksimd as an
// asynchronous run; -follow streams its per-point partial results over
// SSE (reconnecting with Last-Event-ID after drops) and exits 0/1/3 for
// done/failed/cancelled.
//
// Transient experiments (fig11–fig13) default to the paper's run lengths;
// -duration trades fidelity for speed. With `all` and `ablations` the
// independent experiments run concurrently (bounded by -parallel), but
// their outputs are printed in registry order, byte-identical to a
// sequential run. On -timeout expiry the exit is non-zero and the error
// names the figures that did not complete.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"darksim/internal/bench"
	"darksim/internal/experiments"
	"darksim/internal/report"
	"darksim/internal/runner"
	"darksim/internal/scenario"
	"darksim/internal/verify"
)

// output is one experiment's result in either representation: rendered
// text, or the structured tables the JSON format marshals.
type output struct {
	ID     string          `json:"id"`
	Tables []*report.Table `json:"tables,omitempty"`
	text   []byte
}

func main() {
	duration := flag.Float64("duration", 0, "override transient duration in seconds (fig11–fig13)")
	parallel := flag.Int("parallel", 0, "experiments to run concurrently for 'all'/'ablations' (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long, e.g. 10m (0 = no timeout)")
	format := flag.String("format", "text", "output format: text or json")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	subcommands := map[string]bool{"verify": true, "bench": true, "scenario": true, "run": true, "policy": true}
	if len(args) == 0 || (len(args) != 1 && !subcommands[args[0]]) || (*format != "text" && *format != "json") {
		usage()
		os.Exit(2)
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	switch args[0] {
	case "verify":
		if err := runVerify(ctx, args[1:], *parallel, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
		return
	case "bench":
		if err := runBench(ctx, args[1:], os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
		return
	case "scenario":
		if err := runScenario(ctx, args[1:], *format, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	case "run":
		code, err := runRun(ctx, args[1:], *format, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
		}
		os.Exit(code)
	case "policy":
		if err := runPolicy(ctx, args[1:], *format, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		for _, e := range experiments.AblationRegistry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
	case "all":
		if err := runAll(ctx, experiments.Registry(), *parallel, *duration, *format, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	case "ablations":
		if err := runAll(ctx, experiments.AblationRegistry(), *parallel, *duration, *format, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	default:
		if err := runOne(ctx, args[0], *duration, *format, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	}
}

// runVerify parses the verify subcommand's own flags and runs the
// three-layer verification pipeline, returning an error naming the
// failing figure/cell when any check fails.
func runVerify(ctx context.Context, args []string, parallel int, w io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	update := fs.Bool("update", false, "regenerate the golden corpus instead of checking it")
	golden := fs.String("golden", experiments.GoldenDir, "directory -update writes golden files to")
	figs := fs.String("figs", "", "comma-separated figure subset, e.g. fig1,fig5 (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: darksim verify [-update] [-golden dir] [-figs fig1,fig2,...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("verify takes no positional arguments")
	}
	opt := verify.Options{
		Update:    *update,
		GoldenDir: *golden,
		Workers:   parallel,
		Out:       w,
	}
	if *figs != "" {
		for _, id := range strings.Split(*figs, ",") {
			if id = strings.TrimSpace(id); id != "" {
				opt.Figures = append(opt.Figures, id)
			}
		}
	}
	fails, err := verify.Run(ctx, opt)
	if err != nil {
		return err
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(w, "FAIL %s\n", f)
		}
		return fmt.Errorf("verification failed: %d check(s)", len(fails))
	}
	if !*update {
		fmt.Fprintln(w, "verify: all checks passed")
	}
	return nil
}

// runScenario compiles and evaluates a declarative chip/workload spec —
// from a JSON file (-spec), or the built-in Charm exemplar pack (-name,
// -list) — through the same platform/thermal machinery the figures use.
func runScenario(ctx context.Context, args []string, format string, w io.Writer) error {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	specFile := fs.String("spec", "", "JSON scenario spec file ('-' for stdin)")
	name := fs.String("name", "", "run a built-in pack scenario by name")
	list := fs.Bool("list", false, "list the built-in scenario pack")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: darksim scenario -spec file.json | -name <pack scenario> | -list\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("scenario takes no positional arguments")
	}
	if *list {
		for _, s := range scenario.Pack() {
			h, err := scenario.Hash(s)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-30s %s %4d cores  TDP %.0f W  %s\n",
				s.Name, fmt.Sprintf("%dnm", s.NodeNM), s.TotalCores(), s.TDPW, h[:12])
		}
		return nil
	}
	var spec scenario.Spec
	switch {
	case *specFile != "" && *name != "":
		return fmt.Errorf("scenario: -spec and -name are mutually exclusive")
	case *specFile != "":
		data, err := readSpecFile(*specFile)
		if err != nil {
			return err
		}
		if spec, err = scenario.Parse(data); err != nil {
			return err
		}
	case *name != "":
		var err error
		if spec, err = scenario.PackByName(*name); err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("scenario: one of -spec, -name or -list is required")
	}
	sc, err := scenario.Compile(spec)
	if err != nil {
		return err
	}
	res, err := sc.Evaluate(ctx)
	if err != nil {
		return err
	}
	tables := res.Tables()
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(output{ID: "scenario", Tables: tables})
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// readSpecFile loads a spec document from a path or stdin ("-").
func readSpecFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// runBench parses the bench subcommand's flags and runs the perf harness:
// dense-vs-sparse thermal-solver and TSP micro-benchmarks plus (by
// default) one benchmark per paper figure, written as a JSON report for
// cross-PR perf tracking.
func runBench(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "", "file the JSON report is written to ('-' for stdout; empty writes no report)")
	benchtime := fs.String("benchtime", "1x", "per-benchmark time or iteration budget (testing -benchtime syntax)")
	figures := fs.Bool("figures", true, "include the per-figure experiment benchmarks")
	compare := fs.String("compare", "", "baseline JSON report to diff against; headline regressions fail the run")
	threshold := fs.Float64("threshold", bench.DefaultRegressionThreshold,
		"new/old ns-per-op ratio above which a headline benchmark fails -compare")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the benchmark run to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: darksim bench [-out file] [-benchtime 1x|2s] [-figures=false] [-compare old.json [-threshold 1.25]] [-cpuprofile cpu.out] [-memprofile mem.out]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("bench takes no positional arguments")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "darksim: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "darksim: memprofile: %v\n", err)
			}
		}()
	}
	var baseline *bench.Report
	if *compare != "" {
		// Load before benchmarking so a bad path fails in milliseconds.
		var err error
		if baseline, err = bench.ReadReport(*compare); err != nil {
			return err
		}
	}
	// testing.Benchmark reads the test.benchtime flag; register the
	// testing flags and set it explicitly so a non-test binary gets a
	// deterministic budget instead of the 1 s default.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		return fmt.Errorf("invalid -benchtime %q: %w", *benchtime, err)
	}
	rep, err := bench.Run(ctx, bench.Options{Figures: *figures, Out: w})
	if err != nil {
		return err
	}
	switch *out {
	case "":
	case "-":
		if err := rep.WriteJSON(w); err != nil {
			return err
		}
	default:
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "bench: report written to %s\n", *out)
	}
	if baseline != nil {
		deltas, cmpErr := bench.Compare(baseline, rep, *threshold)
		fmt.Fprintf(w, "bench: comparing against %s (threshold %.2fx)\n", *compare, *threshold)
		bench.WriteDeltas(w, deltas, *threshold)
		if cmpErr != nil {
			return cmpErr
		}
		fmt.Fprintln(w, "bench: no headline regressions")
	}
	return nil
}

// runAll runs every experiment with up to `parallel` running concurrently
// and writes the outputs to w in registry order regardless of completion
// order. On failure the outputs that did complete are still written (in
// order, with gaps) before the first failure is returned; on timeout the
// returned error names every figure that did not complete.
func runAll(ctx context.Context, entries []experiments.Experiment, parallel int, duration float64, format string, w io.Writer) error {
	outs, err := runner.Map(ctx, entries, runner.Options{Workers: parallel},
		func(ctx context.Context, _ int, e experiments.Experiment) (*output, error) {
			// The sweep experiments already prefix their errors with the
			// figure id; add it only when missing.
			fail := func(err error) error {
				if strings.HasPrefix(err.Error(), e.ID+":") {
					return err
				}
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			r, rerr := runEntry(ctx, e, duration)
			if rerr != nil {
				return nil, fail(rerr)
			}
			o, rerr := makeOutput(e.ID, r, format)
			if rerr != nil {
				return nil, fail(rerr)
			}
			return o, nil
		})
	if werr := writeOutputs(w, outs, format); werr != nil {
		return werr
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		var missing []string
		for i, out := range outs {
			if out == nil {
				missing = append(missing, entries[i].ID)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("timed out before %d figure(s) completed: %s: %w",
				len(missing), strings.Join(missing, ", "), context.DeadlineExceeded)
		}
	}
	return err
}

// makeOutput realizes one result in the requested format.
func makeOutput(id string, r experiments.Renderer, format string) (*output, error) {
	o := &output{ID: id}
	if format == "json" {
		tables, ok := experiments.TablesOf(r)
		if !ok {
			return nil, fmt.Errorf("%s has no structured output", id)
		}
		o.Tables = tables
		return o, nil
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "==== %s ====\n", id)
	if err := r.Render(&buf); err != nil {
		return nil, err
	}
	fmt.Fprintln(&buf)
	o.text = buf.Bytes()
	return o, nil
}

// writeOutputs writes the completed outputs in order: concatenated text,
// or one JSON array.
func writeOutputs(w io.Writer, outs []*output, format string) error {
	if format == "json" {
		done := make([]*output, 0, len(outs))
		for _, o := range outs {
			if o != nil {
				done = append(done, o)
			}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(done)
	}
	for _, o := range outs {
		if o != nil {
			if _, err := w.Write(o.text); err != nil {
				return err
			}
		}
	}
	return nil
}

func runOne(ctx context.Context, id string, duration float64, format string, w io.Writer) error {
	r, err := run(ctx, id, duration)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && !strings.HasPrefix(err.Error(), id+":") && !strings.HasPrefix(err.Error(), id+" ") {
			return fmt.Errorf("timed out before %s completed: %w", id, err)
		}
		return err
	}
	o, err := makeOutput(id, r, format)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(o)
	}
	_, err = w.Write(o.text)
	return err
}

// runEntry runs one registry entry, honoring the duration override for
// the transient experiments.
func runEntry(ctx context.Context, e experiments.Experiment, duration float64) (experiments.Renderer, error) {
	return experiments.RunWithDuration(ctx, e, duration)
}

// run dispatches by id with the optional duration override for the
// transient experiments.
func run(ctx context.Context, id string, duration float64) (experiments.Renderer, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		for _, ab := range experiments.AblationRegistry() {
			if ab.ID == id {
				return ab.Run(ctx)
			}
		}
		return nil, err
	}
	return experiments.RunWithDuration(ctx, e, duration)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: darksim [-duration s] [-parallel n] [-timeout d] [-format text|json] <experiment|all|ablations|list>
       darksim verify [-update] [-golden dir] [-figs fig1,fig2,...]
       darksim bench [-out file] [-benchtime 1x|2s] [-figures=false]
       darksim scenario -spec file.json | -name <pack scenario> | -list
       darksim policy -spec file.json | -pack <pack scenario> [-policies a,b,c] [-tune name] | -list
       darksim run [-addr url] [-duration s] [-follow] <experiment>|-spec file.json

Reproduces the tables and figures of "New Trends in Dark Silicon"
(Henkel, Khdr, Pagani, Shafique — DAC 2015), plus ablation studies of
this implementation's design choices. `+"`darksim verify`"+` recomputes
every figure and checks it against the embedded golden corpus, the
paper's physics invariants, and differential text/CSV/JSON/HTTP
renderings.

`)
	flag.PrintDefaults()
}
