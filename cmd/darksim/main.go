// Command darksim runs the paper-reproduction experiments and prints the
// rows and series the paper's tables and figures report.
//
// Usage:
//
//	darksim list                 # list available experiments
//	darksim fig5                 # run one experiment
//	darksim all                  # run everything (transients included)
//	darksim -duration 20 fig11   # shorten the transient experiments
//
// Transient experiments (fig11–fig13) default to the paper's run lengths;
// -duration trades fidelity for speed.
package main

import (
	"flag"
	"fmt"
	"os"

	"darksim/internal/experiments"
)

func main() {
	duration := flag.Float64("duration", 0, "override transient duration in seconds (fig11–fig13)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) != 1 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.Registry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
		for _, e := range experiments.AblationRegistry() {
			fmt.Printf("%-12s %s\n", e.ID, e.Description)
		}
	case "all":
		for _, e := range experiments.Registry() {
			if err := runOne(e.ID, *duration); err != nil {
				fmt.Fprintf(os.Stderr, "darksim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	case "ablations":
		for _, e := range experiments.AblationRegistry() {
			if err := runOne(e.ID, *duration); err != nil {
				fmt.Fprintf(os.Stderr, "darksim: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	default:
		if err := runOne(args[0], *duration); err != nil {
			fmt.Fprintf(os.Stderr, "darksim: %v\n", err)
			os.Exit(1)
		}
	}
}

func runOne(id string, duration float64) error {
	r, err := run(id, duration)
	if err != nil {
		return err
	}
	fmt.Printf("==== %s ====\n", id)
	if err := r.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return nil
}

// run dispatches with the optional duration override for the transient
// experiments.
func run(id string, duration float64) (experiments.Renderer, error) {
	if duration > 0 {
		switch id {
		case "fig11":
			return experiments.Fig11(experiments.Fig11Options{DurationS: duration})
		case "fig12":
			return experiments.Fig12(experiments.Fig12Options{DurationS: duration})
		case "fig13":
			return experiments.Fig13(experiments.Fig13Options{DurationS: duration})
		}
	}
	e, err := experiments.ByID(id)
	if err != nil {
		for _, ab := range experiments.AblationRegistry() {
			if ab.ID == id {
				return ab.Run()
			}
		}
		return nil, err
	}
	return e.Run()
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: darksim [-duration s] <experiment|all|ablations|list>

Reproduces the tables and figures of "New Trends in Dark Silicon"
(Henkel, Khdr, Pagani, Shafique — DAC 2015), plus ablation studies of
this implementation's design choices.

`)
	flag.PrintDefaults()
}
