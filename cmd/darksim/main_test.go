package main

import (
	"bytes"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	// A table experiment by id.
	r, err := run("fig1", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Errorf("fig1 rendered nothing")
	}
	// An ablation by id.
	if _, err := run("ab-grid", 0); err != nil {
		t.Errorf("ab-grid: %v", err)
	}
	// Unknown id.
	if _, err := run("fig99", 0); err == nil {
		t.Errorf("unknown id should error")
	}
}

func TestRunDurationOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := run("fig11", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
