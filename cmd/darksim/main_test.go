package main

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"darksim/internal/experiments"
	"darksim/internal/report"
)

func TestRunDispatch(t *testing.T) {
	ctx := context.Background()
	// A table experiment by id.
	r, err := run(ctx, "fig1", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Errorf("fig1 rendered nothing")
	}
	// An ablation by id.
	if _, err := run(ctx, "ab-grid", 0); err != nil {
		t.Errorf("ab-grid: %v", err)
	}
	// Unknown id.
	if _, err := run(ctx, "fig99", 0); err == nil {
		t.Errorf("unknown id should error")
	}
}

func TestRunDurationOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := run(context.Background(), "fig11", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// fastEntries picks quick analytic experiments for the concurrency tests.
func fastEntries(t *testing.T, ids ...string) []experiments.Experiment {
	t.Helper()
	var out []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestRunAllOrderedOutput(t *testing.T) {
	entries := fastEntries(t, "fig1", "fig2", "fig3")

	var sequential bytes.Buffer
	if err := runAll(context.Background(), entries, 1, 0, "text", &sequential); err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	if err := runAll(context.Background(), entries, 3, 0, "text", &parallel); err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Errorf("parallel output differs from sequential output")
	}
	out := parallel.String()
	i1 := strings.Index(out, "==== fig1 ====")
	i2 := strings.Index(out, "==== fig2 ====")
	i3 := strings.Index(out, "==== fig3 ====")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Errorf("outputs not in registry order: %d %d %d", i1, i2, i3)
	}
}

func TestRunAllReportsFailingExperiment(t *testing.T) {
	entries := fastEntries(t, "fig1")
	entries = append(entries, experiments.Experiment{
		ID:          "fig99",
		Description: "bogus",
		Run:         func(context.Context) (experiments.Renderer, error) { return nil, nil },
	})
	var buf bytes.Buffer
	err := runAll(context.Background(), entries, 2, 0, "text", &buf)
	if err == nil {
		t.Fatal("bogus experiment should fail the run")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error %q does not name the failing experiment", err)
	}
	// The successful experiment's output is still delivered.
	if !strings.Contains(buf.String(), "==== fig1 ====") {
		t.Errorf("completed outputs should still be written on failure")
	}
}

func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runAll(ctx, fastEntries(t, "fig1"), 1, 0, "text", &bytes.Buffer{})
	if err == nil {
		t.Fatal("cancelled context must surface as an error")
	}
}

func TestRunOneJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := runOne(context.Background(), "fig1", 0, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var o struct {
		ID     string          `json:"id"`
		Tables []*report.Table `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
		t.Fatalf("decode: %v (output %s)", err, buf.String())
	}
	if o.ID != "fig1" || len(o.Tables) == 0 {
		t.Fatalf("unexpected JSON payload: %s", buf.String())
	}
	// The structured rows must match what the experiment itself reports.
	r, err := run(context.Background(), "fig1", 0)
	if err != nil {
		t.Fatal(err)
	}
	want, ok := experiments.TablesOf(r)
	if !ok {
		t.Fatal("fig1 has no structured output")
	}
	if !reflect.DeepEqual(o.Tables[0].Rows, want[0].Rows) {
		t.Errorf("JSON rows differ from the experiment's tables")
	}
}

func TestRunAllJSONFormat(t *testing.T) {
	entries := fastEntries(t, "fig1", "fig2")
	var buf bytes.Buffer
	if err := runAll(context.Background(), entries, 2, 0, "json", &buf); err != nil {
		t.Fatal(err)
	}
	var outs []struct {
		ID     string          `json:"id"`
		Tables []*report.Table `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &outs); err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || outs[0].ID != "fig1" || outs[1].ID != "fig2" {
		t.Fatalf("unexpected JSON array: %s", buf.String())
	}
	for _, o := range outs {
		if len(o.Tables) == 0 {
			t.Errorf("%s: no tables in JSON output", o.ID)
		}
	}
}

func TestRunAllTimeoutNamesIncompleteFigures(t *testing.T) {
	slow := experiments.Experiment{
		ID:          "figslow",
		Description: "hangs until cancelled",
		Run: func(ctx context.Context) (experiments.Renderer, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	entries := append(fastEntries(t, "fig1"), slow)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	err := runAll(ctx, entries, 2, 0, "text", &buf)
	if err == nil {
		t.Fatal("timed-out run must fail")
	}
	if !strings.Contains(err.Error(), "figslow") {
		t.Errorf("error %q does not name the incomplete figure", err)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error %q should say the run timed out, not just %q", err, "context deadline exceeded")
	}
	// The fast figure completed and its output is still delivered.
	if !strings.Contains(buf.String(), "==== fig1 ====") {
		t.Errorf("completed figure's output missing after timeout")
	}
}

func TestRunBenchArgErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runBench(context.Background(), []string{"extra"}, &buf); err == nil {
		t.Errorf("positional argument should error")
	}
	if err := runBench(context.Background(), []string{"-benchtime", "not-a-time"}, &buf); err == nil {
		t.Errorf("malformed benchtime should error")
	}
}
