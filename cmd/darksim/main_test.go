package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"darksim/internal/experiments"
)

func TestRunDispatch(t *testing.T) {
	ctx := context.Background()
	// A table experiment by id.
	r, err := run(ctx, "fig1", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Errorf("fig1 rendered nothing")
	}
	// An ablation by id.
	if _, err := run(ctx, "ab-grid", 0); err != nil {
		t.Errorf("ab-grid: %v", err)
	}
	// Unknown id.
	if _, err := run(ctx, "fig99", 0); err == nil {
		t.Errorf("unknown id should error")
	}
}

func TestRunDurationOverride(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := run(context.Background(), "fig11", 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// fastEntries picks quick analytic experiments for the concurrency tests.
func fastEntries(t *testing.T, ids ...string) []experiments.Experiment {
	t.Helper()
	var out []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestRunAllOrderedOutput(t *testing.T) {
	entries := fastEntries(t, "fig1", "fig2", "fig3")

	var sequential bytes.Buffer
	if err := runAll(context.Background(), entries, 1, 0, &sequential); err != nil {
		t.Fatal(err)
	}
	var parallel bytes.Buffer
	if err := runAll(context.Background(), entries, 3, 0, &parallel); err != nil {
		t.Fatal(err)
	}
	if sequential.String() != parallel.String() {
		t.Errorf("parallel output differs from sequential output")
	}
	out := parallel.String()
	i1 := strings.Index(out, "==== fig1 ====")
	i2 := strings.Index(out, "==== fig2 ====")
	i3 := strings.Index(out, "==== fig3 ====")
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Errorf("outputs not in registry order: %d %d %d", i1, i2, i3)
	}
}

func TestRunAllReportsFailingExperiment(t *testing.T) {
	entries := fastEntries(t, "fig1")
	entries = append(entries, experiments.Experiment{
		ID:          "fig99",
		Description: "bogus",
		Run:         func(context.Context) (experiments.Renderer, error) { return nil, nil },
	})
	var buf bytes.Buffer
	err := runAll(context.Background(), entries, 2, 0, &buf)
	if err == nil {
		t.Fatal("bogus experiment should fail the run")
	}
	if !strings.Contains(err.Error(), "fig99") {
		t.Errorf("error %q does not name the failing experiment", err)
	}
	// The successful experiment's output is still delivered.
	if !strings.Contains(buf.String(), "==== fig1 ====") {
		t.Errorf("completed outputs should still be written on failure")
	}
}

func TestRunAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := runAll(ctx, fastEntries(t, "fig1"), 1, 0, &bytes.Buffer{})
	if err == nil {
		t.Fatal("cancelled context must surface as an error")
	}
}
