package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darksim/internal/scenario"
)

func TestRunPolicyList(t *testing.T) {
	var buf bytes.Buffer
	if err := runPolicy(context.Background(), []string{"-list"}, "text", &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"constant", "boost", "dsrem", "boost-unsafe", "tunable"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("policy listing lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestRunPolicyHeadToHead(t *testing.T) {
	var buf bytes.Buffer
	args := []string{"-pack", scenario.PackSymmetric, "-duration", "0.02",
		"-policies", "constant,boost,dsrem"}
	if err := runPolicy(context.Background(), args, "text", &buf); err != nil {
		t.Fatalf("safe trio failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "Policy frontier") || !strings.Contains(out, "pass") {
		t.Fatalf("missing frontier verdicts:\n%s", out)
	}

	// The negative control must flip the exit status and name the step.
	buf.Reset()
	args = []string{"-pack", scenario.PackSymmetric, "-duration", "0.02",
		"-policies", "constant,boost-unsafe"}
	err := runPolicy(context.Background(), args, "text", &buf)
	if err == nil {
		t.Fatalf("boost-unsafe run exited clean:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "never-exceed-tdtm") {
		t.Fatalf("violation table missing:\n%s", buf.String())
	}
}

func TestRunPolicySpecFileAndJSON(t *testing.T) {
	spec := `{
		"pack": "` + scenario.PackSymmetric + `",
		"duration_s": 0.02,
		"policies": [{"name": "constant"}, {"name": "boost"}],
		"tune": "boost", "budget": 2
	}`
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runPolicy(context.Background(), []string{"-spec", path}, "json", &buf); err != nil {
		t.Fatalf("spec run failed: %v\n%s", err, buf.String())
	}
	var o output
	if err := json.Unmarshal(buf.Bytes(), &o); err != nil {
		t.Fatalf("json output does not decode: %v", err)
	}
	if len(o.Tables) < 2 {
		t.Fatalf("got %d tables, want frontier + tuning", len(o.Tables))
	}
	if !strings.Contains(o.Tables[1].Title, "Tuning boost") {
		t.Fatalf("second table is %q, want the tuning record", o.Tables[1].Title)
	}
}

func TestRunPolicyArgErrors(t *testing.T) {
	cases := [][]string{
		{},                            // nothing selected
		{"-spec", "x", "-pack", "y"},  // mutually exclusive
		{"-pack", "no_such_scenario"}, // unknown pack
		{"-pack", scenario.PackSymmetric, "-policies", "overclock"}, // unknown policy
		{"-pack", scenario.PackSymmetric, "stray"},                  // positional args
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := runPolicy(context.Background(), args, "text", &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
