// Command thermsim is a standalone HotSpot-style thermal simulator: it
// reads a floorplan (.flp), an optional configuration (.config) and a
// power trace (.ptrace), and prints per-block temperatures — the same
// workflow HotSpot itself implements, backed by this repository's compact
// RC model.
//
// Usage:
//
//	thermsim -flp chip.flp -ptrace run.ptrace                  # steady state of first sample
//	thermsim -flp chip.flp -ptrace run.ptrace -transient -dt 0.001
//	thermsim -flp chip.flp -config hotspot.config -ptrace run.ptrace
//
// In steady-state mode the first trace row is solved; in transient mode
// every row advances the model by -dt seconds and the hottest block per
// step is reported, followed by the final per-block map.
package main

import (
	"flag"
	"fmt"
	"os"

	"darksim/internal/floorplan"
	"darksim/internal/hotspot"
	"darksim/internal/thermal"
)

func main() {
	flpPath := flag.String("flp", "", "floorplan file (.flp), required")
	cfgPath := flag.String("config", "", "HotSpot-style configuration file (optional)")
	ptracePath := flag.String("ptrace", "", "power trace file (.ptrace), required")
	transient := flag.Bool("transient", false, "run the whole trace as a transient")
	dt := flag.Float64("dt", 1e-3, "transient step per trace row in seconds")
	flag.Parse()
	if *flpPath == "" || *ptracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *flpPath, *cfgPath, *ptracePath, *transient, *dt); err != nil {
		fmt.Fprintf(os.Stderr, "thermsim: %v\n", err)
		os.Exit(1)
	}
}

func run(out *os.File, flpPath, cfgPath, ptracePath string, transient bool, dt float64) error {
	fp, trace, model, err := load(flpPath, cfgPath, ptracePath)
	if err != nil {
		return err
	}
	names := make([]string, fp.NumBlocks())
	for i, b := range fp.Blocks {
		names[i] = b.Name
	}
	order, err := trace.OrderFor(names)
	if err != nil {
		return err
	}
	rowToPower := func(row []float64) []float64 {
		power := make([]float64, fp.NumBlocks())
		for i, v := range row {
			power[order[i]] = v
		}
		return power
	}

	if !transient {
		temps, err := model.SteadyState(rowToPower(trace.Steps[0]))
		if err != nil {
			return err
		}
		return printTemps(out, names, temps)
	}

	tr, err := model.NewTransient(dt)
	if err != nil {
		return err
	}
	var temps []float64
	for step, row := range trace.Steps {
		temps, err = tr.Step(rowToPower(row))
		if err != nil {
			return err
		}
		peak, at := peakOf(temps)
		fmt.Fprintf(out, "t=%.6f\tpeak=%.3f\t%s\n", float64(step+1)*dt, peak, names[at])
	}
	fmt.Fprintln(out, "# final temperatures")
	return printTemps(out, names, temps)
}

func load(flpPath, cfgPath, ptracePath string) (*floorplan.Floorplan, *hotspot.PowerTrace, *thermal.Model, error) {
	flpFile, err := os.Open(flpPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer flpFile.Close()
	fp, err := floorplan.ReadFLP(flpFile)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", flpPath, err)
	}
	nx, ny := fp.Cols, fp.Rows
	if nx == 0 {
		// Non-grid floorplans get a fixed die resolution.
		nx, ny = 16, 16
	}
	cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, nx, ny)
	if cfgPath != "" {
		cfgFile, err := os.Open(cfgPath)
		if err != nil {
			return nil, nil, nil, err
		}
		defer cfgFile.Close()
		if cfg, err = hotspot.ReadConfig(cfgFile, fp.DieW, fp.DieH, nx, ny); err != nil {
			return nil, nil, nil, fmt.Errorf("%s: %w", cfgPath, err)
		}
	}
	model, err := thermal.NewModel(fp, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	ptFile, err := os.Open(ptracePath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer ptFile.Close()
	trace, err := hotspot.ReadPTrace(ptFile)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", ptracePath, err)
	}
	return fp, trace, model, nil
}

func printTemps(out *os.File, names []string, temps []float64) error {
	for i, n := range names {
		if _, err := fmt.Fprintf(out, "%s\t%.3f\n", n, temps[i]); err != nil {
			return err
		}
	}
	return nil
}

func peakOf(temps []float64) (float64, int) {
	best, at := temps[0], 0
	for i, t := range temps {
		if t > best {
			best, at = t, i
		}
	}
	return best, at
}
