package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darksim/internal/floorplan"
	"darksim/internal/hotspot"
	"darksim/internal/thermal"
)

// writeInputs materializes a 4x4 floorplan, a config and a 3-step ptrace
// in a temp dir and returns their paths.
func writeInputs(t *testing.T) (flp, cfg, ptrace string) {
	t.Helper()
	dir := t.TempDir()
	fp, err := floorplan.NewGrid(4, 4, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	flp = filepath.Join(dir, "chip.flp")
	f, err := os.Create(flp)
	if err != nil {
		t.Fatal(err)
	}
	if err := fp.WriteFLP(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg = filepath.Join(dir, "hotspot.config")
	cf, err := os.Create(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := hotspot.WriteConfig(cf, thermal.DefaultConfig(fp.DieW, fp.DieH, 4, 4)); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	tr := &hotspot.PowerTrace{}
	for _, b := range fp.Blocks {
		tr.Units = append(tr.Units, b.Name)
	}
	for step := 0; step < 3; step++ {
		row := make([]float64, len(tr.Units))
		for i := range row {
			row[i] = 2.0
		}
		tr.Steps = append(tr.Steps, row)
	}
	ptrace = filepath.Join(dir, "run.ptrace")
	pf, err := os.Create(ptrace)
	if err != nil {
		t.Fatal(err)
	}
	if err := hotspot.WritePTrace(pf, tr); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	return flp, cfg, ptrace
}

// capture runs fn with stdout redirected to a pipe and returns the output.
func capture(t *testing.T, fn func(out *os.File) error) string {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	if err := fn(tmp); err != nil {
		t.Fatal(err)
	}
	if _, err := tmp.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestSteadyState(t *testing.T) {
	flp, cfg, ptrace := writeInputs(t)
	out := capture(t, func(f *os.File) error {
		return run(f, flp, cfg, ptrace, false, 1e-3)
	})
	if !strings.Contains(out, "core_0_0\t") {
		t.Errorf("missing block output:\n%s", out)
	}
	// 16 cores × 2 W ≈ 45 °C ambient-ish + 3 K: parse one temperature.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 16 {
		t.Errorf("expected 16 block lines, got %d", len(lines))
	}
}

func TestTransient(t *testing.T) {
	flp, _, ptrace := writeInputs(t)
	out := capture(t, func(f *os.File) error {
		return run(f, flp, "", ptrace, true, 1e-2)
	})
	if !strings.Contains(out, "t=0.010000") || !strings.Contains(out, "# final temperatures") {
		t.Errorf("transient output wrong:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	flp, cfg, ptrace := writeInputs(t)
	if err := run(os.Stdout, "nope.flp", cfg, ptrace, false, 1e-3); err == nil {
		t.Errorf("missing floorplan should error")
	}
	if err := run(os.Stdout, flp, "nope.config", ptrace, false, 1e-3); err == nil {
		t.Errorf("missing config should error")
	}
	if err := run(os.Stdout, flp, cfg, "nope.ptrace", false, 1e-3); err == nil {
		t.Errorf("missing ptrace should error")
	}
	// A ptrace whose units do not match the floorplan.
	dir := t.TempDir()
	badTrace := filepath.Join(dir, "bad.ptrace")
	if err := os.WriteFile(badTrace, []byte("alien\n1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(os.Stdout, flp, cfg, badTrace, false, 1e-3); err == nil {
		t.Errorf("unit mismatch should error")
	}
}
