// Command darksimd serves the dark-silicon experiments over HTTP as a
// long-running daemon: a JSON API with request coalescing, a bounded LRU
// result cache, per-request compute timeouts, and graceful shutdown that
// drains in-flight computations.
//
// Usage:
//
//	darksimd                       # listen on :8080
//	darksimd -addr 127.0.0.1:9090  # custom listen address
//	darksimd -pprof localhost:6060 # expose net/http/pprof on a side port
//
// Endpoints:
//
//	GET /v1/experiments                   list every experiment
//	GET /v1/experiments/fig1              run/fetch one (tables as JSON)
//	GET /v1/experiments/fig11?duration=5  shortened transient run
//	GET /v1/tsp?node=16&active=40         thermal safe power query
//	POST /v1/runs                         submit an async run (202 + run id)
//	GET /v1/runs/{id}                     run snapshot (terminal: full result)
//	GET /v1/runs/{id}/events              SSE stream, Last-Event-ID replay
//	DELETE /v1/runs/{id}                  cooperative cancellation
//	GET /healthz                          liveness
//	GET /metrics                          counters + latency histogram
//
// With -run-store, run history (state transitions and every partial
// result) is appended to a file and survives restarts: runs that were
// mid-flight when the process died reopen as failed, their completed
// points intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"darksim/internal/jobs"
	"darksim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache-size", 64, "max cached results (<= 0 disables the cache)")
	cacheTTL := flag.Duration("cache-ttl", time.Hour, "cached result lifetime (0 = never expires)")
	computeTimeout := flag.Duration("compute-timeout", 10*time.Minute, "per-computation deadline")
	workers := flag.Int("workers", 0, "max concurrent computations (0 = GOMAXPROCS)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight computations")
	runStore := flag.String("run-store", "", "append-only file persisting async run history (empty = in-memory)")
	runQueue := flag.Int("run-queue", 0, "max async runs waiting for a compute slot (0 = 64); a full queue answers 429")
	pprofAddr := flag.String("pprof", "", "listen address for the net/http/pprof debug server, e.g. localhost:6060 (empty = disabled)")
	flag.Parse()
	if err := run(*addr, *cacheSize, *cacheTTL, *computeTimeout, *workers, *drainTimeout, *runStore, *runQueue, *pprofAddr); err != nil {
		fmt.Fprintf(os.Stderr, "darksimd: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string, cacheSize int, cacheTTL, computeTimeout time.Duration, workers int, drainTimeout time.Duration, runStore string, runQueue int, pprofAddr string) error {
	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if pprofAddr != "" {
		// The profiler gets its own listener and mux so the debug surface
		// is never reachable through the public API address, and so the
		// service mux stays free of the DefaultServeMux side effects the
		// net/http/pprof import is famous for.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofServer := &http.Server{Addr: pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Info("pprof listening", "addr", pprofAddr)
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof server", "err", err)
			}
		}()
		defer pprofServer.Close()
	}
	var store jobs.Store
	if runStore != "" {
		fs, err := jobs.OpenFileStore(runStore)
		if err != nil {
			return err
		}
		// The service closes the store when its run manager drains.
		store = fs
	}
	svc := service.New(service.Config{
		ComputeTimeout: computeTimeout,
		CacheSize:      cacheSize,
		CacheTTL:       cacheTTL,
		Workers:        workers,
		QueueSize:      runQueue,
		RunStore:       store,
		Logger:         log,
	}, nil)
	httpServer := &http.Server{
		Addr:              addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	log.Info("listening", "addr", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down", "drain_timeout", drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the compute pool.
	serr := httpServer.Shutdown(sctx)
	cerr := svc.Close(sctx)
	if err := errors.Join(serr, cerr); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Info("drained cleanly")
	return nil
}
