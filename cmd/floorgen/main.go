// Command floorgen generates HotSpot-style .flp floorplans for the
// paper's manycore platforms.
//
// Usage:
//
//	floorgen -node 16 -cores 100 > chip16.flp
//	floorgen -cols 18 -rows 11 -area 2.7 > chip11.flp
package main

import (
	"flag"
	"fmt"
	"os"

	"darksim/internal/floorplan"
	"darksim/internal/tech"
)

func main() {
	node := flag.Int("node", 0, "technology node in nm (sets per-core area; 0 = use -area)")
	cores := flag.Int("cores", 100, "number of cores (used with -node)")
	cols := flag.Int("cols", 0, "explicit grid columns (used with -rows/-area)")
	rows := flag.Int("rows", 0, "explicit grid rows")
	area := flag.Float64("area", 0, "explicit per-core area in mm²")
	flag.Parse()

	fp, err := build(*node, *cores, *cols, *rows, *area)
	if err != nil {
		fmt.Fprintf(os.Stderr, "floorgen: %v\n", err)
		os.Exit(1)
	}
	if err := fp.WriteFLP(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "floorgen: %v\n", err)
		os.Exit(1)
	}
}

func build(node, cores, cols, rows int, area float64) (*floorplan.Floorplan, error) {
	if cols > 0 || rows > 0 {
		if area <= 0 {
			return nil, fmt.Errorf("explicit grids need -area")
		}
		return floorplan.NewGrid(cols, rows, area)
	}
	if node == 0 {
		return nil, fmt.Errorf("need either -node or -cols/-rows/-area")
	}
	spec, err := tech.SpecFor(tech.Node(node))
	if err != nil {
		return nil, err
	}
	return floorplan.NewGridForCount(cores, spec.CoreAreaMM2)
}
