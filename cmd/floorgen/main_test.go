package main

import "testing"

func TestBuildFromNode(t *testing.T) {
	fp, err := build(16, 100, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 100 {
		t.Errorf("blocks = %d", fp.NumBlocks())
	}
	// 16 nm core area is 5.1 mm².
	if a := fp.Blocks[0].Area() * 1e6; a < 5.0 || a > 5.2 {
		t.Errorf("core area = %.2f mm²", a)
	}
}

func TestBuildExplicitGrid(t *testing.T) {
	fp, err := build(0, 0, 6, 4, 2.7)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 24 || fp.Cols != 6 || fp.Rows != 4 {
		t.Errorf("grid = %dx%d with %d blocks", fp.Cols, fp.Rows, fp.NumBlocks())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build(0, 0, 0, 0, 0); err == nil {
		t.Errorf("no node and no grid should error")
	}
	if _, err := build(0, 0, 6, 4, 0); err == nil {
		t.Errorf("explicit grid without area should error")
	}
	if _, err := build(14, 100, 0, 0, 0); err == nil {
		t.Errorf("unknown node should error")
	}
	if _, err := build(16, 97, 0, 0, 0); err == nil {
		t.Errorf("prime core count should error")
	}
}
