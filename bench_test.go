// Benchmarks: one per table/figure of the paper's evaluation. Each
// benchmark regenerates the corresponding experiment end to end — workload
// generation, parameter sweep, baseline and estimator — so `go test
// -bench=.` reproduces every result of the paper and reports how long the
// pipeline takes.
//
// The transient experiments (Figures 11–13) use shortened run lengths
// here; the cmd/darksim harness runs them at the paper's full durations.
package darksim

import (
	"context"
	"testing"

	"darksim/internal/experiments"
)

// runBench runs fn once per benchmark iteration and fails on error.
func runBench(b *testing.B, fn func() (experiments.Renderer, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := fn(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1ScalingTable(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig1() })
}

func BenchmarkFig2VoltageFrequency(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig2() })
}

func BenchmarkFig3PowerModelFit(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig3() })
}

func BenchmarkFig4Speedup(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig4() })
}

func BenchmarkFig5DarkSiliconTDP(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig5() })
}

func BenchmarkFig6TempVsTDP(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig6() })
}

func BenchmarkFig7DVFS(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig7() })
}

func BenchmarkFig8Patterning(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig8() })
}

func BenchmarkFig9DsRem(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig9() })
}

func BenchmarkFig10TSP(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig10(context.Background()) })
}

func BenchmarkFig11BoostTransient(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) {
		return experiments.Fig11(context.Background(), experiments.Fig11Options{DurationS: 2})
	})
}

func BenchmarkFig12BoostScaling(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) {
		return experiments.Fig12(context.Background(), experiments.Fig12Options{DurationS: 0.5, StepCores: 24})
	})
}

func BenchmarkFig13BoostApps(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) {
		return experiments.Fig13(context.Background(), experiments.Fig13Options{DurationS: 0.25, Instances: []int{12}})
	})
}

func BenchmarkFig14NTC(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Fig14() })
}

// Ablation benchmarks — the design-choice studies DESIGN.md calls out.

func BenchmarkAblationRotation(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationRotation() })
}

func BenchmarkAblationGrid(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationGrid() })
}

func BenchmarkAblationHoldBand(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationHoldBand() })
}

func BenchmarkAblationStrategies(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationStrategies(context.Background()) })
}

func BenchmarkAblationLadderStep(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationLadderStep() })
}

func BenchmarkAblationAging(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationAging() })
}

func BenchmarkBaselineComparison(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.Baseline() })
}

func BenchmarkAblationVariability(b *testing.B) {
	runBench(b, func() (experiments.Renderer, error) { return experiments.AblationVariability() })
}
