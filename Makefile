# darksim — reproduction of "New Trends in Dark Silicon" (DAC 2015)

GO ?= go

.PHONY: all check build vet lint test test-short test-shuffle race bench bench-report bench-compare bench-smoke profile-smoke fuzz-smoke jobs-smoke policy-smoke cover verify golden experiments ablations serve clean

all: check

# check is the tier-1 gate: build, vet, tests (also in shuffled order, to
# catch inter-test state leaks), the race detector over the parallel
# sweep paths, a short smoke run of every fuzz target, a one-shot run
# of the dense-vs-sparse solver benchmarks so a broken bench path fails
# the gate, the async-runtime smoke (a real shortened fig12 submitted
# as a run, streamed point by point, compared against the synchronous
# endpoint), and the policy-sandbox smoke (head-to-head race with the
# unsafe negative control caught, under the race detector).
check: build vet test test-shuffle race fuzz-smoke bench-smoke jobs-smoke policy-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the long transient co-simulations.
test-short:
	$(GO) test -short ./...

# Shuffled test order flushes out hidden ordering dependencies between
# tests (e.g. shared platform-cache state).
test-shuffle:
	$(GO) test -shuffle=on ./...

# Data-race detection across every package, including the runner-based
# parallel sweeps (fig11–fig13, influence matrix, darksim all).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The perf-trajectory harness: per-figure + dense-vs-sparse solver
# benchmarks, written as one JSON report for cross-PR comparison. The
# default output is derived from the current commit so a casual
# `make bench-report` can never silently overwrite a committed
# BENCH_PR*.json trajectory file; pass BENCH_OUT=BENCH_PR7.json
# explicitly when publishing a new baseline.
BENCH_OUT ?= bench-$(shell git rev-parse --short HEAD 2>/dev/null || echo dev).json
bench-report:
	$(GO) run ./cmd/darksim bench -out $(BENCH_OUT)

# The CI regression gate: rerun the headline benchmarks — solver,
# influence, TSP, the transient step/macro kernels, and the per-figure
# transients (figure/fig11–13 are headline entries now, so the figure
# sweeps must run) — and fail on >25% slowdown against the committed
# baseline. Headlines the baseline predates are listed, not gated.
BENCH_BASELINE ?= BENCH_PR6.json
bench-compare:
	$(GO) run ./cmd/darksim bench -compare $(BENCH_BASELINE)

# One iteration of the thermal-solve benchmarks keeps the bench path
# compiling and running under the tier-1 gate without paying full
# benchmark time, and the warm-influence assertion proves the
# cross-request cache serves repeat platforms with zero CG solves.
bench-smoke:
	$(GO) test -bench=ThermalSolve -benchtime=1x -run='^$$' ./internal/thermal
	$(GO) test -run='TestInfluenceWarmPathZeroSolves' -count=1 -v ./internal/thermal | grep -E 'TestInfluenceWarmPathZeroSolves|ok '

# The profiling smoke: run the micro-benchmark harness once with the
# -cpuprofile/-memprofile flags and require both profiles to be
# non-empty, so the "start the next perf PR from a profile" path can
# never rot unnoticed. The profiles land under /tmp; point pprof at
# them with `go tool pprof /tmp/darksim-cpu.pprof`.
profile-smoke:
	$(GO) run ./cmd/darksim bench -figures=false \
		-cpuprofile /tmp/darksim-cpu.pprof -memprofile /tmp/darksim-mem.pprof
	test -s /tmp/darksim-cpu.pprof
	test -s /tmp/darksim-mem.pprof


# The jobs-runtime smoke: submit a shortened fig12 through POST /v1/runs,
# consume its SSE stream (one partial table per sweep point), and require
# the terminal result to be byte-identical to the synchronous endpoint on
# an independent server. Exercises the whole async path end to end.
jobs-smoke:
	$(GO) test -run='TestRunFig12MatchesSync' -count=1 -v ./internal/service | grep -E 'TestRunFig12MatchesSync|ok '

# The policy-sandbox smoke: race the default trio head-to-head on a pack
# scenario with assertion-checked traces, require the unsafe boost
# variant to be caught with its violating step named, and run the
# sandbox's concurrent/cancellation paths under the race detector.
policy-smoke:
	$(GO) test -race -run='TestExecute|TestExecuteUnsafeCaught|TestRunAllConcurrent|TestRunAllCancel' -count=1 -v ./internal/policy | grep -E 'TestExecute|TestRunAll|ok '

# Short runs of the native fuzz targets ("go test -fuzz" takes exactly
# one target per invocation); full fuzzing uses longer -fuzztime.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -fuzz=FuzzVoltageForFrequency -fuzztime=$(FUZZTIME) -run='^$$' ./internal/vf
	$(GO) test -fuzz=FuzzTableCSV -fuzztime=$(FUZZTIME) -run='^$$' ./internal/report
	$(GO) test -fuzz=FuzzServiceParams -fuzztime=$(FUZZTIME) -run='^$$' ./internal/service
	$(GO) test -fuzz=FuzzCSRMulVec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/linalg
	$(GO) test -fuzz=FuzzCGBlock -fuzztime=$(FUZZTIME) -run='^$$' ./internal/linalg
	$(GO) test -fuzz=FuzzAffinePowers -fuzztime=$(FUZZTIME) -run='^$$' ./internal/linalg
	$(GO) test -fuzz=FuzzScenarioSpec -fuzztime=$(FUZZTIME) -run='^$$' ./internal/scenario
	$(GO) test -fuzz=FuzzPolicyTrace -fuzztime=$(FUZZTIME) -run='^$$' ./internal/policy

# Statement-coverage floors for the verification surface. The assertion
# engine (internal/verify) and the policy sandbox (internal/policy) are
# what the rest of the gate leans on — a gap there is a gap in every
# check built on top — so their coverage may not regress below 80%.
COVER_FLOOR ?= 80.0
cover:
	@fail=0; for pkg in ./internal/policy ./internal/verify; do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover: $$pkg: no coverage reported (test failure?)"; fail=1; continue; fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
		if awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit (p+0 >= f+0) ? 0 : 1 }'; then :; else \
			echo "cover: $$pkg is below the $(COVER_FLOOR)% floor"; fail=1; fi; \
	done; exit $$fail

# Static analysis beyond vet. staticcheck is optional locally (CI
# installs a pinned version); when absent, lint degrades to vet alone
# rather than requiring a toolchain download.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only"; \
	fi

# The golden-corpus verification gate: recompute every figure and check
# it against the embedded corpus, the paper's physics invariants and the
# differential renderings, then run the repeat/raced/shuffled test modes
# that catch state leaking through the platform LRU cache.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/darksim verify
	$(GO) test -race -shuffle=on ./...
	$(GO) test -count=2 ./internal/experiments ./internal/service

# Regenerate the golden corpus after an intentional model change.
golden:
	$(GO) run ./cmd/darksim verify -update

# Regenerate every table/figure of the paper (full durations).
experiments:
	$(GO) run ./cmd/darksim all

ablations:
	$(GO) run ./cmd/darksim ablations

# Run the darksimd HTTP daemon on :8080 (see README for the endpoints).
serve:
	$(GO) run ./cmd/darksimd

clean:
	$(GO) clean ./...
