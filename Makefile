# darksim — reproduction of "New Trends in Dark Silicon" (DAC 2015)

GO ?= go

.PHONY: all check build vet test test-short test-shuffle race bench experiments ablations serve clean

all: check

# check is the tier-1 gate: build, vet, tests (also in shuffled order, to
# catch inter-test state leaks), and the race detector over the parallel
# sweep paths.
check: build vet test test-shuffle race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the long transient co-simulations.
test-short:
	$(GO) test -short ./...

# Shuffled test order flushes out hidden ordering dependencies between
# tests (e.g. shared platform-cache state).
test-shuffle:
	$(GO) test -shuffle=on ./...

# Data-race detection across every package, including the runner-based
# parallel sweeps (fig11–fig13, influence matrix, darksim all).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper (full durations).
experiments:
	$(GO) run ./cmd/darksim all

ablations:
	$(GO) run ./cmd/darksim ablations

# Run the darksimd HTTP daemon on :8080 (see README for the endpoints).
serve:
	$(GO) run ./cmd/darksimd

clean:
	$(GO) clean ./...
