# darksim — reproduction of "New Trends in Dark Silicon" (DAC 2015)

GO ?= go

.PHONY: all build vet test test-short bench experiments ablations clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the long transient co-simulations.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper (full durations).
experiments:
	$(GO) run ./cmd/darksim all

ablations:
	$(GO) run ./cmd/darksim ablations

clean:
	$(GO) clean ./...
