# darksim — reproduction of "New Trends in Dark Silicon" (DAC 2015)

GO ?= go

.PHONY: all check build vet test test-short race bench experiments ablations clean

all: check

# check is the tier-1 gate: build, vet, tests, and the race detector over
# the parallel sweep paths.
check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the long transient co-simulations.
test-short:
	$(GO) test -short ./...

# Data-race detection across every package, including the runner-based
# parallel sweeps (fig11–fig13, influence matrix, darksim all).
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure of the paper (full durations).
experiments:
	$(GO) run ./cmd/darksim all

ablations:
	$(GO) run ./cmd/darksim ablations

clean:
	$(GO) clean ./...
