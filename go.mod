module darksim

go 1.24
