// DVFS trade-off demo (§3.3): for a fixed job count and power budget,
// find each application's best (threads, frequency) operating point and
// see the TLP/ILP split — high-TLP applications keep their threads, high-
// ILP applications trade threads for clock speed.
package main

import (
	"fmt"
	"log"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/report"
	"darksim/internal/tech"
	"os"
)

func main() {
	platform, err := core.NewPlatform(tech.Node16)
	if err != nil {
		log.Fatal(err)
	}
	const (
		jobs = 12  // application instances to schedule
		tdp  = 185 // W
	)

	t := &report.Table{
		Title:   fmt.Sprintf("best (threads, f) per app: %d instances under %d W at %s", jobs, tdp, platform.Node),
		Columns: []string{"app", "class", "threads", "f [GHz]", "cores", "power [W]", "GIPS"},
	}
	for _, a := range apps.Catalog() {
		cfg, err := platform.BestDVFSConfig(a, jobs, tdp)
		if err != nil {
			log.Fatal(err)
		}
		class := ""
		if a.HighTLP() {
			class += "TLP "
		}
		if a.HighILP() {
			class += "ILP"
		}
		t.AddRow(a.Name, class,
			fmt.Sprintf("%d", cfg.Threads),
			fmt.Sprintf("%.1f", cfg.FGHz),
			fmt.Sprintf("%d", cfg.Cores),
			fmt.Sprintf("%.0f", cfg.PowerW),
			fmt.Sprintf("%.0f", cfg.GIPS))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nnote how canneal (low TLP, low ILP) wastes neither cores nor voltage,")
	fmt.Println("while blackscholes (high TLP) spends its budget on threads.")
}
