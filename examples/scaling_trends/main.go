// Scaling trends: the paper's headline question — how much of the chip
// goes dark as we scale from 16 nm to 8 nm? — answered under both
// constraints the paper contrasts: a fixed TDP budget (the state of the
// art it critiques) and the 80 °C temperature constraint (its revised
// methodology). The platforms grow with the node (100, 198, 361 cores),
// as in the paper's §2.1 setup.
package main

import (
	"fmt"
	"log"
	"os"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/report"
	"darksim/internal/tech"
)

func main() {
	nodes := []struct {
		node  tech.Node
		cores int
		fGHz  float64
	}{
		{tech.Node16, 100, 3.6},
		{tech.Node11, 198, 4.0},
		{tech.Node8, 361, 4.4},
	}
	app, err := apps.ByName("swaptions") // the hungriest app: worst case
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		Title:   fmt.Sprintf("dark-silicon trends for %s (TDP = 185 W vs TDTM = 80 °C)", app.Name),
		Columns: []string{"node", "cores", "f [GHz]", "dark % (TDP)", "dark % (temp)", "GIPS (TDP)", "GIPS (temp)"},
	}
	for _, n := range nodes {
		platform, err := core.NewPlatformWith(n.node, core.Options{Cores: n.cores})
		if err != nil {
			log.Fatal(err)
		}
		tdp, err := platform.DarkSiliconUnderTDP(app, 185, n.fGHz)
		if err != nil {
			log.Fatal(err)
		}
		temp, err := platform.DarkSiliconUnderTemp(app, n.fGHz, nil)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(n.node.String(),
			fmt.Sprintf("%d", n.cores),
			fmt.Sprintf("%.1f", n.fGHz),
			fmt.Sprintf("%.0f", 100*tdp.Summary.DarkFraction()),
			fmt.Sprintf("%.0f", 100*temp.Summary.DarkFraction()),
			fmt.Sprintf("%.0f", tdp.Summary.GIPS),
			fmt.Sprintf("%.0f", temp.Summary.GIPS))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe temperature constraint consistently lights more of the chip, and")
	fmt.Println("performance keeps growing across nodes even as dark silicon increases —")
	fmt.Println("the paper's revision of the pessimistic dark-silicon forecasts.")
}
