// Within-core thermal detail: expand a core-level floorplan into McPAT-
// style functional components (execution clusters, caches, frontend),
// split each core's Equation (1) power across them, and render the
// within-core hotspot a block-level model averages away.
package main

import (
	"fmt"
	"log"
	"os"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
	"darksim/internal/mcpat"
	"darksim/internal/report"
	"darksim/internal/tech"
	"darksim/internal/thermal"
	"darksim/internal/vf"
)

func main() {
	// A small 3x3 corner of the 16 nm chip, fully active.
	fp, err := floorplan.NewGrid(3, 3, 5.1)
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.ByName("swaptions")
	if err != nil {
		log.Fatal(err)
	}
	const fGHz = 3.6
	corePowerW, err := app.CorePower(tech.Node16, fGHz, 80)
	if err != nil {
		log.Fatal(err)
	}

	comps := mcpat.DefaultBreakdown()
	sub, err := mcpat.ExpandFloorplan(fp, comps)
	if err != nil {
		log.Fatal(err)
	}
	corePower := make([]float64, fp.NumBlocks())
	for i := range corePower {
		corePower[i] = corePowerW
	}
	// Roughly 80 % of the core's power is dynamic at this operating point.
	subPower, err := mcpat.ExpandPower(corePower, comps, 0.8)
	if err != nil {
		log.Fatal(err)
	}

	// Fine die grid (5 cells per core side) to resolve the components.
	model, err := thermal.NewModel(sub, thermal.DefaultConfig(sub.DieW, sub.DieH, 15, 15))
	if err != nil {
		log.Fatal(err)
	}
	temps, err := model.SteadyState(subPower)
	if err != nil {
		log.Fatal(err)
	}

	// Report per-component temperatures of the centre core.
	t := &report.Table{
		Title:   fmt.Sprintf("centre core components (%s @ %.1f GHz, %.2f W/core)", app.Name, fGHz, corePowerW),
		Columns: []string{"component", "power [W]", "temp [°C]"},
	}
	ratio, err := mcpat.PowerDensityRatio(comps, 0.8*corePowerW, 0.2*corePowerW)
	if err != nil {
		log.Fatal(err)
	}
	var hottest string
	var peak float64
	for i, b := range sub.Blocks {
		if len(b.Name) > 9 && b.Name[:8] == "core_1_1" {
			t.AddRow(b.Name[9:], fmt.Sprintf("%.2f", subPower[i]), fmt.Sprintf("%.2f", temps[i]))
			if temps[i] > peak {
				peak, hottest = temps[i], b.Name[9:]
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhottest component: %s at %.2f °C (power-density ratio %.1fx the core average)\n",
		hottest, peak, ratio)

	// Sanity: the operating point is on the Eq.(2) curve.
	curve := vf.MustCurve(tech.Node16)
	vdd, err := curve.VoltageFor(fGHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("operating point: %.1f GHz at %.2f V (%s)\n", fGHz, vdd, curve.RegionOf(vdd))
}
