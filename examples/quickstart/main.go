// Quickstart: estimate dark silicon for one application on a 100-core
// 16 nm chip, first the classic way (TDP budget) and then the paper's way
// (temperature constraint) — and see why the two disagree.
package main

import (
	"fmt"
	"log"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/tech"
)

func main() {
	// A platform bundles the floorplan, the Eq.(1)/(2) power and V/f
	// models and the HotSpot-style thermal model for one node.
	platform, err := core.NewPlatform(tech.Node16)
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.ByName("swaptions")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform: %d cores at %s, core area %.1f mm², TDTM %.0f °C\n",
		platform.NumCores(), platform.Node, platform.Spec.CoreAreaMM2, platform.TDTM)
	fmt.Printf("app: %s (IPC %.1f, parallel fraction %.2f)\n\n", app.Name, app.IPC, app.ParallelFrac)

	// 1. Dark silicon as a power-budget constraint (the state of the art
	//    the paper critiques): fill the chip with 8-thread instances at
	//    the nominal maximum frequency until the TDP is spent.
	tdp, err := platform.DarkSiliconUnderTDP(app, 185, platform.Curve.FmaxGHz)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TDP-constrained:   ", tdp.Summary)

	// 2. Dark silicon as a temperature constraint (the paper's §3.2):
	//    keep activating patterned cores while the steady-state peak
	//    temperature stays below the DTM threshold.
	temp, err := platform.DarkSiliconUnderTemp(app, platform.Curve.FmaxGHz, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Temp-constrained:  ", temp.Summary)

	saved := temp.Summary.ActiveCores - tdp.Summary.ActiveCores
	fmt.Printf("\nthe temperature constraint lights %d extra cores the TDP budget wastes\n", saved)
}
