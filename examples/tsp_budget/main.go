// TSP budgeting walkthrough: compute Thermal Safe Power for a range of
// active-core counts, compare worst-case and mapping-aware budgets, and
// pick the fastest safe operating point for an application — the §5
// workflow of the paper.
package main

import (
	"context"
	"fmt"
	"log"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/tech"
	"darksim/internal/tsp"
)

func main() {
	platform, err := core.NewPlatform(tech.Node16)
	if err != nil {
		log.Fatal(err)
	}
	calc, err := tsp.New(platform.Thermal, platform.TDTM)
	if err != nil {
		log.Fatal(err)
	}

	// TSP falls as the active-core count grows: more heat sources, less
	// headroom per source.
	ctx := context.Background()
	fmt.Println("worst-case TSP per core:")
	for _, n := range []int{16, 32, 48, 64, 80, 100} {
		budget, _, err := calc.WorstCase(ctx, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3d active cores -> %.2f W/core (%.0f W total)\n", n, budget, budget*float64(n))
	}

	// Mapping-aware TSP: a patterned placement earns a higher budget than
	// the worst case for the same core count.
	const active = 64
	worst, _, err := calc.WorstCase(ctx, active)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := mapping.PeripheryFirst(platform.Floorplan, active)
	if err != nil {
		log.Fatal(err)
	}
	patterned, err := calc.Given(ctx, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d cores: worst-case TSP %.2f W/core, patterned mapping %.2f W/core (+%.0f%%)\n",
		active, worst, patterned, 100*(patterned-worst)/worst)

	// Turn the budget into an operating point: the fastest DVFS level
	// whose Eq.(1) power fits under the patterned TSP.
	app, err := apps.ByName("x264")
	if err != nil {
		log.Fatal(err)
	}
	bestF := 0.0
	for _, pt := range platform.Ladder.Points {
		pw, err := platform.CorePower(app, pt.FGHz, platform.TDTM)
		if err != nil {
			log.Fatal(err)
		}
		if pw <= patterned {
			bestF = pt.FGHz
		}
	}
	if bestF == 0 {
		log.Fatalf("no level fits under %.2f W", patterned)
	}
	instances := active / apps.MaxThreadsPerInstance
	gips := float64(instances) * app.InstanceGIPS(bestF, apps.MaxThreadsPerInstance)
	fmt.Printf("%s on those %d cores: %.1f GHz is TSP-safe -> %.0f GIPS from %d instances\n",
		app.Name, active, bestF, gips, instances)
}
