// Boosting demo: run the §6 transient comparison on a small workload —
// a Turbo-style closed-loop controller oscillating at the 80 °C threshold
// versus the best constant frequency — and print the traces.
package main

import (
	"fmt"
	"log"
	"os"

	"darksim/internal/apps"
	"darksim/internal/boost"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/report"
	"darksim/internal/sim"
	"darksim/internal/tech"
)

func main() {
	platform, err := core.NewPlatform(tech.Node16)
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.ByName("x264")
	if err != nil {
		log.Fatal(err)
	}

	// 12 instances × 8 threads, patterned across the chip.
	const instances = 12
	cores, err := mapping.PeripheryFirst(platform.Floorplan, instances*8)
	if err != nil {
		log.Fatal(err)
	}
	plan := &mapping.Plan{NumCores: platform.NumCores()}
	for i := 0; i < instances; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: app, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}

	ladder := platform.BoostLadder
	constLevel, err := boost.FindConstantLevel(platform, plan, ladder, platform.TDTM)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("constant-frequency operating point: %.1f GHz\n", ladder.Points[constLevel].FGHz)

	opts := sim.Options{Duration: 10, ControlPeriod: 1e-3, StartSteady: true}
	constRes, err := sim.Run(platform, plan, boost.Constant{Level: constLevel}, ladder, opts)
	if err != nil {
		log.Fatal(err)
	}
	ctrl, err := boost.NewClosed(platform.TDTM, constLevel, len(ladder.Points)-1)
	if err != nil {
		log.Fatal(err)
	}
	boostRes, err := sim.Run(platform, plan, ctrl, ladder, opts)
	if err != nil {
		log.Fatal(err)
	}

	chart := &report.Chart{Title: "peak temperature over 10 s [°C]", XLabel: "time [s]"}
	bt := boostRes.PeakTemp.Downsample(100)
	ct := constRes.PeakTemp.Downsample(100)
	if err := chart.RenderLines(os.Stdout, []string{"boosting", "constant"},
		[][]float64{bt.X, ct.X}, [][]float64{bt.Y, ct.Y}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nboosting:  avg %.1f GIPS, peak power %.0f W, max temp %.2f °C\n",
		boostRes.AvgGIPS, boostRes.PeakPowerW, boostRes.MaxTempC)
	fmt.Printf("constant:  avg %.1f GIPS, peak power %.0f W, max temp %.2f °C\n",
		constRes.AvgGIPS, constRes.PeakPowerW, constRes.MaxTempC)
	gain := 100 * (boostRes.AvgGIPS - constRes.AvgGIPS) / constRes.AvgGIPS
	cost := 100 * (boostRes.PeakPowerW - constRes.PeakPowerW) / constRes.PeakPowerW
	fmt.Printf("\nObservation 3: +%.1f%% performance costs +%.1f%% peak power\n", gain, cost)
}
