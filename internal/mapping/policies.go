package mapping

import (
	"fmt"
	"math"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
)

// TDPMapOptions configures the TDPmap baseline policy.
type TDPMapOptions struct {
	// TDPW is the chip power budget in watts.
	TDPW float64
	// FGHz is the (maximum) v/f level every instance runs at.
	FGHz float64
	// TempC is the temperature estimate used to evaluate Equation (1)
	// (TDP policies budget at the critical temperature; default 80).
	TempC float64
	// Threads per instance (default 8, the paper's Fig. 5/7/9 setting).
	Threads int
	// Strategy places the active cores (default Contiguous, the naive
	// policy TDPmap represents).
	Strategy Strategy
	// AllowPartialInstance lets the last instance run fewer threads to
	// consume the remaining budget (the paper's application model allows
	// 1..8 threads per instance).
	AllowPartialInstance bool
	// MaxInstances caps the instance count (0 = bounded by cores only).
	MaxInstances int
}

// TDPMap implements the TDP-based mapping policy of §4: map instances of
// the application with Threads threads each, all at FGHz, until the next
// instance would exceed the TDP; remaining cores stay dark.
func TDPMap(fp *floorplan.Floorplan, app apps.App, pow NodePowerer, opt TDPMapOptions) (*Plan, error) {
	if opt.TDPW <= 0 {
		return nil, fmt.Errorf("%w: TDP %g W", ErrMapping, opt.TDPW)
	}
	if opt.FGHz <= 0 {
		return nil, fmt.Errorf("%w: frequency %g GHz", ErrMapping, opt.FGHz)
	}
	if opt.TempC == 0 {
		opt.TempC = 80
	}
	if opt.Threads == 0 {
		opt.Threads = apps.MaxThreadsPerInstance
	}
	if opt.Threads < 1 || opt.Threads > apps.MaxThreadsPerInstance {
		return nil, fmt.Errorf("%w: %d threads per instance", ErrMapping, opt.Threads)
	}
	if opt.Strategy == nil {
		opt.Strategy = Contiguous
	}
	perCore, err := pow.CorePower(app, opt.FGHz, opt.TempC)
	if err != nil {
		return nil, err
	}
	if perCore <= 0 {
		return nil, fmt.Errorf("%w: non-positive per-core power", ErrMapping)
	}
	budgetCores := int(opt.TDPW / perCore)
	if budgetCores > fp.NumBlocks() {
		budgetCores = fp.NumBlocks()
	}
	instances := budgetCores / opt.Threads
	if opt.MaxInstances > 0 && instances > opt.MaxInstances {
		instances = opt.MaxInstances
	}
	active := instances * opt.Threads
	partial := 0
	if opt.AllowPartialInstance && (opt.MaxInstances == 0 || instances < opt.MaxInstances) {
		partial = budgetCores - active
		if partial > 0 {
			active += partial
		}
	}
	cores, err := opt.Strategy(fp, active)
	if err != nil {
		return nil, err
	}
	plan := &Plan{NumCores: fp.NumBlocks()}
	groups := chunk(cores[:instances*opt.Threads], opt.Threads)
	for _, g := range groups {
		plan.Placements = append(plan.Placements, Placement{
			App: app, Cores: g, FGHz: opt.FGHz, Threads: len(g),
		})
	}
	if partial > 0 {
		g := cores[instances*opt.Threads:]
		plan.Placements = append(plan.Placements, Placement{
			App: app, Cores: g, FGHz: opt.FGHz, Threads: len(g),
		})
	}
	return plan, plan.Validate()
}

// Evaluator reports the steady-state peak temperature of a plan; the
// DsRem policy uses it to steer its repair/exploit loop. internal/core
// provides the standard thermal-model-backed implementation.
type Evaluator interface {
	PeakTemp(plan *Plan) (float64, error)
}

// EvaluatorFunc adapts a function to Evaluator.
type EvaluatorFunc func(plan *Plan) (float64, error)

// PeakTemp implements Evaluator.
func (f EvaluatorFunc) PeakTemp(plan *Plan) (float64, error) { return f(plan) }

// DsRemOptions configures the DsRem policy.
type DsRemOptions struct {
	// TcritC is the temperature constraint (default 80 °C).
	TcritC float64
	// Levels is the ascending DVFS frequency ladder (GHz). Required.
	Levels []float64
	// Threads per instance (default 8).
	Threads int
	// Strategy places active cores (default PeripheryFirst — DsRem
	// builds on dark-silicon patterning).
	Strategy Strategy
	// TempC is the Equation (1) evaluation temperature (default TcritC).
	TempC float64
	// HeadroomC stops the exploit phase when the peak is within this
	// margin of Tcrit (default 0.25 °C).
	HeadroomC float64
}

// DsRem implements the resource-management heuristic of §4 (Khdr et al.,
// DAC'15): jointly determine the number of active cores per application
// and their v/f levels such that overall performance is maximized under
// the temperature constraint. The mix receives an equal share of the chip;
// the policy then (phase 1) starts every application at the top v/f level
// with a full complement of instances, (phase 2) repairs thermal
// violations by lowering the v/f of the application with the smallest
// performance loss per watt saved — dropping whole instances when a ladder
// bottoms out — and (phase 3) exploits remaining headroom by raising the
// v/f of the application with the largest performance gain.
func DsRem(fp *floorplan.Floorplan, mix []apps.App, pow NodePowerer, eval Evaluator, opt DsRemOptions) (*Plan, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("%w: empty application mix", ErrMapping)
	}
	if len(opt.Levels) == 0 {
		return nil, fmt.Errorf("%w: DsRem needs a DVFS ladder", ErrMapping)
	}
	if opt.TcritC == 0 {
		opt.TcritC = 80
	}
	if opt.Threads == 0 {
		opt.Threads = apps.MaxThreadsPerInstance
	}
	if opt.Strategy == nil {
		opt.Strategy = PeripheryFirst
	}
	if opt.TempC == 0 {
		opt.TempC = opt.TcritC
	}
	if opt.HeadroomC == 0 {
		opt.HeadroomC = 0.25
	}

	// Per-app state: instance count and ladder level index.
	type state struct {
		app       apps.App
		instances int
		level     int
	}
	top := len(opt.Levels) - 1
	share := fp.NumBlocks() / len(mix)
	states := make([]state, len(mix))
	for i, a := range mix {
		states[i] = state{app: a, instances: share / opt.Threads, level: top}
		if states[i].instances < 1 {
			return nil, fmt.Errorf("%w: chip share %d too small for %d threads", ErrMapping, share, opt.Threads)
		}
	}

	build := func() (*Plan, error) {
		total := 0
		for _, s := range states {
			total += s.instances * opt.Threads
		}
		cores, err := opt.Strategy(fp, total)
		if err != nil {
			return nil, err
		}
		plan := &Plan{NumCores: fp.NumBlocks()}
		at := 0
		for _, s := range states {
			for k := 0; k < s.instances; k++ {
				plan.Placements = append(plan.Placements, Placement{
					App:     s.app,
					Cores:   cores[at : at+opt.Threads],
					FGHz:    opt.Levels[s.level],
					Threads: opt.Threads,
				})
				at += opt.Threads
			}
		}
		return plan, plan.Validate()
	}

	gipsOf := func(s state) float64 {
		return float64(s.instances) * s.app.InstanceGIPS(opt.Levels[s.level], opt.Threads)
	}
	powerOf := func(s state) (float64, error) {
		pc, err := pow.CorePower(s.app, opt.Levels[s.level], opt.TempC)
		if err != nil {
			return 0, err
		}
		return float64(s.instances*opt.Threads) * pc, nil
	}

	plan, err := build()
	if err != nil {
		return nil, err
	}
	peak, err := eval.PeakTemp(plan)
	if err != nil {
		return nil, err
	}

	// Phase 2: repair thermal violations.
	const maxIter = 10000
	for iter := 0; peak > opt.TcritC && iter < maxIter; iter++ {
		// Candidate moves: lower one app's level, or drop one instance
		// if that app is already at the bottom. Pick the move with the
		// least GIPS loss per watt saved.
		best, bestScore := -1, math.Inf(1)
		bestIsDrop := false
		for i, s := range states {
			before := gipsOf(s)
			pBefore, err := powerOf(s)
			if err != nil {
				return nil, err
			}
			var after, pAfter float64
			var isDrop bool
			if s.level > 0 {
				ns := s
				ns.level--
				after = gipsOf(ns)
				pAfter, err = powerOf(ns)
			} else if s.instances > 0 {
				ns := s
				ns.instances--
				isDrop = true
				after = gipsOf(ns)
				pAfter, err = powerOf(ns)
			} else {
				continue
			}
			if err != nil {
				return nil, err
			}
			saved := pBefore - pAfter
			if saved <= 0 {
				continue
			}
			score := (before - after) / saved
			if score < bestScore {
				best, bestScore, bestIsDrop = i, score, isDrop
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: cannot satisfy %.1f °C even with everything off", ErrMapping, opt.TcritC)
		}
		if bestIsDrop {
			states[best].instances--
		} else {
			states[best].level--
		}
		if plan, err = build(); err != nil {
			return nil, err
		}
		if peak, err = eval.PeakTemp(plan); err != nil {
			return nil, err
		}
	}

	// Phase 3: exploit headroom by raising levels (greedy, with revert).
	blocked := make([]bool, len(states))
	for peak <= opt.TcritC-opt.HeadroomC {
		best, bestGain := -1, 0.0
		for i, s := range states {
			if blocked[i] || s.level >= top || s.instances == 0 {
				continue
			}
			ns := s
			ns.level++
			if gain := gipsOf(ns) - gipsOf(s); gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			break
		}
		states[best].level++
		candidate, err := build()
		if err != nil {
			return nil, err
		}
		candPeak, err := eval.PeakTemp(candidate)
		if err != nil {
			return nil, err
		}
		if candPeak > opt.TcritC {
			states[best].level--
			blocked[best] = true
			continue
		}
		plan, peak = candidate, candPeak
	}
	return plan, nil
}
