// Package mapping implements spatial mapping of application instances onto
// manycore floorplans and the mapping policies the paper discusses in §4:
//
//   - contiguous mapping (the naive baseline of Figure 8a);
//   - dark-silicon patterning (DaSim-style, Figure 8b): placements that
//     interleave dark cores with active ones to cut the peak temperature;
//   - TDPmap: fill the chip with 8-thread instances at the maximum v/f
//     level until the TDP is exhausted;
//   - DsRem: jointly choose per-application thread counts and v/f levels
//     to maximize performance under the temperature constraint.
package mapping

import (
	"errors"
	"fmt"
	"sort"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
)

// ErrMapping is returned for infeasible or malformed mapping requests.
var ErrMapping = errors.New("mapping: invalid")

// Strategy selects n core indices from a floorplan.
type Strategy func(fp *floorplan.Floorplan, n int) ([]int, error)

func checkRequest(fp *floorplan.Floorplan, n int) error {
	if n < 0 || n > fp.NumBlocks() {
		return fmt.Errorf("%w: request for %d of %d cores", ErrMapping, n, fp.NumBlocks())
	}
	return nil
}

// Contiguous maps n cores in row-major order starting from the bottom-left
// corner — the naive policy of Figure 8(a) that clusters heat.
func Contiguous(fp *floorplan.Floorplan, n int) ([]int, error) {
	if err := checkRequest(fp, n); err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out, nil
}

// Checkerboard maps n cores on alternating grid parities, filling the even
// parity first; a simple static dark-silicon pattern.
func Checkerboard(fp *floorplan.Floorplan, n int) ([]int, error) {
	if err := checkRequest(fp, n); err != nil {
		return nil, err
	}
	if fp.Cols == 0 {
		return nil, fmt.Errorf("%w: checkerboard needs a grid floorplan", ErrMapping)
	}
	var out []int
	for _, parity := range []int{0, 1} {
		for r := 0; r < fp.Rows && len(out) < n; r++ {
			for c := 0; c < fp.Cols && len(out) < n; c++ {
				if (r+c)%2 == parity {
					out = append(out, fp.Index(r, c))
				}
			}
		}
	}
	return out, nil
}

// PeripheryFirst maps n cores ordered by decreasing distance from the die
// centre: the die periphery has the most lateral heat-spreading headroom,
// so this pattern reduces peak temperature (the core of DaSim-style
// patterning). Ties break on index for determinism.
func PeripheryFirst(fp *floorplan.Floorplan, n int) ([]int, error) {
	if err := checkRequest(fp, n); err != nil {
		return nil, err
	}
	cx, cy := fp.DieW/2, fp.DieH/2
	type scored struct {
		idx int
		d2  float64
	}
	all := make([]scored, fp.NumBlocks())
	for i, b := range fp.Blocks {
		dx, dy := b.CenterX()-cx, b.CenterY()-cy
		all[i] = scored{idx: i, d2: dx*dx + dy*dy}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d2 != all[b].d2 {
			return all[a].d2 > all[b].d2
		}
		return all[a].idx < all[b].idx
	})
	out := make([]int, n)
	for i := range out {
		out[i] = all[i].idx
	}
	return out, nil
}

// MaxSpread maps n cores by greedy farthest-point selection: each new core
// maximizes its minimum distance to the already-selected set (seeded at a
// corner). It spreads heat sources as evenly as possible.
func MaxSpread(fp *floorplan.Floorplan, n int) ([]int, error) {
	if err := checkRequest(fp, n); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	selected := []int{0}
	inSet := make([]bool, fp.NumBlocks())
	inSet[0] = true
	minDist := make([]float64, fp.NumBlocks())
	for i := range minDist {
		minDist[i] = fp.Distance(i, 0)
	}
	for len(selected) < n {
		pick, best := -1, -1.0
		for i := 0; i < fp.NumBlocks(); i++ {
			if inSet[i] {
				continue
			}
			if minDist[i] > best {
				pick, best = i, minDist[i]
			}
		}
		inSet[pick] = true
		selected = append(selected, pick)
		for i := 0; i < fp.NumBlocks(); i++ {
			if d := fp.Distance(i, pick); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	sort.Ints(selected)
	return selected, nil
}

// Replace re-places a plan's instances under a new strategy: the same
// placements (apps, thread counts, v/f levels) get fresh cores chosen by
// strat over the whole die, assigned in placement order. Instance
// accounting is untouched — only the dark-silicon pattern moves.
func Replace(pl *Plan, fp *floorplan.Floorplan, strat Strategy) (*Plan, error) {
	cores, err := strat(fp, pl.ActiveCores())
	if err != nil {
		return nil, err
	}
	at := 0
	out := &Plan{NumCores: pl.NumCores}
	for _, p := range pl.Placements {
		np := p
		np.Cores = cores[at : at+len(p.Cores)]
		at += len(p.Cores)
		out.Placements = append(out.Placements, np)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Strategies returns the named placement strategies for sweep experiments.
func Strategies() map[string]Strategy {
	return map[string]Strategy{
		"contiguous":   Contiguous,
		"checkerboard": Checkerboard,
		"periphery":    PeripheryFirst,
		"maxspread":    MaxSpread,
	}
}

// Placement is one application instance mapped onto specific cores at one
// v/f level.
type Placement struct {
	App     apps.App
	Cores   []int   // one core per thread
	FGHz    float64 // shared DVFS level of the instance's cores
	Threads int     // == len(Cores)
}

// GIPS returns the instance's throughput.
func (p Placement) GIPS() float64 { return p.App.InstanceGIPS(p.FGHz, p.Threads) }

// Plan is a full chip workload: a set of placements on disjoint cores.
type Plan struct {
	Placements []Placement
	NumCores   int // total cores on the chip
}

// Validate checks that placements are disjoint and within range.
func (pl *Plan) Validate() error {
	used := make(map[int]bool)
	for _, p := range pl.Placements {
		if p.Threads != len(p.Cores) {
			return fmt.Errorf("%w: placement threads %d != cores %d", ErrMapping, p.Threads, len(p.Cores))
		}
		if p.Threads < 1 || p.Threads > apps.MaxThreadsPerInstance {
			return fmt.Errorf("%w: %d threads per instance (max %d)", ErrMapping, p.Threads, apps.MaxThreadsPerInstance)
		}
		if p.FGHz <= 0 {
			return fmt.Errorf("%w: non-positive frequency", ErrMapping)
		}
		for _, c := range p.Cores {
			if c < 0 || c >= pl.NumCores {
				return fmt.Errorf("%w: core %d out of range", ErrMapping, c)
			}
			if used[c] {
				return fmt.Errorf("%w: core %d double-booked", ErrMapping, c)
			}
			used[c] = true
		}
	}
	return nil
}

// ActiveCores returns the number of powered cores.
func (pl *Plan) ActiveCores() int {
	n := 0
	for _, p := range pl.Placements {
		n += len(p.Cores)
	}
	return n
}

// DarkCores returns the number of dark (unpowered) cores.
func (pl *Plan) DarkCores() int { return pl.NumCores - pl.ActiveCores() }

// DarkFraction returns the dark-silicon fraction of the chip.
func (pl *Plan) DarkFraction() float64 {
	if pl.NumCores == 0 {
		return 0
	}
	return float64(pl.DarkCores()) / float64(pl.NumCores)
}

// TotalGIPS returns the plan's aggregate throughput.
func (pl *Plan) TotalGIPS() float64 {
	var g float64
	for _, p := range pl.Placements {
		g += p.GIPS()
	}
	return g
}

// PowerVector evaluates the per-core power map (length NumCores) at the
// given technology node and a uniform temperature estimate (the
// fixed-point refinement against the thermal model lives in internal/sim).
func (pl *Plan) PowerVector(node NodePowerer, tempC float64) ([]float64, error) {
	pw := make([]float64, pl.NumCores)
	for _, p := range pl.Placements {
		cp, err := node.CorePower(p.App, p.FGHz, tempC)
		if err != nil {
			return nil, err
		}
		for _, c := range p.Cores {
			pw[c] = cp
		}
	}
	return pw, nil
}

// TotalPower sums the plan's power at the given temperature estimate.
func (pl *Plan) TotalPower(node NodePowerer, tempC float64) (float64, error) {
	pw, err := pl.PowerVector(node, tempC)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, p := range pw {
		sum += p
	}
	return sum, nil
}

// NodePowerer abstracts "per-core power of app a at frequency f" so the
// plan types do not hard-code a technology node. internal/core provides
// the standard implementation.
type NodePowerer interface {
	CorePower(a apps.App, fGHz, tempC float64) (float64, error)
}

// NodePowerFunc adapts a function to NodePowerer.
type NodePowerFunc func(a apps.App, fGHz, tempC float64) (float64, error)

// CorePower implements NodePowerer.
func (f NodePowerFunc) CorePower(a apps.App, fGHz, tempC float64) (float64, error) {
	return f(a, fGHz, tempC)
}

// chunk splits the ordered core list into per-instance groups of size
// threads (the last group may be smaller and is dropped when below min).
func chunk(cores []int, threads int) [][]int {
	var out [][]int
	for len(cores) >= threads {
		out = append(out, cores[:threads])
		cores = cores[threads:]
	}
	return out
}
