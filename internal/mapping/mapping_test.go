package mapping

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
	"darksim/internal/tech"
	"darksim/internal/thermal"
	"darksim/internal/vf"
)

func grid10(t testing.TB) *floorplan.Floorplan {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// powerer16 evaluates Equation (1) at 16 nm.
func powerer16() NodePowerer {
	return NodePowerFunc(func(a apps.App, fGHz, tempC float64) (float64, error) {
		return a.CorePower(tech.Node16, fGHz, tempC)
	})
}

func thermalEval(t testing.TB, fp *floorplan.Floorplan, pow NodePowerer) Evaluator {
	t.Helper()
	m, err := thermal.NewModel(fp, thermal.DefaultConfig(fp.DieW, fp.DieH, fp.Cols, fp.Rows))
	if err != nil {
		t.Fatal(err)
	}
	return EvaluatorFunc(func(plan *Plan) (float64, error) {
		pw, err := plan.PowerVector(pow, 80)
		if err != nil {
			return 0, err
		}
		peak, _, err := m.PeakSteadyState(pw)
		return peak, err
	})
}

func assertDisjointValid(t *testing.T, fp *floorplan.Floorplan, cores []int, n int) {
	t.Helper()
	if len(cores) != n {
		t.Fatalf("got %d cores, want %d", len(cores), n)
	}
	seen := make(map[int]bool)
	for _, c := range cores {
		if c < 0 || c >= fp.NumBlocks() {
			t.Fatalf("core %d out of range", c)
		}
		if seen[c] {
			t.Fatalf("core %d duplicated", c)
		}
		seen[c] = true
	}
}

func TestStrategiesBasic(t *testing.T) {
	fp := grid10(t)
	for name, s := range Strategies() {
		for _, n := range []int{0, 1, 37, 100} {
			cores, err := s(fp, n)
			if err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			assertDisjointValid(t, fp, cores, n)
		}
		if _, err := s(fp, 101); err == nil {
			t.Errorf("%s: oversubscription should error", name)
		}
		if _, err := s(fp, -1); err == nil {
			t.Errorf("%s: negative request should error", name)
		}
	}
}

func TestContiguousOrder(t *testing.T) {
	fp := grid10(t)
	cores, err := Contiguous(fp, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cores {
		if c != i {
			t.Fatalf("contiguous[%d] = %d", i, c)
		}
	}
}

func TestCheckerboardParity(t *testing.T) {
	fp := grid10(t)
	cores, err := Checkerboard(fp, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		b := fp.Blocks[c]
		if (b.Row+b.Col)%2 != 0 {
			t.Fatalf("first 50 checkerboard cores must be even parity; got (%d,%d)", b.Row, b.Col)
		}
	}
	// Needs a grid.
	nonGrid := &floorplan.Floorplan{DieW: 1, DieH: 1,
		Blocks: []floorplan.Block{{Name: "a", W: 1, H: 1}}}
	if _, err := Checkerboard(nonGrid, 1); err == nil {
		t.Errorf("non-grid should error")
	}
}

func TestPeripheryFirstPrefersCorners(t *testing.T) {
	fp := grid10(t)
	cores, err := PeripheryFirst(fp, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cores {
		b := fp.Blocks[c]
		isCorner := (b.Row == 0 || b.Row == 9) && (b.Col == 0 || b.Col == 9)
		if !isCorner {
			t.Fatalf("first 4 periphery cores should be corners; got (%d,%d)", b.Row, b.Col)
		}
	}
	// The die centre comes last.
	all, err := PeripheryFirst(fp, 100)
	if err != nil {
		t.Fatal(err)
	}
	lastBlocks := all[96:]
	for _, c := range lastBlocks {
		b := fp.Blocks[c]
		if b.Row < 4 || b.Row > 5 || b.Col < 4 || b.Col > 5 {
			t.Fatalf("last cores should be central; got (%d,%d)", b.Row, b.Col)
		}
	}
}

func TestMaxSpreadSeparation(t *testing.T) {
	fp := grid10(t)
	spread, err := MaxSpread(fp, 25)
	if err != nil {
		t.Fatal(err)
	}
	contig, err := Contiguous(fp, 25)
	if err != nil {
		t.Fatal(err)
	}
	minPair := func(cores []int) float64 {
		best := math.Inf(1)
		for i := 0; i < len(cores); i++ {
			for j := i + 1; j < len(cores); j++ {
				if d := fp.Distance(cores[i], cores[j]); d < best {
					best = d
				}
			}
		}
		return best
	}
	if minPair(spread) <= minPair(contig) {
		t.Errorf("maxspread should separate cores more than contiguous")
	}
}

func TestPlanAccounting(t *testing.T) {
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		NumCores: 100,
		Placements: []Placement{
			{App: x, Cores: []int{0, 1, 2, 3}, FGHz: 3.0, Threads: 4},
			{App: x, Cores: []int{10, 11}, FGHz: 2.0, Threads: 2},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.ActiveCores() != 6 || plan.DarkCores() != 94 {
		t.Errorf("active=%d dark=%d", plan.ActiveCores(), plan.DarkCores())
	}
	if math.Abs(plan.DarkFraction()-0.94) > 1e-12 {
		t.Errorf("dark fraction = %v", plan.DarkFraction())
	}
	want := x.InstanceGIPS(3.0, 4) + x.InstanceGIPS(2.0, 2)
	if math.Abs(plan.TotalGIPS()-want) > 1e-12 {
		t.Errorf("GIPS = %v, want %v", plan.TotalGIPS(), want)
	}
	pw, err := plan.PowerVector(powerer16(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if pw[0] <= 0 || pw[5] != 0 {
		t.Errorf("power vector wrong: %v %v", pw[0], pw[5])
	}
	total, err := plan.TotalPower(powerer16(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Errorf("total power = %v", total)
	}
}

func TestPlanValidateErrors(t *testing.T) {
	x, _ := apps.ByName("x264")
	bad := &Plan{NumCores: 10, Placements: []Placement{
		{App: x, Cores: []int{0, 0}, FGHz: 1, Threads: 2},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("double-booked core should error")
	}
	bad = &Plan{NumCores: 10, Placements: []Placement{
		{App: x, Cores: []int{50}, FGHz: 1, Threads: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("out-of-range core should error")
	}
	bad = &Plan{NumCores: 10, Placements: []Placement{
		{App: x, Cores: []int{0, 1}, FGHz: 1, Threads: 3},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("threads/cores mismatch should error")
	}
	bad = &Plan{NumCores: 10, Placements: []Placement{
		{App: x, Cores: []int{0}, FGHz: 0, Threads: 1},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("zero frequency should error")
	}
	bad = &Plan{NumCores: 100, Placements: []Placement{
		{App: x, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7, 8}, FGHz: 1, Threads: 9},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("more than 8 threads should error")
	}
}

func TestTDPMapRespectsBudget(t *testing.T) {
	fp := grid10(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	pow := powerer16()
	plan, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 185, FGHz: 3.6})
	if err != nil {
		t.Fatal(err)
	}
	total, err := plan.TotalPower(pow, 80)
	if err != nil {
		t.Fatal(err)
	}
	if total > 185 {
		t.Errorf("TDPmap exceeded budget: %.1f W", total)
	}
	// Adding one more 8-thread instance would blow the budget.
	perCore, err := pow.CorePower(s, 3.6, 80)
	if err != nil {
		t.Fatal(err)
	}
	if total+8*perCore <= 185 {
		t.Errorf("TDPmap under-filled: %.1f W + instance fits in 185 W", total)
	}
	if plan.DarkCores() == 0 {
		t.Errorf("a 185 W budget must leave dark cores at 16 nm")
	}
	// All placements run 8 threads at 3.6 GHz.
	for _, p := range plan.Placements {
		if p.Threads != 8 || p.FGHz != 3.6 {
			t.Errorf("placement %+v violates TDPmap settings", p)
		}
	}
}

func TestTDPMapPartialInstance(t *testing.T) {
	fp := grid10(t)
	s, _ := apps.ByName("swaptions")
	pow := powerer16()
	full, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 220, FGHz: 3.6})
	if err != nil {
		t.Fatal(err)
	}
	part, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 220, FGHz: 3.6, AllowPartialInstance: true})
	if err != nil {
		t.Fatal(err)
	}
	if part.ActiveCores() < full.ActiveCores() {
		t.Errorf("partial instance should not reduce active cores")
	}
	totalPart, err := part.TotalPower(pow, 80)
	if err != nil {
		t.Fatal(err)
	}
	if totalPart > 220 {
		t.Errorf("partial fill exceeded budget: %.1f W", totalPart)
	}
}

func TestTDPMapHugeBudgetCapsAtChip(t *testing.T) {
	fp := grid10(t)
	s, _ := apps.ByName("canneal")
	plan, err := TDPMap(fp, s, powerer16(), TDPMapOptions{TDPW: 1e6, FGHz: 3.6})
	if err != nil {
		t.Fatal(err)
	}
	if plan.ActiveCores() != 96 { // 12 instances × 8 threads on 100 cores
		t.Errorf("active = %d, want 96", plan.ActiveCores())
	}
}

func TestTDPMapMaxInstances(t *testing.T) {
	fp := grid10(t)
	s, _ := apps.ByName("canneal")
	plan, err := TDPMap(fp, s, powerer16(), TDPMapOptions{TDPW: 1e6, FGHz: 3.6, MaxInstances: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Placements) != 3 {
		t.Errorf("instances = %d", len(plan.Placements))
	}
}

func TestTDPMapErrors(t *testing.T) {
	fp := grid10(t)
	s, _ := apps.ByName("x264")
	pow := powerer16()
	if _, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 0, FGHz: 3.6}); err == nil {
		t.Errorf("zero TDP should error")
	}
	if _, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 100, FGHz: 0}); err == nil {
		t.Errorf("zero frequency should error")
	}
	if _, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 100, FGHz: 3.6, Threads: 12}); err == nil {
		t.Errorf("12 threads should error")
	}
}

func TestDsRemRespectsThermalConstraintAndBeatsTDPMap(t *testing.T) {
	fp := grid10(t)
	pow := powerer16()
	eval := thermalEval(t, fp, pow)
	curve, err := vf.CurveFor(tech.Node16)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := vf.NewLadder(curve, vf.LadderOptions{MinGHz: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	mix := []apps.App{}
	for _, n := range []string{"x264", "swaptions"} {
		a, err := apps.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		mix = append(mix, a)
	}
	plan, err := DsRem(fp, mix, pow, eval, DsRemOptions{Levels: ladder.Levels()})
	if err != nil {
		t.Fatal(err)
	}
	peak, err := eval.PeakTemp(plan)
	if err != nil {
		t.Fatal(err)
	}
	if peak > 80+1e-6 {
		t.Errorf("DsRem plan violates 80 °C: %.2f", peak)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}

	// The Figure 9 claim: DsRem outperforms TDPmap (which maps at max
	// v/f under the pessimistic 185 W TDP with contiguous placement).
	s, _ := apps.ByName("swaptions")
	tdpPlan, err := TDPMap(fp, s, pow, TDPMapOptions{TDPW: 185, FGHz: 3.6})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalGIPS() <= tdpPlan.TotalGIPS() {
		t.Errorf("DsRem GIPS %.1f should beat TDPmap GIPS %.1f",
			plan.TotalGIPS(), tdpPlan.TotalGIPS())
	}
}

func TestDsRemErrors(t *testing.T) {
	fp := grid10(t)
	pow := powerer16()
	eval := thermalEval(t, fp, pow)
	if _, err := DsRem(fp, nil, pow, eval, DsRemOptions{Levels: []float64{1}}); err == nil {
		t.Errorf("empty mix should error")
	}
	x, _ := apps.ByName("x264")
	if _, err := DsRem(fp, []apps.App{x}, pow, eval, DsRemOptions{}); err == nil {
		t.Errorf("missing ladder should error")
	}
	// 20 apps on a 100-core chip: share of 5 cores cannot host an
	// 8-thread instance.
	big := make([]apps.App, 20)
	for i := range big {
		big[i] = x
	}
	if _, err := DsRem(fp, big, pow, eval, DsRemOptions{Levels: []float64{1}}); err == nil {
		t.Errorf("oversubscribed mix should error")
	}
}

// Property: every strategy is prefix-consistent — strategy(fp, n) is a
// prefix of strategy(fp, n+1) up to ordering of the selected set. The
// binary searches in internal/core (MaxCoresUnderTemp) rely on the
// stronger property that the selected SET grows monotonically with n.
func TestStrategyPrefixConsistencyProperty(t *testing.T) {
	fp := grid10(t)
	for name, s := range Strategies() {
		f := func(nRaw uint8) bool {
			n := int(nRaw) % 100
			small, err := s(fp, n)
			if err != nil {
				return false
			}
			large, err := s(fp, n+1)
			if err != nil {
				return false
			}
			in := make(map[int]bool, len(large))
			for _, c := range large {
				in[c] = true
			}
			for _, c := range small {
				if !in[c] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: strategies are deterministic — two invocations agree exactly.
func TestStrategyDeterminismProperty(t *testing.T) {
	fp := grid10(t)
	for name, s := range Strategies() {
		f := func(nRaw uint8) bool {
			n := int(nRaw) % 101
			a, err1 := s(fp, n)
			b, err2 := s(fp, n)
			if err1 != nil || err2 != nil {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(18))}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestReplaceMovesNotResizes(t *testing.T) {
	fp := grid10(t)
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	plan := &Plan{
		NumCores: fp.NumBlocks(),
		Placements: []Placement{
			{App: x, Cores: []int{40, 41, 42, 43}, FGHz: 3.0, Threads: 4},
			{App: x, Cores: []int{44, 45}, FGHz: 2.0, Threads: 2},
		},
	}
	out, err := Replace(plan, fp, PeripheryFirst)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out.ActiveCores() != plan.ActiveCores() || len(out.Placements) != len(plan.Placements) {
		t.Fatalf("replace changed instance accounting: %+v", out)
	}
	for i, p := range out.Placements {
		orig := plan.Placements[i]
		if p.App.Name != orig.App.Name || p.FGHz != orig.FGHz || p.Threads != orig.Threads {
			t.Fatalf("placement %d altered beyond cores: %+v vs %+v", i, p, orig)
		}
	}
	// Periphery-first must pull the packed center placement outward.
	if out.Placements[0].Cores[0] == plan.Placements[0].Cores[0] {
		t.Fatal("replace left the center placement in place")
	}
	// An overbooked plan cannot be replaced.
	big := &Plan{NumCores: 4, Placements: []Placement{
		{App: x, Cores: []int{0, 1, 2, 3}, FGHz: 1, Threads: 4},
	}}
	if _, err := Replace(big, fp, PeripheryFirst); err == nil {
		t.Fatal("replace onto a mismatched floorplan succeeded")
	}
}
