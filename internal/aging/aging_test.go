package aging

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccelerationAnchors(t *testing.T) {
	m := DefaultModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.Acceleration(80); math.Abs(got-1) > 1e-12 {
		t.Errorf("AF(ref) = %v, want 1", got)
	}
	// Rule of thumb for Ea ≈ 0.8 eV near 80 °C: +10 K roughly doubles
	// the wear rate.
	ratio := m.Acceleration(90) / m.Acceleration(80)
	if ratio < 1.7 || ratio > 2.6 {
		t.Errorf("AF(90)/AF(80) = %.2f, want ≈2", ratio)
	}
	if m.Acceleration(70) >= 1 {
		t.Errorf("below-reference AF should be < 1")
	}
	if m.Acceleration(-kelvinOffset-10) != 0 {
		t.Errorf("non-physical temperature should clamp to 0")
	}
}

func TestMTTFFactor(t *testing.T) {
	m := DefaultModel()
	if got := m.MTTFFactor(80); math.Abs(got-1) > 1e-12 {
		t.Errorf("MTTF(ref) = %v", got)
	}
	if m.MTTFFactor(90) >= 1 {
		t.Errorf("hotter should shorten MTTF")
	}
	if m.MTTFFactor(70) <= 1 {
		t.Errorf("cooler should extend MTTF")
	}
	if !math.IsInf(m.MTTFFactor(-kelvinOffset-1), 1) {
		t.Errorf("zero acceleration should mean infinite MTTF")
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{ActivationEV: 0, RefC: 80}).Validate(); err == nil {
		t.Errorf("zero Ea should error")
	}
	if err := (Model{ActivationEV: 0.8, RefC: -300}).Validate(); err == nil {
		t.Errorf("sub-absolute-zero reference should error")
	}
}

func TestIntegrator(t *testing.T) {
	in, err := NewIntegrator(DefaultModel(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Add(10, []float64{80, 90, 70}); err != nil {
		t.Fatal(err)
	}
	if err := in.Add(10, []float64{80, 90, 70}); err != nil {
		t.Fatal(err)
	}
	if in.Elapsed() != 20 {
		t.Errorf("Elapsed = %v", in.Elapsed())
	}
	w := in.Wear()
	if math.Abs(w[0]-20) > 1e-9 {
		t.Errorf("core at reference should age 1:1, got %v", w[0])
	}
	if !(w[1] > w[0] && w[0] > w[2]) {
		t.Errorf("wear ordering wrong: %v", w)
	}
	max, at := in.MaxWear()
	if at != 1 || max != w[1] {
		t.Errorf("MaxWear = %v@%d", max, at)
	}
	if in.Imbalance() <= 1 {
		t.Errorf("uneven temps should give imbalance > 1: %v", in.Imbalance())
	}
	// Mutating the returned slice must not affect the integrator.
	w[0] = 1e9
	if in.Wear()[0] == 1e9 {
		t.Errorf("Wear should return a copy")
	}
}

func TestIntegratorErrors(t *testing.T) {
	if _, err := NewIntegrator(Model{}, 3); err == nil {
		t.Errorf("invalid model should error")
	}
	if _, err := NewIntegrator(DefaultModel(), 0); err == nil {
		t.Errorf("zero cores should error")
	}
	in, err := NewIntegrator(DefaultModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Add(-1, []float64{80, 80}); err == nil {
		t.Errorf("negative dt should error")
	}
	if err := in.Add(1, []float64{80}); err == nil {
		t.Errorf("length mismatch should error")
	}
}

func TestUniformTempsBalance(t *testing.T) {
	in, err := NewIntegrator(DefaultModel(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := in.Add(1, []float64{75, 75, 75, 75, 75}); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(in.Imbalance()-1) > 1e-12 {
		t.Errorf("uniform temps should balance: %v", in.Imbalance())
	}
	var empty Integrator
	if empty.Imbalance() != 0 {
		t.Errorf("empty integrator imbalance = %v", empty.Imbalance())
	}
}

// Property: acceleration is monotone increasing in temperature.
func TestAccelerationMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(a, b float64) bool {
		t1 := 20 + math.Mod(math.Abs(a), 100)
		t2 := 20 + math.Mod(math.Abs(b), 100)
		lo, hi := math.Min(t1, t2), math.Max(t1, t2)
		return m.Acceleration(lo) <= m.Acceleration(hi)+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

// Property: wear is additive — integrating in two halves equals one go.
func TestWearAdditiveProperty(t *testing.T) {
	m := DefaultModel()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		temps := []float64{60 + 30*rng.Float64(), 60 + 30*rng.Float64()}
		one, err := NewIntegrator(m, 2)
		if err != nil {
			return false
		}
		two, err := NewIntegrator(m, 2)
		if err != nil {
			return false
		}
		if one.Add(2, temps) != nil {
			return false
		}
		if two.Add(1, temps) != nil || two.Add(1, temps) != nil {
			return false
		}
		a, b := one.Wear(), two.Wear()
		return math.Abs(a[0]-b[0]) < 1e-12 && math.Abs(a[1]-b[1]) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
