// Package aging estimates temperature-driven wear-out, the reliability
// angle of dark silicon the paper points to in §1 ("recent studies also
// leveraged dark silicon to improve the thermal profiles and reliability
// of manycore systems", citing Hayat and ASER). Two standard compact
// models are provided:
//
//   - an Arrhenius acceleration factor for temperature-activated
//     mechanisms (electromigration, TDDB):
//     AF(T) = exp(Ea/k · (1/Tref − 1/T)), T in kelvin;
//   - a per-core wear integrator that accumulates acceleration over a
//     transient temperature trace and reports per-core ageing and the
//     chip-level imbalance that dark-silicon rotation is designed to fix.
package aging

import (
	"errors"
	"fmt"
	"math"
)

// Boltzmann constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// kelvinOffset converts °C to K.
const kelvinOffset = 273.15

// Model is an Arrhenius acceleration model.
type Model struct {
	// ActivationEV is the activation energy Ea in eV. Electromigration
	// is commonly modelled with Ea ≈ 0.7–0.9 eV.
	ActivationEV float64
	// RefC is the reference temperature (°C) at which the acceleration
	// factor is 1.
	RefC float64
}

// DefaultModel returns an electromigration-flavoured model (Ea = 0.8 eV)
// referenced to the 80 °C DTM threshold.
func DefaultModel() Model {
	return Model{ActivationEV: 0.8, RefC: 80}
}

// ErrModel is returned for non-physical model parameters or inputs.
var ErrModel = errors.New("aging: invalid")

// Validate checks the model parameters.
func (m Model) Validate() error {
	if m.ActivationEV <= 0 {
		return fmt.Errorf("%w: activation energy %g eV", ErrModel, m.ActivationEV)
	}
	if m.RefC <= -kelvinOffset {
		return fmt.Errorf("%w: reference temperature %g °C", ErrModel, m.RefC)
	}
	return nil
}

// Acceleration returns the Arrhenius acceleration factor at tempC:
// >1 above the reference temperature, <1 below, exactly 1 at it.
func (m Model) Acceleration(tempC float64) float64 {
	tRef := m.RefC + kelvinOffset
	t := tempC + kelvinOffset
	if t <= 0 {
		return 0
	}
	return math.Exp(m.ActivationEV / BoltzmannEV * (1/tRef - 1/t))
}

// MTTFFactor returns the relative mean-time-to-failure at a constant
// tempC versus operating at the reference temperature (the reciprocal of
// the acceleration factor).
func (m Model) MTTFFactor(tempC float64) float64 {
	a := m.Acceleration(tempC)
	if a == 0 {
		return math.Inf(1)
	}
	return 1 / a
}

// Integrator accumulates per-core wear over a transient run.
type Integrator struct {
	model Model
	wear  []float64 // accelerated seconds per core
	total float64   // wall-clock seconds integrated
}

// NewIntegrator creates an integrator for n cores.
func NewIntegrator(model Model, n int) (*Integrator, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: %d cores", ErrModel, n)
	}
	return &Integrator{model: model, wear: make([]float64, n)}, nil
}

// Add integrates dt seconds at the given per-core temperatures.
func (in *Integrator) Add(dt float64, tempsC []float64) error {
	if dt < 0 {
		return fmt.Errorf("%w: dt %g", ErrModel, dt)
	}
	if len(tempsC) != len(in.wear) {
		return fmt.Errorf("%w: %d temperatures for %d cores", ErrModel, len(tempsC), len(in.wear))
	}
	for i, t := range tempsC {
		in.wear[i] += dt * in.model.Acceleration(t)
	}
	in.total += dt
	return nil
}

// Elapsed returns the integrated wall-clock time in seconds.
func (in *Integrator) Elapsed() float64 { return in.total }

// Wear returns the per-core accelerated seconds (a copy).
func (in *Integrator) Wear() []float64 {
	out := make([]float64, len(in.wear))
	copy(out, in.wear)
	return out
}

// MaxWear returns the most-aged core's accelerated seconds and index.
func (in *Integrator) MaxWear() (float64, int) {
	best, at := math.Inf(-1), -1
	for i, w := range in.wear {
		if w > best {
			best, at = w, i
		}
	}
	return best, at
}

// Imbalance returns max/mean wear — 1.0 means perfectly level ageing;
// large values mean a few cores burn out first. Dark-silicon rotation
// (Hayat-style "aging deceleration and balancing") reduces this.
func (in *Integrator) Imbalance() float64 {
	if len(in.wear) == 0 || in.total == 0 {
		return 0
	}
	var sum, max float64
	for _, w := range in.wear {
		sum += w
		if w > max {
			max = w
		}
	}
	mean := sum / float64(len(in.wear))
	if mean == 0 {
		return 0
	}
	return max / mean
}
