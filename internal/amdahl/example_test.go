package amdahl_test

import (
	"fmt"

	"darksim/internal/amdahl"
)

// ExampleAmdahl_Speedup shows the parallelism wall of the paper's
// Figure 4: with a 62 % parallel fraction (x264's fit), 64 threads buy
// barely 2.6× over one thread.
func ExampleAmdahl_Speedup() {
	law, err := amdahl.NewAmdahl(0.62)
	if err != nil {
		panic(err)
	}
	for _, n := range []int{1, 8, 64} {
		fmt.Printf("S(%d) = %.2f\n", n, law.Speedup(n))
	}
	fmt.Printf("limit = %.2f\n", law.Limit())
	// Output:
	// S(1) = 1.00
	// S(8) = 2.19
	// S(64) = 2.57
	// limit = 2.63
}

// ExampleFitParallelFrac back-derives the parallel fraction from one
// measured speed-up point, the way the catalog's fractions were fitted
// from Figure 4-style data.
func ExampleFitParallelFrac() {
	p, err := amdahl.FitParallelFrac(16, 2.39)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p = %.2f\n", p)
	// Output: p = 0.62
}
