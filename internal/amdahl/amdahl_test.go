package amdahl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAmdahlBasics(t *testing.T) {
	a, err := NewAmdahl(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Speedup(1) != 1 {
		t.Errorf("S(1) = %v", a.Speedup(1))
	}
	if a.Speedup(0) != 1 || a.Speedup(-3) != 1 {
		t.Errorf("degenerate thread counts should clamp to 1")
	}
	// S(2) = 1/(0.4 + 0.3) = 1/0.7.
	if got := a.Speedup(2); math.Abs(got-1/0.7) > 1e-12 {
		t.Errorf("S(2) = %v", got)
	}
	// Limit = 1/(1-p) = 2.5.
	if got := a.Limit(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("Limit = %v", got)
	}
	perfect, err := NewAmdahl(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := perfect.Speedup(8); math.Abs(got-8) > 1e-12 {
		t.Errorf("perfect S(8) = %v", got)
	}
	if !math.IsInf(perfect.Limit(), 1) {
		t.Errorf("perfect limit should be +Inf")
	}
	serial, err := NewAmdahl(0)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Speedup(64) != 1 {
		t.Errorf("serial S(64) = %v", serial.Speedup(64))
	}
}

func TestNewAmdahlErrors(t *testing.T) {
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewAmdahl(p); err == nil {
			t.Errorf("p=%v should error", p)
		}
	}
}

func TestGustafson(t *testing.T) {
	g := Gustafson{ParallelFrac: 0.9}
	if g.Speedup(1) != 1 {
		t.Errorf("S(1) = %v", g.Speedup(1))
	}
	if got := g.Speedup(10); math.Abs(got-9.1) > 1e-12 {
		t.Errorf("S(10) = %v", got)
	}
	// Gustafson dominates Amdahl for the same p.
	a, _ := NewAmdahl(0.9)
	for n := 2; n <= 64; n *= 2 {
		if g.Speedup(n) < a.Speedup(n) {
			t.Errorf("Gustafson below Amdahl at n=%d", n)
		}
	}
}

func TestWithOverhead(t *testing.T) {
	a, _ := NewAmdahl(0.95)
	w := WithOverhead{Base: a, PerCoeff: 0.05}
	if w.Speedup(1) != 1 {
		t.Errorf("S(1) = %v", w.Speedup(1))
	}
	if w.Speedup(8) >= a.Speedup(8) {
		t.Errorf("overhead should reduce speedup")
	}
	// With strong overhead, speed-up eventually declines.
	strong := WithOverhead{Base: a, PerCoeff: 0.2}
	if strong.Speedup(64) >= strong.Speedup(4) {
		t.Errorf("strong overhead should bend the curve down: S(4)=%v S(64)=%v",
			strong.Speedup(4), strong.Speedup(64))
	}
}

func TestFitParallelFrac(t *testing.T) {
	// Round trip through known fractions.
	for _, p := range []float64{0.3, 0.6, 0.62, 0.85, 0.95} {
		a, _ := NewAmdahl(p)
		for _, n := range []int{2, 8, 16, 64} {
			got, err := FitParallelFrac(n, a.Speedup(n))
			if err != nil {
				t.Fatalf("p=%v n=%d: %v", p, n, err)
			}
			if math.Abs(got-p) > 1e-9 {
				t.Errorf("p=%v n=%d: fitted %v", p, n, got)
			}
		}
	}
	if _, err := FitParallelFrac(1, 1); err == nil {
		t.Errorf("n=1 should error")
	}
	if _, err := FitParallelFrac(4, 0.5); err == nil {
		t.Errorf("speedup <1 should error")
	}
	if _, err := FitParallelFrac(4, 5); err == nil {
		t.Errorf("superlinear should error")
	}
}

func TestBestThreads(t *testing.T) {
	// Efficiency S(n)/n strictly decreases for Amdahl with p<1, so the
	// best efficiency is at 1 thread.
	a, _ := NewAmdahl(0.7)
	n, eff := BestThreads(a, 8)
	if n != 1 || eff != 1 {
		t.Errorf("BestThreads = %d, %v", n, eff)
	}
	// Perfect scaling ties everywhere; first (lowest) wins.
	p, _ := NewAmdahl(1)
	if n, _ := BestThreads(p, 8); n != 1 {
		t.Errorf("perfect scaling best = %d", n)
	}
}

// Property: Amdahl speed-up is within [1, n] and monotone in n.
func TestAmdahlBoundsProperty(t *testing.T) {
	f := func(praw float64, nraw uint8) bool {
		p := math.Mod(math.Abs(praw), 1)
		n := 1 + int(nraw)%64
		a, err := NewAmdahl(p)
		if err != nil {
			return false
		}
		s := a.Speedup(n)
		if s < 1-1e-12 || s > float64(n)+1e-12 {
			return false
		}
		return a.Speedup(n+1) >= s-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

// Property: fitting the fraction from any (n, S(n)) pair recovers p.
func TestFitRoundTripProperty(t *testing.T) {
	f := func(praw float64, nraw uint8) bool {
		p := math.Mod(math.Abs(praw), 0.999)
		n := 2 + int(nraw)%63
		a, err := NewAmdahl(p)
		if err != nil {
			return false
		}
		got, err := FitParallelFrac(n, a.Speedup(n))
		if err != nil {
			return false
		}
		return math.Abs(got-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}
