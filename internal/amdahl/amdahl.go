// Package amdahl implements the speed-up laws the paper's application
// model rests on. Figure 4 of the paper shows speed-up factors "based on
// simulations conducted on gem5 and Amdahl's law"; the parallelism wall it
// illustrates — speed-ups saturating far below the thread count — is what
// motivates running multiple application instances instead of one
// wide-open application.
package amdahl

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid is returned for non-physical law parameters or thread counts.
var ErrInvalid = errors.New("amdahl: invalid")

// Law maps a parallel thread count to a speed-up factor relative to a
// single thread.
type Law interface {
	// Speedup returns the speed-up for n ≥ 1 threads. Implementations
	// return 1 for n == 1 and are monotone non-decreasing in n.
	Speedup(n int) float64
}

// Amdahl is the classic fixed-workload law: S(n) = 1 / ((1−p) + p/n),
// where p is the parallelizable fraction of the program.
type Amdahl struct {
	ParallelFrac float64
}

// NewAmdahl validates p ∈ [0, 1].
func NewAmdahl(p float64) (Amdahl, error) {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return Amdahl{}, fmt.Errorf("%w: parallel fraction %g", ErrInvalid, p)
	}
	return Amdahl{ParallelFrac: p}, nil
}

// Speedup implements Law.
func (a Amdahl) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / ((1 - a.ParallelFrac) + a.ParallelFrac/float64(n))
}

// Limit returns the asymptotic speed-up 1/(1−p) (∞ for p == 1).
func (a Amdahl) Limit() float64 {
	if a.ParallelFrac >= 1 {
		return math.Inf(1)
	}
	return 1 / (1 - a.ParallelFrac)
}

// Gustafson is the scaled-workload law: S(n) = (1−p) + p·n. Included for
// comparison studies; the paper's dependent-thread instances follow
// Amdahl, not Gustafson.
type Gustafson struct {
	ParallelFrac float64
}

// Speedup implements Law.
func (g Gustafson) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	return (1 - g.ParallelFrac) + g.ParallelFrac*float64(n)
}

// WithOverhead wraps a law with a per-thread synchronization overhead:
// S'(n) = S(n) / (1 + c·(n−1)). It models the communication cost that
// makes gem5-measured curves fall below pure Amdahl at high thread counts,
// and can make speed-up non-monotone (a real effect: adding threads can
// hurt).
type WithOverhead struct {
	Base     Law
	PerCoeff float64 // overhead coefficient c ≥ 0
}

// Speedup implements Law.
func (w WithOverhead) Speedup(n int) float64 {
	if n <= 1 {
		return 1
	}
	return w.Base.Speedup(n) / (1 + w.PerCoeff*float64(n-1))
}

// FitParallelFrac recovers the Amdahl parallel fraction from one measured
// (threads, speedup) observation: p = n·(S−1) / (S·(n−1)). This is how the
// per-application fractions are back-derived from Figure 4-style data.
func FitParallelFrac(threads int, speedup float64) (float64, error) {
	if threads < 2 {
		return 0, fmt.Errorf("%w: need ≥2 threads to fit, got %d", ErrInvalid, threads)
	}
	if speedup < 1 || speedup > float64(threads) {
		return 0, fmt.Errorf("%w: speedup %g outside [1, %d]", ErrInvalid, speedup, threads)
	}
	n := float64(threads)
	return n * (speedup - 1) / (speedup * (n - 1)), nil
}

// BestThreads returns the thread count in [1, maxThreads] that maximizes
// speedup per active core S(n)/n — the efficiency metric the DVFS
// trade-off of §3.3 pivots on — along with that efficiency.
func BestThreads(l Law, maxThreads int) (int, float64) {
	best, bestEff := 1, l.Speedup(1)
	for n := 1; n <= maxThreads; n++ {
		if eff := l.Speedup(n) / float64(n); eff > bestEff {
			best, bestEff = n, eff
		}
	}
	return best, bestEff
}
