// Package verify implements the golden-corpus verification subsystem
// behind `darksim verify`: every figure is recomputed under canonical
// options and checked three ways — against the embedded golden corpus
// with per-cell tolerances, against the paper's physics invariants, and
// differentially across the text/CSV/JSON/HTTP renderings plus a
// sequential warm-cache recomputation that must be byte-identical.
package verify

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"

	"darksim/internal/experiments"
	"darksim/internal/report"
	"darksim/internal/runner"
)

// transientDurationS pins fig11–fig13 to a short transient so a full
// verification run stays interactive; the value is recorded in each
// golden file's options.
const transientDurationS = 2.0

// figureSpec is one figure's canonical verification configuration.
type figureSpec struct {
	ID string
	// Options records any non-default options the run uses, for the
	// golden file.
	Options map[string]string
	Run     func(ctx context.Context) (experiments.Renderer, error)
}

// Specs returns the canonical run configuration for every registered
// figure: defaults everywhere except the transient figures, which run
// with a short pinned duration.
func Specs() []figureSpec {
	durOpt := map[string]string{"duration_s": strconv.FormatFloat(transientDurationS, 'g', -1, 64)}
	var specs []figureSpec
	for _, e := range experiments.Registry() {
		sp := figureSpec{ID: e.ID, Run: e.Run}
		switch e.ID {
		case "fig11":
			sp.Options = durOpt
			sp.Run = func(ctx context.Context) (experiments.Renderer, error) {
				return experiments.Fig11(ctx, experiments.Fig11Options{DurationS: transientDurationS})
			}
		case "fig12":
			sp.Options = durOpt
			sp.Run = func(ctx context.Context) (experiments.Renderer, error) {
				return experiments.Fig12(ctx, experiments.Fig12Options{DurationS: transientDurationS})
			}
		case "fig13":
			sp.Options = durOpt
			sp.Run = func(ctx context.Context) (experiments.Renderer, error) {
				return experiments.Fig13(ctx, experiments.Fig13Options{DurationS: transientDurationS})
			}
		}
		specs = append(specs, sp)
	}
	return specs
}

// Failure is one verification finding, naming the figure and check that
// produced it.
type Failure struct {
	Figure string
	Check  string
	Detail string
}

func (f Failure) String() string { return fmt.Sprintf("%s [%s]: %s", f.Figure, f.Check, f.Detail) }

// Options configures a verification run.
type Options struct {
	// Figures restricts the run to these ids; empty means all.
	Figures []string
	// Update regenerates the golden corpus instead of checking it.
	Update bool
	// GoldenDir is where -update writes; defaults to
	// experiments.GoldenDir.
	GoldenDir string
	// Golden is the corpus to check against; defaults to the embedded
	// experiments.GoldenCorpus().
	Golden fs.FS
	// Workers bounds the parallel first pass; 0 means
	// runner.DefaultWorkers().
	Workers int
	// SkipRecompute skips the sequential determinism pass (for quick
	// subset runs in tests).
	SkipRecompute bool
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

// figureResult couples a spec with its computed result.
type figureResult struct {
	spec   figureSpec
	res    experiments.Renderer
	tables []*report.Table
}

// Run executes the verification pipeline and returns every failure. A
// non-nil error means the run itself could not complete (unknown figure,
// computation error); failures mean the checks ran and found drift.
func Run(ctx context.Context, opt Options) ([]Failure, error) {
	out := opt.Out
	if out == nil {
		out = io.Discard
	}
	if opt.Golden == nil {
		opt.Golden = experiments.GoldenCorpus()
	}
	if opt.GoldenDir == "" {
		opt.GoldenDir = experiments.GoldenDir
	}
	specs, err := selectSpecs(opt.Figures)
	if err != nil {
		return nil, err
	}

	// Pass A: compute every figure in parallel from a cold platform
	// cache — the canonical results all three check layers consume.
	experiments.ResetPlatforms()
	fmt.Fprintf(out, "verify: computing %d figure(s)\n", len(specs))
	results, err := computeAll(ctx, specs, opt.Workers)
	if err != nil {
		return nil, err
	}

	if opt.Update {
		for _, fr := range results {
			path, err := writeGolden(opt.GoldenDir, &GoldenFile{
				ID:        fr.spec.ID,
				Options:   fr.spec.Options,
				Tolerance: DefaultTolerance,
				Tables:    fr.tables,
			})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(out, "verify: wrote %s\n", path)
		}
		return nil, nil
	}

	var fails []Failure

	// Layer 1: golden corpus.
	for _, fr := range results {
		g, err := loadGolden(opt.Golden, fr.spec.ID)
		if err != nil {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "golden", Detail: err.Error()})
			continue
		}
		fails = append(fails, compareToGolden(fr.spec.ID, fr.tables, g)...)
	}
	fmt.Fprintf(out, "verify: golden corpus checked (%d failure(s) so far)\n", len(fails))

	// Layer 2: physics invariants.
	fails = append(fails, runInvariants(results)...)
	fmt.Fprintf(out, "verify: invariants checked (%d failure(s) so far)\n", len(fails))

	// Layer 3: differential renderings.
	for _, fr := range results {
		fails = append(fails, diffRenderings(fr.spec.ID, fr.tables)...)
	}
	fails = append(fails, diffHTTP(results)...)
	fmt.Fprintf(out, "verify: differential renderings checked (%d failure(s) so far)\n", len(fails))

	// Layer 3b: sequential warm-cache recomputation must render
	// byte-identically — parallelism and platform-cache state must not
	// leak into results.
	if !opt.SkipRecompute {
		fmt.Fprintf(out, "verify: recomputing sequentially for determinism\n")
		fails = append(fails, checkDeterminism(ctx, results)...)
	}

	// Layer 4: scenario-engine differential — the declarative front end
	// must reproduce the paper's fixed platforms bit for bit. Full runs
	// only: the sweep is standalone and a -figs subset asks for less.
	if len(opt.Figures) == 0 {
		fmt.Fprintf(out, "verify: scenario differential against fixed platforms\n")
		fails = append(fails, checkScenarioDifferential(ctx)...)
	}

	// Layer 5: policy-sandbox smoke — the safe policy trio must pass
	// every trace assertion and the negative control must be caught.
	// Full runs only, like layer 4.
	if len(opt.Figures) == 0 {
		fmt.Fprintf(out, "verify: policy sandbox assertions\n")
		fails = append(fails, checkPolicySandbox(ctx)...)
	}
	return fails, nil
}

// selectSpecs resolves the figure filter against the canonical specs.
func selectSpecs(figures []string) ([]figureSpec, error) {
	specs := Specs()
	if len(figures) == 0 {
		return specs, nil
	}
	byID := make(map[string]figureSpec, len(specs))
	for _, sp := range specs {
		byID[sp.ID] = sp
	}
	var picked []figureSpec
	for _, id := range figures {
		sp, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("verify: unknown figure %q", id)
		}
		picked = append(picked, sp)
	}
	sort.SliceStable(picked, func(i, j int) bool { return figOrder(picked[i].ID) < figOrder(picked[j].ID) })
	return picked, nil
}

// figOrder sorts figN ids numerically.
func figOrder(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "fig"))
	if err != nil {
		return 1 << 30
	}
	return n
}

// computeAll runs every spec through the bounded parallel runner.
func computeAll(ctx context.Context, specs []figureSpec, workers int) ([]*figureResult, error) {
	return runner.Map(ctx, specs, runner.Options{Workers: workers},
		func(ctx context.Context, _ int, sp figureSpec) (*figureResult, error) {
			res, err := sp.Run(ctx)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sp.ID, err)
			}
			tables, ok := experiments.TablesOf(res)
			if !ok {
				return nil, fmt.Errorf("%s: result has no structured tables", sp.ID)
			}
			return &figureResult{spec: sp, res: res, tables: tables}, nil
		})
}

// runInvariants evaluates every invariant whose input figure was
// computed this run; standalone invariants always run.
func runInvariants(results []*figureResult) []Failure {
	byID := make(map[string]*figureResult, len(results))
	for _, fr := range results {
		byID[fr.spec.ID] = fr
	}
	var fails []Failure
	for _, inv := range Invariants() {
		figure := inv.Figure
		var input experiments.Renderer
		if figure != "" {
			fr, ok := byID[figure]
			if !ok {
				continue // subset run without this invariant's figure
			}
			input = fr.res
		} else {
			figure = "model"
		}
		if err := inv.Check(input); err != nil {
			fails = append(fails, Failure{Figure: figure, Check: "invariant:" + inv.Name,
				Detail: fmt.Sprintf("%v — pins %s", err, inv.Pins)})
		}
	}
	return fails
}

// renderAll concatenates the rendered text of a figure's tables; the
// determinism check compares these byte-for-byte.
func renderAll(tables []*report.Table) (string, error) {
	var buf bytes.Buffer
	for _, t := range tables {
		if err := t.Render(&buf); err != nil {
			return "", err
		}
	}
	return buf.String(), nil
}

// checkDeterminism recomputes every figure sequentially against the now
// warm platform cache and requires byte-identical rendered output: the
// parallel/sequential and cold/warm-cache axes must not change results.
func checkDeterminism(ctx context.Context, results []*figureResult) []Failure {
	var fails []Failure
	for _, fr := range results {
		want, err := renderAll(fr.tables)
		if err != nil {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "determinism", Detail: err.Error()})
			continue
		}
		res, err := fr.spec.Run(ctx)
		if err != nil {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "determinism",
				Detail: fmt.Sprintf("sequential recomputation failed: %v", err)})
			continue
		}
		tables, ok := experiments.TablesOf(res)
		if !ok {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "determinism",
				Detail: "sequential recomputation lost structured tables"})
			continue
		}
		got, err := renderAll(tables)
		if err != nil {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "determinism", Detail: err.Error()})
			continue
		}
		if got != want {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "determinism",
				Detail: fmt.Sprintf("warm-cache sequential rerun rendered differently (first divergence at byte %d of %d)",
					firstDiff(got, want), len(want))})
		}
	}
	return fails
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b string) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
