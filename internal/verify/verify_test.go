package verify

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"darksim/internal/experiments"
	"darksim/internal/report"
)

func TestCellClose(t *testing.T) {
	tol := Tolerance{Abs: 1e-6, Rel: 2e-3}
	cases := []struct {
		got, want string
		ok        bool
	}{
		{"1.000", "1.000", true},
		{"1.001", "1.000", true},   // within rel
		{"1.003", "1.000", false},  // outside rel
		{"0.89", "0.88", false},    // an ITRS factor flip must fail
		{"2.17x", "2.17x", true},   // suffix, exact
		{"2.171x", "2.170x", true}, // suffix, within rel
		{"37%", "38%", false},      // percent flip fails
		{"x264", "x264", true},     // non-numeric, exact
		{"x264", "x265", false},    // non-numeric, different
		{"0.0000005", "0", true},   // within abs around zero
	}
	for _, c := range cases {
		if got := cellClose(c.got, c.want, tol); got != c.ok {
			t.Errorf("cellClose(%q, %q) = %v, want %v", c.got, c.want, got, c.ok)
		}
	}
}

func TestNoteClose(t *testing.T) {
	tol := Tolerance{Abs: 1e-6, Rel: 2e-3}
	if !noteClose("max dark silicon at fmax: 37.001%", "max dark silicon at fmax: 37%", tol) {
		t.Error("note with in-tolerance number should match")
	}
	if noteClose("max dark silicon at fmax: 39%", "max dark silicon at fmax: 37%", tol) {
		t.Error("note with drifted number should not match")
	}
	if noteClose("a b", "a b c", tol) {
		t.Error("different token counts should not match")
	}
}

func TestCompareToGoldenNamesCell(t *testing.T) {
	mk := func() *report.Table {
		tb := &report.Table{
			Title:   "Golden table",
			Columns: []string{"node", "Vdd [V]"},
		}
		tb.AddRow("16", "0.89")
		tb.AddRow("11", "0.81")
		tb.AddNote("two nodes")
		return tb
	}
	g := &GoldenFile{ID: "figX", Tolerance: DefaultTolerance, Tables: []*report.Table{mk()}}

	if fails := compareToGolden("figX", []*report.Table{mk()}, g); len(fails) != 0 {
		t.Fatalf("identical tables reported failures: %v", fails)
	}
	mut := mk()
	mut.Rows[0][1] = "0.88"
	fails := compareToGolden("figX", []*report.Table{mut}, g)
	if len(fails) != 1 {
		t.Fatalf("got %d failures, want 1: %v", len(fails), fails)
	}
	d := fails[0].Detail
	for _, want := range []string{"Golden table", "row 1", "Vdd [V]", `"0.88"`, `"0.89"`} {
		if !strings.Contains(d, want) {
			t.Errorf("failure detail %q does not name %q", d, want)
		}
	}
}

func TestParseRenderedTableRoundTrip(t *testing.T) {
	tb := &report.Table{
		Title:   "Figure X: cells with spaces and unicode (TDTM = 80 °C)",
		Columns: []string{"app", "T [°C]", "status"},
	}
	tb.AddRow("x264", "79.5", "ok")
	tb.AddRow("dedup", "81.2", "violates TDTM")
	tb.AddNote("one violation at ×1.1 over budget")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := parseRenderedTable(buf.String(), len(tb.Rows))
	if err != nil {
		t.Fatalf("parse: %v\ntext:\n%s", err, buf.String())
	}
	if err := tablesEqualExact(got, tb); err != nil {
		t.Fatalf("round-trip mismatch: %v\ntext:\n%s", err, buf.String())
	}
}

func TestDiffRenderingsClean(t *testing.T) {
	tb := &report.Table{Title: "T", Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddNote("n")
	if fails := diffRenderings("figX", []*report.Table{tb}); len(fails) != 0 {
		t.Fatalf("clean table produced failures: %v", fails)
	}
}

func TestInvariantEngineCatchesViolations(t *testing.T) {
	good := &experiments.Fig5Result{
		TDPs: []float64{220},
		Cells: map[float64][]experiments.Fig5Cell{
			220: {{App: "x264", FGHz: 3.6, ActivePercent: 62, DarkPercent: 38}},
		},
	}
	if err := checkDarkFractionRange(good); err != nil {
		t.Fatalf("valid result flagged: %v", err)
	}
	bad := &experiments.Fig5Result{
		TDPs: []float64{220},
		Cells: map[float64][]experiments.Fig5Cell{
			220: {{App: "x264", FGHz: 3.6, ActivePercent: 70, DarkPercent: 38}},
		},
	}
	if err := checkDarkFractionRange(bad); err == nil {
		t.Fatal("active+dark != 100 not flagged")
	}
	outOfRange := &experiments.Fig5Result{
		TDPs: []float64{220},
		Cells: map[float64][]experiments.Fig5Cell{
			220: {{App: "x264", FGHz: 3.6, ActivePercent: 120, DarkPercent: -20}},
		},
	}
	if err := checkDarkFractionRange(outOfRange); err == nil {
		t.Fatal("fraction outside [0,100] not flagged")
	}
}

func TestStandaloneInvariants(t *testing.T) {
	// The model-level invariants run against the real packages with no
	// figure input; they must hold on a clean tree.
	for _, inv := range Invariants() {
		if inv.Figure != "" {
			continue
		}
		if err := inv.Check(nil); err != nil {
			t.Errorf("%s: %v — pins %s", inv.Name, err, inv.Pins)
		}
	}
}

func TestSpecsCoverRegistry(t *testing.T) {
	specs := Specs()
	reg := experiments.Registry()
	if len(specs) != len(reg) {
		t.Fatalf("got %d specs, registry has %d figures", len(specs), len(reg))
	}
	for i, sp := range specs {
		if sp.ID != reg[i].ID {
			t.Errorf("spec %d is %s, registry has %s", i, sp.ID, reg[i].ID)
		}
	}
}

func TestSelectSpecsRejectsUnknown(t *testing.T) {
	if _, err := selectSpecs([]string{"fig99"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	picked, err := selectSpecs([]string{"fig5", "fig1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].ID != "fig1" || picked[1].ID != "fig5" {
		t.Fatalf("subset not sorted to figure order: %v", picked)
	}
}

// TestRunFastSubset runs the full pipeline (golden, invariants,
// differential, HTTP) over the cheap analytic figures against the
// committed corpus.
func TestRunFastSubset(t *testing.T) {
	fails, err := Run(context.Background(), Options{
		Figures:       []string{"fig1", "fig2", "fig4"},
		SkipRecompute: true,
		Out:           io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fails {
		t.Errorf("unexpected failure: %s", f)
	}
}
