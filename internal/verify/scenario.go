package verify

import (
	"context"
	"fmt"

	"darksim/internal/apps"
	"darksim/internal/experiments"
	"darksim/internal/scenario"
	"darksim/internal/tech"
)

// scenarioTDPs are the Figure 5/6 budgets the differential sweeps.
var scenarioTDPs = []float64{220, 185}

// scenarioApps spans the catalog's extremes: the hungriest app
// (swaptions), the headline app (x264) and the poorly-scaling one
// (canneal).
var scenarioApps = []string{"x264", "swaptions", "canneal"}

// checkScenarioDifferential pins the scenario engine to the paper's
// fixed platforms: for every node (100/198/361 cores), application and
// TDP, a paper-shaped symmetric spec compiled through internal/scenario
// must reproduce DarkSiliconUnderTDP exactly — same shared platform
// object, bit-identical active cores, GIPS, power and peak temperature.
// Any drift in spec normalization, floorplan compilation or the TDP-fill
// arithmetic shows up here as a named failure.
func checkScenarioDifferential(ctx context.Context) []Failure {
	var fails []Failure
	fail := func(node tech.Node, app string, tdp float64, check, format string, args ...any) {
		fails = append(fails, Failure{
			Figure: fmt.Sprintf("scenario %s %s TDP=%.0fW", node, app, tdp),
			Check:  check,
			Detail: fmt.Sprintf(format, args...),
		})
	}
	for _, node := range []tech.Node{tech.Node16, tech.Node11, tech.Node8} {
		for _, appName := range scenarioApps {
			for _, tdp := range scenarioTDPs {
				if err := ctx.Err(); err != nil {
					fail(node, appName, tdp, "scenario-diff", "context: %v", err)
					return fails
				}
				sc, err := scenario.Compile(scenario.SymmetricSpec(node, appName, tdp))
				if err != nil {
					fail(node, appName, tdp, "scenario-compile", "%v", err)
					continue
				}
				p, err := experiments.PlatformFor(node, experiments.CoresForNode(node))
				if err != nil {
					fail(node, appName, tdp, "scenario-diff", "platform: %v", err)
					continue
				}
				if sc.Platform != p {
					fail(node, appName, tdp, "scenario-diff",
						"compiled platform is not the shared cache entry for %s/%d cores",
						node, experiments.CoresForNode(node))
					continue
				}
				res, err := sc.Evaluate(ctx)
				if err != nil {
					fail(node, appName, tdp, "scenario-eval", "%v", err)
					continue
				}
				app, err := apps.ByName(appName)
				if err != nil {
					fail(node, appName, tdp, "scenario-diff", "%v", err)
					continue
				}
				want, err := p.DarkSiliconUnderTDP(app, tdp, sc.Tech.FmaxGHz)
				if err != nil {
					fail(node, appName, tdp, "scenario-diff", "DarkSiliconUnderTDP: %v", err)
					continue
				}
				g, w := res.Summary, want.Summary
				// Exact equality, not tolerance: the scenario engine must
				// take the same arithmetic path as the figure machinery.
				if g.ActiveCores != w.ActiveCores {
					fail(node, appName, tdp, "scenario-diff", "active cores %d != %d", g.ActiveCores, w.ActiveCores)
				}
				if g.TotalCores != w.TotalCores {
					fail(node, appName, tdp, "scenario-diff", "total cores %d != %d", g.TotalCores, w.TotalCores)
				}
				if g.GIPS != w.GIPS {
					fail(node, appName, tdp, "scenario-diff", "GIPS %v != %v", g.GIPS, w.GIPS)
				}
				if g.PowerW != w.PowerW {
					fail(node, appName, tdp, "scenario-diff", "power %v != %v W", g.PowerW, w.PowerW)
				}
				if g.PeakTempC != w.PeakTempC {
					fail(node, appName, tdp, "scenario-diff", "peak %v != %v °C", g.PeakTempC, w.PeakTempC)
				}
			}
		}
	}
	return fails
}
