package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"time"

	"darksim/internal/experiments"
	"darksim/internal/report"
	"darksim/internal/service"
)

// tablesEqualExact compares two tables cell-for-cell with no tolerance
// (differential checks compare renderings of the same in-memory table,
// so any difference is a serialization bug, not float churn). It treats
// nil and empty slices as equal and describes the first mismatch.
func tablesEqualExact(got, want *report.Table) error {
	if got.Title != want.Title {
		return fmt.Errorf("title: got %q, want %q", got.Title, want.Title)
	}
	if len(got.Columns) != len(want.Columns) {
		return fmt.Errorf("column count: got %d, want %d", len(got.Columns), len(want.Columns))
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			return fmt.Errorf("column %d: got %q, want %q", i+1, got.Columns[i], want.Columns[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Errorf("row count: got %d, want %d", len(got.Rows), len(want.Rows))
	}
	for ri := range want.Rows {
		if len(got.Rows[ri]) != len(want.Rows[ri]) {
			return fmt.Errorf("row %d: got %d cells, want %d", ri+1, len(got.Rows[ri]), len(want.Rows[ri]))
		}
		for ci := range want.Rows[ri] {
			if got.Rows[ri][ci] != want.Rows[ri][ci] {
				return fmt.Errorf("row %d, col %d: got %q, want %q", ri+1, ci+1, got.Rows[ri][ci], want.Rows[ri][ci])
			}
		}
	}
	if len(got.Notes) != len(want.Notes) {
		return fmt.Errorf("note count: got %d, want %d", len(got.Notes), len(want.Notes))
	}
	for i := range want.Notes {
		if got.Notes[i] != want.Notes[i] {
			return fmt.Errorf("note %d: got %q, want %q", i+1, got.Notes[i], want.Notes[i])
		}
	}
	return nil
}

// isRuleLine reports whether a rendered line is the dash rule under the
// header: dash runs separated by exactly the two-space column gap.
func isRuleLine(ln string) bool {
	if ln == "" {
		return false
	}
	for _, seg := range strings.Split(ln, "  ") {
		if seg == "" || strings.Trim(seg, "-") != "" {
			return false
		}
	}
	return true
}

// parseRenderedTable inverts Table.Render: the rule line's dash-run
// widths give the exact column boundaries, so cells containing spaces
// slice back out intact. wantRows separates data rows from trailing
// free-form notes, which the text format cannot distinguish on its own.
func parseRenderedTable(s string, wantRows int) (*report.Table, error) {
	lines := strings.Split(s, "\n")
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	rule := -1
	for i, ln := range lines {
		if isRuleLine(ln) {
			rule = i
			break
		}
	}
	if rule < 1 {
		return nil, fmt.Errorf("no header rule line in rendered text")
	}
	t := &report.Table{}
	if rule >= 2 {
		t.Title = strings.Join(lines[:rule-1], "\n")
	}
	var widths []int
	for _, seg := range strings.Split(lines[rule], "  ") {
		widths = append(widths, len(seg))
	}
	// Slice in rune space: fmt's %-*s pads to the width in runes, so
	// cells containing multi-byte characters (°C, ×) keep every line at
	// the same per-column rune width even when byte offsets diverge.
	slice := func(ln string) []string {
		rs := []rune(ln)
		cells := make([]string, len(widths))
		pos := 0
		for i, w := range widths {
			start, end := pos, pos+w
			if start > len(rs) {
				start = len(rs)
			}
			if end > len(rs) {
				end = len(rs)
			}
			cells[i] = strings.TrimRight(string(rs[start:end]), " ")
			pos = end + 2
		}
		return cells
	}
	t.Columns = slice(lines[rule-1])
	body := lines[rule+1:]
	if len(body) < wantRows {
		return nil, fmt.Errorf("rendered text has %d body lines, want at least %d rows", len(body), wantRows)
	}
	for _, ln := range body[:wantRows] {
		t.Rows = append(t.Rows, slice(ln))
	}
	t.Notes = append(t.Notes, body[wantRows:]...)
	return t, nil
}

// diffRenderings checks that the text, CSV and JSON renderings of one
// figure's tables all decode back to the same cells.
func diffRenderings(id string, tables []*report.Table) []Failure {
	var fails []Failure
	fail := func(check string, ti int, err error) {
		fails = append(fails, Failure{Figure: id, Check: check,
			Detail: fmt.Sprintf("table %d (%s): %v", ti+1, tables[ti].Title, err)})
	}
	for ti, t := range tables {
		var buf bytes.Buffer
		if err := t.Render(&buf); err != nil {
			fail("diff-text", ti, err)
		} else if parsed, err := parseRenderedTable(buf.String(), len(t.Rows)); err != nil {
			fail("diff-text", ti, err)
		} else if err := tablesEqualExact(parsed, t); err != nil {
			fail("diff-text", ti, err)
		}

		buf.Reset()
		if err := t.WriteCSV(&buf); err != nil {
			fail("diff-csv", ti, err)
		} else if parsed, err := report.ReadCSV(bytes.NewReader(buf.Bytes())); err != nil {
			fail("diff-csv", ti, err)
		} else {
			// CSV carries no title; compare the grid and notes only.
			parsed.Title = t.Title
			if err := tablesEqualExact(parsed, t); err != nil {
				fail("diff-csv", ti, err)
			}
		}

		data, err := json.Marshal(t)
		if err != nil {
			fail("diff-json", ti, err)
			continue
		}
		var parsed report.Table
		if err := json.Unmarshal(data, &parsed); err != nil {
			fail("diff-json", ti, err)
		} else if err := tablesEqualExact(&parsed, t); err != nil {
			fail("diff-json", ti, err)
		}
	}
	return fails
}

// stubResult serves precomputed tables through the Renderer/Tabler pair,
// so the HTTP differential check exercises the real service pipeline
// (routing, coalescing, JSON encoding) without recomputing figures.
type stubResult struct{ tables []*report.Table }

func (s stubResult) Render(w io.Writer) error {
	for _, t := range s.tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func (s stubResult) Tables() []*report.Table { return s.tables }

// diffHTTP serves every figure's precomputed tables through an
// in-process service.Server and checks the JSON the HTTP layer returns
// decodes to the same cells.
func diffHTTP(results []*figureResult) []Failure {
	exps := make([]experiments.Experiment, 0, len(results))
	for _, fr := range results {
		res := stubResult{tables: fr.tables}
		exps = append(exps, experiments.Experiment{
			ID:          fr.spec.ID,
			Description: "verification stub serving precomputed tables",
			Run: func(context.Context) (experiments.Renderer, error) {
				return res, nil
			},
		})
	}
	srv := service.New(service.Config{}, exps)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	}()
	var fails []Failure
	for _, fr := range results {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/experiments/"+fr.spec.ID, nil))
		if rec.Code != 200 {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "diff-http",
				Detail: fmt.Sprintf("status %d: %s", rec.Code, strings.TrimSpace(rec.Body.String()))})
			continue
		}
		var resp struct {
			Tables []*report.Table `json:"tables"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "diff-http", Detail: err.Error()})
			continue
		}
		if len(resp.Tables) != len(fr.tables) {
			fails = append(fails, Failure{Figure: fr.spec.ID, Check: "diff-http",
				Detail: fmt.Sprintf("table count: got %d, want %d", len(resp.Tables), len(fr.tables))})
			continue
		}
		for ti := range fr.tables {
			if err := tablesEqualExact(resp.Tables[ti], fr.tables[ti]); err != nil {
				fails = append(fails, Failure{Figure: fr.spec.ID, Check: "diff-http",
					Detail: fmt.Sprintf("table %d (%s): %v", ti+1, fr.tables[ti].Title, err)})
			}
		}
	}
	return fails
}
