package verify

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"darksim/internal/report"
)

// Tolerance is the per-cell comparison budget for one golden file.
// A numeric cell matches when |got − want| ≤ Abs + Rel·|want|; the
// defaults are tight enough that flipping the last printed digit of any
// ITRS factor or Eq.(2) constant fails, while cross-machine float churn
// below the printed precision passes.
type Tolerance struct {
	Abs float64 `json:"abs"`
	Rel float64 `json:"rel"`
}

// DefaultTolerance is written into regenerated golden files; individual
// files can be hand-tuned afterwards if a figure needs a looser budget.
var DefaultTolerance = Tolerance{Abs: 1e-6, Rel: 2e-3}

// GoldenFile is the schema of one corpus entry: the canonical tables of
// a figure plus the options they were computed under and the tolerance
// they are compared with.
type GoldenFile struct {
	ID        string            `json:"id"`
	Options   map[string]string `json:"options,omitempty"`
	Tolerance Tolerance         `json:"tolerance"`
	Tables    []*report.Table   `json:"tables"`
}

// loadGolden reads one figure's corpus entry from the (usually embedded)
// corpus file system.
func loadGolden(fsys fs.FS, id string) (*GoldenFile, error) {
	data, err := fs.ReadFile(fsys, id+".json")
	if err != nil {
		return nil, fmt.Errorf("golden corpus for %s: %w (regenerate with `darksim verify -update`)", id, err)
	}
	var g GoldenFile
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("golden corpus for %s: %w", id, err)
	}
	if g.ID != id {
		return nil, fmt.Errorf("golden corpus for %s: file declares id %q", id, g.ID)
	}
	return &g, nil
}

// writeGolden writes one corpus entry under dir as indented JSON.
func writeGolden(dir string, g *GoldenFile) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, g.ID+".json")
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// numericSuffixes are unit decorations the cell formatter appends; they
// are stripped symmetrically before a numeric comparison ("2.17x",
// "37%").
var numericSuffixes = []string{"x", "%"}

// parseNumeric extracts the numeric value of a formatted cell, reporting
// whether the cell is numeric at all.
func parseNumeric(s string) (float64, bool) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, true
	}
	for _, suf := range numericSuffixes {
		if rest, ok := strings.CutSuffix(s, suf); ok {
			if v, err := strconv.ParseFloat(rest, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// cellClose compares one formatted cell against its golden value: exact
// match, or numeric match within tolerance when both sides parse.
func cellClose(got, want string, tol Tolerance) bool {
	if got == want {
		return true
	}
	gv, ok1 := parseNumeric(got)
	wv, ok2 := parseNumeric(want)
	if !ok1 || !ok2 {
		return false
	}
	return math.Abs(gv-wv) <= tol.Abs+tol.Rel*math.Abs(wv)
}

// noteClose compares free-form note lines token by token so embedded
// numbers get the same tolerance as table cells ("max dark silicon at
// fmax: 37%").
func noteClose(got, want string, tol Tolerance) bool {
	if got == want {
		return true
	}
	gt, wt := strings.Fields(got), strings.Fields(want)
	if len(gt) != len(wt) {
		return false
	}
	for i := range gt {
		if !cellClose(strings.Trim(gt[i], "(),:"), strings.Trim(wt[i], "(),:"), tol) {
			return false
		}
	}
	return true
}

// compareToGolden diffs the recomputed tables of one figure against its
// corpus entry, naming every mismatched cell.
func compareToGolden(id string, got []*report.Table, g *GoldenFile) []Failure {
	var fails []Failure
	fail := func(detail string, args ...any) {
		fails = append(fails, Failure{Figure: id, Check: "golden", Detail: fmt.Sprintf(detail, args...)})
	}
	if len(got) != len(g.Tables) {
		fail("table count: got %d, corpus has %d", len(got), len(g.Tables))
		return fails
	}
	tol := g.Tolerance
	for ti, gt := range got {
		want := g.Tables[ti]
		name := want.Title
		if name == "" {
			name = fmt.Sprintf("table %d", ti+1)
		}
		if !noteClose(gt.Title, want.Title, tol) {
			fail("%s: title: got %q, want %q", name, gt.Title, want.Title)
			continue
		}
		if len(gt.Columns) != len(want.Columns) {
			fail("%s: column count: got %d, want %d", name, len(gt.Columns), len(want.Columns))
			continue
		}
		for ci := range want.Columns {
			if gt.Columns[ci] != want.Columns[ci] {
				fail("%s: column %d: got %q, want %q", name, ci+1, gt.Columns[ci], want.Columns[ci])
			}
		}
		if len(gt.Rows) != len(want.Rows) {
			fail("%s: row count: got %d, want %d", name, len(gt.Rows), len(want.Rows))
			continue
		}
		for ri := range want.Rows {
			for ci := range want.Rows[ri] {
				if ci >= len(gt.Rows[ri]) {
					fail("%s: row %d: got %d cells, want %d", name, ri+1, len(gt.Rows[ri]), len(want.Rows[ri]))
					break
				}
				if !cellClose(gt.Rows[ri][ci], want.Rows[ri][ci], tol) {
					col := fmt.Sprintf("%d", ci+1)
					if ci < len(want.Columns) {
						col = fmt.Sprintf("%d (%s)", ci+1, want.Columns[ci])
					}
					fail("%s: row %d, col %s: got %q, want %q (tol abs %g rel %g)",
						name, ri+1, col, gt.Rows[ri][ci], want.Rows[ri][ci], tol.Abs, tol.Rel)
				}
			}
		}
		if len(gt.Notes) != len(want.Notes) {
			fail("%s: note count: got %d, want %d", name, len(gt.Notes), len(want.Notes))
			continue
		}
		for ni := range want.Notes {
			if !noteClose(gt.Notes[ni], want.Notes[ni], tol) {
				fail("%s: note %d: got %q, want %q", name, ni+1, gt.Notes[ni], want.Notes[ni])
			}
		}
	}
	return fails
}
