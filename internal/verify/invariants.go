package verify

import (
	"context"
	"fmt"
	"math"

	"darksim/internal/apps"
	"darksim/internal/endofscaling"
	"darksim/internal/experiments"
	"darksim/internal/tech"
	"darksim/internal/tsp"
	"darksim/internal/vf"
)

// Invariant is one physics property of the paper's model that must hold
// on every recomputation, independent of the golden corpus. Figure names
// the result the check consumes; an empty Figure means the invariant is
// evaluated standalone against the model packages.
type Invariant struct {
	Name string
	// Pins cites the paper section or equation the invariant encodes.
	Pins string
	// Figure is the experiment id whose typed result Check consumes, or
	// "" for standalone invariants.
	Figure string
	Check  func(r experiments.Renderer) error
}

// Invariants lists the physics checks run by every `darksim verify`.
func Invariants() []Invariant {
	return []Invariant{
		{
			Name:   "dark-fraction-range",
			Pins:   "§4/Fig5: dark + active area partition the chip",
			Figure: "fig5",
			Check:  checkDarkFractionRange,
		},
		{
			Name: "dark-monotone-nodes",
			Pins: "§3/Fig1: fixed budget ⇒ dark fraction non-decreasing 16→11→8 nm",
			// Standalone: evaluated directly on the end-of-scaling model
			// for every catalog application.
			Check: checkDarkMonotoneNodes,
		},
		{
			Name:   "eq2-curve-monotone",
			Pins:   "Eq.(2)/Fig2: f rises with Vdd; NTC ≤ STC ≤ Boost",
			Figure: "fig2",
			Check:  checkEq2CurveMonotone,
		},
		{
			Name:  "vdd-ladder-monotone",
			Pins:  "Eq.(2) inverse: ladder voltages strictly increase with f and round-trip",
			Check: checkLadderMonotone,
		},
		{
			Name:   "amdahl-limit",
			Pins:   "§2: S(n) ∈ [1, 1/(1−p)] and non-decreasing in n",
			Figure: "fig4",
			Check:  checkAmdahlLimit,
		},
		{
			Name:   "tsp-dominates-core-power",
			Pins:   "§5: per-core power at the TSP operating point never exceeds the TSP budget",
			Figure: "fig10",
			Check:  checkTSPDominates,
		},
		{
			Name:   "boost-energy-per-work",
			Pins:   "§6/Fig11: boosting buys throughput, never energy per unit work",
			Figure: "fig11",
			Check:  checkBoostEnergy,
		},
	}
}

func checkDarkFractionRange(r experiments.Renderer) error {
	res, ok := r.(*experiments.Fig5Result)
	if !ok {
		return fmt.Errorf("unexpected result type %T", r)
	}
	for _, tdp := range res.TDPs {
		for _, c := range res.Cells[tdp] {
			if c.ActivePercent < 0 || c.ActivePercent > 100 || c.DarkPercent < 0 || c.DarkPercent > 100 {
				return fmt.Errorf("TDP %.0f W, %s @ %.1f GHz: active %.2f%% / dark %.2f%% outside [0,100]",
					tdp, c.App, c.FGHz, c.ActivePercent, c.DarkPercent)
			}
			if sum := c.ActivePercent + c.DarkPercent; math.Abs(sum-100) > 1e-6 {
				return fmt.Errorf("TDP %.0f W, %s @ %.1f GHz: active+dark = %.6f%%, want 100%%",
					tdp, c.App, c.FGHz, sum)
			}
		}
	}
	return nil
}

func checkDarkMonotoneNodes(experiments.Renderer) error {
	// The paper's fixed budget framing: a fixed die area with the
	// pessimistic 185 W TDP at the 80 °C junction assumption (§3).
	budget := endofscaling.ChipBudget{AreaMM2: 960, TDPW: 185}
	for _, a := range apps.Catalog() {
		ests, err := endofscaling.Sweep(a, budget, 80)
		if err != nil {
			return fmt.Errorf("%s: %v", a.Name, err)
		}
		prev := -1.0
		for _, e := range ests {
			if e.DarkFraction < 0 || e.DarkFraction > 1 {
				return fmt.Errorf("%s @ %d nm: dark fraction %.4f outside [0,1]", a.Name, e.Node, e.DarkFraction)
			}
			// Skip the 22 nm reference when enforcing the scaling trend:
			// the trend statement is about shrinking from 16 nm onward.
			if e.Node != tech.Node22 {
				if prev >= 0 && e.DarkFraction < prev-1e-9 {
					return fmt.Errorf("%s: dark fraction decreased across shrink to %d nm (%.4f → %.4f)",
						a.Name, e.Node, prev, e.DarkFraction)
				}
				prev = e.DarkFraction
			}
		}
	}
	return nil
}

func checkEq2CurveMonotone(r experiments.Renderer) error {
	res, ok := r.(*experiments.Fig2Result)
	if !ok {
		return fmt.Errorf("unexpected result type %T", r)
	}
	for i := 1; i < len(res.Vdd); i++ {
		if res.FGHz[i] < res.FGHz[i-1] {
			return fmt.Errorf("f(Vdd) not monotone: f(%.2f V)=%.4f < f(%.2f V)=%.4f",
				res.Vdd[i], res.FGHz[i], res.Vdd[i-1], res.FGHz[i-1])
		}
		if res.Region[i] < res.Region[i-1] {
			return fmt.Errorf("region order violated at %.2f V: %s after %s",
				res.Vdd[i], res.Region[i], res.Region[i-1])
		}
	}
	return nil
}

func checkLadderMonotone(experiments.Renderer) error {
	for _, n := range tech.Nodes() {
		c, err := vf.CurveFor(n)
		if err != nil {
			return err
		}
		l, err := vf.NewLadder(c, vf.LadderOptions{})
		if err != nil {
			return fmt.Errorf("%d nm: %v", n, err)
		}
		prevV := 0.0
		for _, pt := range l.Points {
			if pt.Vdd <= c.Vth {
				return fmt.Errorf("%d nm: %.2f GHz maps to Vdd %.4f V ≤ Vth %.4f V", n, pt.FGHz, pt.Vdd, c.Vth)
			}
			if pt.Vdd <= prevV {
				return fmt.Errorf("%d nm: ladder Vdd not strictly increasing at %.2f GHz (%.4f V after %.4f V)",
					n, pt.FGHz, pt.Vdd, prevV)
			}
			prevV = pt.Vdd
			if back := c.FrequencyGHz(pt.Vdd); math.Abs(back-pt.FGHz) > 1e-6*pt.FGHz+1e-12 {
				return fmt.Errorf("%d nm: Eq.(2) round-trip drift at %.2f GHz: f(V(f)) = %.8f", n, pt.FGHz, back)
			}
		}
	}
	return nil
}

func checkAmdahlLimit(r experiments.Renderer) error {
	res, ok := r.(*experiments.Fig4Result)
	if !ok {
		return fmt.Errorf("unexpected result type %T", r)
	}
	for _, name := range res.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return err
		}
		limit := a.SpeedupLaw().Limit()
		prev := 0.0
		for i, n := range res.Threads {
			s := res.Speedup[name][i]
			if s < 1 || s > limit+1e-9 {
				return fmt.Errorf("%s: S(%d) = %.4f outside [1, 1/(1−p) = %.4f]", name, n, s, limit)
			}
			if s < prev {
				return fmt.Errorf("%s: S(%d) = %.4f decreased from %.4f", name, n, s, prev)
			}
			prev = s
		}
	}
	return nil
}

func checkTSPDominates(r experiments.Renderer) error {
	res, ok := r.(*experiments.Fig10Result)
	if !ok {
		return fmt.Errorf("unexpected result type %T", r)
	}
	for _, row := range res.Rows {
		p, err := experiments.PlatformFor(row.Node, row.Cores)
		if err != nil {
			return fmt.Errorf("%d nm: %v", row.Node, err)
		}
		calc, err := tsp.New(p.Thermal, p.TDTM)
		if err != nil {
			return fmt.Errorf("%d nm: %v", row.Node, err)
		}
		budget, _, err := calc.WorstCase(context.Background(), row.ActiveCores)
		if err != nil {
			return fmt.Errorf("%d nm: worst-case TSP(%d): %v", row.Node, row.ActiveCores, err)
		}
		if budget <= 0 {
			return fmt.Errorf("%d nm: non-positive TSP budget %.4f W", row.Node, budget)
		}
		if math.Abs(budget-row.TSPPerCoreW) > 1e-9+1e-9*budget {
			return fmt.Errorf("%d nm: reported TSP %.6f W drifted from recomputed %.6f W",
				row.Node, row.TSPPerCoreW, budget)
		}
		// At every application's chosen (fastest feasible) ladder level
		// the per-core power must fit the budget — the TSP guarantee.
		for _, a := range apps.Catalog() {
			chosen := -1.0
			for _, pt := range p.Ladder.Points {
				cp, err := p.CorePower(a, pt.FGHz, p.TDTM)
				if err != nil {
					return fmt.Errorf("%d nm: %s @ %.2f GHz: %v", row.Node, a.Name, pt.FGHz, err)
				}
				if cp <= budget {
					chosen = cp
				}
			}
			if chosen < 0 {
				return fmt.Errorf("%d nm: %s: no ladder level fits TSP %.4f W", row.Node, a.Name, budget)
			}
			if chosen > budget {
				return fmt.Errorf("%d nm: %s: operating-point power %.4f W exceeds TSP %.4f W",
					row.Node, a.Name, chosen, budget)
			}
		}
	}
	return nil
}

func checkBoostEnergy(r experiments.Renderer) error {
	res, ok := r.(*experiments.Fig11Result)
	if !ok {
		return fmt.Errorf("unexpected result type %T", r)
	}
	if res.AvgBoost < res.AvgConst-1e-9 {
		return fmt.Errorf("boosting lost throughput: %.4f GIPS vs constant %.4f GIPS", res.AvgBoost, res.AvgConst)
	}
	if res.AvgBoost <= 0 || res.AvgConst <= 0 {
		return fmt.Errorf("non-positive throughput: boost %.4f, constant %.4f GIPS", res.AvgBoost, res.AvgConst)
	}
	// Energy per unit work (J per GIPS-second of sustained throughput):
	// boosting runs above the energy-optimal nominal point, so it may
	// trade efficiency for speed but can never be cheaper per unit work.
	boostEPW := res.Boost.EnergyJ / res.AvgBoost
	constEPW := res.Constant.EnergyJ / res.AvgConst
	if boostEPW < constEPW-1e-9 {
		return fmt.Errorf("boost energy/work %.6f J/GIPS below constant-frequency %.6f J/GIPS", boostEPW, constEPW)
	}
	// DTM keeps transients at or near the critical temperature; a result
	// far above TDTM means the throttle loop is broken.
	const tdtmSlackC = 2
	for name, mt := range map[string]float64{"boost": res.Boost.MaxTempC, "constant": res.Constant.MaxTempC} {
		if mt > res.TDTM+tdtmSlackC {
			return fmt.Errorf("%s trace peak temperature %.2f °C exceeds TDTM %.2f °C + %d °C slack",
				name, mt, res.TDTM, tdtmSlackC)
		}
	}
	return nil
}
