package verify

import (
	"context"
	"io"
	"os"
	"strings"
	"testing"
	"testing/fstest"

	"darksim/internal/experiments"
	"darksim/internal/report"
	"darksim/internal/sim"
	"darksim/internal/tech"
	"darksim/internal/tsp"
	"darksim/internal/vf"
)

func TestFailureString(t *testing.T) {
	f := Failure{Figure: "fig7", Check: "golden", Detail: "cell drifted"}
	if got := f.String(); got != "fig7 [golden]: cell drifted" {
		t.Fatalf("Failure.String() = %q", got)
	}
}

func TestFirstDiff(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 3},
		{"abc", "abd", 2},
		{"abc", "abcdef", 3},
		{"", "x", 0},
		{"xbc", "ybc", 0},
	}
	for _, c := range cases {
		if got := firstDiff(c.a, c.b); got != c.want {
			t.Errorf("firstDiff(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFigOrderNonFigure(t *testing.T) {
	if figOrder("fig3") != 3 {
		t.Error("fig3 not ordered numerically")
	}
	if figOrder("weird") != 1<<30 {
		t.Error("non-figure id not sorted last")
	}
}

func TestTablesEqualExactMismatches(t *testing.T) {
	mk := func() *report.Table {
		tb := &report.Table{Title: "T", Columns: []string{"a", "b"}}
		tb.AddRow("1", "2")
		tb.AddNote("n")
		return tb
	}
	if err := tablesEqualExact(mk(), mk()); err != nil {
		t.Fatalf("identical tables unequal: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*report.Table)
		want   string
	}{
		{"title", func(tb *report.Table) { tb.Title = "U" }, "title"},
		{"column count", func(tb *report.Table) { tb.Columns = tb.Columns[:1] }, "column count"},
		{"column name", func(tb *report.Table) { tb.Columns[1] = "c" }, "column 2"},
		{"row count", func(tb *report.Table) { tb.AddRow("3", "4") }, "row count"},
		{"cell count", func(tb *report.Table) { tb.Rows[0] = tb.Rows[0][:1] }, "row 1"},
		{"cell value", func(tb *report.Table) { tb.Rows[0][1] = "9" }, "col 2"},
		{"note count", func(tb *report.Table) { tb.AddNote("m") }, "note count"},
		{"note value", func(tb *report.Table) { tb.Notes[0] = "m" }, "note 1"},
	}
	for _, c := range cases {
		mut := mk()
		c.mutate(mut)
		err := tablesEqualExact(mut, mk())
		if err == nil {
			t.Errorf("%s: mutation not detected", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
}

func TestCompareToGoldenStructuralMismatches(t *testing.T) {
	mk := func() *report.Table {
		tb := &report.Table{Title: "T", Columns: []string{"a", "b"}}
		tb.AddRow("1", "2")
		tb.AddNote("note 1")
		return tb
	}
	golden := &GoldenFile{ID: "figX", Tolerance: DefaultTolerance, Tables: []*report.Table{mk()}}
	cases := []struct {
		name   string
		tables func() []*report.Table
		want   string
	}{
		{"table count", func() []*report.Table { return nil }, "table count"},
		{"title", func() []*report.Table { tb := mk(); tb.Title = "U V"; return []*report.Table{tb} }, "title"},
		{"column count", func() []*report.Table { tb := mk(); tb.Columns = tb.Columns[:1]; return []*report.Table{tb} }, "column count"},
		{"column name", func() []*report.Table { tb := mk(); tb.Columns[0] = "z"; return []*report.Table{tb} }, "column 1"},
		{"row count", func() []*report.Table { tb := mk(); tb.AddRow("3", "4"); return []*report.Table{tb} }, "row count"},
		{"short row", func() []*report.Table { tb := mk(); tb.Rows[0] = tb.Rows[0][:1]; return []*report.Table{tb} }, "cells"},
		{"note count", func() []*report.Table { tb := mk(); tb.AddNote("extra"); return []*report.Table{tb} }, "note count"},
		{"note drift", func() []*report.Table { tb := mk(); tb.Notes[0] = "note 9"; return []*report.Table{tb} }, "note 1"},
	}
	for _, c := range cases {
		fails := compareToGolden("figX", c.tables(), golden)
		if len(fails) == 0 {
			t.Errorf("%s: mismatch not reported", c.name)
			continue
		}
		if !strings.Contains(fails[0].Detail, c.want) {
			t.Errorf("%s: failure %q does not name %q", c.name, fails[0].Detail, c.want)
		}
	}
}

func TestLoadGoldenErrors(t *testing.T) {
	fsys := fstest.MapFS{
		"bad.json":      {Data: []byte("{not json")},
		"mislabel.json": {Data: []byte(`{"id": "other", "tables": []}`)},
		"ok.json":       {Data: []byte(`{"id": "ok", "tolerance": {"abs": 1e-6, "rel": 2e-3}, "tables": []}`)},
	}
	if _, err := loadGolden(fsys, "missing"); err == nil {
		t.Error("missing corpus entry not reported")
	}
	if _, err := loadGolden(fsys, "bad"); err == nil {
		t.Error("malformed corpus entry not reported")
	}
	if _, err := loadGolden(fsys, "mislabel"); err == nil || !strings.Contains(err.Error(), "declares id") {
		t.Errorf("id mismatch not reported: %v", err)
	}
	g, err := loadGolden(fsys, "ok")
	if err != nil || g.ID != "ok" {
		t.Errorf("valid corpus entry rejected: %v", err)
	}
}

// TestCheckBoostEnergySynthetic exercises every branch of the §6 boost
// invariant on constructed Fig11 results.
func TestCheckBoostEnergySynthetic(t *testing.T) {
	mk := func() *experiments.Fig11Result {
		return &experiments.Fig11Result{
			AvgBoost: 160, AvgConst: 150, TDTM: 80,
			Boost:    sim.Result{EnergyJ: 220, MaxTempC: 80.4},
			Constant: sim.Result{EnergyJ: 180, MaxTempC: 79.0},
		}
	}
	if err := checkBoostEnergy(mk()); err != nil {
		t.Fatalf("valid result flagged: %v", err)
	}
	if err := checkBoostEnergy(&experiments.Fig5Result{}); err == nil {
		t.Error("wrong result type accepted")
	}
	cases := []struct {
		name   string
		mutate func(*experiments.Fig11Result)
		want   string
	}{
		{"lost throughput", func(r *experiments.Fig11Result) { r.AvgBoost = 140 }, "lost throughput"},
		{"non-positive", func(r *experiments.Fig11Result) { r.AvgBoost, r.AvgConst = 0, 0 }, "non-positive"},
		{"cheaper energy per work", func(r *experiments.Fig11Result) { r.Boost.EnergyJ = 100 }, "energy/work"},
		{"thermal runaway", func(r *experiments.Fig11Result) { r.Boost.MaxTempC = 85 }, "exceeds TDTM"},
	}
	for _, c := range cases {
		r := mk()
		c.mutate(r)
		err := checkBoostEnergy(r)
		if err == nil {
			t.Errorf("%s: not flagged", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
}

// TestCheckTSPDominatesRecomputes builds a real 16 nm TSP row and checks
// the invariant accepts it, then rejects a drifted budget.
func TestCheckTSPDominatesRecomputes(t *testing.T) {
	if err := checkTSPDominates(&experiments.Fig5Result{}); err == nil {
		t.Error("wrong result type accepted")
	}
	cores := experiments.CoresForNode(tech.Node16)
	p, err := experiments.PlatformFor(tech.Node16, cores)
	if err != nil {
		t.Fatal(err)
	}
	calc, err := tsp.New(p.Thermal, p.TDTM)
	if err != nil {
		t.Fatal(err)
	}
	active := cores * 8 / 10
	budget, _, err := calc.WorstCase(context.Background(), active)
	if err != nil {
		t.Fatal(err)
	}
	row := experiments.Fig10Row{
		Node: tech.Node16, Cores: cores, DarkPercent: 20,
		ActiveCores: active, TSPPerCoreW: budget,
	}
	if err := checkTSPDominates(&experiments.Fig10Result{Rows: []experiments.Fig10Row{row}}); err != nil {
		t.Fatalf("consistent TSP row flagged: %v", err)
	}
	row.TSPPerCoreW = budget * 1.01
	err = checkTSPDominates(&experiments.Fig10Result{Rows: []experiments.Fig10Row{row}})
	if err == nil || !strings.Contains(err.Error(), "drifted") {
		t.Fatalf("drifted TSP budget not flagged: %v", err)
	}
}

// TestPolicySandboxLayer runs verification layer 5 directly: a clean
// tree must produce zero failures.
func TestPolicySandboxLayer(t *testing.T) {
	for _, f := range checkPolicySandbox(context.Background()) {
		t.Errorf("unexpected failure: %s", f)
	}
}

// TestScenarioDifferentialLayer runs verification layer 4 directly.
func TestScenarioDifferentialLayer(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario differential sweeps every node: skipped in -short")
	}
	for _, f := range checkScenarioDifferential(context.Background()) {
		t.Errorf("unexpected failure: %s", f)
	}
}

// TestGoldenUpdateRoundTrip regenerates a corpus subset into a temp dir,
// then verifies the same figures against it with the full determinism
// pass — covering the -update path, golden file IO, and the sequential
// recomputation check end to end.
func TestGoldenUpdateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	figs := []string{"fig1", "fig2"}
	fails, err := Run(context.Background(), Options{
		Figures:       figs,
		Update:        true,
		GoldenDir:     dir,
		SkipRecompute: true,
		Out:           io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fails) != 0 {
		t.Fatalf("update run reported failures: %v", fails)
	}
	for _, id := range figs {
		if _, err := os.Stat(dir + "/" + id + ".json"); err != nil {
			t.Fatalf("update did not write %s: %v", id, err)
		}
	}
	fails, err = Run(context.Background(), Options{
		Figures: figs,
		Golden:  os.DirFS(dir),
		Out:     io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fails {
		t.Errorf("freshly written corpus failed its own check: %s", f)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	if _, err := Run(context.Background(), Options{Figures: []string{"fig99"}}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestCheckEq2CurveMonotoneBranches(t *testing.T) {
	if err := checkEq2CurveMonotone(&experiments.Fig5Result{}); err == nil {
		t.Error("wrong result type accepted")
	}
	notMonotone := &experiments.Fig2Result{
		Vdd:    []float64{0.5, 0.6},
		FGHz:   []float64{2.0, 1.5},
		Region: []vf.Region{vf.RegionNTC, vf.RegionNTC},
	}
	if err := checkEq2CurveMonotone(notMonotone); err == nil || !strings.Contains(err.Error(), "not monotone") {
		t.Errorf("falling f(Vdd) not flagged: %v", err)
	}
	regionOrder := &experiments.Fig2Result{
		Vdd:    []float64{0.5, 0.6},
		FGHz:   []float64{1.5, 2.0},
		Region: []vf.Region{vf.RegionSTC, vf.RegionNTC},
	}
	if err := checkEq2CurveMonotone(regionOrder); err == nil || !strings.Contains(err.Error(), "region order") {
		t.Errorf("region regression not flagged: %v", err)
	}
}

func TestCheckAmdahlLimitBranches(t *testing.T) {
	if err := checkAmdahlLimit(&experiments.Fig5Result{}); err == nil {
		t.Error("wrong result type accepted")
	}
	over := &experiments.Fig4Result{
		Threads: []int{16, 32},
		Apps:    []string{"x264"},
		Speedup: map[string][]float64{"x264": {2.5, 1e6}},
	}
	if err := checkAmdahlLimit(over); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("speedup above the Amdahl limit not flagged: %v", err)
	}
	falling := &experiments.Fig4Result{
		Threads: []int{16, 32},
		Apps:    []string{"x264"},
		Speedup: map[string][]float64{"x264": {2.5, 2.0}},
	}
	if err := checkAmdahlLimit(falling); err == nil || !strings.Contains(err.Error(), "decreased") {
		t.Errorf("falling speedup not flagged: %v", err)
	}
}

// plainRenderer implements experiments.Renderer without structured
// tables, to drive the pipeline's no-tables error branches.
type plainRenderer struct{}

func (plainRenderer) Render(io.Writer) error { return nil }

func TestComputeAllErrors(t *testing.T) {
	ctx := context.Background()
	boom := figureSpec{ID: "boom", Run: func(context.Context) (experiments.Renderer, error) {
		return nil, context.DeadlineExceeded
	}}
	if _, err := computeAll(ctx, []figureSpec{boom}, 1); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("failing figure not reported: %v", err)
	}
	bare := figureSpec{ID: "bare", Run: func(context.Context) (experiments.Renderer, error) {
		return plainRenderer{}, nil
	}}
	if _, err := computeAll(ctx, []figureSpec{bare}, 1); err == nil || !strings.Contains(err.Error(), "structured tables") {
		t.Errorf("table-less figure not reported: %v", err)
	}
}

func TestCheckDeterminismBranches(t *testing.T) {
	mkTable := func(cell string) []*report.Table {
		tb := &report.Table{Title: "T", Columns: []string{"a"}}
		tb.AddRow(cell)
		return []*report.Table{tb}
	}
	stable := stubResult{tables: mkTable("1")}
	results := []*figureResult{
		{spec: figureSpec{ID: "ok", Run: func(context.Context) (experiments.Renderer, error) {
			return stable, nil
		}}, tables: stable.tables},
		{spec: figureSpec{ID: "err", Run: func(context.Context) (experiments.Renderer, error) {
			return nil, context.DeadlineExceeded
		}}, tables: mkTable("1")},
		{spec: figureSpec{ID: "bare", Run: func(context.Context) (experiments.Renderer, error) {
			return plainRenderer{}, nil
		}}, tables: mkTable("1")},
		{spec: figureSpec{ID: "drift", Run: func(context.Context) (experiments.Renderer, error) {
			return stubResult{tables: mkTable("2")}, nil
		}}, tables: mkTable("1")},
	}
	fails := checkDeterminism(context.Background(), results)
	if len(fails) != 3 {
		t.Fatalf("got %d failures, want 3: %v", len(fails), fails)
	}
	wants := map[string]string{
		"err":   "recomputation failed",
		"bare":  "lost structured tables",
		"drift": "rendered differently",
	}
	for _, f := range fails {
		if want := wants[f.Figure]; want == "" || !strings.Contains(f.Detail, want) {
			t.Errorf("unexpected failure %s", f)
		}
	}
}

func TestStubResultRender(t *testing.T) {
	tb := &report.Table{Title: "T", Columns: []string{"a"}}
	tb.AddRow("1")
	if err := (stubResult{tables: []*report.Table{tb}}).Render(io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestWriteGoldenRejectsBadDir(t *testing.T) {
	file := t.TempDir() + "/occupied"
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	g := &GoldenFile{ID: "figX", Tolerance: DefaultTolerance}
	if _, err := writeGolden(file+"/nested", g); err == nil {
		t.Fatal("writeGolden under a regular file succeeded")
	}
}

func TestDiffRenderingsDegenerateTable(t *testing.T) {
	// A table with no columns renders without a header rule, so the text
	// round-trip cannot recover it; the differential layer must say so
	// rather than pass vacuously.
	if fails := diffRenderings("figX", []*report.Table{{Title: "empty"}}); len(fails) == 0 {
		t.Fatal("unparsable rendering produced no failures")
	}
}
