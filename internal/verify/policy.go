package verify

import (
	"context"
	"fmt"

	"darksim/internal/policy"
	"darksim/internal/scenario"
)

// policySmokeDurationS keeps the layer-5 sandbox runs short; the policy
// package's own tests cover longer horizons.
const policySmokeDurationS = 0.05

// checkPolicySandbox is verification layer 5: the policy sandbox and its
// assertion engine must agree about the §6 machinery — the safe policy
// trio passes every standard trace assertion on the pack workload, and
// the negative control (boosting with the TDTM check disabled) is caught
// with the violating step named.
func checkPolicySandbox(ctx context.Context) []Failure {
	fail := func(check, format string, args ...any) []Failure {
		return []Failure{{Figure: "policy", Check: check, Detail: fmt.Sprintf(format, args...)}}
	}
	spec, err := scenario.PackByName(scenario.PackSymmetric)
	if err != nil {
		return fail("sandbox", "%v", err)
	}
	sc, err := scenario.Compile(spec)
	if err != nil {
		return fail("sandbox", "%v", err)
	}
	env, err := policy.NewEnv(sc)
	if err != nil {
		return fail("sandbox", "%v", err)
	}
	opt := policy.Options{Duration: policySmokeDurationS}

	var fails []Failure
	safe := []policy.Policy{policy.NewConstant(), policy.NewBoost(), policy.NewDsRem()}
	outs, err := env.RunAll(ctx, safe, opt, nil)
	if err != nil {
		return fail("sandbox", "head-to-head run failed: %v", err)
	}
	for _, o := range outs {
		if o.Err != "" {
			fails = append(fails, Failure{Figure: "policy", Check: "sandbox",
				Detail: fmt.Sprintf("%s failed to run: %s", o.Policy, o.Err)})
			continue
		}
		for _, v := range o.Violations {
			fails = append(fails, Failure{Figure: "policy", Check: "assertions",
				Detail: fmt.Sprintf("safe policy %s violated %s — pins the policy trio staying inside the paper's thermal constraints", o.Policy, v)})
		}
	}

	unsafe, err := env.Run(ctx, policy.NewUnsafeBoost(), opt)
	if err != nil {
		return append(fails, Failure{Figure: "policy", Check: "assertions",
			Detail: fmt.Sprintf("negative control failed to run: %v", err)})
	}
	if unsafe.Err != "" {
		fails = append(fails, Failure{Figure: "policy", Check: "assertions",
			Detail: fmt.Sprintf("negative control failed to run: %s", unsafe.Err)})
	} else if len(unsafe.Violations) == 0 {
		fails = append(fails, Failure{Figure: "policy", Check: "assertions",
			Detail: "boost-unsafe passed every assertion — the engine lost its teeth (pins TDTM being a real bound, §2)"})
	} else {
		for _, v := range unsafe.Violations {
			if v.Step < 0 || v.Detail == "" {
				fails = append(fails, Failure{Figure: "policy", Check: "assertions",
					Detail: fmt.Sprintf("violation lacks step context: %+v", v)})
			}
		}
	}
	return fails
}
