// Package report renders experiment results as aligned ASCII tables, CSV,
// and compact ASCII charts. The cmd/darksim harness uses it to print the
// same rows and series the paper's tables and figures report.
package report

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of string cells. The exported fields marshal
// directly to JSON, which is how the service layer and `darksim -format
// json` ship experiment results to machine consumers.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes are free-form summary lines that belong with the table (the
	// "max dark silicon at fmax: 37%" style conclusions the paper prints
	// under its figures). Render emits them after the grid, one per line.
	Notes []string `json:"notes,omitempty"`
}

// ErrShape is returned when rows do not match the column count, or when
// a table has no columns at all.
var ErrShape = errors.New("report: row length does not match columns")

// AddNote appends a formatted summary line to the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// check validates the grid shape shared by Render and WriteCSV.
func (t *Table) check() error {
	if len(t.Columns) == 0 {
		return fmt.Errorf("%w: table %q has no columns", ErrShape, t.Title)
	}
	for _, r := range t.Rows {
		if len(r) != len(t.Columns) {
			return fmt.Errorf("%w: got %d cells, want %d", ErrShape, len(r), len(t.Columns))
		}
	}
	return nil
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddFloatRow appends a row with a leading label and %.numbers formatted
// with the given precision.
func (t *Table) AddFloatRow(label string, precision int, values ...float64) {
	row := make([]string, 0, len(values)+1)
	row = append(row, label)
	for _, v := range values {
		row = append(row, fmt.Sprintf("%.*f", precision, v))
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns, followed by its notes.
func (t *Table) Render(w io.Writer) error {
	if err := t.check(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintln(bw, t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Columns)
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(bw, n)
	}
	return bw.Flush()
}

// NotePrefix marks a note record in CSV output: notes are emitted as
// single-field records "# <note>" after the data rows, so a CSV file
// carries the same content as the JSON and text renderings.
const NotePrefix = "# "

// WriteCSV emits the table as RFC 4180 CSV: one header record, one record
// per row, then each note as a single-field record prefixed NotePrefix.
// Every field goes through encoding/csv, so cells or notes containing
// commas, quotes or newlines are quoted rather than corrupting the
// column count. A zero-column table is an ErrShape error rather than a
// lone empty header line.
func (t *Table) WriteCSV(w io.Writer) error {
	if err := t.check(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{NotePrefix + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses WriteCSV output back into the table's columns, rows and
// notes — the inverse used by the verification subsystem's differential
// checks. Records keep their RFC 4180 unescaping from encoding/csv;
// single-field records carrying NotePrefix after the header are notes.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // note records are narrower than data rows
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: empty CSV", ErrShape)
	}
	t := &Table{Columns: recs[0]}
	for _, rec := range recs[1:] {
		if len(rec) == 1 && strings.HasPrefix(rec[0], NotePrefix) {
			t.Notes = append(t.Notes, strings.TrimPrefix(rec[0], NotePrefix))
			continue
		}
		t.Rows = append(t.Rows, rec)
	}
	if err := t.check(); err != nil {
		return nil, err
	}
	return t, nil
}

// Chart renders one or more (x, y) series as a fixed-size ASCII chart —
// enough to eyeball the shape of a paper figure in a terminal.
type Chart struct {
	Title  string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
	XLabel string
	YLabel string
}

// seriesGlyphs mark successive series in a chart.
var seriesGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderLines plots the series; each gets the next glyph. Series may have
// different lengths but share the axis ranges.
func (c *Chart) RenderLines(w io.Writer, names []string, xs, ys [][]float64) error {
	if len(xs) != len(ys) || len(names) != len(xs) {
		return errors.New("report: chart series count mismatch")
	}
	if len(xs) == 0 {
		return errors.New("report: chart with no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 16
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	total := 0
	for si := range xs {
		if len(xs[si]) != len(ys[si]) {
			return fmt.Errorf("report: series %q x/y length mismatch", names[si])
		}
		total += len(xs[si])
		for i := range xs[si] {
			xMin, xMax = math.Min(xMin, xs[si][i]), math.Max(xMax, xs[si][i])
			yMin, yMax = math.Min(yMin, ys[si][i]), math.Max(yMax, ys[si][i])
		}
	}
	if total == 0 {
		return errors.New("report: chart with no points")
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si := range xs {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for i := range xs[si] {
			px := int(math.Round((xs[si][i] - xMin) / (xMax - xMin) * float64(width-1)))
			py := int(math.Round((ys[si][i] - yMin) / (yMax - yMin) * float64(height-1)))
			grid[height-1-py][px] = glyph
		}
	}
	bw := bufio.NewWriter(w)
	if c.Title != "" {
		fmt.Fprintln(bw, c.Title)
	}
	for i, name := range names {
		fmt.Fprintf(bw, "  %c %s\n", seriesGlyphs[i%len(seriesGlyphs)], name)
	}
	fmt.Fprintf(bw, "%10.3g ┌%s┐\n", yMax, strings.Repeat("─", width))
	for i, row := range grid {
		label := strings.Repeat(" ", 10)
		if i == height-1 {
			label = fmt.Sprintf("%10.3g", yMin)
		}
		fmt.Fprintf(bw, "%s │%s│\n", label, row)
	}
	fmt.Fprintf(bw, "%s └%s┘\n", strings.Repeat(" ", 10), strings.Repeat("─", width))
	fmt.Fprintf(bw, "%s  %-10.3g%s%10.3g", strings.Repeat(" ", 10), xMin,
		strings.Repeat(" ", max(0, width-20)), xMax)
	if c.XLabel != "" {
		fmt.Fprintf(bw, "  [%s]", c.XLabel)
	}
	fmt.Fprintln(bw)
	return bw.Flush()
}

// Heatmap renders a 2-D scalar field (e.g. a chip thermal map) as ASCII
// intensity cells — the textual analogue of the paper's Figure 8 thermal
// profiles.
type Heatmap struct {
	Title string
	// Min and Max clamp the colour scale; when both are zero the data
	// range is used.
	Min, Max float64
}

// heatGlyphs order from coolest to hottest.
var heatGlyphs = []byte(" .:-=+*#%@")

// RenderGrid draws the row-major rows×cols field. Row 0 renders at the
// bottom (matching floorplan coordinates).
func (h *Heatmap) RenderGrid(w io.Writer, values []float64, rows, cols int) error {
	if rows <= 0 || cols <= 0 || len(values) != rows*cols {
		return fmt.Errorf("report: heatmap %dx%d with %d values", rows, cols, len(values))
	}
	lo, hi := h.Min, h.Max
	if lo == 0 && hi == 0 {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, v := range values {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	bw := bufio.NewWriter(w)
	if h.Title != "" {
		fmt.Fprintln(bw, h.Title)
	}
	for r := rows - 1; r >= 0; r-- {
		for c := 0; c < cols; c++ {
			v := values[r*cols+c]
			idx := int((v - lo) / (hi - lo) * float64(len(heatGlyphs)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatGlyphs) {
				idx = len(heatGlyphs) - 1
			}
			g := heatGlyphs[idx]
			bw.WriteByte(g)
			bw.WriteByte(g)
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, "scale: '%c' = %.1f .. '%c' = %.1f\n",
		heatGlyphs[0], lo, heatGlyphs[len(heatGlyphs)-1], hi)
	return bw.Flush()
}
