package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Demo", Columns: []string{"app", "gips", "dark %"}}
	tb.AddRow("x264", "123.4", "37")
	tb.AddFloatRow("swaptions", 1, 99.95, 46)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Demo", "app", "x264", "swaptions", "100.0", "46.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: header and first row start of column 2 match.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines:\n%s", out)
	}
	hdrIdx := strings.Index(lines[1], "gips")
	rowIdx := strings.Index(lines[3], "123.4")
	if hdrIdx != rowIdx {
		t.Errorf("columns misaligned: %d vs %d\n%s", hdrIdx, rowIdx, out)
	}
}

func TestTableRenderShapeError(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("only-one")
	if err := tb.Render(&bytes.Buffer{}); err == nil {
		t.Errorf("mismatched row should error")
	}
	if err := tb.WriteCSV(&bytes.Buffer{}); err == nil {
		t.Errorf("mismatched row should error in CSV too")
	}
}

func TestTableRenderNotes(t *testing.T) {
	tb := &Table{Columns: []string{"a"}}
	tb.AddRow("1")
	tb.AddNote("max dark silicon at fmax: %d%%", 37)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "max dark silicon at fmax: 37%\n") {
		t.Errorf("note not rendered after grid:\n%s", buf.String())
	}
}

func TestTableZeroColumns(t *testing.T) {
	tb := &Table{Title: "empty"}
	if err := tb.WriteCSV(&bytes.Buffer{}); !errors.Is(err, ErrShape) {
		t.Errorf("zero-column CSV: got %v, want ErrShape", err)
	}
	if err := tb.Render(&bytes.Buffer{}); !errors.Is(err, ErrShape) {
		t.Errorf("zero-column Render: got %v, want ErrShape", err)
	}
	// A zero-column table with rows is equally malformed.
	tb.Rows = [][]string{{"cell"}}
	if err := tb.WriteCSV(&bytes.Buffer{}); !errors.Is(err, ErrShape) {
		t.Errorf("zero-column CSV with rows: got %v, want ErrShape", err)
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tb.AddRow("1", "2")
	data, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"title":"T"`, `"columns":["a","b"]`, `"rows":[["1","2"]]`, `"notes":["n"]`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %s: %s", want, data)
		}
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Title != tb.Title || len(back.Rows) != 1 || back.Rows[0][1] != "2" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b"}}
	tb.AddRow("1", "2")
	tb.AddRow("3", "4,5") // needs quoting
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if !strings.Contains(out, `"4,5"`) {
		t.Errorf("CSV quoting wrong: %q", out)
	}
}

// TestTableWriteCSVEscapesNotes pins the RFC 4180 behavior the differential
// checks depend on: cells and notes containing commas, quotes or newlines
// must survive a write/read round-trip without corrupting the column count.
func TestTableWriteCSVEscapesNotes(t *testing.T) {
	tb := &Table{Columns: []string{"app", "value, with comma"}}
	tb.AddRow(`quoted "cell"`, "multi\nline")
	tb.AddRow("plain", "1.5")
	tb.AddNote("max dark silicon at fmax: %d%%, up from %d%%", 37, 20)
	tb.AddNote(`a "quoted" note`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v\ncsv:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got.Columns, tb.Columns) {
		t.Errorf("columns: got %q want %q", got.Columns, tb.Columns)
	}
	if !reflect.DeepEqual(got.Rows, tb.Rows) {
		t.Errorf("rows: got %q want %q", got.Rows, tb.Rows)
	}
	if !reflect.DeepEqual(got.Notes, tb.Notes) {
		t.Errorf("notes: got %q want %q", got.Notes, tb.Notes)
	}
	// The comma inside the note must not have split it into two fields:
	// every note record is a single field.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, `"`+NotePrefix) && strings.Count(line, `","`) > 0 {
			t.Errorf("note record split into multiple fields: %q", line)
		}
	}
}

func TestReadCSVRejectsRaggedRows(t *testing.T) {
	in := "a,b\n1,2\n3\n"
	if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrShape) {
		t.Errorf("ragged row should be ErrShape, got %v", err)
	}
}

func TestChartRenderLines(t *testing.T) {
	c := &Chart{Title: "T", Width: 40, Height: 8, XLabel: "GHz"}
	xs := [][]float64{{0, 1, 2, 3}, {0, 1, 2, 3}}
	ys := [][]float64{{0, 1, 4, 9}, {9, 4, 1, 0}}
	var buf bytes.Buffer
	if err := c.RenderLines(&buf, []string{"up", "down"}, xs, ys); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T", "up", "down", "*", "o", "GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestChartErrors(t *testing.T) {
	c := &Chart{}
	if err := c.RenderLines(&bytes.Buffer{}, nil, nil, nil); err == nil {
		t.Errorf("no series should error")
	}
	if err := c.RenderLines(&bytes.Buffer{}, []string{"a"}, [][]float64{{1}}, [][]float64{{1, 2}}); err == nil {
		t.Errorf("x/y mismatch should error")
	}
	if err := c.RenderLines(&bytes.Buffer{}, []string{"a", "b"}, [][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Errorf("names mismatch should error")
	}
	if err := c.RenderLines(&bytes.Buffer{}, []string{"a"}, [][]float64{{}}, [][]float64{{}}); err == nil {
		t.Errorf("empty series should error")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	c := &Chart{Width: 20, Height: 5}
	var buf bytes.Buffer
	err := c.RenderLines(&buf, []string{"flat"}, [][]float64{{1, 1, 1}}, [][]float64{{2, 2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("flat series not plotted")
	}
}

func TestHeatmapRenderGrid(t *testing.T) {
	h := &Heatmap{Title: "temps"}
	vals := []float64{
		60, 60, 60,
		60, 85, 60,
		60, 60, 60,
	}
	var buf bytes.Buffer
	if err := h.RenderGrid(&buf, vals, 3, 3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "temps") || !strings.Contains(out, "@@") {
		t.Errorf("heatmap missing hot cell:\n%s", out)
	}
	if !strings.Contains(out, "scale:") {
		t.Errorf("missing scale line")
	}
	// Fixed scale clamps out-of-range values without panicking.
	fixed := &Heatmap{Min: 70, Max: 80}
	if err := fixed.RenderGrid(&buf, vals, 3, 3); err != nil {
		t.Fatal(err)
	}
}

func TestHeatmapErrors(t *testing.T) {
	h := &Heatmap{}
	if err := h.RenderGrid(&bytes.Buffer{}, []float64{1, 2}, 2, 2); err == nil {
		t.Errorf("size mismatch should error")
	}
	if err := h.RenderGrid(&bytes.Buffer{}, nil, 0, 0); err == nil {
		t.Errorf("empty grid should error")
	}
	// Constant field must not divide by zero.
	if err := h.RenderGrid(&bytes.Buffer{}, []float64{5, 5, 5, 5}, 2, 2); err != nil {
		t.Errorf("constant field: %v", err)
	}
}
