package report

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// sanitizeCSVCell removes carriage returns from fuzzed cell content:
// encoding/csv normalizes \r\n to \n inside quoted fields on read (an
// RFC 4180 line-ending equivalence, not data loss), which would make a
// byte-exact round-trip comparison flag correct behavior.
func sanitizeCSVCell(s string) string {
	return strings.ReplaceAll(s, "\r", "")
}

// FuzzTableCSV asserts WriteCSV/ReadCSV round-trip every table whose
// cells and notes may contain commas, quotes and newlines — the RFC 4180
// escaping contract the differential checks in internal/verify rely on.
func FuzzTableCSV(f *testing.F) {
	f.Add("app", "value", "a,b", `say "hi"`, "two\nlines", "note, with comma")
	f.Add("x", "y", "", "", "", "")
	f.Add("n", "v", ",,,", `""`, "\n", `"`)
	f.Fuzz(func(t *testing.T, col1, col2, c1, c2, c3, note string) {
		tb := &Table{Columns: []string{sanitizeCSVCell(col1), sanitizeCSVCell(col2)}}
		tb.AddRow(sanitizeCSVCell(c1), sanitizeCSVCell(c2))
		tb.AddRow(sanitizeCSVCell(c3), "1.0")
		if n := sanitizeCSVCell(note); n != "" {
			// Notes re-read via the NotePrefix convention; an empty note
			// would be indistinguishable from an empty single-cell row in
			// a one-column table and is not produced by any experiment.
			tb.AddNote("%s", n)
		}
		var buf bytes.Buffer
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		got, err := ReadCSV(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadCSV: %v\ncsv:\n%q", err, buf.String())
		}
		if !reflect.DeepEqual(got.Columns, tb.Columns) {
			t.Errorf("columns corrupted: got %q want %q (csv %q)", got.Columns, tb.Columns, buf.String())
		}
		if !reflect.DeepEqual(got.Rows, tb.Rows) {
			t.Errorf("rows corrupted: got %q want %q (csv %q)", got.Rows, tb.Rows, buf.String())
		}
		if len(got.Notes) != len(tb.Notes) {
			t.Fatalf("note count: got %d want %d (csv %q)", len(got.Notes), len(tb.Notes), buf.String())
		}
		for i := range tb.Notes {
			if got.Notes[i] != tb.Notes[i] {
				t.Errorf("note %d corrupted: got %q want %q", i, got.Notes[i], tb.Notes[i])
			}
		}
	})
}
