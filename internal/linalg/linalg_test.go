package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Fatalf("Clone aliases storage")
	}
	if got := v.Dot(Vector{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v, want 6", got)
	}
	if got := v.Mean(); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := v.Norm2(); !almostEqual(got, math.Sqrt(14), 1e-12) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := (Vector{-5, 2}).NormInf(); got != 5 {
		t.Errorf("NormInf = %v, want 5", got)
	}
	mx, i := Vector{3, 7, 2}.Max()
	if mx != 7 || i != 1 {
		t.Errorf("Max = %v@%d", mx, i)
	}
	mn, j := Vector{3, 7, 2}.Min()
	if mn != 2 || j != 2 {
		t.Errorf("Min = %v@%d", mn, j)
	}
	u := Vector{1, 1}.AddScaled(2, Vector{3, 4})
	if u[0] != 7 || u[1] != 9 {
		t.Errorf("AddScaled = %v", u)
	}
	u.Scale(0.5)
	if u[0] != 3.5 {
		t.Errorf("Scale = %v", u)
	}
	var empty Vector
	if empty.Mean() != 0 || empty.NormInf() != 0 {
		t.Errorf("empty vector stats should be zero")
	}
}

func TestVectorMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Max of empty vector should panic")
		}
	}()
	Vector{}.Max()
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Add(0, 2, 3)
	if m.At(0, 2) != 5 {
		t.Errorf("At(0,2) = %v", m.At(0, 2))
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 0) != 5 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
	id := Identity(3)
	if !id.IsSymmetric(0) {
		t.Errorf("identity should be symmetric")
	}
	y, err := id.MulVec(Vector{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if y[2] != 3 {
		t.Errorf("I·x = %v", y)
	}
	if _, err := id.MulVec(Vector{1}); err == nil {
		t.Errorf("MulVec dimension mismatch should error")
	}
	if _, err := m.Mul(m); err == nil {
		t.Errorf("Mul 2x3 by 2x3 should error")
	}
	p, err := m.Mul(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rows != 2 || p.Cols != 2 {
		t.Errorf("Mul shape %dx%d", p.Rows, p.Cols)
	}
	if got := m.MaxAbs(); got != 5 {
		t.Errorf("MaxAbs = %v", got)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Errorf("Clone aliases storage")
	}
}

// randomSPD builds a random symmetric positive-definite matrix B·Bᵀ + n·I.
func randomSPD(n int, rng *rand.Rand) *Matrix {
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	bt := b.Transpose()
	spd, err := b.Mul(bt)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randomSPD(n, rng)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if ch.Size() != n {
			t.Fatalf("Size = %d", ch.Size())
		}
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !almostEqual(got[i], want[i], 1e-8*float64(n)) {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := NewCholesky(NewMatrix(2, 3)); err == nil {
		t.Errorf("non-square should error")
	}
	notSPD := NewMatrix(2, 2)
	notSPD.Set(0, 0, 1)
	notSPD.Set(1, 1, -1)
	if _, err := NewCholesky(notSPD); err == nil {
		t.Errorf("indefinite matrix should error")
	}
	ch, err := NewCholesky(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Solve(Vector{1}); err == nil {
		t.Errorf("rhs size mismatch should error")
	}
}

func TestCholeskyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomSPD(8, rng)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := ch.Inverse()
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEqual(prod.At(i, j), want, 1e-8) {
				t.Fatalf("A·A⁻¹[%d,%d] = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestLUSolveAndDet(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}}
	for i, row := range vals {
		for j, x := range row {
			a.Set(i, j, x)
		}
	}
	lu, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	// det of this classic example is -16.
	if !almostEqual(lu.Det(), -16, 1e-9) {
		t.Errorf("Det = %v, want -16", lu.Det())
	}
	want := Vector{1, -2, 3}
	b, err := a.MulVec(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lu.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", got, want)
		}
	}
	if _, err := lu.Solve(Vector{1}); err == nil {
		t.Errorf("rhs mismatch should error")
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := NewLU(a); err == nil {
		t.Errorf("singular matrix should error")
	}
	if _, err := NewLU(NewMatrix(2, 3)); err == nil {
		t.Errorf("non-square should error")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Fit y = 2 + 3x exactly through noiseless points.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := NewVector(len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	coef, err := SolveLeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(coef[0], 2, 1e-9) || !almostEqual(coef[1], 3, 1e-9) {
		t.Errorf("coef = %v", coef)
	}
}

func TestSolveLeastSquaresErrors(t *testing.T) {
	if _, err := SolveLeastSquares(NewMatrix(2, 3), NewVector(2)); err == nil {
		t.Errorf("underdetermined should error")
	}
	if _, err := SolveLeastSquares(NewMatrix(3, 2), NewVector(2)); err == nil {
		t.Errorf("rhs mismatch should error")
	}
	// Rank-deficient design: duplicate columns.
	a := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, 1)
	}
	if _, err := SolveLeastSquares(a, NewVector(3)); err == nil {
		t.Errorf("rank-deficient design should error")
	}
}

// Property: for random SPD systems, the Cholesky solve residual is tiny.
func TestCholeskyResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		a := randomSPD(n, r)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := NewVector(n)
		for i := range b {
			b[i] = r.NormFloat64() * 10
		}
		x, err := ch.Solve(b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		return ax.AddScaled(-1, b).NormInf() <= 1e-7*(1+b.NormInf())
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: transposing twice is the identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		tt := m.Transpose().Transpose()
		for i := range m.Data {
			if tt.Data[i] != m.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCholeskyFactor200(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randomSPD(200, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskySolve200(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(200, rng)
	ch, err := NewCholesky(a)
	if err != nil {
		b.Fatal(err)
	}
	rhs := NewVector(200)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := rhs.Clone()
		ch.SolveInPlace(x)
	}
}
