package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomStepMap builds the implicit-Euler step map M = (C/dt+G)⁻¹·(C/dt)
// of a random RC network: G = L·Lᵀ + diagonal boost is SPD, C is a
// positive diagonal. Such maps always have spectral radius < 1, which is
// the regime the thermal macro-stepper runs the ladder in.
func randomStepMap(rng *rand.Rand, n int) (m *Matrix, err error) {
	g := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Float64() - 0.5
			if i == j {
				v = 1 + rng.Float64()
			}
			g.Set(i, j, v)
		}
	}
	gg := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k <= i && k <= j; k++ {
				s += g.At(i, k) * g.At(j, k)
			}
			gg.Set(i, j, s)
		}
	}
	capDt := NewVector(n)
	for i := range capDt {
		capDt[i] = 0.5 + 2*rng.Float64()
	}
	a := gg.Clone()
	for i := 0; i < n; i++ {
		a.Add(i, i, capDt[i])
	}
	chol, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	ainv := chol.Inverse()
	m = NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, ainv.At(i, j)*capDt[j])
		}
	}
	return m, nil
}

// naiveAdvance applies x ← M·x + b one step at a time.
func naiveAdvance(m *Matrix, t, b Vector, k int) Vector {
	x := t.Clone()
	for s := 0; s < k; s++ {
		y, _ := m.MulVec(x)
		for i := range y {
			y[i] += b[i]
		}
		x = y
	}
	return x
}

// TestAffinePowersMatchesNaive is the ladder property test: on random
// SPD-derived step maps, Advance(k) must agree with k explicit steps to
// within 1e-9 for every k across hop boundaries and composite shapes.
func TestAffinePowersMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(7)
		m, err := randomStepMap(rng, n)
		if err != nil {
			t.Fatalf("trial %d: step map: %v", trial, err)
		}
		ap, err := NewAffinePowers(m, 5) // hops of at most 32 steps
		if err != nil {
			t.Fatalf("trial %d: NewAffinePowers: %v", trial, err)
		}
		t0 := NewVector(n)
		b := NewVector(n)
		for i := 0; i < n; i++ {
			t0[i] = 20 + 60*rng.Float64()
			b[i] = rng.Float64()
		}
		scratch := NewVector(n)
		for _, k := range []int{1, 2, 3, 5, 8, 16, 31, 32, 33, 100, 257} {
			got := t0.Clone()
			if err := ap.Advance(k, got, b, scratch); err != nil {
				t.Fatalf("trial %d: Advance(%d): %v", trial, k, err)
			}
			want := naiveAdvance(m, t0, b, k)
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9 {
					t.Fatalf("trial %d: k=%d node %d: ladder %v vs naive %v (|Δ|=%g)",
						trial, k, i, got[i], want[i], math.Abs(got[i]-want[i]))
				}
			}
		}
	}
}

// TestAffinePowersDeterministic pins that repeated Advance calls with the
// same inputs are bitwise identical, including across a fresh ladder —
// cold and warm runs must not diverge.
func TestAffinePowersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, err := randomStepMap(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	t0 := Vector{30, 40, 50, 60, 70}
	b := Vector{0.1, 0.2, 0.3, 0.4, 0.5}
	run := func() Vector {
		ap, err := NewAffinePowers(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		x := t0.Clone()
		if err := ap.Advance(77, x, b, NewVector(5)); err != nil {
			t.Fatal(err)
		}
		return x
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("node %d: cold runs disagree bitwise: %v vs %v", i, a[i], bb[i])
		}
	}
}

// TestAffinePowersErrors covers dimension and argument validation.
func TestAffinePowersErrors(t *testing.T) {
	if _, err := NewAffinePowers(NewMatrix(2, 3), 4); err == nil {
		t.Fatal("want error for non-square map")
	}
	ap, err := NewAffinePowers(Identity(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ap.Advance(1, NewVector(2), NewVector(3), NewVector(3)); err == nil {
		t.Fatal("want dimension error for short t")
	}
	if err := ap.Advance(-1, NewVector(3), NewVector(3), NewVector(3)); err == nil {
		t.Fatal("want error for negative k")
	}
	if err := ap.Advance(0, NewVector(3), NewVector(3), NewVector(3)); err != nil {
		t.Fatalf("Advance(0) should be a no-op, got %v", err)
	}
}

// TestSolveBatchMatchesSingle pins the batched triangular solve to the
// single-RHS path bit for bit: batching may only interleave independent
// columns, never change any column's arithmetic.
func TestSolveBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 17, 40} {
		for _, k := range []int{1, 2, 3, 7} {
			a := NewMatrix(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					v := rng.Float64() - 0.5
					a.Set(i, j, v)
					a.Set(j, i, v)
				}
				a.Add(i, i, float64(n))
			}
			chol, err := NewCholesky(a)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			batch := make([]Vector, k)
			single := make([]Vector, k)
			for c := 0; c < k; c++ {
				batch[c] = NewVector(n)
				for i := range batch[c] {
					batch[c][i] = 10 * (rng.Float64() - 0.5)
				}
				single[c] = batch[c].Clone()
			}
			if err := chol.SolveBatchInPlace(batch); err != nil {
				t.Fatalf("n=%d k=%d: batch: %v", n, k, err)
			}
			for c := 0; c < k; c++ {
				chol.SolveInPlace(single[c])
				for i := range single[c] {
					if batch[c][i] != single[c][i] {
						t.Fatalf("n=%d k=%d col %d row %d: batch %v != single %v",
							n, k, c, i, batch[c][i], single[c][i])
					}
				}
			}
		}
	}
	chol, err := NewCholesky(Identity(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := chol.SolveBatchInPlace([]Vector{NewVector(2)}); err == nil {
		t.Fatal("want dimension error for short column")
	}
	if err := chol.SolveBatchInPlace(nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}
