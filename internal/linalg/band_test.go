package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// gridSPDCSR builds the 5-point Laplacian of an nx×ny grid plus a small
// diagonal shift — the structure the thermal models produce, and the one
// profile orderings are designed for.
func gridSPDCSR(nx, ny int) *CSR {
	n := nx * ny
	b := NewCSRBuilder(n)
	at := func(x, y int) int { return y*nx + x }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := at(x, y)
			b.Add(i, i, 4.5)
			if x > 0 {
				b.Add(i, at(x-1, y), -1)
			}
			if x < nx-1 {
				b.Add(i, at(x+1, y), -1)
			}
			if y > 0 {
				b.Add(i, at(x, y-1), -1)
			}
			if y < ny-1 {
				b.Add(i, at(x, y+1), -1)
			}
		}
	}
	return b.Build()
}

func envelopeOf(a *CSR, order []int) int {
	inv := make([]int, a.N)
	for k, oi := range order {
		inv[oi] = k
	}
	total := 0
	for k, oi := range order {
		lo := k
		for e := a.RowPtr[oi]; e < a.RowPtr[oi+1]; e++ {
			if j := inv[a.Col[e]]; j < lo {
				lo = j
			}
		}
		total += k - lo + 1
	}
	return total
}

// TestProfileOrderPermutation checks the ordering is a permutation and
// actually shrinks the envelope of a grid numbered in a hostile order.
func TestProfileOrderPermutation(t *testing.T) {
	a := gridSPDCSR(20, 30)
	order := ProfileOrder(a)
	if len(order) != a.N {
		t.Fatalf("order has %d entries for %d nodes", len(order), a.N)
	}
	seen := make([]bool, a.N)
	for _, v := range order {
		if v < 0 || v >= a.N || seen[v] {
			t.Fatalf("order is not a permutation: %v at fault", v)
		}
		seen[v] = true
	}
	natural := make([]int, a.N)
	for i := range natural {
		natural[i] = i
	}
	// Row-major numbering of a 20-wide grid already has a tight band;
	// shuffle it to give the heuristic something hostile.
	rng := rand.New(rand.NewSource(5))
	shuffled := rng.Perm(a.N)
	if got, bad := envelopeOf(a, order), envelopeOf(a, shuffled); got >= bad {
		t.Errorf("profile order envelope %d not below shuffled %d", got, bad)
	}
	if got, nat := envelopeOf(a, order), envelopeOf(a, natural); got > nat {
		t.Errorf("profile order envelope %d worse than natural row-major %d", got, nat)
	}
}

// TestProfileOrderDisconnected covers multiple components, including an
// isolated node.
func TestProfileOrderDisconnected(t *testing.T) {
	b := NewCSRBuilder(7)
	// Component {0,1,2} chain, component {3,4,5} chain, isolated 6.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		b.Add(e[0], e[0], 3)
		b.Add(e[1], e[1], 3)
		b.Add(e[0], e[1], -1)
		b.Add(e[1], e[0], -1)
	}
	b.Add(6, 6, 3)
	a := b.Build()
	order := ProfileOrder(a)
	seen := make([]bool, a.N)
	for _, v := range order {
		if v < 0 || v >= a.N || seen[v] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[v] = true
	}
}

// TestEnvelopeCholeskyExact pins the factorization against dense ground
// truth: the preconditioner is an exact solve, so A·(E⁻¹·r) must equal r
// to roundoff — under both the natural and the profile ordering.
func TestEnvelopeCholeskyExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 17, 60} {
		a := randomSPDCSR(rng, n, 0.2)
		for _, perm := range [][]int{nil, ProfileOrder(a)} {
			e, err := NewEnvelopeCholesky(a, perm, 0)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			r := NewVector(n)
			for i := range r {
				r[i] = rng.NormFloat64()
			}
			z := NewVector(n)
			e.Apply(z, r)
			back := NewVector(n)
			a.MulVec(z, back)
			for i := range r {
				if math.Abs(back[i]-r[i]) > 1e-9*(1+math.Abs(r[i])) {
					t.Fatalf("n=%d perm=%v: A·E⁻¹·r differs at %d: %v vs %v", n, perm != nil, i, back[i], r[i])
				}
			}
			// Aliasing: Apply(r, r) must give the same solution.
			alias := append(Vector(nil), r...)
			e.Apply(alias, alias)
			for i := range z {
				if alias[i] != z[i] {
					t.Fatalf("aliased Apply differs at %d", i)
				}
			}
		}
	}
}

// TestEnvelopeCholeskyPanel checks the panel sweep is bit-identical to
// per-column Apply calls, including partially filled panels.
func TestEnvelopeCholeskyPanel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPDCSR(rng, 50, 0.1)
	e, err := NewEnvelopeCholesky(a, ProfileOrder(a), 0)
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	for _, ka := range []int{1, 3, k} {
		r := make([]float64, a.N*k)
		for i := range r {
			r[i] = rng.NormFloat64()
		}
		z := make([]float64, a.N*k)
		e.applyPanel(z, r, k, ka)
		col := NewVector(a.N)
		zc := NewVector(a.N)
		for c := 0; c < ka; c++ {
			for i := 0; i < a.N; i++ {
				col[i] = r[i*k+c]
			}
			e.Apply(zc, col)
			for i := 0; i < a.N; i++ {
				if z[i*k+c] != zc[i] {
					t.Fatalf("ka=%d: panel column %d differs at %d: %v vs %v", ka, c, i, z[i*k+c], zc[i])
				}
			}
		}
	}
}

// TestEnvelopeCholeskyErrors covers the rejection paths: bad orderings,
// the envelope cap, and non-SPD input.
func TestEnvelopeCholeskyErrors(t *testing.T) {
	a := gridSPDCSR(6, 6)
	if _, err := NewEnvelopeCholesky(a, []int{0, 1}, 0); !errors.Is(err, ErrDimension) {
		t.Errorf("short ordering: %v", err)
	}
	bad := make([]int, a.N)
	if _, err := NewEnvelopeCholesky(a, bad, 0); !errors.Is(err, ErrOptions) {
		t.Errorf("duplicate ordering: %v", err)
	}
	if _, err := NewEnvelopeCholesky(a, nil, 1); !errors.Is(err, ErrBandwidth) {
		t.Errorf("cap of one entry per row: %v", err)
	}
	// An indefinite matrix must be rejected at the pivot.
	b := NewCSRBuilder(2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 5)
	b.Add(1, 0, 5)
	b.Add(1, 1, 1)
	if _, err := NewEnvelopeCholesky(b.Build(), nil, 0); !errors.Is(err, ErrNotSPD) {
		t.Errorf("indefinite matrix: %v", err)
	}
}

// TestCGBlockWithEnvelopePrec is the configuration the influence fan-out
// runs: blocked CG under the exact factorization must converge in one or
// two iterations and still satisfy the residual contract.
func TestCGBlockWithEnvelopePrec(t *testing.T) {
	a := gridSPDCSR(15, 15)
	env, err := NewEnvelopeCholesky(a, ProfileOrder(a), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	const k = 4
	b := make([]Vector, k)
	for c := range b {
		b[c] = NewVector(a.N)
		for i := range b[c] {
			b[c][i] = rng.NormFloat64()
		}
	}
	x, stats, err := SolveCGBlock(a, b, CGOptions{Precond: env})
	if err != nil {
		t.Fatal(err)
	}
	ax := NewVector(a.N)
	for c := range x {
		if stats[c].Iterations > 2 {
			t.Errorf("column %d took %d iterations under an exact preconditioner", c, stats[c].Iterations)
		}
		a.MulVec(x[c], ax)
		num, den := 0.0, 0.0
		for i := range ax {
			d := ax[i] - b[c][i]
			num += d * d
			den += b[c][i] * b[c][i]
		}
		if math.Sqrt(num) > 1e-9*math.Sqrt(den) {
			t.Errorf("column %d residual %g too large", c, math.Sqrt(num)/math.Sqrt(den))
		}
	}
}
