package linalg

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements an exact envelope (skyline) Cholesky
// factorization for use as a CG preconditioner on many-right-hand-side
// solves. The thermal RC matrices are layered grid graphs: under a
// bandwidth-reducing ordering (reverse Cuthill–McKee) their envelope is
// narrow for grid rows and only widens locally where coarse layers
// overlap many fine cells. Cholesky fills nothing outside the envelope,
// so storing each row from its first nonzero to the diagonal captures
// the exact factor; each application — two triangular sweeps over the
// envelope, O(nnz(L)) — solves the system to roundoff. Inside a blocked
// CG solve the factorization cost is amortized over the whole column
// fan-out and every column converges in one or two iterations, while
// the CG wrapper still enforces the usual residual tolerance.

// ErrBandwidth reports that a matrix's envelope under the supplied
// ordering exceeds the caller's cap, i.e. the exact factor would cost
// more than it saves. Callers fall back to an incomplete factorization.
var ErrBandwidth = fmt.Errorf("linalg: envelope over cap")

// ProfileOrder returns an envelope-reducing ordering of the symmetric
// sparsity graph of a: order[k] is the original index of the node placed
// at position k. Per connected component it generates reverse
// Cuthill–McKee orderings from several pseudo-peripheral roots plus a
// Sloan ordering, scores each candidate by the envelope it would store,
// and keeps the smallest — so a weak heuristic on an awkward graph can
// never drag the result below the best candidate.
func ProfileOrder(a *CSR) []int {
	n := a.N
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	queue := make([]int, 0, n)
	scratch := make([]bool, n)
	scratch2 := make([]bool, n)

	// bfs appends the component of root to queue in Cuthill–McKee order
	// (neighbours by increasing degree) and returns the last level and
	// the BFS depth.
	bfs := func(root int, mark []bool) ([]int, int) {
		level := []int{root}
		depth := 0
		mark[root] = true
		queue = append(queue[:0], root)
		start := 0
		for start < len(queue) {
			levelEnd := len(queue)
			for ; start < levelEnd; start++ {
				i := queue[start]
				nbrStart := len(queue)
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := a.Col[k]
					if j != i && !mark[j] {
						mark[j] = true
						queue = append(queue, j)
					}
				}
				nbr := queue[nbrStart:]
				sort.Slice(nbr, func(x, y int) bool {
					if deg[nbr[x]] != deg[nbr[y]] {
						return deg[nbr[x]] < deg[nbr[y]]
					}
					return nbr[x] < nbr[y]
				})
			}
			if levelEnd < len(queue) {
				level = queue[levelEnd:]
				depth++
			}
		}
		return level, depth
	}

	// envelopeSize scores a component ordering by the number of lower-
	// envelope entries it would store; positions outside the component
	// cannot tighten a row (the component is connected), so scoring each
	// component independently is exact.
	envelopeSize := func(ord []int) int {
		inv := make([]int, n)
		for i := range inv {
			inv[i] = -1
		}
		for k, oi := range ord {
			inv[oi] = k
		}
		total := 0
		for k, oi := range ord {
			lo := k
			for e := a.RowPtr[oi]; e < a.RowPtr[oi+1]; e++ {
				if j := inv[a.Col[e]]; j >= 0 && j < lo {
					lo = j
				}
			}
			total += k - lo + 1
		}
		return total
	}

	// componentOrder runs Cuthill–McKee from root over the unvisited
	// component without committing the visit marks, and reverses the
	// result: reversing turns the lower profile into an upper one and
	// empirically tightens the envelope (the "R" in RCM).
	componentOrder := func(root int) []int {
		copy(scratch2, visited)
		bfs(root, scratch2)
		ord := append([]int(nil), queue...)
		for l, r := 0, len(ord)-1; l < r; l, r = l+1, r-1 {
			ord[l], ord[r] = ord[r], ord[l]
		}
		return ord
	}

	// sloanOrder numbers the unvisited component holding s by Sloan's
	// profile-reduction heuristic: each step picks the candidate with the
	// best blend of "far from the end vertex e" (keeps the wavefront
	// moving) and "cheap to absorb" (small degree, many neighbours
	// already numbered). Statuses follow the classic scheme — inactive,
	// preactive (adjacent to the wavefront), active (adjacent to a
	// numbered node), postactive (numbered).
	const (
		sloanInactive = iota
		sloanPreactive
		sloanActive
		sloanPostactive
	)
	prio := make([]int, n)
	status := make([]int, n)
	sloanOrder := func(s, e int) []int {
		// Distance from e over the component, BFS.
		copy(scratch2, visited)
		dist := make(map[int]int)
		frontier := append(queue[:0], e)
		scratch2[e] = true
		dist[e] = 0
		for len(frontier) > 0 {
			next := frontier[:0:0]
			for _, i := range frontier {
				for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
					j := a.Col[k]
					if j != i && !scratch2[j] {
						scratch2[j] = true
						dist[j] = dist[i] + 1
						next = append(next, j)
					}
				}
			}
			frontier = next
		}
		const w1, w2 = 2, 1 // Sloan's weights: distance vs. degree
		for v, d := range dist {
			prio[v] = w1*d - w2*(deg[v]+1)
			status[v] = sloanInactive
		}
		ord := make([]int, 0, len(dist))
		cand := append([]int(nil), s)
		status[s] = sloanPreactive
		for len(cand) > 0 {
			// Linear max scan; wavefronts are small next to n.
			bi := 0
			for i := 1; i < len(cand); i++ {
				if prio[cand[i]] > prio[cand[bi]] {
					bi = i
				}
			}
			v := cand[bi]
			cand[bi] = cand[len(cand)-1]
			cand = cand[:len(cand)-1]
			if status[v] == sloanPreactive {
				for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
					w := a.Col[k]
					if w == v {
						continue
					}
					prio[w] += w2
					if status[w] == sloanInactive {
						status[w] = sloanPreactive
						cand = append(cand, w)
					}
				}
			}
			ord = append(ord, v)
			status[v] = sloanPostactive
			for k := a.RowPtr[v]; k < a.RowPtr[v+1]; k++ {
				w := a.Col[k]
				if w == v || status[w] != sloanPreactive {
					continue
				}
				status[w] = sloanActive
				prio[w] += w2
				for k2 := a.RowPtr[w]; k2 < a.RowPtr[w+1]; k2++ {
					u := a.Col[k2]
					if u == w || status[u] == sloanPostactive {
						continue
					}
					prio[u] += w2
					if status[u] == sloanInactive {
						status[u] = sloanPreactive
						cand = append(cand, u)
					}
				}
			}
		}
		return ord
	}

	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		// Candidate roots: the seed itself and the pseudo-peripheral
		// vertices found by hopping to the minimum-degree vertex of the
		// deepest BFS level (George–Liu). Deeper level structures usually
		// mean thinner levels, but not always — so every candidate's
		// component ordering is scored by its actual envelope size and
		// the smallest wins.
		roots := []int{seed}
		root := seed
		copy(scratch, visited)
		_, depth := bfs(root, scratch)
		for {
			copy(scratch, visited)
			last, _ := bfs(root, scratch)
			next := last[0]
			for _, v := range last {
				if deg[v] < deg[next] {
					next = v
				}
			}
			if next == root {
				break
			}
			roots = append(roots, next)
			copy(scratch, visited)
			_, d := bfs(next, scratch)
			if d <= depth {
				break
			}
			root, depth = next, d
		}
		best := componentOrder(roots[0])
		bestEnv := envelopeSize(best)
		for _, r := range roots[1:] {
			if cand := componentOrder(r); envelopeSize(cand) < bestEnv {
				best, bestEnv = cand, envelopeSize(cand)
			}
		}
		// Sloan candidates between the pseudo-peripheral pair, both ways.
		copy(scratch, visited)
		last, _ := bfs(root, scratch)
		end := last[0]
		for _, v := range last {
			if deg[v] < deg[end] {
				end = v
			}
		}
		for _, pair := range [][2]int{{root, end}, {end, root}} {
			if pair[0] == pair[1] {
				continue
			}
			if cand := sloanOrder(pair[0], pair[1]); envelopeSize(cand) < bestEnv {
				best, bestEnv = cand, envelopeSize(cand)
			}
		}
		for _, v := range best {
			visited[v] = true
		}
		order = append(order, best...)
	}
	return order
}

// EnvelopeCholesky is the exact L·Lᵀ factorization of a symmetric
// positive definite matrix in envelope (skyline) storage under a
// caller-supplied ordering: row i of L is stored densely from its first
// nonzero column lo[i] to the diagonal. It implements Preconditioner;
// because the factorization is exact, a preconditioned CG solve
// converges in one or two iterations. Immutable after construction;
// Apply is safe for concurrent use (per-call scratch comes from an
// internal pool).
type EnvelopeCholesky struct {
	n    int
	lo   []int     // first stored column of row i (in band positions)
	ptr  []int     // row i occupies f[ptr[i]:ptr[i+1]], diagonal last
	f    []float64 // factor values, rows packed back to back
	perm []int     // band position k holds original node perm[k]
	bw   int       // max half-bandwidth, max_i (i - lo[i])
	pool sync.Pool // *[]float64 scratch, grown on demand
}

// NewEnvelopeCholesky factors the SPD matrix a under the ordering perm
// (nil for the natural order). If the envelope of the reordered matrix
// holds more than maxMeanBand stored entries per row on average (when
// maxMeanBand > 0) it returns ErrBandwidth; a non-positive pivot
// returns ErrNotSPD.
func NewEnvelopeCholesky(a *CSR, perm []int, maxMeanBand int) (*EnvelopeCholesky, error) {
	n := a.N
	if perm == nil {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	}
	if len(perm) != n {
		return nil, fmt.Errorf("%w: ordering has %d entries for a %d-node matrix", ErrDimension, len(perm), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for k, oi := range perm {
		if oi < 0 || oi >= n || inv[oi] != -1 {
			return nil, fmt.Errorf("%w: ordering is not a permutation of 0..%d", ErrOptions, n-1)
		}
		inv[oi] = k
	}
	lo := make([]int, n)
	for i := range lo {
		lo[i] = i
	}
	for i := 0; i < n; i++ {
		bi := inv[i]
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			bj := inv[a.Col[k]]
			if bj < lo[bi] {
				lo[bi] = bj
			}
			// Symmetry: an upper entry (bi < bj) widens row bj.
			if bi < lo[bj] {
				lo[bj] = bi
			}
		}
	}
	ptr := make([]int, n+1)
	bw := 0
	for i := 0; i < n; i++ {
		ptr[i+1] = ptr[i] + i - lo[i] + 1
		if i-lo[i] > bw {
			bw = i - lo[i]
		}
	}
	if maxMeanBand > 0 && ptr[n] > n*maxMeanBand {
		return nil, fmt.Errorf("%w: envelope %d entries > %d per row over %d rows", ErrBandwidth, ptr[n], maxMeanBand, n)
	}

	f := make([]float64, ptr[n])
	for bi := 0; bi < n; bi++ {
		oi := perm[bi]
		for k := a.RowPtr[oi]; k < a.RowPtr[oi+1]; k++ {
			if bj := inv[a.Col[k]]; bj <= bi {
				f[ptr[bi]+bj-lo[bi]] = a.Val[k]
			}
		}
	}
	// In-place envelope Cholesky: the update for entry (i,j) runs over
	// the overlap [max(lo[i],lo[j]), j) of rows i and j; no fill occurs
	// outside the envelope.
	for i := 0; i < n; i++ {
		ri := f[ptr[i]:ptr[i+1]]
		li := lo[i]
		for j := li; j <= i; j++ {
			s := ri[j-li]
			rj := f[ptr[j]:ptr[j+1]]
			lj := lo[j]
			k0 := li
			if lj > k0 {
				k0 = lj
			}
			for k := k0; k < j; k++ {
				s -= ri[k-li] * rj[k-lj]
			}
			if j < i {
				ri[j-li] = s / rj[j-lj]
			} else {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: envelope Cholesky pivot %d = %g", ErrNotSPD, i, s)
				}
				ri[j-li] = math.Sqrt(s)
			}
		}
	}
	return &EnvelopeCholesky{n: n, lo: lo, ptr: ptr, f: f, perm: perm, bw: bw}, nil
}

// Bandwidth returns the maximum half-bandwidth of the factor under its
// ordering.
func (e *EnvelopeCholesky) Bandwidth() int { return e.bw }

// Profile returns the number of stored factor entries, nnz(L).
func (e *EnvelopeCholesky) Profile() int { return e.ptr[e.n] }

func (e *EnvelopeCholesky) getScratch(size int) []float64 {
	if p, ok := e.pool.Get().(*[]float64); ok && cap(*p) >= size {
		return (*p)[:size]
	}
	return make([]float64, size)
}

func (e *EnvelopeCholesky) putScratch(s []float64) {
	e.pool.Put(&s)
}

// Apply solves L·Lᵀ·z = r through the ordering: a row-oriented forward
// sweep and a column-oriented backward sweep in band space, then a
// scatter back to the original numbering. z and r may alias.
func (e *EnvelopeCholesky) Apply(z, r Vector) {
	n := e.n
	y := e.getScratch(n)
	for i := 0; i < n; i++ {
		ri := e.f[e.ptr[i]:e.ptr[i+1]]
		li := e.lo[i]
		s := r[e.perm[i]]
		for k := li; k < i; k++ {
			s -= ri[k-li] * y[k]
		}
		y[i] = s / ri[i-li]
	}
	for j := n - 1; j >= 0; j-- {
		rj := e.f[e.ptr[j]:e.ptr[j+1]]
		lj := e.lo[j]
		v := y[j] / rj[j-lj]
		y[j] = v
		for k := lj; k < j; k++ {
			y[k] -= rj[k-lj] * v
		}
	}
	for i := 0; i < n; i++ {
		z[e.perm[i]] = y[i]
	}
	e.putScratch(y)
}

// applyPanel runs the envelope sweeps over the ka leading panel columns
// in one pass, the blocked-CG fast path. Each column's arithmetic
// matches Apply exactly, so a panel application is bit-identical to ka
// scalar ones.
func (e *EnvelopeCholesky) applyPanel(z, r []float64, stride, ka int) {
	n := e.n
	y := e.getScratch(n * ka)
	for i := 0; i < n; i++ {
		ri := e.f[e.ptr[i]:e.ptr[i+1]]
		li := e.lo[i]
		yi := y[i*ka : i*ka+ka]
		copy(yi, r[e.perm[i]*stride:e.perm[i]*stride+ka])
		for k := li; k < i; k++ {
			v := ri[k-li]
			yk := y[k*ka : k*ka+ka : k*ka+ka]
			for c := range yi {
				yi[c] -= v * yk[c]
			}
		}
		d := ri[i-li]
		for c := range yi {
			yi[c] /= d
		}
	}
	for j := n - 1; j >= 0; j-- {
		rj := e.f[e.ptr[j]:e.ptr[j+1]]
		lj := e.lo[j]
		yj := y[j*ka : j*ka+ka]
		d := rj[j-lj]
		for c := range yj {
			yj[c] /= d
		}
		for k := lj; k < j; k++ {
			v := rj[k-lj]
			yk := y[k*ka : k*ka+ka : k*ka+ka]
			for c := range yj {
				yk[c] -= v * yj[c]
			}
		}
	}
	for i := 0; i < n; i++ {
		copy(z[e.perm[i]*stride:e.perm[i]*stride+ka], y[i*ka:i*ka+ka])
	}
	e.putScratch(y)
}
