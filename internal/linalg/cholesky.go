package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not (numerically) symmetric
// positive definite. Conductance matrices from well-formed RC networks are
// always SPD, so this error usually indicates a malformed thermal
// configuration (e.g. a node with no path to the ambient).
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ. A single
// factorization can serve any number of Solve calls, which is the access
// pattern of the thermal code (one conductance matrix, many power maps).
type Cholesky struct {
	n int
	l []float64 // row-major lower triangle, full n×n storage
}

// NewCholesky factors the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	n := a.Rows
	l := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			li := l[i*n : i*n+j]
			lj := l[j*n : j*n+j]
			for k := range li {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, i, s)
				}
				l[i*n+i] = math.Sqrt(s)
			} else {
				l[i*n+j] = s / l[j*n+j]
			}
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// Solve returns x with A·x = b. The factorization is not modified, so Solve
// is safe for concurrent use from multiple goroutines.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: Cholesky solve n=%d rhs=%d", ErrDimension, c.n, len(b))
	}
	x := b.Clone()
	c.SolveInPlace(x)
	return x, nil
}

// SolveInPlace overwrites b with the solution of A·x = b. The caller must
// guarantee len(b) == Size().
func (c *Cholesky) SolveInPlace(b Vector) {
	n, l := c.n, c.l
	// Forward substitution: L·y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		row := l[i*n : i*n+i]
		for k, lv := range row {
			s -= lv * b[k]
		}
		b[i] = s / l[i*n+i]
	}
	// Backward substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * b[k]
		}
		b[i] = s / l[i*n+i]
	}
}

// Inverse returns A⁻¹ computed column by column. This is O(n³) and is only
// used to materialize the thermal-influence matrix once per configuration.
func (c *Cholesky) Inverse() *Matrix {
	inv := NewMatrix(c.n, c.n)
	e := NewVector(c.n)
	for j := 0; j < c.n; j++ {
		e.Fill(0)
		e[j] = 1
		c.SolveInPlace(e)
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, e[i])
		}
	}
	return inv
}
