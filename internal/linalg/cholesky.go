package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not (numerically) symmetric
// positive definite. Conductance matrices from well-formed RC networks are
// always SPD, so this error usually indicates a malformed thermal
// configuration (e.g. a node with no path to the ambient).
var ErrNotSPD = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of A = L·Lᵀ. A single
// factorization can serve any number of Solve calls, which is the access
// pattern of the thermal code (one conductance matrix, many power maps).
//
// The factor is stored twice and packed: the strict lower triangle of L
// row-major for the forward substitution, the strict upper triangle of Lᵀ
// row-major for the backward substitution, and the diagonal once. Both
// sweeps stream memory sequentially with no holes, so the whole factor's
// working set is n² floats — half the dense storage — which keeps the
// transient stepping kernels cache-resident at the figure sizes. The
// transposed copy performs the exact same floating-point operations in
// the same order a column sweep would; packing changes layout only.
type Cholesky struct {
	n    int
	lp   []float64 // packed strict lower triangle of L, row i at i(i-1)/2, length i
	utp  []float64 // packed strict upper triangle of Lᵀ (row i holds L[k][i], k>i)
	diag []float64
}

// NewCholesky factors the symmetric positive-definite matrix a.
// Only the lower triangle of a is read.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	n := a.Rows
	lp := make([]float64, n*(n-1)/2)
	diag := make([]float64, n)
	off := func(i int) int { return i * (i - 1) / 2 }
	for i := 0; i < n; i++ {
		li := lp[off(i) : off(i)+i]
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			lj := lp[off(j) : off(j)+j]
			for k := range lj {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotSPD, i, s)
				}
				diag[i] = math.Sqrt(s)
			} else {
				li[j] = s / diag[j]
			}
		}
	}
	utp := make([]float64, n*(n-1)/2)
	uoff := 0
	for i := 0; i < n; i++ {
		for k := i + 1; k < n; k++ {
			utp[uoff] = lp[off(k)+i]
			uoff++
		}
	}
	return &Cholesky{n: n, lp: lp, utp: utp, diag: diag}, nil
}

// Size returns the dimension of the factored matrix.
func (c *Cholesky) Size() int { return c.n }

// Solve returns x with A·x = b. The factorization is not modified, so Solve
// is safe for concurrent use from multiple goroutines.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("%w: Cholesky solve n=%d rhs=%d", ErrDimension, c.n, len(b))
	}
	x := b.Clone()
	c.SolveInPlace(x)
	return x, nil
}

// dot4 is the substitution kernel's dot product, unrolled eight-wide
// (with a four-wide tail) into independent accumulators so the
// multiply-add chains overlap instead of serializing on the FP add
// latency. Both SolveInPlace and
// SolveBatchInPlace go through this one helper: its accumulation order IS
// the solver's floating-point contract, and every caller sharing it is
// what keeps batched and single solves bit-for-bit interchangeable.
func dot4(a, x []float64) float64 {
	x = x[:len(a)] // one bounds check here buys check-free inner loops
	var s0, s1, s2, s3, s4, s5, s6, s7 float64
	k := 0
	for ; k+8 <= len(a); k += 8 {
		s0 += a[k] * x[k]
		s1 += a[k+1] * x[k+1]
		s2 += a[k+2] * x[k+2]
		s3 += a[k+3] * x[k+3]
		s4 += a[k+4] * x[k+4]
		s5 += a[k+5] * x[k+5]
		s6 += a[k+6] * x[k+6]
		s7 += a[k+7] * x[k+7]
	}
	for ; k+4 <= len(a); k += 4 {
		s0 += a[k] * x[k]
		s1 += a[k+1] * x[k+1]
		s2 += a[k+2] * x[k+2]
		s3 += a[k+3] * x[k+3]
	}
	for ; k < len(a); k++ {
		s0 += a[k] * x[k]
	}
	return ((s0 + s4) + (s1 + s5)) + ((s2 + s6) + (s3 + s7))
}

// SolveInPlace overwrites b with the solution of A·x = b. The caller must
// guarantee len(b) == Size().
func (c *Cholesky) SolveInPlace(b Vector) {
	n, lp, diag := c.n, c.lp, c.diag
	// Forward substitution: L·y = b.
	off := 0
	for i := 0; i < n; i++ {
		b[i] = (b[i] - dot4(lp[off:off+i], b[:i])) / diag[i]
		off += i
	}
	// Backward substitution: Lᵀ·x = y, streaming the transposed factor.
	utp := c.utp
	uoff := len(utp)
	for i := n - 1; i >= 0; i-- {
		uoff -= n - 1 - i
		b[i] = (b[i] - dot4(utp[uoff:uoff+n-1-i], b[i+1:n])) / diag[i]
	}
}

// SolveBatchInPlace overwrites each column with the solution of A·x = col,
// sharing one sweep of the factor across all right-hand sides. Per column
// the floating-point operations and their order are identical to
// SolveInPlace, so a batched solve is bit-for-bit equal to solving the
// columns one by one; the batching only lets independent columns overlap
// in the inner loops. Every column must have length Size().
func (c *Cholesky) SolveBatchInPlace(cols []Vector) error {
	for ci, col := range cols {
		if len(col) != c.n {
			return fmt.Errorf("%w: Cholesky batch solve n=%d col %d len=%d", ErrDimension, c.n, ci, len(col))
		}
	}
	switch len(cols) {
	case 0:
		return nil
	case 1:
		c.SolveInPlace(cols[0])
		return nil
	}
	n, lp, utp, diag := c.n, c.lp, c.utp, c.diag
	// Forward substitution: L·y = col for every column. The factor row is
	// loaded once per row of the sweep and stays cache-hot across the
	// columns; each column runs the exact dot4 kernel SolveInPlace runs.
	off := 0
	for i := 0; i < n; i++ {
		row := lp[off : off+i]
		off += i
		d := diag[i]
		for _, col := range cols {
			col[i] = (col[i] - dot4(row, col[:i])) / d
		}
	}
	// Backward substitution: Lᵀ·x = y for every column.
	uoff := len(utp)
	for i := n - 1; i >= 0; i-- {
		uoff -= n - 1 - i
		row := utp[uoff : uoff+n-1-i]
		d := diag[i]
		for _, col := range cols {
			col[i] = (col[i] - dot4(row, col[i+1:n])) / d
		}
	}
	return nil
}

// Inverse returns A⁻¹ computed column by column. This is O(n³) and is only
// used to materialize the thermal-influence matrix once per configuration.
func (c *Cholesky) Inverse() *Matrix {
	inv := NewMatrix(c.n, c.n)
	e := NewVector(c.n)
	for j := 0; j < c.n; j++ {
		e.Fill(0)
		e[j] = 1
		c.SolveInPlace(e)
		for i := 0; i < c.n; i++ {
			inv.Set(i, j, e[i])
		}
	}
	return inv
}
