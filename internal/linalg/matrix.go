package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Add increments element (i, j) by x.
func (m *Matrix) Add(i, j int, x float64) { m.Data[i*m.Cols+j] += x }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = M·x. It returns ErrDimension when len(x) != Cols.
func (m *Matrix) MulVec(x Vector) (Vector, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: MulVec %dx%d by %d", ErrDimension, m.Rows, m.Cols, len(x))
	}
	y := NewVector(m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// MulVecInto computes y = M·x into a caller-provided vector, for hot
// paths that cannot afford MulVec's allocation. x and y must not alias.
func (m *Matrix) MulVecInto(y, x Vector) error {
	if len(x) != m.Cols || len(y) != m.Rows {
		return fmt.Errorf("%w: MulVecInto %dx%d by %d into %d", ErrDimension, m.Rows, m.Cols, len(x), len(y))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return nil
}

// Mul computes the matrix product A·B.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("%w: Mul %dx%d by %dx%d", ErrDimension, m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the maximum absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}
