package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds an n×n strictly diagonally dominant symmetric matrix
// (hence SPD) in CSR form with the given off-diagonal density.
func randomSPDCSR(rng *rand.Rand, n int, density float64) *CSR {
	b := NewCSRBuilder(n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				v := 2*rng.Float64() - 1
				b.Add(i, j, v)
				b.Add(j, i, v)
				rowAbs[i] += math.Abs(v)
				rowAbs[j] += math.Abs(v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, rowAbs[i]+1+rng.Float64())
	}
	return b.Build()
}

// TestCGBlockMatchesPerColumn is the core differential: a blocked solve
// must reproduce k independent CGSolver solves. The design claim is
// stronger than a tolerance — per-column arithmetic is performed in the
// same order, so the iterates are bit-identical — but the test asserts
// the documented 1e-9 contract and reports exact mismatches separately.
func TestCGBlockMatchesPerColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 7, 40, 120} {
		for _, k := range []int{1, 3, 8} {
			a := randomSPDCSR(rng, n, 0.15)
			b := make([]Vector, k)
			for c := range b {
				b[c] = NewVector(n)
				for i := range b[c] {
					b[c][i] = 2*rng.Float64() - 1
				}
			}
			xb, sb, err := SolveCGBlock(a, b, CGOptions{Tol: 1e-11})
			if err != nil {
				t.Fatalf("n=%d k=%d: block solve: %v", n, k, err)
			}
			for c := range b {
				xc, sc, err := SolveCG(a, b[c], CGOptions{Tol: 1e-11})
				if err != nil {
					t.Fatalf("n=%d col %d: per-column solve: %v", n, c, err)
				}
				if sb[c].Iterations != sc.Iterations {
					t.Errorf("n=%d k=%d col %d: block %d iterations, per-column %d",
						n, k, c, sb[c].Iterations, sc.Iterations)
				}
				for i := range xc {
					if math.Abs(xb[c][i]-xc[i]) > 1e-9*(1+math.Abs(xc[i])) {
						t.Fatalf("n=%d k=%d col %d row %d: block %v per-column %v",
							n, k, c, i, xb[c][i], xc[i])
					}
					if xb[c][i] != xc[i] {
						t.Errorf("n=%d k=%d col %d row %d: not bit-identical: block %v per-column %v",
							n, k, c, i, xb[c][i], xc[i])
					}
				}
			}
		}
	}
}

// TestCGBlockResiduals verifies the returned solutions against the
// definition ‖b − A·x‖ ≤ tol·‖b‖ rather than against another solver.
func TestCGBlockResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPDCSR(rng, 80, 0.1)
	b := make([]Vector, 5)
	for c := range b {
		b[c] = NewVector(80)
		for i := range b[c] {
			b[c][i] = rng.NormFloat64()
		}
	}
	x, stats, err := SolveCGBlock(a, b, CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for c := range b {
		ax, err := a.MulVec(x[c], nil)
		if err != nil {
			t.Fatal(err)
		}
		var res, bn float64
		for i := range ax {
			d := b[c][i] - ax[i]
			res += d * d
			bn += b[c][i] * b[c][i]
		}
		rel := math.Sqrt(res) / math.Sqrt(bn)
		if rel > 1e-10 {
			t.Errorf("column %d residual %g above tolerance", c, rel)
		}
		if stats[c].Residual > 1e-10 {
			t.Errorf("column %d reported residual %g above tolerance", c, stats[c].Residual)
		}
	}
}

// TestCGBlockMixedConvergence exercises deflation: a panel whose columns
// converge at very different iteration counts (including instantly) must
// finish every column correctly and report per-column iteration counts.
func TestCGBlockMixedConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	a := randomSPDCSR(rng, n, 0.08)
	s, err := NewCGBlockSolver(a, 6, CGOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	d := a.Diagonal()
	b := make([]Vector, 6)
	x := make([]Vector, 6)
	for c := range b {
		b[c], x[c] = NewVector(n), NewVector(n)
	}
	// Column 0: zero RHS (0 iterations, x = 0).
	// Column 1: b = A·e0 with a warm start x = e0 (0 iterations).
	for k := a.RowPtr[0]; k < a.RowPtr[0+1]; k++ {
		b[1][a.Col[k]] = a.Val[k] // column 0 of A (A symmetric)
	}
	x[1][0] = 1
	// Column 2: a single spike (few iterations).
	b[2][n/2] = d[n/2]
	// Columns 3..5: dense random RHS (full iteration counts).
	for c := 3; c < 6; c++ {
		for i := range b[c] {
			b[c][i] = rng.NormFloat64()
		}
	}
	stats, err := s.SolveBlock(b, x)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Iterations != 0 {
		t.Errorf("zero RHS took %d iterations", stats[0].Iterations)
	}
	for i, v := range x[0] {
		if v != 0 {
			t.Fatalf("zero RHS solution nonzero at %d: %v", i, v)
		}
	}
	if stats[1].Iterations != 0 {
		t.Errorf("exact warm start took %d iterations", stats[1].Iterations)
	}
	if stats[2].Iterations == 0 || stats[2].Iterations > stats[3].Iterations {
		t.Errorf("spike RHS iterations %d should be positive and at most dense %d",
			stats[2].Iterations, stats[3].Iterations)
	}
	// Every column satisfies its own system.
	for c := range b {
		ax, err := a.MulVec(x[c], nil)
		if err != nil {
			t.Fatal(err)
		}
		bn := b[c].Norm2()
		if bn == 0 {
			continue
		}
		var res float64
		for i := range ax {
			d := b[c][i] - ax[i]
			res += d * d
		}
		if math.Sqrt(res)/bn > 1e-10 {
			t.Errorf("column %d residual %g", c, math.Sqrt(res)/bn)
		}
	}
	// Solver reuse: a second panel through the same solver still works.
	for c := range b {
		x[c].Fill(0)
	}
	if _, err := s.SolveBlock(b[:4], x[:4]); err != nil {
		t.Fatalf("solver reuse: %v", err)
	}
}

// TestCGBlockErrors pins the failure modes: option validation, dimension
// checks, and non-convergence reported as a ColumnError wrapping
// ErrNoConvergence for the lowest-indexed failing column while healthy
// columns still complete.
func TestCGBlockErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPDCSR(rng, 50, 0.1)
	if _, err := NewCGBlockSolver(a, 0, CGOptions{}); !errors.Is(err, ErrOptions) {
		t.Errorf("width 0 error = %v, want ErrOptions", err)
	}
	if _, err := NewCGBlockSolver(a, 2, CGOptions{Tol: -1}); !errors.Is(err, ErrOptions) {
		t.Errorf("negative tol error = %v, want ErrOptions", err)
	}
	s, err := NewCGBlockSolver(a, 2, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	good := NewVector(50)
	good[0] = 1
	if _, err := s.SolveBlock([]Vector{good, good, good}, make([]Vector, 3)); !errors.Is(err, ErrDimension) {
		t.Errorf("over-width panel error = %v, want ErrDimension", err)
	}
	if _, err := s.SolveBlock([]Vector{good}, []Vector{NewVector(7)}); !errors.Is(err, ErrDimension) {
		t.Errorf("short solution column error = %v, want ErrDimension", err)
	}
	if _, err := s.SolveBlock([]Vector{NewVector(7)}, []Vector{NewVector(50)}); !errors.Is(err, ErrDimension) {
		t.Errorf("short RHS error = %v, want ErrDimension", err)
	}
	if stats, err := s.SolveBlock(nil, nil); err != nil || stats != nil {
		t.Errorf("empty panel = (%v, %v), want (nil, nil)", stats, err)
	}

	// MaxIter 1 cannot converge the dense columns: the error must name
	// the lowest failing column and wrap ErrNoConvergence, and the zero
	// column must still succeed.
	b := make([]Vector, 3)
	x := make([]Vector, 3)
	for c := range b {
		b[c], x[c] = NewVector(50), NewVector(50)
	}
	for i := range b[1] {
		b[1][i] = rng.NormFloat64()
		b[2][i] = rng.NormFloat64()
	}
	tight, err := NewCGBlockSolver(a, 3, CGOptions{MaxIter: 1, Tol: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tight.SolveBlock(b, x)
	if err == nil {
		t.Fatal("MaxIter 1 should fail")
	}
	var ce *ColumnError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a ColumnError", err)
	}
	if ce.Col != 1 {
		t.Errorf("failing column = %d, want 1 (the lowest failing)", ce.Col)
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("error %v should wrap ErrNoConvergence", err)
	}
	if stats[0].Iterations != 0 {
		t.Errorf("zero column ran %d iterations despite sibling failure", stats[0].Iterations)
	}
	if stats[1].Iterations != 1 || stats[2].Iterations != 1 {
		t.Errorf("failed columns report %d/%d iterations, want 1/1", stats[1].Iterations, stats[2].Iterations)
	}
}

// customPrec wraps Jacobi behind a type that does not implement the
// panel interface, forcing the column-at-a-time fallback path.
type customPrec struct{ j *Jacobi }

func (p customPrec) Apply(z, r Vector) { p.j.Apply(z, r) }

// TestCGBlockCustomPreconditioner covers the non-panel preconditioner
// fallback: results must match the built-in Jacobi panel path.
func TestCGBlockCustomPreconditioner(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPDCSR(rng, 60, 0.1)
	j, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]Vector, 4)
	for c := range b {
		b[c] = NewVector(60)
		for i := range b[c] {
			b[c][i] = rng.NormFloat64()
		}
	}
	xPanel, _, err := SolveCGBlock(a, b, CGOptions{Precond: j})
	if err != nil {
		t.Fatal(err)
	}
	xFallback, _, err := SolveCGBlock(a, b, CGOptions{Precond: customPrec{j}})
	if err != nil {
		t.Fatal(err)
	}
	for c := range b {
		for i := range xPanel[c] {
			if xPanel[c][i] != xFallback[c][i] {
				t.Fatalf("fallback path diverged at col %d row %d", c, i)
			}
		}
	}
}

func BenchmarkCGBlockVsPerColumn(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPDCSR(rng, 2000, 0.003)
	k := 16
	rhs := make([]Vector, k)
	for c := range rhs {
		rhs[c] = NewVector(2000)
		for i := range rhs[c] {
			rhs[c][i] = rng.NormFloat64()
		}
	}
	b.Run("block", func(b *testing.B) {
		s, err := NewCGBlockSolver(a, k, CGOptions{})
		if err != nil {
			b.Fatal(err)
		}
		x := make([]Vector, k)
		for c := range x {
			x[c] = NewVector(2000)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := range x {
				x[c].Fill(0)
			}
			if _, err := s.SolveBlock(rhs, x); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-column", func(b *testing.B) {
		s, err := NewCGSolver(a, CGOptions{})
		if err != nil {
			b.Fatal(err)
		}
		x := NewVector(2000)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := range rhs {
				x.Fill(0)
				if _, err := s.Solve(rhs[c], x); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
