package linalg

import (
	"fmt"
	"sync"
)

// AffinePowers collapses k applications of the affine map
//
//	x ← M·x + b
//
// into one two-matrix apply. With S₁ = I, k steps compose to
//
//	x ← Mᵏ·x + S_k·b,  S_{a+b} = M_b·S_a + S_b,
//
// so the pair (Mᵏ, S_k) for any k is assembled in O(log k) matrix
// products from a repeated-squaring ladder (M^(2ʲ), S_(2ʲ)). The thermal
// macro-stepper uses this with M = (C/dt+G)⁻¹·(C/dt) to advance whole
// controller periods of constant power at the cost of two fused
// mat-vecs.
//
// Ladder rungs and composed pairs are built lazily under a mutex and
// are immutable once published, so Advance is safe for concurrent use.
type AffinePowers struct {
	n      int
	maxJ   int // ladder depth cap: hops of at most 2^maxJ steps
	mu     sync.Mutex
	ladder []affinePair        // ladder[j] covers 2^j steps; ladder[0] = (M, I)
	comp   map[int]*affinePair // composed pairs, keyed by step count
}

// affinePair advances a fixed number of steps: x ← m·x + s·b.
type affinePair struct {
	m, s *Matrix
}

// maxComposites bounds the memo of composed pairs; past it, odd step
// counts are composed on the fly without being retained. Real runs see
// only a handful of distinct hop lengths (the record stride and its
// remainders), far below the bound.
const maxComposites = 16

// NewAffinePowers prepares the ladder for the n×n map matrix m. maxJ
// caps the ladder depth: a single Advance hop covers at most 2^maxJ
// steps, and longer advances loop over hops. Each rung and each
// distinct composed hop costs two n×n matrices, so maxJ also bounds
// memory at roughly 2·(maxJ+maxComposites)·n² floats.
func NewAffinePowers(m *Matrix, maxJ int) (*AffinePowers, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: AffinePowers of %dx%d", ErrDimension, m.Rows, m.Cols)
	}
	if maxJ < 0 {
		maxJ = 0
	}
	return &AffinePowers{
		n:      m.Rows,
		maxJ:   maxJ,
		ladder: []affinePair{{m: m.Clone(), s: Identity(m.Rows)}},
		comp:   make(map[int]*affinePair),
	}, nil
}

// Size returns the dimension of the map.
func (a *AffinePowers) Size() int { return a.n }

// MaxHop returns the largest step count a single composed pair covers.
func (a *AffinePowers) MaxHop() int { return 1 << a.maxJ }

// Advance applies k steps of the map to t in place: t ← Mᵏ·t + S_k·b.
// scratch must have length Size() and must not alias t or b.
func (a *AffinePowers) Advance(k int, t, b, scratch Vector) error {
	if len(t) != a.n || len(b) != a.n || len(scratch) != a.n {
		return fmt.Errorf("%w: AffinePowers advance n=%d t=%d b=%d scratch=%d",
			ErrDimension, a.n, len(t), len(b), len(scratch))
	}
	if k < 0 {
		return fmt.Errorf("linalg: AffinePowers advance k=%d < 0", k)
	}
	for k > 0 {
		hop := k
		if max := a.MaxHop(); hop > max {
			hop = max
		}
		p, err := a.pairFor(hop)
		if err != nil {
			return err
		}
		p.apply(t, b, scratch)
		copy(t, scratch)
		k -= hop
	}
	return nil
}

// apply computes out = m·t + s·b with one fused pass over both rows, so
// each cache line of the pair is touched exactly once.
func (p *affinePair) apply(t, b, out Vector) {
	n := len(out)
	for i := 0; i < n; i++ {
		mrow := p.m.Data[i*n : (i+1)*n]
		srow := p.s.Data[i*n : (i+1)*n]
		sm, sb := 0.0, 0.0
		for j, mv := range mrow {
			sm += mv * t[j]
			sb += srow[j] * b[j]
		}
		out[i] = sm + sb
	}
}

// pairFor returns the (Mᵏ, S_k) pair for 1 <= k <= MaxHop, building
// ladder rungs and the composed pair on first use.
func (a *AffinePowers) pairFor(k int) (*affinePair, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if k == 1 {
		return &a.ladder[0], nil
	}
	if p, ok := a.comp[k]; ok {
		return p, nil
	}
	// Extend the ladder through the highest set bit of k.
	top := 0
	for 1<<(top+1) <= k {
		top++
	}
	for len(a.ladder) <= top {
		last := a.ladder[len(a.ladder)-1]
		m2, err := last.m.Mul(last.m)
		if err != nil {
			return nil, err
		}
		s2, err := last.m.Mul(last.s)
		if err != nil {
			return nil, err
		}
		addInto(s2, last.s)
		a.ladder = append(a.ladder, affinePair{m: m2, s: s2})
	}
	if k == 1<<top {
		return &a.ladder[top], nil
	}
	// Compose the set bits low to high: appending rung j after a pair
	// covering c steps gives (M_j·M_c, M_j·S_c + S_j).
	var acc *affinePair
	for j := 0; j <= top; j++ {
		if k&(1<<j) == 0 {
			continue
		}
		rung := &a.ladder[j]
		if acc == nil {
			acc = rung
			continue
		}
		m, err := rung.m.Mul(acc.m)
		if err != nil {
			return nil, err
		}
		s, err := rung.m.Mul(acc.s)
		if err != nil {
			return nil, err
		}
		addInto(s, rung.s)
		acc = &affinePair{m: m, s: s}
	}
	if len(a.comp) < maxComposites {
		a.comp[k] = acc
	}
	return acc, nil
}

// addInto accumulates dst += src elementwise.
func addInto(dst, src *Matrix) {
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}
