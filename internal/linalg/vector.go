// Package linalg implements the small dense linear-algebra kernel the
// thermal solver needs: vectors, column-major-free dense matrices,
// Cholesky and LU factorizations with reusable solves, and a handful of
// BLAS-1/2 style helpers.
//
// The compact thermal RC model produces symmetric positive-definite
// conductance matrices of a few hundred to a few thousand unknowns. A dense
// Cholesky factorization that is computed once and re-used for many
// right-hand sides (steady-state maps, TSP row sums, implicit-Euler
// transient steps) is simpler and fast enough at this scale; no sparse
// machinery is required.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned when operand shapes are incompatible.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Fill sets every element of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// AddScaled sets v = v + alpha*w and returns v.
func (v Vector) AddScaled(alpha float64, w Vector) Vector {
	for i := range v {
		v[i] += alpha * w[i]
	}
	return v
}

// Scale multiplies every element of v by alpha and returns v.
func (v Vector) Scale(alpha float64) Vector {
	for i := range v {
		v[i] *= alpha
	}
	return v
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute element of v (0 for empty vectors).
func (v Vector) NormInf() float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Max returns the maximum element and its index. It panics on empty input
// because an empty maximum has no meaningful value.
func (v Vector) Max() (float64, int) {
	if len(v) == 0 {
		panic("linalg: Max of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v {
		if x > best {
			best, at = x, i
		}
	}
	return best, at
}

// Min returns the minimum element and its index. It panics on empty input.
func (v Vector) Min() (float64, int) {
	if len(v) == 0 {
		panic("linalg: Min of empty vector")
	}
	best, at := v[0], 0
	for i, x := range v {
		if x < best {
			best, at = x, i
		}
	}
	return best, at
}

// Sum returns the sum of the elements of v.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of v (0 for empty vectors).
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// String renders the vector with 4-digit precision, for diagnostics.
func (v Vector) String() string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", x)
	}
	return s + "]"
}
