package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is a compressed-sparse-row matrix. Thermal conductance matrices are
// extremely sparse (≈7 nonzeros per row: self, 4 lateral neighbours, up
// and down), so iterative solves on CSR scale to chips far beyond what a
// dense Cholesky handles comfortably. Column indices are ascending within
// each row.
type CSR struct {
	N      int
	RowPtr []int // len N+1
	Col    []int
	Val    []float64
}

// CSRBuilder accumulates coordinate-format entries and assembles them
// into a CSR matrix. Duplicate (i, j) entries are summed in insertion
// order, which makes the assembly deterministic (and, for the thermal
// conductance matrices, bit-identical to the historical dense
// accumulation). This is the primary assembly path: producers build
// directly into sparse form and never materialize an n×n dense matrix.
type CSRBuilder struct {
	n    int
	rows [][]csrEntry
}

type csrEntry struct {
	col int
	val float64
}

// NewCSRBuilder returns a builder for an n×n matrix.
func NewCSRBuilder(n int) *CSRBuilder {
	return &CSRBuilder{n: n, rows: make([][]csrEntry, n)}
}

// Add accumulates v into entry (i, j). It panics on out-of-range indices,
// mirroring dense Matrix indexing.
func (b *CSRBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.n || j < 0 || j >= b.n {
		panic(fmt.Sprintf("linalg: CSRBuilder.Add(%d, %d) on %d×%d", i, j, b.n, b.n))
	}
	b.rows[i] = append(b.rows[i], csrEntry{col: j, val: v})
}

// Build assembles the accumulated entries into a CSR matrix with
// ascending column order per row. The builder can be reused afterwards,
// but entries already added remain.
func (b *CSRBuilder) Build() *CSR {
	c := &CSR{N: b.n, RowPtr: make([]int, b.n+1)}
	var nnz int
	for _, row := range b.rows {
		nnz += len(row) // upper bound before merging
	}
	c.Col = make([]int, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for i, row := range b.rows {
		// Stable sort keeps duplicates in insertion order so their sum
		// is reproducible.
		sort.SliceStable(row, func(a, b int) bool { return row[a].col < row[b].col })
		for k := 0; k < len(row); {
			col, sum := row[k].col, row[k].val
			for k++; k < len(row) && row[k].col == col; k++ {
				sum += row[k].val
			}
			c.Col = append(c.Col, col)
			c.Val = append(c.Val, sum)
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c
}

// NewCSRFromDense converts a square dense matrix, dropping entries with
// |v| <= dropTol. It is retained as a test helper for comparing the
// sparse and dense code paths; production assembly uses CSRBuilder and
// never materializes the dense form.
func NewCSRFromDense(m *Matrix, dropTol float64) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: CSR of %dx%d", ErrDimension, m.Rows, m.Cols)
	}
	c := &CSR{N: m.Rows, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if math.Abs(v) > dropTol {
				c.Col = append(c.Col, j)
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c, nil
}

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// Dense materializes the matrix in dense form. Intended for the small-n
// direct-solver path and for tests; it is the only place the n×n form is
// ever allocated.
func (c *CSR) Dense() *Matrix {
	m := NewMatrix(c.N, c.N)
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			m.Set(i, c.Col[k], c.Val[k])
		}
	}
	return m
}

// Transpose returns Aᵀ in CSR form (column indices ascending).
func (c *CSR) Transpose() *CSR {
	t := &CSR{N: c.N, RowPtr: make([]int, c.N+1)}
	counts := make([]int, c.N)
	for _, j := range c.Col {
		counts[j]++
	}
	for j := 0; j < c.N; j++ {
		t.RowPtr[j+1] = t.RowPtr[j] + counts[j]
	}
	t.Col = make([]int, len(c.Col))
	t.Val = make([]float64, len(c.Val))
	next := make([]int, c.N)
	copy(next, t.RowPtr[:c.N])
	// Row-major traversal writes each transposed row in ascending
	// original-row order, i.e. ascending column order of the transpose.
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			j := c.Col[k]
			t.Col[next[j]] = i
			t.Val[next[j]] = c.Val[k]
			next[j]++
		}
	}
	return t
}

// AddDiagonal returns a new matrix A + diag(d) sharing the sparsity
// pattern of A (RowPtr and Col are shared, values are copied). Every row
// must already store a diagonal entry; thermal conductance matrices
// always do.
func (c *CSR) AddDiagonal(d Vector) (*CSR, error) {
	if len(d) != c.N {
		return nil, fmt.Errorf("%w: AddDiagonal n=%d d=%d", ErrDimension, c.N, len(d))
	}
	out := &CSR{N: c.N, RowPtr: c.RowPtr, Col: c.Col, Val: make([]float64, len(c.Val))}
	copy(out.Val, c.Val)
	for i := 0; i < c.N; i++ {
		found := false
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if c.Col[k] == i {
				out.Val[k] += d[i]
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("linalg: AddDiagonal: row %d has no stored diagonal", i)
		}
	}
	return out, nil
}

// IsSymmetric reports whether the matrix equals its transpose to within
// tol. Matrices whose sparsity pattern is itself asymmetric are reported
// as asymmetric even if the mismatched entries are within tol of zero.
func (c *CSR) IsSymmetric(tol float64) bool {
	t := c.Transpose()
	if len(t.Col) != len(c.Col) {
		return false
	}
	for i := range c.Col {
		if c.Col[i] != t.Col[i] || math.Abs(c.Val[i]-t.Val[i]) > tol {
			return false
		}
	}
	for i := range c.RowPtr {
		if c.RowPtr[i] != t.RowPtr[i] {
			return false
		}
	}
	return true
}

// MulVec computes y = A·x into the provided slice (allocated if nil).
func (c *CSR) MulVec(x, y Vector) (Vector, error) {
	if len(x) != c.N {
		return nil, fmt.Errorf("%w: CSR MulVec n=%d x=%d", ErrDimension, c.N, len(x))
	}
	if y == nil {
		y = NewVector(c.N)
	}
	if len(y) != c.N {
		return nil, fmt.Errorf("%w: CSR MulVec n=%d y=%d", ErrDimension, c.N, len(y))
	}
	for i := 0; i < c.N; i++ {
		s := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			s += c.Val[k] * x[c.Col[k]]
		}
		y[i] = s
	}
	return y, nil
}

// Diagonal extracts the main diagonal.
func (c *CSR) Diagonal() Vector {
	d := NewVector(c.N)
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if c.Col[k] == i {
				d[i] = c.Val[k]
				break
			}
		}
	}
	return d
}

// Preconditioner approximates A⁻¹ for the preconditioned CG solve.
// Implementations are immutable after construction and safe for
// concurrent Apply calls.
type Preconditioner interface {
	// Apply computes z ≈ A⁻¹·r. z and r may alias the same slice.
	Apply(z, r Vector)
}

// Jacobi is the diagonal (point) preconditioner — the cheap, breakdown-
// free fallback when the incomplete Cholesky cannot be formed.
type Jacobi struct {
	invDiag Vector
}

// NewJacobi builds the diagonal preconditioner. SPD matrices have
// strictly positive diagonals; anything else is rejected.
func NewJacobi(a *CSR) (*Jacobi, error) {
	inv := a.Diagonal()
	for i, d := range inv {
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: non-positive diagonal at %d", ErrNotSPD, i)
		}
		inv[i] = 1 / d
	}
	return &Jacobi{invDiag: inv}, nil
}

// Apply computes z = D⁻¹·r.
func (j *Jacobi) Apply(z, r Vector) {
	for i := range z {
		z[i] = j.invDiag[i] * r[i]
	}
}

// IC0 is the zero-fill incomplete Cholesky preconditioner: A ≈ L·Lᵀ where
// L keeps exactly the lower-triangular sparsity pattern of A. On the
// thermal grids (M-matrices) it typically cuts CG iteration counts by an
// order of magnitude versus Jacobi; on banded matrices whose exact factor
// is fill-free (e.g. tridiagonal chains) it is the exact factorization.
type IC0 struct {
	l  *CSR // lower triangle, ascending cols, diagonal last in each row
	lt *CSR // Lᵀ: upper triangle, diagonal first in each row
}

// NewIC0 computes the IC(0) factor of the SPD matrix a. A breakdown
// (missing or non-positive pivot) returns ErrNotSPD; callers usually fall
// back to NewJacobi.
func NewIC0(a *CSR) (*IC0, error) {
	n := a.N
	cols := make([][]int, n)     // per-row lower-pattern columns, ascending
	vals := make([][]float64, n) // factor values, built in place
	for i := 0; i < n; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if j := a.Col[k]; j <= i {
				cols[i] = append(cols[i], j)
				vals[i] = append(vals[i], a.Val[k])
			}
		}
		if len(cols[i]) == 0 || cols[i][len(cols[i])-1] != i {
			return nil, fmt.Errorf("%w: IC(0) row %d has no diagonal", ErrNotSPD, i)
		}
	}
	for i := 0; i < n; i++ {
		ci, vi := cols[i], vals[i]
		for idx, j := range ci {
			// s = a_ij − Σ_k L_ik·L_jk over shared columns k < j.
			s := vi[idx]
			cj, vj := cols[j], vals[j]
			p, q := 0, 0
			for p < idx && q < len(cj) && cj[q] < j {
				switch {
				case ci[p] < cj[q]:
					p++
				case ci[p] > cj[q]:
					q++
				default:
					s -= vi[p] * vj[q]
					p++
					q++
				}
			}
			if j < i {
				vi[idx] = s / vj[len(vj)-1] // L_jj is row j's last entry
			} else {
				if s <= 0 || math.IsNaN(s) {
					return nil, fmt.Errorf("%w: IC(0) pivot %d = %g", ErrNotSPD, i, s)
				}
				vi[idx] = math.Sqrt(s)
			}
		}
	}
	l := &CSR{N: n, RowPtr: make([]int, n+1)}
	for i := 0; i < n; i++ {
		l.Col = append(l.Col, cols[i]...)
		l.Val = append(l.Val, vals[i]...)
		l.RowPtr[i+1] = len(l.Col)
	}
	return &IC0{l: l, lt: l.Transpose()}, nil
}

// Apply solves L·Lᵀ·z = r by one forward and one backward triangular
// sweep. z and r may alias; no scratch is needed, so concurrent calls
// with distinct slices are safe.
func (m *IC0) Apply(z, r Vector) {
	l, lt := m.l, m.lt
	// Forward: L·y = r (diagonal is the last entry of each row).
	for i := 0; i < l.N; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		s := r[i]
		for k := lo; k < hi-1; k++ {
			s -= l.Val[k] * z[l.Col[k]]
		}
		z[i] = s / l.Val[hi-1]
	}
	// Backward: Lᵀ·z = y in place (diagonal is the first entry).
	for i := lt.N - 1; i >= 0; i-- {
		lo, hi := lt.RowPtr[i], lt.RowPtr[i+1]
		s := z[i]
		for k := lo + 1; k < hi; k++ {
			s -= lt.Val[k] * z[lt.Col[k]]
		}
		z[i] = s / lt.Val[lo]
	}
}

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance (default 1e-10). Negative
	// or NaN values are rejected.
	Tol float64
	// MaxIter bounds the iterations (default 4·N). Negative values are
	// rejected; 0 selects the default.
	MaxIter int
	// Precond overrides the preconditioner. When nil, IC(0) is used,
	// falling back to Jacobi if the incomplete factorization breaks
	// down.
	Precond Preconditioner
}

// ErrOptions is returned for invalid CGOptions values.
var ErrOptions = errors.New("linalg: invalid CG options")

// withDefaults validates the options and fills in the defaults for n
// unknowns.
func (o CGOptions) withDefaults(n int) (CGOptions, error) {
	if o.Tol < 0 || math.IsNaN(o.Tol) {
		return o, fmt.Errorf("%w: Tol %g", ErrOptions, o.Tol)
	}
	if o.MaxIter < 0 {
		return o, fmt.Errorf("%w: MaxIter %d", ErrOptions, o.MaxIter)
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.MaxIter == 0 {
		o.MaxIter = 4 * n
	}
	return o, nil
}

// ErrNoConvergence is returned when CG exhausts its iteration budget.
var ErrNoConvergence = errors.New("linalg: CG did not converge")

// CGStats reports the work and accuracy of one CG solve.
type CGStats struct {
	// Iterations is the number of CG iterations performed.
	Iterations int
	// Residual is the relative residual ‖b − A·x‖₂/‖b‖₂ at exit.
	Residual float64
}

// CGSolver solves A·x = b repeatedly against one matrix, reusing its
// scratch vectors across solves. It is not safe for concurrent use; pool
// one solver per goroutine (they can share the matrix and the
// preconditioner, which are immutable).
type CGSolver struct {
	a       *CSR
	prec    Preconditioner
	tol     float64
	maxIter int

	r, z, p, ap Vector
}

// NewCGSolver validates the options, builds the preconditioner (IC(0)
// with Jacobi fallback unless overridden) and allocates the scratch
// buffers once.
func NewCGSolver(a *CSR, opt CGOptions) (*CGSolver, error) {
	opt, err := opt.withDefaults(a.N)
	if err != nil {
		return nil, err
	}
	prec := opt.Precond
	if prec == nil {
		ic, err := NewIC0(a)
		if err == nil {
			prec = ic
		} else {
			j, jerr := NewJacobi(a)
			if jerr != nil {
				return nil, jerr
			}
			prec = j
		}
	}
	return &CGSolver{
		a:       a,
		prec:    prec,
		tol:     opt.Tol,
		maxIter: opt.MaxIter,
		r:       NewVector(a.N),
		z:       NewVector(a.N),
		p:       NewVector(a.N),
		ap:      NewVector(a.N),
	}, nil
}

// Preconditioner returns the preconditioner the solver settled on.
func (s *CGSolver) Preconditioner() Preconditioner { return s.prec }

// Solve runs preconditioned CG on A·x = b. x is both the initial guess
// and the result — warm-starting from a nearby solution (e.g. the
// previous transient step) cuts the iteration count substantially. The
// returned stats are valid even when the solve fails to converge.
func (s *CGSolver) Solve(b, x Vector) (CGStats, error) {
	a := s.a
	if len(b) != a.N || len(x) != a.N {
		return CGStats{}, fmt.Errorf("%w: CG n=%d rhs=%d x=%d", ErrDimension, a.N, len(b), len(x))
	}
	bNorm := b.Norm2()
	if bNorm == 0 {
		x.Fill(0)
		return CGStats{}, nil
	}
	// r = b − A·x (x may be a warm start).
	if _, err := a.MulVec(x, s.ap); err != nil {
		return CGStats{}, err
	}
	for i := range s.r {
		s.r[i] = b[i] - s.ap[i]
	}
	if res := s.r.Norm2(); res <= s.tol*bNorm {
		return CGStats{Residual: res / bNorm}, nil
	}
	s.prec.Apply(s.z, s.r)
	copy(s.p, s.z)
	rz := s.r.Dot(s.z)
	var res float64
	for iter := 1; iter <= s.maxIter; iter++ {
		if _, err := a.MulVec(s.p, s.ap); err != nil {
			return CGStats{Iterations: iter}, err
		}
		pap := s.p.Dot(s.ap)
		if pap <= 0 {
			return CGStats{Iterations: iter}, fmt.Errorf("%w: p·Ap = %g at iteration %d", ErrNotSPD, pap, iter)
		}
		alpha := rz / pap
		x.AddScaled(alpha, s.p)
		s.r.AddScaled(-alpha, s.ap)
		res = s.r.Norm2()
		if res <= s.tol*bNorm {
			return CGStats{Iterations: iter, Residual: res / bNorm}, nil
		}
		s.prec.Apply(s.z, s.r)
		rzNext := s.r.Dot(s.z)
		beta := rzNext / rz
		rz = rzNext
		for i := range s.p {
			s.p[i] = s.z[i] + beta*s.p[i]
		}
	}
	return CGStats{Iterations: s.maxIter, Residual: res / bNorm},
		fmt.Errorf("%w after %d iterations (residual %.3g)", ErrNoConvergence, s.maxIter, res/bNorm)
}

// SolveCG solves A·x = b for a symmetric positive-definite CSR matrix
// with preconditioned conjugate gradients (IC(0), falling back to
// Jacobi). It returns the solution and the solve statistics. Callers
// with many right-hand sides should hold a CGSolver instead to reuse the
// preconditioner and scratch buffers.
func SolveCG(a *CSR, b Vector, opt CGOptions) (Vector, CGStats, error) {
	s, err := NewCGSolver(a, opt)
	if err != nil {
		return nil, CGStats{}, err
	}
	x := NewVector(a.N)
	stats, err := s.Solve(b, x)
	if err != nil {
		return nil, stats, err
	}
	return x, stats, nil
}
