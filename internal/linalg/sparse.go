package linalg

import (
	"errors"
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row matrix. Thermal conductance matrices are
// extremely sparse (≈7 nonzeros per row: self, 4 lateral neighbours, up
// and down), so iterative solves on CSR scale to chips far beyond what a
// dense Cholesky handles comfortably.
type CSR struct {
	N      int
	RowPtr []int // len N+1
	Col    []int
	Val    []float64
}

// NewCSRFromDense converts a square dense matrix, dropping entries with
// |v| <= dropTol.
func NewCSRFromDense(m *Matrix, dropTol float64) (*CSR, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: CSR of %dx%d", ErrDimension, m.Rows, m.Cols)
	}
	c := &CSR{N: m.Rows, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if math.Abs(v) > dropTol {
				c.Col = append(c.Col, j)
				c.Val = append(c.Val, v)
			}
		}
		c.RowPtr[i+1] = len(c.Col)
	}
	return c, nil
}

// NNZ returns the number of stored nonzeros.
func (c *CSR) NNZ() int { return len(c.Val) }

// MulVec computes y = A·x into the provided slice (allocated if nil).
func (c *CSR) MulVec(x, y Vector) (Vector, error) {
	if len(x) != c.N {
		return nil, fmt.Errorf("%w: CSR MulVec n=%d x=%d", ErrDimension, c.N, len(x))
	}
	if y == nil {
		y = NewVector(c.N)
	}
	if len(y) != c.N {
		return nil, fmt.Errorf("%w: CSR MulVec n=%d y=%d", ErrDimension, c.N, len(y))
	}
	for i := 0; i < c.N; i++ {
		s := 0.0
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			s += c.Val[k] * x[c.Col[k]]
		}
		y[i] = s
	}
	return y, nil
}

// Diagonal extracts the main diagonal.
func (c *CSR) Diagonal() Vector {
	d := NewVector(c.N)
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if c.Col[k] == i {
				d[i] = c.Val[k]
				break
			}
		}
	}
	return d
}

// CGOptions tunes the conjugate-gradient solver.
type CGOptions struct {
	// Tol is the relative residual tolerance (default 1e-10).
	Tol float64
	// MaxIter bounds the iterations (default 4·N).
	MaxIter int
}

// ErrNoConvergence is returned when CG exhausts its iteration budget.
var ErrNoConvergence = errors.New("linalg: CG did not converge")

// SolveCG solves A·x = b for a symmetric positive-definite CSR matrix
// with Jacobi (diagonal) preconditioning. It returns the solution and the
// iteration count. Conductance matrices are diagonally dominant, so CG
// converges in a few dozen iterations regardless of size.
func SolveCG(a *CSR, b Vector, opt CGOptions) (Vector, int, error) {
	if len(b) != a.N {
		return nil, 0, fmt.Errorf("%w: CG n=%d rhs=%d", ErrDimension, a.N, len(b))
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 4 * a.N
	}
	invDiag := a.Diagonal()
	for i, d := range invDiag {
		if d <= 0 {
			return nil, 0, fmt.Errorf("%w: non-positive diagonal at %d", ErrNotSPD, i)
		}
		invDiag[i] = 1 / d
	}
	x := NewVector(a.N)
	r := b.Clone()
	z := NewVector(a.N)
	for i := range z {
		z[i] = invDiag[i] * r[i]
	}
	p := z.Clone()
	ap := NewVector(a.N)
	rz := r.Dot(z)
	bNorm := b.Norm2()
	if bNorm == 0 {
		return x, 0, nil
	}
	for iter := 1; iter <= opt.MaxIter; iter++ {
		if _, err := a.MulVec(p, ap); err != nil {
			return nil, iter, err
		}
		pap := p.Dot(ap)
		if pap <= 0 {
			return nil, iter, fmt.Errorf("%w: p·Ap = %g at iteration %d", ErrNotSPD, pap, iter)
		}
		alpha := rz / pap
		x.AddScaled(alpha, p)
		r.AddScaled(-alpha, ap)
		if r.Norm2() <= opt.Tol*bNorm {
			return x, iter, nil
		}
		for i := range z {
			z[i] = invDiag[i] * r[i]
		}
		rzNext := r.Dot(z)
		beta := rzNext / rz
		rz = rzNext
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return nil, opt.MaxIter, fmt.Errorf("%w after %d iterations (residual %.3g)",
		ErrNoConvergence, opt.MaxIter, r.Norm2()/bNorm)
}
