package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the SPD tridiagonal system of a 1-D heat chain with
// a grounded end — the simplest conductance-matrix shape.
func laplacian1D(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2.5)
		if i > 0 {
			m.Set(i, i-1, -1)
		}
		if i+1 < n {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

func TestNewCSRFromDense(t *testing.T) {
	m := laplacian1D(5)
	c, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 5 {
		t.Errorf("N = %d", c.N)
	}
	// Tridiagonal: 3n−2 nonzeros.
	if c.NNZ() != 13 {
		t.Errorf("NNZ = %d, want 13", c.NNZ())
	}
	if _, err := NewCSRFromDense(NewMatrix(2, 3), 0); err == nil {
		t.Errorf("non-square should error")
	}
	// Drop tolerance prunes small entries.
	m.Set(0, 4, 1e-15)
	pruned, err := NewCSRFromDense(m, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NNZ() != 13 {
		t.Errorf("tiny entry not dropped: NNZ = %d", pruned.NNZ())
	}
}

func TestCSRMulVec(t *testing.T) {
	m := laplacian1D(6)
	c, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := Vector{1, 2, 3, 4, 5, 6}
	dense, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := c.MulVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if math.Abs(dense[i]-sparse[i]) > 1e-12 {
			t.Fatalf("MulVec differs at %d", i)
		}
	}
	if _, err := c.MulVec(Vector{1}, nil); err == nil {
		t.Errorf("bad x size should error")
	}
	if _, err := c.MulVec(x, Vector{1}); err == nil {
		t.Errorf("bad y size should error")
	}
}

func TestSolveCGMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 20, 120} {
		dense := laplacian1D(n)
		csr, err := NewCSRFromDense(dense, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64() * 5
		}
		ch, err := NewCholesky(dense)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		got, iters, err := SolveCG(csr, b, CGOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if iters <= 0 || iters > 4*n {
			t.Errorf("n=%d: iterations = %d", n, iters)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: CG differs from Cholesky at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestSolveCGEdgeCases(t *testing.T) {
	csr, err := NewCSRFromDense(laplacian1D(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero RHS solves instantly.
	x, iters, err := SolveCG(csr, NewVector(4), CGOptions{})
	if err != nil || iters != 0 || x.NormInf() != 0 {
		t.Errorf("zero rhs: %v %d %v", x, iters, err)
	}
	if _, _, err := SolveCG(csr, NewVector(3), CGOptions{}); err == nil {
		t.Errorf("rhs mismatch should error")
	}
	// Iteration starvation reports ErrNoConvergence.
	if _, _, err := SolveCG(csr, Vector{1, 2, 3, 4}, CGOptions{MaxIter: 1, Tol: 1e-15}); err == nil {
		t.Errorf("starved CG should error")
	}
	// Non-positive diagonal rejected.
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, -1)
	bad.Set(1, 1, 1)
	badCSR, err := NewCSRFromDense(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveCG(badCSR, Vector{1, 1}, CGOptions{}); err == nil {
		t.Errorf("indefinite matrix should error")
	}
}

// Property: CG solves random SPD (diagonally dominant) systems to the
// requested tolerance.
func TestSolveCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if rng.Float64() < 0.2 {
					v := -rng.Float64()
					m.Set(i, j, v)
					rowSum += -v
				}
			}
			m.Set(i, i, rowSum+0.5+rng.Float64())
		}
		// Symmetrize.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := (m.At(i, j) + m.At(j, i)) / 2
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		csr, err := NewCSRFromDense(m, 0)
		if err != nil {
			return false
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := SolveCG(csr, b, CGOptions{Tol: 1e-9})
		if err != nil {
			return false
		}
		ax, err := csr.MulVec(x, nil)
		if err != nil {
			return false
		}
		return ax.AddScaled(-1, b).Norm2() <= 1e-7*(1+b.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
