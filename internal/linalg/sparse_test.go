package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// laplacian1D builds the SPD tridiagonal system of a 1-D heat chain with
// a grounded end — the simplest conductance-matrix shape.
func laplacian1D(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 2.5)
		if i > 0 {
			m.Set(i, i-1, -1)
		}
		if i+1 < n {
			m.Set(i, i+1, -1)
		}
	}
	return m
}

func TestNewCSRFromDense(t *testing.T) {
	m := laplacian1D(5)
	c, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 5 {
		t.Errorf("N = %d", c.N)
	}
	// Tridiagonal: 3n−2 nonzeros.
	if c.NNZ() != 13 {
		t.Errorf("NNZ = %d, want 13", c.NNZ())
	}
	if _, err := NewCSRFromDense(NewMatrix(2, 3), 0); err == nil {
		t.Errorf("non-square should error")
	}
	// Drop tolerance prunes small entries.
	m.Set(0, 4, 1e-15)
	pruned, err := NewCSRFromDense(m, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NNZ() != 13 {
		t.Errorf("tiny entry not dropped: NNZ = %d", pruned.NNZ())
	}
}

func TestCSRBuilder(t *testing.T) {
	b := NewCSRBuilder(3)
	// Out-of-order and duplicate entries: duplicates must merge.
	b.Add(1, 2, 1)
	b.Add(0, 0, 2)
	b.Add(1, 0, -1)
	b.Add(1, 2, 3)
	b.Add(2, 2, 4)
	b.Add(1, 1, 5)
	c := b.Build()
	if c.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5 after merging", c.NNZ())
	}
	// Columns ascend within each row.
	for i := 0; i < c.N; i++ {
		for k := c.RowPtr[i] + 1; k < c.RowPtr[i+1]; k++ {
			if c.Col[k-1] >= c.Col[k] {
				t.Fatalf("row %d columns not ascending: %v", i, c.Col[c.RowPtr[i]:c.RowPtr[i+1]])
			}
		}
	}
	d := c.Dense()
	want := [][]float64{{2, 0, 0}, {-1, 5, 4}, {0, 0, 4}}
	for i := range want {
		for j := range want[i] {
			if d.At(i, j) != want[i][j] {
				t.Errorf("dense[%d][%d] = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
	// Round trip through NewCSRFromDense matches the builder output.
	back, err := NewCSRFromDense(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != c.NNZ() {
		t.Errorf("round trip NNZ %d vs %d", back.NNZ(), c.NNZ())
	}
	// Out-of-range panics.
	defer func() {
		if recover() == nil {
			t.Errorf("out-of-range Add should panic")
		}
	}()
	b.Add(0, 3, 1)
}

func TestCSRTransposeAndSymmetry(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Add(0, 1, 2)
	b.Add(2, 0, -3)
	b.Add(1, 1, 1)
	c := b.Build()
	tr := c.Transpose()
	d, dt := c.Dense(), tr.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != dt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if c.IsSymmetric(1e-12) {
		t.Errorf("asymmetric matrix reported symmetric")
	}
	sym, err := NewCSRFromDense(laplacian1D(6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !sym.IsSymmetric(1e-12) {
		t.Errorf("laplacian should be symmetric")
	}
}

func TestCSRAddDiagonal(t *testing.T) {
	a, err := NewCSRFromDense(laplacian1D(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	d := Vector{1, 2, 3, 4}
	shifted, err := a.AddDiagonal(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if got := shifted.Diagonal()[i]; got != 2.5+d[i] {
			t.Errorf("diag[%d] = %v", i, got)
		}
	}
	// The original is untouched (values copied, pattern shared).
	if a.Diagonal()[0] != 2.5 {
		t.Errorf("AddDiagonal mutated the receiver")
	}
	if _, err := a.AddDiagonal(Vector{1}); err == nil {
		t.Errorf("length mismatch should error")
	}
	// A row without a stored diagonal is rejected.
	b := NewCSRBuilder(2)
	b.Add(0, 0, 1)
	b.Add(1, 0, 1)
	if _, err := b.Build().AddDiagonal(Vector{1, 1}); err == nil {
		t.Errorf("missing diagonal should error")
	}
}

func TestCSRMulVec(t *testing.T) {
	m := laplacian1D(6)
	c, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := Vector{1, 2, 3, 4, 5, 6}
	dense, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := c.MulVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dense {
		if math.Abs(dense[i]-sparse[i]) > 1e-12 {
			t.Fatalf("MulVec differs at %d", i)
		}
	}
	if _, err := c.MulVec(Vector{1}, nil); err == nil {
		t.Errorf("bad x size should error")
	}
	if _, err := c.MulVec(x, Vector{1}); err == nil {
		t.Errorf("bad y size should error")
	}
}

func TestIC0ExactOnTridiagonal(t *testing.T) {
	// A tridiagonal SPD matrix has a fill-free exact Cholesky factor, so
	// IC(0) reproduces it and preconditioned CG converges in one step.
	a, err := NewCSRFromDense(laplacian1D(30), 0)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := NewVector(30)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x, stats, err := SolveCG(a, b, CGOptions{Precond: ic})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations > 2 {
		t.Errorf("IC(0) on a tridiagonal should converge in ≤2 iterations, took %d", stats.Iterations)
	}
	ax, err := a.MulVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ax.AddScaled(-1, b).Norm2() > 1e-9*(1+b.Norm2()) {
		t.Errorf("IC(0)-CG residual too large")
	}
}

func TestIC0BreakdownFallsBackToJacobi(t *testing.T) {
	// An indefinite matrix breaks the incomplete factorization.
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, -1)
	bad.Set(1, 1, 1)
	c, err := NewCSRFromDense(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIC0(c); !errors.Is(err, ErrNotSPD) {
		t.Errorf("IC(0) of an indefinite matrix: err = %v, want ErrNotSPD", err)
	}
	// A diagonally weak but SPD-diagonal matrix where IC(0) itself breaks
	// down: pivot 2 goes non-positive. The default solver must silently
	// fall back to Jacobi and still solve.
	m := NewMatrix(3, 3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 1)
	m.Set(2, 2, 1)
	m.Set(0, 2, 0.8)
	m.Set(2, 0, 0.8)
	m.Set(1, 2, 0.7)
	m.Set(2, 1, 0.7)
	cm, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIC0(cm); err == nil {
		t.Fatalf("expected IC(0) breakdown for this matrix")
	}
	s, err := NewCGSolver(cm, CGOptions{})
	if err != nil {
		t.Fatalf("fallback construction failed: %v", err)
	}
	if _, ok := s.Preconditioner().(*Jacobi); !ok {
		t.Errorf("solver should have fallen back to Jacobi, got %T", s.Preconditioner())
	}
}

func TestSolveCGMatchesCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 20, 120} {
		dense := laplacian1D(n)
		csr, err := NewCSRFromDense(dense, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64() * 5
		}
		ch, err := NewCholesky(dense)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := SolveCG(csr, b, CGOptions{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if stats.Iterations <= 0 || stats.Iterations > 4*n {
			t.Errorf("n=%d: iterations = %d", n, stats.Iterations)
		}
		if stats.Residual > 1e-10 {
			t.Errorf("n=%d: residual = %g", n, stats.Residual)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: CG differs from Cholesky at %d: %v vs %v", n, i, got[i], want[i])
			}
		}
	}
}

// The satellite property: the sparse IC(0)-preconditioned path and the
// dense Cholesky agree to 1e-9 on random SPD matrices.
func TestSparsePreconditionedMatchesDenseCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		a := randomSPD(n, rng)
		csr, err := NewCSRFromDense(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SolveCG(csr, b, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatalf("trial %d (n=%d): %v", trial, n, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d (n=%d): solvers disagree at %d: %v vs %v",
					trial, n, i, got[i], want[i])
			}
		}
	}
}

func TestSolveCGEdgeCases(t *testing.T) {
	csr, err := NewCSRFromDense(laplacian1D(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero RHS solves instantly.
	x, stats, err := SolveCG(csr, NewVector(4), CGOptions{})
	if err != nil || stats.Iterations != 0 || x.NormInf() != 0 {
		t.Errorf("zero rhs: %v %+v %v", x, stats, err)
	}
	if _, _, err := SolveCG(csr, NewVector(3), CGOptions{}); err == nil {
		t.Errorf("rhs mismatch should error")
	}
	// Option validation.
	if _, _, err := SolveCG(csr, NewVector(4), CGOptions{MaxIter: -1}); !errors.Is(err, ErrOptions) {
		t.Errorf("negative MaxIter: err = %v, want ErrOptions", err)
	}
	if _, _, err := SolveCG(csr, NewVector(4), CGOptions{Tol: -1e-9}); !errors.Is(err, ErrOptions) {
		t.Errorf("negative Tol: err = %v, want ErrOptions", err)
	}
	// Iteration starvation reports ErrNoConvergence (Jacobi forces a
	// multi-iteration solve; IC(0) would finish tridiagonals in one).
	jac, err := NewJacobi(csr)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err = SolveCG(csr, Vector{1, 2, 3, 4}, CGOptions{MaxIter: 1, Tol: 1e-15, Precond: jac})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("starved CG: err = %v, want ErrNoConvergence", err)
	}
	if stats.Iterations != 1 || stats.Residual <= 0 {
		t.Errorf("starved CG stats = %+v", stats)
	}
	// Non-positive diagonal rejected.
	bad := NewMatrix(2, 2)
	bad.Set(0, 0, -1)
	bad.Set(1, 1, 1)
	badCSR, err := NewCSRFromDense(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveCG(badCSR, Vector{1, 1}, CGOptions{}); err == nil {
		t.Errorf("indefinite matrix should error")
	}
}

func TestCGSolverWarmStart(t *testing.T) {
	a, err := NewCSRFromDense(laplacian1D(60), 0)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCGSolver(a, CGOptions{Precond: jac})
	if err != nil {
		t.Fatal(err)
	}
	b := NewVector(60)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	cold := NewVector(60)
	coldStats, err := s.Solve(b, cold)
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the exact solution: no iterations needed.
	warm := cold.Clone()
	warmStats, err := s.Solve(b, warm)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Iterations >= coldStats.Iterations {
		t.Errorf("warm start took %d iterations, cold took %d", warmStats.Iterations, coldStats.Iterations)
	}
	for i := range cold {
		if math.Abs(cold[i]-warm[i]) > 1e-8 {
			t.Fatalf("warm-start solution drifted at %d", i)
		}
	}
	// Mismatched x length rejected.
	if _, err := s.Solve(b, NewVector(3)); err == nil {
		t.Errorf("bad x size should error")
	}
}

// Property: CG solves random SPD (diagonally dominant) systems to the
// requested tolerance.
func TestSolveCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				if rng.Float64() < 0.2 {
					v := -rng.Float64()
					m.Set(i, j, v)
					rowSum += -v
				}
			}
			m.Set(i, i, rowSum+0.5+rng.Float64())
		}
		// Symmetrize.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := (m.At(i, j) + m.At(j, i)) / 2
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
		csr, err := NewCSRFromDense(m, 0)
		if err != nil {
			return false
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, _, err := SolveCG(csr, b, CGOptions{Tol: 1e-9})
		if err != nil {
			return false
		}
		ax, err := csr.MulVec(x, nil)
		if err != nil {
			return false
		}
		return ax.AddScaled(-1, b).Norm2() <= 1e-7*(1+b.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
