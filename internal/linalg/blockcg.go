package linalg

import (
	"fmt"
	"math"
)

// This file implements the blocked multi-RHS conjugate-gradient solver:
// k right-hand sides advance through the CG iteration together, sharing
// every sparse matrix-vector product and preconditioner sweep. The win is
// not mathematical — each column runs its textbook CG recurrence with its
// own scalars — but architectural: one traversal of the CSR index
// structure (and of the IC(0) factor) serves k columns whose panel
// entries are contiguous in memory, so the index/branch overhead that
// dominates a sparse sweep is amortized k-fold and the inner loops
// vectorize. Because every floating-point operation of a column is
// performed in exactly the same order as in CGSolver.Solve, the blocked
// solve is bit-identical to k independent solves; converged columns are
// deflated (compacted out of the panel) so a mixed-convergence panel pays
// only for the columns still iterating.
//
// Panels are stored row-major with a fixed stride: element (i, c) of a
// panel lives at [i*stride+c], keeping one node's k values adjacent —
// the layout the shared sweeps stream over.

// ColumnError reports the failure of one right-hand side of a block
// solve. Col indexes the b/x slices passed to SolveBlock. Unwrap exposes
// the underlying cause (ErrNoConvergence, ErrNotSPD, ...).
type ColumnError struct {
	Col int
	Err error
}

// Error implements the error interface.
func (e *ColumnError) Error() string {
	return fmt.Sprintf("linalg: block CG column %d: %v", e.Col, e.Err)
}

// Unwrap returns the underlying per-column error.
func (e *ColumnError) Unwrap() error { return e.Err }

// panelApplier is implemented by preconditioners that can apply
// themselves to a whole panel in one sweep. IC0 and Jacobi implement it;
// other Preconditioner implementations fall back to column-at-a-time
// Apply calls through scratch vectors.
type panelApplier interface {
	applyPanel(z, r []float64, stride, ka int)
}

// applyPanel applies the Jacobi preconditioner to the ka leading panel
// columns: z(i,c) = invDiag[i]·r(i,c).
func (j *Jacobi) applyPanel(z, r []float64, stride, ka int) {
	for i, d := range j.invDiag {
		zi := z[i*stride : i*stride+ka]
		ri := r[i*stride : i*stride+ka : i*stride+ka]
		for c := range zi {
			zi[c] = d * ri[c]
		}
	}
}

// applyPanel runs the IC(0) forward and backward triangular sweeps over
// the ka leading panel columns. The per-column arithmetic (order of
// subtractions and the final divisions) matches Apply exactly, so a
// panel application is bit-identical to ka scalar ones.
func (m *IC0) applyPanel(z, r []float64, stride, ka int) {
	l, lt := m.l, m.lt
	// Forward: L·y = r (diagonal last in each row).
	for i := 0; i < l.N; i++ {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		zi := z[i*stride : i*stride+ka]
		copy(zi, r[i*stride:i*stride+ka])
		for k := lo; k < hi-1; k++ {
			v := l.Val[k]
			zj := z[l.Col[k]*stride : l.Col[k]*stride+ka : l.Col[k]*stride+ka]
			for c := range zi {
				zi[c] -= v * zj[c]
			}
		}
		d := l.Val[hi-1]
		for c := range zi {
			zi[c] /= d
		}
	}
	// Backward: Lᵀ·z = y in place (diagonal first in each row).
	for i := lt.N - 1; i >= 0; i-- {
		lo, hi := lt.RowPtr[i], lt.RowPtr[i+1]
		zi := z[i*stride : i*stride+ka]
		for k := lo + 1; k < hi; k++ {
			v := lt.Val[k]
			zj := z[lt.Col[k]*stride : lt.Col[k]*stride+ka : lt.Col[k]*stride+ka]
			for c := range zi {
				zi[c] -= v * zj[c]
			}
		}
		d := lt.Val[lo]
		for c := range zi {
			zi[c] /= d
		}
	}
}

// CGBlockSolver solves up to k right-hand sides per pass against one
// matrix, sharing the matrix and preconditioner sweeps across the panel
// and reusing its scratch panels across SolveBlock calls. Like CGSolver
// it is not safe for concurrent use; pool one per goroutine (matrix and
// preconditioner are immutable and shared).
type CGBlockSolver struct {
	a       *CSR
	prec    Preconditioner
	tol     float64
	maxIter int
	k       int // panel capacity == stride

	x, r, z, p, ap []float64 // n×k panels, element (i,c) at [i*k+c]

	// Per-slot state; slots [0, ka) are the still-iterating columns.
	col          []int // slot → original column index
	bnorm        []float64
	rz           []float64
	alpha, beta  []float64
	pap, rr, rzn []float64 // fused-dot scratch (see panelDots)
	zc, rc       Vector    // scratch for non-panel preconditioners
}

// NewCGBlockSolver validates the options, builds the preconditioner
// (IC(0) with Jacobi fallback unless overridden) and allocates the panel
// scratch for up to k simultaneous right-hand sides.
func NewCGBlockSolver(a *CSR, k int, opt CGOptions) (*CGBlockSolver, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: block width %d", ErrOptions, k)
	}
	opt, err := opt.withDefaults(a.N)
	if err != nil {
		return nil, err
	}
	prec := opt.Precond
	if prec == nil {
		ic, err := NewIC0(a)
		if err == nil {
			prec = ic
		} else {
			j, jerr := NewJacobi(a)
			if jerr != nil {
				return nil, jerr
			}
			prec = j
		}
	}
	n := a.N
	return &CGBlockSolver{
		a:       a,
		prec:    prec,
		tol:     opt.Tol,
		maxIter: opt.MaxIter,
		k:       k,
		x:       make([]float64, n*k),
		r:       make([]float64, n*k),
		z:       make([]float64, n*k),
		p:       make([]float64, n*k),
		ap:      make([]float64, n*k),
		col:     make([]int, k),
		bnorm:   make([]float64, k),
		rz:      make([]float64, k),
		alpha:   make([]float64, k),
		beta:    make([]float64, k),
		pap:     make([]float64, k),
		rr:      make([]float64, k),
		rzn:     make([]float64, k),
	}, nil
}

// Width returns the panel capacity k.
func (s *CGBlockSolver) Width() int { return s.k }

// Preconditioner returns the preconditioner the solver settled on.
func (s *CGBlockSolver) Preconditioner() Preconditioner { return s.prec }

// mulPanel computes y = A·x over the ka leading panel columns, one CSR
// traversal for the whole panel.
func (s *CGBlockSolver) mulPanel(x, y []float64, ka int) {
	a, k := s.a, s.k
	for i := 0; i < a.N; i++ {
		yi := y[i*k : i*k+ka]
		for c := range yi {
			yi[c] = 0
		}
		for kk := a.RowPtr[i]; kk < a.RowPtr[i+1]; kk++ {
			v := a.Val[kk]
			xj := x[a.Col[kk]*k : a.Col[kk]*k+ka : a.Col[kk]*k+ka]
			for c := range yi {
				yi[c] += v * xj[c]
			}
		}
	}
}

// applyPrec computes z = M⁻¹·r over the ka leading panel columns, using
// the preconditioner's panel sweep when available.
func (s *CGBlockSolver) applyPrec(ka int) {
	if pa, ok := s.prec.(panelApplier); ok {
		pa.applyPanel(s.z, s.r, s.k, ka)
		return
	}
	n := s.a.N
	if s.zc == nil {
		s.zc, s.rc = NewVector(n), NewVector(n)
	}
	for c := 0; c < ka; c++ {
		for i := 0; i < n; i++ {
			s.rc[i] = s.r[i*s.k+c]
		}
		s.prec.Apply(s.zc, s.rc)
		for i := 0; i < n; i++ {
			s.z[i*s.k+c] = s.zc[i]
		}
	}
}

// panelDots computes out[c] = a(·,c)·b(·,c) for every active slot in ONE
// contiguous pass over the panels, instead of ka stride-k passes that
// touch one float per cache line. Each column's sum still accumulates in
// ascending node order, so the values are bit-identical to Vector.Dot on
// the unpacked columns.
func (s *CGBlockSolver) panelDots(a, b, out []float64, ka int) {
	for c := 0; c < ka; c++ {
		out[c] = 0
	}
	k := s.k
	for i := 0; i < s.a.N; i++ {
		base := i * k
		av := a[base : base+ka]
		bv := b[base : base+ka : base+ka]
		for c := range av {
			out[c] += av[c] * bv[c]
		}
	}
}

// deflate retires panel slot c by moving the last active slot (ka-1)
// into it. The caller copies slot c's solution out first.
func (s *CGBlockSolver) deflate(c, ka int) {
	last := ka - 1
	if c != last {
		k := s.k
		for i := 0; i < s.a.N; i++ {
			base := i * k
			s.x[base+c] = s.x[base+last]
			s.r[base+c] = s.r[base+last]
			s.z[base+c] = s.z[base+last]
			s.p[base+c] = s.p[base+last]
			s.ap[base+c] = s.ap[base+last]
		}
		s.col[c] = s.col[last]
		s.bnorm[c] = s.bnorm[last]
		s.rz[c] = s.rz[last]
		// alpha, pap and rr are consumed by loops that themselves deflate
		// (SPD breakdown, convergence), so they migrate with the slot.
		s.alpha[c] = s.alpha[last]
		s.pap[c] = s.pap[last]
		s.rr[c] = s.rr[last]
	}
}

// copyOut writes panel slot c's iterate back into the caller's column.
func (s *CGBlockSolver) copyOut(x []Vector, c int) {
	out := x[s.col[c]]
	for i := 0; i < s.a.N; i++ {
		out[i] = s.x[i*s.k+c]
	}
}

// recordFailure folds a per-column failure into the running first-error:
// the lowest original column index wins, keeping the reported error
// deterministic regardless of deflation order.
func recordFailure(first *ColumnError, col int, err error) *ColumnError {
	if first == nil || col < first.Col {
		return &ColumnError{Col: col, Err: err}
	}
	return first
}

// SolveBlock runs preconditioned CG on A·x[c] = b[c] for every column,
// advancing all columns one iteration per shared matrix/preconditioner
// application. x columns are both initial guesses and results. Columns
// converge (and stop costing work) independently; the returned stats are
// per column and valid even on failure. When one or more columns fail
// (non-convergence, SPD breakdown), the remaining columns still run to
// completion and the error is a *ColumnError naming the lowest-indexed
// failing column.
func (s *CGBlockSolver) SolveBlock(b, x []Vector) ([]CGStats, error) {
	nb := len(b)
	if nb == 0 {
		return nil, nil
	}
	if nb > s.k {
		return nil, fmt.Errorf("%w: %d right-hand sides on a width-%d block solver", ErrDimension, nb, s.k)
	}
	if len(x) != nb {
		return nil, fmt.Errorf("%w: %d right-hand sides, %d solution columns", ErrDimension, nb, len(x))
	}
	n, k := s.a.N, s.k
	for c := 0; c < nb; c++ {
		if len(b[c]) != n || len(x[c]) != n {
			return nil, fmt.Errorf("%w: block CG n=%d rhs[%d]=%d x[%d]=%d", ErrDimension, n, c, len(b[c]), c, len(x[c]))
		}
	}
	stats := make([]CGStats, nb)
	var firstErr *ColumnError

	// Pack the warm starts and compute the initial residuals R = B − A·X
	// with one panel product; zero right-hand sides resolve immediately
	// (x = 0), matching CGSolver. An all-zero panel of warm starts — the
	// common cold-start case — skips the product: A·0 is exactly +0 and
	// b−0 returns b's bits, so the shortcut changes nothing downstream.
	ka := 0
	coldStart := true
	for c := 0; c < nb; c++ {
		bn := b[c].Norm2()
		if bn == 0 {
			x[c].Fill(0)
			continue
		}
		s.col[ka] = c
		s.bnorm[ka] = bn
		for i := 0; i < n; i++ {
			v := x[c][i]
			s.x[i*k+ka] = v
			if v != 0 {
				coldStart = false
			}
		}
		ka++
	}
	if ka == 0 {
		return stats, nil
	}
	if coldStart {
		for c := 0; c < ka; c++ {
			bc := b[s.col[c]]
			for i := 0; i < n; i++ {
				s.r[i*k+c] = bc[i]
			}
		}
	} else {
		s.mulPanel(s.x, s.ap, ka)
		for c := 0; c < ka; c++ {
			bc := b[s.col[c]]
			for i := 0; i < n; i++ {
				s.r[i*k+c] = bc[i] - s.ap[i*k+c]
			}
		}
	}
	// Columns already at tolerance exit with zero iterations.
	s.panelDots(s.r, s.r, s.rr, ka)
	for c := ka - 1; c >= 0; c-- {
		res := math.Sqrt(s.rr[c])
		if res <= s.tol*s.bnorm[c] {
			stats[s.col[c]] = CGStats{Residual: res / s.bnorm[c]}
			s.copyOut(x, c)
			s.deflate(c, ka)
			ka--
		}
	}
	if ka == 0 {
		return stats, nil
	}
	s.applyPrec(ka)
	copy(s.p[:n*k], s.z[:n*k])
	s.panelDots(s.r, s.z, s.rz, ka)

	for iter := 1; iter <= s.maxIter && ka > 0; iter++ {
		s.mulPanel(s.p, s.ap, ka)
		// Per-column step sizes; SPD breakdowns deflate with an error.
		s.panelDots(s.p, s.ap, s.pap, ka)
		for c := ka - 1; c >= 0; c-- {
			pap := s.pap[c]
			if pap <= 0 {
				col := s.col[c]
				stats[col] = CGStats{Iterations: iter}
				firstErr = recordFailure(firstErr, col,
					fmt.Errorf("%w: p·Ap = %g at iteration %d", ErrNotSPD, pap, iter))
				s.copyOut(x, c)
				s.deflate(c, ka)
				ka--
				continue
			}
			s.alpha[c] = s.rz[c] / pap
		}
		if ka == 0 {
			break
		}
		// X += α·P, R −= α·AP in one pass over the panel.
		for i := 0; i < n; i++ {
			base := i * k
			for c := 0; c < ka; c++ {
				s.x[base+c] += s.alpha[c] * s.p[base+c]
				s.r[base+c] -= s.alpha[c] * s.ap[base+c]
			}
		}
		// Convergence checks, highest slot first so deflation does not
		// disturb the slots still to be checked.
		s.panelDots(s.r, s.r, s.rr, ka)
		for c := ka - 1; c >= 0; c-- {
			res := math.Sqrt(s.rr[c])
			if res <= s.tol*s.bnorm[c] {
				stats[s.col[c]] = CGStats{Iterations: iter, Residual: res / s.bnorm[c]}
				s.copyOut(x, c)
				s.deflate(c, ka)
				ka--
			}
		}
		if ka == 0 {
			break
		}
		s.applyPrec(ka)
		s.panelDots(s.r, s.z, s.rzn, ka)
		for c := 0; c < ka; c++ {
			s.beta[c] = s.rzn[c] / s.rz[c]
			s.rz[c] = s.rzn[c]
		}
		for i := 0; i < n; i++ {
			base := i * k
			for c := 0; c < ka; c++ {
				s.p[base+c] = s.z[base+c] + s.beta[c]*s.p[base+c]
			}
		}
	}

	// Columns still active exhausted the iteration budget.
	s.panelDots(s.r, s.r, s.rr, ka)
	for c := ka - 1; c >= 0; c-- {
		col := s.col[c]
		res := math.Sqrt(s.rr[c])
		stats[col] = CGStats{Iterations: s.maxIter, Residual: res / s.bnorm[c]}
		firstErr = recordFailure(firstErr, col,
			fmt.Errorf("%w after %d iterations (residual %.3g)", ErrNoConvergence, s.maxIter, res/s.bnorm[c]))
		s.copyOut(x, c)
		s.deflate(c, ka)
		ka--
	}
	if firstErr != nil {
		return stats, firstErr
	}
	return stats, nil
}

// SolveCGBlock solves the k systems A·x[c] = b[c] with one blocked
// preconditioned-CG pass (IC(0), falling back to Jacobi) and zero initial
// guesses. Callers with many panels should hold a CGBlockSolver instead
// to reuse the preconditioner and panel scratch.
func SolveCGBlock(a *CSR, b []Vector, opt CGOptions) ([]Vector, []CGStats, error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	s, err := NewCGBlockSolver(a, len(b), opt)
	if err != nil {
		return nil, nil, err
	}
	x := make([]Vector, len(b))
	for c := range x {
		x[c] = NewVector(a.N)
	}
	stats, err := s.SolveBlock(b, x)
	if err != nil {
		return x, stats, err
	}
	return x, stats, nil
}
