package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when LU factorization meets a (numerically) zero
// pivot even after partial pivoting.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds a row-pivoted LU factorization P·A = L·U. It backs the general
// least-squares fitting code; the thermal path uses Cholesky.
type LU struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// NewLU factors the square matrix a with partial pivoting.
func NewLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: LU of %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	n := a.Rows
	lu := make([]float64, n*n)
	copy(lu, a.Data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot row.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 {
			return nil, fmt.Errorf("%w: pivot column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		pivVal := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivVal
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu[i*n+j] -= m * lu[k*n+j]
			}
		}
	}
	return &LU{n: n, lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x with A·x = b.
func (f *LU) Solve(b Vector) (Vector, error) {
	if len(b) != f.n {
		return nil, fmt.Errorf("%w: LU solve n=%d rhs=%d", ErrDimension, f.n, len(b))
	}
	n := f.n
	x := NewVector(n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// L·y = P·b (unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		for k := 0; k < i; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s
	}
	// U·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= f.lu[i*n+k] * x[k]
		}
		x[i] = s / f.lu[i*n+i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.n; i++ {
		d *= f.lu[i*f.n+i]
	}
	return d
}

// SolveLeastSquares solves the overdetermined system A·x ≈ b (A is m×n,
// m ≥ n) in the least-squares sense via the normal equations AᵀA·x = Aᵀb,
// factored with Cholesky. The model-fitting problems in this code base are
// tiny and well conditioned, so normal equations are adequate.
func SolveLeastSquares(a *Matrix, b Vector) (Vector, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("%w: least squares %dx%d rhs=%d", ErrDimension, a.Rows, a.Cols, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: underdetermined %dx%d", ErrDimension, a.Rows, a.Cols)
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	atb, err := at.MulVec(b)
	if err != nil {
		return nil, err
	}
	ch, err := NewCholesky(ata)
	if err != nil {
		return nil, fmt.Errorf("linalg: normal equations not SPD (rank-deficient design?): %w", err)
	}
	return ch.Solve(atb)
}
