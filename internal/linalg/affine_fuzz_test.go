package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzAffinePowers differentially tests the Mᵏ partial-sum recurrence:
// for fuzzed (seed, size, step count), the repeated-squaring ladder must
// agree with k explicit affine steps on a random implicit-Euler step map.
// This is the recurrence the thermal macro-stepper trusts for whole
// quiet intervals, so any drift here is a simulation correctness bug.
func FuzzAffinePowers(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(10))
	f.Add(int64(42), uint8(6), uint16(257))
	f.Add(int64(7), uint8(1), uint16(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8, kRaw uint16) {
		n := int(nRaw)%7 + 1
		k := int(kRaw)%600 + 1
		rng := rand.New(rand.NewSource(seed))
		m, err := randomStepMap(rng, n)
		if err != nil {
			t.Skip() // degenerate random draw
		}
		ap, err := NewAffinePowers(m, 6)
		if err != nil {
			t.Fatalf("NewAffinePowers: %v", err)
		}
		t0 := NewVector(n)
		b := NewVector(n)
		for i := 0; i < n; i++ {
			t0[i] = 20 + 60*rng.Float64()
			b[i] = rng.Float64() - 0.2
		}
		got := t0.Clone()
		if err := ap.Advance(k, got, b, NewVector(n)); err != nil {
			t.Fatalf("Advance(%d): %v", k, err)
		}
		want := naiveAdvance(m, t0, b, k)
		for i := range want {
			scale := 1 + math.Abs(want[i])
			if d := math.Abs(got[i] - want[i]); d > 1e-9*scale {
				t.Fatalf("n=%d k=%d node %d: ladder %v vs naive %v (|Δ|=%g)",
					n, k, i, got[i], want[i], d)
			}
		}
	})
}
