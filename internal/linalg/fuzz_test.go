package linalg

import (
	"fmt"
	"math"
	"testing"
)

// FuzzCSRMulVec differentially tests the sparse kernel against the dense
// one: a fuzzed byte string is decoded into a small dense matrix and a
// vector, converted to CSR both via NewCSRFromDense and via CSRBuilder,
// and all three products must agree. This pins the CSR layout invariants
// (RowPtr monotonicity, ascending columns, duplicate merging) that the
// thermal assembly path depends on.
func FuzzCSRMulVec(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{1, 0})
	f.Add([]byte{5, 0xFF, 0x00, 0x80, 0x7F, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0])%6 + 1
		data = data[1:]
		// Decode bytes into matrix entries; 0 encodes a structural zero so
		// the fuzzer explores sparsity patterns.
		at := func(k int) float64 {
			if k >= len(data) || data[k] == 0 {
				return 0
			}
			return (float64(data[k]) - 128) / 8
		}
		m := NewMatrix(n, n)
		b := NewCSRBuilder(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := at(i*n + j)
				if v != 0 {
					m.Set(i, j, v)
					// Split the value across two builder entries to
					// exercise duplicate merging.
					b.Add(i, j, v/2)
					b.Add(i, j, v/2)
				}
			}
		}
		x := NewVector(n)
		for i := range x {
			x[i] = at(n*n + i)
		}
		want, err := m.MulVec(x)
		if err != nil {
			t.Fatalf("dense MulVec: %v", err)
		}
		for _, c := range []*CSR{
			mustCSR(t, m),
			b.Build(),
		} {
			if err := checkCSRInvariants(c); err != nil {
				t.Fatalf("CSR invariants: %v", err)
			}
			got, err := c.MulVec(x, nil)
			if err != nil {
				t.Fatalf("sparse MulVec: %v", err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("MulVec differs at %d: dense %v sparse %v", i, want[i], got[i])
				}
			}
			// Transpose twice is the identity on the product.
			tt := c.Transpose().Transpose()
			got2, err := tt.MulVec(x, nil)
			if err != nil {
				t.Fatalf("transpose MulVec: %v", err)
			}
			for i := range want {
				if math.Abs(got2[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("double transpose changed the product at %d", i)
				}
			}
		}
	})
}

// FuzzCGBlock differentially tests the blocked multi-RHS CG against the
// per-column solver: fuzzed bytes become a small diagonally dominant SPD
// matrix and a panel of 1–4 right-hand sides; the blocked solve must
// agree with k independent SolveCG calls, including iteration counts
// (the block solver shares traversals, not arithmetic).
func FuzzCGBlock(f *testing.F) {
	f.Add([]byte{4, 2, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120})
	f.Add([]byte{1, 1, 0xFF})
	f.Add([]byte{6, 4, 0x80, 0x7F, 0x01, 0xFE, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 22, 33, 44, 55})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		n := int(data[0])%6 + 1
		k := int(data[1])%4 + 1
		data = data[2:]
		at := func(idx int) float64 {
			if idx >= len(data) || data[idx] == 0 {
				return 0
			}
			return (float64(data[idx]) - 128) / 8
		}
		// Symmetric off-diagonals from the byte stream, diagonal padded to
		// strict dominance so the system is SPD by construction.
		b := NewCSRBuilder(n)
		rowAbs := make([]float64, n)
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if v := at(idx); v != 0 {
					b.Add(i, j, v)
					b.Add(j, i, v)
					rowAbs[i] += math.Abs(v)
					rowAbs[j] += math.Abs(v)
				}
				idx++
			}
		}
		for i := 0; i < n; i++ {
			b.Add(i, i, rowAbs[i]+1+math.Abs(at(idx)))
			idx++
		}
		a := b.Build()
		if err := checkCSRInvariants(a); err != nil {
			t.Fatalf("CSR invariants: %v", err)
		}
		rhs := make([]Vector, k)
		for c := range rhs {
			rhs[c] = NewVector(n)
			for i := range rhs[c] {
				rhs[c][i] = at(idx)
				idx++
			}
		}
		xb, sb, err := SolveCGBlock(a, rhs, CGOptions{})
		if err != nil {
			t.Fatalf("block solve: %v", err)
		}
		for c := range rhs {
			xc, sc, err := SolveCG(a, rhs[c], CGOptions{})
			if err != nil {
				t.Fatalf("per-column solve %d: %v", c, err)
			}
			if sb[c].Iterations != sc.Iterations {
				t.Fatalf("col %d: block %d iterations, per-column %d", c, sb[c].Iterations, sc.Iterations)
			}
			for i := range xc {
				if math.Abs(xb[c][i]-xc[i]) > 1e-9*(1+math.Abs(xc[i])) {
					t.Fatalf("col %d row %d: block %v per-column %v", c, i, xb[c][i], xc[i])
				}
			}
		}
	})
}

func mustCSR(t *testing.T, m *Matrix) *CSR {
	t.Helper()
	c, err := NewCSRFromDense(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func checkCSRInvariants(c *CSR) error {
	if len(c.RowPtr) != c.N+1 || c.RowPtr[0] != 0 || c.RowPtr[c.N] != len(c.Col) || len(c.Col) != len(c.Val) {
		return fmt.Errorf("layout: rowptr %d nnz %d/%d", len(c.RowPtr), len(c.Col), len(c.Val))
	}
	for i := 0; i < c.N; i++ {
		if c.RowPtr[i] > c.RowPtr[i+1] {
			return fmt.Errorf("rowptr not monotone at %d", i)
		}
		for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
			if c.Col[k] < 0 || c.Col[k] >= c.N {
				return fmt.Errorf("column out of range at %d", k)
			}
			if k > c.RowPtr[i] && c.Col[k-1] >= c.Col[k] {
				return fmt.Errorf("columns not strictly ascending in row %d", i)
			}
		}
	}
	return nil
}
