// Package units provides thin named types and helpers for the physical
// quantities that flow through the dark-silicon models: power, temperature,
// frequency, voltage, area, energy and time.
//
// All quantities are plain float64 values in SI-flavoured base units so they
// compose freely with math routines; the named types exist to document
// intent at API boundaries and to carry formatting helpers. Conversions
// between the convenience units used in the paper (GHz, mm², kJ) and the
// base units live here so the rest of the code base never multiplies by
// stray powers of ten.
package units

import "fmt"

// Watts is electrical or thermal power in watts.
type Watts float64

// Celsius is a temperature in degrees Celsius. The thermal solver works in
// Celsius throughout because the compact RC model is linear and only
// temperature differences matter; the convection boundary anchors the
// absolute value.
type Celsius float64

// Hertz is a frequency in Hz. Core clocks are usually expressed in GHz via
// the GHz helper.
type Hertz float64

// Volts is the supply voltage Vdd (or the threshold voltage Vth) in volts.
type Volts float64

// SquareMeters is an area in m². Core areas are usually expressed in mm²
// via the MM2 helper.
type SquareMeters float64

// Joules is an energy in joules.
type Joules float64

// Seconds is a duration in seconds. The transient simulator uses plain
// float64 seconds rather than time.Duration because control periods of
// 1 ms over 100 s runs are pure numerics, not wall-clock scheduling.
type Seconds float64

// Giga is the SI giga multiplier.
const Giga = 1e9

// Milli is the SI milli multiplier.
const Milli = 1e-3

// Micro is the SI micro multiplier.
const Micro = 1e-6

// GHz converts a value in gigahertz to Hertz.
func GHz(v float64) Hertz { return Hertz(v * Giga) }

// InGHz reports the frequency in gigahertz.
func (f Hertz) InGHz() float64 { return float64(f) / Giga }

// MM2 converts a value in square millimetres to SquareMeters.
func MM2(v float64) SquareMeters { return SquareMeters(v * 1e-6) }

// InMM2 reports the area in square millimetres.
func (a SquareMeters) InMM2() float64 { return float64(a) * 1e6 }

// KJ converts a value in kilojoules to Joules.
func KJ(v float64) Joules { return Joules(v * 1e3) }

// InKJ reports the energy in kilojoules.
func (e Joules) InKJ() float64 { return float64(e) / 1e3 }

// MS converts a value in milliseconds to Seconds.
func MS(v float64) Seconds { return Seconds(v * Milli) }

// String implements fmt.Stringer with engineering-friendly precision.
func (p Watts) String() string { return fmt.Sprintf("%.3f W", float64(p)) }

// String implements fmt.Stringer.
func (t Celsius) String() string { return fmt.Sprintf("%.2f °C", float64(t)) }

// String implements fmt.Stringer.
func (f Hertz) String() string { return fmt.Sprintf("%.2f GHz", f.InGHz()) }

// String implements fmt.Stringer.
func (v Volts) String() string { return fmt.Sprintf("%.3f V", float64(v)) }

// String implements fmt.Stringer.
func (a SquareMeters) String() string { return fmt.Sprintf("%.2f mm²", a.InMM2()) }

// String implements fmt.Stringer.
func (e Joules) String() string { return fmt.Sprintf("%.3f kJ", e.InKJ()) }

// String implements fmt.Stringer.
func (s Seconds) String() string { return fmt.Sprintf("%.3f s", float64(s)) }
