package units

import (
	"math"
	"testing"
)

func TestConversions(t *testing.T) {
	if GHz(2.5) != Hertz(2.5e9) {
		t.Errorf("GHz = %v", GHz(2.5))
	}
	if got := GHz(3.6).InGHz(); math.Abs(got-3.6) > 1e-12 {
		t.Errorf("InGHz = %v", got)
	}
	if math.Abs(float64(MM2(5.1))-5.1e-6) > 1e-18 {
		t.Errorf("MM2 = %v", MM2(5.1))
	}
	if got := MM2(9.6).InMM2(); math.Abs(got-9.6) > 1e-9 {
		t.Errorf("InMM2 = %v", got)
	}
	if KJ(2) != Joules(2000) {
		t.Errorf("KJ = %v", KJ(2))
	}
	if got := KJ(1.5).InKJ(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("InKJ = %v", got)
	}
	if MS(1) != Seconds(1e-3) {
		t.Errorf("MS = %v", MS(1))
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(3.75).String(), "3.750 W"},
		{Celsius(80).String(), "80.00 °C"},
		{GHz(3.6).String(), "3.60 GHz"},
		{Volts(0.89).String(), "0.890 V"},
		{MM2(5.1).String(), "5.10 mm²"},
		{KJ(1.234).String(), "1.234 kJ"},
		{Seconds(0.001).String(), "0.001 s"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String = %q, want %q", c.got, c.want)
		}
	}
}
