package variability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/floorplan"
	"darksim/internal/mapping"
)

func grid(t testing.TB) *floorplan.Floorplan {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestGenerateDeterministic(t *testing.T) {
	fp := grid(t)
	a, err := Generate(fp, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(fp, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.LeakMult {
		if a.LeakMult[i] != b.LeakMult[i] || a.FmaxDeltaGHz[i] != b.FmaxDeltaGHz[i] {
			t.Fatalf("maps differ at %d", i)
		}
	}
	c, err := Generate(fp, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.LeakMult {
		if a.LeakMult[i] != c.LeakMult[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should differ")
	}
}

func TestGenerateStatistics(t *testing.T) {
	fp := grid(t)
	m, err := Generate(fp, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	mean := m.MeanLeakMult()
	// Lognormal with sigma 0.25: mean ≈ exp(0.25²/2) ≈ 1.03, sample
	// noise on 100 cores widens the band.
	if mean < 0.85 || mean > 1.25 {
		t.Errorf("mean multiplier = %.3f", mean)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m.LeakMult {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
		if v <= 0 {
			t.Fatalf("non-positive multiplier %v", v)
		}
	}
	if hi/lo < 1.3 {
		t.Errorf("variation spread too small: [%.2f, %.2f]", lo, hi)
	}
	// Fast cores leak more: positive correlation between fmax delta and
	// leakage multiplier.
	var corrNum, va, vb float64
	meanF := 0.0
	for _, f := range m.FmaxDeltaGHz {
		meanF += f
	}
	meanF /= float64(len(m.FmaxDeltaGHz))
	for i := range m.LeakMult {
		da := m.LeakMult[i] - mean
		db := m.FmaxDeltaGHz[i] - meanF
		corrNum += da * db
		va += da * da
		vb += db * db
	}
	if corrNum/math.Sqrt(va*vb) < 0.8 {
		t.Errorf("fmax and leakage should be strongly correlated")
	}
}

func TestGenerateErrors(t *testing.T) {
	fp := grid(t)
	if _, err := Generate(fp, Options{LeakSigma: -1}); err == nil {
		t.Errorf("negative sigma should error")
	}
	if _, err := Generate(fp, Options{SystematicFrac: 1.5}); err == nil {
		t.Errorf("fraction > 1 should error")
	}
	var empty floorplan.Floorplan
	if _, err := Generate(&empty, Options{}); err == nil {
		t.Errorf("empty floorplan should error")
	}
}

func TestApplyLeak(t *testing.T) {
	fp := grid(t)
	m, err := Generate(fp, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, 100)
	power[0] = 3.0
	power[1] = 3.0
	if err := m.ApplyLeak(power, 0.7); err != nil {
		t.Fatal(err)
	}
	want0 := 3.0 + (m.LeakMult[0]-1)*0.7
	if math.Abs(power[0]-want0) > 1e-12 {
		t.Errorf("power[0] = %v, want %v", power[0], want0)
	}
	// Dark cores stay at zero.
	if power[2] != 0 {
		t.Errorf("dark core gained power: %v", power[2])
	}
	if err := m.ApplyLeak(make([]float64, 3), 0.7); err == nil {
		t.Errorf("length mismatch should error")
	}
}

func TestAwareStrategySelectsCoolSilicon(t *testing.T) {
	fp := grid(t)
	m, err := Generate(fp, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	aware := m.AwareStrategy(mapping.PeripheryFirst)
	const n = 61
	awareCores, err := aware(fp, n)
	if err != nil {
		t.Fatal(err)
	}
	oblivious, err := mapping.PeripheryFirst(fp, n)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(cores []int) float64 {
		var s float64
		for _, c := range cores {
			s += m.LeakMult[c]
		}
		return s / float64(len(cores))
	}
	if avg(awareCores) >= avg(oblivious) {
		t.Errorf("aware selection should leak less on average: %.3f vs %.3f",
			avg(awareCores), avg(oblivious))
	}
	// Valid, disjoint selection.
	seen := map[int]bool{}
	for _, c := range awareCores {
		if c < 0 || c >= 100 || seen[c] {
			t.Fatalf("bad selection %v", awareCores)
		}
		seen[c] = true
	}
	if _, err := aware(fp, 101); err == nil {
		t.Errorf("oversubscription should error")
	}
}

// Property: the aware strategy is prefix-consistent (required by the
// binary searches built on strategies).
func TestAwareStrategyPrefixProperty(t *testing.T) {
	fp := grid(t)
	m, err := Generate(fp, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	aware := m.AwareStrategy(mapping.PeripheryFirst)
	f := func(nRaw uint8) bool {
		n := int(nRaw) % 100
		small, err := aware(fp, n)
		if err != nil {
			return false
		}
		large, err := aware(fp, n+1)
		if err != nil {
			return false
		}
		in := map[int]bool{}
		for _, c := range large {
			in[c] = true
		}
		for _, c := range small {
			if !in[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Error(err)
	}
}
