// Package variability models within-die process variation, the dimension
// that makes DaSim (§4 of the paper: "Variability-aware dark silicon
// management in on-chip many-core systems") variability-*aware*: cores on
// the same die differ in leakage current (lognormally, dominated by
// threshold-voltage variation) and in maximum stable frequency. A
// dark-silicon manager that knows the map can prefer low-leakage cores
// when choosing which cores to light, saving power and peak temperature
// at identical performance.
//
// Maps are deterministic in the seed: a smooth systematic component (a
// tilted cosine wave across the die, the classic wafer-level signature)
// plus an uncorrelated random component.
package variability

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"darksim/internal/floorplan"
	"darksim/internal/mapping"
)

// Map holds per-core variation multipliers.
type Map struct {
	// LeakMult scales each core's leakage power (lognormal, mean ≈ 1).
	LeakMult []float64
	// FmaxDeltaGHz shifts each core's maximum stable frequency.
	FmaxDeltaGHz []float64
}

// Options configures map generation.
type Options struct {
	// Seed selects the deterministic variation pattern.
	Seed int64
	// LeakSigma is the lognormal sigma of leakage variation
	// (default 0.25; silicon measurements at these nodes commonly show
	// 20–30 %).
	LeakSigma float64
	// SystematicFrac is the share of the variance carried by the smooth
	// wafer-level component (default 0.5).
	SystematicFrac float64
	// FmaxSigmaGHz is the per-core fmax standard deviation (default 0.1).
	FmaxSigmaGHz float64
}

// ErrVariability is returned for invalid generation parameters.
var ErrVariability = errors.New("variability: invalid")

// Generate builds the variation map for a floorplan.
func Generate(fp *floorplan.Floorplan, opt Options) (*Map, error) {
	if opt.LeakSigma == 0 {
		opt.LeakSigma = 0.25
	}
	if opt.SystematicFrac == 0 {
		opt.SystematicFrac = 0.5
	}
	if opt.FmaxSigmaGHz == 0 {
		opt.FmaxSigmaGHz = 0.1
	}
	if opt.LeakSigma < 0 || opt.SystematicFrac < 0 || opt.SystematicFrac > 1 || opt.FmaxSigmaGHz < 0 {
		return nil, fmt.Errorf("%w: options %+v", ErrVariability, opt)
	}
	n := fp.NumBlocks()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty floorplan", ErrVariability)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	// Systematic component: one spatial cosine across the die with a
	// random orientation and phase; wavelength of roughly the die size.
	theta := 2 * math.Pi * rng.Float64()
	phase := 2 * math.Pi * rng.Float64()
	dirX, dirY := math.Cos(theta), math.Sin(theta)
	diag := math.Hypot(fp.DieW, fp.DieH)
	sysAmp := math.Sqrt(opt.SystematicFrac) * math.Sqrt2 // unit-variance cosine needs √2 amplitude
	rndAmp := math.Sqrt(1 - opt.SystematicFrac)

	m := &Map{
		LeakMult:     make([]float64, n),
		FmaxDeltaGHz: make([]float64, n),
	}
	for i, b := range fp.Blocks {
		u := (b.CenterX()*dirX + b.CenterY()*dirY) / diag
		sys := sysAmp * math.Cos(2*math.Pi*u+phase)
		g := sys + rndAmp*rng.NormFloat64()
		m.LeakMult[i] = math.Exp(opt.LeakSigma * g)
		// Fast cores leak more: fmax correlates positively with the
		// same underlying Vth variation.
		m.FmaxDeltaGHz[i] = opt.FmaxSigmaGHz * g
	}
	return m, nil
}

// MeanLeakMult returns the average leakage multiplier.
func (m *Map) MeanLeakMult() float64 {
	var s float64
	for _, v := range m.LeakMult {
		s += v
	}
	return s / float64(len(m.LeakMult))
}

// ApplyLeak scales the leakage share of a per-core power map in place:
// power[i] = power[i] + (LeakMult[i]−1)·leakW for active cores (power>0).
func (m *Map) ApplyLeak(power []float64, leakW float64) error {
	if len(power) != len(m.LeakMult) {
		return fmt.Errorf("%w: %d cores in power map, %d in variation map",
			ErrVariability, len(power), len(m.LeakMult))
	}
	for i := range power {
		if power[i] > 0 {
			power[i] += (m.LeakMult[i] - 1) * leakW
			if power[i] < 0 {
				power[i] = 0
			}
		}
	}
	return nil
}

// AwareStrategy returns a placement strategy that prefers low-leakage
// cores: candidates are ranked by a blend of their leakage multiplier and
// their position in the base strategy's thermal ordering, so the
// selection stays spread while favouring cool (low-leak) silicon. This is
// the DaSim-style variability-aware core selection.
func (m *Map) AwareStrategy(base mapping.Strategy) mapping.Strategy {
	return func(fp *floorplan.Floorplan, n int) ([]int, error) {
		order, err := base(fp, fp.NumBlocks())
		if err != nil {
			return nil, err
		}
		if n < 0 || n > len(order) {
			return nil, fmt.Errorf("%w: request for %d of %d cores", ErrVariability, n, len(order))
		}
		if len(order) != len(m.LeakMult) {
			return nil, fmt.Errorf("%w: map for %d cores, floorplan has %d",
				ErrVariability, len(m.LeakMult), len(order))
		}
		// Rank of each core in the base (thermal) ordering, normalized.
		rank := make([]float64, len(order))
		for pos, c := range order {
			rank[c] = float64(pos) / float64(len(order)-1)
		}
		type scored struct {
			core  int
			score float64
		}
		all := make([]scored, len(order))
		for i := range order {
			c := order[i]
			// Equal weight to thermal position and leakage multiplier;
			// both normalized to comparable ranges.
			all[i] = scored{core: c, score: rank[c] + m.LeakMult[c]}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].score != all[b].score {
				return all[a].score < all[b].score
			}
			return all[a].core < all[b].core
		})
		out := make([]int, n)
		for i := range out {
			out[i] = all[i].core
		}
		return out, nil
	}
}
