package hotspot

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PowerTrace is a HotSpot-style .ptrace: a header of unit names followed
// by one row of per-unit power samples per time step.
type PowerTrace struct {
	Units []string
	// Steps[t][u] is the power of unit u at step t, in watts.
	Steps [][]float64
}

// ReadPTrace parses a .ptrace stream. The first non-comment line is the
// unit-name header; every subsequent line must carry one float per unit.
func ReadPTrace(r io.Reader) (*PowerTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var tr PowerTrace
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if tr.Units == nil {
			tr.Units = fields
			continue
		}
		if len(fields) != len(tr.Units) {
			return nil, fmt.Errorf("%w: ptrace line %d: %d values for %d units",
				ErrConfig, line, len(fields), len(tr.Units))
		}
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: ptrace line %d: %v", ErrConfig, line, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("%w: ptrace line %d: negative power %g", ErrConfig, line, v)
			}
			row[i] = v
		}
		tr.Steps = append(tr.Steps, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hotspot: ptrace read: %w", err)
	}
	if tr.Units == nil {
		return nil, fmt.Errorf("%w: empty ptrace", ErrConfig)
	}
	if len(tr.Steps) == 0 {
		return nil, fmt.Errorf("%w: ptrace has a header but no samples", ErrConfig)
	}
	return &tr, nil
}

// WritePTrace emits the trace in the .ptrace text format.
func WritePTrace(w io.Writer, tr *PowerTrace) error {
	if len(tr.Units) == 0 || len(tr.Steps) == 0 {
		return fmt.Errorf("%w: empty ptrace", ErrConfig)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(tr.Units, "\t"))
	for i, row := range tr.Steps {
		if len(row) != len(tr.Units) {
			return fmt.Errorf("%w: ptrace row %d has %d values for %d units",
				ErrConfig, i, len(row), len(tr.Units))
		}
		for j, v := range row {
			if j > 0 {
				fmt.Fprint(bw, "\t")
			}
			fmt.Fprintf(bw, "%.6g", v)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// OrderFor returns, for each of the trace's units, its index in the given
// block-name list, erroring on unknown or missing units. It aligns a
// ptrace's column order with a floorplan's block order.
func (tr *PowerTrace) OrderFor(blockNames []string) ([]int, error) {
	byName := make(map[string]int, len(blockNames))
	for i, n := range blockNames {
		byName[n] = i
	}
	if len(tr.Units) != len(blockNames) {
		return nil, fmt.Errorf("%w: ptrace has %d units, floorplan %d blocks",
			ErrConfig, len(tr.Units), len(blockNames))
	}
	order := make([]int, len(tr.Units))
	for i, u := range tr.Units {
		at, ok := byName[u]
		if !ok {
			return nil, fmt.Errorf("%w: ptrace unit %q not in floorplan", ErrConfig, u)
		}
		order[i] = at
	}
	return order, nil
}
