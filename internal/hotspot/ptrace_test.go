package hotspot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestReadPTrace(t *testing.T) {
	in := `
# comment
core_0_0 core_0_1 core_1_0
1.0 2.0 3.0
1.5 2.5 3.5
`
	tr, err := ReadPTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Units) != 3 || tr.Units[1] != "core_0_1" {
		t.Errorf("units = %v", tr.Units)
	}
	if len(tr.Steps) != 2 || tr.Steps[1][2] != 3.5 {
		t.Errorf("steps = %v", tr.Steps)
	}
}

func TestReadPTraceErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"a b c\n",                  // header only
		"a b\n1.0\n",               // short row
		"a b\n1.0 x\n",             // bad float
		"a b\n1.0 -2.0\n",          // negative power
		"# only comments\n# two\n", // no header
	}
	for i, in := range cases {
		if _, err := ReadPTrace(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should error: %q", i, in)
		}
	}
}

func TestWritePTraceRoundTrip(t *testing.T) {
	tr := &PowerTrace{
		Units: []string{"a", "b"},
		Steps: [][]float64{{1.25, 0}, {3.5, 4.125}},
	}
	var buf bytes.Buffer
	if err := WritePTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Steps {
		for j := range tr.Steps[i] {
			if math.Abs(got.Steps[i][j]-tr.Steps[i][j]) > 1e-9 {
				t.Fatalf("step %d unit %d drifted", i, j)
			}
		}
	}
}

func TestWritePTraceErrors(t *testing.T) {
	if err := WritePTrace(&bytes.Buffer{}, &PowerTrace{}); err == nil {
		t.Errorf("empty trace should error")
	}
	bad := &PowerTrace{Units: []string{"a", "b"}, Steps: [][]float64{{1}}}
	if err := WritePTrace(&bytes.Buffer{}, bad); err == nil {
		t.Errorf("ragged trace should error")
	}
}

func TestOrderFor(t *testing.T) {
	tr := &PowerTrace{Units: []string{"b", "a"}, Steps: [][]float64{{1, 2}}}
	order, err := tr.OrderFor([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 0 {
		t.Errorf("order = %v", order)
	}
	if _, err := tr.OrderFor([]string{"a", "c"}); err == nil {
		t.Errorf("unknown unit should error")
	}
	if _, err := tr.OrderFor([]string{"a", "b", "c"}); err == nil {
		t.Errorf("count mismatch should error")
	}
}
