package hotspot

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"darksim/internal/floorplan"
	"darksim/internal/thermal"
)

func testGrid(t *testing.T) *floorplan.Floorplan {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := thermal.DefaultConfig(0.0226, 0.0226, 10, 10)
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf, 0.0226, 0.0226, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.AmbientC-cfg.AmbientC) > 1e-9 {
		t.Errorf("ambient = %v, want %v", got.AmbientC, cfg.AmbientC)
	}
	if got.ConvectionR != cfg.ConvectionR || got.ConvectionC != cfg.ConvectionC {
		t.Errorf("convection drifted")
	}
	for i := range cfg.Layers {
		a, b := cfg.Layers[i], got.Layers[i]
		if a.Name != b.Name || math.Abs(a.Thickness-b.Thickness) > 1e-12 {
			t.Errorf("layer %d geometry drifted: %+v vs %+v", i, a, b)
		}
		if a.Material != b.Material {
			t.Errorf("layer %d material drifted", i)
		}
	}
}

func TestWriteConfigEmitsPaperValues(t *testing.T) {
	cfg := thermal.DefaultConfig(0.02, 0.02, 4, 4)
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// §2.1 values, in HotSpot units.
	for _, want := range []string{
		"-t_chip\t0.00015",
		"-k_chip\t100",
		"-t_interface\t2e-05",
		"-k_interface\t4",
		"-s_spreader\t0.03",
		"-t_spreader\t0.001",
		"-s_sink\t0.06",
		"-t_sink\t0.0069",
		"-r_convec\t0.1",
		"-c_convec\t140.4",
		"-ambient\t315.15", // 42 °C calibrated ambient
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReadConfigOverridesAndDefaults(t *testing.T) {
	in := `
# a HotSpot file with extra knobs we ignore
-t_chip      0.0003
-ambient     318.15
-sampling_intvl 0.01
-grid_rows   64
`
	cfg, err := ReadConfig(strings.NewReader(in), 0.02, 0.02, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Layers[0].Thickness != 0.0003 {
		t.Errorf("die thickness override lost: %v", cfg.Layers[0].Thickness)
	}
	if math.Abs(cfg.AmbientC-45) > 1e-9 {
		t.Errorf("ambient = %v °C, want 45", cfg.AmbientC)
	}
	// Untouched parameters keep the paper defaults.
	if cfg.ConvectionR != thermal.ConvectionR {
		t.Errorf("convection default lost")
	}
	if cfg.Layers[1].Material != thermal.Interface {
		t.Errorf("TIM material default lost")
	}
}

func TestReadConfigGrowsUndersizedStack(t *testing.T) {
	// Spreader smaller than the die must be grown to keep the stack valid.
	in := "-s_spreader 0.01\n-s_sink 0.012\n"
	cfg, err := ReadConfig(strings.NewReader(in), 0.03, 0.03, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Layers[2].W < 0.03 || cfg.Layers[3].W < cfg.Layers[2].W {
		t.Errorf("stack not grown: spreader %v sink %v", cfg.Layers[2].W, cfg.Layers[3].W)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("grown config invalid: %v", err)
	}
}

func TestParseParamsErrors(t *testing.T) {
	if _, err := ParseParams(strings.NewReader("bogus line here\n")); err == nil {
		t.Errorf("malformed line should error")
	}
	if _, err := ParseParams(strings.NewReader("-ambient notanumber\n")); err == nil {
		t.Errorf("bad float should error")
	}
	if _, err := ParseParams(strings.NewReader("ambient 318\n")); err == nil {
		t.Errorf("missing dash should error")
	}
	// Last value wins for duplicates.
	p, err := ParseParams(strings.NewReader("-x 1\n-x 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p["x"] != 2 {
		t.Errorf("duplicate handling wrong: %v", p["x"])
	}
}

func TestWriteConfigRejectsNonStandardStack(t *testing.T) {
	cfg := thermal.DefaultConfig(0.02, 0.02, 4, 4)
	cfg.Layers[1].Name = "glue"
	if err := WriteConfig(&bytes.Buffer{}, cfg); err == nil {
		t.Errorf("unknown layer should error")
	}
	cfg2 := thermal.DefaultConfig(0.02, 0.02, 4, 4)
	cfg2.Layers = cfg2.Layers[:3]
	if err := WriteConfig(&bytes.Buffer{}, cfg2); err == nil {
		t.Errorf("missing layer should error")
	}
}

func TestKnownParams(t *testing.T) {
	names := KnownParams()
	if len(names) != 17 {
		t.Errorf("KnownParams = %d entries", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("KnownParams not sorted")
		}
	}
}

func TestRoundTripThermalModelAgreement(t *testing.T) {
	// A model built from a round-tripped config produces the same
	// steady-state temperatures as one built from the original.
	origCfg := thermal.DefaultConfig(0.0226, 0.0226, 10, 10)
	var buf bytes.Buffer
	if err := WriteConfig(&buf, origCfg); err != nil {
		t.Fatal(err)
	}
	rtCfg, err := ReadConfig(&buf, 0.0226, 0.0226, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	fp := testGrid(t)
	m1, err := thermal.NewModel(fp, origCfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := thermal.NewModel(fp, rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	power := make([]float64, 100)
	for i := range power {
		power[i] = 2
	}
	t1, err := m1.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m2.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if math.Abs(t1[i]-t2[i]) > 1e-6 {
			t.Fatalf("temps diverge at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}
