// Package apps provides the PARSEC-like application catalog the paper's
// experiments run: x264, blackscholes, bodytrack, canneal, dedup, ferret
// and swaptions (§2.3, Figures 3–14).
//
// The paper characterizes each application at 22 nm with gem5 + McPAT and
// then reduces those simulations to the Equation (1) power model and an
// Amdahl-style speed-up curve. This package plays the role of that
// characterization: each App carries the fitted model constants
// (per-thread IPC, Amdahl parallel fraction, effective switching
// capacitance at 22 nm, activity factor, frequency-independent power).
// The constants are synthetic but calibrated against the paper's published
// anchors:
//
//   - x264 single-threaded at 22 nm draws ≈15 W at 4 GHz (Figure 3);
//   - the hungriest application (swaptions) draws ≈3.75 W/core at 16 nm and
//     3.6 GHz, so a 220 W TDP leaves ≈37–42 % of a 100-core chip dark and a
//     185 W TDP ≈46–51 % (Figure 5);
//   - speed-ups for 8 dependent threads land between ≈1.4 (canneal) and
//     ≈3.2 (blackscholes), reproducing the parallelism wall of Figure 4;
//   - canneal scales poorly with threads, which is what makes NTC lose on
//     energy for it in Figure 14.
package apps

import (
	"errors"
	"fmt"
	"sort"

	"darksim/internal/amdahl"
	"darksim/internal/power"
	"darksim/internal/tech"
	"darksim/internal/vf"
)

// App is one benchmark application with its fitted model constants.
type App struct {
	Name string
	// IPC is the per-thread instructions per cycle on the out-of-order
	// Alpha 21264 core (the ILP axis of §3.3).
	IPC float64
	// ParallelFrac is the Amdahl parallel fraction (the TLP axis).
	ParallelFrac float64
	// Ceff22NF is the effective switching capacitance at 22 nm in nF.
	Ceff22NF float64
	// Alpha is the per-core activity factor when running as one of
	// several dependent threads (sync stalls reduce it).
	Alpha float64
	// AlphaSingle is the single-thread activity factor (no sync stalls).
	AlphaSingle float64
	// Pind22W is the frequency-independent power at 22 nm in watts.
	Pind22W float64
}

// MaxThreadsPerInstance is the paper's per-instance thread limit (§2.3:
// "every instance of an application can run 1, 2, …, 8 parallel dependent
// threads").
const MaxThreadsPerInstance = 8

// Catalog returns the seven PARSEC applications in the paper's figure
// order (a–g): x264, blackscholes, bodytrack, ferret, canneal, dedup,
// swaptions.
func Catalog() []App {
	return []App{
		{Name: "x264", IPC: 2.6, ParallelFrac: 0.62, Ceff22NF: 1.85, Alpha: 0.80, AlphaSingle: 0.90, Pind22W: 0.3},
		{Name: "blackscholes", IPC: 2.2, ParallelFrac: 0.78, Ceff22NF: 0.98, Alpha: 0.90, AlphaSingle: 0.95, Pind22W: 0.3},
		{Name: "bodytrack", IPC: 1.8, ParallelFrac: 0.70, Ceff22NF: 1.44, Alpha: 0.80, AlphaSingle: 0.88, Pind22W: 0.3},
		{Name: "ferret", IPC: 1.7, ParallelFrac: 0.72, Ceff22NF: 1.55, Alpha: 0.85, AlphaSingle: 0.92, Pind22W: 0.3},
		{Name: "canneal", IPC: 0.9, ParallelFrac: 0.35, Ceff22NF: 1.28, Alpha: 0.60, AlphaSingle: 0.70, Pind22W: 0.3},
		{Name: "dedup", IPC: 1.5, ParallelFrac: 0.66, Ceff22NF: 1.39, Alpha: 0.75, AlphaSingle: 0.85, Pind22W: 0.3},
		{Name: "swaptions", IPC: 2.0, ParallelFrac: 0.75, Ceff22NF: 1.65, Alpha: 0.95, AlphaSingle: 0.97, Pind22W: 0.3},
	}
}

// ErrUnknownApp is returned by ByName for applications outside the catalog.
var ErrUnknownApp = errors.New("apps: unknown application")

// ByName looks an application up by its (lower-case) name.
func ByName(name string) (App, error) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("%w: %q", ErrUnknownApp, name)
}

// Names returns the catalog's application names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, a := range cat {
		out[i] = a.Name
	}
	return out
}

// SpeedupLaw returns the application's Amdahl law.
func (a App) SpeedupLaw() amdahl.Amdahl {
	return amdahl.Amdahl{ParallelFrac: a.ParallelFrac}
}

// Speedup returns the application's speed-up for n dependent threads.
func (a App) Speedup(n int) float64 { return a.SpeedupLaw().Speedup(n) }

// Model22 returns the Equation (1) model at 22 nm.
func (a App) Model22() power.CoreModel {
	return power.CoreModel{CeffNF: a.Ceff22NF, PindW: a.Pind22W, Leak: power.DefaultLeakage22()}
}

// ModelFor returns the Equation (1) model scaled to the given node.
func (a App) ModelFor(node tech.Node) (power.CoreModel, error) {
	f, err := tech.FactorsFor(node)
	if err != nil {
		return power.CoreModel{}, err
	}
	return a.Model22().Scale(f), nil
}

// CorePower returns the per-core power in watts when one thread of a
// multi-threaded instance of the application runs at fGHz (with the
// minimum Eq.(2) voltage) and temperature tempC on the given node.
func (a App) CorePower(node tech.Node, fGHz, tempC float64) (float64, error) {
	return a.corePower(node, fGHz, tempC, a.Alpha)
}

// CorePowerSingle is CorePower with the single-thread activity factor.
func (a App) CorePowerSingle(node tech.Node, fGHz, tempC float64) (float64, error) {
	return a.corePower(node, fGHz, tempC, a.AlphaSingle)
}

func (a App) corePower(node tech.Node, fGHz, tempC, alpha float64) (float64, error) {
	m, err := a.ModelFor(node)
	if err != nil {
		return 0, err
	}
	curve, err := vf.CurveFor(node)
	if err != nil {
		return 0, err
	}
	vdd, err := curve.VoltageFor(fGHz)
	if err != nil {
		return 0, err
	}
	return m.Power(alpha, vdd, fGHz, tempC), nil
}

// InstanceGIPS returns the throughput of one application instance running
// `threads` dependent threads at fGHz, in giga-instructions per second:
// IPC · f · S(threads). A single thread at 1 GHz retires IPC GIPS.
func (a App) InstanceGIPS(fGHz float64, threads int) float64 {
	if threads < 1 || fGHz <= 0 {
		return 0
	}
	return a.IPC * fGHz * a.Speedup(threads)
}

// HighTLPThreshold and HighILPThreshold classify applications per §3.3.
const (
	HighTLPThreshold = 0.70 // parallel fraction
	HighILPThreshold = 2.0  // IPC
)

// HighTLP reports whether the application benefits more from added threads
// than from added frequency.
func (a App) HighTLP() bool { return a.ParallelFrac >= HighTLPThreshold }

// HighILP reports whether the application benefits strongly from higher
// v/f levels.
func (a App) HighILP() bool { return a.IPC >= HighILPThreshold }

// SortByPowerAt returns the catalog sorted by descending per-core power at
// the given node, frequency and temperature — "power hungry" first.
func SortByPowerAt(node tech.Node, fGHz, tempC float64) ([]App, error) {
	cat := Catalog()
	pw := make(map[string]float64, len(cat))
	for _, a := range cat {
		p, err := a.CorePower(node, fGHz, tempC)
		if err != nil {
			return nil, err
		}
		pw[a.Name] = p
	}
	sort.SliceStable(cat, func(i, j int) bool { return pw[cat[i].Name] > pw[cat[j].Name] })
	return cat, nil
}
