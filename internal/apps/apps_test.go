package apps

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/tech"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d apps, want 7", len(cat))
	}
	want := map[string]bool{
		"x264": true, "blackscholes": true, "bodytrack": true, "ferret": true,
		"canneal": true, "dedup": true, "swaptions": true,
	}
	for _, a := range cat {
		if !want[a.Name] {
			t.Errorf("unexpected app %q", a.Name)
		}
		delete(want, a.Name)
		if a.IPC <= 0 || a.IPC > 4 {
			t.Errorf("%s: IPC %v out of range for a 4-wide core", a.Name, a.IPC)
		}
		if a.ParallelFrac < 0 || a.ParallelFrac > 1 {
			t.Errorf("%s: parallel fraction %v", a.Name, a.ParallelFrac)
		}
		if a.Alpha <= 0 || a.Alpha > 1 || a.AlphaSingle < a.Alpha {
			t.Errorf("%s: activity factors alpha=%v single=%v", a.Name, a.Alpha, a.AlphaSingle)
		}
		if a.Ceff22NF <= 0 {
			t.Errorf("%s: Ceff %v", a.Name, a.Ceff22NF)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing apps: %v", want)
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "canneal" {
		t.Errorf("got %q", a.Name)
	}
	if _, err := ByName("doom"); err == nil {
		t.Errorf("unknown app should error")
	}
	if len(Names()) != 7 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestFig3Anchor(t *testing.T) {
	// Figure 3: x264 single thread at 22 nm draws ≈15 W at 4 GHz and the
	// curve is cubic-ish: ≈2–6 W at 2 GHz.
	x, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	p4, err := x.CorePowerSingle(tech.Node22, 4.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if p4 < 12 || p4 > 19 {
		t.Errorf("x264 @22nm 4GHz = %.2f W, want ≈15 (Fig. 3)", p4)
	}
	p2, err := x.CorePowerSingle(tech.Node22, 2.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if p2 < 2 || p2 > 7 {
		t.Errorf("x264 @22nm 2GHz = %.2f W, want 2–7 (Fig. 3)", p2)
	}
	// Superlinear growth: P(4)/P(2) must exceed the frequency ratio 2.
	if p4/p2 < 2.2 {
		t.Errorf("power should grow superlinearly with f: P4/P2 = %.2f", p4/p2)
	}
}

func TestFig5PowerAnchor(t *testing.T) {
	// Swaptions is the hungriest app; at 16 nm, 3.6 GHz, 80 °C it should
	// draw ≈3.75 W/core so that a 220 W TDP leaves ≈37–42 % dark silicon.
	s, err := ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.CorePower(tech.Node16, 3.6, 80)
	if err != nil {
		t.Fatal(err)
	}
	if p < 3.5 || p > 4.0 {
		t.Errorf("swaptions @16nm 3.6GHz = %.2f W, want ≈3.75", p)
	}
	// It must be the hungriest in the catalog.
	sorted, err := SortByPowerAt(tech.Node16, 3.6, 80)
	if err != nil {
		t.Fatal(err)
	}
	if sorted[0].Name != "swaptions" {
		t.Errorf("hungriest = %s, want swaptions", sorted[0].Name)
	}
	// Canneal should be near the bottom (memory bound).
	if sorted[len(sorted)-1].Name != "canneal" && sorted[len(sorted)-2].Name != "canneal" {
		t.Errorf("canneal should be among the least power hungry")
	}
}

func TestFig4SpeedupAnchors(t *testing.T) {
	// Figure 4 plots 16–64 threads in a 1–3 speed-up band for x264,
	// bodytrack and canneal.
	for _, name := range []string{"x264", "bodytrack", "canneal"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{16, 32, 48, 64} {
			s := a.Speedup(n)
			if s < 1 || s > 3.5 {
				t.Errorf("%s: S(%d) = %.2f outside Figure 4's band", name, n, s)
			}
		}
		if a.Speedup(64) < a.Speedup(16) {
			t.Errorf("%s: speed-up should not decrease", name)
		}
	}
	// canneal scales worst (Fig. 14's NTC loser).
	c, _ := ByName("canneal")
	x, _ := ByName("x264")
	if c.Speedup(8) >= x.Speedup(8) {
		t.Errorf("canneal should scale worse than x264")
	}
	b, _ := ByName("blackscholes")
	if b.Speedup(8) < 2.8 {
		t.Errorf("blackscholes S(8) = %.2f, want ≥ 2.8", b.Speedup(8))
	}
}

func TestInstanceGIPS(t *testing.T) {
	x, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	if got := x.InstanceGIPS(1.0, 1); math.Abs(got-x.IPC) > 1e-12 {
		t.Errorf("1 thread @1GHz = %v, want IPC", got)
	}
	if x.InstanceGIPS(0, 4) != 0 || x.InstanceGIPS(2, 0) != 0 {
		t.Errorf("degenerate inputs should give 0")
	}
	// 8 threads beat 1 thread at the same frequency.
	if x.InstanceGIPS(3.6, 8) <= x.InstanceGIPS(3.6, 1) {
		t.Errorf("more threads should raise instance GIPS")
	}
}

func TestTLPILPClassification(t *testing.T) {
	cases := []struct {
		name             string
		highTLP, highILP bool
	}{
		{"blackscholes", true, true},
		{"swaptions", true, true},
		{"x264", false, true},
		{"canneal", false, false},
		{"bodytrack", true, false},
	}
	for _, c := range cases {
		a, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if a.HighTLP() != c.highTLP {
			t.Errorf("%s: HighTLP = %v, want %v", c.name, a.HighTLP(), c.highTLP)
		}
		if a.HighILP() != c.highILP {
			t.Errorf("%s: HighILP = %v, want %v", c.name, a.HighILP(), c.highILP)
		}
	}
}

func TestCorePowerScalesDownWithNode(t *testing.T) {
	// At the same frequency, smaller nodes consume less per core
	// (lower Vdd, lower Ceff).
	x, err := ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	p22, err := x.CorePower(tech.Node22, 2.0, 70)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := x.CorePower(tech.Node8, 2.0, 70)
	if err != nil {
		t.Fatal(err)
	}
	if p8 >= p22 {
		t.Errorf("8 nm core at iso-frequency should use less power: %v vs %v", p8, p22)
	}
}

func TestCorePowerErrors(t *testing.T) {
	x, _ := ByName("x264")
	if _, err := x.CorePower(tech.Node(13), 2.0, 70); err != nil {
		// expected
	} else {
		t.Errorf("unknown node should error")
	}
	if _, err := x.CorePower(tech.Node16, -1, 70); err == nil {
		t.Errorf("negative frequency should error")
	}
	if _, err := x.ModelFor(tech.Node(13)); err == nil {
		t.Errorf("unknown node should error")
	}
	if _, err := SortByPowerAt(tech.Node(13), 2, 70); err == nil {
		t.Errorf("unknown node should error")
	}
}

// Property: per-core power is monotone in frequency for every catalog
// application (the Eq.(2) minimum-voltage pairing makes power a cubic-ish
// increasing function of f).
func TestCorePowerMonotoneProperty(t *testing.T) {
	for _, a := range Catalog() {
		f := func(x, y float64) bool {
			f1 := 0.4 + math.Mod(math.Abs(x), 3.2)
			f2 := 0.4 + math.Mod(math.Abs(y), 3.2)
			lo, hi := math.Min(f1, f2), math.Max(f1, f2)
			pLo, err1 := a.CorePower(tech.Node16, lo, 80)
			pHi, err2 := a.CorePower(tech.Node16, hi, 80)
			if err1 != nil || err2 != nil {
				return false
			}
			return pLo <= pHi+1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}
