package experiments

import (
	"context"
	"fmt"
	"io"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/report"
	"darksim/internal/tech"
	"darksim/internal/tsp"
)

// Fig5Cell is one bar of Figure 5: an application at one v/f level under
// one TDP value.
type Fig5Cell struct {
	App           string
	FGHz          float64
	ActivePercent float64
	DarkPercent   float64
}

// Fig5Result reproduces both halves of Figure 5 (TDP = 220 W and 185 W at
// 16 nm, 100 cores, 8 threads per instance) including the peak
// temperatures at the maximum v/f level.
type Fig5Result struct {
	TDPs      []float64 // {220, 185}
	Freqs     []float64 // {2.8 … 3.6}
	Cells     map[float64][]Fig5Cell
	PeakTemps map[float64]map[string]float64 // TDP -> app -> °C at fmax
	TDTM      float64
	MaxDark   map[float64]float64 // TDP -> max dark fraction over apps at fmax
}

// Fig5 runs the sweep.
func Fig5() (*Fig5Result, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{
		TDPs:      []float64{220, 185},
		Freqs:     []float64{2.8, 3.0, 3.2, 3.4, 3.6},
		Cells:     map[float64][]Fig5Cell{},
		PeakTemps: map[float64]map[string]float64{},
		TDTM:      p.TDTM,
		MaxDark:   map[float64]float64{},
	}
	for _, tdp := range res.TDPs {
		res.PeakTemps[tdp] = map[string]float64{}
		for _, a := range paperOrder() {
			for _, f := range res.Freqs {
				est, err := p.DarkSiliconUnderTDP(a, tdp, f)
				if err != nil {
					return nil, err
				}
				res.Cells[tdp] = append(res.Cells[tdp], Fig5Cell{
					App:           a.Name,
					FGHz:          f,
					ActivePercent: est.Summary.ActivePercent(),
					DarkPercent:   100 * est.Summary.DarkFraction(),
				})
				if f == res.Freqs[len(res.Freqs)-1] {
					res.PeakTemps[tdp][a.Name] = est.Summary.PeakTempC
					if d := est.Summary.DarkFraction(); d > res.MaxDark[tdp] {
						res.MaxDark[tdp] = d
					}
				}
			}
		}
	}
	return res, nil
}

// tablesFor builds the activity and peak-temperature tables of one TDP
// half of the figure.
func (r *Fig5Result) tablesFor(tdp float64) []*report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 5: %% active cores, 16 nm, TDP = %.0f W, TDTM = %.0f °C", tdp, r.TDTM),
		Columns: append([]string{"app"}, floatHeaders(r.Freqs, "%.1f GHz")...),
	}
	perApp := map[string][]float64{}
	var order []string
	for _, c := range r.Cells[tdp] {
		if _, ok := perApp[c.App]; !ok {
			order = append(order, c.App)
		}
		perApp[c.App] = append(perApp[c.App], c.ActivePercent)
	}
	for _, app := range order {
		t.AddFloatRow(app, 0, perApp[app]...)
	}
	pt := &report.Table{
		Title:   fmt.Sprintf("Peak temperature at %.1f GHz (TDP = %.0f W)", r.Freqs[len(r.Freqs)-1], tdp),
		Columns: []string{"app", "peak [°C]", "violates TDTM"},
	}
	for _, app := range order {
		peak := r.PeakTemps[tdp][app]
		pt.AddRow(app, fmt.Sprintf("%.1f", peak), fmt.Sprintf("%v", peak > r.TDTM))
	}
	pt.AddNote("max dark silicon at fmax: %.0f%%", 100*r.MaxDark[tdp])
	return []*report.Table{t, pt}
}

// Tables implements Tabler.
func (r *Fig5Result) Tables() []*report.Table {
	var out []*report.Table
	for _, tdp := range r.TDPs {
		out = append(out, r.tablesFor(tdp)...)
	}
	return out
}

// Render implements Renderer.
func (r *Fig5Result) Render(w io.Writer) error {
	for _, tdp := range r.TDPs {
		if err := renderTables(w, r.tablesFor(tdp)); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig6Row compares TDP- vs temperature-constrained estimation for one app.
type Fig6Row struct {
	App           string
	ActiveTDP     float64 // % active under TDP
	ActiveTemp    float64 // % active under temperature constraint
	DarkReduction float64 // relative reduction of dark silicon, %
}

// Fig6Result holds both nodes of Figure 6.
type Fig6Result struct {
	Nodes        []tech.Node
	Freqs        map[tech.Node]float64
	Rows         map[tech.Node][]Fig6Row
	AvgReduction map[tech.Node]float64
	TDPW         float64
}

// Fig6 compares dark silicon as a TDP constraint (185 W) against a
// temperature constraint (TDTM = 80 °C) at 16 nm / 3.6 GHz and
// 11 nm / 4.0 GHz.
func Fig6() (*Fig6Result, error) {
	res := &Fig6Result{
		Nodes:        []tech.Node{tech.Node16, tech.Node11},
		Freqs:        map[tech.Node]float64{tech.Node16: 3.6, tech.Node11: 4.0},
		Rows:         map[tech.Node][]Fig6Row{},
		AvgReduction: map[tech.Node]float64{},
		TDPW:         185,
	}
	for _, node := range res.Nodes {
		p, err := platformFor(node, 100)
		if err != nil {
			return nil, err
		}
		f := res.Freqs[node]
		var sumRed, nRed float64
		for _, a := range paperOrder() {
			tdpEst, err := p.DarkSiliconUnderTDP(a, res.TDPW, f)
			if err != nil {
				return nil, err
			}
			tempEst, err := p.DarkSiliconUnderTemp(a, f, nil)
			if err != nil {
				return nil, err
			}
			row := Fig6Row{
				App:        a.Name,
				ActiveTDP:  tdpEst.Summary.ActivePercent(),
				ActiveTemp: tempEst.Summary.ActivePercent(),
			}
			darkTDP := tdpEst.Summary.DarkFraction()
			darkTemp := tempEst.Summary.DarkFraction()
			if darkTDP > 0 {
				row.DarkReduction = 100 * (darkTDP - darkTemp) / darkTDP
				sumRed += row.DarkReduction
				nRed++
			}
			res.Rows[node] = append(res.Rows[node], row)
		}
		if nRed > 0 {
			res.AvgReduction[node] = sumRed / nRed
		}
	}
	return res, nil
}

// tableFor builds one node's comparison table.
func (r *Fig6Result) tableFor(node tech.Node) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 6: dark silicon as TDP (%.0f W) vs temperature constraint, %s @ %.1f GHz",
			r.TDPW, node, r.Freqs[node]),
		Columns: []string{"app", "% active (TDP)", "% active (temp)", "dark reduction %"},
	}
	for _, row := range r.Rows[node] {
		t.AddRow(row.App,
			fmt.Sprintf("%.0f", row.ActiveTDP),
			fmt.Sprintf("%.0f", row.ActiveTemp),
			fmt.Sprintf("%.0f", row.DarkReduction))
	}
	t.AddNote("average dark-silicon reduction at %s: %.0f%%", node, r.AvgReduction[node])
	return t
}

// Tables implements Tabler.
func (r *Fig6Result) Tables() []*report.Table {
	var out []*report.Table
	for _, node := range r.Nodes {
		out = append(out, r.tableFor(node))
	}
	return out
}

// Render implements Renderer.
func (r *Fig6Result) Render(w io.Writer) error {
	for _, node := range r.Nodes {
		if err := r.tableFor(node).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7Row is one application under both DVFS scenarios.
type Fig7Row struct {
	App            string
	Scenario1GIPS  float64
	Scenario2GIPS  float64
	Active1Percent float64
	Active2Percent float64
	Threads2       int
	FGHz2          float64
	GainPercent    float64
}

// Fig7Result holds both nodes of Figure 7.
type Fig7Result struct {
	Nodes   []tech.Node
	Freqs   map[tech.Node]float64
	Rows    map[tech.Node][]Fig7Row
	MaxGain map[tech.Node]float64
	TDPW    float64
}

// Fig7 compares scenario 1 (maximum nominal frequency, 8 threads per
// instance, fill until TDP) against scenario 2 (per-application TLP/ILP-
// aware thread count and v/f level for a full complement of instances)
// under TDP = 185 W.
func Fig7() (*Fig7Result, error) {
	res := &Fig7Result{
		Nodes:   []tech.Node{tech.Node16, tech.Node11},
		Freqs:   map[tech.Node]float64{tech.Node16: 3.6, tech.Node11: 4.0},
		Rows:    map[tech.Node][]Fig7Row{},
		MaxGain: map[tech.Node]float64{},
		TDPW:    185,
	}
	for _, node := range res.Nodes {
		p, err := platformFor(node, 100)
		if err != nil {
			return nil, err
		}
		fmax := res.Freqs[node]
		// The chip's job complement: as many 8-thread instances as fit
		// on the chip. Scenario 1 runs as many of them as the TDP allows
		// at the maximum nominal frequency; scenario 2 runs all of them
		// with a per-application (threads, v/f) choice under the same
		// TDP. Both scenarios therefore schedule the same fixed workload.
		jobs := p.NumCores() / apps.MaxThreadsPerInstance
		for _, a := range paperOrder() {
			plan1, err := mapping.TDPMap(p.Floorplan, a, p, mapping.TDPMapOptions{
				TDPW:         res.TDPW,
				FGHz:         fmax,
				TempC:        p.TDTM,
				MaxInstances: jobs,
			})
			if err != nil {
				return nil, err
			}
			s1, err := p.Summarize("scenario1", plan1)
			if err != nil {
				return nil, err
			}
			cfg, err := p.BestDVFSConfig(a, jobs, res.TDPW)
			if err != nil {
				return nil, err
			}
			row := Fig7Row{
				App:            a.Name,
				Scenario1GIPS:  s1.GIPS,
				Scenario2GIPS:  cfg.GIPS,
				Active1Percent: s1.ActivePercent(),
				Active2Percent: 100 * float64(cfg.Cores) / float64(p.NumCores()),
				Threads2:       cfg.Threads,
				FGHz2:          cfg.FGHz,
			}
			if row.Scenario1GIPS > 0 {
				row.GainPercent = 100 * (row.Scenario2GIPS - row.Scenario1GIPS) / row.Scenario1GIPS
			}
			if row.GainPercent > res.MaxGain[node] {
				res.MaxGain[node] = row.GainPercent
			}
			res.Rows[node] = append(res.Rows[node], row)
		}
	}
	return res, nil
}

// tableFor builds one node's scenario comparison.
func (r *Fig7Result) tableFor(node tech.Node) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 7: DVFS scenarios, %s, TDP = %.0f W (scenario 1: %.1f GHz, 8 threads)",
			node, r.TDPW, r.Freqs[node]),
		Columns: []string{"app", "S1 GIPS", "S2 GIPS", "S1 active %", "S2 active %", "S2 threads", "S2 GHz", "gain %"},
	}
	for _, row := range r.Rows[node] {
		t.AddRow(row.App,
			fmt.Sprintf("%.0f", row.Scenario1GIPS),
			fmt.Sprintf("%.0f", row.Scenario2GIPS),
			fmt.Sprintf("%.0f", row.Active1Percent),
			fmt.Sprintf("%.0f", row.Active2Percent),
			fmt.Sprintf("%d", row.Threads2),
			fmt.Sprintf("%.1f", row.FGHz2),
			fmt.Sprintf("%.0f", row.GainPercent))
	}
	t.AddNote("maximum performance gain at %s: %.0f%%", node, r.MaxGain[node])
	return t
}

// Tables implements Tabler.
func (r *Fig7Result) Tables() []*report.Table {
	var out []*report.Table
	for _, node := range r.Nodes {
		out = append(out, r.tableFor(node))
	}
	return out
}

// Render implements Renderer.
func (r *Fig7Result) Render(w io.Writer) error {
	for _, node := range r.Nodes {
		if err := r.tableFor(node).Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig8Result reproduces the patterning example of Figure 8: a contiguous
// mapping that violates TDTM versus a patterned mapping that activates
// more cores without violating it.
type Fig8Result struct {
	App             string
	FGHz            float64
	TDTM            float64
	ContiguousMax   int // max safe cores with contiguous mapping
	PatternedMax    int // max safe cores with patterned mapping
	ContigViolation struct {
		Cores  int
		PeakC  float64
		PowerW float64
	}
	PatternOK struct {
		Cores  int
		PeakC  float64
		PowerW float64
	}
	// Thermal maps (per-block °C, row-major) of both mappings, for the
	// figure's heatmap panels.
	ContigTemps  []float64
	PatternTemps []float64
	GridRows     int
	GridCols     int
}

// Fig8 uses the hungriest application at 16 nm / 3.6 GHz. The violation
// case maps the patterned-safe core count contiguously, mirroring the
// figure's pattern (a) vs pattern (b) contrast.
func Fig8() (*Fig8Result, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	const f = 3.6
	res := &Fig8Result{App: a.Name, FGHz: f, TDTM: p.TDTM}
	if res.ContiguousMax, err = p.MaxCoresUnderTemp(a, f, mapping.Contiguous); err != nil {
		return nil, err
	}
	if res.PatternedMax, err = p.MaxCoresUnderTemp(a, f, mapping.PeripheryFirst); err != nil {
		return nil, err
	}
	summarize := func(n int, strat mapping.Strategy) (metrics.Summary, []float64, error) {
		plan, err := buildAppPlan(p, a, n, f, strat)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		sum, err := p.Summarize("fig8", plan)
		if err != nil {
			return metrics.Summary{}, nil, err
		}
		temps, _, err := p.SteadyTemps(plan, core.BusyWait)
		return sum, temps, err
	}
	bad, badTemps, err := summarize(res.PatternedMax, mapping.Contiguous)
	if err != nil {
		return nil, err
	}
	res.ContigViolation.Cores = res.PatternedMax
	res.ContigViolation.PeakC = bad.PeakTempC
	res.ContigViolation.PowerW = bad.PowerW
	res.ContigTemps = badTemps
	good, goodTemps, err := summarize(res.PatternedMax, mapping.PeripheryFirst)
	if err != nil {
		return nil, err
	}
	res.PatternOK.Cores = res.PatternedMax
	res.PatternOK.PeakC = good.PeakTempC
	res.PatternOK.PowerW = good.PowerW
	res.PatternTemps = goodTemps
	res.GridRows, res.GridCols = p.Floorplan.Rows, p.Floorplan.Cols
	return res, nil
}

// Tables implements Tabler (the heatmap panels stay ASCII-only).
func (r *Fig8Result) Tables() []*report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 8: dark silicon patterning (%s @16nm, %.1f GHz, TDTM = %.0f °C)",
			r.App, r.FGHz, r.TDTM),
		Columns: []string{"mapping", "cores", "power [W]", "peak [°C]", "TDTM exceeded"},
	}
	t.AddRow("contiguous (pattern a)",
		fmt.Sprintf("%d", r.ContigViolation.Cores),
		fmt.Sprintf("%.0f", r.ContigViolation.PowerW),
		fmt.Sprintf("%.1f", r.ContigViolation.PeakC),
		fmt.Sprintf("%v", r.ContigViolation.PeakC > r.TDTM))
	t.AddRow("patterned (pattern b)",
		fmt.Sprintf("%d", r.PatternOK.Cores),
		fmt.Sprintf("%.0f", r.PatternOK.PowerW),
		fmt.Sprintf("%.1f", r.PatternOK.PeakC),
		fmt.Sprintf("%v", r.PatternOK.PeakC > r.TDTM))
	t.AddNote("max safe cores: contiguous %d vs patterned %d",
		r.ContiguousMax, r.PatternedMax)
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig8Result) Render(w io.Writer) error {
	if err := renderTables(w, r.Tables()); err != nil {
		return err
	}
	// The figure's thermal-profile panels, on a shared colour scale.
	if r.GridRows > 0 && len(r.ContigTemps) == r.GridRows*r.GridCols {
		scaleLo, scaleHi := 60.0, 86.0
		hm := &report.Heatmap{Title: "thermal profile, pattern (a) contiguous:", Min: scaleLo, Max: scaleHi}
		if err := hm.RenderGrid(w, r.ContigTemps, r.GridRows, r.GridCols); err != nil {
			return err
		}
		hm.Title = "thermal profile, pattern (b) patterned:"
		if err := hm.RenderGrid(w, r.PatternTemps, r.GridRows, r.GridCols); err != nil {
			return err
		}
	}
	return nil
}

// Fig9Row compares TDPmap and DsRem on one application mix.
type Fig9Row struct {
	Mix           string
	TDPmapGIPS    float64
	DsRemGIPS     float64
	TDPmapActive  float64
	DsRemActive   float64
	SpeedupFactor float64
}

// Fig9Result is the Figure 9 comparison at 16 nm.
type Fig9Result struct {
	Rows       []Fig9Row
	MaxSpeedup float64
	TDPW       float64
}

// Fig9 evaluates single applications and mixes, TDPmap (185 W, max v/f,
// contiguous) against DsRem (80 °C, patterned, joint thread/v/f choice).
func Fig9() (*Fig9Result, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{TDPW: 185}
	mixes := [][]string{
		{"x264"},
		{"swaptions"},
		{"canneal"},
		{"x264", "swaptions"},
		{"blackscholes", "canneal"},
		{"x264", "bodytrack", "dedup", "ferret"},
	}
	for _, names := range mixes {
		var mix []apps.App
		label := ""
		for i, n := range names {
			a, err := apps.ByName(n)
			if err != nil {
				return nil, err
			}
			mix = append(mix, a)
			if i > 0 {
				label += "+"
			}
			label += n
		}
		// TDPmap: divide the budget equally among the mix's apps.
		var tdpGIPS float64
		var tdpActive int
		for _, a := range mix {
			est, err := p.DarkSiliconUnderTDP(a, res.TDPW/float64(len(mix)), p.Curve.FmaxGHz)
			if err != nil {
				return nil, err
			}
			tdpGIPS += est.Summary.GIPS
			tdpActive += est.Summary.ActiveCores
		}
		plan, err := mapping.DsRem(p.Floorplan, mix, p, p, mapping.DsRemOptions{
			TcritC: p.TDTM,
			Levels: p.Ladder.Levels(),
		})
		if err != nil {
			return nil, err
		}
		row := Fig9Row{
			Mix:          label,
			TDPmapGIPS:   tdpGIPS,
			DsRemGIPS:    plan.TotalGIPS(),
			TDPmapActive: 100 * float64(tdpActive) / float64(p.NumCores()),
			DsRemActive:  100 * float64(plan.ActiveCores()) / float64(p.NumCores()),
		}
		if tdpGIPS > 0 {
			row.SpeedupFactor = row.DsRemGIPS / tdpGIPS
		}
		if row.SpeedupFactor > res.MaxSpeedup {
			res.MaxSpeedup = row.SpeedupFactor
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig9Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 9: TDPmap (%.0f W) vs DsRem (80 °C), 16 nm", r.TDPW),
		Columns: []string{"mix", "TDPmap GIPS", "DsRem GIPS", "TDPmap active %", "DsRem active %", "speedup"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Mix,
			fmt.Sprintf("%.0f", row.TDPmapGIPS),
			fmt.Sprintf("%.0f", row.DsRemGIPS),
			fmt.Sprintf("%.0f", row.TDPmapActive),
			fmt.Sprintf("%.0f", row.DsRemActive),
			fmt.Sprintf("%.2fx", row.SpeedupFactor))
	}
	t.AddNote("maximum DsRem speedup: %.2fx", r.MaxSpeedup)
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig9Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// Fig10Row is one node of Figure 10.
type Fig10Row struct {
	Node        tech.Node
	Cores       int
	DarkPercent float64
	ActiveCores int
	TSPPerCoreW float64
	TotalGIPS   float64
	AvgFGHz     float64
}

// Fig10Result evaluates system performance under TSP budgets.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 computes, per node, the worst-case TSP for the target active-core
// count (20/30/40 % dark silicon at 16/11/8 nm), then selects for every
// application the fastest ladder level whose per-core power fits the TSP
// budget and accumulates the resulting performance of an equal mix.
func Fig10(ctx context.Context) (*Fig10Result, error) {
	targets := []struct {
		node tech.Node
		dark float64
	}{
		{tech.Node16, 0.20},
		{tech.Node11, 0.30},
		{tech.Node8, 0.40},
	}
	res := &Fig10Result{}
	for _, tg := range targets {
		cores := coresForNode(tg.node)
		p, err := platformFor(tg.node, cores)
		if err != nil {
			return nil, err
		}
		calc, err := tsp.New(p.Thermal, p.TDTM)
		if err != nil {
			return nil, err
		}
		active := int(float64(cores) * (1 - tg.dark))
		budget, _, err := calc.WorstCase(ctx, active)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{
			Node: tg.node, Cores: cores, DarkPercent: 100 * tg.dark,
			ActiveCores: active, TSPPerCoreW: budget,
		}
		// Equal share of active cores per application; each runs at the
		// fastest level fitting the TSP per-core budget.
		mix := paperOrder()
		share := active / len(mix)
		var fSum float64
		for _, a := range mix {
			level := -1
			for i, pt := range p.Ladder.Points {
				cp, err := p.CorePower(a, pt.FGHz, p.TDTM)
				if err != nil {
					return nil, err
				}
				if cp <= budget {
					level = i
				}
			}
			if level < 0 {
				continue // app cannot run under this budget
			}
			f := p.Ladder.Points[level].FGHz
			fSum += f
			instances := share / apps.MaxThreadsPerInstance
			row.TotalGIPS += float64(instances) * a.InstanceGIPS(f, apps.MaxThreadsPerInstance)
		}
		row.AvgFGHz = fSum / float64(len(mix))
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig10Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Figure 10: overall performance under TSP across technology nodes",
		Columns: []string{"node", "cores", "dark %", "active", "TSP/core [W]", "avg f [GHz]", "GIPS"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Node.String(),
			fmt.Sprintf("%d", row.Cores),
			fmt.Sprintf("%.0f", row.DarkPercent),
			fmt.Sprintf("%d", row.ActiveCores),
			fmt.Sprintf("%.2f", row.TSPPerCoreW),
			fmt.Sprintf("%.1f", row.AvgFGHz),
			fmt.Sprintf("%.0f", row.TotalGIPS))
	}
	if n := len(r.Rows); n >= 2 {
		prev, last := r.Rows[n-2].TotalGIPS, r.Rows[n-1].TotalGIPS
		if prev > 0 {
			t.AddNote("performance increase %s -> %s: %.0f%%",
				r.Rows[n-2].Node, r.Rows[n-1].Node, 100*(last-prev)/prev)
		}
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig10Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// buildAppPlan places n cores of one app as 8-thread instances.
func buildAppPlan(p *core.Platform, a apps.App, n int, fGHz float64, strat mapping.Strategy) (*mapping.Plan, error) {
	cores, err := strat(p.Floorplan, n)
	if err != nil {
		return nil, err
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for len(cores) > 0 {
		take := apps.MaxThreadsPerInstance
		if len(cores) < take {
			take = len(cores)
		}
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: a, Cores: cores[:take], FGHz: fGHz, Threads: take,
		})
		cores = cores[take:]
	}
	return plan, plan.Validate()
}

func floatHeaders(xs []float64, format string) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf(format, x)
	}
	return out
}
