package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"darksim/internal/aging"
	"darksim/internal/apps"
	"darksim/internal/boost"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/report"
	"darksim/internal/rotate"
	"darksim/internal/sim"
	"darksim/internal/tech"
	"darksim/internal/thermal"
	"darksim/internal/tsp"
	"darksim/internal/variability"
	"darksim/internal/vf"
)

// buildAppPlanInstances2 is buildAppPlanInstances with an explicit
// placement strategy.
func buildAppPlanInstances2(p *core.Platform, a apps.App, instances, threads int, fGHz float64, strat mapping.Strategy) (*mapping.Plan, error) {
	cores, err := strat(p.Floorplan, instances*threads)
	if err != nil {
		return nil, err
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < instances; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: a, Cores: cores[i*threads : (i+1)*threads], FGHz: fGHz, Threads: threads,
		})
	}
	return plan, plan.Validate()
}

// newLadderWithStep builds a non-default-granularity ladder for a
// platform's curve.
func newLadderWithStep(p *core.Platform, stepGHz float64) (*vf.Ladder, error) {
	return vf.NewLadder(p.Curve, vf.LadderOptions{StepGHz: stepGHz})
}

// AblationRegistry lists the ablation studies for the design choices
// DESIGN.md calls out. They are not paper figures; they quantify how much
// each modelling decision matters.
func AblationRegistry() []Experiment {
	return []Experiment{
		{"ab-rotation", "Spatio-temporal rotation vs static mapping (peak temperature)", func(context.Context) (Renderer, error) { return AblationRotation() }},
		{"ab-grid", "Thermal model grid-resolution sensitivity", func(context.Context) (Renderer, error) { return AblationGrid() }},
		{"ab-holdband", "Boost controller hold-band sensitivity", func(context.Context) (Renderer, error) { return AblationHoldBand() }},
		{"ab-strategy", "Placement strategies: thermally safe core counts", func(ctx context.Context) (Renderer, error) { return AblationStrategies(ctx) }},
		{"ab-ladder", "DVFS ladder granularity vs estimation quality", func(context.Context) (Renderer, error) { return AblationLadderStep() }},
		{"ab-aging", "Aging balance: rotation vs static mapping", func(context.Context) (Renderer, error) { return AblationAging() }},
		{"ab-baseline", "ISCA'11 power-budget baseline vs temperature-aware estimation", func(context.Context) (Renderer, error) { return Baseline() }},
		{"ab-variability", "Variability-aware vs oblivious core selection (DaSim angle)", func(context.Context) (Renderer, error) { return AblationVariability() }},
	}
}

// AblationAgingRow is one policy of the aging study.
type AblationAgingRow struct {
	Policy    string
	MaxWearS  float64 // accelerated seconds on the most-aged core
	Imbalance float64 // max/mean wear
}

// AblationAgingResult quantifies how dark-silicon rotation levels
// temperature-driven wear (the Hayat-style reliability angle of §1).
type AblationAgingResult struct {
	Rows     []AblationAgingRow
	Duration float64
}

// AblationAging integrates an Arrhenius wear model over 10 s transients of
// the same workload mapped statically (contiguous, checkerboard) and with
// checkerboard rotation. Rotation both lowers the hottest core's wear and
// levels wear across the chip.
func AblationAging() (*AblationAgingResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	const instances = 6
	sched, err := rotate.New(p.Floorplan, a, rotate.Options{
		Instances: instances, FGHz: 3.6, Phases: 2, PeriodS: 1e-3,
		Base: mapping.Checkerboard,
	})
	if err != nil {
		return nil, err
	}
	contig, err := buildAppPlanInstances2(p, a, instances, 8, 3.6, mapping.Contiguous)
	if err != nil {
		return nil, err
	}
	level := p.Ladder.Nearest(3.6)
	res := &AblationAgingResult{Duration: 10}
	run := func(label string, provider sim.PlanProvider) error {
		integ, err := aging.NewIntegrator(aging.DefaultModel(), p.NumCores())
		if err != nil {
			return err
		}
		opts := sim.Options{
			Duration:      res.Duration,
			ControlPeriod: 0.5e-3,
			Observer: func(_ float64, temps, _ []float64) error {
				return integ.Add(0.5e-3, temps)
			},
		}
		if _, err := sim.RunDynamic(p, provider, boost.Constant{Level: level}, p.Ladder, opts); err != nil {
			return err
		}
		maxWear, _ := integ.MaxWear()
		res.Rows = append(res.Rows, AblationAgingRow{
			Policy: label, MaxWearS: maxWear, Imbalance: integ.Imbalance(),
		})
		return nil
	}
	if err := run("static contiguous", sim.StaticPlan{Plan: contig}); err != nil {
		return nil, err
	}
	if err := run("static checkerboard", sim.StaticPlan{Plan: sched.Phases[0]}); err != nil {
		return nil, err
	}
	if err := run("rotated (2 phases, 1 ms)", sched); err != nil {
		return nil, err
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationAgingResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: wear balancing (6× swaptions @3.6 GHz, 16 nm, %.0f s, Arrhenius Ea=0.8 eV)", r.Duration),
		Columns: []string{"policy", "max wear [acc. s]", "imbalance (max/mean)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, fmt.Sprintf("%.2f", row.MaxWearS), fmt.Sprintf("%.2f", row.Imbalance))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationAgingResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationRotationRow is one mapping policy of the rotation study.
type AblationRotationRow struct {
	Policy   string
	AvgGIPS  float64
	MaxTempC float64
}

// AblationRotationResult compares static mappings against rotation at
// identical instantaneous active-core count and frequency.
type AblationRotationResult struct {
	Rows    []AblationRotationRow
	PeriodS float64
}

// AblationRotation runs 6 swaptions instances (48 cores) at 3.6 GHz for
// 10 s under three policies: static contiguous, static checkerboard, and
// checkerboard-parity rotation with a 1 ms period.
func AblationRotation() (*AblationRotationResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	const instances = 6
	sched, err := rotate.New(p.Floorplan, a, rotate.Options{
		Instances: instances, FGHz: 3.6, Phases: 2, PeriodS: 1e-3,
		Base: mapping.Checkerboard,
	})
	if err != nil {
		return nil, err
	}
	contig, err := buildAppPlanInstances2(p, a, instances, 8, 3.6, mapping.Contiguous)
	if err != nil {
		return nil, err
	}
	level := p.Ladder.Nearest(3.6)
	opts := sim.Options{Duration: 10, ControlPeriod: 0.5e-3}
	res := &AblationRotationResult{PeriodS: sched.PeriodS}
	run := func(label string, provider sim.PlanProvider) error {
		r, err := sim.RunDynamic(p, provider, boost.Constant{Level: level}, p.Ladder, opts)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, AblationRotationRow{Policy: label, AvgGIPS: r.AvgGIPS, MaxTempC: r.MaxTempC})
		return nil
	}
	if err := run("static contiguous", sim.StaticPlan{Plan: contig}); err != nil {
		return nil, err
	}
	if err := run("static checkerboard", sim.StaticPlan{Plan: sched.Phases[0]}); err != nil {
		return nil, err
	}
	if err := run("rotated (2 phases, 1 ms)", sched); err != nil {
		return nil, err
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationRotationResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Ablation: spatio-temporal rotation (6× swaptions @3.6 GHz, 16 nm, 10 s)",
		Columns: []string{"policy", "avg GIPS", "max temp [°C]"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy, fmt.Sprintf("%.1f", row.AvgGIPS), fmt.Sprintf("%.2f", row.MaxTempC))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationRotationResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationGridRow is one resolution of the grid study.
type AblationGridRow struct {
	SpreaderN int
	SinkN     int
	Nodes     int
	PeakC     float64
	BuildSec  float64
}

// AblationGridResult quantifies the spreader/sink grid-resolution choice.
type AblationGridResult struct {
	Rows []AblationGridRow
}

// AblationGrid evaluates the reference workload (52 contiguous cores at
// 3.77 W, the Fig. 8 operating point) at several spreader/sink grid
// resolutions, reporting the peak temperature and the model build time.
// The default (8×8 spreader, 10×10 sink) should sit within a fraction of
// a degree of the finest grid.
func AblationGrid() (*AblationGridResult, error) {
	fp, err := core.NewPlatform(tech.Node16)
	if err != nil {
		return nil, err
	}
	power := make([]float64, 100)
	for i := 0; i < 52; i++ {
		power[i] = 3.77
	}
	res := &AblationGridResult{}
	for _, n := range []int{2, 4, 8, 16} {
		cfg := thermal.DefaultConfig(fp.Floorplan.DieW, fp.Floorplan.DieH, 10, 10)
		cfg.Layers[2].Nx, cfg.Layers[2].Ny = n, n
		cfg.Layers[3].Nx, cfg.Layers[3].Ny = n+2, n+2
		start := time.Now()
		m, err := thermal.NewModel(fp.Floorplan, cfg)
		if err != nil {
			return nil, err
		}
		build := time.Since(start).Seconds()
		peak, _, err := m.PeakSteadyState(power)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationGridRow{
			SpreaderN: n, SinkN: n + 2, Nodes: m.NumNodes(), PeakC: peak, BuildSec: build,
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationGridResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Ablation: spreader/sink grid resolution (52 cores × 3.77 W, 16 nm)",
		Columns: []string{"spreader", "sink", "RC nodes", "peak [°C]", "build [s]"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%dx%d", row.SpreaderN, row.SpreaderN),
			fmt.Sprintf("%dx%d", row.SinkN, row.SinkN),
			fmt.Sprintf("%d", row.Nodes),
			fmt.Sprintf("%.2f", row.PeakC),
			fmt.Sprintf("%.3f", row.BuildSec))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationGridResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationHoldBandRow is one hold-band setting.
type AblationHoldBandRow struct {
	BandC      float64
	AvgGIPS    float64
	MaxTempC   float64
	OvershootC float64
	DTMEvents  int
}

// AblationHoldBandResult quantifies the closed-loop hold band.
type AblationHoldBandResult struct {
	Rows []AblationHoldBandRow
	TDTM float64
}

// AblationHoldBand runs the Fig. 11 workload for 5 s with hold bands of
// 0, 0.2 (default), 0.5 and 1.0 °C, reporting overshoot above TDTM and
// average performance. Band 0 overshoots until the DTM guard trips; wide
// bands give up boost headroom.
func AblationHoldBand() (*AblationHoldBandResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	x, err := apps.ByName("x264")
	if err != nil {
		return nil, err
	}
	plan, err := instancesPlan(p, x, 12, 3.0)
	if err != nil {
		return nil, err
	}
	constLevel, err := boost.FindConstantLevel(p, plan, p.BoostLadder, p.TDTM)
	if err != nil {
		return nil, err
	}
	res := &AblationHoldBandResult{TDTM: p.TDTM}
	for _, band := range []float64{0, 0.2, 0.5, 1.0} {
		ctrl, err := boost.NewClosed(p.TDTM, constLevel, len(p.BoostLadder.Points)-1)
		if err != nil {
			return nil, err
		}
		ctrl.HoldBandC = band
		r, err := sim.Run(p, plan, ctrl, p.BoostLadder, sim.Options{
			Duration:      5,
			ControlPeriod: 1e-3,
			StartSteady:   true,
		})
		if err != nil {
			return nil, err
		}
		over := r.MaxTempC - p.TDTM
		if over < 0 {
			over = 0
		}
		res.Rows = append(res.Rows, AblationHoldBandRow{
			BandC: band, AvgGIPS: r.AvgGIPS, MaxTempC: r.MaxTempC,
			OvershootC: over, DTMEvents: r.DTMEvents,
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationHoldBandResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: boost hold band (12× x264 @16nm, TDTM = %.0f °C, 5 s)", r.TDTM),
		Columns: []string{"band [°C]", "avg GIPS", "max temp [°C]", "overshoot [°C]", "DTM events"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.1f", row.BandC),
			fmt.Sprintf("%.1f", row.AvgGIPS),
			fmt.Sprintf("%.2f", row.MaxTempC),
			fmt.Sprintf("%.2f", row.OvershootC),
			fmt.Sprintf("%d", row.DTMEvents))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationHoldBandResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationStrategyRow is one placement strategy.
type AblationStrategyRow struct {
	Strategy  string
	SafeCores int
	TSPatMax  float64 // mapping-specific TSP at that core count, W
}

// AblationStrategiesResult compares placement strategies.
type AblationStrategiesResult struct {
	Rows []AblationStrategyRow
	FGHz float64
}

// AblationStrategies reports, per placement strategy, the maximum number
// of swaptions cores that stay below TDTM at 3.6 GHz, plus the uniform
// TSP budget of that strategy's placement — the quantitative version of
// Figure 8's patterning argument.
func AblationStrategies(ctx context.Context) (*AblationStrategiesResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	calc, err := tsp.New(p.Thermal, p.TDTM)
	if err != nil {
		return nil, err
	}
	res := &AblationStrategiesResult{FGHz: 3.6}
	names := []string{"contiguous", "checkerboard", "periphery", "maxspread"}
	strategies := mapping.Strategies()
	// One incremental TSP updater serves every strategy: consecutive
	// placements overlap heavily, so SetActive applies row-sum deltas
	// for the membership changes instead of rebuilding each set.
	upd, err := calc.Incremental(ctx)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		strat := strategies[name]
		n, err := p.MaxCoresUnderTemp(a, res.FGHz, strat)
		if err != nil {
			return nil, err
		}
		row := AblationStrategyRow{Strategy: name, SafeCores: n}
		if n > 0 {
			cores, err := strat(p.Floorplan, n)
			if err != nil {
				return nil, err
			}
			if err := upd.SetActive(cores); err != nil {
				return nil, err
			}
			if row.TSPatMax, err = upd.TSP(); err != nil {
				return nil, err
			}
		}
		res.Rows = append(res.Rows, row)
	}
	// The TSP best-case greedy as an upper-bound reference.
	bestBudget, bestCores, err := calc.BestCase(ctx, 61)
	if err != nil {
		return nil, err
	}
	_ = bestCores
	res.Rows = append(res.Rows, AblationStrategyRow{
		Strategy: "tsp-greedy (61 cores)", SafeCores: 61, TSPatMax: bestBudget,
	})
	return res, nil
}

// Tables implements Tabler.
func (r *AblationStrategiesResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Ablation: placement strategies (swaptions @%.1f GHz, 16 nm, TDTM 80 °C)", r.FGHz),
		Columns: []string{"strategy", "max safe cores", "TSP at that mapping [W/core]"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Strategy, fmt.Sprintf("%d", row.SafeCores), fmt.Sprintf("%.2f", row.TSPatMax))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationStrategiesResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationLadderRow is one DVFS step granularity.
type AblationLadderRow struct {
	StepGHz  float64
	Levels   int
	BestGIPS float64
	BestFGHz float64
}

// AblationLadderResult quantifies the 0.2 GHz ladder-step choice.
type AblationLadderResult struct {
	Rows []AblationLadderRow
}

// AblationLadderStep re-runs the scenario-2 operating-point search for
// x264 (12 instances, 16 nm) with coarser and finer ladders under a tight
// 100 W budget, where the chosen frequency sits strictly inside the
// ladder. The paper's 0.2 GHz step should cost little against a 0.05 GHz
// ladder.
func AblationLadderStep() (*AblationLadderResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	x, err := apps.ByName("x264")
	if err != nil {
		return nil, err
	}
	res := &AblationLadderResult{}
	for _, step := range []float64{0.05, 0.1, 0.2, 0.4} {
		ladder, err := newLadderWithStep(p, step)
		if err != nil {
			return nil, err
		}
		// Shallow platform copy with the alternative ladder; the search
		// only reads the platform.
		alt := *p
		alt.Ladder = ladder
		cfg, err := alt.BestDVFSConfig(x, 12, 100)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationLadderRow{
			StepGHz: step, Levels: len(ladder.Points), BestGIPS: cfg.GIPS, BestFGHz: cfg.FGHz,
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationLadderResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Ablation: DVFS ladder granularity (x264, 12 instances, 100 W, 16 nm)",
		Columns: []string{"step [GHz]", "levels", "best GIPS", "best f [GHz]"},
	}
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.StepGHz),
			fmt.Sprintf("%d", row.Levels),
			fmt.Sprintf("%.1f", row.BestGIPS),
			fmt.Sprintf("%.2f", row.BestFGHz))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationLadderResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// AblationVariabilityRow is one policy of the variability study.
type AblationVariabilityRow struct {
	Policy      string
	TotalPowerW float64
	PeakC       float64
	MeanLeakMul float64 // mean leakage multiplier of the selected cores
}

// AblationVariabilityResult compares variability-oblivious and
// variability-aware core selection (the DaSim angle of §4).
type AblationVariabilityResult struct {
	Rows []AblationVariabilityRow
}

// AblationVariability generates a deterministic within-die variation map
// (lognormal leakage, σ = 0.25, half systematic) and maps 7 swaptions
// instances (56 cores) at 3.6 GHz twice: with the standard periphery
// patterning and with the variability-aware selection that blends thermal
// position with the leakage map. Same performance; the aware mapping
// spends less leakage power while staying thermally comparable.
func AblationVariability() (*AblationVariabilityResult, error) {
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	vmap, err := variability.Generate(p.Floorplan, variability.Options{Seed: 2015})
	if err != nil {
		return nil, err
	}
	// Nominal leakage share of the operating point, from Equation (1).
	model, err := a.ModelFor(p.Node)
	if err != nil {
		return nil, err
	}
	vdd, err := p.Curve.VoltageFor(3.6)
	if err != nil {
		return nil, err
	}
	leakW := model.Leak.Power(vdd, p.TDTM)

	res := &AblationVariabilityResult{}
	run := func(label string, strat mapping.Strategy) error {
		plan, err := buildAppPlanInstances2(p, a, 7, 8, 3.6, strat) // 56 cores
		if err != nil {
			return err
		}
		power, err := p.PlanPower(plan, p.TDTM, core.BusyWait)
		if err != nil {
			return err
		}
		if err := vmap.ApplyLeak(power, leakW); err != nil {
			return err
		}
		peak, _, err := p.Thermal.PeakSteadyState(power)
		if err != nil {
			return err
		}
		var total, mulSum float64
		nActive := 0
		for c, w := range power {
			total += w
			if w > 0 {
				mulSum += vmap.LeakMult[c]
				nActive++
			}
		}
		res.Rows = append(res.Rows, AblationVariabilityRow{
			Policy:      label,
			TotalPowerW: total,
			PeakC:       peak,
			MeanLeakMul: mulSum / float64(nActive),
		})
		return nil
	}
	if err := run("oblivious (periphery)", mapping.PeripheryFirst); err != nil {
		return nil, err
	}
	if err := run("variability-aware", vmap.AwareStrategy(mapping.PeripheryFirst)); err != nil {
		return nil, err
	}
	return res, nil
}

// Tables implements Tabler.
func (r *AblationVariabilityResult) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Ablation: variability-aware core selection (7× swaptions @3.6 GHz, 16 nm, σ_leak = 0.25)",
		Columns: []string{"policy", "total power [W]", "peak [°C]", "mean leak multiplier"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			fmt.Sprintf("%.1f", row.TotalPowerW),
			fmt.Sprintf("%.2f", row.PeakC),
			fmt.Sprintf("%.3f", row.MeanLeakMul))
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *AblationVariabilityResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }
