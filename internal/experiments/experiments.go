// Package experiments reproduces every table and figure of the paper's
// evaluation: one Run function per figure (Fig1 … Fig14), each returning a
// typed result with a Render method that prints the same rows/series the
// paper reports. cmd/darksim dispatches into this package; bench_test.go
// at the repository root wraps each experiment in a benchmark.
package experiments

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/report"
	"darksim/internal/tech"
)

// ErrOptions reports invalid experiment options (negative durations,
// non-positive sweep steps, …). Callers can match it with errors.Is.
var ErrOptions = errors.New("experiments: invalid options")

// platformKey identifies a cached platform.
type platformKey struct {
	node  tech.Node
	cores int
}

// platEntry is one cache slot: the once serializes the build of this key
// only, so distinct keys factor their thermal networks in parallel while
// duplicate requests share a single build.
type platEntry struct {
	once sync.Once
	p    *core.Platform
	err  error
	elem *list.Element // position in platLRU; Value is the platformKey
}

var (
	platMu    sync.Mutex // guards the map/list/cap, never held across a build
	platCache = map[platformKey]*platEntry{}
	platLRU   = list.New() // front = most recently used
	platCap   int          // 0 or negative = unbounded

	// buildPlatform is swapped by tests to observe build concurrency.
	buildPlatform = func(node tech.Node, cores int) (*core.Platform, error) {
		return core.NewPlatformWith(node, core.Options{Cores: cores})
	}
)

// platformFor returns a cached Platform: building one factors a Cholesky
// of the thermal network, which is worth sharing across experiments. The
// result (including a build error) is cached per (node, cores) key;
// concurrent callers for different keys build concurrently. When a size
// cap is set (SetPlatformCacheCap) the least recently used entry is
// evicted; callers already holding an evicted entry keep using it safely.
func platformFor(node tech.Node, cores int) (*core.Platform, error) {
	key := platformKey{node, cores}
	platMu.Lock()
	e := platCache[key]
	if e == nil {
		e = &platEntry{}
		platCache[key] = e
		e.elem = platLRU.PushFront(key)
		evictPlatformsLocked()
	} else {
		platLRU.MoveToFront(e.elem)
	}
	platMu.Unlock()
	e.once.Do(func() { e.p, e.err = buildPlatform(node, cores) })
	return e.p, e.err
}

// evictPlatformsLocked drops least-recently-used entries until the cache
// fits the cap. Callers must hold platMu.
func evictPlatformsLocked() {
	if platCap <= 0 {
		return
	}
	for platLRU.Len() > platCap {
		back := platLRU.Back()
		delete(platCache, back.Value.(platformKey))
		platLRU.Remove(back)
	}
}

// PlatformFor exposes the shared platform cache: the service layer and
// external tools reuse the same factored thermal networks the experiments
// run on, instead of paying a fresh Cholesky per request.
func PlatformFor(node tech.Node, cores int) (*core.Platform, error) {
	return platformFor(node, cores)
}

// SetPlatformCacheCap bounds the platform cache to at most n entries
// (LRU eviction); n <= 0 removes the bound. Long-running daemons set a
// cap so arbitrary (node, cores) request mixes cannot grow the cache
// without bound.
func SetPlatformCacheCap(n int) {
	platMu.Lock()
	defer platMu.Unlock()
	platCap = n
	evictPlatformsLocked()
}

// ResetPlatforms empties the platform cache. In-flight builds are
// unaffected (their entries stay valid for the callers holding them);
// subsequent calls rebuild. Tests use this to isolate cache state.
func ResetPlatforms() {
	platMu.Lock()
	defer platMu.Unlock()
	platCache = map[platformKey]*platEntry{}
	platLRU.Init()
}

// PlatformCacheLen reports the number of cached platforms.
func PlatformCacheLen() int {
	platMu.Lock()
	defer platMu.Unlock()
	return len(platCache)
}

// coresForNode returns the paper's platform size per node (§2.1: "manycore
// systems composed of 100, 198, and 361 cores"): the chip grows as cores
// shrink.
func coresForNode(node tech.Node) int {
	switch node {
	case tech.Node11:
		return 198
	case tech.Node8:
		return 361
	default:
		return 100
	}
}

// CoresForNode exposes the paper's per-node platform size for consumers
// outside this package (e.g. the service layer's TSP endpoint defaults).
func CoresForNode(node tech.Node) int { return coresForNode(node) }

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer) error
}

// Tabler is implemented by every experiment result that can emit its
// rows as structured report.Tables in addition to rendering ASCII. The
// HTTP service marshals these tables as JSON, and `darksim -format json`
// prints them; chart-shaped figures emit their series as long-form
// tables. Every result in Registry and AblationRegistry implements it.
type Tabler interface {
	Tables() []*report.Table
}

// TablesOf extracts the structured tables of a result, reporting whether
// the result supports structured output.
func TablesOf(r Renderer) ([]*report.Table, bool) {
	t, ok := r.(Tabler)
	if !ok {
		return nil, false
	}
	return t.Tables(), true
}

// renderTables renders tables in order — the common body of the Render
// methods whose ASCII output is exactly their structured tables.
func renderTables(w io.Writer, tables []*report.Table) error {
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Experiment couples an id with its runner for the CLI registry. Run
// receives a context for cancellation; experiments without long sweeps
// may ignore it.
type Experiment struct {
	ID          string
	Description string
	Run         func(ctx context.Context) (Renderer, error)
}

// Registry lists all experiments in figure order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "ITRS scaling factors and derived per-node specs (Figure 1)", func(context.Context) (Renderer, error) { return Fig1() }},
		{"fig2", "Frequency vs voltage design space, Eq.(2) (Figure 2)", func(context.Context) (Renderer, error) { return Fig2() }},
		{"fig3", "Power model fit vs synthetic McPAT samples, x264 @22nm (Figure 3)", func(context.Context) (Renderer, error) { return Fig3() }},
		{"fig4", "Speed-up vs parallel threads (Figure 4)", func(context.Context) (Renderer, error) { return Fig4() }},
		{"fig5", "Dark silicon under optimistic/pessimistic TDP (Figure 5)", func(context.Context) (Renderer, error) { return Fig5() }},
		{"fig6", "TDP- vs temperature-constrained dark silicon (Figure 6)", func(context.Context) (Renderer, error) { return Fig6() }},
		{"fig7", "DVFS scenarios: performance and dark silicon (Figure 7)", func(context.Context) (Renderer, error) { return Fig7() }},
		{"fig8", "Dark silicon patterning vs contiguous mapping (Figure 8)", func(context.Context) (Renderer, error) { return Fig8() }},
		{"fig9", "TDPmap vs DsRem (Figure 9)", func(context.Context) (Renderer, error) { return Fig9() }},
		{"fig10", "Performance under TSP across nodes (Figure 10)", func(ctx context.Context) (Renderer, error) { return Fig10(ctx) }},
		{"fig11", "Boosting vs constant frequency transients (Figure 11)", func(ctx context.Context) (Renderer, error) { return Fig11(ctx, DefaultFig11Options()) }},
		{"fig12", "Boost/constant scaling with active cores (Figure 12)", func(ctx context.Context) (Renderer, error) { return Fig12(ctx, DefaultFig12Options()) }},
		{"fig13", "Boost/constant across applications @11nm (Figure 13)", func(ctx context.Context) (Renderer, error) { return Fig13(ctx, DefaultFig13Options()) }},
		{"fig14", "STC vs NTC performance and energy (Figure 14)", func(context.Context) (Renderer, error) { return Fig14() }},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunWithDuration runs one registry entry, overriding the simulated
// duration of the transient experiments (fig11–fig13) when duration > 0.
// Non-transient experiments ignore the override. This is the shared entry
// point of the CLI's -duration flag and the bench harness's shortened
// per-figure runs.
func RunWithDuration(ctx context.Context, e Experiment, duration float64) (Renderer, error) {
	if duration > 0 {
		switch e.ID {
		case "fig11":
			return Fig11(ctx, Fig11Options{DurationS: duration})
		case "fig12":
			return Fig12(ctx, Fig12Options{DurationS: duration})
		case "fig13":
			return Fig13(ctx, Fig13Options{DurationS: duration})
		}
	}
	r, err := e.Run(ctx)
	if err != nil {
		return nil, err
	}
	if r == nil {
		return nil, fmt.Errorf("experiments: %s returned no result", e.ID)
	}
	return r, nil
}

// paperOrder returns the catalog in the paper's per-figure (a)–(g) order:
// x264, blackscholes, bodytrack, ferret, canneal, dedup, swaptions.
func paperOrder() []apps.App {
	order := []string{"x264", "blackscholes", "bodytrack", "ferret", "canneal", "dedup", "swaptions"}
	cat := apps.Catalog()
	rank := make(map[string]int, len(order))
	for i, n := range order {
		rank[n] = i
	}
	sort.SliceStable(cat, func(i, j int) bool { return rank[cat[i].Name] < rank[cat[j].Name] })
	return cat
}
