// Package experiments reproduces every table and figure of the paper's
// evaluation: one Run function per figure (Fig1 … Fig14), each returning a
// typed result with a Render method that prints the same rows/series the
// paper reports. cmd/darksim dispatches into this package; bench_test.go
// at the repository root wraps each experiment in a benchmark.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/tech"
)

// platformKey identifies a cached platform.
type platformKey struct {
	node  tech.Node
	cores int
}

var (
	platMu    sync.Mutex
	platCache = map[platformKey]*core.Platform{}
)

// platformFor returns a cached Platform: building one factors a Cholesky
// of the thermal network, which is worth sharing across experiments.
func platformFor(node tech.Node, cores int) (*core.Platform, error) {
	platMu.Lock()
	defer platMu.Unlock()
	key := platformKey{node, cores}
	if p, ok := platCache[key]; ok {
		return p, nil
	}
	p, err := core.NewPlatformWith(node, core.Options{Cores: cores})
	if err != nil {
		return nil, err
	}
	platCache[key] = p
	return p, nil
}

// coresForNode returns the paper's platform size per node (§2.1: "manycore
// systems composed of 100, 198, and 361 cores"): the chip grows as cores
// shrink.
func coresForNode(node tech.Node) int {
	switch node {
	case tech.Node11:
		return 198
	case tech.Node8:
		return 361
	default:
		return 100
	}
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer) error
}

// Experiment couples an id with its runner for the CLI registry.
type Experiment struct {
	ID          string
	Description string
	Run         func() (Renderer, error)
}

// Registry lists all experiments in figure order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "ITRS scaling factors and derived per-node specs (Figure 1)", func() (Renderer, error) { return Fig1() }},
		{"fig2", "Frequency vs voltage design space, Eq.(2) (Figure 2)", func() (Renderer, error) { return Fig2() }},
		{"fig3", "Power model fit vs synthetic McPAT samples, x264 @22nm (Figure 3)", func() (Renderer, error) { return Fig3() }},
		{"fig4", "Speed-up vs parallel threads (Figure 4)", func() (Renderer, error) { return Fig4() }},
		{"fig5", "Dark silicon under optimistic/pessimistic TDP (Figure 5)", func() (Renderer, error) { return Fig5() }},
		{"fig6", "TDP- vs temperature-constrained dark silicon (Figure 6)", func() (Renderer, error) { return Fig6() }},
		{"fig7", "DVFS scenarios: performance and dark silicon (Figure 7)", func() (Renderer, error) { return Fig7() }},
		{"fig8", "Dark silicon patterning vs contiguous mapping (Figure 8)", func() (Renderer, error) { return Fig8() }},
		{"fig9", "TDPmap vs DsRem (Figure 9)", func() (Renderer, error) { return Fig9() }},
		{"fig10", "Performance under TSP across nodes (Figure 10)", func() (Renderer, error) { return Fig10() }},
		{"fig11", "Boosting vs constant frequency transients (Figure 11)", func() (Renderer, error) { return Fig11(DefaultFig11Options()) }},
		{"fig12", "Boost/constant scaling with active cores (Figure 12)", func() (Renderer, error) { return Fig12(DefaultFig12Options()) }},
		{"fig13", "Boost/constant across applications @11nm (Figure 13)", func() (Renderer, error) { return Fig13(DefaultFig13Options()) }},
		{"fig14", "STC vs NTC performance and energy (Figure 14)", func() (Renderer, error) { return Fig14() }},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// paperOrder returns the catalog in the paper's per-figure (a)–(g) order:
// x264, blackscholes, bodytrack, ferret, canneal, dedup, swaptions.
func paperOrder() []apps.App {
	order := []string{"x264", "blackscholes", "bodytrack", "ferret", "canneal", "dedup", "swaptions"}
	cat := apps.Catalog()
	rank := make(map[string]int, len(order))
	for i, n := range order {
		rank[n] = i
	}
	sort.SliceStable(cat, func(i, j int) bool { return rank[cat[i].Name] < rank[cat[j].Name] })
	return cat
}
