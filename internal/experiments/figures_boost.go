package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"darksim/internal/apps"
	"darksim/internal/boost"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/progress"
	"darksim/internal/report"
	"darksim/internal/runner"
	"darksim/internal/sim"
	"darksim/internal/tech"
	"darksim/internal/vf"
)

// sweepRecordPoints is the recording-grid cap for the table-only sweeps
// (Figures 12 and 13): they report scalar aggregates, not traces, so a
// coarse grid suffices — and since macro-stepped quiet intervals span
// exactly the gaps between recording points, a coarse grid turns a
// 5000-step constant arm into a few dozen macro hops.
const sweepRecordPoints = 64

// checkDuration rejects negative or non-finite durations. Zero is always
// allowed: it selects the figure's default run length.
func checkDuration(fig string, seconds float64) error {
	if seconds < 0 || math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return fmt.Errorf("%w: %s: duration %g s", ErrOptions, fig, seconds)
	}
	return nil
}

// instancesPlan places `instances` 8-thread instances of one application
// with periphery-first patterning.
func instancesPlan(p *core.Platform, a apps.App, instances int, fGHz float64) (*mapping.Plan, error) {
	return buildAppPlanInstances(p, a, instances, apps.MaxThreadsPerInstance, fGHz)
}

func buildAppPlanInstances(p *core.Platform, a apps.App, instances, threads int, fGHz float64) (*mapping.Plan, error) {
	cores, err := mapping.PeripheryFirst(p.Floorplan, instances*threads)
	if err != nil {
		return nil, err
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < instances; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: a, Cores: cores[i*threads : (i+1)*threads], FGHz: fGHz, Threads: threads,
		})
	}
	return plan, plan.Validate()
}

// runBoostPair simulates the boosting controller and the constant-
// frequency baseline on the same plan and returns both results. The two
// transients are independent runs against read-only shared state (sim.Run
// works on a private copy of the plan), so they execute as a pair on the
// shared runner; ctx cancellation is honored between the phases.
//
// Both runs use sim.StepAuto: the boosting arm degrades to exact
// per-period stepping (its controller is stateful) while the constant arm
// macro-steps its quiet intervals, which is where the figure sweeps spend
// almost all of their simulated time. recordPoints caps the stored series
// (0 = sim default); the table-only sweeps pass a small cap so quiet
// intervals collapse into long macro hops.
func runBoostPair(ctx context.Context, p *core.Platform, plan *mapping.Plan, duration float64, recordPoints int) (boostRes, constRes sim.Result, constLevel int, err error) {
	ladder := p.BoostLadder
	if err = ctx.Err(); err != nil {
		return
	}
	constLevel, err = boost.FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		return
	}
	opts := sim.Options{
		Duration:      duration,
		ControlPeriod: 1e-3,
		StartSteady:   true,
		StepMode:      sim.StepAuto,
		RecordPoints:  recordPoints,
	}
	g, _ := runner.WithContext(ctx, 2)
	g.Go(func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		constRes, err = sim.Run(p, plan, boost.Constant{Level: constLevel}, ladder, opts)
		return err
	})
	g.Go(func(ctx context.Context) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		ctrl, err := boost.NewClosed(p.TDTM, constLevel, len(ladder.Points)-1)
		if err != nil {
			return err
		}
		boostRes, err = sim.Run(p, plan, ctrl, ladder, opts)
		return err
	})
	err = g.Wait()
	return
}

// runBoostSweep runs the boost-vs-constant comparison for every plan of
// a table sweep. The two arms want opposite engines: the constant arm is
// provably quiet, so each plan's baseline runs individually under
// sim.StepAuto and macro-steps its intervals; the boosting arm's stateful
// controller must step exactly, period by period — so all boosting arms
// run as one sim.RunBatch, where every control period's triangular solve
// streams the cached thermal factor once across the whole sweep instead
// of once per point. Results are indexed like plans; constLevels[i] is
// plan i's sustainable constant level. label(i) names plan i in errors
// so a failing arm is reported with its sweep identity.
func runBoostSweep(ctx context.Context, p *core.Platform, plans []*mapping.Plan, duration float64, recordPoints int, label func(i int) string) (boostRes, constRes []sim.Result, constLevels []int, err error) {
	ladder := p.BoostLadder
	opts := sim.Options{
		Duration:      duration,
		ControlPeriod: 1e-3,
		StartSteady:   true,
		StepMode:      sim.StepAuto,
		RecordPoints:  recordPoints,
	}
	type constArm struct {
		level int
		res   sim.Result
	}
	// Constant arms (and the level search each boosting controller needs
	// as its floor) are independent macro-stepped runs; fan them out on
	// the pool.
	arms, err := runner.Map(ctx, plans, runner.Options{}, func(ctx context.Context, i int, plan *mapping.Plan) (constArm, error) {
		fail := func(err error) (constArm, error) {
			return constArm{}, fmt.Errorf("%s: %w", label(i), err)
		}
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		level, err := boost.FindConstantLevel(p, plan, ladder, p.TDTM)
		if err != nil {
			return fail(err)
		}
		res, err := sim.Run(p, plan, boost.Constant{Level: level}, ladder, opts)
		if err != nil {
			return fail(err)
		}
		return constArm{level: level, res: res}, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	lanes := make([]sim.BatchRun, len(plans))
	constRes = make([]sim.Result, len(plans))
	constLevels = make([]int, len(plans))
	for i, arm := range arms {
		constRes[i] = arm.res
		constLevels[i] = arm.level
		ctrl, err := boost.NewClosed(p.TDTM, arm.level, len(ladder.Points)-1)
		if err != nil {
			return nil, nil, nil, err
		}
		lanes[i] = sim.BatchRun{Plan: plans[i], Ctrl: ctrl}
	}
	boostRes, err = sim.RunBatch(ctx, p, lanes, ladder, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return boostRes, constRes, constLevels, nil
}

// Fig11Options parameterizes the transient run length.
type Fig11Options struct {
	DurationS float64
	Instances int
}

// DefaultFig11Options returns the paper's setup (100 s, 12 instances).
// The CLI exposes a shorter duration for quick runs.
func DefaultFig11Options() Fig11Options { return Fig11Options{DurationS: 100, Instances: 12} }

// Validate rejects nonsensical options; zero values mean "use default".
func (o Fig11Options) Validate() error {
	if err := checkDuration("fig11", o.DurationS); err != nil {
		return err
	}
	if o.Instances < 0 {
		return fmt.Errorf("%w: fig11: %d instances", ErrOptions, o.Instances)
	}
	return nil
}

// Fig11Result holds the transient traces of Figure 11.
type Fig11Result struct {
	Boost     sim.Result
	Constant  sim.Result
	ConstGHz  float64
	AvgBoost  float64
	AvgConst  float64
	TDTM      float64
	Instances int
	DurationS float64
}

// Fig11 runs 12 instances of x264 (8 threads each) at 16 nm under both
// controllers.
func Fig11(ctx context.Context, opt Fig11Options) (*Fig11Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.DurationS == 0 {
		opt.DurationS = 100
	}
	if opt.Instances == 0 {
		opt.Instances = 12
	}
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	x, err := apps.ByName("x264")
	if err != nil {
		return nil, err
	}
	plan, err := instancesPlan(p, x, opt.Instances, 3.0)
	if err != nil {
		return nil, err
	}
	// fig11 plots full traces, so it keeps the default recording grid.
	b, c, constLevel, err := runBoostPair(ctx, p, plan, opt.DurationS, 0)
	if err != nil {
		return nil, fmt.Errorf("fig11: %d x264 instances: %w", opt.Instances, err)
	}
	res := &Fig11Result{
		Boost:     b,
		Constant:  c,
		ConstGHz:  p.BoostLadder.Points[constLevel].FGHz,
		AvgBoost:  b.AvgGIPS,
		AvgConst:  c.AvgGIPS,
		TDTM:      p.TDTM,
		Instances: opt.Instances,
		DurationS: opt.DurationS,
	}
	// fig11 is a single transient pair, not a sweep: it streams one
	// point — the summary table — the moment both controllers finish.
	if progress.Enabled(ctx) {
		progress.Emit(ctx, progress.Point{Table: res.summaryTable(), Done: 1, Total: 1})
	}
	return res, nil
}

// seriesTable emits named time series in long form (one row per sample),
// downsampled like the ASCII charts.
func seriesTable(title, unit string, names []string, series []metrics.Series) *report.Table {
	t := &report.Table{Title: title, Columns: []string{"series", "t [s]", unit}}
	for i, s := range series {
		d := s.Downsample(120)
		for j := range d.X {
			t.AddRow(names[i],
				fmt.Sprintf("%.3f", d.X[j]),
				fmt.Sprintf("%.3f", d.Y[j]))
		}
	}
	return t
}

// summaryTable is the transient summary grid — also the per-point
// fragment fig11 streams to a progress sink.
func (r *Fig11Result) summaryTable() *report.Table {
	sum := &report.Table{
		Title:   fmt.Sprintf("Figure 11: %d x264 instances @16nm — %.0f s transient summary", r.Instances, r.DurationS),
		Columns: []string{"controller", "avg GIPS", "max temp [°C]"},
	}
	sum.AddRow("boosting", fmt.Sprintf("%.1f", r.AvgBoost), fmt.Sprintf("%.2f", r.Boost.MaxTempC))
	sum.AddRow(fmt.Sprintf("constant (%.1f GHz)", r.ConstGHz),
		fmt.Sprintf("%.1f", r.AvgConst), fmt.Sprintf("%.2f", r.Constant.MaxTempC))
	sum.AddNote("TDTM = %.0f °C", r.TDTM)
	return sum
}

// Tables implements Tabler: a summary table plus the downsampled
// performance and temperature traces in long form.
func (r *Fig11Result) Tables() []*report.Table {
	names := []string{"boosting", "constant"}
	return []*report.Table{
		r.summaryTable(),
		seriesTable("performance trace", "GIPS", names,
			[]metrics.Series{r.Boost.GIPS, r.Constant.GIPS}),
		seriesTable("max temperature trace", "temp [°C]", names,
			[]metrics.Series{r.Boost.PeakTemp, r.Constant.PeakTemp}),
	}
}

// Render implements Renderer.
func (r *Fig11Result) Render(w io.Writer) error {
	gips := &report.Chart{
		Title:  fmt.Sprintf("Figure 11: %d x264 instances @16nm — performance over %.0f s", r.Instances, r.DurationS),
		XLabel: "time [s]",
	}
	bg := r.Boost.GIPS.Downsample(120)
	cg := r.Constant.GIPS.Downsample(120)
	if err := gips.RenderLines(w, []string{"boosting", "constant"}, [][]float64{bg.X, cg.X}, [][]float64{bg.Y, cg.Y}); err != nil {
		return err
	}
	temp := &report.Chart{Title: "max temperature [°C]", XLabel: "time [s]"}
	bt := r.Boost.PeakTemp.Downsample(120)
	ct := r.Constant.PeakTemp.Downsample(120)
	if err := temp.RenderLines(w, []string{"boosting", "constant"}, [][]float64{bt.X, ct.X}, [][]float64{bt.Y, ct.Y}); err != nil {
		return err
	}
	fmt.Fprintf(w, "averages: boosting %.1f GIPS vs constant %.1f GIPS (constant level %.1f GHz)\n",
		r.AvgBoost, r.AvgConst, r.ConstGHz)
	fmt.Fprintf(w, "max temperature: boosting %.2f °C (oscillating at TDTM=%.0f °C), constant %.2f °C\n",
		r.Boost.MaxTempC, r.TDTM, r.Constant.MaxTempC)
	return nil
}

// Fig12Options parameterizes the active-core sweep.
type Fig12Options struct {
	DurationS float64
	StepCores int
}

// DefaultFig12Options uses a short per-point transient: the sweep has
// ~12 points and each needs only the sustained regime.
func DefaultFig12Options() Fig12Options { return Fig12Options{DurationS: 5, StepCores: 8} }

// Validate rejects nonsensical options; zero values mean "use default".
// A negative StepCores would previously reach `NumCores % StepCores`
// (integer divide-by-zero for 0) or a non-advancing sweep loop; it is now
// a reportable error instead of a panic.
func (o Fig12Options) Validate() error {
	if err := checkDuration("fig12", o.DurationS); err != nil {
		return err
	}
	if o.StepCores < 0 {
		return fmt.Errorf("%w: fig12: step of %d cores", ErrOptions, o.StepCores)
	}
	return nil
}

// Fig12Point is one x-position of Figure 12.
type Fig12Point struct {
	ActiveCores int
	BoostGIPS   float64
	ConstGIPS   float64
	BoostPowerW float64
	ConstPowerW float64
}

// Fig12Result is the Figure 12 sweep.
type Fig12Result struct {
	Points []Fig12Point
}

// Fig12 sweeps the active-core count for x264 at 16 nm ("a new
// application instance every 8 active cores") and reports total
// performance and peak power for boosting vs constant frequency.
func Fig12(ctx context.Context, opt Fig12Options) (*Fig12Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.DurationS == 0 {
		opt.DurationS = 5
	}
	if opt.StepCores == 0 {
		opt.StepCores = 8
	}
	p, err := platformFor(tech.Node16, 100)
	if err != nil {
		return nil, err
	}
	x, err := apps.ByName("x264")
	if err != nil {
		return nil, err
	}
	var coreCounts []int
	for cores := opt.StepCores; cores <= p.NumCores(); cores += opt.StepCores {
		if cores/apps.MaxThreadsPerInstance > 0 {
			coreCounts = append(coreCounts, cores)
		}
	}
	// Build every sweep point's plan, then hand the whole sweep to
	// runBoostSweep: constant baselines fan out as independent
	// macro-stepped runs (table-only sweep, so the coarse recording grid
	// turns quiet intervals into long hops) while all boosting arms
	// advance as one lockstep batch sharing each period's thermal solve.
	// With a progress sink on the context, the per-point fragments stream
	// once the batch completes, in sweep order.
	plans := make([]*mapping.Plan, len(coreCounts))
	for i, cores := range coreCounts {
		plan, err := instancesPlan(p, x, cores/apps.MaxThreadsPerInstance, 3.0)
		if err != nil {
			return nil, fmt.Errorf("fig12: sweep point %d active cores: %w", cores, err)
		}
		plans[i] = plan
	}
	boostRes, constRes, _, err := runBoostSweep(ctx, p, plans, opt.DurationS, sweepRecordPoints,
		func(i int) string { return fmt.Sprintf("sweep point %d active cores", coreCounts[i]) })
	if err != nil {
		return nil, fmt.Errorf("fig12: %w", err)
	}
	points := make([]Fig12Point, len(coreCounts))
	for i, cores := range coreCounts {
		points[i] = Fig12Point{
			ActiveCores: cores,
			BoostGIPS:   boostRes[i].AvgGIPS,
			ConstGIPS:   constRes[i].AvgGIPS,
			BoostPowerW: boostRes[i].PeakPowerW,
			ConstPowerW: constRes[i].PeakPowerW,
		}
		if progress.Enabled(ctx) {
			frag := fig12Table(fmt.Sprintf("Figure 12 — sweep point: %d active cores", cores))
			frag.AddRow(fig12Row(points[i])...)
			progress.Emit(ctx, progress.Point{
				Table: frag, Done: i + 1, Total: len(coreCounts),
			})
		}
	}
	return &Fig12Result{Points: points}, nil
}

// fig12Table returns an empty grid in Figure 12's column shape; the full
// result and each streamed fragment share it, so a fragment row is
// cell-identical to the corresponding row of the final table.
func fig12Table(title string) *report.Table {
	return &report.Table{
		Title:   title,
		Columns: []string{"active cores", "boost GIPS", "const GIPS", "boost peak W", "const peak W"},
	}
}

// fig12Row formats one sweep point as table cells.
func fig12Row(pt Fig12Point) []string {
	return []string{
		fmt.Sprintf("%d", pt.ActiveCores),
		fmt.Sprintf("%.0f", pt.BoostGIPS),
		fmt.Sprintf("%.0f", pt.ConstGIPS),
		fmt.Sprintf("%.0f", pt.BoostPowerW),
		fmt.Sprintf("%.0f", pt.ConstPowerW),
	}
}

// Tables implements Tabler.
func (r *Fig12Result) Tables() []*report.Table {
	t := fig12Table("Figure 12: x264 @16nm — performance and power vs active cores")
	for _, pt := range r.Points {
		t.AddRow(fig12Row(pt)...)
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig12Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// Fig13Options parameterizes the per-application comparison.
type Fig13Options struct {
	DurationS float64
	Instances []int
}

// DefaultFig13Options mirrors the paper's 12- and 24-instance scenarios.
func DefaultFig13Options() Fig13Options {
	return Fig13Options{DurationS: 4, Instances: []int{12, 24}}
}

// Validate rejects nonsensical options; a zero duration or empty instance
// list means "use default", but explicit non-positive instance counts are
// errors.
func (o Fig13Options) Validate() error {
	if err := checkDuration("fig13", o.DurationS); err != nil {
		return err
	}
	for _, n := range o.Instances {
		if n <= 0 {
			return fmt.Errorf("%w: fig13: %d instances", ErrOptions, n)
		}
	}
	return nil
}

// Fig13Row is one (app, instance-count) scenario.
type Fig13Row struct {
	App        string
	Instances  int
	BoostGIPS  float64
	ConstGIPS  float64
	BoostPeakW float64
	ConstPeakW float64
	MinVdd     float64
	MinFGHz    float64
}

// Fig13Result is the Figure 13 table at 11 nm.
type Fig13Result struct {
	Rows    []Fig13Row
	MinVdd  float64 // minimum utilized voltage across all scenarios
	MinFGHz float64
	Region  vf.Region
}

// Fig13 runs all seven applications with 12 and 24 instances (8 threads
// each) on the 198-core 11 nm platform under both controllers. It also
// records the minimum utilized voltage/frequency — the paper's evidence
// that the thermal constraints keep the system in the STC region.
func Fig13(ctx context.Context, opt Fig13Options) (*Fig13Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if opt.DurationS == 0 {
		opt.DurationS = 4
	}
	if len(opt.Instances) == 0 {
		opt.Instances = []int{12, 24}
	}
	p, err := platformFor(tech.Node11, 198)
	if err != nil {
		return nil, err
	}
	type scenario struct {
		app       apps.App
		instances int
	}
	var scenarios []scenario
	for _, a := range paperOrder() {
		for _, instances := range opt.Instances {
			scenarios = append(scenarios, scenario{app: a, instances: instances})
		}
	}
	// Build every scenario's plan, then hand the sweep to runBoostSweep:
	// constant baselines fan out as independent macro-stepped runs, all
	// boosting arms advance as one lockstep batch sharing each period's
	// thermal solve. With a progress sink on the context, the per-scenario
	// fragments stream once the batch completes, in sweep order.
	plans := make([]*mapping.Plan, len(scenarios))
	for i, sc := range scenarios {
		plan, err := instancesPlan(p, sc.app, sc.instances, 3.0)
		if err != nil {
			return nil, fmt.Errorf("fig13: scenario %s x%d instances: %w", sc.app.Name, sc.instances, err)
		}
		plans[i] = plan
	}
	boostRes, constRes, constLevels, err := runBoostSweep(ctx, p, plans, opt.DurationS, sweepRecordPoints,
		func(i int) string { return fmt.Sprintf("scenario %s x%d instances", scenarios[i].app.Name, scenarios[i].instances) })
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	rows := make([]Fig13Row, len(scenarios))
	for i, sc := range scenarios {
		constPt := p.BoostLadder.Points[constLevels[i]]
		rows[i] = Fig13Row{
			App:        sc.app.Name,
			Instances:  sc.instances,
			BoostGIPS:  boostRes[i].AvgGIPS,
			ConstGIPS:  constRes[i].AvgGIPS,
			BoostPeakW: boostRes[i].PeakPowerW,
			ConstPeakW: constRes[i].PeakPowerW,
			MinVdd:     constPt.Vdd,
			MinFGHz:    constPt.FGHz,
		}
		if progress.Enabled(ctx) {
			frag := fig13Table(fmt.Sprintf("Figure 13 — scenario: %s x%d instances", sc.app.Name, sc.instances))
			frag.AddRow(fig13Row(rows[i])...)
			progress.Emit(ctx, progress.Point{
				Table: frag, Done: i + 1, Total: len(scenarios),
			})
		}
	}
	res := &Fig13Result{Rows: rows, MinVdd: 99, MinFGHz: 99}
	for _, row := range rows {
		if row.MinVdd < res.MinVdd {
			res.MinVdd = row.MinVdd
			res.MinFGHz = row.MinFGHz
		}
	}
	curve, err := vf.CurveFor(tech.Node11)
	if err != nil {
		return nil, err
	}
	res.Region = curve.RegionOf(res.MinVdd)
	return res, nil
}

// fig13Table returns an empty grid in Figure 13's column shape, shared
// by the full result and the streamed per-scenario fragments.
func fig13Table(title string) *report.Table {
	return &report.Table{
		Title:   title,
		Columns: []string{"app", "instances", "boost GIPS", "const GIPS", "boost peak W", "const peak W", "const GHz"},
	}
}

// fig13Row formats one scenario as table cells.
func fig13Row(row Fig13Row) []string {
	return []string{
		row.App,
		fmt.Sprintf("%d", row.Instances),
		fmt.Sprintf("%.0f", row.BoostGIPS),
		fmt.Sprintf("%.0f", row.ConstGIPS),
		fmt.Sprintf("%.0f", row.BoostPeakW),
		fmt.Sprintf("%.0f", row.ConstPeakW),
		fmt.Sprintf("%.1f", row.MinFGHz),
	}
}

// Tables implements Tabler.
func (r *Fig13Result) Tables() []*report.Table {
	t := fig13Table("Figure 13: boosting vs constant frequency, 11 nm (198 cores), 8 threads/instance")
	for _, row := range r.Rows {
		t.AddRow(fig13Row(row)...)
	}
	t.AddNote("minimum utilized V/f across scenarios: %.2f V / %.1f GHz — %s region",
		r.MinVdd, r.MinFGHz, r.Region)
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig13Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// Fig14Row is one application of the STC vs NTC study.
type Fig14Row struct {
	App string
	// NTC: 8 threads at 1 GHz / low voltage.
	NTCGIPS     float64
	NTCEnergyKJ float64
	// STC1/STC2: 1 and 2 threads at ISO-performance frequencies
	// (clamped to the STC floor).
	STC1FGHz     float64
	STC1GIPS     float64
	STC1EnergyKJ float64
	STC2FGHz     float64
	STC2GIPS     float64
	STC2EnergyKJ float64
	// BusyWaitNTCEnergyKJ is the ablation without idle gating.
	BusyWaitNTCEnergyKJ float64
}

// Fig14Ablation is the ideal-TLP variant of one application: the same
// comparison with the parallel fraction raised to 0.98 (near-perfect
// scaling). It demonstrates the crossover the paper reports: once the
// 8-thread parallel efficiency is high, NTC beats STC on energy at ISO
// performance.
type Fig14Ablation struct {
	App          string
	NTCGIPS      float64
	NTCEnergyKJ  float64
	STC1FGHz     float64
	STC1GIPS     float64
	STC1EnergyKJ float64
	NTCWins      bool
}

// Fig14Result is the Figure 14 study at 11 nm with 24 instances.
type Fig14Result struct {
	Rows       []Fig14Row
	Ablation   []Fig14Ablation
	NTCFGHz    float64
	NTCVdd     float64
	WorkGInstr float64
	Instances  int
}

// fig14Work is the fixed work per instance (giga-instructions); energy is
// integrated over the time each configuration needs for this work.
const fig14Work = 200.0

// Fig14 compares NTC (8 threads at 1 GHz) against STC configurations with
// 1 and 2 threads whose frequency is chosen to match the NTC performance
// (clamped to the STC floor voltage, as the paper keeps STC frequencies in
// the STC region). Energy-optimized deployments clock-gate idle cores, so
// the primary energy numbers use the GatedIdle power mode; the busy-wait
// ablation is reported alongside.
func Fig14() (*Fig14Result, error) {
	const instances = 24
	p, err := platformFor(tech.Node11, 198)
	if err != nil {
		return nil, err
	}
	ntcF := 1.0
	ntcV, err := p.Curve.VoltageFor(ntcF)
	if err != nil {
		return nil, err
	}
	res := &Fig14Result{NTCFGHz: ntcF, NTCVdd: ntcV, WorkGInstr: fig14Work, Instances: instances}

	stcFloorF := p.Curve.FrequencyGHz(vf.STCFloorVolts)
	energyOf := func(a apps.App, threads int, fGHz float64, mode core.PowerMode) (gips, kj float64, err error) {
		plan, err := buildAppPlanInstances(p, a, instances, threads, fGHz)
		if err != nil {
			return 0, 0, err
		}
		temps, power, err := p.SteadyTemps(plan, mode)
		if err != nil {
			return 0, 0, err
		}
		_ = temps
		var totalP float64
		for _, w := range power {
			totalP += w
		}
		gips = plan.TotalGIPS()
		perInstance := gips / instances
		seconds := fig14Work / perInstance
		var meter metrics.EnergyMeter
		if err := meter.Add(seconds, totalP); err != nil {
			return 0, 0, err
		}
		return gips, meter.TotalKJ(), nil
	}

	for _, a := range paperOrder() {
		row := Fig14Row{App: a.Name}
		var err error
		if row.NTCGIPS, row.NTCEnergyKJ, err = energyOf(a, 8, ntcF, core.GatedIdle); err != nil {
			return nil, err
		}
		if _, row.BusyWaitNTCEnergyKJ, err = energyOf(a, 8, ntcF, core.BusyWait); err != nil {
			return nil, err
		}
		perInstNTC := a.InstanceGIPS(ntcF, 8)
		// ISO-performance STC frequencies (per instance), clamped to the
		// STC floor and the nominal maximum.
		clamp := func(f float64) float64 {
			if f < stcFloorF {
				f = stcFloorF
			}
			if f > p.Curve.FmaxGHz {
				f = p.Curve.FmaxGHz
			}
			return f
		}
		row.STC1FGHz = clamp(perInstNTC / a.InstanceGIPS(1, 1))
		row.STC2FGHz = clamp(perInstNTC / a.InstanceGIPS(1, 2))
		if row.STC1GIPS, row.STC1EnergyKJ, err = energyOf(a, 1, row.STC1FGHz, core.GatedIdle); err != nil {
			return nil, err
		}
		if row.STC2GIPS, row.STC2EnergyKJ, err = energyOf(a, 2, row.STC2FGHz, core.GatedIdle); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)

		// Ideal-TLP ablation: same app with near-perfect scaling.
		ideal := a
		ideal.ParallelFrac = 0.98
		ab := Fig14Ablation{App: a.Name}
		if ab.NTCGIPS, ab.NTCEnergyKJ, err = energyOf(ideal, 8, ntcF, core.GatedIdle); err != nil {
			return nil, err
		}
		perInstIdeal := ideal.InstanceGIPS(ntcF, 8)
		ab.STC1FGHz = clamp(perInstIdeal / ideal.InstanceGIPS(1, 1))
		if ab.STC1GIPS, ab.STC1EnergyKJ, err = energyOf(ideal, 1, ab.STC1FGHz, core.GatedIdle); err != nil {
			return nil, err
		}
		// energyOf integrates over the time needed for the same fixed
		// work, so the kJ values compare directly.
		ab.NTCWins = ab.NTCEnergyKJ < ab.STC1EnergyKJ
		res.Ablation = append(res.Ablation, ab)
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig14Result) Tables() []*report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Figure 14: STC vs NTC, 11 nm, %d instances, %.0f Ginstr/instance (NTC: 8 threads @ %.1f GHz / %.2f V)",
			r.Instances, r.WorkGInstr, r.NTCFGHz, r.NTCVdd),
		Columns: []string{"app", "NTC GIPS", "STC1 GHz", "STC1 GIPS", "STC2 GHz", "STC2 GIPS",
			"NTC kJ", "STC1 kJ", "STC2 kJ", "NTC kJ (busy-wait)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App,
			fmt.Sprintf("%.0f", row.NTCGIPS),
			fmt.Sprintf("%.1f", row.STC1FGHz),
			fmt.Sprintf("%.0f", row.STC1GIPS),
			fmt.Sprintf("%.1f", row.STC2FGHz),
			fmt.Sprintf("%.0f", row.STC2GIPS),
			fmt.Sprintf("%.2f", row.NTCEnergyKJ),
			fmt.Sprintf("%.2f", row.STC1EnergyKJ),
			fmt.Sprintf("%.2f", row.STC2EnergyKJ),
			fmt.Sprintf("%.2f", row.BusyWaitNTCEnergyKJ))
	}
	ab := &report.Table{
		Title:   "Ablation: ideal TLP (parallel fraction 0.98) — the regime where NTC wins",
		Columns: []string{"app", "NTC GIPS", "NTC kJ", "STC1 GHz", "STC1 GIPS", "STC1 kJ", "NTC wins energy"},
	}
	for _, a := range r.Ablation {
		ab.AddRow(a.App,
			fmt.Sprintf("%.0f", a.NTCGIPS),
			fmt.Sprintf("%.2f", a.NTCEnergyKJ),
			fmt.Sprintf("%.1f", a.STC1FGHz),
			fmt.Sprintf("%.0f", a.STC1GIPS),
			fmt.Sprintf("%.2f", a.STC1EnergyKJ),
			fmt.Sprintf("%v", a.NTCWins))
	}
	return []*report.Table{t, ab}
}

// Render implements Renderer.
func (r *Fig14Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }
