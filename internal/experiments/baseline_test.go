package experiments

import "testing"

func TestBaselineOverestimation(t *testing.T) {
	r, err := Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The paper's §3 claim: the power-budget model of [6]
		// over-estimates dark silicon relative to the temperature-aware
		// estimate, and DVFS reduces it further.
		if row.BaselineDark <= row.RevisedDark {
			t.Errorf("%v: baseline %0.f%% should exceed revised %0.f%%",
				row.Node, row.BaselineDark, row.RevisedDark)
		}
		if row.RevisedDVFS >= row.RevisedDark {
			t.Errorf("%v: DVFS should reduce dark silicon further", row.Node)
		}
		if row.SpeedupBound <= 0 {
			t.Errorf("%v: speedup bound %v", row.Node, row.SpeedupBound)
		}
	}
	// The ISCA'11 Amdahl bound saturates across nodes ("the end of
	// multicore scaling"), while the paper's Fig. 10 shows our revised
	// methodology's GIPS still growing — both visible in this repo.
	first, last := r.Rows[0].SpeedupBound, r.Rows[len(r.Rows)-1].SpeedupBound
	if last > first*1.25 {
		t.Errorf("baseline bound should saturate: %v -> %v", first, last)
	}
	renderOK(t, r)
}
