package experiments

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// TestFiguresDeterministicAcrossRuns runs every figure twice in one
// process — once against a cold platform cache, once warm — and requires
// identical structured tables. This pins two contracts at once: the
// trace generator's seeded noise is reproducible, and the platform LRU
// cache returns equivalent state rather than leaking mutations between
// runs. Transient figures use short durations so the double pass stays
// affordable.
func TestFiguresDeterministicAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("double full-figure pass in -short mode")
	}
	ctx := context.Background()
	runs := make([]struct {
		id  string
		run func(context.Context) (Renderer, error)
	}, 0, len(Registry()))
	for _, e := range Registry() {
		entry := struct {
			id  string
			run func(context.Context) (Renderer, error)
		}{id: e.ID, run: e.Run}
		switch e.ID {
		case "fig11":
			entry.run = func(ctx context.Context) (Renderer, error) {
				return Fig11(ctx, Fig11Options{DurationS: 0.5, Instances: 12})
			}
		case "fig12":
			entry.run = func(ctx context.Context) (Renderer, error) {
				return Fig12(ctx, Fig12Options{DurationS: 0.5, StepCores: 32})
			}
		case "fig13":
			entry.run = func(ctx context.Context) (Renderer, error) {
				return Fig13(ctx, Fig13Options{DurationS: 0.5, Instances: []int{12}})
			}
		}
		runs = append(runs, entry)
	}
	for _, entry := range runs {
		t.Run(entry.id, func(t *testing.T) {
			tables := make([][]any, 2)
			for pass := 0; pass < 2; pass++ {
				if pass == 0 {
					ResetPlatforms() // cold cache on the first pass only
				}
				r, err := entry.run(ctx)
				if err != nil {
					t.Fatalf("pass %d: %v", pass+1, err)
				}
				ts, ok := TablesOf(r)
				if !ok {
					t.Fatalf("pass %d: no structured tables", pass+1)
				}
				for _, tab := range ts {
					tables[pass] = append(tables[pass], tab)
				}
			}
			if len(tables[0]) != len(tables[1]) {
				t.Fatalf("table count changed between passes: %d vs %d", len(tables[0]), len(tables[1]))
			}
			for i := range tables[0] {
				if !reflect.DeepEqual(tables[0][i], tables[1][i]) {
					t.Errorf("table %d differs between cold and warm pass:\ncold: %s\nwarm: %s",
						i+1, fmt.Sprint(tables[0][i]), fmt.Sprint(tables[1][i]))
				}
			}
		})
	}
}
