package experiments

import (
	"fmt"
	"io"

	"darksim/internal/apps"
	"darksim/internal/endofscaling"
	"darksim/internal/report"
	"darksim/internal/tech"
)

// BaselineRow compares the ISCA'11-style power-budget estimate against
// this repository's temperature-aware estimate for one node.
type BaselineRow struct {
	Node         tech.Node
	AreaCores    int
	BaselineDark float64 // % (power-budget model, fmax only)
	RevisedDark  float64 // % (temperature constraint, patterned, fmax)
	RevisedDVFS  float64 // % (temperature constraint at a one-step-lower v/f)
	SpeedupBound float64 // ISCA'11 symmetric-multicore bound
}

// BaselineResult is the comparison across nodes — the paper's §3 argument
// ("the analytical studies of [6] result in over-estimation of dark
// silicon") quantified against our own implementation of [6]'s model.
type BaselineResult struct {
	Rows []BaselineRow
	App  string
	TDPW float64
}

// Baseline evaluates both methodologies for the hungriest application on
// the paper's per-node platforms under the same fixed TDP.
func Baseline() (*BaselineResult, error) {
	a, err := apps.ByName("swaptions")
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{App: a.Name, TDPW: 185}
	for _, node := range []tech.Node{tech.Node16, tech.Node11, tech.Node8} {
		cores := coresForNode(node)
		p, err := platformFor(node, cores)
		if err != nil {
			return nil, err
		}
		// Baseline: same chip area as the platform, same TDP.
		budget := endofscaling.ChipBudget{
			AreaMM2: float64(cores) * p.Spec.CoreAreaMM2,
			TDPW:    res.TDPW,
		}
		base, err := endofscaling.DarkSilicon(node, a, budget, p.TDTM)
		if err != nil {
			return nil, err
		}
		bound, err := base.SpeedupBound(a.ParallelFrac)
		if err != nil {
			return nil, err
		}
		// Revised: temperature constraint with patterning, at fmax and
		// one ladder step below.
		revised, err := p.DarkSiliconUnderTemp(a, p.Curve.FmaxGHz, nil)
		if err != nil {
			return nil, err
		}
		lower := p.Ladder.Points[p.Ladder.Clamp(p.Ladder.AtOrBelow(p.Curve.FmaxGHz)-1)].FGHz
		revisedDVFS, err := p.DarkSiliconUnderTemp(a, lower, nil)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BaselineRow{
			Node:         node,
			AreaCores:    base.AreaCores,
			BaselineDark: 100 * base.DarkFraction,
			RevisedDark:  100 * revised.Summary.DarkFraction(),
			RevisedDVFS:  100 * revisedDVFS.Summary.DarkFraction(),
			SpeedupBound: bound,
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *BaselineResult) Tables() []*report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Baseline [6] (power budget, %.0f W) vs revised (temperature-aware) dark silicon, %s",
			r.TDPW, r.App),
		Columns: []string{"node", "cores (area)", "dark % [6]", "dark % revised", "dark % revised+DVFS", "ISCA'11 speedup bound"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Node.String(),
			fmt.Sprintf("%d", row.AreaCores),
			fmt.Sprintf("%.0f", row.BaselineDark),
			fmt.Sprintf("%.0f", row.RevisedDark),
			fmt.Sprintf("%.0f", row.RevisedDVFS),
			fmt.Sprintf("%.1fx", row.SpeedupBound))
	}
	t.Notes = append(t.Notes,
		"the power-budget model over-estimates dark silicon at every node; DVFS",
		"and the temperature constraint recover the difference (paper §3).")
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *BaselineResult) Render(w io.Writer) error { return renderTables(w, r.Tables()) }
