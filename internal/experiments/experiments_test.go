package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"darksim/internal/core"
	"darksim/internal/tech"
)

func renderOK(t *testing.T, r Renderer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatalf("Render produced no output")
	}
	return buf.String()
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 14 {
		t.Fatalf("registry has %d experiments, want 14 (fig1–fig14)", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Description == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	if _, err := ByID("fig5"); err != nil {
		t.Errorf("ByID(fig5): %v", err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Errorf("unknown id should error")
	}
}

func TestFig1MatchesPaperTable(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Specs) != 4 {
		t.Fatalf("specs = %d", len(r.Specs))
	}
	if r.Specs[0].Node != tech.Node22 || r.Specs[3].Node != tech.Node8 {
		t.Errorf("node order wrong")
	}
	out := renderOK(t, r)
	for _, want := range []string{"22nm", "8nm", "0.74", "2.30", "0.15"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output missing %q", want)
		}
	}
}

func TestFig2RegionsOrdered(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// Regions must appear in NTC → STC → Boost order along the sweep.
	last := -1
	for _, reg := range r.Region {
		if int(reg) < last {
			t.Fatalf("region order broken")
		}
		last = int(reg)
	}
	// Frequency monotone in voltage.
	for i := 1; i < len(r.FGHz); i++ {
		if r.FGHz[i] < r.FGHz[i-1] {
			t.Fatalf("frequency not monotone at %d", i)
		}
	}
	renderOK(t, r)
}

func TestFig3FitQuality(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// The model must track the samples closely (Figure 3's visual claim).
	if r.RMSErrorW > 0.6 {
		t.Errorf("RMS error %.3f W too large", r.RMSErrorW)
	}
	// Fit close to the catalog's ground truth (1.85 nF).
	if r.CeffNF < 1.6 || r.CeffNF > 2.1 {
		t.Errorf("fitted Ceff = %.3f nF", r.CeffNF)
	}
	// Peak power ≈15 W at 4 GHz (the figure's y-range).
	top := r.Rows[len(r.Rows)-1]
	if top.PowerW < 10 || top.PowerW > 20 {
		t.Errorf("x264 @4GHz = %.1f W", top.PowerW)
	}
	renderOK(t, r)
}

func TestFig4ParallelismWall(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// All curves within the figure's 1–3.5 band and canneal the lowest.
	for _, app := range r.Apps {
		for i, s := range r.Speedup[app] {
			if s < 1 || s > 3.5 {
				t.Errorf("%s S(%d) = %.2f", app, r.Threads[i], s)
			}
		}
	}
	for i := range r.Threads {
		if r.Speedup["canneal"][i] >= r.Speedup["x264"][i] {
			t.Errorf("canneal should scale worst")
		}
	}
	renderOK(t, r)
}

func TestFig5Observation1(t *testing.T) {
	// Observation 1: the optimistic TDP underestimates dark silicon
	// (thermal violations at fmax); the pessimistic TDP overestimates it
	// (no violations, thermal headroom wasted).
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	violations220 := 0
	for _, peak := range r.PeakTemps[220] {
		if peak > r.TDTM {
			violations220++
		}
	}
	if violations220 == 0 {
		t.Errorf("220 W should cause thermal violations for hungry apps")
	}
	for app, peak := range r.PeakTemps[185] {
		if peak > r.TDTM {
			t.Errorf("185 W should be thermally safe; %s peaks at %.1f", app, peak)
		}
	}
	// Headline dark-silicon levels: ≈37–45 % at 220 W, ≈46–52 % at 185 W.
	if r.MaxDark[220] < 0.30 || r.MaxDark[220] > 0.48 {
		t.Errorf("max dark @220W = %.0f%%", 100*r.MaxDark[220])
	}
	if r.MaxDark[185] < 0.42 || r.MaxDark[185] > 0.55 {
		t.Errorf("max dark @185W = %.0f%%", 100*r.MaxDark[185])
	}
	// Observation 2: dark silicon shrinks monotonically as v/f drops.
	for _, tdp := range r.TDPs {
		perApp := map[string][]float64{}
		for _, c := range r.Cells[tdp] {
			perApp[c.App] = append(perApp[c.App], c.DarkPercent)
		}
		for app, darks := range perApp {
			for i := 1; i < len(darks); i++ {
				if darks[i] < darks[i-1]-1e-9 {
					t.Errorf("%s @%g W: dark silicon should grow with frequency", app, tdp)
				}
			}
		}
	}
	renderOK(t, r)
}

func TestFig6TemperatureConstraintWins(t *testing.T) {
	r, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range r.Nodes {
		for _, row := range r.Rows[node] {
			if row.ActiveTemp < row.ActiveTDP-1e-9 {
				t.Errorf("%s/%s: temperature constraint admits fewer cores", node, row.App)
			}
		}
		if r.AvgReduction[node] < 15 {
			t.Errorf("%s: average dark reduction %.0f%% too small vs paper's 32–40%%",
				node, r.AvgReduction[node])
		}
	}
	renderOK(t, r)
}

func TestFig7DVFSAlwaysImproves(t *testing.T) {
	r, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range r.Nodes {
		for _, row := range r.Rows[node] {
			if row.Scenario2GIPS < row.Scenario1GIPS-1e-6 {
				t.Errorf("%s/%s: scenario 2 (%.1f) worse than scenario 1 (%.1f)",
					node, row.App, row.Scenario2GIPS, row.Scenario1GIPS)
			}
		}
		if r.MaxGain[node] < 10 {
			t.Errorf("%s: max gain %.0f%% too small", node, r.MaxGain[node])
		}
	}
	// TLP/ILP story: x264 (high ILP, low TLP) ends with fewer threads
	// than blackscholes (high TLP) at 16 nm.
	var x264Threads, bsThreads int
	for _, row := range r.Rows[tech.Node16] {
		switch row.App {
		case "x264":
			x264Threads = row.Threads2
		case "blackscholes":
			bsThreads = row.Threads2
		}
	}
	if x264Threads >= bsThreads {
		t.Errorf("x264 threads (%d) should be below blackscholes (%d)", x264Threads, bsThreads)
	}
	renderOK(t, r)
}

func TestFig8PatterningStory(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 8: contiguous mapping of N cores violates TDTM
	// while a patterned mapping of the same N does not, and patterning
	// admits clearly more cores (paper: 52 vs 60).
	if !(r.ContigViolation.PeakC > r.TDTM) {
		t.Errorf("contiguous mapping should violate TDTM: %.1f", r.ContigViolation.PeakC)
	}
	if r.PatternOK.PeakC > r.TDTM {
		t.Errorf("patterned mapping should be safe: %.1f", r.PatternOK.PeakC)
	}
	if r.PatternedMax <= r.ContiguousMax {
		t.Errorf("patterning should admit more cores: %d vs %d", r.PatternedMax, r.ContiguousMax)
	}
	if r.ContiguousMax < 40 || r.ContiguousMax > 60 {
		t.Errorf("contiguous max %d far from the paper's ≈52", r.ContiguousMax)
	}
	if r.PatternedMax < 55 || r.PatternedMax > 70 {
		t.Errorf("patterned max %d far from the paper's ≈60", r.PatternedMax)
	}
	renderOK(t, r)
}

func TestFig9DsRemBeatsTDPmap(t *testing.T) {
	r, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.SpeedupFactor < 1 {
			t.Errorf("%s: DsRem slower than TDPmap (%.2fx)", row.Mix, row.SpeedupFactor)
		}
	}
	if r.MaxSpeedup < 1.2 {
		t.Errorf("max speedup %.2fx too small vs the paper's ≈2x", r.MaxSpeedup)
	}
	renderOK(t, r)
}

func TestFig10TSPScalingTrend(t *testing.T) {
	r, err := Fig10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Performance keeps increasing with newer nodes despite growing dark
	// silicon (the figure's headline), and the 11→8 nm step is large.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].TotalGIPS <= r.Rows[i-1].TotalGIPS {
			t.Errorf("GIPS should grow per node: %v", r.Rows)
		}
	}
	inc := (r.Rows[2].TotalGIPS - r.Rows[1].TotalGIPS) / r.Rows[1].TotalGIPS
	if inc < 0.3 || inc > 1.0 {
		t.Errorf("11->8 nm increase %.0f%% far from the paper's ≈60%%", 100*inc)
	}
	// TSP per-core budget decreases with active-core count across nodes.
	if !(r.Rows[0].TSPPerCoreW > r.Rows[1].TSPPerCoreW && r.Rows[1].TSPPerCoreW > r.Rows[2].TSPPerCoreW) {
		t.Errorf("TSP budgets should fall: %v", r.Rows)
	}
	renderOK(t, r)
}

func TestFig11Observation3(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := Fig11(context.Background(), Fig11Options{DurationS: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Observation 3: boosting yields a (slightly) higher average
	// performance while oscillating at the threshold; constant stays
	// below it.
	if r.AvgBoost <= r.AvgConst {
		t.Errorf("boost avg %.1f should beat constant %.1f", r.AvgBoost, r.AvgConst)
	}
	if gain := (r.AvgBoost - r.AvgConst) / r.AvgConst; gain > 0.15 {
		t.Errorf("boost gain %.0f%% implausibly large", 100*gain)
	}
	if r.Boost.MaxTempC < r.TDTM-0.5 || r.Boost.MaxTempC > r.TDTM+3 {
		t.Errorf("boost should oscillate around TDTM; max %.2f", r.Boost.MaxTempC)
	}
	if r.Constant.MaxTempC > r.TDTM {
		t.Errorf("constant should stay below TDTM; max %.2f", r.Constant.MaxTempC)
	}
	renderOK(t, r)
}

func TestFig12BoostCostsPower(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := Fig12(context.Background(), Fig12Options{DurationS: 2, StepCores: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) < 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// GIPS grows with active cores; boost matches or beats constant on
	// GIPS and costs at least as much peak power.
	for i, pt := range r.Points {
		if pt.BoostGIPS < pt.ConstGIPS-1e-6 {
			t.Errorf("cores=%d: boost GIPS below constant", pt.ActiveCores)
		}
		if pt.BoostPowerW < pt.ConstPowerW-1e-6 {
			t.Errorf("cores=%d: boost peak power below constant", pt.ActiveCores)
		}
		if i > 0 && pt.ConstGIPS <= r.Points[i-1].ConstGIPS {
			t.Errorf("constant GIPS should grow with cores")
		}
	}
	renderOK(t, r)
}

func TestFig13STCRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := Fig13(context.Background(), Fig13Options{DurationS: 1, Instances: []int{12, 24}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 14 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Observation 4 evidence: the minimum utilized voltage across all
	// scenarios remains in the STC region.
	if r.Region.String() != "STC" {
		t.Errorf("minimum V/f %.2f V should be STC, got %v", r.MinVdd, r.Region)
	}
	for _, row := range r.Rows {
		if row.BoostGIPS < row.ConstGIPS-1e-6 {
			t.Errorf("%s/%d: boost below constant", row.App, row.Instances)
		}
	}
	renderOK(t, r)
}

func TestFig14NTCStory(t *testing.T) {
	r, err := Fig14()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 || len(r.Ablation) != 7 {
		t.Fatalf("rows = %d, ablation = %d", len(r.Rows), len(r.Ablation))
	}
	// Canneal is by far the worst NTC citizen (the paper's explicit
	// example of an app that "does not scale well with more threads").
	var canneal, best Fig14Row
	best = r.Rows[0]
	for _, row := range r.Rows {
		if row.App == "canneal" {
			canneal = row
		}
		if row.NTCEnergyKJ/row.STC1EnergyKJ < best.NTCEnergyKJ/best.STC1EnergyKJ {
			best = row
		}
	}
	if canneal.App == "" {
		t.Fatal("canneal missing")
	}
	cannealPenalty := canneal.NTCEnergyKJ / canneal.STC1EnergyKJ
	bestPenalty := best.NTCEnergyKJ / best.STC1EnergyKJ
	if cannealPenalty <= bestPenalty {
		t.Errorf("canneal should be the worst NTC case: %.2f vs best %.2f", cannealPenalty, bestPenalty)
	}
	// Gating always saves energy vs busy-wait.
	for _, row := range r.Rows {
		if row.NTCEnergyKJ >= row.BusyWaitNTCEnergyKJ {
			t.Errorf("%s: gated energy should be below busy-wait", row.App)
		}
	}
	// The ideal-TLP ablation shows the NTC-wins regime for every app.
	for _, ab := range r.Ablation {
		if !ab.NTCWins {
			t.Errorf("%s: ideal-TLP NTC should win on energy", ab.App)
		}
	}
	// The NTC voltage is genuinely near threshold.
	if r.NTCVdd > 0.6 {
		t.Errorf("NTC voltage %.2f V not in NTC region", r.NTCVdd)
	}
	renderOK(t, r)
}

// resetPlatformCache empties the shared platform cache (tests only).
func resetPlatformCache() { ResetPlatforms() }

func TestPlatformForBuildsDistinctKeysConcurrently(t *testing.T) {
	oldBuild := buildPlatform
	resetPlatformCache()
	defer func() {
		buildPlatform = oldBuild
		resetPlatformCache()
	}()

	var mu sync.Mutex
	active, peak, builds := 0, 0, 0
	buildPlatform = func(node tech.Node, cores int) (*core.Platform, error) {
		mu.Lock()
		builds++
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(100 * time.Millisecond) // a deliberately slow "Cholesky"
		mu.Lock()
		active--
		mu.Unlock()
		return &core.Platform{}, nil
	}

	keys := []struct {
		node  tech.Node
		cores int
	}{
		{tech.Node22, 4}, {tech.Node16, 4}, {tech.Node22, 4}, {tech.Node16, 4},
	}
	got := make([]*core.Platform, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, node tech.Node, cores int) {
			defer wg.Done()
			p, err := platformFor(node, cores)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = p
		}(i, k.node, k.cores)
	}
	wg.Wait()

	if builds != 2 {
		t.Errorf("builds = %d, want 2: duplicate keys must share one build", builds)
	}
	if peak < 2 {
		t.Errorf("peak concurrent builds = %d, want 2: distinct keys must build in parallel", peak)
	}
	if got[0] != got[2] || got[1] != got[3] {
		t.Errorf("requests for the same key must return the same platform")
	}
	if got[0] == got[1] {
		t.Errorf("distinct keys must not share a platform")
	}
}

func TestBoostOptionsValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		run  func() error
	}{
		{"fig11 negative instances", func() error { _, err := Fig11(ctx, Fig11Options{Instances: -1}); return err }},
		{"fig11 negative duration", func() error { _, err := Fig11(ctx, Fig11Options{DurationS: -5}); return err }},
		{"fig12 negative step", func() error { _, err := Fig12(ctx, Fig12Options{StepCores: -8}); return err }},
		{"fig12 negative duration", func() error { _, err := Fig12(ctx, Fig12Options{DurationS: -1}); return err }},
		{"fig13 zero instances entry", func() error { _, err := Fig13(ctx, Fig13Options{Instances: []int{0}}); return err }},
		{"fig13 negative duration", func() error { _, err := Fig13(ctx, Fig13Options{DurationS: -1}); return err }},
	}
	for _, tc := range cases {
		err := tc.run()
		if !errors.Is(err, ErrOptions) {
			t.Errorf("%s: err = %v, want ErrOptions", tc.name, err)
		}
	}
	// Zero values still mean "use default" and must not error.
	if err := (Fig12Options{}).Validate(); err != nil {
		t.Errorf("zero Fig12Options should be valid: %v", err)
	}
}

func TestFig12CancelledContextNamesSweepPoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fig12(ctx, Fig12Options{DurationS: 0.1, StepCores: 24})
	if err == nil {
		t.Fatal("cancelled context must abort the sweep")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "fig12") || !strings.Contains(err.Error(), "active cores") {
		t.Errorf("error %q does not identify the failing sweep point", err)
	}
}

func TestFig13CancelledContextNamesScenario(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fig13(ctx, Fig13Options{DurationS: 0.1, Instances: []int{12}})
	if err == nil {
		t.Fatal("cancelled context must abort the sweep")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	if !strings.Contains(err.Error(), "fig13") || !strings.Contains(err.Error(), "instances") {
		t.Errorf("error %q does not identify the failing scenario", err)
	}
}

// countingBuilds swaps buildPlatform for a cheap counting stub; the
// returned restore func must be deferred.
func countingBuilds(t *testing.T, builds *int) (restore func()) {
	t.Helper()
	oldBuild := buildPlatform
	resetPlatformCache()
	SetPlatformCacheCap(0)
	buildPlatform = func(node tech.Node, cores int) (*core.Platform, error) {
		*builds++
		return &core.Platform{}, nil
	}
	return func() {
		buildPlatform = oldBuild
		SetPlatformCacheCap(0)
		resetPlatformCache()
	}
}

func mustPlatform(t *testing.T, node tech.Node, cores int) *core.Platform {
	t.Helper()
	p, err := platformFor(node, cores)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlatformCacheCapEvictsLRU(t *testing.T) {
	builds := 0
	defer countingBuilds(t, &builds)()
	SetPlatformCacheCap(2)

	a := mustPlatform(t, tech.Node22, 1)
	mustPlatform(t, tech.Node22, 2)
	mustPlatform(t, tech.Node22, 1) // touch A: B becomes least recently used
	mustPlatform(t, tech.Node22, 3) // evicts B
	if n := PlatformCacheLen(); n != 2 {
		t.Errorf("cache len = %d, want 2 (capped)", n)
	}
	if builds != 3 {
		t.Fatalf("builds = %d, want 3", builds)
	}
	if got := mustPlatform(t, tech.Node22, 1); got != a || builds != 3 {
		t.Errorf("recently used key must stay cached (builds = %d)", builds)
	}
	mustPlatform(t, tech.Node22, 2)
	if builds != 4 {
		t.Errorf("evicted key must rebuild: builds = %d, want 4", builds)
	}
}

func TestSetPlatformCacheCapShrinksExistingCache(t *testing.T) {
	builds := 0
	defer countingBuilds(t, &builds)()

	for cores := 1; cores <= 3; cores++ {
		mustPlatform(t, tech.Node22, cores)
	}
	if n := PlatformCacheLen(); n != 3 {
		t.Fatalf("unbounded cache len = %d, want 3", n)
	}
	SetPlatformCacheCap(1)
	if n := PlatformCacheLen(); n != 1 {
		t.Errorf("after SetPlatformCacheCap(1): len = %d, want 1", n)
	}
}

func TestResetPlatformsForcesRebuild(t *testing.T) {
	builds := 0
	defer countingBuilds(t, &builds)()

	mustPlatform(t, tech.Node22, 1)
	mustPlatform(t, tech.Node22, 1)
	if builds != 1 {
		t.Fatalf("builds = %d, want 1 before reset", builds)
	}
	ResetPlatforms()
	if n := PlatformCacheLen(); n != 0 {
		t.Errorf("cache len after reset = %d, want 0", n)
	}
	mustPlatform(t, tech.Node22, 1)
	if builds != 2 {
		t.Errorf("builds = %d, want 2 after reset", builds)
	}
}

func TestPublicPlatformFor(t *testing.T) {
	p, err := PlatformFor(tech.Node16, CoresForNode(tech.Node16))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 100 {
		t.Errorf("16nm platform has %d cores, want 100", p.NumCores())
	}
}
