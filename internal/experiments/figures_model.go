package experiments

import (
	"fmt"
	"io"
	"math"

	"darksim/internal/apps"
	"darksim/internal/report"
	"darksim/internal/tech"
	"darksim/internal/trace"
	"darksim/internal/vf"
)

// Fig1Result is the scaling-factor table of Figure 1 plus the per-node
// quantities derived from it (core area, nominal Vdd/fmax, Eq.(2) k).
type Fig1Result struct {
	Specs []tech.Spec
}

// Fig1 reproduces the Figure 1 table.
func Fig1() (*Fig1Result, error) {
	var specs []tech.Spec
	for _, n := range tech.Nodes() {
		s, err := tech.SpecFor(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return &Fig1Result{Specs: specs}, nil
}

// Tables implements Tabler.
func (r *Fig1Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Figure 1: ITRS scaling factors (w.r.t. 22 nm) and derived node specs",
		Columns: []string{"node", "Vdd", "freq", "cap", "area", "core mm²", "Vdd nom [V]", "fmax [GHz]", "k [GHz·V]"},
	}
	for _, s := range r.Specs {
		t.AddRow(
			s.Node.String(),
			fmt.Sprintf("%.2f", s.Factors.Vdd),
			fmt.Sprintf("%.2f", s.Factors.Frequency),
			fmt.Sprintf("%.2f", s.Factors.Capacitance),
			fmt.Sprintf("%.2f", s.Factors.Area),
			fmt.Sprintf("%.1f", s.CoreAreaMM2),
			fmt.Sprintf("%.2f", s.VddNominal),
			fmt.Sprintf("%.1f", s.FmaxGHz),
			fmt.Sprintf("%.2f", s.K),
		)
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig1Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

// Fig2Result is the Eq.(2) frequency-vs-voltage design space at 22 nm with
// its NTC/STC/Boost regions.
type Fig2Result struct {
	Curve  vf.Curve
	Vdd    []float64
	FGHz   []float64
	Region []vf.Region
}

// Fig2 sweeps Vdd from just above Vth to 1.5 V (the figure's x-range).
func Fig2() (*Fig2Result, error) {
	curve, err := vf.CurveFor(tech.Node22)
	if err != nil {
		return nil, err
	}
	res := &Fig2Result{Curve: curve}
	for v := 0.20; v <= 1.50+1e-9; v += 0.02 {
		res.Vdd = append(res.Vdd, v)
		res.FGHz = append(res.FGHz, curve.FrequencyGHz(v))
		res.Region = append(res.Region, curve.RegionOf(v))
	}
	return res, nil
}

// Tables implements Tabler: the design-space sweep in long form, one row
// per sampled voltage.
func (r *Fig2Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Figure 2: frequency vs voltage (Eq. 2, 22 nm, k≈3.7 GHz·V, Vth=178 mV)",
		Columns: []string{"Vdd [V]", "f [GHz]", "region"},
	}
	for i := range r.Vdd {
		t.AddRow(fmt.Sprintf("%.2f", r.Vdd[i]),
			fmt.Sprintf("%.3f", r.FGHz[i]),
			r.Region[i].String())
	}
	t.AddNote("STC floor %.2f V, nominal %.2f V -> fmax %.2f GHz",
		vf.STCFloorVolts, r.Curve.VddNominal, r.Curve.FmaxGHz)
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig2Result) Render(w io.Writer) error {
	c := &report.Chart{
		Title:  "Figure 2: frequency vs voltage (Eq. 2, 22 nm, k≈3.7 GHz·V, Vth=178 mV)",
		XLabel: "Vdd [V]",
	}
	// Split the sweep into one series per region so the chart legend
	// shows the NTC/STC/Boost structure.
	names := []string{"NTC", "STC", "Boost"}
	xs := make([][]float64, 3)
	ys := make([][]float64, 3)
	for i := range r.Vdd {
		k := int(r.Region[i])
		xs[k] = append(xs[k], r.Vdd[i])
		ys[k] = append(ys[k], r.FGHz[i])
	}
	if err := c.RenderLines(w, names, xs, ys); err != nil {
		return err
	}
	fmt.Fprintf(w, "STC floor %.2f V, nominal %.2f V -> fmax %.2f GHz\n",
		vf.STCFloorVolts, r.Curve.VddNominal, r.Curve.FmaxGHz)
	return nil
}

// Fig3Result compares the synthetic McPAT samples with the Equation (1)
// fit for x264 at 22 nm, single thread (Figure 3).
type Fig3Result struct {
	Rows      []trace.Row
	ModelW    []float64 // fitted model evaluated at each row
	CeffNF    float64
	PindW     float64
	RMSErrorW float64
}

// Fig3 generates the trace, fits the model and evaluates the fit.
func Fig3() (*Fig3Result, error) {
	x, err := apps.ByName("x264")
	if err != nil {
		return nil, err
	}
	rows, err := trace.Generate(x, trace.Options{Seed: 2015})
	if err != nil {
		return nil, err
	}
	fit, err := trace.FitModel(rows, x.AlphaSingle)
	if err != nil {
		return nil, err
	}
	res := &Fig3Result{Rows: rows, CeffNF: fit.CeffNF, PindW: fit.PindW}
	var sq float64
	for _, row := range rows {
		m := fit.Power(x.AlphaSingle, row.Vdd, row.FGHz, row.TempC)
		res.ModelW = append(res.ModelW, m)
		d := m - row.PowerW
		sq += d * d
	}
	res.RMSErrorW = rms(sq, len(rows))
	return res, nil
}

// Tables implements Tabler: every synthetic sample next to the model fit.
func (r *Fig3Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Figure 3: x264 @22nm, 1 thread — Eq.(1) model vs experimental samples",
		Columns: []string{"f [GHz]", "Vdd [V]", "T [°C]", "experimental [W]", "model [W]"},
	}
	for i, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%.2f", row.FGHz),
			fmt.Sprintf("%.2f", row.Vdd),
			fmt.Sprintf("%.1f", row.TempC),
			fmt.Sprintf("%.3f", row.PowerW),
			fmt.Sprintf("%.3f", r.ModelW[i]))
	}
	t.AddNote("fit: Ceff=%.3f nF, Pind=%.3f W, RMS error %.3f W over %d samples",
		r.CeffNF, r.PindW, r.RMSErrorW, len(r.Rows))
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig3Result) Render(w io.Writer) error {
	c := &report.Chart{
		Title:  "Figure 3: x264 @22nm, 1 thread — Eq.(1) model vs experimental samples",
		XLabel: "f [GHz]",
	}
	var fx, exp, mod []float64
	for i, row := range r.Rows {
		fx = append(fx, row.FGHz)
		exp = append(exp, row.PowerW)
		mod = append(mod, r.ModelW[i])
	}
	if err := c.RenderLines(w, []string{"experimental", "model"}, [][]float64{fx, fx}, [][]float64{exp, mod}); err != nil {
		return err
	}
	fmt.Fprintf(w, "fit: Ceff=%.3f nF, Pind=%.3f W, RMS error %.3f W over %d samples\n",
		r.CeffNF, r.PindW, r.RMSErrorW, len(r.Rows))
	return nil
}

// Fig4Result holds the speed-up curves of Figure 4.
type Fig4Result struct {
	Threads []int
	Apps    []string
	Speedup map[string][]float64
}

// Fig4 evaluates the speed-up factors for x264, bodytrack, canneal between
// 16 and 64 threads (the figure's x-range) at 2 GHz.
func Fig4() (*Fig4Result, error) {
	res := &Fig4Result{
		Threads: []int{16, 24, 32, 40, 48, 56, 64},
		Apps:    []string{"x264", "bodytrack", "canneal"},
		Speedup: map[string][]float64{},
	}
	for _, name := range res.Apps {
		a, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, n := range res.Threads {
			res.Speedup[name] = append(res.Speedup[name], a.Speedup(n))
		}
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig4Result) Tables() []*report.Table {
	t := &report.Table{
		Title:   "Figure 4: speed-up vs parallel threads (Amdahl, gem5-calibrated fractions)",
		Columns: append([]string{"app"}, intHeaders(r.Threads)...),
	}
	for _, name := range r.Apps {
		t.AddFloatRow(name, 2, r.Speedup[name]...)
	}
	return []*report.Table{t}
}

// Render implements Renderer.
func (r *Fig4Result) Render(w io.Writer) error { return renderTables(w, r.Tables()) }

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

func rms(sumSquares float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumSquares / float64(n))
}
