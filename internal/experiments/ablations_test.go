package experiments

import (
	"context"
	"testing"
)

func TestAblationRegistry(t *testing.T) {
	reg := AblationRegistry()
	if len(reg) != 8 {
		t.Fatalf("ablations = %d", len(reg))
	}
	for _, e := range reg {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete ablation %+v", e)
		}
	}
}

func TestAblationRotation(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := AblationRotation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Identical performance across policies…
	for _, row := range r.Rows[1:] {
		if diff := row.AvgGIPS - r.Rows[0].AvgGIPS; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%s: GIPS differs from baseline", row.Policy)
		}
	}
	// …with strictly improving peak temperature:
	// contiguous > checkerboard > rotated.
	if !(r.Rows[0].MaxTempC > r.Rows[1].MaxTempC && r.Rows[1].MaxTempC > r.Rows[2].MaxTempC+0.3) {
		t.Errorf("expected contiguous > checkerboard > rotated peaks, got %+v", r.Rows)
	}
	renderOK(t, r)
}

func TestAblationGrid(t *testing.T) {
	r, err := AblationGrid()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The default resolution (8×8 spreader) must sit within 1 °C of the
	// finest grid tested.
	var def, fine float64
	for _, row := range r.Rows {
		switch row.SpreaderN {
		case 8:
			def = row.PeakC
		case 16:
			fine = row.PeakC
		}
	}
	if d := def - fine; d > 1 || d < -1 {
		t.Errorf("default grid off by %.2f °C from fine grid", d)
	}
	// Node count grows with resolution.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Nodes <= r.Rows[i-1].Nodes {
			t.Errorf("node count should grow with resolution")
		}
	}
	renderOK(t, r)
}

func TestAblationHoldBand(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := AblationHoldBand()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Wider bands trade performance for overshoot: GIPS non-increasing,
	// overshoot non-increasing.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].AvgGIPS > r.Rows[i-1].AvgGIPS+0.5 {
			t.Errorf("GIPS should not grow with wider bands: %+v", r.Rows)
		}
		if r.Rows[i].OvershootC > r.Rows[i-1].OvershootC+0.05 {
			t.Errorf("overshoot should not grow with wider bands: %+v", r.Rows)
		}
	}
	// No run may lean on the emergency throttle.
	for _, row := range r.Rows {
		if row.DTMEvents > 0 {
			t.Errorf("band %.1f: %d DTM events", row.BandC, row.DTMEvents)
		}
	}
	renderOK(t, r)
}

func TestAblationStrategies(t *testing.T) {
	r, err := AblationStrategies(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	safe := map[string]int{}
	for _, row := range r.Rows {
		safe[row.Strategy] = row.SafeCores
		if row.TSPatMax <= 0 {
			t.Errorf("%s: TSP = %v", row.Strategy, row.TSPatMax)
		}
	}
	// Patterned strategies beat contiguous (the Fig. 8 argument,
	// quantified across strategies).
	if safe["contiguous"] >= safe["checkerboard"] || safe["contiguous"] >= safe["periphery"] {
		t.Errorf("contiguous should be the worst strategy: %v", safe)
	}
	if safe["periphery"] < safe["maxspread"]-3 {
		t.Errorf("periphery and maxspread should be comparable: %v", safe)
	}
	renderOK(t, r)
}

func TestAblationLadderStep(t *testing.T) {
	r, err := AblationLadderStep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Finer ladders never lose performance, and the paper's 0.2 GHz step
	// stays within a few per cent of the finest ladder.
	finest := r.Rows[0].BestGIPS
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].BestGIPS > finest+1e-9 {
			t.Errorf("coarser ladder cannot beat finest")
		}
	}
	var step02 float64
	for _, row := range r.Rows {
		if row.StepGHz == 0.2 {
			step02 = row.BestGIPS
		}
	}
	if (finest-step02)/finest > 0.05 {
		t.Errorf("0.2 GHz step loses %.1f%% vs finest", 100*(finest-step02)/finest)
	}
	renderOK(t, r)
}

func TestAblationAging(t *testing.T) {
	if testing.Short() {
		t.Skip("transient experiment")
	}
	r, err := AblationAging()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Rotation lowers both the hottest core's wear and the imbalance
	// versus both static policies.
	rot := r.Rows[2]
	for _, static := range r.Rows[:2] {
		if rot.MaxWearS >= static.MaxWearS {
			t.Errorf("rotation max wear %.2f should be below %s %.2f",
				rot.MaxWearS, static.Policy, static.MaxWearS)
		}
		if rot.Imbalance >= static.Imbalance {
			t.Errorf("rotation imbalance %.2f should be below %s %.2f",
				rot.Imbalance, static.Policy, static.Imbalance)
		}
	}
	renderOK(t, r)
}

func TestAblationVariability(t *testing.T) {
	r, err := AblationVariability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	obl, aware := r.Rows[0], r.Rows[1]
	// The aware selection picks lower-leakage silicon and spends less
	// total power at identical performance…
	if aware.MeanLeakMul >= obl.MeanLeakMul {
		t.Errorf("aware mean multiplier %.3f should be below oblivious %.3f",
			aware.MeanLeakMul, obl.MeanLeakMul)
	}
	if aware.TotalPowerW >= obl.TotalPowerW {
		t.Errorf("aware power %.1f should be below oblivious %.1f",
			aware.TotalPowerW, obl.TotalPowerW)
	}
	// …while staying thermally comparable (it may pull a few cores
	// toward the die interior to reach cool silicon).
	if aware.PeakC > obl.PeakC+0.75 {
		t.Errorf("aware peak %.2f drifted too far above oblivious %.2f",
			aware.PeakC, obl.PeakC)
	}
	renderOK(t, r)
}
