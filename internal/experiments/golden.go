package experiments

import (
	"embed"
	"io/fs"
)

// goldenFS embeds the golden corpus: one canonical JSON table set per
// figure, regenerated with `darksim verify -update`. Embedding (rather
// than reading testdata at run time) lets `darksim verify` pin the
// paper's numbers from any working directory, including deployed
// binaries.
//
//go:embed testdata/golden
var goldenFS embed.FS

// GoldenDir is the repository-relative location of the corpus, where
// `darksim verify -update` writes regenerated files.
const GoldenDir = "internal/experiments/testdata/golden"

// GoldenCorpus returns the embedded golden corpus rooted at the corpus
// directory (fig1.json … fig14.json plus a README).
func GoldenCorpus() fs.FS {
	sub, err := fs.Sub(goldenFS, "testdata/golden")
	if err != nil {
		// The embedded path is fixed at compile time; failing here means
		// the embed directive itself changed incompatibly.
		panic(err)
	}
	return sub
}
