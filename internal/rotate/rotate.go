// Package rotate implements spatio-temporal dark-silicon rotation: the
// same workload is periodically migrated across the chip so that every
// core alternates between active and dark phases. With a rotation period
// shorter than the die-local thermal time constant, each site sees only
// the duty-cycled average of its power while the chip's total power — and
// therefore its performance — is unchanged, which lowers the peak
// temperature. This is the "sophisticated spatio-temporal mapping" the
// paper's abstract refers to, and the mechanism behind dark-silicon
// management schemes such as DaSim and Hayat that the paper surveys in §4.
package rotate

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
	"darksim/internal/mapping"
	"darksim/internal/sim"
)

// Schedule cycles through a fixed set of phase plans.
type Schedule struct {
	// Phases are the rotated plans, visited round-robin.
	Phases []*mapping.Plan
	// PeriodS is the dwell time per phase in seconds.
	PeriodS float64
}

// ErrRotate is returned for invalid rotation requests.
var ErrRotate = errors.New("rotate: invalid")

// Options configures New.
type Options struct {
	// Instances of the application, 8 threads each unless Threads is set.
	Instances int
	Threads   int
	// FGHz is the initial frequency level of every placement.
	FGHz float64
	// Phases is the number of rotation phases (≥ 2).
	Phases int
	// PeriodS is the dwell time per phase (default 20 ms — well below
	// the package-level thermal time constants, above the control
	// period).
	PeriodS float64
	// Base is the placement ordering rotated over (default
	// mapping.PeripheryFirst).
	Base mapping.Strategy
}

// New builds a rotation schedule: the base strategy's full-chip ordering
// is treated as a ring, and phase i places the workload into the window
// starting at offset i·N/phases. Windows of consecutive phases overlap
// when the workload needs more than N/phases cores; overlapped cores are
// simply active in both phases.
func New(fp *floorplan.Floorplan, app apps.App, opt Options) (*Schedule, error) {
	if opt.Instances <= 0 {
		return nil, fmt.Errorf("%w: instances = %d", ErrRotate, opt.Instances)
	}
	if opt.Threads == 0 {
		opt.Threads = apps.MaxThreadsPerInstance
	}
	if opt.Threads < 1 || opt.Threads > apps.MaxThreadsPerInstance {
		return nil, fmt.Errorf("%w: threads = %d", ErrRotate, opt.Threads)
	}
	if opt.FGHz <= 0 {
		return nil, fmt.Errorf("%w: frequency %g GHz", ErrRotate, opt.FGHz)
	}
	if opt.Phases < 2 {
		return nil, fmt.Errorf("%w: need ≥ 2 phases, got %d", ErrRotate, opt.Phases)
	}
	if opt.PeriodS == 0 {
		opt.PeriodS = 20e-3
	}
	if opt.PeriodS <= 0 {
		return nil, fmt.Errorf("%w: period %g s", ErrRotate, opt.PeriodS)
	}
	if opt.Base == nil {
		opt.Base = mapping.PeripheryFirst
	}
	need := opt.Instances * opt.Threads
	n := fp.NumBlocks()
	if need > n {
		return nil, fmt.Errorf("%w: %d cores needed on a %d-core chip", ErrRotate, need, n)
	}
	ring, err := opt.Base(fp, n)
	if err != nil {
		return nil, err
	}
	sched := &Schedule{PeriodS: opt.PeriodS}
	for phase := 0; phase < opt.Phases; phase++ {
		offset := phase * n / opt.Phases
		plan := &mapping.Plan{NumCores: n}
		at := 0
		for i := 0; i < opt.Instances; i++ {
			cores := make([]int, opt.Threads)
			for t := range cores {
				cores[t] = ring[(offset+at)%n]
				at++
			}
			plan.Placements = append(plan.Placements, mapping.Placement{
				App: app, Cores: cores, FGHz: opt.FGHz, Threads: opt.Threads,
			})
		}
		if err := plan.Validate(); err != nil {
			return nil, err
		}
		sched.Phases = append(sched.Phases, plan)
	}
	return sched, nil
}

// PlanAt implements sim.PlanProvider.
func (s *Schedule) PlanAt(t float64) *mapping.Plan {
	if len(s.Phases) == 0 {
		return nil
	}
	idx := int(math.Floor(t/s.PeriodS)) % len(s.Phases)
	if idx < 0 {
		idx += len(s.Phases)
	}
	return s.Phases[idx]
}

// DutyCycle returns the fraction of time a given core is active across
// the schedule (0 for always-dark cores, 1 for cores active in every
// phase).
func (s *Schedule) DutyCycle(core int) float64 {
	if len(s.Phases) == 0 {
		return 0
	}
	active := 0
	for _, plan := range s.Phases {
		for _, pl := range plan.Placements {
			for _, c := range pl.Cores {
				if c == core {
					active++
				}
			}
		}
	}
	return float64(active) / float64(len(s.Phases))
}

var _ sim.PlanProvider = (*Schedule)(nil)
