package rotate

import (
	"math"
	"testing"

	"darksim/internal/apps"
	"darksim/internal/boost"
	"darksim/internal/core"
	"darksim/internal/floorplan"
	"darksim/internal/mapping"
	"darksim/internal/sim"
	"darksim/internal/tech"
)

func grid(t testing.TB) *floorplan.Floorplan {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestNewValidation(t *testing.T) {
	fp := grid(t)
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	cases := []Options{
		{Instances: 0, FGHz: 3, Phases: 2},
		{Instances: 4, FGHz: 0, Phases: 2},
		{Instances: 4, FGHz: 3, Phases: 1},
		{Instances: 4, FGHz: 3, Phases: 2, Threads: 9},
		{Instances: 4, FGHz: 3, Phases: 2, PeriodS: -1},
		{Instances: 20, FGHz: 3, Phases: 2}, // 160 cores on a 100-core chip
	}
	for i, opt := range cases {
		if _, err := New(fp, x, opt); err == nil {
			t.Errorf("case %d should error: %+v", i, opt)
		}
	}
}

func TestScheduleStructure(t *testing.T) {
	fp := grid(t)
	x, _ := apps.ByName("x264")
	s, err := New(fp, x, Options{Instances: 6, FGHz: 3.0, Phases: 2, PeriodS: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %d", len(s.Phases))
	}
	for i, plan := range s.Phases {
		if plan.ActiveCores() != 48 {
			t.Errorf("phase %d active = %d", i, plan.ActiveCores())
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("phase %d invalid: %v", i, err)
		}
	}
	// Phases are disjoint when the workload fits in half the chip
	// (48 ≤ 50).
	used := map[int]int{}
	for _, plan := range s.Phases {
		for _, pl := range plan.Placements {
			for _, c := range pl.Cores {
				used[c]++
			}
		}
	}
	for c, n := range used {
		if n > 1 {
			t.Errorf("core %d active in %d phases; expected disjoint", c, n)
		}
	}
	// PlanAt cycles with the period.
	if s.PlanAt(0) != s.Phases[0] || s.PlanAt(0.49) != s.Phases[0] {
		t.Errorf("phase 0 window wrong")
	}
	if s.PlanAt(0.5) != s.Phases[1] || s.PlanAt(1.0) != s.Phases[0] {
		t.Errorf("cycling wrong")
	}
	if s.PlanAt(-0.1) == nil {
		// negative time clamps into the cycle rather than panicking
	} else if s.PlanAt(-0.1) != s.Phases[1] {
		t.Errorf("negative time should wrap")
	}
}

func TestDutyCycle(t *testing.T) {
	fp := grid(t)
	x, _ := apps.ByName("x264")
	s, err := New(fp, x, Options{Instances: 6, FGHz: 3.0, Phases: 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for c := 0; c < 100; c++ {
		d := s.DutyCycle(c)
		if d != 0 && math.Abs(d-0.5) > 1e-12 {
			t.Errorf("core %d duty = %v, want 0 or 0.5", c, d)
		}
		sum += d
	}
	// Total duty equals the per-phase active count.
	if math.Abs(sum-48) > 1e-9 {
		t.Errorf("total duty = %v, want 48", sum)
	}
	var empty Schedule
	if empty.DutyCycle(0) != 0 || empty.PlanAt(1) != nil {
		t.Errorf("empty schedule should be inert")
	}
}

func TestRotationLowersPeakTemperature(t *testing.T) {
	// The headline property: at identical performance (same instantaneous
	// active-core count and frequency), rotating the mapping lowers the
	// steady peak temperature versus a static mapping, because each site
	// only integrates duty-cycled power.
	if testing.Short() {
		t.Skip("transient experiment")
	}
	p, err := core.NewPlatform(tech.Node16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	// Rotate between the two checkerboard parities: both phases are
	// equally well spread, so the comparison isolates the duty-cycling
	// effect. (Rotating a periphery-first ordering would instead move
	// work into the die centre and can *raise* the peak.)
	// The rotation period must also sit below the die-local thermal time
	// constant (≈2 ms for this stack) or each site fully heats within
	// its dwell and the duty-cycling benefit vanishes.
	const instances = 6
	sched, err := New(p.Floorplan, s, Options{
		Instances: instances, FGHz: 3.6, Phases: 2, PeriodS: 1e-3,
		Base: mapping.Checkerboard,
	})
	if err != nil {
		t.Fatal(err)
	}
	level := p.Ladder.Nearest(3.6)
	opts := sim.Options{Duration: 10, ControlPeriod: 0.5e-3}
	static, err := sim.Run(p, sched.Phases[0], boost.Constant{Level: level}, p.Ladder, opts)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := sim.RunDynamic(p, sched, boost.Constant{Level: level}, p.Ladder, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Identical performance…
	if math.Abs(static.AvgGIPS-rotated.AvgGIPS) > 1e-6 {
		t.Errorf("GIPS differ: %v vs %v", static.AvgGIPS, rotated.AvgGIPS)
	}
	// …and a clearly lower peak for rotation.
	if rotated.MaxTempC >= static.MaxTempC-0.5 {
		t.Errorf("rotation should cut the peak: static %.2f vs rotated %.2f",
			static.MaxTempC, rotated.MaxTempC)
	}
}
