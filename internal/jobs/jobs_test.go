package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darksim/internal/report"
	"darksim/internal/runner"
)

// frag returns a one-row fragment table for point i.
func frag(i int) *report.Table {
	return &report.Table{
		Title:   fmt.Sprintf("point %d", i),
		Columns: []string{"v"},
		Rows:    [][]string{{fmt.Sprintf("%d", i)}},
	}
}

// newManager builds a Manager on a fresh pool; the default store is
// in-memory.
func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Pool == nil {
		cfg.Pool, _ = runner.WithContext(context.Background(), 2)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// waitState polls until the run reaches state st or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, st State) Run {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		r, ok := m.Get(id)
		if !ok {
			t.Fatalf("run %s vanished", id)
		}
		if r.State == st {
			return r
		}
		time.Sleep(2 * time.Millisecond)
	}
	r, _ := m.Get(id)
	t.Fatalf("run %s never reached %s (state %s, err %q)", id, st, r.State, r.Error)
	return Run{}
}

func TestRunLifecycleAndEvents(t *testing.T) {
	m := newManager(t, Config{})
	job := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		for i := 1; i <= 3; i++ {
			emit(frag(i), i, 3)
		}
		return []*report.Table{frag(99)}, nil
	}
	run, joined, err := m.Submit("experiment", "figx", "figx", map[string]string{"k": "v"}, job)
	if err != nil || joined {
		t.Fatalf("Submit = joined %v, err %v", joined, err)
	}
	if run.State != StateQueued {
		t.Fatalf("initial state = %s, want queued", run.State)
	}
	final := waitState(t, m, run.ID, StateDone)
	if final.Done != 3 || final.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", final.Done, final.Total)
	}
	if len(final.Tables) != 1 || final.Tables[0].Title != "point 99" {
		t.Errorf("terminal tables = %+v, want the job's result", final.Tables)
	}
	if final.Started.IsZero() || final.Finished.IsZero() {
		t.Errorf("timestamps not recorded: started %v finished %v", final.Started, final.Finished)
	}

	events, err := m.store.Events(run.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// running, 3 points, done — in order, contiguous seq from 1.
	types := make([]string, len(events))
	for i, ev := range events {
		if ev.Seq != int64(i+1) {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
		types[i] = ev.Type
	}
	want := []string{EventState, EventPoint, EventPoint, EventPoint, EventState}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event types = %v, want %v", types, want)
	}
	last := events[len(events)-1]
	if last.State != StateDone || len(last.Tables) != 1 {
		t.Errorf("terminal event = %+v, want done with tables", last)
	}

	st := m.Stats()
	if st.Completed != 1 || st.Queued != 0 || st.Running != 0 {
		t.Errorf("stats = %+v, want one completed, no live runs", st)
	}
}

func TestSubmitDedupesLiveRuns(t *testing.T) {
	m := newManager(t, Config{})
	gate := make(chan struct{})
	computes := 0
	job := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		computes++
		<-gate
		return []*report.Table{frag(1)}, nil
	}
	first, joined, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil || joined {
		t.Fatalf("first Submit = joined %v, err %v", joined, err)
	}
	second, joined, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil || !joined {
		t.Fatalf("second Submit = joined %v, err %v, want joined", joined, err)
	}
	if first.ID != second.ID {
		t.Fatalf("deduped submission got run %s, want %s", second.ID, first.ID)
	}
	close(gate)
	waitState(t, m, first.ID, StateDone)
	if computes != 1 {
		t.Errorf("computes = %d, want 1 (shared run)", computes)
	}
	if got := m.Stats().Deduped; got != 1 {
		t.Errorf("deduped counter = %d, want 1", got)
	}
	// The key is free again after the run finished: a new submission
	// starts a fresh run instead of returning the stale result.
	third, joined, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil || joined {
		t.Fatalf("post-terminal Submit = joined %v, err %v", joined, err)
	}
	if third.ID == first.ID {
		t.Error("post-terminal submission reused the finished run")
	}
}

func TestQueueFullRejects(t *testing.T) {
	pool, _ := runner.WithContext(context.Background(), 1)
	m := newManager(t, Config{Pool: pool, QueueSize: 1})
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	blocked := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		select {
		case <-gate:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// a occupies the single worker; b is pulled by the dispatcher, which
	// then blocks on the pool — leaving the queue empty for c; d must be
	// rejected.
	a, _, err := m.Submit("experiment", "a", "a", nil, blocked)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning)
	if _, _, err := m.Submit("experiment", "b", "b", nil, blocked); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for m.Stats().QueueDepth != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if _, _, err := m.Submit("experiment", "c", "c", nil, blocked); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit("experiment", "d", "d", nil, blocked); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("fourth Submit err = %v, want ErrQueueFull", err)
	}
	if got := m.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	close(gate)
}

func TestCancelQueuedRun(t *testing.T) {
	pool, _ := runner.WithContext(context.Background(), 1)
	m := newManager(t, Config{Pool: pool, QueueSize: 4})
	gate := make(chan struct{})
	defer close(gate)
	blocked := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		select {
		case <-gate:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	a, _, err := m.Submit("experiment", "a", "a", nil, blocked)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, a.ID, StateRunning)
	b, _, err := m.Submit("experiment", "b", "b", nil, blocked)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Cancel(b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("cancelled-while-queued state = %s, want cancelled immediately", snap.State)
	}
	if got := m.Stats().Cancelled; got != 1 {
		t.Errorf("cancelled counter = %d, want 1", got)
	}
	if _, err := m.Cancel(b.ID); err != nil {
		t.Errorf("cancelling a terminal run: %v, want no-op", err)
	}
	if _, err := m.Cancel("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancelling unknown run err = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningFreesPoolSlot(t *testing.T) {
	pool, _ := runner.WithContext(context.Background(), 1)
	m := newManager(t, Config{Pool: pool})
	job := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		emit(frag(1), 1, 2)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	run, _, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, run.ID, StateRunning)
	if got := pool.Active(); got != 1 {
		t.Fatalf("pool active = %d during run, want 1", got)
	}
	if _, err := m.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, run.ID, StateCancelled)
	if final.Done != 1 {
		t.Errorf("cancelled run lost its completed point: done = %d", final.Done)
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.Active() != 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := pool.Active(); got != 0 {
		t.Fatalf("pool active = %d after cancellation, want 0 (slot freed)", got)
	}
	// The freed slot accepts new work.
	again, _, err := m.Submit("experiment", "figy", "figy", nil,
		func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, again.ID, StateDone)
}

func TestSubscribeReplayThenFollowIsGapless(t *testing.T) {
	m := newManager(t, Config{})
	release := make(chan struct{})
	job := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		emit(frag(1), 1, 3)
		emit(frag(2), 2, 3)
		<-release
		emit(frag(3), 3, 3)
		return []*report.Table{frag(9)}, nil
	}
	run, _, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first two points are persisted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, _ := m.Get(run.ID)
		if r.Done >= 2 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("run never reached 2 points: %+v", r)
		}
		time.Sleep(2 * time.Millisecond)
	}
	replay, live, stop, err := m.Subscribe(run.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	close(release)
	var seqs []int64
	for _, ev := range replay {
		seqs = append(seqs, ev.Seq)
	}
	for ev := range live {
		seqs = append(seqs, ev.Seq)
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("event sequence %v has a gap or duplicate at %d", seqs, i)
		}
	}
	// running + 3 points + done
	if len(seqs) != 5 {
		t.Fatalf("saw %d events %v, want 5", len(seqs), seqs)
	}
	// Subscribing to a finished run yields a pure replay and a closed
	// channel; resuming mid-log yields only the suffix.
	replay2, live2, stop2, err := m.Subscribe(run.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop2()
	if _, open := <-live2; open {
		t.Error("terminal run's live channel delivered an event, want closed")
	}
	if len(replay2) != 2 || replay2[0].Seq != 4 {
		t.Errorf("resume-after-3 replay = %+v, want seqs 4,5", replay2)
	}
	if _, _, _, err := m.Subscribe("missing", 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Subscribe unknown run err = %v, want ErrNotFound", err)
	}
}

func TestCloseInterruptsStragglers(t *testing.T) {
	pool, _ := runner.WithContext(context.Background(), 1)
	m, err := New(Config{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	job := func(ctx context.Context, emit EmitFunc) ([]*report.Table, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	run, _, err := m.Submit("experiment", "figx", "figx", nil, job)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close err = %v, want deadline exceeded (drain timed out)", err)
	}
	r, _ := m.Get(run.ID)
	if r.State != StateFailed || !strings.Contains(r.Error, "interrupted") {
		t.Errorf("interrupted run = %s (%q), want failed/interrupted", r.State, r.Error)
	}
	if _, _, err := m.Submit("experiment", "y", "y", nil, job); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close err = %v, want ErrClosed", err)
	}
}

func TestFileStoreRestartRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")

	// First life: a daemon persists a run mid-flight — created, running,
	// two completed points — then dies without a terminal event.
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	meta := Meta{ID: "r1", Kind: "experiment", Label: "fig12", Key: "fig12", Created: time.Now().UTC()}
	if err := store.Create(meta); err != nil {
		t.Fatal(err)
	}
	evs := []Event{
		{Seq: 1, Type: EventState, State: StateRunning, Time: time.Now().UTC()},
		{Seq: 2, Type: EventPoint, Done: 1, Total: 3, Table: frag(1), Time: time.Now().UTC()},
		{Seq: 3, Type: EventPoint, Done: 2, Total: 3, Table: frag(2), Time: time.Now().UTC()},
	}
	for _, ev := range evs {
		if err := store.Append("r1", ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the manager reopens the store; the interrupted run is
	// visible, failed, with its completed points intact and replayable.
	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{Store: store2})
	r, ok := m.Get("r1")
	if !ok {
		t.Fatal("recovered run not visible")
	}
	if r.State != StateFailed || !strings.Contains(r.Error, "interrupted") {
		t.Fatalf("recovered run = %s (%q), want failed/interrupted", r.State, r.Error)
	}
	if r.Done != 2 || r.Total != 3 {
		t.Errorf("recovered progress = %d/%d, want 2/3", r.Done, r.Total)
	}
	replay, live, stop, err := m.Subscribe("r1", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if _, open := <-live; open {
		t.Error("recovered run's live channel delivered an event, want closed")
	}
	if len(replay) != 4 {
		t.Fatalf("replay has %d events, want 4 (running, 2 points, failed)", len(replay))
	}
	if replay[1].Table == nil || replay[1].Table.Rows[0][0] != "1" {
		t.Errorf("first point's table not preserved: %+v", replay[1])
	}
	terminal := replay[3]
	if terminal.State != StateFailed || terminal.Seq != 4 {
		t.Errorf("terminal recovery event = %+v, want failed at seq 4", terminal)
	}
	// The failure is persisted, not just in memory: a third open sees it.
	if err := m.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store3.Close()
	evs3, err := store3.Events("r1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs3) != 4 || evs3[3].State != StateFailed {
		t.Errorf("persisted history after recovery = %d events, want the failed terminal on disk", len(evs3))
	}
}

func TestFileStoreToleratesTornFinalWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Create(Meta{ID: "r1", Kind: "experiment", Label: "x", Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := store.Append("r1", Event{Seq: 1, Type: EventState, State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a record on the final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"run":"r1","event":{"seq":2,"ty`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatalf("reopen with torn final line: %v", err)
	}
	evs, err := re.Events("r1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Errorf("replayed %d events, want 1 (torn line dropped)", len(evs))
	}
	// The next append lands on its own line despite the torn tail.
	if err := re.Append("r1", Event{Seq: 2, Type: EventState, State: StateFailed}); err != nil {
		t.Fatal(err)
	}
	re.Close()

	// Corruption anywhere else is a hard error, not silent data loss.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	lines[0] = `{"create":{broken`
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileStore(path); err == nil {
		t.Error("reopening a store with a corrupt interior line succeeded, want error")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	ev := Event{Seq: 7, Type: EventPoint, Time: time.Date(2026, 8, 7, 1, 2, 3, 0, time.UTC),
		Done: 2, Total: 5, Table: frag(2)}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("event JSON is not round-trip stable:\n%s\n%s", data, data2)
	}
}
