package jobs

import (
	"fmt"
	"sort"
	"sync"
)

// Store persists run creation records and their event logs. The Manager
// serializes Create/Append per run; Events may be called concurrently
// with appends, so implementations must be safe for concurrent use.
//
// The log is append-only: events arrive with strictly increasing Seq per
// run and are never rewritten. That is what makes replay cheap and
// byte-stable — a subscriber that reconnects re-reads exactly the
// records it missed.
type Store interface {
	// Create persists a new run's creation record. The run id must be
	// unused.
	Create(meta Meta) error
	// Append persists one event of an existing run.
	Append(id string, ev Event) error
	// Events returns the persisted events of a run with Seq > afterSeq,
	// in Seq order.
	Events(id string, afterSeq int64) ([]Event, error)
	// Load returns every persisted run's creation record, in creation
	// order. The Manager calls it once at startup to rebuild snapshots.
	Load() ([]Meta, error)
	// Close releases the store's resources. A closed store rejects
	// further writes.
	Close() error
}

// ErrNoRun is wrapped by store errors for operations on unknown run ids.
var ErrNoRun = fmt.Errorf("jobs: no such run")

// storedRun is one run held by MemStore.
type storedRun struct {
	meta   Meta
	events []Event
}

// MemStore is the in-memory Store: fast, empty after restart. It is the
// default for tests and for daemons that do not need durability.
type MemStore struct {
	mu    sync.RWMutex
	runs  map[string]*storedRun
	order []string
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{runs: make(map[string]*storedRun)}
}

// Create implements Store.
func (s *MemStore) Create(meta Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.runs[meta.ID]; ok {
		return fmt.Errorf("jobs: run %s already exists", meta.ID)
	}
	s.runs[meta.ID] = &storedRun{meta: meta}
	s.order = append(s.order, meta.ID)
	return nil
}

// Append implements Store.
func (s *MemStore) Append(id string, ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRun, id)
	}
	r.events = append(r.events, ev)
	return nil
}

// Events implements Store.
func (s *MemStore) Events(id string, afterSeq int64) ([]Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRun, id)
	}
	// Events are in Seq order; binary-search the resume point.
	i := sort.Search(len(r.events), func(i int) bool { return r.events[i].Seq > afterSeq })
	out := make([]Event, len(r.events)-i)
	copy(out, r.events[i:])
	return out, nil
}

// Load implements Store.
func (s *MemStore) Load() ([]Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Meta, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.runs[id].meta)
	}
	return out, nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }
