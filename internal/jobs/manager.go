package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"darksim/internal/report"
	"darksim/internal/runner"
)

// Errors the lifecycle API returns; the HTTP layer maps them to 429/503/404.
var (
	// ErrQueueFull reports that the submission queue is at capacity —
	// the backpressure signal (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("jobs: run queue is full")
	// ErrClosed reports a submission after Close began (HTTP 503).
	ErrClosed = errors.New("jobs: manager is shutting down")
	// ErrNotFound reports an unknown run id (HTTP 404).
	ErrNotFound = errors.New("jobs: run not found")
)

// EmitFunc publishes one completed partial result from inside a job:
// the fragment table plus how many of the job's points are finished.
type EmitFunc func(tbl *report.Table, done, total int)

// Job is the unit of work a run executes. It must honor ctx cancellation
// (that is what frees the compute slot on DELETE and on shutdown), may
// call emit any number of times from any goroutine, and returns the
// terminal result tables.
type Job func(ctx context.Context, emit EmitFunc) ([]*report.Table, error)

// Config parameterizes a Manager. Zero values select the defaults.
type Config struct {
	// Store persists run history; nil means a fresh MemStore.
	Store Store
	// Pool is the compute pool jobs execute on. Passing the serving
	// layer's pool makes async runs and synchronous requests compete for
	// the same slots. Nil creates a private pool with DefaultWorkers.
	Pool *runner.Group
	// QueueSize bounds runs waiting for a pool slot (default 64). A
	// full queue rejects Submit with ErrQueueFull.
	QueueSize int
	// Timeout bounds one run's execution (0 = unbounded).
	Timeout time.Duration
	// SubscriberBuffer is the per-subscriber event buffer (default 256).
	// A subscriber that falls this far behind is disconnected and must
	// reconnect with its last seen sequence number.
	SubscriberBuffer int
	// Logger receives store-failure diagnostics; nil disables logging.
	Logger *slog.Logger
	// Now is the clock (for tests); nil means time.Now.
	Now func() time.Time
}

// Stats is a point-in-time view of the runtime's gauges and counters.
type Stats struct {
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Queued      int64 `json:"queued"`
	Running     int64 `json:"running"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Cancelled   int64 `json:"cancelled"`
	Deduped     int64 `json:"deduped"`
	Rejected    int64 `json:"rejected"`
	Subscribers int64 `json:"subscribers"`
}

// run is the Manager's live handle on one run. The run's own mutex
// guards its snapshot, event sequence, and subscriber set; the event log
// is appended and broadcast under it, which is what makes Subscribe's
// replay-then-follow gapless.
type run struct {
	meta    Meta
	job     Job
	tracked bool // counted in runWG (false for runs recovered from the store)

	mu          sync.Mutex
	snap        Run
	cancel      context.CancelFunc
	cancelReq   bool
	cancelState State  // terminal state a requested cancellation lands in
	cancelErr   string // and its recorded reason
	subs        map[int]chan Event
	nextSub     int
	storeErr    error
}

// Manager owns the run lifecycle: a bounded submission queue drained by
// one dispatcher onto the compute pool, content-key dedupe across live
// runs, and fan-out of persisted events to subscribers.
type Manager struct {
	cfg   Config
	store Store
	pool  *runner.Group
	now   func() time.Time
	log   *slog.Logger

	queue          chan *run
	dispatcherDone chan struct{}
	runWG          sync.WaitGroup

	mu     sync.Mutex
	closed bool
	runs   map[string]*run
	order  []string
	byKey  map[string]*run

	queued      atomic.Int64
	running     atomic.Int64
	completed   atomic.Int64
	failed      atomic.Int64
	cancelled   atomic.Int64
	deduped     atomic.Int64
	rejected    atomic.Int64
	subscribers atomic.Int64
}

// New builds a Manager, replays the store, marks runs that were live
// when the previous process died as failed (their completed points stay
// replayable — interrupted, never silently lost), and starts the
// dispatcher.
func New(cfg Config) (*Manager, error) {
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	if cfg.Pool == nil {
		cfg.Pool, _ = runner.WithContext(context.Background(), 0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	m := &Manager{
		cfg:            cfg,
		store:          cfg.Store,
		pool:           cfg.Pool,
		now:            cfg.Now,
		log:            log,
		queue:          make(chan *run, cfg.QueueSize),
		dispatcherDone: make(chan struct{}),
		runs:           make(map[string]*run),
		byKey:          make(map[string]*run),
	}
	if err := m.recover(); err != nil {
		return nil, err
	}
	go m.dispatch()
	return m, nil
}

// recover rebuilds snapshots from the store and terminates interrupted
// runs: a run that was queued or running when the store was last written
// cannot resume (its Job is gone with the old process), so it is marked
// failed — visibly, in the store — rather than left dangling.
func (m *Manager) recover() error {
	metas, err := m.store.Load()
	if err != nil {
		return err
	}
	for _, meta := range metas {
		events, err := m.store.Events(meta.ID, 0)
		if err != nil {
			return err
		}
		r := &run{meta: meta, snap: snapshotOf(meta, events), subs: make(map[int]chan Event)}
		m.runs[meta.ID] = r
		m.order = append(m.order, meta.ID)
		if !r.snap.State.Terminal() {
			// Pre-load the gauge the transition below will decrement.
			if r.snap.State == StateRunning {
				m.running.Add(1)
			} else {
				m.queued.Add(1)
			}
			m.transition(r, StateFailed, "interrupted: run store reopened after restart", nil)
		}
	}
	return nil
}

// newRunID returns a fresh random run id.
func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random run id: %v", err))
	}
	return "r" + hex.EncodeToString(b[:])
}

// Submit registers a run for job under the dedupe key. If a live run
// (queued or running) already holds the key, its snapshot is returned
// with joined=true and job is dropped — concurrent identical submissions
// share one run and one computation. A full queue returns ErrQueueFull.
func (m *Manager) Submit(kind, label, key string, params map[string]string, job Job) (Run, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Run{}, false, ErrClosed
	}
	if r, ok := m.byKey[key]; ok {
		m.deduped.Add(1)
		return r.snapshot(), true, nil
	}
	if len(m.queue) == cap(m.queue) {
		m.rejected.Add(1)
		return Run{}, false, ErrQueueFull
	}
	meta := Meta{
		ID:      newRunID(),
		Kind:    kind,
		Label:   label,
		Key:     key,
		Params:  params,
		Created: m.now(),
	}
	if err := m.store.Create(meta); err != nil {
		return Run{}, false, err
	}
	r := &run{
		meta:    meta,
		job:     job,
		tracked: true,
		snap:    Run{Meta: meta, State: StateQueued},
		subs:    make(map[int]chan Event),
	}
	m.runs[meta.ID] = r
	m.order = append(m.order, meta.ID)
	m.byKey[key] = r
	m.runWG.Add(1)
	m.queued.Add(1)
	// Guaranteed non-blocking: sends only happen here, under m.mu, and
	// the capacity check above just passed.
	m.queue <- r
	return r.snapshot(), false, nil
}

// dispatch drains the queue onto the pool. pool.Go blocks while every
// worker slot is busy, which is the backpressure that lets the bounded
// queue fill and reject further submissions.
func (m *Manager) dispatch() {
	defer close(m.dispatcherDone)
	for r := range m.queue {
		r := r
		m.pool.Go(func(ctx context.Context) error {
			m.execute(ctx, r)
			// A failed run must not cancel the pool's other work.
			return nil
		})
	}
}

// execute runs one dequeued run to a terminal state.
func (m *Manager) execute(poolCtx context.Context, r *run) {
	r.mu.Lock()
	if r.snap.State.Terminal() {
		// Cancelled while still queued; nothing to do.
		r.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(poolCtx)
	r.cancel = cancel
	req, cancelState, cancelErr := r.cancelReq, r.cancelState, r.cancelErr
	r.mu.Unlock()
	defer cancel()
	if req {
		// Cancel arrived between dequeue and here.
		m.transition(r, cancelState, cancelErr, nil)
		return
	}
	if m.cfg.Timeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, m.cfg.Timeout)
		defer tcancel()
	}
	m.transition(r, StateRunning, "", nil)
	emit := func(tbl *report.Table, done, total int) { m.emitPoint(r, tbl, done, total) }
	tables, err := r.job(ctx, emit)

	r.mu.Lock()
	req, cancelState, cancelErr = r.cancelReq, r.cancelState, r.cancelErr
	r.mu.Unlock()
	switch {
	case err == nil:
		m.transition(r, StateDone, "", tables)
	case req && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		m.transition(r, cancelState, cancelErr, nil)
	case errors.Is(err, context.DeadlineExceeded):
		m.transition(r, StateFailed, fmt.Sprintf("timed out after %s: %v", m.cfg.Timeout, err), nil)
	default:
		m.transition(r, StateFailed, err.Error(), nil)
	}
}

// appendLocked persists one event, folds it into the snapshot, and
// broadcasts it. Callers hold r.mu. A subscriber whose buffer is full is
// disconnected (channel closed) rather than allowed to stall the run; it
// reconnects with its last seen Seq and replays what it missed.
func (m *Manager) appendLocked(r *run, ev Event) {
	ev.Seq = r.snap.LastSeq + 1
	ev.Time = m.now()
	if err := m.store.Append(r.meta.ID, ev); err != nil {
		if r.storeErr == nil {
			r.storeErr = err
			m.log.Error("run store append failed; later replays may miss events",
				"run", r.meta.ID, "seq", ev.Seq, "err", err)
		}
	}
	r.snap.apply(ev)
	for id, ch := range r.subs {
		select {
		case ch <- ev:
		default:
			delete(r.subs, id)
			close(ch)
			m.subscribers.Add(-1)
		}
	}
	if ev.Type == EventState && ev.State.Terminal() {
		for id, ch := range r.subs {
			delete(r.subs, id)
			close(ch)
			m.subscribers.Add(-1)
		}
	}
}

// emitPoint records one partial result.
func (m *Manager) emitPoint(r *run, tbl *report.Table, done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snap.State.Terminal() {
		// A straggling worker goroutine after cancellation.
		return
	}
	m.appendLocked(r, Event{Type: EventPoint, Done: done, Total: total, Table: tbl})
}

// transition moves the run to st (recording errMsg / result tables) and
// updates the bookkeeping. It reports whether the transition happened —
// terminal states are sticky, so exactly one caller wins.
func (m *Manager) transition(r *run, st State, errMsg string, tables []*report.Table) bool {
	r.mu.Lock()
	prev := r.snap.State
	if prev.Terminal() {
		r.mu.Unlock()
		return false
	}
	ev := Event{Type: EventState, State: st, Error: errMsg, Tables: tables,
		Done: r.snap.Done, Total: r.snap.Total}
	m.appendLocked(r, ev)
	r.mu.Unlock()

	if prev == StateQueued {
		m.queued.Add(-1)
	}
	if prev == StateRunning {
		m.running.Add(-1)
	}
	switch st {
	case StateRunning:
		m.running.Add(1)
	case StateDone:
		m.completed.Add(1)
	case StateFailed:
		m.failed.Add(1)
	case StateCancelled:
		m.cancelled.Add(1)
	}
	if st.Terminal() {
		m.mu.Lock()
		if m.byKey[r.meta.Key] == r {
			delete(m.byKey, r.meta.Key)
		}
		m.mu.Unlock()
		if r.tracked {
			m.runWG.Done()
		}
	}
	return true
}

// snapshot returns a copy of the run's current state. The tables and
// params it references are immutable once published.
func (r *run) snapshot() Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snap
}

// Get returns the snapshot of one run.
func (m *Manager) Get(id string) (Run, bool) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return Run{}, false
	}
	return r.snapshot(), true
}

// List returns snapshots of every known run in creation order.
func (m *Manager) List() []Run {
	m.mu.Lock()
	runs := make([]*run, 0, len(m.order))
	for _, id := range m.order {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	out := make([]Run, len(runs))
	for i, r := range runs {
		out[i] = r.snapshot()
	}
	return out
}

// ListKind lists every known run of one kind (e.g. "experiment",
// "scenario", "policy"), oldest first; an empty kind lists everything.
func (m *Manager) ListKind(kind string) []Run {
	all := m.List()
	if kind == "" {
		return all
	}
	out := make([]Run, 0, len(all))
	for _, r := range all {
		if r.Kind == kind {
			out = append(out, r)
		}
	}
	return out
}

// Cancel requests cooperative cancellation of a run. Queued runs are
// cancelled immediately; running runs get their context cancelled and
// reach StateCancelled when the job returns (freeing its pool slot).
// Cancelling a terminal run is a no-op. The returned snapshot reflects
// the state after the request was applied.
func (m *Manager) Cancel(id string) (Run, error) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return Run{}, ErrNotFound
	}
	r.mu.Lock()
	st := r.snap.State
	if st.Terminal() {
		r.mu.Unlock()
		return r.snapshot(), nil
	}
	r.cancelReq = true
	r.cancelState = StateCancelled
	r.cancelErr = "cancelled by client"
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	} else {
		// Not yet dispatched: transition directly. If the dispatcher
		// started it in the meantime, execute observes cancelReq and this
		// transition loses benignly.
		m.transition(r, StateCancelled, "cancelled by client", nil)
	}
	return r.snapshot(), nil
}

// Subscribe returns the persisted events of a run with Seq > afterSeq
// plus a live channel for what follows, with no gap or duplicate between
// the two (both are taken under the run's event lock). The channel is
// closed after the terminal event — or early if the subscriber falls too
// far behind, in which case it should resubscribe from its last seen
// Seq. cancel releases the subscription; it is idempotent.
func (m *Manager) Subscribe(id string, afterSeq int64) (replay []Event, ch <-chan Event, cancel func(), err error) {
	m.mu.Lock()
	r := m.runs[id]
	m.mu.Unlock()
	if r == nil {
		return nil, nil, nil, ErrNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	replay, err = m.store.Events(id, afterSeq)
	if err != nil {
		return nil, nil, nil, err
	}
	if r.snap.State.Terminal() {
		done := make(chan Event)
		close(done)
		return replay, done, func() {}, nil
	}
	c := make(chan Event, m.cfg.SubscriberBuffer)
	subID := r.nextSub
	r.nextSub++
	r.subs[subID] = c
	m.subscribers.Add(1)
	cancel = func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.subs[subID]; ok {
			delete(r.subs, subID)
			close(c)
			m.subscribers.Add(-1)
		}
	}
	return replay, c, cancel, nil
}

// Stats samples the runtime's gauges and counters.
func (m *Manager) Stats() Stats {
	return Stats{
		QueueDepth:  len(m.queue),
		QueueCap:    cap(m.queue),
		Queued:      m.queued.Load(),
		Running:     m.running.Load(),
		Completed:   m.completed.Load(),
		Failed:      m.failed.Load(),
		Cancelled:   m.cancelled.Load(),
		Deduped:     m.deduped.Load(),
		Rejected:    m.rejected.Load(),
		Subscribers: m.subscribers.Load(),
	}
}

// Close stops accepting submissions, lets queued and running runs drain
// within ctx, then cancels the stragglers (marking them failed) and
// closes the store. It is idempotent.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	already := m.closed
	m.closed = true
	if !already {
		close(m.queue)
	}
	m.mu.Unlock()
	<-m.dispatcherDone

	drained := make(chan struct{})
	go func() {
		m.runWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		m.interruptAll()
		<-drained
	}
	if already {
		return nil
	}
	if err := m.store.Close(); err != nil {
		return err
	}
	return ctx.Err()
}

// interruptAll cancels every live run, marking it failed: a drain that
// ran out of time is an interruption, not a client cancellation.
func (m *Manager) interruptAll() {
	m.mu.Lock()
	runs := make([]*run, 0, len(m.runs))
	for _, r := range m.runs {
		runs = append(runs, r)
	}
	m.mu.Unlock()
	for _, r := range runs {
		r.mu.Lock()
		if r.snap.State.Terminal() {
			r.mu.Unlock()
			continue
		}
		r.cancelReq = true
		r.cancelState = StateFailed
		r.cancelErr = "interrupted: shutting down"
		cancel := r.cancel
		r.mu.Unlock()
		if cancel != nil {
			cancel()
		} else {
			m.transition(r, StateFailed, "interrupted: shutting down", nil)
		}
	}
}
