// Package jobs is the asynchronous run runtime: submit a computation,
// get a RunID back immediately, and follow its lifecycle — queued →
// running → done/failed/cancelled — through a persistent event log that
// records every state transition and every partial result table.
//
// The pieces:
//
//   - Manager: run lifecycle over a bounded submission queue whose jobs
//     execute on an externally owned runner.Group, so async runs and
//     synchronous requests compete for the same compute slots. A full
//     queue rejects submissions (backpressure, ErrQueueFull → HTTP 429);
//     identical concurrent submissions dedupe onto one run by content
//     key (singleflight at run granularity).
//   - Store: the persistence seam. MemStore keeps the event log in
//     memory; FileStore appends JSON lines to a single file so runs
//     survive daemon restarts — on reopen, runs that were mid-flight are
//     marked failed rather than silently lost, and every persisted
//     partial result stays replayable.
//   - Subscribe: replay-then-follow event delivery. A subscriber names
//     the last sequence number it has seen and receives everything after
//     it — first the persisted backlog, then live events — which is
//     exactly the contract SSE `Last-Event-ID` reconnection needs.
//
// Cancellation is cooperative: Cancel threads a context cancellation
// into the running job, which is expected to return promptly and thereby
// free its compute-pool slot.
package jobs

import (
	"time"

	"darksim/internal/report"
)

// State is a run's lifecycle phase.
type State string

// The run lifecycle: Queued and Running are live, the other three are
// terminal. Transitions only move forward: queued → running →
// done|failed, and cancelled can be entered from either live state.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event types: a state transition, a completed partial result, or the
// terminal result. The terminal "state" event for StateDone carries the
// full result tables, so a subscriber that replays from any point always
// ends with the complete result.
const (
	EventState = "state"
	EventPoint = "point"
)

// Event is one record of a run's persisted history. Seq is 1-based and
// strictly increasing per run; it doubles as the SSE event id, so a
// subscriber can resume from any Seq it has seen.
type Event struct {
	Seq  int64     `json:"seq"`
	Type string    `json:"type"` // EventState | EventPoint
	Time time.Time `json:"time"`

	// State-event fields.
	State State  `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	// Point-event fields: the fragment table plus completion progress
	// (Done points finished out of Total). State events after the first
	// point also carry the final Done/Total.
	Done  int           `json:"done,omitempty"`
	Total int           `json:"total,omitempty"`
	Table *report.Table `json:"table,omitempty"`

	// Tables is the terminal result, attached to the StateDone event.
	Tables []*report.Table `json:"tables,omitempty"`
}

// Meta is the immutable creation record of a run.
type Meta struct {
	ID      string            `json:"id"`
	Kind    string            `json:"kind"`  // e.g. "experiment", "scenario"
	Label   string            `json:"label"` // human-readable, e.g. "fig12"
	Key     string            `json:"key"`   // content key used for dedupe
	Params  map[string]string `json:"params,omitempty"`
	Created time.Time         `json:"created"`
}

// Run is a point-in-time snapshot of one run, rebuilt from Meta plus the
// event log.
type Run struct {
	Meta
	State    State           `json:"state"`
	Error    string          `json:"error,omitempty"`
	Done     int             `json:"points_done"`
	Total    int             `json:"points_total"`
	LastSeq  int64           `json:"last_seq"`
	Started  time.Time       `json:"started,omitzero"`
	Finished time.Time       `json:"finished,omitzero"`
	Tables   []*report.Table `json:"tables,omitempty"`
}

// apply folds one event into the snapshot.
func (r *Run) apply(ev Event) {
	r.LastSeq = ev.Seq
	if ev.Done > 0 {
		r.Done, r.Total = ev.Done, ev.Total
	}
	switch ev.Type {
	case EventState:
		r.State = ev.State
		r.Error = ev.Error
		switch {
		case ev.State == StateRunning:
			r.Started = ev.Time
		case ev.State.Terminal():
			r.Finished = ev.Time
			r.Tables = ev.Tables
		}
	}
}

// snapshotOf rebuilds a Run from its creation record and event history.
func snapshotOf(meta Meta, events []Event) Run {
	r := Run{Meta: meta, State: StateQueued}
	for _, ev := range events {
		r.apply(ev)
	}
	return r
}
