package jobs

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// FileStore is the durable Store: one append-only file of JSON lines,
// one line per creation record or event. Opening an existing file
// replays it into an in-memory index, so reads never touch the disk
// again; appends are written through immediately.
//
// The format is deliberately dumb — a self-describing record per line:
//
//	{"create":{"id":"r1","kind":"experiment",...}}
//	{"run":"r1","event":{"seq":1,"type":"state","state":"running",...}}
//
// A process killed mid-write leaves at most one truncated final line,
// which Open tolerates (the partial record is dropped, everything before
// it survives). Completed partial results are therefore never lost to a
// crash; only the event being written at the instant of death can be.
type FileStore struct {
	mu   sync.RWMutex
	path string
	f    *os.File
	w    *bufio.Writer
	mem  *MemStore // the replayed index; all reads are served from here
}

// fileRecord is one JSON line of the store file.
type fileRecord struct {
	Create *Meta  `json:"create,omitempty"`
	Run    string `json:"run,omitempty"`
	Event  *Event `json:"event,omitempty"`
}

// OpenFileStore opens (creating if absent) the append-only run store at
// path and replays its contents.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: open run store: %w", err)
	}
	s := &FileStore{path: path, f: f, mem: NewMemStore()}
	if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobs: seek run store: %w", err)
	}
	s.w = bufio.NewWriter(f)
	return s, nil
}

// replay loads every intact record into the in-memory index. A truncated
// final line (crash mid-append) is dropped; a corrupt record anywhere
// else is a hard error — the store must not silently skip history.
func (s *FileStore) replay() error {
	sc := bufio.NewScanner(s.f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		if pendingErr != nil {
			// The malformed record was not the final line.
			return pendingErr
		}
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec fileRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("jobs: run store %s line %d: %w", s.path, line, err)
			continue
		}
		switch {
		case rec.Create != nil:
			if err := s.mem.Create(*rec.Create); err != nil {
				return fmt.Errorf("jobs: run store %s line %d: %w", s.path, line, err)
			}
		case rec.Run != "" && rec.Event != nil:
			if err := s.mem.Append(rec.Run, *rec.Event); err != nil {
				return fmt.Errorf("jobs: run store %s line %d: %w", s.path, line, err)
			}
		default:
			pendingErr = fmt.Errorf("jobs: run store %s line %d: record has neither create nor event", s.path, line)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("jobs: reading run store %s: %w", s.path, err)
	}
	// pendingErr on the final line is the torn-write case: drop it.
	return nil
}

// write appends one record and flushes it to the OS.
func (s *FileStore) write(rec fileRecord) error {
	if s.w == nil {
		return errors.New("jobs: run store is closed")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.w.Write(data); err != nil {
		return err
	}
	if err := s.w.WriteByte('\n'); err != nil {
		return err
	}
	return s.w.Flush()
}

// Create implements Store.
func (s *FileStore) Create(meta Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mem.Create(meta); err != nil {
		return err
	}
	return s.write(fileRecord{Create: &meta})
}

// Append implements Store.
func (s *FileStore) Append(id string, ev Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.mem.Append(id, ev); err != nil {
		return err
	}
	return s.write(fileRecord{Run: id, Event: &ev})
}

// Events implements Store.
func (s *FileStore) Events(id string, afterSeq int64) ([]Event, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.Events(id, afterSeq)
}

// Load implements Store.
func (s *FileStore) Load() ([]Meta, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.mem.Load()
}

// Close flushes and closes the file. Further writes fail.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.w == nil {
		return nil
	}
	ferr := s.w.Flush()
	s.w = nil
	return errors.Join(ferr, s.f.Close())
}
