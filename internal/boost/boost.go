// Package boost implements the DVFS controllers §6 of the paper compares:
//
//   - a closed-loop boosting controller in the style of Intel's Turbo
//     Boost: every control period the frequency of all cores is raised or
//     lowered by one 200 MHz step depending on whether the peak
//     temperature is below or above the 80 °C threshold, letting the
//     system oscillate around the critical temperature;
//   - a constant-frequency baseline: the highest ladder level whose
//     steady-state peak temperature stays below the threshold ("running at
//     the next available voltage/frequency would violate the critical
//     temperature").
package boost

import (
	"errors"
	"fmt"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/sim"
	"darksim/internal/vf"
)

// DefaultHoldBandC is the default hold band of the closed-loop controller:
// the level is raised only while the peak temperature is more than this
// margin below the threshold. Without a band, the 1 ms control period
// out-runs the package's thermal lag — the controller reaches deep boost
// before the heat soak arrives and overshoots the threshold by several
// degrees; with it, the loop oscillates within ≈1 °C of the threshold the
// way Figure 11 shows.
const DefaultHoldBandC = 0.2

// Closed is the Turbo-Boost-style closed-loop controller. It implements
// sim.Controller.
type Closed struct {
	// ThresholdC is the boost temperature threshold (TDTM).
	ThresholdC float64
	// HoldBandC is the hold band below the threshold (see
	// DefaultHoldBandC).
	HoldBandC float64
	// MaxLevel bounds how high the controller may climb (last ladder
	// index). Levels below 0 are clamped by the simulator.
	MaxLevel int

	level int
}

// NewClosed creates a closed-loop controller starting at startLevel.
func NewClosed(thresholdC float64, startLevel, maxLevel int) (*Closed, error) {
	if thresholdC <= 0 {
		return nil, fmt.Errorf("boost: threshold %g °C", thresholdC)
	}
	if startLevel < 0 || maxLevel < startLevel {
		return nil, fmt.Errorf("boost: levels start=%d max=%d", startLevel, maxLevel)
	}
	return &Closed{
		ThresholdC: thresholdC,
		HoldBandC:  DefaultHoldBandC,
		MaxLevel:   maxLevel,
		level:      startLevel,
	}, nil
}

// Next implements sim.Controller: one step up while comfortably below the
// threshold, one step down at or above it, hold inside the band.
func (c *Closed) Next(peakTempC float64) int {
	switch {
	case peakTempC >= c.ThresholdC:
		if c.level > 0 {
			c.level--
		}
	case peakTempC < c.ThresholdC-c.HoldBandC:
		if c.level < c.MaxLevel {
			c.level++
		}
	}
	return c.level
}

// Current implements sim.Controller.
func (c *Closed) Current() int { return c.level }

// Constant always returns the same ladder level. It implements
// sim.Controller.
type Constant struct {
	Level int
}

// Next implements sim.Controller.
func (c Constant) Next(float64) int { return c.Level }

// Current implements sim.Controller.
func (c Constant) Current() int { return c.Level }

// FixedLevel implements sim.FixedLevelController: the decision never
// depends on the observed temperature, so quiet intervals may be
// macro-stepped under sim.StepAuto.
func (c Constant) FixedLevel() int { return c.Level }

// Greedy is a deliberately unsafe boosting controller: it steps up every
// control period with the temperature check disabled, climbing to MaxLevel
// and staying there no matter how hot the chip runs. It exists as the
// negative control for the policy sandbox's assertion engine — a correct
// trace checker must catch it blowing through TDTM — and implements
// sim.Controller.
type Greedy struct {
	// MaxLevel bounds the climb (last ladder index).
	MaxLevel int

	level int
}

// NewGreedy creates a greedy controller starting at startLevel.
func NewGreedy(startLevel, maxLevel int) (*Greedy, error) {
	if startLevel < 0 || maxLevel < startLevel {
		return nil, fmt.Errorf("boost: levels start=%d max=%d", startLevel, maxLevel)
	}
	return &Greedy{MaxLevel: maxLevel, level: startLevel}, nil
}

// Next implements sim.Controller: always one step up, never down — the
// peak temperature is ignored.
func (g *Greedy) Next(float64) int {
	if g.level < g.MaxLevel {
		g.level++
	}
	return g.level
}

// Current implements sim.Controller.
func (g *Greedy) Current() int { return g.level }

var _ sim.Controller = (*Greedy)(nil)

// ErrNoSafeLevel is returned when even the lowest ladder level violates
// the thermal constraint.
var ErrNoSafeLevel = errors.New("boost: no thermally safe constant level")

// FindConstantLevel returns the highest ladder level at which the plan's
// steady-state peak temperature stays at or below tcritC. This is the
// §6 constant-frequency operating point.
func FindConstantLevel(p *core.Platform, plan *mapping.Plan, ladder *vf.Ladder, tcritC float64) (int, error) {
	if len(ladder.Points) == 0 {
		return 0, errors.New("boost: empty ladder")
	}
	work := &mapping.Plan{NumCores: plan.NumCores}
	work.Placements = append([]mapping.Placement(nil), plan.Placements...)
	// The steady-state peak is monotone in the level, so binary search.
	peakAt := func(level int) (float64, error) {
		f := ladder.Points[level].FGHz
		for i := range work.Placements {
			work.Placements[i].FGHz = f
		}
		return p.PeakTemp(work)
	}
	lo := 0
	hi := len(ladder.Points) - 1
	pk, err := peakAt(lo)
	if err != nil {
		return 0, err
	}
	if pk > tcritC {
		return 0, fmt.Errorf("%w: peak %.2f °C at %.1f GHz", ErrNoSafeLevel, pk, ladder.Points[lo].FGHz)
	}
	if pk, err = peakAt(hi); err != nil {
		return 0, err
	} else if pk <= tcritC {
		return hi, nil
	}
	// Invariant: safe(lo), !safe(hi).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		pk, err := peakAt(mid)
		if err != nil {
			return 0, err
		}
		if pk <= tcritC {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

var _ sim.Controller = (*Closed)(nil)
var _ sim.Controller = Constant{}
var _ sim.FixedLevelController = Constant{}

// PerPlacement drives one closed loop per placement: per-application DVFS
// islands. Each loop reacts to its own placement's hottest core, so a
// cool application keeps boosting while a hot neighbour throttles — the
// control-side counterpart of DsRem's per-application v/f assignment.
// It implements sim.GroupController.
type PerPlacement struct {
	loops  []*Closed
	levels []int
}

// NewPerPlacement creates one closed loop per start level.
func NewPerPlacement(thresholdC float64, startLevels []int, maxLevel int) (*PerPlacement, error) {
	if len(startLevels) == 0 {
		return nil, errors.New("boost: no placements")
	}
	pp := &PerPlacement{levels: make([]int, len(startLevels))}
	for i, s := range startLevels {
		loop, err := NewClosed(thresholdC, s, maxLevel)
		if err != nil {
			return nil, fmt.Errorf("boost: placement %d: %w", i, err)
		}
		pp.loops = append(pp.loops, loop)
		pp.levels[i] = s
	}
	return pp, nil
}

// NextLevels implements sim.GroupController. The chip peak is ignored:
// the placement owning the hottest core sees it as its own peak.
func (pp *PerPlacement) NextLevels(_ float64, placementPeakC []float64) []int {
	for i, loop := range pp.loops {
		if i < len(placementPeakC) {
			pp.levels[i] = loop.Next(placementPeakC[i])
		}
	}
	return pp.levels
}

// CurrentLevels implements sim.GroupController.
func (pp *PerPlacement) CurrentLevels() []int {
	for i, loop := range pp.loops {
		pp.levels[i] = loop.Current()
	}
	return pp.levels
}

var _ sim.GroupController = (*PerPlacement)(nil)
