package boost

import (
	"testing"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/sim"
	"darksim/internal/tech"
)

var platCache *core.Platform

func plat(t testing.TB) *core.Platform {
	t.Helper()
	if platCache == nil {
		p, err := core.NewPlatform(tech.Node16)
		if err != nil {
			t.Fatal(err)
		}
		platCache = p
	}
	return platCache
}

func x264Plan(t testing.TB, p *core.Platform) *mapping.Plan {
	t.Helper()
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	cores, err := mapping.PeripheryFirst(p.Floorplan, 96)
	if err != nil {
		t.Fatal(err)
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < 12; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: x, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}
	return plan
}

func TestClosedControllerSteps(t *testing.T) {
	c, err := NewClosed(80, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Below threshold: climb one step per call, saturating at max.
	for want := 3; want <= 5; want++ {
		if got := c.Next(70); got != want {
			t.Fatalf("Next(70) = %d, want %d", got, want)
		}
	}
	if got := c.Next(70); got != 5 {
		t.Errorf("should saturate at max: %d", got)
	}
	// Above threshold: descend, saturating at 0.
	for want := 4; want >= 0; want-- {
		if got := c.Next(85); got != want {
			t.Fatalf("Next(85) = %d, want %d", got, want)
		}
	}
	if got := c.Next(85); got != 0 {
		t.Errorf("should saturate at 0: %d", got)
	}
}

func TestNewClosedErrors(t *testing.T) {
	if _, err := NewClosed(0, 0, 5); err == nil {
		t.Errorf("zero threshold should error")
	}
	if _, err := NewClosed(80, -1, 5); err == nil {
		t.Errorf("negative start should error")
	}
	if _, err := NewClosed(80, 6, 5); err == nil {
		t.Errorf("start above max should error")
	}
}

func TestConstantController(t *testing.T) {
	c := Constant{Level: 3}
	if c.Next(100) != 3 || c.Next(0) != 3 {
		t.Errorf("constant controller should ignore temperature")
	}
}

func TestFindConstantLevel(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	level, err := FindConstantLevel(p, plan, p.BoostLadder, p.TDTM)
	if err != nil {
		t.Fatal(err)
	}
	// The chosen level is safe…
	work := &mapping.Plan{NumCores: plan.NumCores}
	work.Placements = append([]mapping.Placement(nil), plan.Placements...)
	for i := range work.Placements {
		work.Placements[i].FGHz = p.BoostLadder.Points[level].FGHz
	}
	peak, err := p.PeakTemp(work)
	if err != nil {
		t.Fatal(err)
	}
	if peak > p.TDTM {
		t.Errorf("chosen level %d peaks at %.2f °C", level, peak)
	}
	// …and the next level up is not (otherwise the search under-filled).
	if level+1 < len(p.BoostLadder.Points) {
		for i := range work.Placements {
			work.Placements[i].FGHz = p.BoostLadder.Points[level+1].FGHz
		}
		peak, err = p.PeakTemp(work)
		if err != nil {
			t.Fatal(err)
		}
		if peak <= p.TDTM {
			t.Errorf("level %d would also be safe (%.2f °C); search not tight", level+1, peak)
		}
	}
	// 12 × x264 at 16 nm should land mid-ladder (a few steps below
	// nominal), the regime Figure 11 shows.
	f := p.BoostLadder.Points[level].FGHz
	if f < 2.0 || f > 3.6 {
		t.Errorf("constant level %.1f GHz outside the expected band", f)
	}
}

func TestFindConstantLevelNoSafe(t *testing.T) {
	// Set the threshold below ambient: nothing is safe.
	p := plat(t)
	plan := x264Plan(t, p)
	if _, err := FindConstantLevel(p, plan, p.Ladder, p.Thermal.Ambient()-1); err == nil {
		t.Errorf("expected ErrNoSafeLevel")
	}
}

func TestClosedLoopOscillatesAroundThreshold(t *testing.T) {
	// The Figure 11 behaviour: the boosting controller oscillates around
	// the critical temperature while the constant baseline stays a few
	// degrees below it, and boosting achieves (slightly) higher average
	// performance at (clearly) higher peak power.
	if testing.Short() {
		t.Skip("transient co-simulation is slow in -short mode")
	}
	p := plat(t)
	plan := x264Plan(t, p)

	constLevel, err := FindConstantLevel(p, plan, p.BoostLadder, p.TDTM)
	if err != nil {
		t.Fatal(err)
	}
	constRes, err := sim.Run(p, plan, Constant{Level: constLevel}, p.BoostLadder, sim.Options{
		Duration:      20,
		ControlPeriod: 1e-3,
		StartSteady:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewClosed(p.TDTM, constLevel, len(p.BoostLadder.Points)-1)
	if err != nil {
		t.Fatal(err)
	}
	boostRes, err := sim.Run(p, plan, ctrl, p.BoostLadder, sim.Options{
		Duration:      20,
		ControlPeriod: 1e-3,
		StartSteady:   true,
	})
	if err != nil {
		t.Fatal(err)
	}

	if boostRes.AvgGIPS <= constRes.AvgGIPS {
		t.Errorf("boosting avg GIPS %.1f should exceed constant %.1f",
			boostRes.AvgGIPS, constRes.AvgGIPS)
	}
	if boostRes.PeakPowerW <= constRes.PeakPowerW {
		t.Errorf("boosting peak power %.1f should exceed constant %.1f",
			boostRes.PeakPowerW, constRes.PeakPowerW)
	}
	// Boost oscillates around TDTM: its max temp is at/above the
	// threshold but bounded by the emergency margin.
	if boostRes.MaxTempC < p.TDTM-0.5 {
		t.Errorf("boost max temp %.2f should reach the threshold", boostRes.MaxTempC)
	}
	if boostRes.MaxTempC > p.TDTM+5 {
		t.Errorf("boost max temp %.2f runs away", boostRes.MaxTempC)
	}
	// Constant stays below the threshold throughout.
	if constRes.MaxTempC > p.TDTM {
		t.Errorf("constant max temp %.2f violates TDTM", constRes.MaxTempC)
	}
}

func TestNewPerPlacementErrors(t *testing.T) {
	if _, err := NewPerPlacement(80, nil, 5); err == nil {
		t.Errorf("no placements should error")
	}
	if _, err := NewPerPlacement(80, []int{0, 9}, 5); err == nil {
		t.Errorf("start above max should error")
	}
}

func TestPerPlacementIndependence(t *testing.T) {
	pp, err := NewPerPlacement(80, []int{3, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := pp.CurrentLevels(); got[0] != 3 || got[1] != 3 {
		t.Fatalf("CurrentLevels = %v", got)
	}
	// Placement 0 is hot (descends), placement 1 is cool (climbs).
	levels := pp.NextLevels(85, []float64{85, 60})
	if levels[0] != 2 || levels[1] != 4 {
		t.Errorf("NextLevels = %v, want [2 4]", levels)
	}
	// Short peak slice leaves the missing placements unchanged.
	levels = pp.NextLevels(85, []float64{85})
	if levels[0] != 1 || levels[1] != 4 {
		t.Errorf("NextLevels short = %v, want [1 4]", levels)
	}
}

func TestPerAppIslandsCharacterization(t *testing.T) {
	// A hot app (x264) next to a cool one (canneal) under per-placement
	// DVFS islands versus one chip-wide loop. The chip is strongly
	// thermally coupled, so the global constraint acts like a shared
	// power budget; naive islands hand the headroom to whichever app
	// runs coolest — the low-power, low-IPC one — so total GIPS lands
	// within a whisker of global control rather than above it. That is
	// precisely why DsRem pairs per-app levels with a performance-aware
	// allocation (§4); this test pins the characterization.
	if testing.Short() {
		t.Skip("transient co-simulation")
	}
	p := plat(t)
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	c, err := apps.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	cores, err := mapping.PeripheryFirst(p.Floorplan, 96)
	if err != nil {
		t.Fatal(err)
	}
	// x264 on the periphery, canneal in the centre.
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < 6; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: x, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}
	for i := 6; i < 12; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: c, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}
	ladder := p.BoostLadder
	start, err := FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.Options{Duration: 10, ControlPeriod: 1e-3, StartSteady: true}

	global, err := NewClosed(p.TDTM, start, len(ladder.Points)-1)
	if err != nil {
		t.Fatal(err)
	}
	globalRes, err := sim.Run(p, plan, global, ladder, opts)
	if err != nil {
		t.Fatal(err)
	}

	startLevels := make([]int, len(plan.Placements))
	for i := range startLevels {
		startLevels[i] = start
	}
	islands, err := NewPerPlacement(p.TDTM, startLevels, len(ladder.Points)-1)
	if err != nil {
		t.Fatal(err)
	}
	islandRes, err := sim.RunGrouped(p, plan, islands, ladder, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Islands stay within a few per cent of global control.
	if rel := (globalRes.AvgGIPS - islandRes.AvgGIPS) / globalRes.AvgGIPS; rel > 0.05 || rel < -0.05 {
		t.Errorf("islands %.1f GIPS vs global %.1f GIPS: |gap| should be < 5%%",
			islandRes.AvgGIPS, globalRes.AvgGIPS)
	}
	if islandRes.MaxTempC > p.TDTM+2 {
		t.Errorf("islands overshoot: %.2f °C", islandRes.MaxTempC)
	}
	// Per-placement levels actually diverged (the point of islands).
	final := islands.CurrentLevels()
	minL, maxL := final[0], final[0]
	for _, l := range final {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if minL == maxL {
		t.Errorf("island levels never diverged: %v", final)
	}
}
