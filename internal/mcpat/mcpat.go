// Package mcpat provides the McPAT-flavoured within-core detail the
// paper's tool flow (Figure 1) draws on: an area/power breakdown of the
// out-of-order Alpha 21264-class core into its functional components, a
// floorplan expander that subdivides each core block into component
// blocks, and a power splitter that turns a per-core Equation (1) power
// into per-component powers.
//
// The chip-level experiments treat a core as one thermal block; this
// package exposes the next level of fidelity, where the integer/FP
// execution clusters concentrate most of the dynamic power in a fraction
// of the core area — the within-core hotspot that block-level models
// average away.
package mcpat

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/floorplan"
)

// Component is one functional block of the core with its share of the
// core's area, dynamic power and leakage power.
type Component struct {
	Name     string
	AreaFrac float64
	DynFrac  float64
	LeakFrac float64
}

// DefaultBreakdown returns an Alpha 21264-class out-of-order core
// breakdown in the spirit of McPAT's component reports: execution
// clusters are small and power-dense, caches are large and relatively
// cool. Fractions each sum to 1.
func DefaultBreakdown() []Component {
	return []Component{
		{Name: "ifetch", AreaFrac: 0.10, DynFrac: 0.12, LeakFrac: 0.10},
		{Name: "rename", AreaFrac: 0.06, DynFrac: 0.10, LeakFrac: 0.06},
		{Name: "intexec", AreaFrac: 0.12, DynFrac: 0.26, LeakFrac: 0.14},
		{Name: "fpexec", AreaFrac: 0.12, DynFrac: 0.18, LeakFrac: 0.14},
		{Name: "lsu", AreaFrac: 0.10, DynFrac: 0.12, LeakFrac: 0.10},
		{Name: "l1i", AreaFrac: 0.14, DynFrac: 0.07, LeakFrac: 0.16},
		{Name: "l1d", AreaFrac: 0.14, DynFrac: 0.09, LeakFrac: 0.16},
		{Name: "l2slice", AreaFrac: 0.22, DynFrac: 0.06, LeakFrac: 0.14},
	}
}

// ErrBreakdown is returned for inconsistent component sets.
var ErrBreakdown = errors.New("mcpat: invalid breakdown")

// Validate checks that all three fraction columns sum to 1 (±1e-6) and
// every fraction is positive.
func Validate(comps []Component) error {
	if len(comps) == 0 {
		return fmt.Errorf("%w: empty", ErrBreakdown)
	}
	var a, d, l float64
	seen := map[string]bool{}
	for _, c := range comps {
		if c.AreaFrac <= 0 || c.DynFrac <= 0 || c.LeakFrac <= 0 {
			return fmt.Errorf("%w: component %q has non-positive fractions", ErrBreakdown, c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: duplicate component %q", ErrBreakdown, c.Name)
		}
		seen[c.Name] = true
		a += c.AreaFrac
		d += c.DynFrac
		l += c.LeakFrac
	}
	for _, s := range []struct {
		name string
		sum  float64
	}{{"area", a}, {"dynamic", d}, {"leakage", l}} {
		if math.Abs(s.sum-1) > 1e-6 {
			return fmt.Errorf("%w: %s fractions sum to %.6f", ErrBreakdown, s.name, s.sum)
		}
	}
	return nil
}

// SplitPower divides a core's power into per-component powers given the
// dynamic and leakage shares of the total (dynW + leakW; any frequency-
// independent power is folded into dynW by the caller or spread with it).
func SplitPower(comps []Component, dynW, leakW float64) (map[string]float64, error) {
	if err := Validate(comps); err != nil {
		return nil, err
	}
	if dynW < 0 || leakW < 0 {
		return nil, fmt.Errorf("%w: negative power split %g/%g", ErrBreakdown, dynW, leakW)
	}
	out := make(map[string]float64, len(comps))
	for _, c := range comps {
		out[c.Name] = dynW*c.DynFrac + leakW*c.LeakFrac
	}
	return out, nil
}

// PowerDensityRatio returns the hottest component's power density
// relative to the core average (density = power fraction / area
// fraction) for the given dynamic/leakage split. For the default
// breakdown at a dynamic-dominated operating point this is ≈2×: the
// integer execution cluster burns a quarter of the power in an eighth of
// the area.
func PowerDensityRatio(comps []Component, dynW, leakW float64) (float64, error) {
	split, err := SplitPower(comps, dynW, leakW)
	if err != nil {
		return 0, err
	}
	total := dynW + leakW
	if total <= 0 {
		return 1, nil
	}
	best := 0.0
	for _, c := range comps {
		density := (split[c.Name] / total) / c.AreaFrac
		if density > best {
			best = density
		}
	}
	return best, nil
}

// ExpandFloorplan subdivides every block of a core-level floorplan into
// component blocks named "<core>.<component>", preserving total area.
// Components are laid out in two horizontal rows inside each core (a
// slicing layout): the first half of the list fills the bottom row, the
// rest the top row, each strip's width proportional to its area share.
// The result is a valid (non-grid) floorplan suitable for a fine-grid
// thermal model.
func ExpandFloorplan(fp *floorplan.Floorplan, comps []Component) (*floorplan.Floorplan, error) {
	if err := Validate(comps); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	half := (len(comps) + 1) / 2
	bottom, top := comps[:half], comps[half:]
	rowFrac := func(row []Component) float64 {
		var s float64
		for _, c := range row {
			s += c.AreaFrac
		}
		return s
	}
	bottomFrac := rowFrac(bottom)

	out := &floorplan.Floorplan{DieW: fp.DieW, DieH: fp.DieH}
	for _, b := range fp.Blocks {
		bh := b.H * bottomFrac
		layoutRow := func(row []Component, y, h float64) {
			frac := rowFrac(row)
			x := b.X
			for i, c := range row {
				w := b.W * (c.AreaFrac / frac)
				// The last strip absorbs rounding so the row tiles the
				// core exactly.
				if i == len(row)-1 {
					w = b.X + b.W - x
				}
				out.Blocks = append(out.Blocks, floorplan.Block{
					Name: b.Name + "." + c.Name,
					X:    x, Y: y, W: w, H: h,
					Row: -1, Col: -1,
				})
				x += w
			}
		}
		layoutRow(bottom, b.Y, bh)
		if len(top) > 0 {
			layoutRow(top, b.Y+bh, b.H-bh)
		}
	}
	return out, out.Validate()
}

// ExpandPower maps a per-core power vector onto the expanded floorplan's
// block order: core i's power is split across its components using the
// given dynamic-power fraction of the total (the rest is treated as
// leakage-like).
func ExpandPower(corePower []float64, comps []Component, dynShare float64) ([]float64, error) {
	if err := Validate(comps); err != nil {
		return nil, err
	}
	if dynShare < 0 || dynShare > 1 {
		return nil, fmt.Errorf("%w: dynamic share %g", ErrBreakdown, dynShare)
	}
	out := make([]float64, 0, len(corePower)*len(comps))
	for _, p := range corePower {
		if p < 0 {
			return nil, fmt.Errorf("%w: negative core power %g", ErrBreakdown, p)
		}
		split, err := SplitPower(comps, p*dynShare, p*(1-dynShare))
		if err != nil {
			return nil, err
		}
		for _, c := range comps {
			out = append(out, split[c.Name])
		}
	}
	return out, nil
}
