package mcpat

import (
	"math"
	"testing"

	"darksim/internal/floorplan"
	"darksim/internal/thermal"
)

func TestDefaultBreakdownValid(t *testing.T) {
	if err := Validate(DefaultBreakdown()); err != nil {
		t.Fatalf("default breakdown invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Errorf("empty breakdown should error")
	}
	bad := []Component{{Name: "a", AreaFrac: 1, DynFrac: 1, LeakFrac: 0}}
	if err := Validate(bad); err == nil {
		t.Errorf("zero fraction should error")
	}
	short := []Component{{Name: "a", AreaFrac: 0.5, DynFrac: 0.5, LeakFrac: 0.5}}
	if err := Validate(short); err == nil {
		t.Errorf("fractions not summing to 1 should error")
	}
	dup := []Component{
		{Name: "a", AreaFrac: 0.5, DynFrac: 0.5, LeakFrac: 0.5},
		{Name: "a", AreaFrac: 0.5, DynFrac: 0.5, LeakFrac: 0.5},
	}
	if err := Validate(dup); err == nil {
		t.Errorf("duplicate names should error")
	}
}

func TestSplitPowerConserves(t *testing.T) {
	comps := DefaultBreakdown()
	split, err := SplitPower(comps, 3.0, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range split {
		total += w
	}
	if math.Abs(total-3.7) > 1e-9 {
		t.Errorf("split total = %v, want 3.7", total)
	}
	// The integer execution cluster dominates dynamic power.
	if split["intexec"] <= split["l2slice"] {
		t.Errorf("intexec should out-burn the L2 slice")
	}
	if _, err := SplitPower(comps, -1, 0); err == nil {
		t.Errorf("negative power should error")
	}
}

func TestPowerDensityRatio(t *testing.T) {
	comps := DefaultBreakdown()
	// Dynamic-dominated point: execution clusters are ≈2× the average.
	ratio, err := PowerDensityRatio(comps, 3.0, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("density ratio = %.2f, want ≈2", ratio)
	}
	// Pure leakage flattens the profile.
	leakOnly, err := PowerDensityRatio(comps, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if leakOnly >= ratio {
		t.Errorf("leakage-only ratio %.2f should be below dynamic ratio %.2f", leakOnly, ratio)
	}
	// Zero power degenerates to 1.
	if r, err := PowerDensityRatio(comps, 0, 0); err != nil || r != 1 {
		t.Errorf("zero power ratio = %v, %v", r, err)
	}
}

func TestExpandFloorplan(t *testing.T) {
	fp, err := floorplan.NewGrid(3, 3, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	comps := DefaultBreakdown()
	sub, err := ExpandFloorplan(fp, comps)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumBlocks() != 9*len(comps) {
		t.Fatalf("blocks = %d", sub.NumBlocks())
	}
	// Area preserved.
	if math.Abs(sub.TotalAreaMM2()-fp.TotalAreaMM2()) > 1e-6 {
		t.Errorf("area drifted: %v vs %v", sub.TotalAreaMM2(), fp.TotalAreaMM2())
	}
	// Component areas match their fractions.
	coreArea := fp.Blocks[0].Area()
	for _, b := range sub.Blocks[:len(comps)] {
		name := b.Name[len("core_0_0."):]
		for _, c := range comps {
			if c.Name == name {
				if math.Abs(b.Area()/coreArea-c.AreaFrac) > 0.01 {
					t.Errorf("%s area fraction %.3f, want %.3f", name, b.Area()/coreArea, c.AreaFrac)
				}
			}
		}
	}
}

func TestExpandPowerOrderMatchesFloorplan(t *testing.T) {
	fp, err := floorplan.NewGrid(2, 1, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	comps := DefaultBreakdown()
	sub, err := ExpandFloorplan(fp, comps)
	if err != nil {
		t.Fatal(err)
	}
	power, err := ExpandPower([]float64{3.7, 0}, comps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(power) != sub.NumBlocks() {
		t.Fatalf("power len %d, blocks %d", len(power), sub.NumBlocks())
	}
	// The dark core's components stay at zero; the active core's sum to
	// its total.
	var active, dark float64
	for i, b := range sub.Blocks {
		if b.Name[:8] == "core_0_0" {
			active += power[i]
		} else {
			dark += power[i]
		}
	}
	if math.Abs(active-3.7) > 1e-9 || dark != 0 {
		t.Errorf("active %v dark %v", active, dark)
	}
	if _, err := ExpandPower([]float64{-1}, comps, 0.8); err == nil {
		t.Errorf("negative power should error")
	}
	if _, err := ExpandPower([]float64{1}, comps, 1.5); err == nil {
		t.Errorf("bad dynamic share should error")
	}
}

func TestWithinCoreHotspot(t *testing.T) {
	// The fidelity claim: resolving components raises the observed peak
	// versus the block-level average, because the execution clusters
	// concentrate power. 3x3 cores, die grid fine enough to resolve
	// within-core structure.
	fp, err := floorplan.NewGrid(3, 3, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	comps := DefaultBreakdown()
	sub, err := ExpandFloorplan(fp, comps)
	if err != nil {
		t.Fatal(err)
	}
	corePower := make([]float64, 9)
	for i := range corePower {
		corePower[i] = 3.7
	}
	blockModel, err := thermal.NewModel(fp, thermal.DefaultConfig(fp.DieW, fp.DieH, 9, 9))
	if err != nil {
		t.Fatal(err)
	}
	blockPeak, _, err := blockModel.PeakSteadyState(corePower)
	if err != nil {
		t.Fatal(err)
	}
	subModel, err := thermal.NewModel(sub, thermal.DefaultConfig(sub.DieW, sub.DieH, 15, 15))
	if err != nil {
		t.Fatal(err)
	}
	subPower, err := ExpandPower(corePower, comps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	subPeak, _, err := subModel.PeakSteadyState(subPower)
	if err != nil {
		t.Fatal(err)
	}
	if subPeak <= blockPeak {
		t.Errorf("component-resolved peak %.2f should exceed block-level %.2f", subPeak, blockPeak)
	}
	if subPeak > blockPeak+15 {
		t.Errorf("within-core hotspot %.2f implausibly far above block level %.2f", subPeak, blockPeak)
	}
}
