// Package core is the paper's primary contribution in library form: the
// revised dark-silicon estimation methodology. It binds a technology node,
// a floorplan, the Equation (1)/(2) power and V/f models and the compact
// thermal model into a Platform, and provides the estimators the paper's
// experiments are built from:
//
//   - dark silicon under a power-budget (TDP) constraint (§3.1);
//   - dark silicon under a temperature constraint (§3.2);
//   - DVFS-aware, TLP/ILP-aware operating-point selection (§3.3);
//   - plan evaluation (performance, power, steady-state peak temperature)
//     with the leakage/temperature fixed point resolved by iteration.
package core

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/apps"
	"darksim/internal/floorplan"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/tech"
	"darksim/internal/thermal"
	"darksim/internal/vf"
)

// DefaultTDTM is the Dynamic Thermal Management trigger temperature the
// paper uses throughout (§3.1, after Intel datasheets): 80 °C.
const DefaultTDTM = 80.0

// BoostHeadroomGHz is how far above the nominal maximum the boost ladder
// extends (three 200 MHz steps, in line with §6's Turbo-style controller).
const BoostHeadroomGHz = 0.6

// PowerMode selects how multi-threaded instances consume dynamic power.
type PowerMode int

const (
	// BusyWait charges every active core the full activity factor
	// regardless of Amdahl stalls (threads spin at synchronization
	// points). This matches the TDP-filling experiments of §3–§4.
	BusyWait PowerMode = iota
	// GatedIdle clock-gates cores during the serial phases, scaling the
	// average activity by the parallel efficiency S(n)/n. Used by the
	// §6 NTC energy study, where deployments are energy-optimized.
	GatedIdle
)

// String implements fmt.Stringer.
func (m PowerMode) String() string {
	switch m {
	case BusyWait:
		return "busy-wait"
	case GatedIdle:
		return "gated-idle"
	}
	return fmt.Sprintf("PowerMode(%d)", int(m))
}

// Platform is a fully instantiated manycore system at one technology node.
type Platform struct {
	Node      tech.Node
	Spec      tech.Spec
	Floorplan *floorplan.Floorplan
	Thermal   *thermal.Model
	Curve     vf.Curve
	// Ladder spans 0.4 GHz up to nominal fmax in 0.2 GHz steps.
	Ladder *vf.Ladder
	// BoostLadder additionally extends BoostHeadroomGHz above nominal.
	BoostLadder *vf.Ladder
	// TDTM is the critical (DTM-trigger) temperature in °C.
	TDTM float64
}

// Options tunes platform construction.
type Options struct {
	// Cores on the chip (default 100; the paper also uses 198 and 361).
	Cores int
	// TDTM in °C (default DefaultTDTM).
	TDTM float64
	// AmbientC overrides the thermal model's ambient (default: package
	// calibrated value).
	AmbientC float64
	// DieNx and DieNy override the die/TIM thermal grid resolution. Zero
	// selects the floorplan's own grid (Cols×Rows) for grid plans, or a
	// resolution derived from the smallest block for heterogeneous plans.
	// NewPlatformWith ignores them (its grid floorplan fixes the
	// resolution); NewPlatformFrom honors them.
	DieNx, DieNy int
}

// NewPlatform builds the standard platform for a node with default options.
func NewPlatform(node tech.Node) (*Platform, error) {
	return NewPlatformWith(node, Options{})
}

// NewPlatformWith builds a platform with explicit options on the
// paper-standard homogeneous grid floorplan for opt.Cores cores.
func NewPlatformWith(node tech.Node, opt Options) (*Platform, error) {
	if opt.Cores == 0 {
		opt.Cores = 100
	}
	spec, err := tech.SpecFor(node)
	if err != nil {
		return nil, err
	}
	fp, err := floorplan.NewGridForCount(opt.Cores, spec.CoreAreaMM2)
	if err != nil {
		return nil, err
	}
	opt.DieNx, opt.DieNy = fp.Cols, fp.Rows
	return NewPlatformFrom(node, fp, opt)
}

// maxDieGridSide bounds the derived die discretization of heterogeneous
// floorplans: a pathological mix of one huge and many tiny cores must not
// explode the thermal node count (the per-layer grid is side², plus the
// spreader and sink layers).
const maxDieGridSide = 64

// NewPlatformFrom builds a platform over an explicit floorplan — the
// compilation seam the scenario engine uses for arbitrary (including
// heterogeneous big.LITTLE) chips. Grid floorplans discretize the die at
// their own Cols×Rows exactly like NewPlatformWith, so a compiled
// symmetric scenario is bit-identical to the paper's fixed platforms;
// non-grid plans derive the resolution from the smallest block edge,
// clamped to maxDieGridSide.
func NewPlatformFrom(node tech.Node, fp *floorplan.Floorplan, opt Options) (*Platform, error) {
	if opt.TDTM == 0 {
		opt.TDTM = DefaultTDTM
	}
	spec, err := tech.SpecFor(node)
	if err != nil {
		return nil, err
	}
	nx, ny := opt.DieNx, opt.DieNy
	if nx == 0 || ny == 0 {
		nx, ny = fp.Cols, fp.Rows
	}
	if nx == 0 || ny == 0 {
		side := fp.MinBlockSide()
		if side <= 0 {
			return nil, fmt.Errorf("core: floorplan has no blocks to derive a thermal grid from")
		}
		nx = clampGridSide(int(math.Ceil(fp.DieW / side)))
		ny = clampGridSide(int(math.Ceil(fp.DieH / side)))
	}
	cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, nx, ny)
	if opt.AmbientC != 0 {
		cfg.AmbientC = opt.AmbientC
	}
	tm, err := thermal.NewModel(fp, cfg)
	if err != nil {
		return nil, err
	}
	curve, err := vf.CurveFor(node)
	if err != nil {
		return nil, err
	}
	ladder, err := vf.NewLadder(curve, vf.LadderOptions{})
	if err != nil {
		return nil, err
	}
	boost, err := vf.NewLadder(curve, vf.LadderOptions{MaxGHz: curve.FmaxGHz + BoostHeadroomGHz})
	if err != nil {
		return nil, err
	}
	return &Platform{
		Node:        node,
		Spec:        spec,
		Floorplan:   fp,
		Thermal:     tm,
		Curve:       curve,
		Ladder:      ladder,
		BoostLadder: boost,
		TDTM:        opt.TDTM,
	}, nil
}

// clampGridSide bounds a derived die-grid dimension to [1, maxDieGridSide].
func clampGridSide(n int) int {
	if n < 1 {
		return 1
	}
	if n > maxDieGridSide {
		return maxDieGridSide
	}
	return n
}

// NumCores returns the chip's core count.
func (p *Platform) NumCores() int { return p.Floorplan.NumBlocks() }

// CorePower implements mapping.NodePowerer with busy-wait semantics.
func (p *Platform) CorePower(a apps.App, fGHz, tempC float64) (float64, error) {
	return a.CorePower(p.Node, fGHz, tempC)
}

// utilization returns the GatedIdle activity scale for n threads.
func utilization(a apps.App, threads int) float64 {
	if threads <= 1 {
		return 1
	}
	return a.Speedup(threads) / float64(threads)
}

// placementCorePower evaluates one core of a placement under the mode.
func (p *Platform) placementCorePower(pl mapping.Placement, tempC float64, mode PowerMode) (float64, error) {
	model, err := pl.App.ModelFor(p.Node)
	if err != nil {
		return 0, err
	}
	vdd, err := p.Curve.VoltageFor(pl.FGHz)
	if err != nil {
		return 0, err
	}
	alpha := pl.App.Alpha
	if pl.Threads == 1 {
		alpha = pl.App.AlphaSingle
	}
	if mode == GatedIdle {
		alpha *= utilization(pl.App, pl.Threads)
	}
	return model.Power(alpha, vdd, pl.FGHz, tempC), nil
}

// PlanPower evaluates the per-core power map of a plan at a uniform
// temperature estimate under the given mode.
func (p *Platform) PlanPower(plan *mapping.Plan, tempC float64, mode PowerMode) ([]float64, error) {
	if plan.NumCores != p.NumCores() {
		return nil, fmt.Errorf("core: plan for %d cores on a %d-core platform", plan.NumCores, p.NumCores())
	}
	pw := make([]float64, plan.NumCores)
	for _, pl := range plan.Placements {
		cp, err := p.placementCorePower(pl, tempC, mode)
		if err != nil {
			return nil, err
		}
		for _, c := range pl.Cores {
			pw[c] = cp
		}
	}
	return pw, nil
}

// leakageIterations bounds the power/temperature fixed point. Leakage is a
// modest fraction of total power, so the iteration contracts quickly.
const leakageIterations = 4

// SteadyTemps solves the coupled power/temperature fixed point for a plan:
// power is evaluated at the core temperatures, which depend on power. It
// returns the per-core temperatures and the consistent per-core power map.
func (p *Platform) SteadyTemps(plan *mapping.Plan, mode PowerMode) ([]float64, []float64, error) {
	if plan.NumCores != p.NumCores() {
		return nil, nil, fmt.Errorf("core: plan for %d cores on a %d-core platform", plan.NumCores, p.NumCores())
	}
	// Start from the DTM threshold as the temperature estimate.
	temps := make([]float64, plan.NumCores)
	for i := range temps {
		temps[i] = p.TDTM
	}
	var power []float64
	for iter := 0; iter < leakageIterations; iter++ {
		power = make([]float64, plan.NumCores)
		for _, pl := range plan.Placements {
			for _, c := range pl.Cores {
				cp, err := p.PlacementCorePowerAt(pl, temps[c], mode)
				if err != nil {
					return nil, nil, err
				}
				power[c] = cp
			}
		}
		next, err := p.Thermal.SteadyState(power)
		if err != nil {
			return nil, nil, err
		}
		temps = next
	}
	return temps, power, nil
}

// PlacementCorePowerAt evaluates the Equation (1) power of one core of a
// placement at a specific core temperature. The transient simulator uses
// it to couple leakage to the instantaneous thermal state.
func (p *Platform) PlacementCorePowerAt(pl mapping.Placement, tempC float64, mode PowerMode) (float64, error) {
	return p.placementCorePower(pl, tempC, mode)
}

// PeakTemp implements mapping.Evaluator: the steady-state peak core
// temperature of the plan with busy-wait power.
func (p *Platform) PeakTemp(plan *mapping.Plan) (float64, error) {
	temps, _, err := p.SteadyTemps(plan, BusyWait)
	if err != nil {
		return 0, err
	}
	peak := math.Inf(-1)
	for _, t := range temps {
		if t > peak {
			peak = t
		}
	}
	return peak, nil
}

// Summarize evaluates a plan into a metrics.Summary (busy-wait power).
func (p *Platform) Summarize(label string, plan *mapping.Plan) (metrics.Summary, error) {
	temps, power, err := p.SteadyTemps(plan, BusyWait)
	if err != nil {
		return metrics.Summary{}, err
	}
	var totalP float64
	for _, w := range power {
		totalP += w
	}
	peak := math.Inf(-1)
	for _, t := range temps {
		if t > peak {
			peak = t
		}
	}
	return metrics.Summary{
		Label:       label,
		ActiveCores: plan.ActiveCores(),
		TotalCores:  plan.NumCores,
		GIPS:        plan.TotalGIPS(),
		PowerW:      totalP,
		PeakTempC:   peak,
	}, nil
}

// ErrInfeasible is returned when a constraint cannot be met at all.
var ErrInfeasible = errors.New("core: constraint infeasible")
