package core

import (
	"testing"

	"darksim/internal/apps"
	"darksim/internal/mapping"
)

// TestPowerCoefBitIdentical is the differential pin of the fused power
// coefficients: across apps, thread counts, frequencies, modes and a
// temperature sweep, PowerCoef.At must equal PlacementCorePowerAt bit
// for bit — the fast stepping paths substitute one for the other inside
// bit-exact differential tests.
func TestPowerCoefBitIdentical(t *testing.T) {
	p := plat16(t)
	catalog := apps.Catalog()
	for _, a := range catalog {
		for _, threads := range []int{1, 2, 4} {
			for _, f := range []float64{1.2, 2.0, 3.6} {
				pl := mapping.Placement{App: a, Cores: make([]int, threads), FGHz: f, Threads: threads}
				for _, mode := range []PowerMode{BusyWait, GatedIdle} {
					coef, err := p.PowerCoefFor(pl, mode)
					if err != nil {
						t.Fatalf("%s t=%d f=%g: %v", a.Name, threads, f, err)
					}
					for tc := 20.0; tc <= 110; tc += 7.3 {
						want, err := p.PlacementCorePowerAt(pl, tc, mode)
						if err != nil {
							t.Fatal(err)
						}
						if got := coef.At(tc); got != want {
							t.Fatalf("%s t=%d f=%g mode=%v T=%g: coef %v != direct %v",
								a.Name, threads, f, mode, tc, got, want)
						}
					}
				}
			}
		}
	}
	// Infeasible frequency must error exactly like the direct path.
	bad := mapping.Placement{App: catalog[0], Cores: []int{0}, FGHz: -1, Threads: 1}
	if _, err := p.PowerCoefFor(bad, BusyWait); err == nil {
		t.Fatal("want error for infeasible frequency")
	}
	if _, err := p.PlacementCorePowerAt(bad, 80, BusyWait); err == nil {
		t.Fatal("direct path accepts what PowerCoefFor rejects")
	}
}
