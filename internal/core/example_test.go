package core_test

import (
	"fmt"
	"log"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/tech"
)

// Example reproduces the library's headline comparison in a few lines:
// the same application and chip, estimated under a TDP budget and under
// the temperature constraint.
func Example() {
	platform, err := core.NewPlatform(tech.Node16)
	if err != nil {
		log.Fatal(err)
	}
	app, err := apps.ByName("swaptions")
	if err != nil {
		log.Fatal(err)
	}
	tdp, err := platform.DarkSiliconUnderTDP(app, 185, 3.6)
	if err != nil {
		log.Fatal(err)
	}
	temp, err := platform.DarkSiliconUnderTemp(app, 3.6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TDP 185 W:  %d/%d cores active\n", tdp.Summary.ActiveCores, tdp.Summary.TotalCores)
	fmt.Printf("TDTM 80 °C: %d/%d cores active\n", temp.Summary.ActiveCores, temp.Summary.TotalCores)
	// Output:
	// TDP 185 W:  49/100 cores active
	// TDTM 80 °C: 61/100 cores active
}
