package core

import (
	"math"

	"darksim/internal/mapping"
)

// PowerCoef is one placement's Equation (1) power with everything except
// the temperature dependence folded into constants:
//
//	P(T) = dyn + Vdd·(li·exp(γt·(T − Tref))) + Pind
//
// where dyn = α·Ceff·Vdd²·f and li = I0·exp(γv·(Vdd − VddRef)). The
// transient simulators re-evaluate core power at every control period
// with only the temperature changing; the coefficient form replaces two
// exponentials and the model/voltage lookups per core per period with
// one. At must return bit-for-bit the value PlacementCorePowerAt
// returns — every product below is written in that method's exact
// association order — so the fast stepping paths can use it without
// perturbing the differential pins.
type PowerCoef struct {
	dyn    float64 // α·Ceff·Vdd²·f
	vdd    float64
	li     float64 // I0·exp(γv·(Vdd−VddRef))
	gammaT float64
	tRef   float64
	pind   float64
}

// PowerCoefFor folds the placement's model lookup, V/f conversion and
// voltage-dependent leakage into a PowerCoef. It errors exactly when
// PlacementCorePowerAt would (unknown model, infeasible frequency).
func (p *Platform) PowerCoefFor(pl mapping.Placement, mode PowerMode) (PowerCoef, error) {
	model, err := pl.App.ModelFor(p.Node)
	if err != nil {
		return PowerCoef{}, err
	}
	vdd, err := p.Curve.VoltageFor(pl.FGHz)
	if err != nil {
		return PowerCoef{}, err
	}
	alpha := pl.App.Alpha
	if pl.Threads == 1 {
		alpha = pl.App.AlphaSingle
	}
	if mode == GatedIdle {
		alpha *= utilization(pl.App, pl.Threads)
	}
	return PowerCoef{
		dyn:    alpha * model.CeffNF * vdd * vdd * pl.FGHz,
		vdd:    vdd,
		li:     model.Leak.I0 * math.Exp(model.Leak.GammaV*(vdd-model.Leak.VddRef)),
		gammaT: model.Leak.GammaT,
		tRef:   model.Leak.TRef,
		pind:   model.PindW,
	}, nil
}

// At evaluates the placement's power at a core temperature, bit-for-bit
// equal to PlacementCorePowerAt at the same temperature.
func (c PowerCoef) At(tempC float64) float64 {
	return c.dyn + c.vdd*(c.li*math.Exp(c.gammaT*(tempC-c.tRef))) + c.pind
}
