package core

import (
	"math"
	"testing"

	"darksim/internal/apps"
	"darksim/internal/mapping"
	"darksim/internal/tech"
)

// plat16 caches the 16 nm platform across tests (construction factors a
// ~360-node Cholesky).
var plat16cache *Platform

func plat16(t testing.TB) *Platform {
	t.Helper()
	if plat16cache == nil {
		p, err := NewPlatform(tech.Node16)
		if err != nil {
			t.Fatal(err)
		}
		plat16cache = p
	}
	return plat16cache
}

func TestNewPlatformDefaults(t *testing.T) {
	p := plat16(t)
	if p.NumCores() != 100 {
		t.Errorf("cores = %d", p.NumCores())
	}
	if p.TDTM != 80 {
		t.Errorf("TDTM = %v", p.TDTM)
	}
	if p.Ladder.Points[len(p.Ladder.Points)-1].FGHz != 3.6 {
		t.Errorf("ladder top = %v", p.Ladder.Points[len(p.Ladder.Points)-1].FGHz)
	}
	if got := p.BoostLadder.Points[len(p.BoostLadder.Points)-1].FGHz; math.Abs(got-4.2) > 1e-9 {
		t.Errorf("boost top = %v", got)
	}
}

func TestNewPlatformOptionsAndErrors(t *testing.T) {
	p, err := NewPlatformWith(tech.Node11, Options{Cores: 198, TDTM: 75})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCores() != 198 || p.TDTM != 75 {
		t.Errorf("platform options not applied")
	}
	if _, err := NewPlatform(tech.Node(5)); err == nil {
		t.Errorf("unknown node should error")
	}
	if _, err := NewPlatformWith(tech.Node16, Options{Cores: 97}); err == nil {
		t.Errorf("prime core count should error")
	}
}

func TestPowerModeString(t *testing.T) {
	if BusyWait.String() != "busy-wait" || GatedIdle.String() != "gated-idle" {
		t.Errorf("mode strings wrong")
	}
	if PowerMode(9).String() == "" {
		t.Errorf("unknown mode should render")
	}
}

func TestPlanPowerModes(t *testing.T) {
	p := plat16(t)
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	plan := &mapping.Plan{NumCores: 100, Placements: []mapping.Placement{
		{App: x, Cores: []int{0, 1, 2, 3, 4, 5, 6, 7}, FGHz: 3.0, Threads: 8},
	}}
	busy, err := p.PlanPower(plan, 80, BusyWait)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := p.PlanPower(plan, 80, GatedIdle)
	if err != nil {
		t.Fatal(err)
	}
	if busy[0] <= 0 {
		t.Fatalf("busy power = %v", busy[0])
	}
	// Gated idle strictly reduces multi-thread power.
	if gated[0] >= busy[0] {
		t.Errorf("gated %v should be below busy %v", gated[0], busy[0])
	}
	// Single-thread placements are identical across modes.
	single := &mapping.Plan{NumCores: 100, Placements: []mapping.Placement{
		{App: x, Cores: []int{50}, FGHz: 3.0, Threads: 1},
	}}
	b1, err := p.PlanPower(single, 80, BusyWait)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := p.PlanPower(single, 80, GatedIdle)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1[50]-g1[50]) > 1e-12 {
		t.Errorf("single-thread power should not depend on mode")
	}
	// Plan size mismatch errors.
	if _, err := p.PlanPower(&mapping.Plan{NumCores: 64}, 80, BusyWait); err == nil {
		t.Errorf("mismatched plan should error")
	}
}

func TestSteadyTempsFixedPoint(t *testing.T) {
	p := plat16(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.buildPlanFor(s, 48, 3.6, mapping.Contiguous)
	if err != nil {
		t.Fatal(err)
	}
	temps, power, err := p.SteadyTemps(plan, BusyWait)
	if err != nil {
		t.Fatal(err)
	}
	// The fixed point must be self-consistent: re-evaluating power at the
	// returned temperatures and re-solving reproduces the temperatures.
	re, err := p.Thermal.SteadyState(power)
	if err != nil {
		t.Fatal(err)
	}
	for i := range temps {
		if math.Abs(re[i]-temps[i]) > 0.05 {
			t.Fatalf("fixed point not converged at %d: %v vs %v", i, re[i], temps[i])
		}
	}
	// Active cores are warmer than dark ones.
	if temps[0] <= temps[99] {
		t.Errorf("active core %.2f not warmer than dark core %.2f", temps[0], temps[99])
	}
	if _, _, err := p.SteadyTemps(&mapping.Plan{NumCores: 10}, BusyWait); err == nil {
		t.Errorf("mismatched plan should error")
	}
}

func TestDarkSiliconUnderTDPAnchors(t *testing.T) {
	// Figure 5's headline numbers for the hungriest application at
	// 16 nm, 3.6 GHz: ≈37–45 % dark at TDP 220 W, ≈45–52 % at 185 W,
	// and only the optimistic budget violates the 80 °C threshold.
	p := plat16(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := p.DarkSiliconUnderTDP(s, 220, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	pes, err := p.DarkSiliconUnderTDP(s, 185, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	if d := opt.Summary.DarkFraction(); d < 0.30 || d > 0.48 {
		t.Errorf("dark @220W = %.0f%%, want ≈37–45%%", d*100)
	}
	if d := pes.Summary.DarkFraction(); d < 0.42 || d > 0.55 {
		t.Errorf("dark @185W = %.0f%%, want ≈46–52%%", d*100)
	}
	if pes.Summary.DarkFraction() <= opt.Summary.DarkFraction() {
		t.Errorf("pessimistic TDP must leave more dark silicon")
	}
	if opt.Summary.PeakTempC <= p.TDTM {
		t.Errorf("optimistic TDP should violate TDTM: peak = %.2f", opt.Summary.PeakTempC)
	}
	if pes.Summary.PeakTempC > p.TDTM {
		t.Errorf("pessimistic TDP should be thermally safe: peak = %.2f", pes.Summary.PeakTempC)
	}
}

func TestDarkSiliconShrinksWithLowerVF(t *testing.T) {
	// Observation 2: scaling down v/f reduces dark silicon.
	p := plat16(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	high, err := p.DarkSiliconUnderTDP(s, 185, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	low, err := p.DarkSiliconUnderTDP(s, 185, 2.8)
	if err != nil {
		t.Fatal(err)
	}
	if low.Summary.DarkFraction() >= high.Summary.DarkFraction() {
		t.Errorf("lower v/f should reduce dark silicon: %.2f vs %.2f",
			low.Summary.DarkFraction(), high.Summary.DarkFraction())
	}
}

func TestTemperatureConstraintReducesDarkSilicon(t *testing.T) {
	// §3.2 / Figure 6: a temperature constraint (with patterned mapping)
	// admits more active cores than the pessimistic TDP.
	p := plat16(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	tdp, err := p.DarkSiliconUnderTDP(s, 185, 3.6)
	if err != nil {
		t.Fatal(err)
	}
	temp, err := p.DarkSiliconUnderTemp(s, 3.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if temp.Summary.ActiveCores <= tdp.Summary.ActiveCores {
		t.Errorf("temperature constraint should admit more cores: %d vs %d",
			temp.Summary.ActiveCores, tdp.Summary.ActiveCores)
	}
	if temp.Summary.PeakTempC > p.TDTM+1e-6 {
		t.Errorf("temperature-constrained plan violates TDTM: %.2f", temp.Summary.PeakTempC)
	}
}

func TestMaxCoresUnderTempMonotoneInFrequency(t *testing.T) {
	p := plat16(t)
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	n36, err := p.MaxCoresUnderTemp(s, 3.6, nil)
	if err != nil {
		t.Fatal(err)
	}
	n28, err := p.MaxCoresUnderTemp(s, 2.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n28 < n36 {
		t.Errorf("lower frequency should allow at least as many cores: %d vs %d", n28, n36)
	}
	if n36 <= 0 || n36 >= 100 {
		t.Errorf("n36 = %d should be an interior value", n36)
	}
	// A cool app can light the whole chip.
	c, err := apps.ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	nAll, err := p.MaxCoresUnderTemp(c, 2.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nAll != 100 {
		t.Errorf("canneal at 2 GHz should light the full chip, got %d", nAll)
	}
}

func TestBestDVFSConfigTLPvsILP(t *testing.T) {
	// §3.3: for the same instance count and budget, a high-TLP app keeps
	// 8 threads (at whatever frequency fits), while a high-ILP, low-TLP
	// app (x264) trades threads for frequency.
	p := plat16(t)
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := apps.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	cfgX, err := p.BestDVFSConfig(x, 12, 185)
	if err != nil {
		t.Fatal(err)
	}
	cfgB, err := p.BestDVFSConfig(bs, 12, 185)
	if err != nil {
		t.Fatal(err)
	}
	if cfgX.Threads >= cfgB.Threads {
		t.Errorf("x264 threads (%d) should be below blackscholes threads (%d)", cfgX.Threads, cfgB.Threads)
	}
	if cfgX.FGHz < cfgB.FGHz {
		t.Errorf("x264 should run at least as fast: %.1f vs %.1f", cfgX.FGHz, cfgB.FGHz)
	}
	if cfgX.PowerW > 185 || cfgB.PowerW > 185 {
		t.Errorf("configs must respect the budget")
	}
	// The chosen config beats the naive 8-thread nominal setting under
	// the same constraints.
	naiveGIPS := 0.0
	for threads := apps.MaxThreadsPerInstance; threads >= 1; threads-- {
		cp, err := p.CorePower(x, 3.6, p.TDTM)
		if err != nil {
			t.Fatal(err)
		}
		if float64(12*threads)*cp <= 185 && 12*threads <= p.NumCores() {
			naiveGIPS = 12 * x.InstanceGIPS(3.6, threads)
			break
		}
	}
	if cfgX.GIPS < naiveGIPS {
		t.Errorf("optimizer worse than naive: %.1f vs %.1f", cfgX.GIPS, naiveGIPS)
	}
}

func TestBestDVFSConfigErrors(t *testing.T) {
	p := plat16(t)
	x, _ := apps.ByName("x264")
	if _, err := p.BestDVFSConfig(x, 0, 185); err == nil {
		t.Errorf("zero instances should error")
	}
	if _, err := p.BestDVFSConfig(x, 12, 0); err == nil {
		t.Errorf("zero TDP should error")
	}
	if _, err := p.BestDVFSConfig(x, 12, 0.01); err == nil {
		t.Errorf("impossible TDP should be infeasible")
	}
	if _, err := p.BestDVFSConfig(x, 1000, 185); err == nil {
		t.Errorf("too many instances should be infeasible")
	}
}

func TestPlanFromConfig(t *testing.T) {
	p := plat16(t)
	x, _ := apps.ByName("x264")
	cfg, err := p.BestDVFSConfig(x, 12, 185)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.PlanFromConfig(x, 12, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ActiveCores() != cfg.Cores {
		t.Errorf("plan cores %d != config cores %d", plan.ActiveCores(), cfg.Cores)
	}
	if len(plan.Placements) != 12 {
		t.Errorf("instances = %d", len(plan.Placements))
	}
	sum, err := p.Summarize("cfg", plan)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.GIPS-cfg.GIPS) > 1e-9 {
		t.Errorf("summary GIPS %.2f != config GIPS %.2f", sum.GIPS, cfg.GIPS)
	}
}

func TestDarkSiliconUnderTempInfeasible(t *testing.T) {
	// With an absurdly low TDTM nothing can run.
	p, err := NewPlatformWith(tech.Node16, Options{TDTM: 42.5})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := apps.ByName("swaptions")
	if _, err := p.DarkSiliconUnderTemp(s, 3.6, nil); err == nil {
		t.Errorf("infeasible threshold should error")
	}
}

func TestLargerPlatforms(t *testing.T) {
	// The paper's 198-core (11 nm) and 361-core (8 nm) platforms run the
	// same estimators; smoke the full path on both.
	if testing.Short() {
		t.Skip("builds large thermal models")
	}
	cases := []struct {
		node  tech.Node
		cores int
		fmax  float64
	}{
		{tech.Node11, 198, 4.0},
		{tech.Node8, 361, 4.4},
	}
	for _, c := range cases {
		p, err := NewPlatformWith(c.node, Options{Cores: c.cores})
		if err != nil {
			t.Fatalf("%v: %v", c.node, err)
		}
		s, err := apps.ByName("swaptions")
		if err != nil {
			t.Fatal(err)
		}
		tdp, err := p.DarkSiliconUnderTDP(s, 185, c.fmax)
		if err != nil {
			t.Fatalf("%v: %v", c.node, err)
		}
		temp, err := p.DarkSiliconUnderTemp(s, c.fmax, nil)
		if err != nil {
			t.Fatalf("%v: %v", c.node, err)
		}
		if temp.Summary.ActiveCores < tdp.Summary.ActiveCores {
			t.Errorf("%v: temperature constraint should admit at least as many cores", c.node)
		}
		if temp.Summary.PeakTempC > p.TDTM+1e-6 {
			t.Errorf("%v: thermal violation %.2f", c.node, temp.Summary.PeakTempC)
		}
		// Dark silicon grows with scaling at fixed TDP (the paper's trend).
		if c.node == tech.Node8 && tdp.Summary.DarkFraction() < 0.5 {
			t.Errorf("8 nm dark fraction %.2f unexpectedly small", tdp.Summary.DarkFraction())
		}
	}
}
