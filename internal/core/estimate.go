package core

import (
	"fmt"

	"darksim/internal/apps"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
)

// TDPEstimate is the result of a power-budget-constrained estimation.
type TDPEstimate struct {
	Plan    *mapping.Plan
	Summary metrics.Summary
}

// DarkSiliconUnderTDP estimates dark silicon the way the state of the art
// the paper critiques does (§3.1): map 8-thread instances of the
// application at the given v/f level until the TDP is exhausted, count the
// rest of the chip as dark. The summary includes the resulting steady
// state peak temperature — which may exceed TDTM, the paper's Observation 1.
func (p *Platform) DarkSiliconUnderTDP(app apps.App, tdpW, fGHz float64) (TDPEstimate, error) {
	plan, err := mapping.TDPMap(p.Floorplan, app, p, mapping.TDPMapOptions{
		TDPW:                 tdpW,
		FGHz:                 fGHz,
		TempC:                p.TDTM,
		AllowPartialInstance: true,
	})
	if err != nil {
		return TDPEstimate{}, err
	}
	label := fmt.Sprintf("%s@%s TDP=%.0fW f=%.1fGHz", app.Name, p.Node, tdpW, fGHz)
	sum, err := p.Summarize(label, plan)
	if err != nil {
		return TDPEstimate{}, err
	}
	return TDPEstimate{Plan: plan, Summary: sum}, nil
}

// buildPlanFor places n cores of the application at fGHz using the
// strategy, grouping cores into 8-thread instances (last instance may be
// partial).
func (p *Platform) buildPlanFor(app apps.App, n int, fGHz float64, strategy mapping.Strategy) (*mapping.Plan, error) {
	cores, err := strategy(p.Floorplan, n)
	if err != nil {
		return nil, err
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for len(cores) > 0 {
		take := apps.MaxThreadsPerInstance
		if len(cores) < take {
			take = len(cores)
		}
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: app, Cores: cores[:take], FGHz: fGHz, Threads: take,
		})
		cores = cores[take:]
	}
	return plan, plan.Validate()
}

// MaxCoresUnderTemp finds the largest number of active cores (8-thread
// instances of the application at fGHz, placed by the strategy) whose
// steady-state peak temperature stays at or below TDTM. Binary search over
// the core count; the peak is monotone in it for any fixed strategy
// ordering.
func (p *Platform) MaxCoresUnderTemp(app apps.App, fGHz float64, strategy mapping.Strategy) (int, error) {
	if strategy == nil {
		strategy = mapping.PeripheryFirst
	}
	feasible := func(n int) (bool, error) {
		if n == 0 {
			return true, nil
		}
		plan, err := p.buildPlanFor(app, n, fGHz, strategy)
		if err != nil {
			return false, err
		}
		peak, err := p.PeakTemp(plan)
		if err != nil {
			return false, err
		}
		return peak <= p.TDTM, nil
	}
	lo, hi := 0, p.NumCores()
	if ok, err := feasible(hi); err != nil {
		return 0, err
	} else if ok {
		return hi, nil
	}
	// Invariant: feasible(lo), !feasible(hi).
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// DarkSiliconUnderTemp estimates dark silicon with temperature as the
// constraint (§3.2): activate as many cores as the TDTM threshold allows.
func (p *Platform) DarkSiliconUnderTemp(app apps.App, fGHz float64, strategy mapping.Strategy) (TDPEstimate, error) {
	if strategy == nil {
		strategy = mapping.PeripheryFirst
	}
	n, err := p.MaxCoresUnderTemp(app, fGHz, strategy)
	if err != nil {
		return TDPEstimate{}, err
	}
	if n == 0 {
		return TDPEstimate{}, fmt.Errorf("%w: %s cannot run a single core at %.1f GHz below %.1f °C",
			ErrInfeasible, app.Name, fGHz, p.TDTM)
	}
	plan, err := p.buildPlanFor(app, n, fGHz, strategy)
	if err != nil {
		return TDPEstimate{}, err
	}
	label := fmt.Sprintf("%s@%s Tcrit=%.0f°C f=%.1fGHz", app.Name, p.Node, p.TDTM, fGHz)
	sum, err := p.Summarize(label, plan)
	if err != nil {
		return TDPEstimate{}, err
	}
	return TDPEstimate{Plan: plan, Summary: sum}, nil
}

// DVFSConfig is one (threads, frequency) operating choice for an
// application's instances.
type DVFSConfig struct {
	Threads int
	FGHz    float64
	GIPS    float64 // total over all instances
	PowerW  float64 // total over all instances (at TDTM)
	Cores   int     // total active cores
	// Instances is filled by callers that search over instance counts;
	// BestDVFSConfig itself treats the count as a fixed input.
	Instances int
}

// BestDVFSConfig searches threads × ladder levels for the configuration
// that maximizes total GIPS of `instances` instances of the application
// under a TDP budget and the chip's core count (§3.3 scenario 2: the v/f
// level and thread count are chosen according to the application's TLP/ILP
// characteristics — which is exactly what maximizing under the model
// does: high-TLP apps keep more threads, high-ILP apps trade threads for
// frequency).
func (p *Platform) BestDVFSConfig(app apps.App, instances int, tdpW float64) (DVFSConfig, error) {
	if instances <= 0 {
		return DVFSConfig{}, fmt.Errorf("core: instances = %d", instances)
	}
	if tdpW <= 0 {
		return DVFSConfig{}, fmt.Errorf("core: TDP = %g W", tdpW)
	}
	var best DVFSConfig
	found := false
	for threads := 1; threads <= apps.MaxThreadsPerInstance; threads++ {
		cores := instances * threads
		if cores > p.NumCores() {
			continue
		}
		for _, lv := range p.Ladder.Points {
			cp, err := p.CorePower(app, lv.FGHz, p.TDTM)
			if err != nil {
				return DVFSConfig{}, err
			}
			total := float64(cores) * cp
			if total > tdpW {
				continue
			}
			gips := float64(instances) * app.InstanceGIPS(lv.FGHz, threads)
			if !found || gips > best.GIPS {
				best = DVFSConfig{Threads: threads, FGHz: lv.FGHz, GIPS: gips, PowerW: total, Cores: cores}
				found = true
			}
		}
	}
	if !found {
		return DVFSConfig{}, fmt.Errorf("%w: no (threads, f) fits %d instances of %s in %.0f W",
			ErrInfeasible, instances, app.Name, tdpW)
	}
	return best, nil
}

// PlanFromConfig places `instances` instances with the chosen config.
func (p *Platform) PlanFromConfig(app apps.App, instances int, cfg DVFSConfig, strategy mapping.Strategy) (*mapping.Plan, error) {
	if strategy == nil {
		strategy = mapping.Contiguous
	}
	cores, err := strategy(p.Floorplan, instances*cfg.Threads)
	if err != nil {
		return nil, err
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < instances; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App:     app,
			Cores:   cores[i*cfg.Threads : (i+1)*cfg.Threads],
			FGHz:    cfg.FGHz,
			Threads: cfg.Threads,
		})
	}
	return plan, plan.Validate()
}
