package bench

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func reportWith(ns map[string]float64) *Report {
	rep := &Report{}
	for name, v := range ns {
		rep.Results = append(rep.Results, Result{Name: name, NsPerOp: v, Iterations: 1})
	}
	return rep
}

func headlineNs(scale float64) map[string]float64 {
	ns := make(map[string]float64, len(Headline))
	for i, name := range Headline {
		ns[name] = float64(1000*(i+1)) * scale
	}
	return ns
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	old := reportWith(headlineNs(1))
	new := reportWith(headlineNs(1.2)) // 20% slower: inside the 25% gate
	deltas, err := Compare(old, new, 0)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(deltas) != len(Headline) {
		t.Fatalf("got %d deltas, want %d", len(deltas), len(Headline))
	}
	for _, d := range deltas {
		if !d.Headline {
			t.Errorf("%s not marked headline", d.Name)
		}
		if d.Ratio < 1.19 || d.Ratio > 1.21 {
			t.Errorf("%s ratio = %g, want ~1.2", d.Name, d.Ratio)
		}
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := reportWith(headlineNs(1))
	slow := headlineNs(1)
	slow[Headline[0]] *= 1.5
	_, err := Compare(old, reportWith(slow), 0)
	if !errors.Is(err, ErrRegression) {
		t.Fatalf("err = %v, want ErrRegression", err)
	}
	if !strings.Contains(err.Error(), Headline[0]) {
		t.Errorf("error %q does not name the regressed benchmark", err)
	}

	// A custom threshold admits the same slowdown.
	if _, err := Compare(old, reportWith(slow), 1.6); err != nil {
		t.Fatalf("Compare at 1.6x threshold: %v", err)
	}
}

func TestCompareMissingHeadline(t *testing.T) {
	full := reportWith(headlineNs(1))
	partial := headlineNs(1)
	delete(partial, Headline[1])
	// Dropped from the NEW report: hard error — a renamed or deleted
	// benchmark must not slip past the gate.
	if _, err := Compare(full, reportWith(partial), 0); err == nil || !strings.Contains(err.Error(), Headline[1]) {
		t.Fatalf("missing new headline: err = %v", err)
	}
	// Missing from the BASELINE: a headline promoted after the baseline
	// was taken is listed ungated with a zero old value, not an error.
	deltas, err := Compare(reportWith(partial), full, 0)
	if err != nil {
		t.Fatalf("missing baseline headline: err = %v", err)
	}
	found := false
	for _, d := range deltas {
		if d.Name == Headline[1] {
			found = true
			if d.OldNsOp != 0 || d.Ratio != 0 || !d.Headline {
				t.Fatalf("promoted headline delta = %+v, want zero baseline marker", d)
			}
		}
	}
	if !found {
		t.Fatalf("promoted headline %s absent from deltas", Headline[1])
	}
}

func TestCompareIgnoresNonSharedBenchmarks(t *testing.T) {
	oldNs := headlineNs(1)
	oldNs["fig1"] = 500
	newNs := headlineNs(1)
	newNs["fig99"] = 900
	deltas, err := Compare(reportWith(oldNs), reportWith(newNs), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		if d.Name == "fig1" || d.Name == "fig99" {
			t.Errorf("unshared benchmark %s produced a delta", d.Name)
		}
	}
}

// TestBaselineAgainstItself pins the gate to the committed trajectory
// file: the PR 10 baseline compared with itself must list every headline
// benchmark and report no regression — so the names in Headline stay in
// sync with what `darksim bench` actually emits.
func TestBaselineAgainstItself(t *testing.T) {
	path := filepath.Join("..", "..", "BENCH_PR10.json")
	rep, err := ReadReport(path)
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	deltas, err := Compare(rep, rep, 0)
	if err != nil {
		t.Fatalf("self-compare: %v", err)
	}
	found := 0
	for _, d := range deltas {
		if d.Headline {
			found++
			if d.Ratio != 1 {
				t.Errorf("%s self-ratio = %g, want 1", d.Name, d.Ratio)
			}
		}
	}
	if found != len(Headline) {
		t.Fatalf("found %d headline deltas, want %d", found, len(Headline))
	}
}

func TestReadReportErrors(t *testing.T) {
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(bad); err == nil {
		t.Error("malformed file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := writeFile(empty, `{"results":[]}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(empty); err == nil {
		t.Error("empty results: want error")
	}
}
