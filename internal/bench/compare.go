package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
)

// Headline names the benchmarks the CI regression gate gates on: the
// cold sparse thermal solve, the blocked influence-matrix build and the
// warm (influence-cached) worst-case TSP (the hot paths the PR 5/6
// optimization work bought), the three transient figures and the
// transient step/macro kernels behind them (the macro-stepping fast
// path), and the parallel-figures wall clock.
var Headline = []string{
	"ThermalSolveSparse/cores=1024",
	"InfluenceBlock/cores=1024",
	"TSPWorstCaseWarm/cores=1024",
	"figure/fig11",
	"figure/fig12",
	"figure/fig13",
	"TransientStepDense/cores=100",
	"TransientStepSparse/cores=1024",
	"TransientMacroDense/cores=100",
	"FiguresParallel/figs=3",
}

// DefaultRegressionThreshold fails the comparison when a headline
// benchmark slows down by more than 25% against the committed baseline.
// Generous enough for shared-runner noise, tight enough to catch a real
// complexity regression (the optimizations being guarded are 5–60x).
const DefaultRegressionThreshold = 1.25

// ErrRegression is wrapped by Compare failures so callers can
// distinguish "slower than baseline" from I/O or shape errors.
var ErrRegression = errors.New("bench: performance regression")

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Name     string  `json:"name"`
	OldNsOp  float64 `json:"old_ns_per_op"`
	NewNsOp  float64 `json:"new_ns_per_op"`
	Ratio    float64 `json:"ratio"` // new/old; > 1 is slower
	Headline bool    `json:"headline"`
}

// ReadReport loads a JSON report written by Report.WriteJSON.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing report %s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("bench: report %s has no results", path)
	}
	return &rep, nil
}

// Compare diffs the new report against a baseline. Every benchmark
// present in both reports yields a Delta (sorted by name, headline
// entries first). The returned error wraps ErrRegression when any
// headline benchmark's new/old ratio exceeds threshold (<= 0 selects
// DefaultRegressionThreshold). A headline benchmark missing from the
// NEW report is an error, so a renamed or silently-dropped benchmark
// cannot sneak past the gate; one missing from the BASELINE is not
// gated — newly promoted headlines would otherwise make every older
// baseline unusable — but still appears in the delta listing with a
// zero baseline so the gap is visible.
func Compare(old, cur *Report, threshold float64) ([]Delta, error) {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	oldNs := make(map[string]float64, len(old.Results))
	for _, r := range old.Results {
		oldNs[r.Name] = r.NsPerOp
	}
	newNs := make(map[string]float64, len(cur.Results))
	for _, r := range cur.Results {
		newNs[r.Name] = r.NsPerOp
	}

	headline := make(map[string]bool, len(Headline))
	for _, name := range Headline {
		if _, ok := newNs[name]; !ok {
			return nil, fmt.Errorf("bench: new report is missing headline benchmark %q", name)
		}
		if _, ok := oldNs[name]; !ok {
			// Promoted after the baseline was taken: nothing to gate
			// against yet. Listed with a zero baseline, not gated.
			continue
		}
		headline[name] = true
	}

	var deltas []Delta
	for _, name := range Headline {
		if _, inOld := oldNs[name]; !inOld {
			deltas = append(deltas, Delta{Name: name, NewNsOp: newNs[name], Headline: true})
		}
	}
	for name, o := range oldNs {
		n, ok := newNs[name]
		if !ok || o <= 0 {
			continue
		}
		deltas = append(deltas, Delta{
			Name:     name,
			OldNsOp:  o,
			NewNsOp:  n,
			Ratio:    n / o,
			Headline: headline[name],
		})
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Headline != deltas[j].Headline {
			return deltas[i].Headline
		}
		return deltas[i].Name < deltas[j].Name
	})

	var regressed []string
	for _, d := range deltas {
		if d.Headline && d.Ratio > threshold {
			regressed = append(regressed, fmt.Sprintf("%s %.2fx (%.0f -> %.0f ns/op)", d.Name, d.Ratio, d.OldNsOp, d.NewNsOp))
		}
	}
	if len(regressed) > 0 {
		return deltas, fmt.Errorf("%w: %d headline benchmark(s) over the %.0f%% threshold: %v",
			ErrRegression, len(regressed), 100*(threshold-1), regressed)
	}
	return deltas, nil
}

// WriteDeltas renders a comparison as an aligned text listing.
func WriteDeltas(w io.Writer, deltas []Delta, threshold float64) {
	if threshold <= 0 {
		threshold = DefaultRegressionThreshold
	}
	for _, d := range deltas {
		mark := " "
		switch {
		case d.Headline && d.OldNsOp == 0:
			mark = "+"
		case d.Headline && d.Ratio > threshold:
			mark = "!"
		case d.Headline:
			mark = "*"
		}
		if d.OldNsOp == 0 {
			fmt.Fprintf(w, "%s %-42s %12s -> %12.0f ns/op  (new headline, no baseline entry)\n", mark, d.Name, "-", d.NewNsOp)
			continue
		}
		fmt.Fprintf(w, "%s %-42s %12.0f -> %12.0f ns/op  %.2fx\n", mark, d.Name, d.OldNsOp, d.NewNsOp, d.Ratio)
	}
}
