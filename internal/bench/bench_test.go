package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"darksim/internal/thermal"
)

// TestThermalSolveSpec runs the micro-benchmark body once on a tiny
// platform for both paths and checks the measurement plumbing (names,
// solver stats, speedup derivation) without paying real benchmark time.
func TestThermalSolveSpec(t *testing.T) {
	rep := &Report{Speedups: make(map[string]float64)}
	for _, k := range []thermal.SolverKind{thermal.SolverDense, thermal.SolverSparse} {
		s := thermalSolveSpec(4, k)
		if !strings.Contains(s.name, "cores=16") {
			t.Fatalf("spec name %q", s.name)
		}
		br := testing.Benchmark(s.run)
		if br.N == 0 {
			t.Fatalf("%s did not run", s.name)
		}
		r := Result{
			Name:    s.name,
			NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
			Solver:  s.solver(),
		}
		if r.Solver == nil || r.Solver.Solves == 0 {
			t.Fatalf("%s reported no solver stats: %+v", s.name, r.Solver)
		}
		want := "dense"
		if k == thermal.SolverSparse {
			want = "sparse"
		}
		if r.Solver.Path != want {
			t.Fatalf("%s ran on the %s path", s.name, r.Solver.Path)
		}
		rep.Results = append(rep.Results, r)
	}
}

// TestTransientSpecs runs the transient step/macro benchmark bodies
// once on a tiny platform: below the node gate the macro path must be
// available on both solver paths, so the specs may not silently fall
// back to exact stepping.
func TestTransientSpecs(t *testing.T) {
	for _, k := range []thermal.SolverKind{thermal.SolverDense, thermal.SolverSparse} {
		for _, mk := range []func(int, thermal.SolverKind) spec{transientStepSpec, transientMacroSpec} {
			s := mk(4, k)
			if !strings.Contains(s.name, "cores=16") {
				t.Fatalf("spec name %q", s.name)
			}
			if br := testing.Benchmark(s.run); br.N == 0 {
				t.Fatalf("%s did not run", s.name)
			}
		}
	}
}

func TestComputeSpeedupsAndJSON(t *testing.T) {
	rep := &Report{
		GoVersion: "go0.test",
		Results: []Result{
			{Name: "ThermalSolveDense/cores=1024", NsPerOp: 100},
			{Name: "ThermalSolveSparse/cores=1024", NsPerOp: 10},
			{Name: "TSPWorstCaseDense/cores=1024", NsPerOp: 50},
			{Name: "TSPWorstCaseSparse/cores=1024", NsPerOp: 25},
			{Name: "TSPWorstCaseWarm/cores=1024", NsPerOp: 5},
			{Name: "InfluenceColumn/cores=1024", NsPerOp: 40},
			{Name: "InfluenceBlock/cores=1024", NsPerOp: 8},
			{Name: "InfluenceWarm/cores=1024", NsPerOp: 2},
			{Name: "TransientStepDense/cores=100", NsPerOp: 1000},
			{Name: "TransientMacroDense/cores=100", NsPerOp: 100000},
		},
		Speedups: make(map[string]float64),
	}
	rep.computeSpeedups()
	if got := rep.Speedups["thermal_solve/cores=1024"]; got != 10 {
		t.Errorf("thermal speedup = %v", got)
	}
	if got := rep.Speedups["tsp_worstcase/cores=1024"]; got != 2 {
		t.Errorf("tsp speedup = %v", got)
	}
	if got := rep.Speedups["influence_block/cores=1024"]; got != 5 {
		t.Errorf("influence block speedup = %v", got)
	}
	if got := rep.Speedups["influence_warm/cores=1024"]; got != 4 {
		t.Errorf("influence warm speedup = %v", got)
	}
	if got := rep.Speedups["tsp_warm/cores=1024"]; got != 5 {
		t.Errorf("tsp warm speedup = %v", got)
	}
	// One macro op covers macroBenchSteps exact steps: 1000·1000/100000.
	if got := rep.Speedups["transient_macro_dense/cores=100"]; got != 10 {
		t.Errorf("transient macro speedup = %v", got)
	}
	// The sparse pair was not measured, so no entry may appear.
	if _, ok := rep.Speedups["transient_macro_sparse/cores=100"]; ok {
		t.Errorf("speedup for unmeasured transient pair")
	}
	// Families missing one path produce no entry.
	if _, ok := rep.Speedups["thermal_solve/cores=100"]; ok {
		t.Errorf("speedup for unmeasured family")
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if len(back.Results) != 10 || back.Speedups["thermal_solve/cores=1024"] != 10 {
		t.Errorf("round-trip lost data: %+v", back)
	}
}
