// Package bench is the perf-trajectory harness behind `darksim bench`:
// it runs the repository's headline benchmarks — every paper figure plus
// the dense-vs-sparse thermal-solver and TSP micro-benchmarks — through
// testing.Benchmark and emits one machine-readable JSON report
// (BENCH_PR6.json in CI) so successive PRs can be compared on ns/op,
// allocs/op and solver iterations.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"darksim/internal/experiments"
	"darksim/internal/floorplan"
	"darksim/internal/runner"
	"darksim/internal/thermal"
	"darksim/internal/tsp"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Solver reports the thermal linear-solver work of the final
	// iteration's model, when the benchmark exercises one.
	Solver *thermal.SolverStats `json:"solver,omitempty"`
}

// Report is the full harness output.
type Report struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GOMAXPROCS: a report taken with GOMAXPROCS=1 on a 16-way box reads
	// very differently from one taken on a single-core container, and
	// the parallel-figures wall-clock entry only makes sense against it.
	NumCPU  int      `json:"numcpu"`
	Results []Result `json:"results"`
	// Speedups maps a benchmark family to the dense-path ns/op divided
	// by the sparse-path ns/op measured in this same run.
	Speedups map[string]float64 `json:"speedups"`
}

// Options configures a harness run.
type Options struct {
	// Figures enables the per-figure experiment benchmarks (slower).
	Figures bool
	// Out, when non-nil, receives one progress line per benchmark.
	Out io.Writer
}

// transientBenchDuration shortens the fig11–fig13 transients for
// benchmarking; the control loop is exercised identically, just over a
// shorter simulated horizon.
var transientBenchDuration = map[string]float64{"fig11": 2, "fig12": 0.5, "fig13": 0.25}

// solverCoreCounts are the platform sizes the dense-vs-sparse
// micro-benchmarks sweep (side² cores). The largest is the headline
// comparison: well above the auto-threshold, where the dense path's
// cubic factorization dominates.
var solverCoreCounts = []int{10, 32}

// tspCoreSide sizes the TSP worst-case benchmark platform.
const tspCoreSide = 32

// influenceCoreSide sizes the influence-matrix fan-out benchmarks
// (side² = 1024 cores, the ROADMAP target for interactive TSP service).
const influenceCoreSide = 32

// transientSmallSide and transientLargeSide size the transient stepping
// micro-benchmarks: 100 cores sits below the macro-kernel node gate on
// both solver paths (so TransientMacro runs there), 1024 cores is the
// sparse path's realistic large platform (above the gate — exact steps
// only).
const (
	transientSmallSide = 10
	transientLargeSide = 32
)

// macroBenchSteps is the quiet-interval length TransientMacro collapses
// per op; the matching exact-path cost is macroBenchSteps single steps,
// which is how computeSpeedups derives the macro speedup.
const macroBenchSteps = 1000

// spec is one named benchmark; solver optionally snapshots the stats of
// the model the final iteration used.
type spec struct {
	name   string
	run    func(b *testing.B)
	solver func() *thermal.SolverStats
}

// Run executes the harness and returns the report.
func Run(ctx context.Context, opt Options) (*Report, error) {
	specs, err := buildSpecs(ctx, opt)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Speedups:   make(map[string]float64),
	}
	for _, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		br := testing.Benchmark(s.run)
		if br.N == 0 {
			return nil, fmt.Errorf("bench: %s did not run (failed benchmark)", s.name)
		}
		r := Result{
			Name:        s.name,
			Iterations:  br.N,
			NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
			AllocsPerOp: br.AllocsPerOp(),
			BytesPerOp:  br.AllocedBytesPerOp(),
		}
		if s.solver != nil {
			r.Solver = s.solver()
		}
		rep.Results = append(rep.Results, r)
		if opt.Out != nil {
			fmt.Fprintf(opt.Out, "%-40s %12.0f ns/op %8d allocs/op\n", s.name, r.NsPerOp, r.AllocsPerOp)
		}
	}
	rep.computeSpeedups()
	return rep, nil
}

// computeSpeedups derives dense/sparse ratios for every benchmark family
// that ran both paths in this report.
func (rep *Report) computeSpeedups() {
	ns := make(map[string]float64, len(rep.Results))
	for _, r := range rep.Results {
		ns[r.Name] = r.NsPerOp
	}
	for _, side := range solverCoreCounts {
		cores := side * side
		d, okd := ns[fmt.Sprintf("ThermalSolveDense/cores=%d", cores)]
		s, oks := ns[fmt.Sprintf("ThermalSolveSparse/cores=%d", cores)]
		if okd && oks && s > 0 {
			rep.Speedups[fmt.Sprintf("thermal_solve/cores=%d", cores)] = d / s
		}
	}
	cores := tspCoreSide * tspCoreSide
	d, okd := ns[fmt.Sprintf("TSPWorstCaseDense/cores=%d", cores)]
	s, oks := ns[fmt.Sprintf("TSPWorstCaseSparse/cores=%d", cores)]
	if okd && oks && s > 0 {
		rep.Speedups[fmt.Sprintf("tsp_worstcase/cores=%d", cores)] = d / s
	}
	icores := influenceCoreSide * influenceCoreSide
	col, okc := ns[fmt.Sprintf("InfluenceColumn/cores=%d", icores)]
	blk, okb := ns[fmt.Sprintf("InfluenceBlock/cores=%d", icores)]
	if okc && okb && blk > 0 {
		rep.Speedups[fmt.Sprintf("influence_block/cores=%d", icores)] = col / blk
	}
	wrm, okw := ns[fmt.Sprintf("InfluenceWarm/cores=%d", icores)]
	if okb && okw && wrm > 0 {
		rep.Speedups[fmt.Sprintf("influence_warm/cores=%d", icores)] = blk / wrm
	}
	tw, okt := ns[fmt.Sprintf("TSPWorstCaseWarm/cores=%d", cores)]
	if oks && okt && tw > 0 {
		rep.Speedups[fmt.Sprintf("tsp_warm/cores=%d", cores)] = s / tw
	}
	// Macro vs exact stepping: one TransientMacro op advances
	// macroBenchSteps periods, so the fair exact-path cost is step × k.
	mcores := transientSmallSide * transientSmallSide
	for _, p := range []struct{ path, key string }{{"Dense", "dense"}, {"Sparse", "sparse"}} {
		st, okst := ns[fmt.Sprintf("TransientStep%s/cores=%d", p.path, mcores)]
		mc, okmc := ns[fmt.Sprintf("TransientMacro%s/cores=%d", p.path, mcores)]
		if okst && okmc && mc > 0 {
			rep.Speedups[fmt.Sprintf("transient_macro_%s/cores=%d", p.key, mcores)] = st * macroBenchSteps / mc
		}
	}
}

// WriteJSON marshals the report with stable indentation.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func buildSpecs(ctx context.Context, opt Options) ([]spec, error) {
	var specs []spec
	if opt.Figures {
		for _, e := range experiments.Registry() {
			e := e
			specs = append(specs, spec{
				name: "figure/" + e.ID,
				run: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := experiments.RunWithDuration(ctx, e, transientBenchDuration[e.ID]); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
		}
	}
	for _, side := range solverCoreCounts {
		specs = append(specs, thermalSolveSpec(side, thermal.SolverDense), thermalSolveSpec(side, thermal.SolverSparse))
	}
	specs = append(specs, tspSpec(tspCoreSide, thermal.SolverDense), tspSpec(tspCoreSide, thermal.SolverSparse))
	specs = append(specs,
		influenceSpec(influenceCoreSide, 1),
		influenceSpec(influenceCoreSide, 0),
		influenceWarmSpec(influenceCoreSide),
		tspWarmSpec(tspCoreSide),
	)
	specs = append(specs,
		transientStepSpec(transientSmallSide, thermal.SolverDense),
		transientStepSpec(transientSmallSide, thermal.SolverSparse),
		transientStepSpec(transientLargeSide, thermal.SolverDense),
		transientStepSpec(transientLargeSide, thermal.SolverSparse),
		transientMacroSpec(transientSmallSide, thermal.SolverDense),
		transientMacroSpec(transientSmallSide, thermal.SolverSparse),
	)
	if opt.Figures {
		specs = append(specs, parallelFiguresSpec(ctx))
	}
	return specs, nil
}

// transientModel builds the side×side-core platform the transient
// stepping benchmarks share, with the given solver path forced, plus a
// uniform 2 W power map.
func transientModel(b *testing.B, side int, k thermal.SolverKind) (*thermal.Transient, []float64) {
	b.Helper()
	fp, err := floorplan.NewGrid(side, side, 5.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, side, side)
	cfg.Solver = k
	m, err := thermal.NewModel(fp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := m.NewTransient(1e-3)
	if err != nil {
		b.Fatal(err)
	}
	tr.SetUniform(45)
	p := make([]float64, side*side)
	for i := range p {
		p[i] = 2
	}
	return tr, p
}

// transientStepSpec measures one exact implicit-Euler transient step —
// the unit of work every control period pays on the slow path. Model
// construction and the factorization (warmed by one untimed step) run
// off the clock.
func transientStepSpec(side int, k thermal.SolverKind) spec {
	name := fmt.Sprintf("TransientStep%s/cores=%d", pathName(k), side*side)
	return spec{
		name: name,
		run: func(b *testing.B) {
			tr, p := transientModel(b, side, k)
			if _, err := tr.Step(p); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Step(p); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// transientMacroSpec measures collapsing a quiet macroBenchSteps-step
// interval through the affine-powers ladder: O(log k) fused matrix
// applies instead of k triangular solves. The kernel build (dense
// inverse + ladder rungs) is warmed off the clock, matching how the
// figure sweeps amortize it across a whole run.
func transientMacroSpec(side int, k thermal.SolverKind) spec {
	name := fmt.Sprintf("TransientMacro%s/cores=%d", pathName(k), side*side)
	return spec{
		name: name,
		run: func(b *testing.B) {
			tr, p := transientModel(b, side, k)
			if !tr.MacroSupported() {
				b.Fatalf("%s: macro path unsupported at %d cores", name, side*side)
			}
			if _, err := tr.MacroStep(p, macroBenchSteps); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.SetUniform(45)
				if _, err := tr.MacroStep(p, macroBenchSteps); err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// parallelFiguresSpec measures the wall clock of the three transient
// figures running concurrently through the runner pool at NumCPU
// workers — the configuration `darksim all` and the daemon actually
// serve — so the report reflects parallel throughput next to the
// single-figure latencies (on a GOMAXPROCS=1 box the two coincide).
func parallelFiguresSpec(ctx context.Context) spec {
	return spec{
		name: "FiguresParallel/figs=3",
		run: func(b *testing.B) {
			var figs []experiments.Experiment
			for _, e := range experiments.Registry() {
				if _, ok := transientBenchDuration[e.ID]; ok {
					figs = append(figs, e)
				}
			}
			if len(figs) != 3 {
				b.Fatalf("expected 3 transient figures, found %d", len(figs))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := runner.Map(ctx, figs, runner.Options{Workers: runtime.NumCPU()},
					func(ctx context.Context, _ int, e experiments.Experiment) (struct{}, error) {
						_, err := experiments.RunWithDuration(ctx, e, transientBenchDuration[e.ID])
						return struct{}{}, err
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		},
	}
}

// influenceModel builds the sparse side×side-core model the influence
// benchmarks share as a template (each iteration constructs its own).
func influenceModel(b *testing.B, side, panel int) *thermal.Model {
	b.Helper()
	fp, err := floorplan.NewGrid(side, side, 5.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, side, side)
	cfg.Solver = thermal.SolverSparse
	cfg.InfluencePanel = panel
	m, err := thermal.NewModel(fp, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// influenceSpec measures a cold influence-matrix build on the sparse
// path: panel 1 is PR 5's one-column-at-a-time fan-out, panel 0 the
// default blocked multi-RHS width. Model construction and cache resets
// run off the clock; only the column solves are timed.
func influenceSpec(side, panel int) spec {
	var last *thermal.Model
	kind := "Block"
	if panel == 1 {
		kind = "Column"
	}
	name := fmt.Sprintf("Influence%s/cores=%d", kind, side*side)
	return spec{
		name: name,
		run: func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				thermal.ResetInfluenceCache()
				m := influenceModel(b, side, panel)
				b.StartTimer()
				if _, err := m.InfluenceMatrix(context.Background()); err != nil {
					b.Fatal(err)
				}
				last = m
			}
		},
		solver: func() *thermal.SolverStats {
			if last == nil {
				return nil
			}
			st := last.SolverStats()
			return &st
		},
	}
}

// influenceWarmSpec measures the warm influence path: the process-wide
// cache already holds the platform's matrix, so a freshly constructed
// model must serve InfluenceMatrix without any linear solves.
func influenceWarmSpec(side int) spec {
	var last *thermal.Model
	name := fmt.Sprintf("InfluenceWarm/cores=%d", side*side)
	return spec{
		name: name,
		run: func(b *testing.B) {
			thermal.ResetInfluenceCache()
			warm := influenceModel(b, side, 0)
			if _, err := warm.InfluenceMatrix(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := influenceModel(b, side, 0)
				b.StartTimer()
				if _, err := m.InfluenceMatrix(context.Background()); err != nil {
					b.Fatal(err)
				}
				last = m
			}
		},
		solver: func() *thermal.SolverStats {
			if last == nil {
				return nil
			}
			st := last.SolverStats()
			return &st
		},
	}
}

// tspWarmSpec measures the /v1/tsp request path with a warm influence
// cache: model construction, calculator setup and the full worst-case
// greedy walk — everything a request pays except the (cached) influence
// build.
func tspWarmSpec(side int) spec {
	var last *thermal.Model
	cores := side * side
	name := fmt.Sprintf("TSPWorstCaseWarm/cores=%d", cores)
	return spec{
		name: name,
		run: func(b *testing.B) {
			thermal.ResetInfluenceCache()
			warm := influenceModel(b, side, 0)
			if _, err := warm.InfluenceMatrix(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := influenceModel(b, side, 0)
				c, err := tsp.New(m, 80)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := c.WorstCase(context.Background(), cores); err != nil {
					b.Fatal(err)
				}
				last = m
			}
		},
		solver: func() *thermal.SolverStats {
			if last == nil {
				return nil
			}
			st := last.SolverStats()
			return &st
		},
	}
}

// thermalSolveSpec measures a cold steady-state solve — model assembly,
// factorization or preconditioning, and one solve — on a side×side-core
// platform with the given path forced.
func thermalSolveSpec(side int, k thermal.SolverKind) spec {
	var last *thermal.Model
	name := fmt.Sprintf("ThermalSolve%s/cores=%d", pathName(k), side*side)
	return spec{
		name: name,
		run: func(b *testing.B) {
			fp, err := floorplan.NewGrid(side, side, 5.1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, side, side)
			cfg.Solver = k
			p := make([]float64, side*side)
			for i := range p {
				p[i] = 2
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := thermal.NewModel(fp, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.SteadyState(p); err != nil {
					b.Fatal(err)
				}
				last = m
			}
		},
		solver: func() *thermal.SolverStats {
			if last == nil {
				return nil
			}
			st := last.SolverStats()
			return &st
		},
	}
}

// tspSpec measures a cold worst-case TSP computation — thermal model,
// influence matrix (one solve per core) and the greedy adversarial walk —
// at side² cores.
func tspSpec(side int, k thermal.SolverKind) spec {
	var last *thermal.Model
	cores := side * side
	name := fmt.Sprintf("TSPWorstCase%s/cores=%d", pathName(k), cores)
	return spec{
		name: name,
		run: func(b *testing.B) {
			fp, err := floorplan.NewGrid(side, side, 5.1)
			if err != nil {
				b.Fatal(err)
			}
			cfg := thermal.DefaultConfig(fp.DieW, fp.DieH, side, side)
			cfg.Solver = k
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A cold run must not hit the process-wide influence
				// cache warmed by a previous iteration or spec.
				thermal.ResetInfluenceCache()
				m, err := thermal.NewModel(fp, cfg)
				if err != nil {
					b.Fatal(err)
				}
				c, err := tsp.New(m, 80)
				if err != nil {
					b.Fatal(err)
				}
				if _, _, err := c.WorstCase(context.Background(), cores); err != nil {
					b.Fatal(err)
				}
				last = m
			}
		},
		solver: func() *thermal.SolverStats {
			if last == nil {
				return nil
			}
			st := last.SolverStats()
			return &st
		},
	}
}

func pathName(k thermal.SolverKind) string {
	if k == thermal.SolverSparse {
		return "Sparse"
	}
	return "Dense"
}
