// Package tech models the technology nodes considered by the paper
// (22, 16, 11 and 8 nm) and the ITRS-derived scaling factors of Figure 1.
//
// All factors are expressed relative to the 22 nm baseline, exactly as in
// the paper's table:
//
//	Technology  Vdd   Frequency  Capacitance  Area
//	22 nm       1.00  1.00       1.00         1.00
//	16 nm       0.89  1.35       0.64         0.53
//	11 nm       0.81  1.75       0.39         0.28
//	 8 nm       0.74  2.30       0.24         0.15
//
// The 22 nm baseline is characterised by gem5/McPAT in the paper; here the
// baseline constants (core area 9.6 mm², nominal Vdd 1.0 V, Eq.(2) fitting
// factor k = 3.7, Vth = 178 mV) are encoded directly and the other nodes
// are derived by applying the factors.
package tech

import (
	"fmt"
	"sort"
)

// Node identifies a technology node by its feature size in nanometres.
type Node int

// The four nodes studied by the paper.
const (
	Node22 Node = 22
	Node16 Node = 16
	Node11 Node = 11
	Node8  Node = 8
)

// String implements fmt.Stringer.
func (n Node) String() string { return fmt.Sprintf("%dnm", int(n)) }

// Factors holds scaling factors relative to the 22 nm baseline.
type Factors struct {
	Vdd         float64 // supply voltage factor
	Frequency   float64 // maximum stable frequency factor
	Capacitance float64 // effective switching capacitance factor
	Area        float64 // core area factor
}

// factorTable is the table of Figure 1 (factors w.r.t. 22 nm).
var factorTable = map[Node]Factors{
	Node22: {Vdd: 1.00, Frequency: 1.00, Capacitance: 1.00, Area: 1.00},
	Node16: {Vdd: 0.89, Frequency: 1.35, Capacitance: 0.64, Area: 0.53},
	Node11: {Vdd: 0.81, Frequency: 1.75, Capacitance: 0.39, Area: 0.28},
	Node8:  {Vdd: 0.74, Frequency: 2.30, Capacitance: 0.24, Area: 0.15},
}

// Baseline constants for the 22 nm node, from §2.1–2.2 of the paper.
const (
	// BaselineCoreAreaMM2 is the area of one out-of-order Alpha 21264
	// core at 22 nm according to the paper's McPAT runs.
	BaselineCoreAreaMM2 = 9.6
	// BaselineVdd is the nominal supply voltage at 22 nm in volts.
	BaselineVdd = 1.00
	// BaselineVth is the threshold voltage at 22 nm in volts (178 mV).
	BaselineVth = 0.178
	// BaselineK is the Eq.(2) fitting factor k at 22 nm in GHz·V
	// (modelled from Grenat et al., ISSCC'14, as cited by the paper).
	BaselineK = 3.7
)

// nominalFmaxGHz is the maximum nominal frequency per node in GHz, as used
// throughout the paper's experiments (§3.1 names 3.6 GHz for 16 nm, §3.2
// names 4 GHz for 11 nm and 4.4 GHz for 8 nm). The 22 nm value follows from
// Eq.(2) at the nominal Vdd: f = 3.7·(1−0.178)²/1 ≈ 2.5 GHz, rounded to the
// paper's 0.2 GHz DVFS granularity.
var nominalFmaxGHz = map[Node]float64{
	Node22: 2.6,
	Node16: 3.6,
	Node11: 4.0,
	Node8:  4.4,
}

// ErrUnknownNode is returned for nodes outside the paper's set.
type ErrUnknownNode struct{ Node Node }

func (e ErrUnknownNode) Error() string {
	return fmt.Sprintf("tech: unknown technology node %d nm (supported: 22, 16, 11, 8)", int(e.Node))
}

// FactorsFor returns the Figure 1 scaling factors for node n.
func FactorsFor(n Node) (Factors, error) {
	f, ok := factorTable[n]
	if !ok {
		return Factors{}, ErrUnknownNode{Node: n}
	}
	return f, nil
}

// Nodes returns the supported nodes in descending feature size
// (22, 16, 11, 8).
func Nodes() []Node {
	ns := make([]Node, 0, len(factorTable))
	for n := range factorTable {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] > ns[j] })
	return ns
}

// Spec is the fully derived characterization of one technology node.
type Spec struct {
	Node        Node
	Factors     Factors
	CoreAreaMM2 float64 // per-core area in mm²
	VddNominal  float64 // nominal supply voltage in V
	Vth         float64 // threshold voltage in V
	// K is the Eq.(2) fitting factor in GHz·V, calibrated per node so
	// that Eq.(2) yields FmaxGHz at VddNominal. This keeps the V/f curve
	// anchored to the paper's nominal operating points while preserving
	// its analytic shape.
	K       float64
	FmaxGHz float64 // maximum nominal (non-boost) frequency in GHz
}

// SpecFor derives the full Spec for node n.
func SpecFor(n Node) (Spec, error) {
	f, err := FactorsFor(n)
	if err != nil {
		return Spec{}, err
	}
	fmax := nominalFmaxGHz[n]
	vdd := BaselineVdd * f.Vdd
	// Invert Eq.(2) for k: f = k (V-Vth)²/V  ⇒  k = f·V/(V-Vth)².
	dv := vdd - BaselineVth
	k := fmax * vdd / (dv * dv)
	return Spec{
		Node:        n,
		Factors:     f,
		CoreAreaMM2: BaselineCoreAreaMM2 * f.Area,
		VddNominal:  vdd,
		Vth:         BaselineVth,
		K:           k,
		FmaxGHz:     fmax,
	}, nil
}

// MustSpec is SpecFor for the four known nodes; it panics on unknown nodes
// and is intended for package-level tables and tests.
func MustSpec(n Node) Spec {
	s, err := SpecFor(n)
	if err != nil {
		panic(err)
	}
	return s
}

// ScalePower scales a dynamic power value measured at 22 nm to node n when
// the scaled design runs at its own nominal voltage and a frequency scaled
// by the frequency factor. Dynamic power is α·Ceff·Vdd²·f, so the combined
// factor is Capacitance · Vdd² · Frequency.
func (f Factors) ScalePower(p22 float64) float64 {
	return p22 * f.Capacitance * f.Vdd * f.Vdd * f.Frequency
}

// ScaleCapacitance scales an effective switching capacitance from 22 nm.
func (f Factors) ScaleCapacitance(c22 float64) float64 { return c22 * f.Capacitance }

// ScaleArea scales an area from 22 nm.
func (f Factors) ScaleArea(a22 float64) float64 { return a22 * f.Area }

// ScaleVdd scales a supply voltage from 22 nm.
func (f Factors) ScaleVdd(v22 float64) float64 { return v22 * f.Vdd }

// ScaleFrequency scales a frequency from 22 nm.
func (f Factors) ScaleFrequency(hz22 float64) float64 { return hz22 * f.Frequency }
