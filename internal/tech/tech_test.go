package tech

import (
	"errors"
	"math"
	"testing"
)

func TestFactorsForKnownNodes(t *testing.T) {
	cases := []struct {
		node Node
		want Factors
	}{
		{Node22, Factors{1.00, 1.00, 1.00, 1.00}},
		{Node16, Factors{0.89, 1.35, 0.64, 0.53}},
		{Node11, Factors{0.81, 1.75, 0.39, 0.28}},
		{Node8, Factors{0.74, 2.30, 0.24, 0.15}},
	}
	for _, c := range cases {
		got, err := FactorsFor(c.node)
		if err != nil {
			t.Fatalf("%v: %v", c.node, err)
		}
		if got != c.want {
			t.Errorf("%v: factors = %+v, want %+v", c.node, got, c.want)
		}
	}
}

func TestFactorsForUnknownNode(t *testing.T) {
	_, err := FactorsFor(Node(14))
	if err == nil {
		t.Fatalf("expected error for 14 nm")
	}
	var unk ErrUnknownNode
	if !errors.As(err, &unk) || unk.Node != 14 {
		t.Errorf("error = %v, want ErrUnknownNode{14}", err)
	}
}

func TestNodesOrder(t *testing.T) {
	ns := Nodes()
	want := []Node{Node22, Node16, Node11, Node8}
	if len(ns) != len(want) {
		t.Fatalf("Nodes() = %v", ns)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Errorf("Nodes()[%d] = %v, want %v", i, ns[i], want[i])
		}
	}
}

func TestCoreAreasMatchPaper(t *testing.T) {
	// §2.1: "we obtain the following core areas: 5.1 mm², 2.7 mm², and
	// 1.4 mm² for 16 nm, 11 nm and 8 nm" (from 9.6 mm² at 22 nm).
	cases := []struct {
		node Node
		want float64
	}{
		{Node22, 9.6},
		{Node16, 5.1},
		{Node11, 2.7},
		{Node8, 1.4},
	}
	for _, c := range cases {
		s := MustSpec(c.node)
		if math.Abs(s.CoreAreaMM2-c.want) > 0.06 {
			t.Errorf("%v: core area = %.2f mm², want ≈%.1f", c.node, s.CoreAreaMM2, c.want)
		}
	}
}

func TestSpecNominalPoints(t *testing.T) {
	for _, n := range Nodes() {
		s := MustSpec(n)
		if s.Vth != BaselineVth {
			t.Errorf("%v: Vth = %v", n, s.Vth)
		}
		// Eq.(2) at nominal Vdd must reproduce FmaxGHz by construction.
		dv := s.VddNominal - s.Vth
		f := s.K * dv * dv / s.VddNominal
		if math.Abs(f-s.FmaxGHz) > 1e-9 {
			t.Errorf("%v: Eq2(VddNominal) = %v GHz, want %v", n, f, s.FmaxGHz)
		}
	}
	// 22 nm K should be close to the paper's literal k = 3.7.
	s22 := MustSpec(Node22)
	if math.Abs(s22.K-BaselineK) > 0.2 {
		t.Errorf("22nm K = %v, want ≈3.7", s22.K)
	}
	// Nominal frequencies per the paper's experiments.
	if MustSpec(Node16).FmaxGHz != 3.6 || MustSpec(Node11).FmaxGHz != 4.0 || MustSpec(Node8).FmaxGHz != 4.4 {
		t.Errorf("nominal fmax values drifted from the paper")
	}
}

func TestSpecForUnknown(t *testing.T) {
	if _, err := SpecFor(Node(7)); err == nil {
		t.Fatalf("expected error")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustSpec should panic on unknown node")
		}
	}()
	MustSpec(Node(7))
}

func TestScaleHelpers(t *testing.T) {
	f := Factors{Vdd: 0.89, Frequency: 1.35, Capacitance: 0.64, Area: 0.53}
	if got, want := f.ScaleArea(9.6), 9.6*0.53; math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaleArea = %v", got)
	}
	if got, want := f.ScaleVdd(1.0), 0.89; got != want {
		t.Errorf("ScaleVdd = %v", got)
	}
	if got, want := f.ScaleFrequency(2.0), 2.7; math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaleFrequency = %v", got)
	}
	if got, want := f.ScaleCapacitance(2.0), 1.28; math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaleCapacitance = %v", got)
	}
	// Dynamic power factor = C·V²·f.
	want := 10.0 * 0.64 * 0.89 * 0.89 * 1.35
	if got := f.ScalePower(10); math.Abs(got-want) > 1e-12 {
		t.Errorf("ScalePower = %v, want %v", got, want)
	}
}

func TestPowerDensityIncreasesWithScaling(t *testing.T) {
	// The motivation of the dark-silicon problem: power density
	// (power factor / area factor) grows monotonically as we scale down.
	prev := 0.0
	for _, n := range Nodes() {
		f, err := FactorsFor(n)
		if err != nil {
			t.Fatal(err)
		}
		density := f.ScalePower(1) / f.Area
		if density < prev {
			t.Errorf("%v: power density factor %.3f decreased (prev %.3f)", n, density, prev)
		}
		prev = density
	}
}

func TestNodeString(t *testing.T) {
	if Node16.String() != "16nm" {
		t.Errorf("String = %q", Node16.String())
	}
}
