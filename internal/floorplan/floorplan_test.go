package floorplan

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewGrid100(t *testing.T) {
	fp, err := NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 100 {
		t.Fatalf("blocks = %d", fp.NumBlocks())
	}
	if err := fp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if math.Abs(fp.TotalAreaMM2()-510) > 0.1 {
		t.Errorf("total area = %.2f mm², want 510", fp.TotalAreaMM2())
	}
	// Die should be square for a 10x10 grid of square cores.
	if math.Abs(fp.DieW-fp.DieH) > 1e-12 {
		t.Errorf("die %v x %v not square", fp.DieW, fp.DieH)
	}
	// ~22.6 mm on a side for 510 mm².
	if math.Abs(fp.DieW-0.02258) > 1e-4 {
		t.Errorf("die width = %v m", fp.DieW)
	}
}

func TestNewGridErrors(t *testing.T) {
	if _, err := NewGrid(0, 5, 1); err == nil {
		t.Errorf("zero cols should error")
	}
	if _, err := NewGrid(5, -1, 1); err == nil {
		t.Errorf("negative rows should error")
	}
	if _, err := NewGrid(5, 5, 0); err == nil {
		t.Errorf("zero area should error")
	}
}

func TestGridForCoreCount(t *testing.T) {
	cases := []struct{ n, cols, rows int }{
		{100, 10, 10}, {198, 18, 11}, {361, 19, 19}, {12, 4, 3}, {9, 3, 3},
	}
	for _, c := range cases {
		cols, rows, err := GridForCoreCount(c.n)
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if cols != c.cols || rows != c.rows {
			t.Errorf("n=%d: %dx%d, want %dx%d", c.n, cols, rows, c.cols, c.rows)
		}
	}
	if _, _, err := GridForCoreCount(0); err == nil {
		t.Errorf("0 cores should error")
	}
	if _, _, err := GridForCoreCount(97); err == nil {
		t.Errorf("prime 97 should error")
	}
}

func TestNewGridForCountPaperPlatforms(t *testing.T) {
	for _, n := range []int{100, 198, 361} {
		fp, err := NewGridForCount(n, 2.7)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if fp.NumBlocks() != n {
			t.Errorf("n=%d: blocks = %d", n, fp.NumBlocks())
		}
		if err := fp.Validate(); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
	if _, err := NewGridForCount(-1, 2.7); err == nil {
		t.Errorf("invalid count should error")
	}
}

func TestIndexAndNeighbors(t *testing.T) {
	fp, err := NewGrid(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Index(1, 2); got != 6 {
		t.Errorf("Index(1,2) = %d", got)
	}
	if fp.Index(-1, 0) != -1 || fp.Index(0, 4) != -1 || fp.Index(3, 0) != -1 {
		t.Errorf("out-of-range index should be -1")
	}
	// Corner has 2 neighbours, edge 3, interior 4.
	if n := fp.Neighbors(0); len(n) != 2 {
		t.Errorf("corner neighbours = %v", n)
	}
	if n := fp.Neighbors(1); len(n) != 3 {
		t.Errorf("edge neighbours = %v", n)
	}
	if n := fp.Neighbors(fp.Index(1, 1)); len(n) != 4 {
		t.Errorf("interior neighbours = %v", n)
	}
	if fp.Neighbors(-1) != nil || fp.Neighbors(99) != nil {
		t.Errorf("invalid index should have no neighbours")
	}
}

func TestDistance(t *testing.T) {
	fp, err := NewGrid(3, 3, 1) // 1 mm² cores, side 1e-3 m
	if err != nil {
		t.Fatal(err)
	}
	d := fp.Distance(fp.Index(0, 0), fp.Index(0, 2))
	if math.Abs(d-2e-3) > 1e-12 {
		t.Errorf("Distance = %v, want 2e-3", d)
	}
	diag := fp.Distance(fp.Index(0, 0), fp.Index(1, 1))
	if math.Abs(diag-math.Sqrt2*1e-3) > 1e-12 {
		t.Errorf("diag distance = %v", diag)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	fp := &Floorplan{
		DieW: 2, DieH: 1,
		Blocks: []Block{
			{Name: "a", X: 0, Y: 0, W: 1.2, H: 1},
			{Name: "b", X: 1, Y: 0, W: 1, H: 1},
		},
	}
	if err := fp.Validate(); err == nil {
		t.Errorf("overlap should be caught")
	}
	fp2 := &Floorplan{
		DieW: 2, DieH: 1,
		Blocks: []Block{
			{Name: "a", X: 0, Y: 0, W: 1, H: 1},
			{Name: "a", X: 1, Y: 0, W: 1, H: 1},
		},
	}
	if err := fp2.Validate(); err == nil {
		t.Errorf("duplicate names should be caught")
	}
	fp3 := &Floorplan{DieW: 1, DieH: 1, Blocks: []Block{{Name: "a", X: 0.5, Y: 0, W: 1, H: 1}}}
	if err := fp3.Validate(); err == nil {
		t.Errorf("out-of-die should be caught")
	}
	fp4 := &Floorplan{}
	if err := fp4.Validate(); err == nil {
		t.Errorf("empty plan should be caught")
	}
	fp5 := &Floorplan{DieW: 1, DieH: 1, Blocks: []Block{{Name: "a", X: 0, Y: 0, W: 0, H: 1}}}
	if err := fp5.Validate(); err == nil {
		t.Errorf("zero-size block should be caught")
	}
}

func TestFLPRoundTrip(t *testing.T) {
	fp, err := NewGrid(5, 4, 2.7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fp.WriteFLP(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFLP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlocks() != fp.NumBlocks() {
		t.Fatalf("blocks = %d, want %d", got.NumBlocks(), fp.NumBlocks())
	}
	if got.Rows != 4 || got.Cols != 5 {
		t.Errorf("grid metadata = %dx%d, want 5x4", got.Cols, got.Rows)
	}
	// Row-major order must be restored so Index works.
	for r := 0; r < 4; r++ {
		for c := 0; c < 5; c++ {
			i := got.Index(r, c)
			if got.Blocks[i].Row != r || got.Blocks[i].Col != c {
				t.Fatalf("block at (%d,%d) is %+v", r, c, got.Blocks[i])
			}
		}
	}
	// .flp stores nanometre-rounded coordinates, so areas may drift by
	// a few 1e-5 mm² across a round trip.
	if math.Abs(got.TotalAreaMM2()-fp.TotalAreaMM2()) > 1e-3 {
		t.Errorf("area drifted: %v vs %v", got.TotalAreaMM2(), fp.TotalAreaMM2())
	}
}

func TestReadFLPNonGridNames(t *testing.T) {
	in := "alu\t0.001\t0.001\t0\t0\ncache\t0.001\t0.001\t0.001\t0\n"
	fp, err := ReadFLP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fp.Cols != 0 {
		t.Errorf("non-grid names should not produce grid metadata")
	}
	if fp.NumBlocks() != 2 {
		t.Errorf("blocks = %d", fp.NumBlocks())
	}
}

func TestReadFLPErrors(t *testing.T) {
	if _, err := ReadFLP(strings.NewReader("")); err == nil {
		t.Errorf("empty input should error")
	}
	if _, err := ReadFLP(strings.NewReader("a 1 2 3\n")); err == nil {
		t.Errorf("short line should error")
	}
	if _, err := ReadFLP(strings.NewReader("a x 1 0 0\n")); err == nil {
		t.Errorf("bad float should error")
	}
	// Overlapping blocks must fail validation on read.
	if _, err := ReadFLP(strings.NewReader("a\t1\t1\t0\t0\nb\t1\t1\t0.5\t0\n")); err == nil {
		t.Errorf("overlap should error")
	}
}

func TestReadFLPIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# header\n\ncore_0_0 0.001 0.001 0 0\n# tail\ncore_0_1 0.001 0.001 0.001 0\n"
	fp, err := ReadFLP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if fp.NumBlocks() != 2 || fp.Cols != 2 || fp.Rows != 1 {
		t.Errorf("got %d blocks, %dx%d", fp.NumBlocks(), fp.Cols, fp.Rows)
	}
}

func TestSortedByName(t *testing.T) {
	fp := &Floorplan{
		DieW: 3, DieH: 1,
		Blocks: []Block{
			{Name: "c", X: 2, Y: 0, W: 1, H: 1},
			{Name: "a", X: 0, Y: 0, W: 1, H: 1},
			{Name: "b", X: 1, Y: 0, W: 1, H: 1},
		},
	}
	idx := fp.SortedByName()
	if fp.Blocks[idx[0]].Name != "a" || fp.Blocks[idx[2]].Name != "c" {
		t.Errorf("sorted order wrong: %v", idx)
	}
}

// Property: every generated grid validates, has the right block count and
// survives a .flp round trip with identical geometry.
func TestGridRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cols, rows := 1+rng.Intn(12), 1+rng.Intn(12)
		area := 0.5 + 9*rng.Float64()
		fp, err := NewGrid(cols, rows, area)
		if err != nil || fp.Validate() != nil || fp.NumBlocks() != cols*rows {
			return false
		}
		var buf bytes.Buffer
		if err := fp.WriteFLP(&buf); err != nil {
			return false
		}
		got, err := ReadFLP(&buf)
		if err != nil || got.NumBlocks() != cols*rows {
			return false
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				a := fp.Blocks[fp.Index(r, c)]
				b := got.Blocks[got.Index(r, c)]
				if math.Abs(a.X-b.X) > 1e-9 || math.Abs(a.W-b.W) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
