package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteFLP writes the floorplan in the HotSpot .flp text format:
//
//	<unit-name> <width> <height> <left-x> <bottom-y>
//
// with all dimensions in metres, one block per line, '#' comments. Blocks
// are emitted in name order for deterministic output.
func (fp *Floorplan) WriteFLP(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# floorplan: %d blocks, die %.6f x %.6f m\n", len(fp.Blocks), fp.DieW, fp.DieH)
	fmt.Fprintf(bw, "# <unit-name> <width> <height> <left-x> <bottom-y>\n")
	for _, i := range fp.SortedByName() {
		b := fp.Blocks[i]
		fmt.Fprintf(bw, "%s\t%.9f\t%.9f\t%.9f\t%.9f\n", b.Name, b.W, b.H, b.X, b.Y)
	}
	return bw.Flush()
}

// ReadFLP parses a HotSpot-style .flp stream. Grid metadata (Rows/Cols)
// is reconstructed when block names follow the core_<row>_<col> convention
// produced by NewGrid; otherwise the plan is non-grid (Cols == 0).
func ReadFLP(r io.Reader) (*Floorplan, error) {
	fp := &Floorplan{}
	sc := bufio.NewScanner(r)
	line := 0
	gridLike := true
	maxRow, maxCol := -1, -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 5 {
			return nil, fmt.Errorf("%w: line %d: want 5 fields, got %d", ErrInvalid, line, len(fields))
		}
		var vals [4]float64
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(fields[i+1], 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrInvalid, line, err)
			}
			vals[i] = v
		}
		b := Block{Name: fields[0], W: vals[0], H: vals[1], X: vals[2], Y: vals[3], Row: -1, Col: -1}
		if row, col, ok := parseGridName(b.Name); ok {
			b.Row, b.Col = row, col
			if row > maxRow {
				maxRow = row
			}
			if col > maxCol {
				maxCol = col
			}
		} else {
			gridLike = false
		}
		fp.Blocks = append(fp.Blocks, b)
		if x := b.X + b.W; x > fp.DieW {
			fp.DieW = x
		}
		if y := b.Y + b.H; y > fp.DieH {
			fp.DieH = y
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("floorplan: read: %w", err)
	}
	if len(fp.Blocks) == 0 {
		return nil, fmt.Errorf("%w: no blocks in .flp input", ErrInvalid)
	}
	if gridLike && (maxRow+1)*(maxCol+1) == len(fp.Blocks) {
		fp.Rows, fp.Cols = maxRow+1, maxCol+1
		// Re-order blocks into row-major order so Index() works.
		ordered := make([]Block, len(fp.Blocks))
		seen := 0
		for _, b := range fp.Blocks {
			at := b.Row*fp.Cols + b.Col
			if at < 0 || at >= len(ordered) || ordered[at].Name != "" {
				fp.Rows, fp.Cols = 0, 0
				ordered = nil
				break
			}
			ordered[at] = b
			seen++
		}
		if ordered != nil && seen == len(fp.Blocks) {
			fp.Blocks = ordered
		}
	}
	return fp, fp.Validate()
}

func parseGridName(name string) (row, col int, ok bool) {
	if !strings.HasPrefix(name, "core_") {
		return 0, 0, false
	}
	parts := strings.Split(name[len("core_"):], "_")
	if len(parts) != 2 {
		return 0, 0, false
	}
	r, err1 := strconv.Atoi(parts[0])
	c, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || r < 0 || c < 0 {
		return 0, 0, false
	}
	return r, c, true
}
