// Package floorplan models manycore chip floorplans: rectangular core
// blocks placed on a die, with grid generation for the paper's 100-, 198-
// and 361-core platforms, adjacency queries used by the mapping policies,
// and a HotSpot-style .flp text format for interchange.
//
// The paper's platforms are homogeneous grids of identical out-of-order
// Alpha 21264 cores; per-node core areas come from internal/tech (9.6, 5.1,
// 2.7 and 1.4 mm² for 22/16/11/8 nm).
package floorplan

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Block is one rectangular unit of the floorplan (a core).
type Block struct {
	Name string
	X, Y float64 // lower-left corner in metres
	W, H float64 // width and height in metres
	Row  int     // grid row (0 at the bottom), -1 if not grid-placed
	Col  int     // grid column (0 at the left), -1 if not grid-placed
}

// CenterX returns the x coordinate of the block centre.
func (b Block) CenterX() float64 { return b.X + b.W/2 }

// CenterY returns the y coordinate of the block centre.
func (b Block) CenterY() float64 { return b.Y + b.H/2 }

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// Floorplan is a set of non-overlapping blocks on a die.
type Floorplan struct {
	Blocks []Block
	// DieW and DieH are the die dimensions in metres (bounding box of
	// the blocks for generated plans).
	DieW, DieH float64
	// Cols and Rows are set for grid floorplans; 0 otherwise.
	Cols, Rows int
}

// ErrInvalid is returned for malformed floorplans or generation parameters.
var ErrInvalid = errors.New("floorplan: invalid")

// NewGrid builds a cols×rows grid of identical square cores, each of area
// coreAreaMM2 (mm²). The paper's chips are 100 (10×10), 198 (18×11) and
// 361 (19×19) cores.
func NewGrid(cols, rows int, coreAreaMM2 float64) (*Floorplan, error) {
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("%w: grid %dx%d", ErrInvalid, cols, rows)
	}
	if coreAreaMM2 <= 0 {
		return nil, fmt.Errorf("%w: core area %g mm²", ErrInvalid, coreAreaMM2)
	}
	side := math.Sqrt(coreAreaMM2 * 1e-6) // metres
	fp := &Floorplan{
		DieW: side * float64(cols),
		DieH: side * float64(rows),
		Cols: cols,
		Rows: rows,
	}
	fp.Blocks = make([]Block, 0, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			fp.Blocks = append(fp.Blocks, Block{
				Name: fmt.Sprintf("core_%d_%d", r, c),
				X:    float64(c) * side,
				Y:    float64(r) * side,
				W:    side,
				H:    side,
				Row:  r,
				Col:  c,
			})
		}
	}
	return fp, nil
}

// GridForCoreCount returns the grid dimensions used by the paper for its
// core counts: 100 → 10×10, 198 → 18×11, 361 → 19×19. Other counts get the
// most-square factorization (falling back to ceil(sqrt)×ceil(sqrt) with
// trailing cores trimmed is NOT done: the count must factor exactly).
func GridForCoreCount(n int) (cols, rows int, err error) {
	switch n {
	case 100:
		return 10, 10, nil
	case 198:
		return 18, 11, nil
	case 361:
		return 19, 19, nil
	}
	if n <= 0 {
		return 0, 0, fmt.Errorf("%w: core count %d", ErrInvalid, n)
	}
	best := 0
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	if best == 1 && n > 3 {
		return 0, 0, fmt.Errorf("%w: core count %d has no near-square factorization", ErrInvalid, n)
	}
	return n / best, best, nil
}

// NewGridForCount builds the paper-standard grid for n cores.
func NewGridForCount(n int, coreAreaMM2 float64) (*Floorplan, error) {
	cols, rows, err := GridForCoreCount(n)
	if err != nil {
		return nil, err
	}
	return NewGrid(cols, rows, coreAreaMM2)
}

// NumBlocks returns the number of blocks.
func (fp *Floorplan) NumBlocks() int { return len(fp.Blocks) }

// TotalAreaMM2 returns the summed block area in mm².
func (fp *Floorplan) TotalAreaMM2() float64 {
	var a float64
	for _, b := range fp.Blocks {
		a += b.Area()
	}
	return a * 1e6
}

// Index returns the block index at grid position (row, col), or -1.
func (fp *Floorplan) Index(row, col int) int {
	if fp.Cols == 0 || row < 0 || col < 0 || row >= fp.Rows || col >= fp.Cols {
		return -1
	}
	return row*fp.Cols + col
}

// Neighbors returns the indices of the 4-connected neighbours of block i
// in a grid floorplan (empty for non-grid plans).
func (fp *Floorplan) Neighbors(i int) []int {
	if fp.Cols == 0 || i < 0 || i >= len(fp.Blocks) {
		return nil
	}
	b := fp.Blocks[i]
	var out []int
	for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		if j := fp.Index(b.Row+d[0], b.Col+d[1]); j >= 0 {
			out = append(out, j)
		}
	}
	return out
}

// Distance returns the centre-to-centre Euclidean distance between blocks
// i and j in metres.
func (fp *Floorplan) Distance(i, j int) float64 {
	a, b := fp.Blocks[i], fp.Blocks[j]
	dx := a.CenterX() - b.CenterX()
	dy := a.CenterY() - b.CenterY()
	return math.Hypot(dx, dy)
}

// Validate checks the plan for overlapping or out-of-die blocks and
// duplicate names.
func (fp *Floorplan) Validate() error {
	if len(fp.Blocks) == 0 {
		return fmt.Errorf("%w: empty floorplan", ErrInvalid)
	}
	names := make(map[string]bool, len(fp.Blocks))
	// Tolerate 1 nm of slack: the .flp text format rounds coordinates to
	// nanometres, so round-tripped plans may "overlap" by that much.
	const eps = 2e-9
	for i, b := range fp.Blocks {
		if b.W <= 0 || b.H <= 0 {
			return fmt.Errorf("%w: block %q has non-positive size", ErrInvalid, b.Name)
		}
		if b.X < -eps || b.Y < -eps || b.X+b.W > fp.DieW+1e-9 || b.Y+b.H > fp.DieH+1e-9 {
			return fmt.Errorf("%w: block %q outside die", ErrInvalid, b.Name)
		}
		if names[b.Name] {
			return fmt.Errorf("%w: duplicate block name %q", ErrInvalid, b.Name)
		}
		names[b.Name] = true
		for j := i + 1; j < len(fp.Blocks); j++ {
			o := fp.Blocks[j]
			if b.X < o.X+o.W-eps && o.X < b.X+b.W-eps &&
				b.Y < o.Y+o.H-eps && o.Y < b.Y+b.H-eps {
				return fmt.Errorf("%w: blocks %q and %q overlap", ErrInvalid, b.Name, o.Name)
			}
		}
	}
	return nil
}

// SortedByName returns block indices ordered by block name; .flp output
// uses this ordering for determinism.
func (fp *Floorplan) SortedByName() []int {
	idx := make([]int, len(fp.Blocks))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fp.Blocks[idx[a]].Name < fp.Blocks[idx[b]].Name })
	return idx
}
