package floorplan

import (
	"fmt"
	"math"
)

// ShelfGroup is one homogeneous run of cores placed by NewShelves: Count
// square blocks of AreaMM2 each, named Name_0 … Name_{Count-1}.
type ShelfGroup struct {
	Name    string
	Count   int
	AreaMM2 float64
}

// NewShelves builds a heterogeneous floorplan by shelf packing: groups are
// placed in order, left-to-right into rows ("shelves"), starting a new row
// when the running row would exceed the target die width (the side of the
// square with the total block area). Each shelf holds blocks of one group
// only, so shelf height equals that group's block side and no blocks
// overlap. This is the compilation target for scenario specs with
// asymmetric core mixes (big.LITTLE), where a uniform grid cannot hold
// per-type block sizes; symmetric specs keep using NewGrid, whose layout
// the golden corpus pins.
//
// Blocks are appended group by group, so the block-index range of group g
// is [Σ count(<g), Σ count(≤g)); callers rely on this for core-type
// addressing. Row and Col are -1: shelf plans are not grid plans.
func NewShelves(groups []ShelfGroup) (*Floorplan, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("%w: no shelf groups", ErrInvalid)
	}
	var total float64
	for _, g := range groups {
		if g.Count <= 0 {
			return nil, fmt.Errorf("%w: group %q has count %d", ErrInvalid, g.Name, g.Count)
		}
		if g.AreaMM2 <= 0 || math.IsInf(g.AreaMM2, 0) || math.IsNaN(g.AreaMM2) {
			return nil, fmt.Errorf("%w: group %q has area %g mm²", ErrInvalid, g.Name, g.AreaMM2)
		}
		if g.Name == "" {
			return nil, fmt.Errorf("%w: unnamed shelf group", ErrInvalid)
		}
		total += float64(g.Count) * g.AreaMM2 * 1e-6 // m²
	}
	targetW := math.Sqrt(total)
	fp := &Floorplan{}
	var x, y, rowH, maxW float64
	for _, g := range groups {
		side := math.Sqrt(g.AreaMM2 * 1e-6)
		// Each group starts its own shelf so every shelf has one height.
		if rowH > 0 {
			y += rowH
			x = 0
		}
		rowH = side
		for i := 0; i < g.Count; i++ {
			if x > 0 && x+side > targetW*(1+1e-9) {
				y += rowH
				x = 0
			}
			fp.Blocks = append(fp.Blocks, Block{
				Name: fmt.Sprintf("%s_%d", g.Name, i),
				X:    x, Y: y, W: side, H: side,
				Row: -1, Col: -1,
			})
			x += side
			if x > maxW {
				maxW = x
			}
		}
	}
	fp.DieW = maxW
	fp.DieH = y + rowH
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// MinBlockSide returns the smallest block edge in metres (0 for an empty
// plan). Scenario compilation uses it to pick the thermal grid resolution
// for non-grid floorplans.
func (fp *Floorplan) MinBlockSide() float64 {
	minSide := math.Inf(1)
	for _, b := range fp.Blocks {
		if b.W < minSide {
			minSide = b.W
		}
		if b.H < minSide {
			minSide = b.H
		}
	}
	if math.IsInf(minSide, 1) {
		return 0
	}
	return minSide
}
