package floorplan

import (
	"errors"
	"math"
	"testing"
)

func TestNewShelvesSingleGroup(t *testing.T) {
	fp, err := NewShelves([]ShelfGroup{{Name: "core", Count: 9, AreaMM2: 4}})
	if err != nil {
		t.Fatalf("NewShelves: %v", err)
	}
	if got := fp.NumBlocks(); got != 9 {
		t.Fatalf("NumBlocks = %d, want 9", got)
	}
	// 9 blocks of 4 mm² shelf-pack 3 per row against targetW = 6 mm.
	side := math.Sqrt(4e-6)
	if math.Abs(fp.DieW-3*side) > 1e-12 || math.Abs(fp.DieH-3*side) > 1e-12 {
		t.Fatalf("die = %g x %g, want %g x %g", fp.DieW, fp.DieH, 3*side, 3*side)
	}
	for i, b := range fp.Blocks {
		if b.Row != -1 || b.Col != -1 {
			t.Fatalf("block %d has grid coords (%d,%d), want (-1,-1)", i, b.Row, b.Col)
		}
	}
	if fp.Blocks[0].Name != "core_0" || fp.Blocks[8].Name != "core_8" {
		t.Fatalf("block names %q..%q, want core_0..core_8", fp.Blocks[0].Name, fp.Blocks[8].Name)
	}
}

func TestNewShelvesGroupOrderContiguous(t *testing.T) {
	fp, err := NewShelves([]ShelfGroup{
		{Name: "big", Count: 2, AreaMM2: 12},
		{Name: "little", Count: 6, AreaMM2: 3},
	})
	if err != nil {
		t.Fatalf("NewShelves: %v", err)
	}
	if got := fp.NumBlocks(); got != 8 {
		t.Fatalf("NumBlocks = %d, want 8", got)
	}
	// Scenario compilation addresses core types by contiguous block-index
	// ranges in group order: big occupies [0,2), little [2,8).
	for i := 0; i < 2; i++ {
		if fp.Blocks[i].Name[:3] != "big" {
			t.Fatalf("block %d = %q, want big_*", i, fp.Blocks[i].Name)
		}
	}
	for i := 2; i < 8; i++ {
		if fp.Blocks[i].Name[:6] != "little" {
			t.Fatalf("block %d = %q, want little_*", i, fp.Blocks[i].Name)
		}
	}
	// Heterogeneous sides: big blocks are larger than little blocks.
	if !(fp.Blocks[0].W > fp.Blocks[7].W) {
		t.Fatalf("big side %g not > little side %g", fp.Blocks[0].W, fp.Blocks[7].W)
	}
}

func TestNewShelvesValidatesInput(t *testing.T) {
	cases := []struct {
		name   string
		groups []ShelfGroup
	}{
		{"empty", nil},
		{"zero count", []ShelfGroup{{Name: "c", Count: 0, AreaMM2: 1}}},
		{"negative area", []ShelfGroup{{Name: "c", Count: 1, AreaMM2: -1}}},
		{"NaN area", []ShelfGroup{{Name: "c", Count: 1, AreaMM2: math.NaN()}}},
		{"unnamed", []ShelfGroup{{Name: "", Count: 1, AreaMM2: 1}}},
	}
	for _, tc := range cases {
		if _, err := NewShelves(tc.groups); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestMinBlockSide(t *testing.T) {
	fp, err := NewShelves([]ShelfGroup{
		{Name: "big", Count: 1, AreaMM2: 16},
		{Name: "little", Count: 1, AreaMM2: 1},
	})
	if err != nil {
		t.Fatalf("NewShelves: %v", err)
	}
	want := math.Sqrt(1e-6)
	if got := fp.MinBlockSide(); math.Abs(got-want) > 1e-15 {
		t.Fatalf("MinBlockSide = %g, want %g", got, want)
	}
	var empty Floorplan
	if got := empty.MinBlockSide(); got != 0 {
		t.Fatalf("empty MinBlockSide = %g, want 0", got)
	}
}
