// Package runner is the shared parallel-execution layer under the
// experiment sweeps: a bounded worker pool with context cancellation and
// errgroup-style first-error-cancels-rest semantics, built on the standard
// library only (the module has no dependencies).
//
// The package offers two entry points:
//
//   - Map / MapN run a fixed set of independent items through a worker
//     pool and return the results in item order, regardless of completion
//     order, so parallel sweeps render byte-identically to a sequential
//     loop.
//   - Group is a lightweight errgroup clone for heterogeneous tasks that
//     do not fit the map shape.
//
// Cancellation is cooperative: when one item fails (or the caller's
// context is cancelled), the context passed to every remaining callback is
// cancelled, and callbacks are expected to check it — typically once on
// entry, and between expensive phases. Callbacks that ignore the context
// simply run to completion; the first error is still reported.
package runner

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the pool size used when Options.Workers (or the
// workers argument of WithContext) is zero or negative: one worker per
// available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Options configures a Map/MapN run.
type Options struct {
	// Workers bounds the number of concurrently running callbacks.
	// Zero or negative means DefaultWorkers().
	Workers int
	// Progress, when non-nil, is called after each item finishes
	// (successfully or not) with the number of finished items and the
	// total. Calls are serialized but may arrive from any worker
	// goroutine.
	Progress func(done, total int)
}

// Map runs fn over every item on a bounded worker pool and returns the
// outputs in item order. On failure it returns the error of the
// lowest-indexed item that genuinely failed; errors that merely report
// the cancellation triggered by an earlier failure (or by the caller's
// context) never mask the root cause. The first failure cancels the
// context seen by all other callbacks. Items whose callback failed or was
// cancelled hold their zero value in the returned slice.
//
// When every callback succeeds but the caller's context was cancelled
// mid-run, Map returns ctx.Err() so a timed-out run is never mistaken for
// a complete one.
func Map[In, Out any](ctx context.Context, items []In, opt Options, fn func(ctx context.Context, index int, item In) (Out, error)) ([]Out, error) {
	return MapN(ctx, len(items), opt, func(ctx context.Context, i int) (Out, error) {
		return fn(ctx, i, items[i])
	})
}

// MapN is Map for the common index-only case: it runs fn for every index
// in [0, n) and returns the n outputs in index order.
func MapN[Out any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, index int) (Out, error)) ([]Out, error) {
	out := make([]Out, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu     sync.Mutex
		done   int
		errIdx = -1
		first  error
	)
	record := func(i int, err error) {
		mu.Lock()
		if replaces(i, err, errIdx, first) {
			errIdx, first = i, err
		}
		mu.Unlock()
		cancel()
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				o, err := fn(cctx, i)
				if err != nil {
					record(i, err)
				} else {
					out[i] = o
				}
				if opt.Progress != nil {
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					opt.Progress(d, n)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	if first != nil {
		return out, first
	}
	return out, ctx.Err()
}

// isCancellation reports whether err only relays a context cancellation
// rather than a genuine failure of the item itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// replaces decides whether the new error (i, err) should supersede the
// recorded one: genuine failures beat cancellation fallout, and within the
// same class the lowest index wins, keeping the reported error
// deterministic under arbitrary goroutine scheduling.
func replaces(i int, err error, oldIdx int, old error) bool {
	if old == nil {
		return true
	}
	if isCancellation(old) != isCancellation(err) {
		return isCancellation(old)
	}
	return i < oldIdx
}

// Group runs heterogeneous tasks with a shared concurrency bound and
// first-error-cancels-rest semantics, like golang.org/x/sync/errgroup
// with a limit. The zero value is not usable; construct with WithContext.
type Group struct {
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	sem     chan struct{}
	errOnce sync.Once
	err     error

	// started counts tasks that acquired a worker slot; active is the
	// gauge of slots currently held. The job runtime asserts through
	// these that a cancelled run actually releases its slot.
	started atomic.Int64
	active  atomic.Int64
}

// WithContext returns a Group bounded to `workers` concurrent tasks
// (<=0 means DefaultWorkers()) and the derived context that is cancelled
// when any task fails or Wait returns.
func WithContext(ctx context.Context, workers int) (*Group, context.Context) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	cctx, cancel := context.WithCancel(ctx)
	return &Group{ctx: cctx, cancel: cancel, sem: make(chan struct{}, workers)}, cctx
}

// Go schedules fn, blocking while the concurrency bound is saturated.
// fn receives the group context and should honor its cancellation.
func (g *Group) Go(fn func(ctx context.Context) error) {
	g.sem <- struct{}{}
	g.started.Add(1)
	g.active.Add(1)
	g.wg.Add(1)
	go func() {
		defer func() {
			g.active.Add(-1)
			<-g.sem
			g.wg.Done()
		}()
		if err := fn(g.ctx); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				g.cancel()
			})
		}
	}()
}

// Wait blocks until every scheduled task has returned, cancels the group
// context, and returns the first error recorded.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.cancel()
	return g.err
}

// Active reports how many worker slots are currently held. It is a
// point-in-time gauge: a task that has returned but not yet released its
// slot still counts.
func (g *Group) Active() int64 { return g.active.Load() }

// Started reports how many tasks have acquired a worker slot since the
// group was created (monotonic).
func (g *Group) Started() int64 { return g.started.Load() }
