package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), items, Options{Workers: 8}, func(_ context.Context, i, item int) (int, error) {
		// Stagger completion so late indices tend to finish first.
		time.Sleep(time.Duration((len(items)-i)%7) * time.Millisecond)
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, o, i*i)
		}
	}
}

func TestMapNBoundsWorkers(t *testing.T) {
	var mu sync.Mutex
	active, peak := 0, 0
	_, err := MapN(context.Background(), 40, Options{Workers: 3}, func(context.Context, int) (struct{}, error) {
		mu.Lock()
		active++
		if active > peak {
			peak = active
		}
		mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Errorf("peak concurrency %d exceeds worker bound 3", peak)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	sentinel := errors.New("boom")
	start := time.Now()
	_, err := MapN(context.Background(), 20, Options{Workers: 4}, func(ctx context.Context, i int) (int, error) {
		if i == 3 {
			return 0, fmt.Errorf("item %d: %w", i, sentinel)
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return 0, errors.New("cancellation never arrived")
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the genuine failure", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancellation took %v; remaining items were not cut short", elapsed)
	}
}

func TestMapGenuineErrorBeatsCancellationFallout(t *testing.T) {
	// The genuine failure sits at a HIGH index; lower-indexed items fail
	// with cancellation fallout afterwards. The genuine one must win.
	sentinel := errors.New("root cause")
	release := make(chan struct{})
	_, err := MapN(context.Background(), 8, Options{Workers: 8}, func(ctx context.Context, i int) (int, error) {
		if i == 7 {
			close(release)
			return 0, sentinel
		}
		<-release
		<-ctx.Done()
		return 0, fmt.Errorf("item %d: %w", i, ctx.Err())
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want root cause to beat cancellation fallout", err)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	// Several genuine failures: the lowest index must be reported no
	// matter which goroutine records first.
	for trial := 0; trial < 10; trial++ {
		_, err := MapN(context.Background(), 10, Options{Workers: 10}, func(_ context.Context, i int) (int, error) {
			return 0, fmt.Errorf("fail-%d", i)
		})
		if err == nil || err.Error() != "fail-0" {
			t.Fatalf("err = %v, want fail-0", err)
		}
	}
}

func TestMapExternalCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapN(ctx, 5, Options{}, func(ctx context.Context, i int) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("point %d: %w", i, err)
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != 5 {
		t.Fatalf("len(out) = %d", len(out))
	}
}

func TestMapContextErrorWhenCallbacksIgnoreIt(t *testing.T) {
	// Callbacks that ignore ctx all succeed, but a cancelled caller
	// context must still surface so a timed-out run is not mistaken for
	// a complete one.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapN(ctx, 3, Options{}, func(context.Context, int) (int, error) { return 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapProgress(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	total := -1
	out, err := MapN(context.Background(), 17, Options{Workers: 4, Progress: func(done, n int) {
		mu.Lock()
		calls = append(calls, done)
		total = n
		mu.Unlock()
	}}, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 17 || len(calls) != 17 || total != 17 {
		t.Fatalf("out=%d calls=%d total=%d, want 17 each", len(out), len(calls), total)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress calls not monotonic: %v", calls)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), nil, Options{}, func(context.Context, int, string) (int, error) {
		t.Fatal("callback must not run")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestGroupFirstErrorWinsAndCancels(t *testing.T) {
	sentinel := errors.New("boom")
	g, gctx := WithContext(context.Background(), 2)
	g.Go(func(context.Context) error { return sentinel })
	g.Go(func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Second):
			return errors.New("group cancellation never arrived")
		}
	})
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("Wait = %v, want sentinel", err)
	}
	if gctx.Err() == nil {
		t.Errorf("group context should be cancelled after Wait")
	}
}

func TestGroupBoundsWorkers(t *testing.T) {
	g, _ := WithContext(context.Background(), 2)
	var mu sync.Mutex
	active, peak := 0, 0
	for i := 0; i < 8; i++ {
		g.Go(func(context.Context) error {
			mu.Lock()
			active++
			if active > peak {
				peak = active
			}
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak > 2 {
		t.Errorf("peak concurrency %d exceeds limit 2", peak)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}

func TestGroupCounters(t *testing.T) {
	g, _ := WithContext(context.Background(), 2)
	if g.Active() != 0 || g.Started() != 0 {
		t.Fatalf("fresh group counters = %d/%d, want 0/0", g.Active(), g.Started())
	}
	// Fill both worker slots with gated tasks: Active reflects the held
	// slots while they run and drops to zero when they return.
	gate := make(chan struct{})
	for i := 0; i < 2; i++ {
		g.Go(func(context.Context) error {
			<-gate
			return nil
		})
	}
	if a := g.Active(); a != 2 {
		t.Errorf("active = %d with both slots held, want 2", a)
	}
	close(gate)
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if g.Active() != 0 {
		t.Errorf("active = %d after Wait, want 0", g.Active())
	}
	g.Go(func(context.Context) error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if g.Started() != 3 {
		t.Errorf("started = %d, want 3 (monotonic across Waits)", g.Started())
	}
}
