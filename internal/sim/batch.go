package sim

import (
	"context"
	"fmt"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/vf"
)

// BatchRun is one lane of RunBatch: a static plan simulated under its
// own controller. Lanes share the platform, ladder and Options.
type BatchRun struct {
	Plan *mapping.Plan
	Ctrl Controller
}

// batchLane carries the per-lane engine state RunDynamic keeps in
// locals: the working plan copy, the lane's own temperature and power
// buffers, and the running accounting.
type batchLane struct {
	ctrl   Controller
	work   *mapping.Plan
	temps  []float64 // lane-owned; StepAll writes the post-step block temps here
	power  []float64
	peak   float64
	fGHz   float64
	totalP float64
	totalG float64
	res    Result
	energy metrics.EnergyMeter
}

func (l *batchLane) setLevel(ladder *vf.Ladder, level int) {
	l.fGHz = ladder.Points[ladder.Clamp(level)].FGHz
	for i := range l.work.Placements {
		l.work.Placements[i].FGHz = l.fGHz
	}
}

// evalPower fills the lane's power map from its current temperatures via
// the direct per-core path — the same code Run's exact path uses, so a
// batch lane and a solo run compute identical bits.
func (l *batchLane) evalPower(p *core.Platform, mode core.PowerMode) error {
	for i := range l.power {
		l.power[i] = 0
	}
	l.totalP, l.totalG = 0, 0
	for _, pl := range l.work.Placements {
		l.totalG += pl.GIPS()
		for _, c := range pl.Cores {
			cp, err := p.PlacementCorePowerAt(pl, l.temps[c], mode)
			if err != nil {
				return err
			}
			l.power[c] = cp
			l.totalP += cp
		}
	}
	return nil
}

// RunBatch simulates every lane in lockstep on one platform, sharing
// each control period's thermal solve across lanes through the batched
// transient kernel (on the dense path one sweep of the cached factor
// serves all lanes' right-hand sides). Every lane runs the exact
// per-period engine — StepMode is ignored — and its Result is
// bit-for-bit identical to Run(p, lane.Plan, lane.Ctrl, ladder, opt)
// under StepExact; the boost-arm differential test pins that. Observer
// is not supported in batch runs. The context is checked once per
// control period so long sweeps stay cancellable.
func RunBatch(ctx context.Context, p *core.Platform, runs []BatchRun, ladder *vf.Ladder, opt Options) ([]Result, error) {
	if p == nil || ladder == nil {
		return nil, fmt.Errorf("%w: nil argument", ErrRun)
	}
	if opt.Observer != nil {
		return nil, fmt.Errorf("%w: batch runs do not support an Observer", ErrRun)
	}
	if len(runs) == 0 {
		return nil, nil
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("%w: duration %g s", ErrRun, opt.Duration)
	}
	if opt.ControlPeriod == 0 {
		opt.ControlPeriod = 1e-3
	}
	if opt.ControlPeriod <= 0 || opt.ControlPeriod > opt.Duration {
		return nil, fmt.Errorf("%w: control period %g s", ErrRun, opt.ControlPeriod)
	}
	if opt.RecordPoints == 0 {
		opt.RecordPoints = 1000
	}
	if opt.EmergencyC == 0 {
		opt.EmergencyC = p.TDTM + 5
	}
	steps := int(opt.Duration/opt.ControlPeriod + 0.5)
	recordEvery := steps / opt.RecordPoints
	if recordEvery < 1 {
		recordEvery = 1
	}

	batch, err := p.Thermal.NewTransientBatch(opt.ControlPeriod, len(runs))
	if err != nil {
		return nil, err
	}

	lanes := make([]*batchLane, len(runs))
	powers := make([][]float64, len(runs))
	temps := make([][]float64, len(runs))
	for i, r := range runs {
		if r.Plan == nil || r.Ctrl == nil {
			return nil, fmt.Errorf("%w: nil argument in lane %d", ErrRun, i)
		}
		if err := r.Plan.Validate(); err != nil {
			return nil, err
		}
		if r.Plan.NumCores != p.NumCores() {
			return nil, fmt.Errorf("%w: plan has %d cores, platform %d", ErrRun, r.Plan.NumCores, p.NumCores())
		}
		l := &batchLane{
			ctrl:  r.Ctrl,
			work:  &mapping.Plan{NumCores: p.NumCores()},
			power: make([]float64, p.NumCores()),
		}
		l.work.Placements = append(l.work.Placements[:0], r.Plan.Placements...)
		tr := batch.Transient(i)
		l.peak, _ = tr.PeakBlockTemp()
		l.setLevel(ladder, ladder.Clamp(r.Ctrl.Current()))
		if opt.StartSteady {
			_, power, err := p.SteadyTemps(l.work, opt.Mode)
			if err != nil {
				return nil, err
			}
			if err := tr.SetSteadyState(power); err != nil {
				return nil, err
			}
			l.peak, _ = tr.PeakBlockTemp()
		}
		l.res.MaxTempC = l.peak
		l.temps = append([]float64(nil), tr.BlockTemps()...)
		lanes[i] = l
		powers[i] = l.power
		temps[i] = l.temps
	}

	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := float64(step) * opt.ControlPeriod

		// Phase 1: every lane's controller decision (with the DTM
		// emergency override) and power evaluation at its current
		// temperatures.
		for _, l := range lanes {
			level := ladder.Clamp(l.ctrl.Next(l.peak))
			if l.peak > opt.EmergencyC {
				level = 0
				l.res.DTMEvents++
			}
			l.setLevel(ladder, level)
			if err := l.evalPower(p, opt.Mode); err != nil {
				return nil, err
			}
		}

		// Phase 2: one batched implicit-Euler step for all lanes.
		if err := batch.StepAll(powers, nil, temps); err != nil {
			return nil, err
		}

		// Phase 3: per-lane accounting, identical to Run's exact path.
		for _, l := range lanes {
			l.peak = 0
			for _, t := range l.temps {
				if t > l.peak {
					l.peak = t
				}
			}
			if err := l.energy.Add(opt.ControlPeriod, l.totalP); err != nil {
				return nil, err
			}
			if l.totalP > l.res.PeakPowerW {
				l.res.PeakPowerW = l.totalP
			}
			if l.peak > l.res.MaxTempC {
				l.res.MaxTempC = l.peak
			}
			l.res.AvgGIPS += l.totalG
			if step%recordEvery == 0 || step == steps-1 {
				l.res.Time.Append(now, now)
				l.res.GIPS.Append(now, l.totalG)
				l.res.PeakTemp.Append(now, l.peak)
				l.res.PowerW.Append(now, l.totalP)
				l.res.LevelGHz.Append(now, l.fGHz)
			}
		}
	}

	out := make([]Result, len(lanes))
	for i, l := range lanes {
		l.res.AvgGIPS /= float64(steps)
		l.res.EnergyJ = l.energy.TotalJ()
		out[i] = l.res
	}
	return out, nil
}
