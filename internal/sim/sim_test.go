package sim

import (
	"fmt"
	"strings"
	"testing"

	"darksim/internal/apps"
	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/tech"
)

var platCache *core.Platform

func plat(t testing.TB) *core.Platform {
	t.Helper()
	if platCache == nil {
		p, err := core.NewPlatform(tech.Node16)
		if err != nil {
			t.Fatal(err)
		}
		platCache = p
	}
	return platCache
}

// x264Plan builds the Figure 11 workload: 12 instances × 8 threads.
func x264Plan(t testing.TB, p *core.Platform) *mapping.Plan {
	t.Helper()
	x, err := apps.ByName("x264")
	if err != nil {
		t.Fatal(err)
	}
	cores, err := mapping.PeripheryFirst(p.Floorplan, 96)
	if err != nil {
		t.Fatal(err)
	}
	plan := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < 12; i++ {
		plan.Placements = append(plan.Placements, mapping.Placement{
			App: x, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}
	return plan
}

// fixedLevel is a trivial controller for engine tests.
type fixedLevel int

func (f fixedLevel) Next(float64) int { return int(f) }

func (f fixedLevel) Current() int { return int(f) }

func TestRunValidation(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	ladder := p.Ladder
	if _, err := Run(nil, plan, fixedLevel(0), ladder, Options{Duration: 1}); err == nil {
		t.Errorf("nil platform should error")
	}
	if _, err := Run(p, plan, fixedLevel(0), ladder, Options{}); err == nil {
		t.Errorf("zero duration should error")
	}
	if _, err := Run(p, plan, fixedLevel(0), ladder, Options{Duration: 1, ControlPeriod: 2}); err == nil {
		t.Errorf("period > duration should error")
	}
	bad := &mapping.Plan{NumCores: 50}
	if _, err := Run(p, bad, fixedLevel(0), ladder, Options{Duration: 1}); err == nil {
		t.Errorf("plan/platform mismatch should error")
	}
}

func TestRunHeatsTowardSteadyState(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	// Fix the level at 3.0 GHz and run 30 s from cold; the chip should
	// approach (from below) the steady-state temperature of that level.
	level := p.Ladder.Nearest(3.0)
	res, err := Run(p, plan, fixedLevel(level), p.Ladder, Options{
		Duration:      30,
		ControlPeriod: 10e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Placements {
		plan.Placements[i].FGHz = 3.0
	}
	want, err := p.PeakTemp(plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxTempC > want+0.5 {
		t.Errorf("transient overshot steady state: %.2f vs %.2f", res.MaxTempC, want)
	}
	last := res.PeakTemp.Y[len(res.PeakTemp.Y)-1]
	if last < want-8 {
		t.Errorf("after 30 s the chip should be near steady state: %.2f vs %.2f", last, want)
	}
	// Temperatures rise monotonically under constant power (sampled).
	for i := 1; i < res.PeakTemp.Len(); i++ {
		if res.PeakTemp.Y[i] < res.PeakTemp.Y[i-1]-1e-6 {
			t.Fatalf("peak temp decreased under constant level at sample %d", i)
		}
	}
	if res.AvgGIPS <= 0 || res.EnergyJ <= 0 || res.PeakPowerW <= 0 {
		t.Errorf("accounting empty: %+v", res)
	}
}

func TestRunStartSteady(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	level := p.Ladder.Nearest(3.0)
	res, err := Run(p, plan, fixedLevel(level), p.Ladder, Options{
		Duration:      0.5,
		ControlPeriod: 1e-3,
		StartSteady:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Already at steady state: temperature should barely move.
	if res.PeakTemp.Max()-res.PeakTemp.Min() > 0.5 {
		t.Errorf("steady start should hold temperature: range %.2f–%.2f",
			res.PeakTemp.Min(), res.PeakTemp.Max())
	}
}

func TestRunEmergencyThrottle(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	// Drive at the boost top with an emergency threshold set just above
	// ambient: every period must throttle to level 0.
	top := len(p.BoostLadder.Points) - 1
	res, err := Run(p, plan, fixedLevel(top), p.BoostLadder, Options{
		Duration:      0.2,
		ControlPeriod: 1e-3,
		EmergencyC:    p.Thermal.Ambient() + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DTMEvents == 0 {
		t.Errorf("emergency throttle never triggered")
	}
	// Throttled level is the ladder bottom.
	if res.LevelGHz.Min() != p.BoostLadder.Points[0].FGHz {
		t.Errorf("throttle should clamp to lowest level; min = %v", res.LevelGHz.Min())
	}
}

func TestRunGIPSMatchesLevel(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	x, _ := apps.ByName("x264")
	level := p.Ladder.Nearest(2.0)
	res, err := Run(p, plan, fixedLevel(level), p.Ladder, Options{
		Duration:      0.1,
		ControlPeriod: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 12 * x.InstanceGIPS(2.0, 8)
	if diff := res.AvgGIPS - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("GIPS = %v, want %v", res.AvgGIPS, want)
	}
}

func TestRunObserver(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	calls := 0
	var lastPeak float64
	res, err := Run(p, plan, fixedLevel(3), p.Ladder, Options{
		Duration:      0.05,
		ControlPeriod: 1e-3,
		Observer: func(now float64, temps, power []float64) error {
			calls++
			if len(temps) != 100 || len(power) != 100 {
				t.Fatalf("observer vectors sized %d/%d", len(temps), len(power))
			}
			for _, tc := range temps {
				if tc > lastPeak {
					lastPeak = tc
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 50 {
		t.Errorf("observer called %d times, want 50", calls)
	}
	if lastPeak < res.MaxTempC-1e-9 {
		t.Errorf("observer missed the peak: %v vs %v", lastPeak, res.MaxTempC)
	}
	// Observer errors abort the run.
	boom := fmt.Errorf("boom")
	_, err = Run(p, plan, fixedLevel(3), p.Ladder, Options{
		Duration:      0.05,
		ControlPeriod: 1e-3,
		Observer:      func(float64, []float64, []float64) error { return boom },
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("observer error should abort the run: %v", err)
	}
}

func TestRunDynamicSwitchesPlans(t *testing.T) {
	p := plat(t)
	planA := x264Plan(t, p)
	// planB uses a different region of the chip.
	x, _ := apps.ByName("x264")
	cores, err := mapping.Contiguous(p.Floorplan, 16)
	if err != nil {
		t.Fatal(err)
	}
	planB := &mapping.Plan{NumCores: p.NumCores()}
	for i := 0; i < 2; i++ {
		planB.Placements = append(planB.Placements, mapping.Placement{
			App: x, Cores: cores[i*8 : (i+1)*8], FGHz: 3.0, Threads: 8,
		})
	}
	switcher := planSwitcher{at: 0.025, a: planA, b: planB}
	res, err := RunDynamic(p, switcher, fixedLevel(3), p.Ladder, Options{
		Duration:      0.05,
		ControlPeriod: 1e-3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// GIPS halves... the first half runs 12 instances, the second 2.
	firstG := res.GIPS.Y[0]
	lastG := res.GIPS.Y[len(res.GIPS.Y)-1]
	if lastG >= firstG {
		t.Errorf("plan switch should drop GIPS: %v -> %v", firstG, lastG)
	}
	// A provider returning an invalid plan aborts.
	bad := &mapping.Plan{NumCores: 3}
	_, err = RunDynamic(p, planSwitcher{at: 0.01, a: planA, b: bad}, fixedLevel(3), p.Ladder, Options{
		Duration:      0.05,
		ControlPeriod: 1e-3,
	})
	if err == nil {
		t.Errorf("invalid mid-run plan should abort")
	}
	// A provider returning nil mid-run aborts.
	_, err = RunDynamic(p, planSwitcher{at: 0.01, a: planA, b: nil}, fixedLevel(3), p.Ladder, Options{
		Duration:      0.05,
		ControlPeriod: 1e-3,
	})
	if err == nil {
		t.Errorf("nil mid-run plan should abort")
	}
}

// planSwitcher switches from plan a to plan b at time `at`.
type planSwitcher struct {
	at   float64
	a, b *mapping.Plan
}

func (s planSwitcher) PlanAt(t float64) *mapping.Plan {
	if t < s.at {
		return s.a
	}
	return s.b
}
