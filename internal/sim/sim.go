// Package sim is the transient co-simulation engine behind the paper's §6
// boosting experiments (Figures 11–13): it advances the thermal RC model
// in lockstep with the Equation (1) power model and a DVFS controller that
// picks one chip-wide frequency level per control period — exactly the
// closed-loop Turbo-Boost-style control the paper describes (1 ms period,
// 200 MHz steps, 80 °C threshold).
//
// Each control period the engine:
//  1. asks the controller for the next ladder level given the current
//     peak core temperature,
//  2. re-evaluates every placement's per-core power at that level and at
//     each core's current temperature (leakage is temperature-dependent),
//  3. steps the implicit-Euler transient thermal model,
//  4. records performance (GIPS), power and peak temperature.
//
// A DTM guard clamps the system to the lowest level while the temperature
// is above an emergency threshold, mirroring the hardware thermal
// protection the paper's TDTM is defined against.
package sim

import (
	"errors"
	"fmt"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/vf"
)

// Controller chooses the next ladder level each control period.
type Controller interface {
	// Next returns the ladder level index for the coming period, given
	// the current peak core temperature. Implementations own their
	// state (current level, hysteresis, …).
	Next(peakTempC float64) int
	// Current returns the controller's present level without advancing
	// its state; Run uses it to pick the StartSteady operating point.
	Current() int
}

// FixedLevelController marks controllers that are stateless and always
// answer with one level regardless of temperature (the constant-level
// arms of Figures 11–13). Under StepAuto the engine may skip Next calls
// across a quiet interval for such controllers and advance the thermal
// state in one macro-step; implementations must guarantee Next is
// side-effect-free and constant.
type FixedLevelController interface {
	Controller
	// FixedLevel returns the controller's one level.
	FixedLevel() int
}

// StepMode selects how the engine advances the thermal model.
type StepMode int

const (
	// StepExact advances period by period through the exact implicit-
	// Euler kernel: the historical behaviour, bit-for-bit. It is the
	// default and what every differential pin runs under.
	StepExact StepMode = iota
	// StepAuto lets the engine macro-step quiet intervals — stretches
	// where a FixedLevelController holds the level on a static plan well
	// below the DTM emergency threshold — by freezing the power map for
	// the interval and collapsing its steps into O(log k) matrix applies
	// with a steady-state snap (see internal/thermal's macro kernel).
	// Recorded series keep their per-period sampling grid; between
	// samples the frozen-power trajectory replaces the per-period
	// leakage re-evaluation, a drift bounded well inside the golden
	// corpus tolerance (see the sim property tests). Runs whose
	// controller, provider or Observer cannot be proven quiet degrade to
	// StepExact bit for bit.
	StepAuto
)

// stepAutoSnapTolC is the node-space distance (°C) below which a quiet
// interval snaps onto its frozen-power steady state.
const stepAutoSnapTolC = 0.01

// macroDTMGuardC is the safety margin (°C) kept between any macro-
// stepped trajectory and the DTM emergency threshold: segments whose
// start or frozen steady state comes within the guard fall back to
// per-period stepping so emergency throttling keeps its per-period
// resolution.
const macroDTMGuardC = 1.0

// Options configures a transient run.
type Options struct {
	// Duration of the simulated run in seconds. Required.
	Duration float64
	// ControlPeriod in seconds (default 1 ms, the paper's §6 setting).
	ControlPeriod float64
	// Mode is the power-evaluation mode (default core.BusyWait).
	Mode core.PowerMode
	// RecordPoints bounds the stored series length (default 1000).
	RecordPoints int
	// EmergencyC is the DTM hard-throttle threshold; while the peak
	// temperature exceeds it the level is forced to 0. Default
	// TDTM + 5 °C.
	EmergencyC float64
	// StartSteady initializes the chip at the steady state of the
	// controller's first level rather than a cold (ambient) chip, so
	// short runs measure the sustained regime the paper plots.
	StartSteady bool
	// StepMode selects exact per-period stepping (default) or the
	// macro-stepping fast path for provably quiet intervals.
	StepMode StepMode
	// Observer, when set, is invoked after every control period with the
	// simulated time and the per-core temperature and power vectors (not
	// copies — observers must not retain or mutate them). Aging
	// integration and custom trace capture hook in here; a non-nil error
	// aborts the run.
	Observer func(now float64, tempsC, powerW []float64) error
}

// Result is the outcome of a transient run.
type Result struct {
	Time     metrics.Series // seconds
	GIPS     metrics.Series // total chip throughput over time
	PeakTemp metrics.Series // °C over time
	PowerW   metrics.Series // total chip power over time
	LevelGHz metrics.Series // controller level over time

	AvgGIPS    float64
	EnergyJ    float64
	PeakPowerW float64
	MaxTempC   float64
	DTMEvents  int // control periods spent in emergency throttle
}

// ErrRun is returned for invalid run configurations.
var ErrRun = errors.New("sim: invalid run")

// PlanProvider supplies the workload plan as a function of time, enabling
// spatio-temporal mapping: the same instances can migrate across the chip
// mid-run (dark-silicon rotation) while the controller keeps driving the
// shared frequency level.
type PlanProvider interface {
	// PlanAt returns the plan active at simulated time t (seconds). The
	// returned plan may be shared across calls; the engine copies the
	// placements it mutates.
	PlanAt(t float64) *mapping.Plan
}

// StaticPlan adapts a fixed plan to PlanProvider.
type StaticPlan struct{ Plan *mapping.Plan }

// PlanAt implements PlanProvider.
func (s StaticPlan) PlanAt(float64) *mapping.Plan { return s.Plan }

// Run simulates the plan under the controller on the platform's ladder.
// The plan's placements define which cores run which application with how
// many threads; the controller overrides every placement's frequency with
// a single chip-wide level from `ladder` (the paper's §6 experiments drive
// all active cores together).
func Run(p *core.Platform, plan *mapping.Plan, ctrl Controller, ladder *vf.Ladder, opt Options) (Result, error) {
	if plan == nil {
		return Result{}, fmt.Errorf("%w: nil plan", ErrRun)
	}
	return RunDynamic(p, StaticPlan{Plan: plan}, ctrl, ladder, opt)
}

// RunDynamic simulates a time-varying workload. Plans returned by the
// provider must all be for the platform's core count; each distinct plan
// is validated on first sight.
func RunDynamic(p *core.Platform, provider PlanProvider, ctrl Controller, ladder *vf.Ladder, opt Options) (Result, error) {
	if p == nil || provider == nil || ctrl == nil || ladder == nil {
		return Result{}, fmt.Errorf("%w: nil argument", ErrRun)
	}
	plan := provider.PlanAt(0)
	if plan == nil {
		return Result{}, fmt.Errorf("%w: provider returned nil plan", ErrRun)
	}
	if opt.Duration <= 0 {
		return Result{}, fmt.Errorf("%w: duration %g s", ErrRun, opt.Duration)
	}
	if opt.ControlPeriod == 0 {
		opt.ControlPeriod = 1e-3
	}
	if opt.ControlPeriod <= 0 || opt.ControlPeriod > opt.Duration {
		return Result{}, fmt.Errorf("%w: control period %g s", ErrRun, opt.ControlPeriod)
	}
	if opt.RecordPoints == 0 {
		opt.RecordPoints = 1000
	}
	if opt.EmergencyC == 0 {
		opt.EmergencyC = p.TDTM + 5
	}
	steps := int(opt.Duration/opt.ControlPeriod + 0.5)
	recordEvery := steps / opt.RecordPoints
	if recordEvery < 1 {
		recordEvery = 1
	}

	tr, err := p.Thermal.NewTransient(opt.ControlPeriod)
	if err != nil {
		return Result{}, err
	}

	// Fast-path state (StepAuto): fused power coefficients per level —
	// bit-identical to PlacementCorePowerAt, see core.PowerCoef — and
	// macro-step eligibility. Eligibility is proven, not assumed: the
	// controller must be a FixedLevelController, the plan static, no
	// Observer attached and the model under the macro kernel's node
	// gate; anything else steps exactly, period by period.
	useAuto := opt.StepMode == StepAuto
	type levelPower struct {
		coefs  []core.PowerCoef
		totalG float64
	}
	byLevel := map[int]*levelPower{}

	// Working copy of the current plan so the controller can retune
	// frequencies without mutating the provider's plans. Each distinct
	// plan pointer is validated once.
	validated := map[*mapping.Plan]bool{}
	work := &mapping.Plan{NumCores: p.NumCores()}
	var current *mapping.Plan
	adopt := func(next *mapping.Plan) error {
		if next == current {
			return nil
		}
		if next == nil {
			return fmt.Errorf("%w: provider returned nil plan", ErrRun)
		}
		if !validated[next] {
			if err := next.Validate(); err != nil {
				return err
			}
			if next.NumCores != p.NumCores() {
				return fmt.Errorf("%w: plan has %d cores, platform %d", ErrRun, next.NumCores, p.NumCores())
			}
			validated[next] = true
		}
		current = next
		work.Placements = append(work.Placements[:0], next.Placements...)
		for k := range byLevel {
			delete(byLevel, k)
		}
		return nil
	}
	if err := adopt(plan); err != nil {
		return Result{}, err
	}

	setLevel := func(level int) float64 {
		f := ladder.Points[ladder.Clamp(level)].FGHz
		for i := range work.Placements {
			work.Placements[i].FGHz = f
		}
		return f
	}

	// levelPowerFor caches the fused coefficients for the current level;
	// setLevel(level) must have run first. The cache is invalidated on
	// plan adoption (adopt clears it below).
	levelPowerFor := func(level int) (*levelPower, error) {
		if lp, ok := byLevel[level]; ok {
			return lp, nil
		}
		lp := &levelPower{coefs: make([]core.PowerCoef, len(work.Placements))}
		for i, pl := range work.Placements {
			c, err := p.PowerCoefFor(pl, opt.Mode)
			if err != nil {
				return nil, err
			}
			lp.coefs[i] = c
			lp.totalG += pl.GIPS()
		}
		byLevel[level] = lp
		return lp, nil
	}

	// Initial state: the controller's current level, without advancing
	// its state (the first Next happens inside the loop).
	peak, _ := tr.PeakBlockTemp()
	level := ladder.Clamp(ctrl.Current())
	setLevel(level)
	if opt.StartSteady {
		_, power, err := p.SteadyTemps(work, opt.Mode)
		if err != nil {
			return Result{}, err
		}
		if err := tr.SetSteadyState(power); err != nil {
			return Result{}, err
		}
		peak, _ = tr.PeakBlockTemp()
	}

	var res Result
	var energy metrics.EnergyMeter
	res.MaxTempC = peak

	// Macro-step eligibility for quiet intervals. Note the short-circuit
	// order: the macro kernel is only built once a run has proven itself
	// quiet in every other respect.
	fixed, _ := ctrl.(FixedLevelController)
	_, static := provider.(StaticPlan)
	macroOK := useAuto && fixed != nil && static && opt.Observer == nil && tr.MacroSupported()
	maxSafeC := opt.EmergencyC - macroDTMGuardC

	// evalPower fills power[] from the current temperatures and returns
	// (ΣP, ΣGIPS). The coefficient path and the direct path are
	// bit-identical per core; StepExact keeps the direct path anyway so
	// the historical pins exercise historical code.
	temps := tr.BlockTemps()
	power := make([]float64, p.NumCores())
	evalPower := func(level int) (totalP, totalG float64, err error) {
		for i := range power {
			power[i] = 0
		}
		if useAuto {
			lp, err := levelPowerFor(level)
			if err != nil {
				return 0, 0, err
			}
			for pi, pl := range work.Placements {
				for _, c := range pl.Cores {
					cp := lp.coefs[pi].At(temps[c])
					power[c] = cp
					totalP += cp
				}
			}
			return totalP, lp.totalG, nil
		}
		for _, pl := range work.Placements {
			totalG += pl.GIPS()
			for _, c := range pl.Cores {
				cp, err := p.PlacementCorePowerAt(pl, temps[c], opt.Mode)
				if err != nil {
					return 0, 0, err
				}
				power[c] = cp
				totalP += cp
			}
		}
		return totalP, totalG, nil
	}

	for step := 0; step < steps; step++ {
		now := float64(step) * opt.ControlPeriod

		// Workload migration (spatio-temporal mapping).
		if err := adopt(provider.PlanAt(now)); err != nil {
			return Result{}, err
		}

		// Quiet interval: collapse every step up to the next recording
		// point into one macro advance of the frozen power map. The
		// interval must start and (per its frozen steady state) stay a
		// guard band below the DTM threshold, else it falls through to
		// the exact per-period path and its emergency checks.
		if macroOK && peak <= maxSafeC {
			end := step + (recordEvery-step%recordEvery)%recordEvery
			if end > steps-1 {
				end = steps - 1
			}
			k := end - step + 1
			level = ladder.Clamp(fixed.FixedLevel())
			fGHz := setLevel(level)
			totalP, totalG, err := evalPower(level)
			if err != nil {
				return Result{}, err
			}
			next, ok, err := tr.AdvanceQuiet(power, k, stepAutoSnapTolC, maxSafeC)
			if err != nil {
				return Result{}, err
			}
			if ok {
				temps = next
				peak = 0
				for _, t := range temps {
					if t > peak {
						peak = t
					}
				}
				if err := energy.Add(float64(k)*opt.ControlPeriod, totalP); err != nil {
					return Result{}, err
				}
				if totalP > res.PeakPowerW {
					res.PeakPowerW = totalP
				}
				if peak > res.MaxTempC {
					res.MaxTempC = peak
				}
				res.AvgGIPS += totalG * float64(k)
				endNow := float64(end) * opt.ControlPeriod
				res.Time.Append(endNow, endNow)
				res.GIPS.Append(endNow, totalG)
				res.PeakTemp.Append(endNow, peak)
				res.PowerW.Append(endNow, totalP)
				res.LevelGHz.Append(endNow, fGHz)
				step = end
				continue
			}
		}

		// Controller decision (with DTM emergency override).
		level = ladder.Clamp(ctrl.Next(peak))
		if peak > opt.EmergencyC {
			level = 0
			res.DTMEvents++
		}
		fGHz := setLevel(level)

		// Per-core power at current temperatures.
		totalP, totalG, err := evalPower(level)
		if err != nil {
			return Result{}, err
		}

		// Advance the thermal state.
		temps, err = tr.Step(power)
		if err != nil {
			return Result{}, err
		}
		peak = 0
		for _, t := range temps {
			if t > peak {
				peak = t
			}
		}

		// Accounting.
		if opt.Observer != nil {
			if err := opt.Observer(now, temps, power); err != nil {
				return Result{}, fmt.Errorf("sim: observer: %w", err)
			}
		}
		if err := energy.Add(opt.ControlPeriod, totalP); err != nil {
			return Result{}, err
		}
		if totalP > res.PeakPowerW {
			res.PeakPowerW = totalP
		}
		if peak > res.MaxTempC {
			res.MaxTempC = peak
		}
		res.AvgGIPS += totalG
		if step%recordEvery == 0 || step == steps-1 {
			res.Time.Append(now, now)
			res.GIPS.Append(now, totalG)
			res.PeakTemp.Append(now, peak)
			res.PowerW.Append(now, totalP)
			res.LevelGHz.Append(now, fGHz)
		}
	}
	res.AvgGIPS /= float64(steps)
	res.EnergyJ = energy.TotalJ()
	return res, nil
}
