package sim

import (
	"fmt"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/vf"
)

// GroupController drives one DVFS level per placement — per-application
// DVFS islands, the control model behind DsRem-style management where
// every application gets its own v/f level (§4). Contrast with
// Controller, which drives a single chip-wide level (§6's Turbo-style
// loop).
type GroupController interface {
	// NextLevels returns the ladder level for every placement, given the
	// chip peak and each placement's own hottest-core temperature. The
	// returned slice is owned by the controller and must have one entry
	// per placement.
	NextLevels(chipPeakC float64, placementPeakC []float64) []int
	// CurrentLevels returns the present levels without advancing state.
	CurrentLevels() []int
}

// RunGrouped simulates a static plan under per-placement control. The
// engine mirrors Run (implicit-Euler thermal stepping, DTM emergency
// clamp, identical accounting); the Result's LevelGHz series records the
// maximum level across placements.
func RunGrouped(p *core.Platform, plan *mapping.Plan, ctrl GroupController, ladder *vf.Ladder, opt Options) (Result, error) {
	if p == nil || plan == nil || ctrl == nil || ladder == nil {
		return Result{}, fmt.Errorf("%w: nil argument", ErrRun)
	}
	if opt.Duration <= 0 {
		return Result{}, fmt.Errorf("%w: duration %g s", ErrRun, opt.Duration)
	}
	if opt.ControlPeriod == 0 {
		opt.ControlPeriod = 1e-3
	}
	if opt.ControlPeriod <= 0 || opt.ControlPeriod > opt.Duration {
		return Result{}, fmt.Errorf("%w: control period %g s", ErrRun, opt.ControlPeriod)
	}
	if opt.RecordPoints == 0 {
		opt.RecordPoints = 1000
	}
	if opt.EmergencyC == 0 {
		opt.EmergencyC = p.TDTM + 5
	}
	if err := plan.Validate(); err != nil {
		return Result{}, err
	}
	if plan.NumCores != p.NumCores() {
		return Result{}, fmt.Errorf("%w: plan has %d cores, platform %d", ErrRun, plan.NumCores, p.NumCores())
	}
	if got := len(ctrl.CurrentLevels()); got != len(plan.Placements) {
		return Result{}, fmt.Errorf("%w: controller drives %d placements, plan has %d",
			ErrRun, got, len(plan.Placements))
	}

	steps := int(opt.Duration/opt.ControlPeriod + 0.5)
	recordEvery := steps / opt.RecordPoints
	if recordEvery < 1 {
		recordEvery = 1
	}
	tr, err := p.Thermal.NewTransient(opt.ControlPeriod)
	if err != nil {
		return Result{}, err
	}

	work := &mapping.Plan{NumCores: plan.NumCores}
	work.Placements = append([]mapping.Placement(nil), plan.Placements...)

	setLevels := func(levels []int) float64 {
		maxF := 0.0
		for i := range work.Placements {
			f := ladder.Points[ladder.Clamp(levels[i])].FGHz
			work.Placements[i].FGHz = f
			if f > maxF {
				maxF = f
			}
		}
		return maxF
	}

	peak, _ := tr.PeakBlockTemp()
	setLevels(ctrl.CurrentLevels())
	if opt.StartSteady {
		_, power, err := p.SteadyTemps(work, opt.Mode)
		if err != nil {
			return Result{}, err
		}
		if err := tr.SetSteadyState(power); err != nil {
			return Result{}, err
		}
		peak, _ = tr.PeakBlockTemp()
	}

	var res Result
	var energy metrics.EnergyMeter
	res.MaxTempC = peak

	temps := tr.BlockTemps()
	power := make([]float64, plan.NumCores)
	placementPeaks := make([]float64, len(work.Placements))
	for step := 0; step < steps; step++ {
		now := float64(step) * opt.ControlPeriod

		for i, pl := range work.Placements {
			pp := 0.0
			for _, c := range pl.Cores {
				if temps[c] > pp {
					pp = temps[c]
				}
			}
			placementPeaks[i] = pp
		}
		levels := ctrl.NextLevels(peak, placementPeaks)
		if len(levels) != len(work.Placements) {
			return Result{}, fmt.Errorf("%w: controller returned %d levels for %d placements",
				ErrRun, len(levels), len(work.Placements))
		}
		if peak > opt.EmergencyC {
			for i := range levels {
				levels[i] = 0
			}
			res.DTMEvents++
		}
		fMax := setLevels(levels)

		for i := range power {
			power[i] = 0
		}
		var totalP, totalG float64
		for _, pl := range work.Placements {
			totalG += pl.GIPS()
			for _, c := range pl.Cores {
				cp, err := p.PlacementCorePowerAt(pl, temps[c], opt.Mode)
				if err != nil {
					return Result{}, err
				}
				power[c] = cp
				totalP += cp
			}
		}

		temps, err = tr.Step(power)
		if err != nil {
			return Result{}, err
		}
		peak = 0
		for _, t := range temps {
			if t > peak {
				peak = t
			}
		}

		if opt.Observer != nil {
			if err := opt.Observer(now, temps, power); err != nil {
				return Result{}, fmt.Errorf("sim: observer: %w", err)
			}
		}
		if err := energy.Add(opt.ControlPeriod, totalP); err != nil {
			return Result{}, err
		}
		if totalP > res.PeakPowerW {
			res.PeakPowerW = totalP
		}
		if peak > res.MaxTempC {
			res.MaxTempC = peak
		}
		res.AvgGIPS += totalG
		if step%recordEvery == 0 || step == steps-1 {
			res.Time.Append(now, now)
			res.GIPS.Append(now, totalG)
			res.PeakTemp.Append(now, peak)
			res.PowerW.Append(now, totalP)
			res.LevelGHz.Append(now, fMax)
		}
	}
	res.AvgGIPS /= float64(steps)
	res.EnergyJ = energy.TotalJ()
	return res, nil
}
