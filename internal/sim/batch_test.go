package sim

import (
	"context"
	"reflect"
	"testing"
)

// thermostat is a stateful test controller: it walks the level up every
// period and drops to the floor whenever the peak temperature crosses
// its threshold, so a run under it exercises level changes, controller
// state and (with a low EmergencyC) the DTM override.
type thermostat struct {
	level int
	max   int
	tripC float64
}

func (c *thermostat) Next(peakTempC float64) int {
	if peakTempC > c.tripC {
		c.level = 0
	} else if c.level < c.max {
		c.level++
	}
	return c.level
}

func (c *thermostat) Current() int { return c.level }

// TestRunBatchMatchesSoloRuns pins the lockstep batch engine to the
// solo engine: every lane of RunBatch must be bit-for-bit identical
// (reflect.DeepEqual, no tolerance) to Run of the same plan and an
// identically-configured controller under StepExact.
func TestRunBatchMatchesSoloRuns(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	top := len(p.Ladder.Points) - 1
	opt := Options{
		Duration:    0.05,
		StartSteady: true,
		// Low enough that the hot fixed-level lane trips the DTM
		// override, so the batch path's emergency accounting is covered.
		EmergencyC: p.TDTM,
	}

	mk := func() []BatchRun {
		return []BatchRun{
			{Plan: plan, Ctrl: fixedLevel(top)},
			{Plan: plan, Ctrl: &thermostat{max: top, tripC: p.TDTM - 2}},
			{Plan: plan, Ctrl: fixedLevel(0)},
		}
	}

	batched, err := RunBatch(context.Background(), p, mk(), p.Ladder, opt)
	if err != nil {
		t.Fatal(err)
	}
	solos := mk() // fresh controller state for the solo reference runs
	for i, r := range solos {
		solo, err := Run(p, r.Plan, r.Ctrl, p.Ladder, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i], solo) {
			t.Errorf("lane %d: batched result differs from solo StepExact run", i)
		}
	}
	if batched[0].DTMEvents == 0 {
		t.Errorf("hot lane saw no DTM events; the override path went uncovered")
	}
}

func TestRunBatchValidation(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	ctx := context.Background()
	if _, err := RunBatch(ctx, nil, []BatchRun{{Plan: plan, Ctrl: fixedLevel(0)}}, p.Ladder, Options{Duration: 1}); err == nil {
		t.Errorf("nil platform should error")
	}
	if _, err := RunBatch(ctx, p, []BatchRun{{Plan: nil, Ctrl: fixedLevel(0)}}, p.Ladder, Options{Duration: 1}); err == nil {
		t.Errorf("nil lane plan should error")
	}
	if _, err := RunBatch(ctx, p, []BatchRun{{Plan: plan, Ctrl: fixedLevel(0)}}, p.Ladder, Options{
		Duration: 1,
		Observer: func(float64, []float64, []float64) error { return nil },
	}); err == nil {
		t.Errorf("Observer should be rejected in batch runs")
	}
	if res, err := RunBatch(ctx, p, nil, p.Ladder, Options{Duration: 1}); err != nil || res != nil {
		t.Errorf("empty batch should be a no-op, got %v, %v", res, err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := RunBatch(cancelled, p, []BatchRun{{Plan: plan, Ctrl: fixedLevel(0)}}, p.Ladder, Options{Duration: 0.01}); err == nil {
		t.Errorf("cancelled context should abort the batch")
	}
}
