package sim

import (
	"math"
	"reflect"
	"testing"
)

// fixedQuiet is a FixedLevelController for fast-path tests.
type fixedQuiet int

func (f fixedQuiet) Next(float64) int { return int(f) }

func (f fixedQuiet) Current() int { return int(f) }

func (f fixedQuiet) FixedLevel() int { return int(f) }

// rampCtrl changes its answer every period — a stateful controller that
// must force StepAuto onto the exact path.
type rampCtrl struct{ level, max int }

func (r *rampCtrl) Next(float64) int {
	if r.level < r.max {
		r.level++
	}
	return r.level
}

func (r *rampCtrl) Current() int { return r.level }

// TestStepAutoDegradesBitIdentical pins the exactness contract: whenever
// a run cannot be proven quiet — stateful controller, dynamic plan
// provider, or a DTM threshold the frozen steady state would violate —
// StepAuto must produce the StepExact result bit for bit, fused power
// coefficients included.
func TestStepAutoDegradesBitIdentical(t *testing.T) {
	p := plat(t)
	planA := x264Plan(t, p)
	base := Options{Duration: 0.1, ControlPeriod: 1e-3}

	cases := []struct {
		name string
		run  func(opt Options) (Result, error)
	}{
		{"stateful controller", func(opt Options) (Result, error) {
			return Run(p, planA, &rampCtrl{max: 5}, p.Ladder, opt)
		}},
		{"dynamic provider", func(opt Options) (Result, error) {
			planB := x264Plan(t, p)
			return RunDynamic(p, planSwitcher{at: 0.05, a: planA, b: planB},
				fixedQuiet(3), p.Ladder, opt)
		}},
		{"frozen steady above DTM cap", func(opt Options) (Result, error) {
			opt.EmergencyC = p.Thermal.Ambient() + 1
			top := len(p.BoostLadder.Points) - 1
			return Run(p, planA, fixedQuiet(top), p.BoostLadder, opt)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exact := base
			exact.StepMode = StepExact
			auto := base
			auto.StepMode = StepAuto
			want, err := tc.run(exact)
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.run(auto)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("StepAuto degraded run differs from StepExact:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestStepAutoQuietMatchesExact is the macro-stepped property test: a
// constant-level run on a static plan must track the exact trajectory
// within a small fraction of a degree on every recorded sample, and keep
// the scalar aggregates within a relative whisker. This is the bound the
// golden experiment corpus (abs 1e-6 / rel 2e-3) leans on.
func TestStepAutoQuietMatchesExact(t *testing.T) {
	p := plat(t)
	plan := x264Plan(t, p)
	level := p.Ladder.Nearest(3.0)
	base := Options{Duration: 2, ControlPeriod: 1e-3, RecordPoints: 50}

	exact := base
	exact.StepMode = StepExact
	want, err := Run(p, plan, fixedQuiet(level), p.Ladder, exact)
	if err != nil {
		t.Fatal(err)
	}
	auto := base
	auto.StepMode = StepAuto
	got, err := Run(p, plan, fixedQuiet(level), p.Ladder, auto)
	if err != nil {
		t.Fatal(err)
	}

	if got.Time.Len() != want.Time.Len() {
		t.Fatalf("recording grids differ: %d vs %d samples", got.Time.Len(), want.Time.Len())
	}
	for i := range want.PeakTemp.Y {
		if got.Time.X[i] != want.Time.X[i] {
			t.Fatalf("sample %d at t=%v, want t=%v", i, got.Time.X[i], want.Time.X[i])
		}
		if d := math.Abs(got.PeakTemp.Y[i] - want.PeakTemp.Y[i]); d > 0.05 {
			t.Fatalf("sample %d (t=%v s): peak %v vs exact %v (|Δ|=%g)",
				i, want.Time.X[i], got.PeakTemp.Y[i], want.PeakTemp.Y[i], d)
		}
	}
	rel := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1e-300) }
	if rel(got.AvgGIPS, want.AvgGIPS) > 1e-9 {
		t.Errorf("AvgGIPS %v vs %v", got.AvgGIPS, want.AvgGIPS)
	}
	if rel(got.EnergyJ, want.EnergyJ) > 1e-3 {
		t.Errorf("EnergyJ %v vs %v", got.EnergyJ, want.EnergyJ)
	}
	if math.Abs(got.MaxTempC-want.MaxTempC) > 0.05 {
		t.Errorf("MaxTempC %v vs %v", got.MaxTempC, want.MaxTempC)
	}
	if got.DTMEvents != 0 || want.DTMEvents != 0 {
		t.Errorf("quiet run hit DTM: auto=%d exact=%d", got.DTMEvents, want.DTMEvents)
	}

	// And from a steady start the trajectory is (nearly) flat either way.
	steadyAuto := auto
	steadyAuto.StartSteady = true
	res, err := Run(p, plan, fixedQuiet(level), p.Ladder, steadyAuto)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakTemp.Max()-res.PeakTemp.Min() > 0.5 {
		t.Errorf("steady-start StepAuto drifted: range %.3f–%.3f",
			res.PeakTemp.Min(), res.PeakTemp.Max())
	}
}
