package policy

import (
	"context"
	"math"
	"reflect"
	"testing"

	"darksim/internal/scenario"
)

// TestTuneDeterministic reruns the same seeded search on two
// independently compiled environments: the full search records —
// parameter trajectories and scores — must be identical, so a cold
// service cache and a warm one serve the same frontier.
func TestTuneDeterministic(t *testing.T) {
	opt := TuneOptions{Seed: 42, Budget: 8, Sandbox: Options{Duration: 0.02}}
	var results []*TuneResult
	for i := 0; i < 2; i++ {
		env := testEnv(t, scenario.PackSymmetric)
		res, err := env.Tune(context.Background(), NewBoost(), opt)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", results[0], results[1])
	}
}

// TestTuneImproves locks in the acceptance behavior: on the symmetric
// pack the hill climb finds a boost hold band that beats the default.
func TestTuneImproves(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	res, err := env.Tune(context.Background(), NewBoost(), TuneOptions{Sandbox: Options{Duration: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved() {
		t.Fatalf("tuner found nothing better than defaults: %+v", res)
	}
	if res.Evals < 2 || len(res.Trace) != res.Evals {
		t.Fatalf("search record inconsistent: evals=%d trace=%d", res.Evals, len(res.Trace))
	}
	accepted := 0
	for _, s := range res.Trace {
		if s.Accepted {
			accepted++
			if s.Score != res.BestScore {
				t.Fatalf("accepted point scores %.4f, best is %.4f", s.Score, res.BestScore)
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no trace point marked accepted")
	}
}

// TestTuneRespectsBudget: evaluations never exceed the budget, and a
// budget of one still returns the default point.
func TestTuneRespectsBudget(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	res, err := env.Tune(context.Background(), NewDarkGates(), TuneOptions{Budget: 1, Sandbox: Options{Duration: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evals != 1 {
		t.Fatalf("budget 1, evals %d", res.Evals)
	}
	if res.BestScore != res.DefaultScore {
		t.Fatalf("budget 1 must keep defaults: %+v", res)
	}
}

// TestTuneScoresViolationsMinusInf: a parameterization whose run fails
// an assertion can never win. An impossible assertion makes every run
// fail, so the search must end where it started with a -Inf incumbent.
func TestTuneRejectsViolatingRuns(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	impossible := []Assertion{{Name: "impossible", Kind: KindMax, Signal: SignalGIPS, Limit: -1}}
	res, err := env.Tune(context.Background(), NewBoost(), TuneOptions{
		Budget:  6,
		Sandbox: Options{Duration: 0.01, Assertions: impossible},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.BestScore, -1) {
		t.Fatalf("violating runs scored %v, want -Inf", res.BestScore)
	}
	if res.Improved() {
		t.Fatal("a violating run improved on a violating default")
	}
}

func TestTuneErrors(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	if _, err := env.Tune(context.Background(), NewBoost(), TuneOptions{Budget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.Tune(ctx, NewBoost(), TuneOptions{Sandbox: Options{Duration: 0.01}}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
