package policy

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"darksim/internal/progress"
	"darksim/internal/report"
	"darksim/internal/scenario"
)

// Spec is the declarative form of a sandbox run: a workload (an inline
// scenario spec or a named pack scenario), the policies to race, and an
// optional tuning target. Like scenario specs, identity is content: the
// normalized form hashes canonically so the service cache, singleflight
// and the job store all dedupe on meaning.

// PolicyConfig selects one registered policy, optionally reparameterized.
type PolicyConfig struct {
	Name   string             `json:"name"`
	Params map[string]float64 `json:"params,omitempty"`
}

// Spec declares one head-to-head sandbox evaluation.
type Spec struct {
	// Name labels output; it does not affect the content hash.
	Name string `json:"name,omitempty"`
	// Exactly one of Pack (a scenario-pack scenario name) and Scenario
	// (an inline scenario spec) selects the workload. Normalize resolves
	// Pack into Scenario.
	Pack     string         `json:"pack,omitempty"`
	Scenario *scenario.Spec `json:"scenario,omitempty"`
	// Policies are raced head-to-head (default constant, boost, dsrem).
	Policies []PolicyConfig `json:"policies,omitempty"`
	// DurationS is the simulated run length in seconds (default 0.5).
	DurationS float64 `json:"duration_s,omitempty"`
	// Tune names one of Policies to hill-climb after the head-to-head;
	// the tuned variant is raced as an extra entry.
	Tune string `json:"tune,omitempty"`
	// Seed and Budget configure the tuner (defaults 1 and 12).
	Seed   int64 `json:"seed,omitempty"`
	Budget int   `json:"budget,omitempty"`
}

// Parse decodes a JSON policy spec strictly: unknown fields and trailing
// data are validation errors.
func Parse(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("%w: %v", ErrPolicy, err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("%w: trailing data after spec object", ErrPolicy)
	}
	return s, nil
}

// Normalize validates a spec and returns its canonical form: the pack
// reference resolved to an inline normalized scenario, defaults made
// explicit, and every policy reference checked against the registry.
func Normalize(s Spec) (Spec, error) {
	switch {
	case s.Pack != "" && s.Scenario != nil:
		return Spec{}, fmt.Errorf("%w: spec sets both pack and scenario", ErrPolicy)
	case s.Pack == "" && s.Scenario == nil:
		return Spec{}, fmt.Errorf("%w: spec needs a pack name or an inline scenario", ErrPolicy)
	}
	if s.Pack != "" {
		ss, err := scenario.PackByName(s.Pack)
		if err != nil {
			return Spec{}, fmt.Errorf("%w: %v", ErrPolicy, err)
		}
		s.Scenario = &ss
		s.Pack = ""
	}
	ns, err := scenario.Normalize(*s.Scenario)
	if err != nil {
		return Spec{}, err
	}
	s.Scenario = &ns

	if len(s.Policies) == 0 {
		s.Policies = []PolicyConfig{{Name: "constant"}, {Name: "boost"}, {Name: "dsrem"}}
	}
	seen := make(map[string]bool, len(s.Policies))
	for _, pc := range s.Policies {
		if _, err := ByName(pc.Name, pc.Params); err != nil {
			return Spec{}, err
		}
		if seen[pc.Name] {
			return Spec{}, fmt.Errorf("%w: policy %q listed twice", ErrPolicy, pc.Name)
		}
		seen[pc.Name] = true
	}

	if s.DurationS == 0 {
		s.DurationS = 0.5
	}
	if !(s.DurationS > 0) || s.DurationS > 60 {
		return Spec{}, fmt.Errorf("%w: duration %g s outside (0, 60]", ErrPolicy, s.DurationS)
	}
	if s.Tune != "" {
		if !seen[s.Tune] {
			return Spec{}, fmt.Errorf("%w: tune target %q is not among the spec's policies", ErrPolicy, s.Tune)
		}
		pol, err := ByName(s.Tune, nil)
		if err != nil {
			return Spec{}, err
		}
		if _, ok := pol.(Tunable); !ok {
			return Spec{}, fmt.Errorf("%w: policy %q is not tunable", ErrPolicy, s.Tune)
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
		if s.Budget == 0 {
			s.Budget = 12
		}
		if s.Budget < 1 || s.Budget > 200 {
			return Spec{}, fmt.Errorf("%w: tune budget %d outside [1, 200]", ErrPolicy, s.Budget)
		}
	} else {
		// Tuner knobs are meaningless without a target; zero them so
		// they cannot split the content hash.
		s.Seed = 0
		s.Budget = 0
	}
	return s, nil
}

// Hash returns the content hash of a spec: SHA-256 over the canonical
// JSON encoding of its normalized form, display name excluded.
func Hash(s Spec) (string, error) {
	ns, err := Normalize(s)
	if err != nil {
		return "", err
	}
	return hashNormalized(ns), nil
}

// hashNormalized hashes an already-normalized spec. Display names — the
// spec's own and the embedded scenario's — are excluded: identity is
// content.
func hashNormalized(ns Spec) string {
	ns.Name = ""
	if ns.Scenario != nil {
		sc := *ns.Scenario
		sc.Name = ""
		ns.Scenario = &sc
	}
	data, err := json.Marshal(ns)
	if err != nil {
		// Spec contains only plain data types; Marshal cannot fail.
		panic(fmt.Sprintf("policy: marshal normalized spec: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(data))
}

// RunResult is a spec execution: the normalized spec, its hash, the
// head-to-head outcomes (tuned variant last when tuning ran), and the
// tuning record.
type RunResult struct {
	Spec     Spec        `json:"spec"`
	Hash     string      `json:"hash"`
	Outcomes []*Outcome  `json:"outcomes"`
	Tuning   *TuneResult `json:"tuning,omitempty"`
}

// Execute runs a policy spec end to end: normalize, compile the
// scenario, race the policies on the runner pool, then tune the
// requested target and race its winner. Each finished policy emits a
// one-row frontier fragment through the context's progress sink.
func Execute(ctx context.Context, spec Spec) (*RunResult, error) {
	ns, err := Normalize(spec)
	if err != nil {
		return nil, err
	}
	sc, err := scenario.Compile(*ns.Scenario)
	if err != nil {
		return nil, err
	}
	env, err := NewEnv(sc)
	if err != nil {
		return nil, err
	}

	pols := make([]Policy, len(ns.Policies))
	for i, pc := range ns.Policies {
		if pols[i], err = ByName(pc.Name, pc.Params); err != nil {
			return nil, err
		}
	}

	opt := Options{Duration: ns.DurationS}
	total := len(pols)
	if ns.Tune != "" {
		total += ns.Budget + 1
	}
	done := 0
	emitting := progress.Enabled(ctx)
	emit := func(o *Outcome) {
		done++
		if !emitting {
			return
		}
		frag := Frontier(fmt.Sprintf("policy %s", o.Policy), []*Outcome{o})
		progress.Emit(ctx, progress.Point{Table: frag, Done: done, Total: total})
	}
	outs, err := env.RunAll(ctx, pols, opt, emit)
	if err != nil {
		return nil, err
	}
	res := &RunResult{Spec: ns, Hash: hashNormalized(ns), Outcomes: outs}

	if ns.Tune != "" {
		target, err := ByName(ns.Tune, paramsFor(ns, ns.Tune))
		if err != nil {
			return nil, err
		}
		tr, err := env.Tune(ctx, target.(Tunable), TuneOptions{
			Seed: ns.Seed, Budget: ns.Budget, Sandbox: opt,
		})
		if err != nil {
			return nil, err
		}
		done += tr.Evals
		res.Tuning = tr
		tuned, err := tr.best(target.(Tunable))
		if err != nil {
			return nil, err
		}
		out, err := env.Run(ctx, tuned, opt)
		if err != nil {
			return nil, err
		}
		out.Policy += " (tuned)"
		out.Info = "tuned: " + sortedParams(paramMap(tr.BestParams))
		emit(out)
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// paramsFor returns the configured params of the named policy in the
// spec.
func paramsFor(ns Spec, name string) map[string]float64 {
	for _, pc := range ns.Policies {
		if pc.Name == name {
			return pc.Params
		}
	}
	return nil
}

// Tables renders the run: the frontier, the tuning record, and any
// assertion violations.
func (r *RunResult) Tables() []*report.Table {
	title := "Policy frontier"
	if r.Spec.Scenario != nil && r.Spec.Scenario.Name != "" {
		title += ": " + r.Spec.Scenario.Name
	}
	front := Frontier(title, r.Outcomes)
	front.AddNote("spec %s, %g s simulated per policy", r.Hash[:12], r.Spec.DurationS)
	tables := []*report.Table{front}

	if r.Tuning != nil {
		t := &report.Table{
			Title:   fmt.Sprintf("Tuning %s (hill climb, seed %d)", r.Tuning.Policy, r.Spec.Seed),
			Columns: []string{"variant", "params", "score [GIPS]"},
		}
		t.AddRow("default", sortedParams(paramMap(r.Tuning.DefaultParams)),
			fmt.Sprintf("%.2f", r.Tuning.DefaultScore))
		t.AddRow("best", sortedParams(paramMap(r.Tuning.BestParams)),
			fmt.Sprintf("%.2f", r.Tuning.BestScore))
		if r.Tuning.Improved() {
			t.AddNote("tuning improved %s by %.2f GIPS (%.1f%%) over defaults in %d evaluations",
				r.Tuning.Policy, r.Tuning.BestScore-r.Tuning.DefaultScore,
				100*(r.Tuning.BestScore-r.Tuning.DefaultScore)/r.Tuning.DefaultScore,
				r.Tuning.Evals)
		} else {
			t.AddNote("defaults already optimal on this grid (%d evaluations)", r.Tuning.Evals)
		}
		tables = append(tables, t)
	}

	violations := 0
	for _, o := range r.Outcomes {
		violations += len(o.Violations)
	}
	if violations > 0 {
		tables = append(tables, ViolationTable(r.Outcomes))
	}
	return tables
}

// Violated reports whether any outcome failed an assertion or errored.
func (r *RunResult) Violated() bool {
	for _, o := range r.Outcomes {
		if !o.Passed() {
			return true
		}
	}
	return false
}
