package policy

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/report"
	"darksim/internal/runner"
	"darksim/internal/trace"
)

// Options configures a sandbox run. The stepping engine mirrors
// internal/sim (implicit-Euler thermal stepping, 1 ms control period,
// temperature-coupled leakage, DTM emergency clamp at TDTM+5) so a
// chip-wide policy adapter reproduces the §6 figure machinery bit for
// bit — with power gating and per-step trace capture added on top.
type Options struct {
	// Duration of the simulated run in seconds (default 0.5).
	Duration float64
	// ControlPeriod in seconds (default 1 ms, the paper's §6 setting).
	ControlPeriod float64
	// Mode is the power-evaluation mode (default core.BusyWait).
	Mode core.PowerMode
	// EmergencyC is the DTM hard-throttle threshold (default TDTM+5).
	EmergencyC float64
	// Assertions overrides the standard invariant set (nil = standard
	// for the platform's TDTM and the policy's ladder).
	Assertions []Assertion
	// Workers bounds RunAll's parallelism (0 = runner default).
	Workers int
}

func (o *Options) fillDefaults(p *core.Platform) {
	if o.Duration == 0 {
		o.Duration = 0.5
	}
	if o.ControlPeriod == 0 {
		o.ControlPeriod = 1e-3
	}
	if o.EmergencyC == 0 {
		o.EmergencyC = p.TDTM + 5
	}
}

// Outcome is one policy's sandbox run: the frontier metrics, the full
// per-step trace, and the assertion verdict. A policy that failed to
// prepare or run records the error instead of metrics, so a head-to-head
// comparison survives one infeasible policy.
type Outcome struct {
	Policy string `json:"policy"`
	Info   string `json:"info,omitempty"`
	Err    string `json:"error,omitempty"`

	AvgGIPS float64 `json:"avg_gips"`
	// EnergyPerGinstr is energy per unit work in J/Ginstr
	// (EnergyJ / (AvgGIPS · Duration)).
	EnergyPerGinstr float64 `json:"energy_per_ginstr"`
	EnergyJ         float64 `json:"energy_j"`
	PeakPowerW      float64 `json:"peak_power_w"`
	MaxTempC        float64 `json:"max_temp_c"`
	// DarkPercent is the time-averaged dark fraction (gated placements
	// count as dark while gated).
	DarkPercent float64 `json:"dark_percent"`
	DTMEvents   int     `json:"dtm_events"`

	Violations []Violation  `json:"violations,omitempty"`
	Steps      []trace.Step `json:"-"`
}

// Passed reports whether the run completed and its trace satisfied every
// assertion.
func (o *Outcome) Passed() bool { return o.Err == "" && len(o.Violations) == 0 }

// Run executes one policy against the environment and checks its trace.
// Errors reaching the caller are infrastructure failures (bad options,
// context cancellation); policy-level failures (infeasible preparation,
// assertion violations) are recorded in the Outcome.
func (e *Env) Run(ctx context.Context, pol Policy, opt Options) (*Outcome, error) {
	p := e.Platform
	opt.fillDefaults(p)
	if opt.Duration <= 0 || opt.ControlPeriod <= 0 || opt.ControlPeriod > opt.Duration {
		return nil, fmt.Errorf("%w: duration %g s, control period %g s", ErrPolicy, opt.Duration, opt.ControlPeriod)
	}
	out := &Outcome{Policy: pol.Name(), Info: pol.Info()}
	prep, err := pol.Prepare(ctx, e)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out.Err = err.Error()
		return out, nil
	}
	if err := e.step(ctx, prep, opt, out); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out.Err = err.Error()
		return out, nil
	}
	asserts := opt.Assertions
	if asserts == nil {
		asserts = StandardAssertions(p.TDTM, len(prep.Ladder.Points)-1)
	}
	viols, err := Check(out.Steps, asserts)
	if err != nil {
		return nil, err
	}
	for i := range viols {
		viols[i].Policy = out.Policy
	}
	out.Violations = viols
	return out, nil
}

// step advances the transient co-simulation under the prepared policy,
// appending one trace.Step per control period.
func (e *Env) step(ctx context.Context, prep *Prepared, opt Options, out *Outcome) error {
	p := e.Platform
	plan, ladder, ctrl := prep.Plan, prep.Ladder, prep.Ctrl
	if err := plan.Validate(); err != nil {
		return err
	}
	if plan.NumCores != p.NumCores() {
		return fmt.Errorf("%w: plan has %d cores, platform %d", ErrPolicy, plan.NumCores, p.NumCores())
	}
	steps := int(opt.Duration/opt.ControlPeriod + 0.5)
	tr, err := p.Thermal.NewTransient(opt.ControlPeriod)
	if err != nil {
		return err
	}

	work := &mapping.Plan{NumCores: plan.NumCores}
	work.Placements = append([]mapping.Placement(nil), plan.Placements...)
	nPl := len(work.Placements)

	dec := ctrl.Start()
	if len(dec.Levels) != nPl {
		return fmt.Errorf("%w: controller starts %d placements, plan has %d", ErrPolicy, len(dec.Levels), nPl)
	}
	levels := make([]int, nPl)
	gated := make([]bool, nPl)
	adoptDecision := func(d Decision) error {
		if len(d.Levels) != nPl || (d.Gated != nil && len(d.Gated) != nPl) {
			return fmt.Errorf("%w: controller returned %d levels / %d gates for %d placements",
				ErrPolicy, len(d.Levels), len(d.Gated), nPl)
		}
		copy(levels, d.Levels)
		if d.Gated == nil {
			for i := range gated {
				gated[i] = false
			}
		} else {
			copy(gated, d.Gated)
		}
		return nil
	}
	setFreqs := func() {
		for i := range work.Placements {
			work.Placements[i].FGHz = ladder.Points[ladder.Clamp(levels[i])].FGHz
		}
	}
	if err := adoptDecision(dec); err != nil {
		return err
	}
	setFreqs()

	peak, _ := tr.PeakBlockTemp()
	if prep.StartSteady {
		// Steady state of the initial decision's ungated placements.
		steady := &mapping.Plan{NumCores: plan.NumCores}
		for i, pl := range work.Placements {
			if !gated[i] {
				steady.Placements = append(steady.Placements, pl)
			}
		}
		_, power, err := p.SteadyTemps(steady, opt.Mode)
		if err != nil {
			return err
		}
		if err := tr.SetSteadyState(power); err != nil {
			return err
		}
		peak, _ = tr.PeakBlockTemp()
	}

	var energy metrics.EnergyMeter
	out.MaxTempC = peak
	out.Steps = make([]trace.Step, 0, steps)
	// tspByMask memoizes the worst-case per-core TSP of each distinct
	// gating mask — open-loop policies evaluate it exactly once.
	tspByMask := make(map[string]float64, 2)
	var activeSum int

	temps := tr.BlockTemps()
	power := make([]float64, plan.NumCores)
	placementPeaks := make([]float64, nPl)
	placementW := make([]float64, nPl)
	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		now := float64(step) * opt.ControlPeriod

		for i, pl := range work.Placements {
			pp := 0.0
			for _, c := range pl.Cores {
				if temps[c] > pp {
					pp = temps[c]
				}
			}
			placementPeaks[i] = pp
		}
		if err := adoptDecision(ctrl.Next(Observation{
			Step: step, TimeS: now, PeakC: peak, PlacementPeakC: placementPeaks,
		})); err != nil {
			return err
		}
		dtm := false
		if peak > opt.EmergencyC {
			for i := range levels {
				levels[i] = 0
			}
			dtm = true
			out.DTMEvents++
		}
		setFreqs()

		for i := range power {
			power[i] = 0
		}
		var totalP, totalG, maxCoreW float64
		active := 0
		for i, pl := range work.Placements {
			placementW[i] = 0
			if gated[i] {
				continue
			}
			totalG += pl.GIPS()
			active += len(pl.Cores)
			for _, c := range pl.Cores {
				cp, err := p.PlacementCorePowerAt(pl, temps[c], opt.Mode)
				if err != nil {
					return err
				}
				power[c] = cp
				placementW[i] += cp
				totalP += cp
				if cp > maxCoreW {
					maxCoreW = cp
				}
			}
		}

		tspW, err := e.tspFor(ctx, work, gated, active, tspByMask)
		if err != nil {
			return err
		}

		temps, err = tr.Step(power)
		if err != nil {
			return err
		}
		peak = 0
		for _, t := range temps {
			if t > peak {
				peak = t
			}
		}

		if err := energy.Add(opt.ControlPeriod, totalP); err != nil {
			return err
		}
		if totalP > out.PeakPowerW {
			out.PeakPowerW = totalP
		}
		if peak > out.MaxTempC {
			out.MaxTempC = peak
		}
		out.AvgGIPS += totalG
		activeSum += active
		rec := trace.Step{
			Index:       step,
			TimeS:       now,
			Levels:      append([]int(nil), levels...),
			Gated:       append([]bool(nil), gated...),
			PlacementW:  append([]float64(nil), placementW...),
			TotalW:      totalP,
			MaxCoreW:    maxCoreW,
			PeakC:       peak,
			GIPS:        totalG,
			ActiveCores: active,
			TSPPerCoreW: tspW,
			DTM:         dtm,
		}
		out.Steps = append(out.Steps, rec)
	}
	out.AvgGIPS /= float64(steps)
	out.EnergyJ = energy.TotalJ()
	if work := out.AvgGIPS * opt.Duration; work > 0 {
		out.EnergyPerGinstr = out.EnergyJ / work
	}
	if plan.NumCores > 0 {
		avgActive := float64(activeSum) / float64(steps)
		out.DarkPercent = 100 * (1 - avgActive/float64(plan.NumCores))
	}
	return nil
}

// tspFor returns the worst-case per-core TSP of the current active set,
// memoized by gating mask (the active set only changes when gates move).
func (e *Env) tspFor(ctx context.Context, work *mapping.Plan, gated []bool, active int, memo map[string]float64) (float64, error) {
	if active == 0 {
		return 0, nil
	}
	mask := make([]byte, len(gated))
	for i, g := range gated {
		if g {
			mask[i] = '1'
		} else {
			mask[i] = '0'
		}
	}
	key := string(mask)
	if v, ok := memo[key]; ok {
		return v, nil
	}
	budget, _, err := e.TSP.WorstCase(ctx, active)
	if err != nil {
		return 0, err
	}
	memo[key] = budget
	return budget, nil
}

// RunAll executes the policies head-to-head on the shared runner pool
// and returns their outcomes in input order. Policy-level failures stay
// inside their Outcome; only infrastructure errors (context
// cancellation) abort the set. onDone, when non-nil, observes each
// outcome as it completes (the service layer streams frontier rows from
// here); calls are serialized by the runner's progress lock.
func (e *Env) RunAll(ctx context.Context, pols []Policy, opt Options, onDone func(*Outcome)) ([]*Outcome, error) {
	var mu chan struct{}
	if onDone != nil {
		mu = make(chan struct{}, 1)
	}
	return runner.Map(ctx, pols, runner.Options{Workers: opt.Workers},
		func(ctx context.Context, _ int, pol Policy) (*Outcome, error) {
			out, err := e.Run(ctx, pol, opt)
			if err != nil {
				return nil, fmt.Errorf("policy %s: %w", pol.Name(), err)
			}
			if onDone != nil {
				mu <- struct{}{}
				onDone(out)
				<-mu
			}
			return out, nil
		})
}

// Frontier renders the head-to-head comparison: one row per policy with
// the axes the paper trades off — throughput, energy per work, peak
// temperature, dark fraction — plus the assertion verdict.
func Frontier(title string, outs []*Outcome) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{"policy", "GIPS", "J/Ginstr", "peak [°C]",
			"peak [W]", "dark [%]", "DTM", "assertions"},
	}
	for _, o := range outs {
		if o == nil {
			continue
		}
		if o.Err != "" {
			t.AddRow(o.Policy, "-", "-", "-", "-", "-", "-", "error: "+o.Err)
			continue
		}
		verdict := "pass"
		if n := len(o.Violations); n > 0 {
			verdict = fmt.Sprintf("FAIL (%d)", n)
		}
		t.AddRow(o.Policy,
			fmt.Sprintf("%.1f", o.AvgGIPS),
			fmt.Sprintf("%.4f", o.EnergyPerGinstr),
			fmt.Sprintf("%.2f", o.MaxTempC),
			fmt.Sprintf("%.1f", o.PeakPowerW),
			fmt.Sprintf("%.1f", o.DarkPercent),
			strconv.Itoa(o.DTMEvents),
			verdict)
	}
	return t
}

// ViolationTable renders every assertion violation across the outcomes,
// naming the first violating step of each failed assertion with its full
// trace context.
func ViolationTable(outs []*Outcome) *report.Table {
	t := &report.Table{
		Title:   "Assertion violations (first violating step per assertion)",
		Columns: []string{"policy", "assertion", "step", "t [s]", "detail"},
	}
	for _, o := range outs {
		if o == nil {
			continue
		}
		for _, v := range o.Violations {
			t.AddRow(v.Policy, v.Assertion, strconv.Itoa(v.Step),
				fmt.Sprintf("%.3f", v.TimeS), v.Detail)
		}
	}
	return t
}

// sortedParams renders a parameter map deterministically.
func sortedParams(vals map[string]float64) string {
	if len(vals) == 0 {
		return "defaults"
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.3g", k, vals[k])
	}
	return s
}
