package policy

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"darksim/internal/core"
	"darksim/internal/report"
	"darksim/internal/trace"
)

// Options configures a sandbox run. The stepping engine mirrors
// internal/sim (implicit-Euler thermal stepping, 1 ms control period,
// temperature-coupled leakage, DTM emergency clamp at TDTM+5) so a
// chip-wide policy adapter reproduces the §6 figure machinery bit for
// bit — with power gating and per-step trace capture added on top.
type Options struct {
	// Duration of the simulated run in seconds (default 0.5).
	Duration float64
	// ControlPeriod in seconds (default 1 ms, the paper's §6 setting).
	ControlPeriod float64
	// Mode is the power-evaluation mode (default core.BusyWait).
	Mode core.PowerMode
	// EmergencyC is the DTM hard-throttle threshold (default TDTM+5).
	EmergencyC float64
	// Assertions overrides the standard invariant set (nil = standard
	// for the platform's TDTM and the policy's ladder).
	Assertions []Assertion
	// Workers is retained for configuration compatibility: RunAll now
	// races policies as one lockstep pack on a shared batched solver
	// rather than fanning out over the runner pool, so the field has no
	// effect on execution.
	Workers int
}

func (o *Options) fillDefaults(p *core.Platform) {
	if o.Duration == 0 {
		o.Duration = 0.5
	}
	if o.ControlPeriod == 0 {
		o.ControlPeriod = 1e-3
	}
	if o.EmergencyC == 0 {
		o.EmergencyC = p.TDTM + 5
	}
}

// Outcome is one policy's sandbox run: the frontier metrics, the full
// per-step trace, and the assertion verdict. A policy that failed to
// prepare or run records the error instead of metrics, so a head-to-head
// comparison survives one infeasible policy.
type Outcome struct {
	Policy string `json:"policy"`
	Info   string `json:"info,omitempty"`
	Err    string `json:"error,omitempty"`

	AvgGIPS float64 `json:"avg_gips"`
	// EnergyPerGinstr is energy per unit work in J/Ginstr
	// (EnergyJ / (AvgGIPS · Duration)).
	EnergyPerGinstr float64 `json:"energy_per_ginstr"`
	EnergyJ         float64 `json:"energy_j"`
	PeakPowerW      float64 `json:"peak_power_w"`
	MaxTempC        float64 `json:"max_temp_c"`
	// DarkPercent is the time-averaged dark fraction (gated placements
	// count as dark while gated).
	DarkPercent float64 `json:"dark_percent"`
	DTMEvents   int     `json:"dtm_events"`

	Violations []Violation  `json:"violations,omitempty"`
	Steps      []trace.Step `json:"-"`
}

// Passed reports whether the run completed and its trace satisfied every
// assertion.
func (o *Outcome) Passed() bool { return o.Err == "" && len(o.Violations) == 0 }

// Run executes one policy against the environment and checks its trace.
// Errors reaching the caller are infrastructure failures (bad options,
// context cancellation); policy-level failures (infeasible preparation,
// assertion violations) are recorded in the Outcome. A solo run is a
// one-lane pack: the stepping engine is the same code head-to-head races
// use, and per lane the two are bit-for-bit identical.
func (e *Env) Run(ctx context.Context, pol Policy, opt Options) (*Outcome, error) {
	outs, err := e.RunAll(ctx, []Policy{pol}, opt, nil)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// tspFor returns the worst-case per-core TSP of the current active set,
// memoized by gating mask (the active set only changes when gates move).
func (e *Env) tspFor(ctx context.Context, gated []bool, active int, memo map[string]float64) (float64, error) {
	if active == 0 {
		return 0, nil
	}
	mask := make([]byte, len(gated))
	for i, g := range gated {
		if g {
			mask[i] = '1'
		} else {
			mask[i] = '0'
		}
	}
	key := string(mask)
	if v, ok := memo[key]; ok {
		return v, nil
	}
	budget, _, err := e.TSP.WorstCase(ctx, active)
	if err != nil {
		return 0, err
	}
	memo[key] = budget
	return budget, nil
}

// RunAll executes the policies head-to-head as one lockstep pack and
// returns their outcomes in input order. All lanes advance through the
// same control periods together, sharing one batched solve against the
// cached thermal factorization per period (see runPack); per lane the
// result is bit-for-bit what a solo Run produces. Policy-level failures
// stay inside their Outcome; only infrastructure errors (bad options,
// context cancellation) abort the set. onDone, when non-nil, observes
// each outcome after the pack completes, in input order (the service
// layer streams frontier rows from here).
func (e *Env) RunAll(ctx context.Context, pols []Policy, opt Options, onDone func(*Outcome)) ([]*Outcome, error) {
	lanes, err := e.runPack(ctx, pols, opt)
	if err != nil {
		return nil, err
	}
	outs := make([]*Outcome, len(lanes))
	for i, ln := range lanes {
		out := ln.out
		if out.Err == "" {
			asserts := opt.Assertions
			if asserts == nil {
				asserts = StandardAssertions(e.Platform.TDTM, len(ln.prep.Ladder.Points)-1)
			}
			viols, err := Check(out.Steps, asserts)
			if err != nil {
				return nil, err
			}
			for j := range viols {
				viols[j].Policy = out.Policy
			}
			out.Violations = viols
		}
		outs[i] = out
		if onDone != nil {
			onDone(out)
		}
	}
	return outs, nil
}

// Frontier renders the head-to-head comparison: one row per policy with
// the axes the paper trades off — throughput, energy per work, peak
// temperature, dark fraction — plus the assertion verdict.
func Frontier(title string, outs []*Outcome) *report.Table {
	t := &report.Table{
		Title: title,
		Columns: []string{"policy", "GIPS", "J/Ginstr", "peak [°C]",
			"peak [W]", "dark [%]", "DTM", "assertions"},
	}
	for _, o := range outs {
		if o == nil {
			continue
		}
		if o.Err != "" {
			t.AddRow(o.Policy, "-", "-", "-", "-", "-", "-", "error: "+o.Err)
			continue
		}
		verdict := "pass"
		if n := len(o.Violations); n > 0 {
			verdict = fmt.Sprintf("FAIL (%d)", n)
		}
		t.AddRow(o.Policy,
			fmt.Sprintf("%.1f", o.AvgGIPS),
			fmt.Sprintf("%.4f", o.EnergyPerGinstr),
			fmt.Sprintf("%.2f", o.MaxTempC),
			fmt.Sprintf("%.1f", o.PeakPowerW),
			fmt.Sprintf("%.1f", o.DarkPercent),
			strconv.Itoa(o.DTMEvents),
			verdict)
	}
	return t
}

// ViolationTable renders every assertion violation across the outcomes,
// naming the first violating step of each failed assertion with its full
// trace context.
func ViolationTable(outs []*Outcome) *report.Table {
	t := &report.Table{
		Title:   "Assertion violations (first violating step per assertion)",
		Columns: []string{"policy", "assertion", "step", "t [s]", "detail"},
	}
	for _, o := range outs {
		if o == nil {
			continue
		}
		for _, v := range o.Violations {
			t.AddRow(v.Policy, v.Assertion, strconv.Itoa(v.Step),
				fmt.Sprintf("%.3f", v.TimeS), v.Detail)
		}
	}
	return t
}

// sortedParams renders a parameter map deterministically.
func sortedParams(vals map[string]float64) string {
	if len(vals) == 0 {
		return "defaults"
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.3g", k, vals[k])
	}
	return s
}
