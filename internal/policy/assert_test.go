package policy

import (
	"math/rand"
	"strings"
	"testing"

	"darksim/internal/trace"
)

const (
	testTDTM     = 80.0
	testMaxLevel = 19
)

// genLegalTrace builds a random trace that satisfies every standard
// assertion: time monotone, levels walking the ladder one step at a
// time inside [0, maxLevel], peak temperatures inside the TDTM band,
// per-core power inside the TSP sprint budget, and placement powers
// summing exactly to the recorded total.
func genLegalTrace(rng *rand.Rand, steps, placements int) []trace.Step {
	out := make([]trace.Step, steps)
	levels := make([]int, placements)
	for i := range levels {
		levels[i] = rng.Intn(testMaxLevel + 1)
	}
	for s := 0; s < steps; s++ {
		if s > 0 {
			for i := range levels {
				switch rng.Intn(3) {
				case 0:
					if levels[i] > 0 {
						levels[i]--
					}
				case 1:
					if levels[i] < testMaxLevel {
						levels[i]++
					}
				}
			}
		}
		gated := make([]bool, placements)
		plW := make([]float64, placements)
		total := 0.0
		for i := range plW {
			gated[i] = rng.Intn(8) == 0
			if !gated[i] {
				plW[i] = 1 + 10*rng.Float64()
				total += plW[i]
			}
		}
		tsp := 2 + 3*rng.Float64()
		out[s] = trace.Step{
			Index:       s,
			TimeS:       float64(s) * 1e-3,
			Levels:      append([]int(nil), levels...),
			Gated:       gated,
			PlacementW:  plW,
			TotalW:      total,
			MaxCoreW:    (1 + DefaultTSPSlack) * tsp * rng.Float64(),
			PeakC:       40 + (testTDTM+TDTMSlackC-40)*rng.Float64(),
			GIPS:        total * 0.8,
			ActiveCores: placements * 4,
			TSPPerCoreW: tsp,
		}
	}
	return out
}

func TestLegalTracesPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	asserts := StandardAssertions(testTDTM, testMaxLevel)
	for i := 0; i < 200; i++ {
		steps := genLegalTrace(rng, 1+rng.Intn(40), 1+rng.Intn(6))
		viols, err := Check(steps, asserts)
		if err != nil {
			t.Fatalf("trace %d: %v", i, err)
		}
		if len(viols) != 0 {
			t.Fatalf("trace %d: legal trace flagged: %v", i, viols)
		}
	}
}

// injector mutates one step of a legal trace into a violation of a
// single named standard assertion, returning the assertion name. Each
// keeps the mutation on the boundary where only its own assertion
// fires.
type injector struct {
	name   string
	mutate func(steps []trace.Step, k int, rng *rand.Rand)
}

func injectors() []injector {
	return []injector{
		{"never-exceed-tdtm", func(steps []trace.Step, k int, rng *rand.Rand) {
			// Just over the band, with core power inside the sprint budget
			// so tsp-respected stays quiet.
			steps[k].PeakC = testTDTM + TDTMSlackC + 0.01
			steps[k].MaxCoreW = steps[k].TSPPerCoreW
		}},
		{"tsp-respected", func(steps []trace.Step, k int, rng *rand.Rand) {
			// Exactly on the TDTM band boundary: qualifies for the TSP
			// check (>=) without exceeding the TDTM limit (>).
			steps[k].PeakC = testTDTM + TDTMSlackC
			steps[k].MaxCoreW = (1+DefaultTSPSlack)*steps[k].TSPPerCoreW + 0.01
		}},
		{"ladder-step-legal", func(steps []trace.Step, k int, rng *rand.Rand) {
			j := rng.Intn(len(steps[k].Levels))
			prev := steps[k-1].Levels[j]
			if prev >= 2 {
				steps[k].Levels[j] = prev - 2
			} else {
				steps[k].Levels[j] = prev + 2
			}
		}},
		{"ladder-range-legal", func(steps []trace.Step, k int, rng *rand.Rand) {
			steps[k].Levels[rng.Intn(len(steps[k].Levels))] = testMaxLevel + 1
		}},
		{"power-partition", func(steps []trace.Step, k int, rng *rand.Rand) {
			steps[k].TotalW += 1.0
		}},
		{"time-monotone", func(steps []trace.Step, k int, rng *rand.Rand) {
			steps[k].TimeS = steps[k-1].TimeS - 1e-3
		}},
	}
}

// TestInjectedViolationsCaught is the property test of the assertion
// engine: for every assertion kind, a single-step corruption of an
// otherwise legal trace is reported against exactly that assertion at
// exactly that step.
func TestInjectedViolationsCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	asserts := StandardAssertions(testTDTM, testMaxLevel)
	for round := 0; round < 50; round++ {
		for _, inj := range injectors() {
			steps := genLegalTrace(rng, 5+rng.Intn(30), 1+rng.Intn(5))
			k := 1 + rng.Intn(len(steps)-1) // >=1: step/monotone kinds compare to k-1
			inj.mutate(steps, k, rng)
			viols, err := Check(steps, asserts)
			if err != nil {
				t.Fatalf("%s: %v", inj.name, err)
			}
			// A corruption may legitimately trip a second assertion (an
			// out-of-range level is also an illegal jump); the property is
			// that the targeted assertion reports exactly the injected step.
			var hit *Violation
			for i := range viols {
				if viols[i].Assertion == inj.name {
					hit = &viols[i]
				}
			}
			if hit == nil {
				t.Fatalf("%s injected at step %d: not caught (got %v)", inj.name, k, viols)
			}
			if hit.Step != k {
				t.Fatalf("%s injected at step %d: reported step %d", inj.name, k, hit.Step)
			}
			if !strings.Contains(hit.Detail, "peak") {
				t.Fatalf("%s: detail lacks step context: %q", inj.name, hit.Detail)
			}
		}
	}
}

func TestCheckMalformedAssertion(t *testing.T) {
	steps := genLegalTrace(rand.New(rand.NewSource(1)), 3, 2)
	for _, bad := range []Assertion{
		{Name: "bad-kind", Kind: Kind("bogus")},
		{Name: "bad-signal", Kind: KindMax, Signal: Signal("bogus")},
	} {
		if _, err := Check(steps, []Assertion{bad}); err == nil {
			t.Fatalf("%s: malformed assertion accepted", bad.Name)
		}
	}
}

func TestCheckEmptyTrace(t *testing.T) {
	viols, err := Check(nil, StandardAssertions(testTDTM, testMaxLevel))
	if err != nil || len(viols) != 0 {
		t.Fatalf("empty trace: viols=%v err=%v", viols, err)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Assertion: "a", Step: 3, TimeS: 0.003, Detail: "d"}
	if got := v.String(); !strings.Contains(got, "step 3") || !strings.Contains(got, "a") {
		t.Fatalf("String() = %q", got)
	}
}
