package policy

import (
	"context"
	"fmt"
	"math"
	"math/rand"
)

// The tuner searches a Tunable policy's parameter box with a
// deterministic hill climb: evaluate the defaults, then repeatedly try
// every ±Step neighbor of the incumbent and move to the best improving
// one; when no neighbor improves, restart once from a seeded random
// point in the box and keep the better of the two climbs. The objective
// is sandbox throughput (AvgGIPS); any run that errors or violates an
// assertion scores -Inf, so the tuner cannot trade safety for speed.

// TuneOptions configures a tuning search.
type TuneOptions struct {
	// Seed drives the random restart (same seed + same sandbox ⇒ same
	// result). Default 1.
	Seed int64
	// Budget caps sandbox evaluations (default 12).
	Budget int
	// Sandbox configures each evaluation run.
	Sandbox Options
}

// TuneStep records one evaluated parameter point.
type TuneStep struct {
	Params map[string]float64 `json:"params"`
	Score  float64            `json:"score"`
	// Accepted marks the winning point.
	Accepted bool `json:"accepted"`
}

// TuneResult is the outcome of a tuning search.
type TuneResult struct {
	Policy        string     `json:"policy"`
	Objective     string     `json:"objective"`
	DefaultParams []Param    `json:"default_params"`
	BestParams    []Param    `json:"best_params"`
	DefaultScore  float64    `json:"default_score"`
	BestScore     float64    `json:"best_score"`
	Evals         int        `json:"evals"`
	Trace         []TuneStep `json:"trace,omitempty"`
}

// Improved reports whether the search beat the defaults.
func (r *TuneResult) Improved() bool { return r.BestScore > r.DefaultScore }

// Best returns the policy reconfigured with the winning parameters.
func (r *TuneResult) best(pol Tunable) (Policy, error) {
	return pol.WithParams(paramMap(r.BestParams))
}

func paramMap(ps []Param) map[string]float64 {
	m := make(map[string]float64, len(ps))
	for _, p := range ps {
		m[p.Name] = p.Value
	}
	return m
}

// Tune hill-climbs the policy's parameters against the environment and
// returns the search record. The result's BestParams equal the defaults
// when nothing improved.
func (e *Env) Tune(ctx context.Context, pol Tunable, opt TuneOptions) (*TuneResult, error) {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Budget == 0 {
		opt.Budget = 12
	}
	if opt.Budget < 1 {
		return nil, fmt.Errorf("%w: tune budget %d", ErrPolicy, opt.Budget)
	}
	box := pol.Params()
	if len(box) == 0 {
		return nil, fmt.Errorf("%w: policy %q has no tunable parameters", ErrPolicy, pol.Name())
	}
	res := &TuneResult{
		Policy:        pol.Name(),
		Objective:     "avg GIPS (assertion violations score -Inf)",
		DefaultParams: box,
	}

	// Memoized objective: the climb revisits points (e.g. stepping back
	// toward the incumbent), and cache hits do not consume budget.
	seen := map[string]float64{}
	eval := func(vals map[string]float64) (float64, error) {
		key := sortedParams(vals)
		if s, ok := seen[key]; ok {
			return s, nil
		}
		if res.Evals >= opt.Budget {
			return math.Inf(-1), nil
		}
		cand, err := pol.WithParams(vals)
		if err != nil {
			return 0, err
		}
		out, err := e.Run(ctx, cand, opt.Sandbox)
		if err != nil {
			return 0, err
		}
		res.Evals++
		score := math.Inf(-1)
		if out.Passed() {
			score = out.AvgGIPS
		}
		seen[key] = score
		res.Trace = append(res.Trace, TuneStep{Params: vals, Score: score})
		return score, nil
	}

	defaults := paramMap(box)
	defScore, err := eval(defaults)
	if err != nil {
		return nil, err
	}
	res.DefaultScore = defScore

	bestVals, bestScore := defaults, defScore
	climb := func(start map[string]float64, startScore float64) error {
		cur, curScore := start, startScore
		for {
			var nextVals map[string]float64
			nextScore := curScore
			// Neighbor order is fixed (param order, minus then plus), and
			// only strict improvement moves, so ties break toward the
			// earliest neighbor: the climb is deterministic.
			for _, p := range box {
				for _, dir := range []float64{-1, 1} {
					v := clamp(cur[p.Name]+dir*p.Step, p.Min, p.Max)
					if v == cur[p.Name] {
						continue
					}
					cand := cloneVals(cur)
					cand[p.Name] = v
					s, err := eval(cand)
					if err != nil {
						return err
					}
					if s > nextScore {
						nextVals, nextScore = cand, s
					}
				}
			}
			if nextVals == nil {
				break
			}
			cur, curScore = nextVals, nextScore
			if curScore > bestScore {
				bestVals, bestScore = cur, curScore
			}
		}
		return nil
	}
	if err := climb(defaults, defScore); err != nil {
		return nil, err
	}

	// One seeded random restart inside the box, snapped to the step grid
	// so the restart explores the same lattice the climb walks.
	rng := rand.New(rand.NewSource(opt.Seed))
	restart := cloneVals(defaults)
	for _, p := range box {
		if p.Step <= 0 || p.Max <= p.Min {
			continue
		}
		n := int((p.Max-p.Min)/p.Step + 0.5)
		restart[p.Name] = clamp(p.Min+float64(rng.Intn(n+1))*p.Step, p.Min, p.Max)
	}
	rs, err := eval(restart)
	if err != nil {
		return nil, err
	}
	if rs > bestScore {
		bestVals, bestScore = restart, rs
	}
	if err := climb(restart, rs); err != nil {
		return nil, err
	}

	bestKey := sortedParams(bestVals)
	for i := range res.Trace {
		res.Trace[i].Accepted = sortedParams(res.Trace[i].Params) == bestKey
	}
	res.BestScore = bestScore
	res.BestParams = make([]Param, len(box))
	for i, p := range box {
		p.Value = bestVals[p.Name]
		res.BestParams[i] = p
	}
	return res, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func cloneVals(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
