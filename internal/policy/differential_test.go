package policy

import (
	"context"
	"reflect"
	"testing"

	"darksim/internal/boost"
	"darksim/internal/scenario"
	"darksim/internal/sim"
)

func testEnv(t *testing.T, pack string) *Env {
	t.Helper()
	spec, err := scenario.PackByName(pack)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(sc)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestBoostAdapterMatchesSim is the differential anchor of the sandbox
// engine: the boost and constant adapters drive the same §6 controllers
// the Figure 11-13 experiments use, so on the same plan the sandbox must
// reproduce sim.Run's throughput, energy, peak power and peak
// temperature bit for bit.
func TestBoostAdapterMatchesSim(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	p := env.Platform
	plan, _, err := env.Scenario.FillPlan()
	if err != nil {
		t.Fatal(err)
	}
	ladder := p.BoostLadder
	constLevel, err := boost.FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Duration: 0.05}
	simOpt := sim.Options{Duration: opt.Duration, ControlPeriod: 1e-3, StartSteady: true}

	cases := []struct {
		pol  Policy
		ctrl func() (sim.Controller, error)
	}{
		{NewConstant(), func() (sim.Controller, error) {
			return boost.Constant{Level: constLevel}, nil
		}},
		{NewBoost(), func() (sim.Controller, error) {
			return boost.NewClosed(p.TDTM, constLevel, len(ladder.Points)-1)
		}},
		{NewUnsafeBoost(), func() (sim.Controller, error) {
			return boost.NewGreedy(constLevel, len(ladder.Points)-1)
		}},
	}
	for _, tc := range cases {
		out, err := env.Run(context.Background(), tc.pol, opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.pol.Name(), err)
		}
		if out.Err != "" {
			t.Fatalf("%s: %s", tc.pol.Name(), out.Err)
		}
		ctrl, err := tc.ctrl()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := sim.Run(p, plan, ctrl, ladder, simOpt)
		if err != nil {
			t.Fatalf("%s: sim.Run: %v", tc.pol.Name(), err)
		}
		if out.AvgGIPS != ref.AvgGIPS || out.EnergyJ != ref.EnergyJ ||
			out.PeakPowerW != ref.PeakPowerW || out.MaxTempC != ref.MaxTempC ||
			out.DTMEvents != ref.DTMEvents {
			t.Fatalf("%s diverges from sim.Run:\nsandbox gips=%v energy=%v peakW=%v maxC=%v dtm=%d\nsim     gips=%v energy=%v peakW=%v maxC=%v dtm=%d",
				tc.pol.Name(),
				out.AvgGIPS, out.EnergyJ, out.PeakPowerW, out.MaxTempC, out.DTMEvents,
				ref.AvgGIPS, ref.EnergyJ, ref.PeakPowerW, ref.MaxTempC, ref.DTMEvents)
		}
		if len(out.Steps) != int(opt.Duration/1e-3+0.5) {
			t.Fatalf("%s: %d trace steps", tc.pol.Name(), len(out.Steps))
		}
	}
}

// TestTDPMapAdapterMatchesEvaluate checks the mapping side: the tdpmap
// policy's plan is the scenario's own TDP fill, so the per-app instance
// accounting must equal scenario.Evaluate's bit for bit.
func TestTDPMapAdapterMatchesEvaluate(t *testing.T) {
	for _, pack := range []string{
		scenario.PackSymmetric, scenario.PackAsymmetric, scenario.PackMultiInstancing,
	} {
		env := testEnv(t, pack)
		res, err := env.Scenario.Evaluate(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", pack, err)
		}
		plan, apps, err := env.Scenario.FillPlan()
		if err != nil {
			t.Fatalf("%s: %v", pack, err)
		}
		if !reflect.DeepEqual(apps, res.Apps) {
			t.Fatalf("%s: FillPlan app accounting diverges from Evaluate:\n%#v\n%#v", pack, apps, res.Apps)
		}
		prep, err := TDPMap{}.Prepare(context.Background(), env)
		if err != nil {
			t.Fatalf("%s: %v", pack, err)
		}
		if !reflect.DeepEqual(prep.Plan, plan) {
			t.Fatalf("%s: tdpmap plan diverges from the TDP fill", pack)
		}
		total := 0
		for _, a := range res.Apps {
			total += a.ActiveCores
		}
		got := 0
		for _, pl := range prep.Plan.Placements {
			got += len(pl.Cores)
		}
		if got != total {
			t.Fatalf("%s: plan uses %d cores, Evaluate accounted %d", pack, got, total)
		}
	}
}

// TestPatternedKeepsInstanceCounts checks that patterning only moves
// placements: instance counts and thread counts match the plain fill.
func TestPatternedKeepsInstanceCounts(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	plain, _, err := env.Scenario.FillPlan()
	if err != nil {
		t.Fatal(err)
	}
	prep, err := NewPatterned().Prepare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Plan.Placements) != len(plain.Placements) {
		t.Fatalf("patterned has %d placements, fill %d", len(prep.Plan.Placements), len(plain.Placements))
	}
	moved := false
	for i, pl := range prep.Plan.Placements {
		if len(pl.Cores) != len(plain.Placements[i].Cores) {
			t.Fatalf("placement %d resized %d -> %d", i, len(plain.Placements[i].Cores), len(pl.Cores))
		}
		if !reflect.DeepEqual(pl.Cores, plain.Placements[i].Cores) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("periphery patterning left every placement where the fill put it")
	}
}
