package policy

import (
	"context"
	"fmt"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/metrics"
	"darksim/internal/thermal"
	"darksim/internal/trace"
)

// lane is one policy's in-flight run inside a lockstep pack. All lanes of
// a pack share the thermal model's cached factorization through a
// thermal.TransientBatch, so the pack pays one factor sweep per control
// period for every live lane instead of one per lane; per lane the
// arithmetic is bit-for-bit what a solo Env.Run performs (the batch and
// power-coefficient layers both carry exactness pins).
type lane struct {
	out  *Outcome
	prep *Prepared
	work *mapping.Plan
	nPl  int

	levels []int
	gated  []bool

	tr    *thermal.Transient
	temps []float64
	peak  float64
	power []float64

	placementPeaks []float64
	placementW     []float64

	// coefs caches the fused power coefficients per (placement, clamped
	// level); a placement's coefficient set is fixed for the run since
	// the plan is static and only frequencies move.
	coefs   [][]core.PowerCoef
	coefSet [][]bool

	energy    metrics.EnergyMeter
	tspByMask map[string]float64
	activeSum int

	// Per-step scratch carried from the decision half to the record half
	// of the control period (the shared batch solve sits between them).
	totalP, totalG, maxCoreW, tspW float64
	active                         int
	dtm                            bool

	// Per-run arenas for the trace's per-step slices: one backing array
	// per field instead of one allocation per step per field.
	levelsBuf []int
	gatedBuf  []bool
	wBuf      []float64

	// failed marks a lane whose policy errored (recorded in out.Err);
	// the pack keeps racing the others while this lane's state freezes.
	failed bool
}

// fail records a policy-level error and retires the lane.
func (ln *lane) fail(err error) {
	ln.out.Err = err.Error()
	ln.failed = true
}

// adoptDecision validates and installs a controller decision.
func (ln *lane) adoptDecision(d Decision) error {
	if len(d.Levels) != ln.nPl || (d.Gated != nil && len(d.Gated) != ln.nPl) {
		return fmt.Errorf("%w: controller returned %d levels / %d gates for %d placements",
			ErrPolicy, len(d.Levels), len(d.Gated), ln.nPl)
	}
	copy(ln.levels, d.Levels)
	if d.Gated == nil {
		for i := range ln.gated {
			ln.gated[i] = false
		}
	} else {
		copy(ln.gated, d.Gated)
	}
	return nil
}

// setFreqs writes the decided frequencies into the working plan.
func (ln *lane) setFreqs() {
	ladder := ln.prep.Ladder
	for i := range ln.work.Placements {
		ln.work.Placements[i].FGHz = ladder.Points[ladder.Clamp(ln.levels[i])].FGHz
	}
}

// coefFor returns the fused coefficients of placement i at its current
// (clamped) level, computing and caching them on first use. setFreqs must
// have run for the current decision.
func (ln *lane) coefFor(p *core.Platform, i int, mode core.PowerMode) (core.PowerCoef, error) {
	lvl := ln.prep.Ladder.Clamp(ln.levels[i])
	if ln.coefSet[i][lvl] {
		return ln.coefs[i][lvl], nil
	}
	c, err := p.PowerCoefFor(ln.work.Placements[i], mode)
	if err != nil {
		return core.PowerCoef{}, err
	}
	ln.coefs[i][lvl] = c
	ln.coefSet[i][lvl] = true
	return c, nil
}

// newLane binds one prepared policy to a batch transient. A policy-level
// preparation failure is recorded in the lane's Outcome (the lane starts
// retired); only infrastructure errors are returned.
func (e *Env) newLane(ctx context.Context, pol Policy, tr *thermal.Transient, opt Options, steps int) (*lane, error) {
	p := e.Platform
	ln := &lane{out: &Outcome{Policy: pol.Name(), Info: pol.Info()}, tr: tr}
	prep, err := pol.Prepare(ctx, e)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		ln.fail(err)
		return ln, nil
	}
	ln.prep = prep
	plan := prep.Plan
	if err := plan.Validate(); err != nil {
		ln.fail(err)
		return ln, nil
	}
	if plan.NumCores != p.NumCores() {
		ln.fail(fmt.Errorf("%w: plan has %d cores, platform %d", ErrPolicy, plan.NumCores, p.NumCores()))
		return ln, nil
	}
	ln.work = &mapping.Plan{NumCores: plan.NumCores}
	ln.work.Placements = append([]mapping.Placement(nil), plan.Placements...)
	ln.nPl = len(ln.work.Placements)
	ln.levels = make([]int, ln.nPl)
	ln.gated = make([]bool, ln.nPl)

	dec := prep.Ctrl.Start()
	if len(dec.Levels) != ln.nPl {
		ln.fail(fmt.Errorf("%w: controller starts %d placements, plan has %d", ErrPolicy, len(dec.Levels), ln.nPl))
		return ln, nil
	}
	if err := ln.adoptDecision(dec); err != nil {
		ln.fail(err)
		return ln, nil
	}
	ln.setFreqs()

	ln.peak, _ = tr.PeakBlockTemp()
	if prep.StartSteady {
		// Steady state of the initial decision's ungated placements.
		steady := &mapping.Plan{NumCores: plan.NumCores}
		for i, pl := range ln.work.Placements {
			if !ln.gated[i] {
				steady.Placements = append(steady.Placements, pl)
			}
		}
		_, power, err := p.SteadyTemps(steady, opt.Mode)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			ln.fail(err)
			return ln, nil
		}
		if err := tr.SetSteadyState(power); err != nil {
			ln.fail(err)
			return ln, nil
		}
		ln.peak, _ = tr.PeakBlockTemp()
	}

	ln.temps = append([]float64(nil), tr.BlockTemps()...)
	ln.power = make([]float64, plan.NumCores)
	ln.placementPeaks = make([]float64, ln.nPl)
	ln.placementW = make([]float64, ln.nPl)
	nLevels := len(prep.Ladder.Points)
	ln.coefs = make([][]core.PowerCoef, ln.nPl)
	ln.coefSet = make([][]bool, ln.nPl)
	for i := range ln.coefs {
		ln.coefs[i] = make([]core.PowerCoef, nLevels)
		ln.coefSet[i] = make([]bool, nLevels)
	}
	ln.tspByMask = make(map[string]float64, 2)
	ln.out.MaxTempC = ln.peak
	ln.out.Steps = make([]trace.Step, 0, steps)
	ln.levelsBuf = make([]int, 0, steps*ln.nPl)
	ln.gatedBuf = make([]bool, 0, steps*ln.nPl)
	ln.wBuf = make([]float64, 0, steps*ln.nPl)
	return ln, nil
}

// runPack prepares one lane per policy and races them in lockstep for the
// configured duration. Policy-level failures retire their lane and are
// recorded in its Outcome; only infrastructure errors (bad options,
// context cancellation) abort the pack. Outcomes come back in input
// order, stepping engine complete but assertions not yet checked.
func (e *Env) runPack(ctx context.Context, pols []Policy, opt Options) ([]*lane, error) {
	p := e.Platform
	opt.fillDefaults(p)
	if opt.Duration <= 0 || opt.ControlPeriod <= 0 || opt.ControlPeriod > opt.Duration {
		return nil, fmt.Errorf("%w: duration %g s, control period %g s", ErrPolicy, opt.Duration, opt.ControlPeriod)
	}
	if len(pols) == 0 {
		return nil, nil
	}
	steps := int(opt.Duration/opt.ControlPeriod + 0.5)
	batch, err := p.Thermal.NewTransientBatch(opt.ControlPeriod, len(pols))
	if err != nil {
		return nil, err
	}

	lanes := make([]*lane, len(pols))
	active := make([]bool, len(pols))
	powers := make([][]float64, len(pols))
	temps := make([][]float64, len(pols))
	for i, pol := range pols {
		ln, err := e.newLane(ctx, pol, batch.Transient(i), opt, steps)
		if err != nil {
			return nil, err
		}
		lanes[i] = ln
	}

	for step := 0; step < steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := float64(step) * opt.ControlPeriod

		for i, ln := range lanes {
			active[i] = false
			if ln.failed {
				continue
			}
			if err := ln.stepDecision(ctx, e, step, now, opt); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				ln.fail(err)
				continue
			}
			active[i] = true
			powers[i] = ln.power
			temps[i] = ln.temps
		}

		if err := batch.StepAll(powers, active, temps); err != nil {
			return nil, err
		}

		for i, ln := range lanes {
			if !active[i] {
				continue
			}
			ln.recordStep(step, now, opt)
		}
	}

	for _, ln := range lanes {
		if ln.failed {
			continue
		}
		ln.finish(opt, steps)
	}
	return lanes, nil
}

// stepDecision runs one lane's pre-solve half of a control period: the
// policy decision, DTM clamp, frequency update, fused power evaluation
// and TSP lookup. The post-solve half lives in recordStep; the two halves
// bracket the pack's shared batched thermal solve.
func (ln *lane) stepDecision(ctx context.Context, e *Env, step int, now float64, opt Options) error {
	p := e.Platform
	for i, pl := range ln.work.Placements {
		pp := 0.0
		for _, c := range pl.Cores {
			if ln.temps[c] > pp {
				pp = ln.temps[c]
			}
		}
		ln.placementPeaks[i] = pp
	}
	if err := ln.adoptDecision(ln.prep.Ctrl.Next(Observation{
		Step: step, TimeS: now, PeakC: ln.peak, PlacementPeakC: ln.placementPeaks,
	})); err != nil {
		return err
	}
	ln.dtm = false
	if ln.peak > opt.EmergencyC {
		for i := range ln.levels {
			ln.levels[i] = 0
		}
		ln.dtm = true
		ln.out.DTMEvents++
	}
	ln.setFreqs()

	for i := range ln.power {
		ln.power[i] = 0
	}
	ln.totalP, ln.totalG, ln.maxCoreW = 0, 0, 0
	ln.active = 0
	for i, pl := range ln.work.Placements {
		ln.placementW[i] = 0
		if ln.gated[i] {
			continue
		}
		ln.totalG += pl.GIPS()
		ln.active += len(pl.Cores)
		coef, err := ln.coefFor(p, i, opt.Mode)
		if err != nil {
			return err
		}
		for _, c := range pl.Cores {
			cp := coef.At(ln.temps[c])
			ln.power[c] = cp
			ln.placementW[i] += cp
			ln.totalP += cp
			if cp > ln.maxCoreW {
				ln.maxCoreW = cp
			}
		}
	}

	var err error
	ln.tspW, err = e.tspFor(ctx, ln.gated, ln.active, ln.tspByMask)
	return err
}

// recordStep runs the post-solve half of a control period: peak update,
// energy and trace accounting. The batch solve has already advanced
// ln.temps in place.
func (ln *lane) recordStep(step int, now float64, opt Options) {
	ln.peak = 0
	for _, t := range ln.temps {
		if t > ln.peak {
			ln.peak = t
		}
	}
	// EnergyMeter.Add only rejects non-finite or negative inputs; both
	// are already excluded by the options validation above.
	_ = ln.energy.Add(opt.ControlPeriod, ln.totalP)
	if ln.totalP > ln.out.PeakPowerW {
		ln.out.PeakPowerW = ln.totalP
	}
	if ln.peak > ln.out.MaxTempC {
		ln.out.MaxTempC = ln.peak
	}
	ln.out.AvgGIPS += ln.totalG
	ln.activeSum += ln.active

	ls := len(ln.levelsBuf)
	ln.levelsBuf = append(ln.levelsBuf, ln.levels...)
	gs := len(ln.gatedBuf)
	ln.gatedBuf = append(ln.gatedBuf, ln.gated...)
	ws := len(ln.wBuf)
	ln.wBuf = append(ln.wBuf, ln.placementW...)
	ln.out.Steps = append(ln.out.Steps, trace.Step{
		Index:       step,
		TimeS:       now,
		Levels:      ln.levelsBuf[ls:len(ln.levelsBuf):len(ln.levelsBuf)],
		Gated:       ln.gatedBuf[gs:len(ln.gatedBuf):len(ln.gatedBuf)],
		PlacementW:  ln.wBuf[ws:len(ln.wBuf):len(ln.wBuf)],
		TotalW:      ln.totalP,
		MaxCoreW:    ln.maxCoreW,
		PeakC:       ln.peak,
		GIPS:        ln.totalG,
		ActiveCores: ln.active,
		TSPPerCoreW: ln.tspW,
		DTM:         ln.dtm,
	})
}

// finish normalizes the run aggregates once all steps are in.
func (ln *lane) finish(opt Options, steps int) {
	out := ln.out
	out.AvgGIPS /= float64(steps)
	out.EnergyJ = ln.energy.TotalJ()
	if work := out.AvgGIPS * opt.Duration; work > 0 {
		out.EnergyPerGinstr = out.EnergyJ / work
	}
	if n := ln.work.NumCores; n > 0 {
		avgActive := float64(ln.activeSum) / float64(steps)
		out.DarkPercent = 100 * (1 - avgActive/float64(n))
	}
}
