package policy

import (
	"context"
	"fmt"

	"darksim/internal/apps"
	"darksim/internal/boost"
	"darksim/internal/mapping"
	"darksim/internal/sim"
	"darksim/internal/vf"
)

// chipWide adapts a chip-wide sim.Controller (the §6 boosting loops) to
// the per-placement Controller interface: every placement gets the same
// level, driven by the chip peak — exactly sim.Run's control model, so a
// chip-wide adapter reproduces the boost figures bit for bit.
type chipWide struct {
	ctrl   sim.Controller
	ladder *vf.Ladder
	levels []int
}

func newChipWide(ctrl sim.Controller, ladder *vf.Ladder, placements int) *chipWide {
	return &chipWide{ctrl: ctrl, ladder: ladder, levels: make([]int, placements)}
}

func (c *chipWide) set(level int) Decision {
	level = c.ladder.Clamp(level)
	for i := range c.levels {
		c.levels[i] = level
	}
	return Decision{Levels: c.levels}
}

func (c *chipWide) Start() Decision { return c.set(c.ctrl.Current()) }

func (c *chipWide) Next(obs Observation) Decision { return c.set(c.ctrl.Next(obs.PeakC)) }

// holdLevels keeps a fixed per-placement level assignment — the control
// side of the static mapping policies (TDPmap, patterned, DsRem).
type holdLevels struct{ levels []int }

func (h holdLevels) Start() Decision           { return Decision{Levels: h.levels} }
func (h holdLevels) Next(Observation) Decision { return Decision{Levels: h.levels} }

// fillPlan runs the scenario's TDP fill and rejects the degenerate
// fully-dark outcome, which no stepping policy can do anything with.
func fillPlan(env *Env) (*mapping.Plan, error) {
	plan, _, err := env.Scenario.FillPlan()
	if err != nil {
		return nil, err
	}
	if len(plan.Placements) == 0 {
		return nil, fmt.Errorf("%w: the TDP fill powered no instances on this scenario", ErrPolicy)
	}
	return plan, nil
}

// Constant is the §6 constant-frequency baseline: the scenario's TDP-fill
// plan run at the highest ladder level whose steady-state peak stays at
// or below TDTM.
type Constant struct{}

// NewConstant returns the constant-frequency baseline policy.
func NewConstant() Constant { return Constant{} }

func (Constant) Name() string { return "constant" }
func (Constant) Info() string {
	return "TDP-fill plan at the highest thermally safe constant level (§6 baseline)"
}

func (Constant) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	p := env.Platform
	level, err := boost.FindConstantLevel(p, plan, p.BoostLadder, p.TDTM)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Plan:        plan,
		Ladder:      p.BoostLadder,
		Ctrl:        newChipWide(boost.Constant{Level: level}, p.BoostLadder, len(plan.Placements)),
		StartSteady: true,
	}, nil
}

// Boost is the Turbo-Boost-style closed loop of §6: starting from the
// constant-safe level, step the chip-wide frequency up while the peak is
// comfortably below TDTM and down at or above it.
type Boost struct {
	// HoldBandC is the closed loop's hold band below TDTM (default
	// boost.DefaultHoldBandC).
	HoldBandC float64
}

// NewBoost returns the closed-loop boosting policy with defaults.
func NewBoost() *Boost { return &Boost{HoldBandC: boost.DefaultHoldBandC} }

func (*Boost) Name() string { return "boost" }
func (*Boost) Info() string {
	return "closed-loop Turbo-style boosting around TDTM (§6, Figures 11-13)"
}

func (b *Boost) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	p := env.Platform
	ladder := p.BoostLadder
	level, err := boost.FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		return nil, err
	}
	ctrl, err := boost.NewClosed(p.TDTM, level, len(ladder.Points)-1)
	if err != nil {
		return nil, err
	}
	ctrl.HoldBandC = b.HoldBandC
	return &Prepared{
		Plan:        plan,
		Ladder:      ladder,
		Ctrl:        newChipWide(ctrl, ladder, len(plan.Placements)),
		StartSteady: true,
	}, nil
}

// Params implements Tunable.
func (b *Boost) Params() []Param {
	return []Param{{Name: "hold_band_c", Value: b.HoldBandC, Min: 0, Max: 2, Step: 0.1}}
}

// WithParams implements Tunable.
func (b *Boost) WithParams(vals map[string]float64) (Policy, error) {
	nb := *b
	for name, v := range vals {
		switch name {
		case "hold_band_c":
			if v < 0 {
				return nil, fmt.Errorf("%w: boost hold_band_c %g", ErrPolicy, v)
			}
			nb.HoldBandC = v
		default:
			return nil, fmt.Errorf("%w: boost has no parameter %q", ErrPolicy, name)
		}
	}
	return &nb, nil
}

// UnsafeBoost is the intentionally unsafe negative control: boosting with
// the TDTM check disabled (boost.Greedy climbs to deep boost and stays
// there). A correct assertion engine must catch it.
type UnsafeBoost struct{}

// NewUnsafeBoost returns the negative-control policy.
func NewUnsafeBoost() UnsafeBoost { return UnsafeBoost{} }

func (UnsafeBoost) Name() string { return "boost-unsafe" }
func (UnsafeBoost) Info() string {
	return "boosting with the TDTM check disabled — negative control, must fail assertions"
}

func (UnsafeBoost) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	p := env.Platform
	ladder := p.BoostLadder
	level, err := boost.FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		return nil, err
	}
	ctrl, err := boost.NewGreedy(level, len(ladder.Points)-1)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		Plan:        plan,
		Ladder:      ladder,
		Ctrl:        newChipWide(ctrl, ladder, len(plan.Placements)),
		StartSteady: true,
	}, nil
}

// TDPMap is the §3.1/§4 TDP-guided fill run open loop: the scenario's
// own fill plan (contiguous per-type ranges, spec frequencies) held
// constant. On TDP-unsafe scenarios its trace violates the TDTM
// assertion — the paper's Observation 1, caught at the violating step.
type TDPMap struct{}

// NewTDPMap returns the TDP-fill policy.
func NewTDPMap() TDPMap { return TDPMap{} }

func (TDPMap) Name() string { return "tdpmap" }
func (TDPMap) Info() string {
	return "TDP-guided fill held open loop at the spec's v/f levels (§3.1, TDPmap)"
}

func (TDPMap) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	return holdPrepared(env, plan)
}

// holdPrepared wraps a static plan in a hold controller at the nominal
// ladder levels nearest each placement's planned frequency.
func holdPrepared(env *Env, plan *mapping.Plan) (*Prepared, error) {
	ladder := env.Platform.Ladder
	levels := make([]int, len(plan.Placements))
	for i, pl := range plan.Placements {
		levels[i] = ladder.Nearest(pl.FGHz)
	}
	return &Prepared{
		Plan:        plan,
		Ladder:      ladder,
		Ctrl:        holdLevels{levels: levels},
		StartSteady: true,
	}, nil
}

// Patterned is the TDP fill re-placed with dark-silicon patterning
// (Figure 8): identical instance counts, but the active cores spread by
// a placement strategy instead of packed contiguously. Requires a
// single-core-type scenario (strategies pick from the whole die); on
// heterogeneous chips it degrades to the plain fill placement.
type Patterned struct {
	// Strategy names the mapping strategy (default "periphery").
	Strategy string
}

// NewPatterned returns the patterned-fill policy with defaults.
func NewPatterned() *Patterned { return &Patterned{Strategy: "periphery"} }

func (*Patterned) Name() string { return "patterned" }
func (p *Patterned) Info() string {
	return fmt.Sprintf("TDP fill re-placed with %s dark-silicon patterning (Figure 8)", p.Strategy)
}

func (pp *Patterned) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	strat, ok := mapping.Strategies()[pp.Strategy]
	if !ok {
		return nil, fmt.Errorf("%w: unknown placement strategy %q", ErrPolicy, pp.Strategy)
	}
	if len(env.Scenario.Types) == 1 {
		replaced, err := mapping.Replace(plan, env.Platform.Floorplan, strat)
		if err != nil {
			return nil, err
		}
		plan = replaced
	}
	return holdPrepared(env, plan)
}

// DsRem is the §4 resource-management heuristic (Khdr et al., DAC'15)
// run open loop: jointly chosen per-application instance counts and v/f
// levels under the TDTM constraint, periphery-first patterned.
type DsRem struct {
	// HeadroomC stops DsRem's exploit phase this far below TDTM
	// (mapping.DsRemOptions default 0.25 °C).
	HeadroomC float64
}

// NewDsRem returns the DsRem policy with defaults.
func NewDsRem() *DsRem { return &DsRem{HeadroomC: 0.25} }

func (*DsRem) Name() string { return "dsrem" }
func (*DsRem) Info() string {
	return "DsRem joint core-count + v/f selection under TDTM (§4), held open loop"
}

func (d *DsRem) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mix := make([]apps.App, 0, len(env.Scenario.Spec.Apps))
	for _, m := range env.Scenario.Spec.Apps {
		a, err := env.Scenario.AppFor(m)
		if err != nil {
			return nil, err
		}
		mix = append(mix, a)
	}
	p := env.Platform
	plan, err := mapping.DsRem(p.Floorplan, mix, p,
		mapping.EvaluatorFunc(p.PeakTemp), mapping.DsRemOptions{
			TcritC:    p.TDTM,
			Levels:    p.Ladder.Levels(),
			HeadroomC: d.HeadroomC,
		})
	if err != nil {
		return nil, err
	}
	if len(plan.Placements) == 0 {
		return nil, fmt.Errorf("%w: DsRem kept no instances on this scenario", ErrPolicy)
	}
	return holdPrepared(env, plan)
}

// Params implements Tunable.
func (d *DsRem) Params() []Param {
	return []Param{{Name: "headroom_c", Value: d.HeadroomC, Min: 0.05, Max: 1.05, Step: 0.2}}
}

// WithParams implements Tunable.
func (d *DsRem) WithParams(vals map[string]float64) (Policy, error) {
	nd := *d
	for name, v := range vals {
		switch name {
		case "headroom_c":
			if v <= 0 {
				return nil, fmt.Errorf("%w: dsrem headroom_c %g", ErrPolicy, v)
			}
			nd.HeadroomC = v
		default:
			return nil, fmt.Errorf("%w: dsrem has no parameter %q", ErrPolicy, name)
		}
	}
	return &nd, nil
}

// DarkGates is the DarkGates-style power-gating variant: per-placement
// closed boost loops (per-application DVFS islands), plus a power gate —
// an island that sits at the lowest level with its own peak still at the
// threshold is gated dark, and re-armed once it has cooled by the re-arm
// band. Gating cuts the island's power to zero (power gates kill leakage
// too), turning thermally hopeless instances into lateral cooling for
// their neighbours.
type DarkGates struct {
	// HoldBandC is each island loop's hold band below TDTM.
	HoldBandC float64
	// ReArmBandC is how far below TDTM an island's peak must fall
	// before a gated placement is re-armed.
	ReArmBandC float64
}

// NewDarkGates returns the power-gating policy with defaults.
func NewDarkGates() *DarkGates {
	return &DarkGates{HoldBandC: boost.DefaultHoldBandC, ReArmBandC: 1.0}
}

func (*DarkGates) Name() string { return "darkgates" }
func (*DarkGates) Info() string {
	return "per-placement boost islands with DarkGates-style power gating of hopeless islands"
}

func (d *DarkGates) Prepare(ctx context.Context, env *Env) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, err := fillPlan(env)
	if err != nil {
		return nil, err
	}
	p := env.Platform
	ladder := p.BoostLadder
	start, err := boost.FindConstantLevel(p, plan, ladder, p.TDTM)
	if err != nil {
		return nil, err
	}
	ctrl, err := newDarkGatesCtrl(p.TDTM, d.HoldBandC, d.ReArmBandC, start,
		len(ladder.Points)-1, len(plan.Placements))
	if err != nil {
		return nil, err
	}
	return &Prepared{Plan: plan, Ladder: ladder, Ctrl: ctrl, StartSteady: true}, nil
}

// Params implements Tunable.
func (d *DarkGates) Params() []Param {
	return []Param{
		{Name: "hold_band_c", Value: d.HoldBandC, Min: 0, Max: 2, Step: 0.1},
		{Name: "rearm_band_c", Value: d.ReArmBandC, Min: 0.2, Max: 5, Step: 0.4},
	}
}

// WithParams implements Tunable.
func (d *DarkGates) WithParams(vals map[string]float64) (Policy, error) {
	nd := *d
	for name, v := range vals {
		switch name {
		case "hold_band_c":
			if v < 0 {
				return nil, fmt.Errorf("%w: darkgates hold_band_c %g", ErrPolicy, v)
			}
			nd.HoldBandC = v
		case "rearm_band_c":
			if v <= 0 {
				return nil, fmt.Errorf("%w: darkgates rearm_band_c %g", ErrPolicy, v)
			}
			nd.ReArmBandC = v
		default:
			return nil, fmt.Errorf("%w: darkgates has no parameter %q", ErrPolicy, name)
		}
	}
	return &nd, nil
}

// darkGatesCtrl is DarkGates' decision loop: one closed boost loop per
// placement, with the gating overlay described on DarkGates.
type darkGatesCtrl struct {
	loops      []*boost.Closed
	thresholdC float64
	reArmC     float64
	levels     []int
	gated      []bool
}

func newDarkGatesCtrl(thresholdC, holdBandC, reArmC float64, start, maxLevel, placements int) (*darkGatesCtrl, error) {
	if placements < 1 {
		return nil, fmt.Errorf("%w: darkgates needs at least one placement", ErrPolicy)
	}
	c := &darkGatesCtrl{
		thresholdC: thresholdC,
		reArmC:     reArmC,
		levels:     make([]int, placements),
		gated:      make([]bool, placements),
	}
	for i := 0; i < placements; i++ {
		loop, err := boost.NewClosed(thresholdC, start, maxLevel)
		if err != nil {
			return nil, err
		}
		loop.HoldBandC = holdBandC
		c.loops = append(c.loops, loop)
		c.levels[i] = start
	}
	return c, nil
}

func (c *darkGatesCtrl) Start() Decision {
	for i, loop := range c.loops {
		c.levels[i] = loop.Current()
	}
	return Decision{Levels: c.levels, Gated: c.gated}
}

func (c *darkGatesCtrl) Next(obs Observation) Decision {
	for i, loop := range c.loops {
		peak := obs.PeakC
		if i < len(obs.PlacementPeakC) {
			peak = obs.PlacementPeakC[i]
		}
		if c.gated[i] {
			// A gated island holds its (bottom) level dark until it has
			// cooled by the re-arm band; its loop state is frozen too.
			if peak < c.thresholdC-c.reArmC {
				c.gated[i] = false
			}
			continue
		}
		c.levels[i] = loop.Next(peak)
		if c.levels[i] == 0 && peak >= c.thresholdC {
			// Bottomed out and still at the threshold: this island cannot
			// be saved by DVFS alone — gate it dark.
			c.gated[i] = true
		}
	}
	return Decision{Levels: c.levels, Gated: c.gated}
}

var (
	_ Policy  = Constant{}
	_ Tunable = (*Boost)(nil)
	_ Policy  = UnsafeBoost{}
	_ Policy  = TDPMap{}
	_ Policy  = (*Patterned)(nil)
	_ Tunable = (*DsRem)(nil)
	_ Tunable = (*DarkGates)(nil)
)
