package policy

import (
	"fmt"
	"math"

	"darksim/internal/trace"
)

// The assertion engine generalizes internal/verify's invariant idea from
// "check a rendered figure once" to "check every step of a simulated
// trace": assertions are declarative data — a predicate kind plus the
// signal and bounds it constrains — evaluated over trace.Step sequences,
// and a failure names the first violating step with its full context.

// Kind is the predicate family of an assertion.
type Kind string

const (
	// KindMax requires Signal ≤ Limit at every step.
	KindMax Kind = "max"
	// KindMin requires Signal ≥ Limit at every step.
	KindMin Kind = "min"
	// KindNonDecreasing requires Signal to never drop by more than Tol
	// between consecutive steps.
	KindNonDecreasing Kind = "non-decreasing"
	// KindLevelStep requires every placement's ladder level to move by
	// at most Limit levels between consecutive steps (DVFS transitions
	// walk the ladder; they do not teleport).
	KindLevelStep Kind = "level-step"
	// KindLevelRange requires every placement's level to lie in
	// [0, Limit].
	KindLevelRange Kind = "level-range"
	// KindPartition requires the per-placement power vector to sum to
	// the chip total within relative tolerance Tol: the power accounting
	// must conserve the partition.
	KindPartition Kind = "partition"
	// KindTSPBudget requires MaxCoreW ≤ (1+Slack)·TSPPerCoreW whenever
	// the peak temperature is at or above QualifyC. Below QualifyC the
	// chip has thermal headroom and may sprint above the steady-safe
	// budget (computational sprinting); at the trigger temperature with
	// the budget still exceeded, the policy is overcommitted.
	KindTSPBudget Kind = "tsp-budget"
)

// Signal names a scalar extracted from a trace step.
type Signal string

const (
	SignalPeakC    Signal = "peak_c"
	SignalTotalW   Signal = "total_w"
	SignalMaxCoreW Signal = "max_core_w"
	SignalGIPS     Signal = "gips"
	SignalTimeS    Signal = "time_s"
)

// Assertion is one declarative trace invariant.
type Assertion struct {
	// Name identifies the assertion in violations and tables; Pins
	// documents the paper property it encodes.
	Name string `json:"name"`
	Pins string `json:"pins,omitempty"`
	Kind Kind   `json:"kind"`
	// Signal is required by max/min/non-decreasing.
	Signal Signal `json:"signal,omitempty"`
	// Limit bounds max/min/level-step/level-range.
	Limit float64 `json:"limit,omitempty"`
	// Tol is the tolerance of non-decreasing (absolute) and partition
	// (relative).
	Tol float64 `json:"tol,omitempty"`
	// Slack and QualifyC parameterize tsp-budget.
	Slack    float64 `json:"slack,omitempty"`
	QualifyC float64 `json:"qualify_c,omitempty"`
}

// Violation reports an assertion failing at one step, with the trace
// context a postmortem needs.
type Violation struct {
	// Policy is filled in by the sandbox when checking a run.
	Policy    string  `json:"policy,omitempty"`
	Assertion string  `json:"assertion"`
	Pins      string  `json:"pins,omitempty"`
	Step      int     `json:"step"`
	TimeS     float64 `json:"time_s"`
	Detail    string  `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: step %d (t=%.3f s): %s", v.Assertion, v.Step, v.TimeS, v.Detail)
}

// Default bounds of the standard assertion set.
const (
	// TDTMSlackC is the overshoot allowance of never-exceed-tdtm: the
	// closed loop's 1 ms period oscillates within about 1 °C of the
	// threshold (the same 2 °C slack internal/verify's boost-energy
	// invariant grants Figure 11).
	TDTMSlackC = 2.0
	// DefaultTSPSlack is the sprint allowance of tsp-respected: once the
	// peak is past the TDTM band (TDTM + TDTMSlackC) the hottest core
	// may draw at most this fraction above the worst-case steady-safe
	// budget (one boost step of margin).
	DefaultTSPSlack = 0.25
)

// StandardAssertions is the sandbox's default invariant set for a
// platform with trigger temperature tdtmC and ladder levels 0..maxLevel:
// never exceed TDTM, respect the TSP budget at every step, keep ladder
// transitions legal, conserve the power partition, keep time monotone.
func StandardAssertions(tdtmC float64, maxLevel int) []Assertion {
	return []Assertion{
		{
			Name: "never-exceed-tdtm", Kind: KindMax, Signal: SignalPeakC,
			Limit: tdtmC + TDTMSlackC,
			Pins:  "the DTM trigger temperature bounds every transient (§2, T_DTM)",
		},
		{
			Name: "tsp-respected", Kind: KindTSPBudget,
			Slack: DefaultTSPSlack, QualifyC: tdtmC + TDTMSlackC,
			Pins: "per-core power within the thermal safe power budget once headroom is gone (§3.2, TSP)",
		},
		{
			Name: "ladder-step-legal", Kind: KindLevelStep, Limit: 1,
			Pins: "DVFS moves one 0.2 GHz ladder step per control period (§6)",
		},
		{
			Name: "ladder-range-legal", Kind: KindLevelRange, Limit: float64(maxLevel),
			Pins: "levels stay on the platform's v/f ladder (§5, Equation 2)",
		},
		{
			Name: "power-partition", Kind: KindPartition, Tol: 1e-9,
			Pins: "per-placement power sums to the chip total (Equation 1 accounting)",
		},
		{
			Name: "time-monotone", Kind: KindNonDecreasing, Signal: SignalTimeS,
			Pins: "control periods advance monotonically",
		},
	}
}

// signalOf extracts a Signal's value from a step.
func signalOf(s *trace.Step, sig Signal) (float64, error) {
	switch sig {
	case SignalPeakC:
		return s.PeakC, nil
	case SignalTotalW:
		return s.TotalW, nil
	case SignalMaxCoreW:
		return s.MaxCoreW, nil
	case SignalGIPS:
		return s.GIPS, nil
	case SignalTimeS:
		return s.TimeS, nil
	default:
		return 0, fmt.Errorf("%w: unknown signal %q", ErrPolicy, sig)
	}
}

// stepContext formats the full step record for a violation detail.
func stepContext(s *trace.Step) string {
	return fmt.Sprintf("peak %.3f °C, total %.2f W, max core %.4f W, %.1f GIPS, %d active, TSP %.4f W/core, levels %v, gated %v, dtm %v",
		s.PeakC, s.TotalW, s.MaxCoreW, s.GIPS, s.ActiveCores, s.TSPPerCoreW, s.Levels, s.Gated, s.DTM)
}

// Check evaluates every assertion over the trace and returns one
// Violation per failed assertion, naming the first violating step. A
// non-nil error means an assertion itself is malformed (unknown kind or
// signal), not that the trace failed.
func Check(steps []trace.Step, asserts []Assertion) ([]Violation, error) {
	var out []Violation
	for _, a := range asserts {
		v, err := checkOne(steps, a)
		if err != nil {
			return nil, fmt.Errorf("assertion %q: %w", a.Name, err)
		}
		if v != nil {
			out = append(out, *v)
		}
	}
	return out, nil
}

// checkOne walks the trace under a single assertion and returns the
// first violation, or nil.
func checkOne(steps []trace.Step, a Assertion) (*Violation, error) {
	fail := func(s *trace.Step, format string, args ...any) *Violation {
		return &Violation{
			Assertion: a.Name,
			Pins:      a.Pins,
			Step:      s.Index,
			TimeS:     s.TimeS,
			Detail:    fmt.Sprintf(format, args...) + " — " + stepContext(s),
		}
	}
	switch a.Kind {
	case KindMax, KindMin:
		for i := range steps {
			s := &steps[i]
			v, err := signalOf(s, a.Signal)
			if err != nil {
				return nil, err
			}
			if a.Kind == KindMax && v > a.Limit {
				return fail(s, "%s = %.4f exceeds limit %.4f", a.Signal, v, a.Limit), nil
			}
			if a.Kind == KindMin && v < a.Limit {
				return fail(s, "%s = %.4f below limit %.4f", a.Signal, v, a.Limit), nil
			}
		}
	case KindNonDecreasing:
		for i := 1; i < len(steps); i++ {
			s := &steps[i]
			cur, err := signalOf(s, a.Signal)
			if err != nil {
				return nil, err
			}
			prev, err := signalOf(&steps[i-1], a.Signal)
			if err != nil {
				return nil, err
			}
			if cur < prev-a.Tol {
				return fail(s, "%s dropped %.6f -> %.6f", a.Signal, prev, cur), nil
			}
		}
	case KindLevelStep:
		limit := int(a.Limit)
		for i := 1; i < len(steps); i++ {
			s := &steps[i]
			prev := &steps[i-1]
			if len(s.Levels) != len(prev.Levels) {
				return fail(s, "placement count changed %d -> %d", len(prev.Levels), len(s.Levels)), nil
			}
			for j := range s.Levels {
				if d := s.Levels[j] - prev.Levels[j]; d > limit || d < -limit {
					return fail(s, "placement %d level jumped %d -> %d (|Δ| > %d)",
						j, prev.Levels[j], s.Levels[j], limit), nil
				}
			}
		}
	case KindLevelRange:
		limit := int(a.Limit)
		for i := range steps {
			s := &steps[i]
			for j, l := range s.Levels {
				if l < 0 || l > limit {
					return fail(s, "placement %d level %d outside [0, %d]", j, l, limit), nil
				}
			}
		}
	case KindPartition:
		for i := range steps {
			s := &steps[i]
			sum := 0.0
			for _, w := range s.PlacementW {
				sum += w
			}
			tol := a.Tol * math.Max(1, math.Abs(s.TotalW))
			if d := math.Abs(sum - s.TotalW); d > tol {
				return fail(s, "placement powers sum to %.6f W, total records %.6f W (|Δ| = %.3g > %.3g)",
					sum, s.TotalW, d, tol), nil
			}
		}
	case KindTSPBudget:
		for i := range steps {
			s := &steps[i]
			if s.TSPPerCoreW <= 0 || s.PeakC < a.QualifyC {
				continue
			}
			bound := (1 + a.Slack) * s.TSPPerCoreW
			if s.MaxCoreW > bound {
				return fail(s, "max core power %.4f W exceeds TSP budget %.4f W (+%.0f%% sprint slack) at peak %.2f °C",
					s.MaxCoreW, bound, 100*a.Slack, s.PeakC), nil
			}
		}
	default:
		return nil, fmt.Errorf("%w: unknown assertion kind %q", ErrPolicy, a.Kind)
	}
	return nil, nil
}
