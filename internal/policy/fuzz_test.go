package policy

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"darksim/internal/trace"
)

// FuzzPolicyTrace drives the trace interchange format and the assertion
// engine with arbitrary bytes: any input ReadSteps accepts must be
// writable, the write must reread (scalars normalize to the writer's
// fixed precision, so one pass may round), rereading must be idempotent
// from then on, and the result must be checkable without a panic.
func FuzzPolicyTrace(f *testing.F) {
	var seed bytes.Buffer
	if err := trace.WriteSteps(&seed, genLegalTrace(rand.New(rand.NewSource(3)), 4, 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("# idx\ttime_s\n"))
	f.Add([]byte(""))

	asserts := StandardAssertions(testTDTM, testMaxLevel)
	f.Fuzz(func(t *testing.T, data []byte) {
		steps, err := trace.ReadSteps(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.WriteSteps(&buf, steps); err != nil {
			t.Fatalf("write accepted steps: %v", err)
		}
		norm, err := trace.ReadSteps(&buf)
		if err != nil {
			t.Fatalf("reread own output: %v", err)
		}
		buf.Reset()
		if err := trace.WriteSteps(&buf, norm); err != nil {
			t.Fatalf("rewrite normalized steps: %v", err)
		}
		again, err := trace.ReadSteps(&buf)
		if err != nil {
			t.Fatalf("reread normalized output: %v", err)
		}
		if !reflect.DeepEqual(norm, again) {
			t.Fatalf("round trip not idempotent:\n%#v\n%#v", norm, again)
		}
		if _, err := Check(steps, asserts); err != nil {
			t.Fatalf("check accepted steps: %v", err)
		}
	})
}
