package policy

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"darksim/internal/scenario"
)

// TestHeadToHead races the default trio plus the negative control on a
// pack scenario: the safe policies must pass every standard assertion
// and boost-unsafe must be caught with the violating step named.
func TestHeadToHead(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	pols := []Policy{NewConstant(), NewBoost(), NewDsRem(), NewUnsafeBoost()}
	outs, err := env.RunAll(context.Background(), pols, Options{Duration: 0.05}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(pols) {
		t.Fatalf("%d outcomes for %d policies", len(outs), len(pols))
	}
	for _, o := range outs[:3] {
		if !o.Passed() {
			t.Fatalf("safe policy %s failed: err=%q violations=%v", o.Policy, o.Err, o.Violations)
		}
		if o.AvgGIPS <= 0 || o.EnergyJ <= 0 || o.MaxTempC <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", o.Policy, o)
		}
	}
	unsafe := outs[3]
	if unsafe.Passed() {
		t.Fatal("boost-unsafe passed the assertions: the negative control is broken")
	}
	found := false
	for _, v := range unsafe.Violations {
		if v.Assertion == "never-exceed-tdtm" {
			found = true
			if v.Step <= 0 || v.Detail == "" {
				t.Fatalf("violation lacks step context: %+v", v)
			}
		}
	}
	if !found {
		t.Fatalf("boost-unsafe not caught by never-exceed-tdtm: %v", unsafe.Violations)
	}

	front := Frontier("t", outs)
	var buf bytes.Buffer
	if err := front.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "pass") {
		t.Fatalf("frontier lacks verdicts:\n%s", buf.String())
	}
	buf.Reset()
	if err := ViolationTable(outs).Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "never-exceed-tdtm") {
		t.Fatalf("violation table lacks the caught assertion:\n%s", buf.String())
	}
}

// TestRunAllConcurrent runs two head-to-head sets on one shared
// environment at the same time — the TSP calculator, scenario and
// thermal factory are shared state; the race detector in `make check`
// patrols this test.
func TestRunAllConcurrent(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	opt := Options{Duration: 0.02}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs, err := env.RunAll(context.Background(),
				[]Policy{NewConstant(), NewBoost(), NewDarkGates()}, opt, nil)
			if err == nil {
				for _, o := range outs {
					if o.Err != "" {
						err = context.DeadlineExceeded // any sentinel: fail below
					}
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent run %d: %v", i, err)
		}
	}
}

// TestRunAllCancel cancels a head-to-head mid-run: the call must return
// the context error promptly (the pack checks the context every control
// period) and leave the environment reusable.
func TestRunAllCancel(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pols := []Policy{NewConstant(), NewBoost(), NewDsRem(), NewDarkGates()}
	// The simulated horizon is orders of magnitude longer than the cancel
	// delay could ever let finish, so cancellation always lands mid-run.
	time.AfterFunc(50*time.Millisecond, cancel)
	_, err := env.RunAll(ctx, pols, Options{
		Duration:   60,
		Assertions: []Assertion{},
	}, nil)
	if err == nil {
		t.Fatal("cancelled RunAll returned no error")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}

	// The pool and environment stay usable after cancellation.
	out, err := env.Run(context.Background(), NewConstant(), Options{Duration: 0.01})
	if err != nil || out.Err != "" {
		t.Fatalf("environment unusable after cancel: %v %q", err, out.Err)
	}
}

// TestRunCancelledImmediately covers the pre-run cancellation path.
func TestRunCancelledImmediately(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := env.Run(ctx, NewConstant(), Options{Duration: 0.01}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

// TestDarkGatesController unit-tests the gating overlay: an island that
// bottoms out at the threshold is gated dark, stays frozen while hot,
// and re-arms only after cooling by the re-arm band.
func TestDarkGatesController(t *testing.T) {
	const thr = 80.0
	ctrl, err := newDarkGatesCtrl(thr, 1.0, 1.0, 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := ctrl.Start()
	if d.Levels[0] != 2 || d.Gated[0] || d.Gated[1] {
		t.Fatalf("start decision %+v", d)
	}
	hot := Observation{PeakC: thr + 3, PlacementPeakC: []float64{thr + 3, thr - 5}}
	// Island 0 is pinned hot: the loop walks 2 -> 1, then bottoms out at
	// 0 and gates in the same period.
	d = ctrl.Next(hot)
	if d.Levels[0] != 1 || d.Gated[0] {
		t.Fatalf("after first hot step: %+v", d)
	}
	d = ctrl.Next(hot)
	if d.Levels[0] != 0 || !d.Gated[0] {
		t.Fatalf("island 0 not gated at bottom level while hot: %+v", d)
	}
	if d.Gated[1] {
		t.Fatal("cool island 1 gated")
	}
	// Still hot: stays gated.
	d = ctrl.Next(hot)
	if !d.Gated[0] {
		t.Fatal("gated island re-armed while hot")
	}
	// Cooled to just inside the re-arm band: stays gated (strict <).
	d = ctrl.Next(Observation{PeakC: thr - 1, PlacementPeakC: []float64{thr - 1, thr - 5}})
	if !d.Gated[0] {
		t.Fatal("island re-armed at the band edge")
	}
	// Cooled past the band: re-arms.
	d = ctrl.Next(Observation{PeakC: thr - 1.5, PlacementPeakC: []float64{thr - 1.5, thr - 5}})
	if d.Gated[0] {
		t.Fatal("cooled island still gated")
	}
}

// TestGatedPlacementsAreDark checks the sandbox side of gating: a
// decision that gates a placement must zero its power and drop it from
// the active-core count in the trace.
func TestGatedPlacementsAreDark(t *testing.T) {
	env := testEnv(t, scenario.PackMultiInstancing)
	prep, err := TDPMap{}.Prepare(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	levels := make([]int, len(prep.Plan.Placements))
	for i := range levels {
		levels[i] = 3
	}
	gated := make([]bool, len(levels))
	gated[0] = true
	out, err := env.Run(context.Background(), preparedPolicy{&Prepared{
		Plan:   prep.Plan,
		Ladder: env.Platform.Ladder,
		Ctrl:   staticCtrl{Decision{Levels: levels, Gated: gated}},
	}}, Options{Duration: 0.005, ControlPeriod: 1e-3, EmergencyC: 1e9, Assertions: []Assertion{}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Err != "" {
		t.Fatal(out.Err)
	}
	for _, s := range out.Steps {
		if s.PlacementW[0] != 0 {
			t.Fatalf("gated placement drew %.3f W", s.PlacementW[0])
		}
		if s.PlacementW[1] <= 0 {
			t.Fatal("ungated placement drew no power")
		}
		want := 0
		for i, pl := range prep.Plan.Placements {
			if !gated[i] {
				want += len(pl.Cores)
			}
		}
		if s.ActiveCores != want {
			t.Fatalf("active %d, want %d", s.ActiveCores, want)
		}
	}
}

type staticCtrl struct{ d Decision }

func (s staticCtrl) Start() Decision           { return s.d }
func (s staticCtrl) Next(Observation) Decision { return s.d }

// preparedPolicy injects a hand-built Prepared into the sandbox.
type preparedPolicy struct{ prep *Prepared }

func (p preparedPolicy) Name() string { return "test-prepared" }
func (p preparedPolicy) Info() string { return "hand-built prepared policy" }
func (p preparedPolicy) Prepare(context.Context, *Env) (*Prepared, error) { return p.prep, nil }

// TestRunAllMatchesSoloRuns pins the lockstep pack's exactness contract:
// racing policies together on the shared batched solver must produce,
// per lane, exactly the outcome a solo Run produces — metrics, every
// trace step, and violations, bit for bit.
func TestRunAllMatchesSoloRuns(t *testing.T) {
	env := testEnv(t, scenario.PackSymmetric)
	pols := []Policy{NewConstant(), NewBoost(), NewDsRem(), NewDarkGates()}
	opt := Options{Duration: 0.03}
	packed, err := env.RunAll(context.Background(), pols, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, pol := range pols {
		solo, err := env.Run(context.Background(), pol, opt)
		if err != nil {
			t.Fatalf("%s solo: %v", pol.Name(), err)
		}
		if !reflect.DeepEqual(packed[i], solo) {
			t.Fatalf("%s: pack outcome diverges from solo run\npack: %+v\nsolo: %+v",
				pol.Name(), packed[i], solo)
		}
	}
}
