package policy

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"darksim/internal/scenario"
)

func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"pack": "dark_silicon_symmetric", "tdp": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"pack": "x"} garbage`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	s, err := Parse([]byte(`{"pack": "dark_silicon_symmetric", "tune": "boost"}`))
	if err != nil || s.Pack != scenario.PackSymmetric || s.Tune != "boost" {
		t.Fatalf("parse: %+v %v", s, err)
	}
}

func TestNormalizeValidation(t *testing.T) {
	inline := scenario.SymmetricSpec(16, "swaptions", 220)
	bad := []struct {
		name string
		s    Spec
	}{
		{"neither workload", Spec{}},
		{"both workloads", Spec{Pack: scenario.PackSymmetric, Scenario: &inline}},
		{"unknown pack", Spec{Pack: "nope"}},
		{"unknown policy", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "nope"}}}},
		{"bad param", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "boost", Params: map[string]float64{"nope": 1}}}}},
		{"param on untunable", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "constant", Params: map[string]float64{"x": 1}}}}},
		{"duplicate policy", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "boost"}, {Name: "boost"}}}},
		{"tune outside policies", Spec{Pack: scenario.PackSymmetric, Tune: "darkgates"}},
		{"tune untunable", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "constant"}}, Tune: "constant"}},
		{"negative duration", Spec{Pack: scenario.PackSymmetric, DurationS: -1}},
		{"huge duration", Spec{Pack: scenario.PackSymmetric, DurationS: 120}},
		{"huge budget", Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "boost"}}, Tune: "boost", Budget: 1000}},
	}
	for _, tc := range bad {
		if _, err := Normalize(tc.s); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}

	ns, err := Normalize(Spec{Pack: scenario.PackSymmetric})
	if err != nil {
		t.Fatal(err)
	}
	if ns.Pack != "" || ns.Scenario == nil {
		t.Fatalf("pack not resolved: %+v", ns)
	}
	if ns.DurationS != 0.5 || len(ns.Policies) != 3 {
		t.Fatalf("defaults not applied: %+v", ns)
	}
	if ns.Seed != 0 || ns.Budget != 0 {
		t.Fatalf("tuner knobs leak into a tune-less spec: %+v", ns)
	}
	nt, err := Normalize(Spec{Pack: scenario.PackSymmetric, Policies: []PolicyConfig{{Name: "boost"}}, Tune: "boost"})
	if err != nil {
		t.Fatal(err)
	}
	if nt.Seed != 1 || nt.Budget != 12 {
		t.Fatalf("tuner defaults not applied: %+v", nt)
	}
}

// TestHashIsContent: the hash keys on meaning — display name and
// pack-vs-inline spelling of the same workload hash identically, and a
// different workload hashes differently.
func TestHashIsContent(t *testing.T) {
	byPack, err := Hash(Spec{Name: "a", Pack: scenario.PackSymmetric})
	if err != nil {
		t.Fatal(err)
	}
	inline, err := scenario.PackByName(scenario.PackSymmetric)
	if err != nil {
		t.Fatal(err)
	}
	inline.Name = "renamed"
	byInline, err := Hash(Spec{Name: "b", Scenario: &inline})
	if err != nil {
		t.Fatal(err)
	}
	if byPack != byInline {
		t.Fatalf("pack and inline forms hash differently: %s %s", byPack, byInline)
	}
	other, err := Hash(Spec{Pack: scenario.PackAsymmetric})
	if err != nil {
		t.Fatal(err)
	}
	if other == byPack {
		t.Fatal("different workloads share a hash")
	}
}

func TestExecute(t *testing.T) {
	res, err := Execute(context.Background(), Spec{
		Pack:      scenario.PackSymmetric,
		Policies:  []PolicyConfig{{Name: "constant"}, {Name: "boost"}},
		DurationS: 0.02,
		Tune:      "boost",
		Budget:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("%d outcomes, want 2 policies + tuned", len(res.Outcomes))
	}
	if res.Tuning == nil || res.Tuning.Policy != "boost" {
		t.Fatalf("tuning record missing: %+v", res.Tuning)
	}
	tuned := res.Outcomes[2]
	if !strings.Contains(tuned.Policy, "(tuned)") || !tuned.Passed() {
		t.Fatalf("tuned outcome: %+v", tuned)
	}
	if res.Hash == "" || res.Violated() {
		t.Fatalf("hash=%q violated=%v", res.Hash, res.Violated())
	}
	var buf bytes.Buffer
	for _, tb := range res.Tables() {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Policy frontier") || !strings.Contains(out, "Tuning boost") {
		t.Fatalf("tables incomplete:\n%s", out)
	}
}

// TestExecuteDeterministic: two executions of one spec render identical
// tables — what the service cache relies on to be transparent.
func TestExecuteDeterministic(t *testing.T) {
	spec := Spec{
		Pack:      scenario.PackSymmetric,
		Policies:  []PolicyConfig{{Name: "boost"}},
		DurationS: 0.02,
		Tune:      "boost",
		Budget:    3,
		Seed:      7,
	}
	var renders []string
	for i := 0; i < 2; i++ {
		res, err := Execute(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tb := range res.Tables() {
			if err := tb.Render(&buf); err != nil {
				t.Fatal(err)
			}
		}
		renders = append(renders, buf.String())
	}
	if renders[0] != renders[1] {
		t.Fatalf("same spec rendered differently:\n%s\n---\n%s", renders[0], renders[1])
	}
}

func TestExecuteUnsafeCaught(t *testing.T) {
	res, err := Execute(context.Background(), Spec{
		Pack:      scenario.PackSymmetric,
		Policies:  []PolicyConfig{{Name: "boost-unsafe"}},
		DurationS: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violated() {
		t.Fatal("boost-unsafe not flagged through Execute")
	}
	var buf bytes.Buffer
	for _, tb := range res.Tables() {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "Assertion violations") {
		t.Fatalf("violation table missing:\n%s", buf.String())
	}
}
