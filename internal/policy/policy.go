// Package policy is the pluggable runtime-management sandbox of ROADMAP
// item 4: it promotes the paper's management mechanisms — TDP-guided
// mapping (§3.1/§4), DsRem's joint core-count/v/f heuristic, dark-silicon
// patterning and §6's closed-loop boosting — to one Policy interface,
// steps them head-to-head against the real transient thermal model on
// declarative scenario workloads, checks every run's trace with a
// declarative assertion engine (never exceed TDTM, TSP respected,
// frequency-ladder transitions legal, power partition conserved — the
// assertion-based DVS exploration methodology of Yu et al.), and tunes
// policy parameters per app mix with a deterministic hill climber.
//
// A DarkGates-style power-gating variant rounds out the families: per
// placement closed loops that power-gate an instance whose island stays
// at the thermal limit even at the lowest v/f level, re-arming it once
// the island has cooled.
package policy

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"darksim/internal/core"
	"darksim/internal/mapping"
	"darksim/internal/scenario"
	"darksim/internal/tsp"
	"darksim/internal/vf"
)

// ErrPolicy is wrapped by policy construction and preparation failures.
var ErrPolicy = errors.New("policy: invalid")

// Env is the environment a policy runs against: one compiled scenario —
// its platform (floorplan, thermal model, ladders, TDTM) and workload —
// plus a TSP calculator at the platform's TDTM for per-step budget
// accounting.
type Env struct {
	Scenario *scenario.Scenario
	Platform *core.Platform
	TSP      *tsp.Calculator
}

// NewEnv builds the sandbox environment for a compiled scenario.
func NewEnv(sc *scenario.Scenario) (*Env, error) {
	if sc == nil || sc.Platform == nil {
		return nil, fmt.Errorf("%w: nil scenario", ErrPolicy)
	}
	calc, err := tsp.New(sc.Platform.Thermal, sc.Platform.TDTM)
	if err != nil {
		return nil, err
	}
	return &Env{Scenario: sc, Platform: sc.Platform, TSP: calc}, nil
}

// Observation is what a policy sees at the top of each control period.
type Observation struct {
	// Step is the control-period index; TimeS its simulated start time.
	Step  int
	TimeS float64
	// PeakC is the chip peak core temperature; PlacementPeakC each
	// placement's own hottest core. The slice is owned by the sandbox
	// and must not be retained.
	PeakC          float64
	PlacementPeakC []float64
}

// Decision is a policy's control output for the coming period: one
// ladder level per placement plus an optional power-gating mask (nil
// means nothing gated). Both slices are owned by the controller; the
// sandbox copies what it records.
type Decision struct {
	Levels []int
	Gated  []bool
}

// Controller is a prepared policy's per-period decision loop.
// Implementations own their state and are used by one run at a time.
type Controller interface {
	// Start returns the initial decision without advancing state; the
	// sandbox uses it to pick the StartSteady operating point.
	Start() Decision
	// Next returns the decision for the coming control period.
	Next(obs Observation) Decision
}

// Prepared is a policy bound to an environment: the static plan it
// drives, the ladder its levels index into, and a fresh controller.
type Prepared struct {
	Plan   *mapping.Plan
	Ladder *vf.Ladder
	Ctrl   Controller
	// StartSteady starts the transient at the steady state of the
	// controller's initial decision rather than a cold chip.
	StartSteady bool
}

// Policy is one runtime-management policy: a mapping decision (which
// cores run what) plus a DVFS/boost/gating control loop, stepped against
// the transient thermal model by the sandbox.
type Policy interface {
	// Name is the registry identifier ("boost", "dsrem", ...).
	Name() string
	// Info is a one-line description for listings and tables.
	Info() string
	// Prepare binds the policy to an environment. Each call returns an
	// independent Prepared with fresh controller state.
	Prepare(ctx context.Context, env *Env) (*Prepared, error)
}

// Param describes one tunable knob: its current value and the box/step
// the tuner may move it in.
type Param struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Step  float64 `json:"step"`
}

// Tunable is a policy exposing parameters the hill-climbing tuner may
// search over.
type Tunable interface {
	Policy
	// Params returns the policy's knobs at their current values.
	Params() []Param
	// WithParams returns a copy of the policy with the named parameters
	// replaced; unknown names are errors, omitted ones keep defaults.
	WithParams(vals map[string]float64) (Policy, error)
}

// Registry returns one default-configured instance of every policy, in
// stable order. The safe policies come first; boost-unsafe — the
// negative control with its temperature check disabled — is last.
func Registry() []Policy {
	return []Policy{
		NewConstant(),
		NewBoost(),
		NewTDPMap(),
		NewPatterned(),
		NewDsRem(),
		NewDarkGates(),
		NewUnsafeBoost(),
	}
}

// Names returns the registered policy names in registry order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, p := range reg {
		names[i] = p.Name()
	}
	return names
}

// ByName returns a policy by registry name, with the given parameter
// overrides applied (nil/empty leaves defaults).
func ByName(name string, params map[string]float64) (Policy, error) {
	for _, p := range Registry() {
		if p.Name() != name {
			continue
		}
		if len(params) == 0 {
			return p, nil
		}
		t, ok := p.(Tunable)
		if !ok {
			keys := make([]string, 0, len(params))
			for k := range params {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("%w: policy %q has no tunable parameters (got %v)", ErrPolicy, name, keys)
		}
		return t.WithParams(params)
	}
	return nil, fmt.Errorf("%w: unknown policy %q (known: %v)", ErrPolicy, name, Names())
}
