// Package metrics provides the accounting types shared by the experiment
// harnesses: performance (GIPS), energy integration over transient runs,
// dark-silicon summaries, and small time-series utilities for the
// figure-style outputs.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Summary captures one operating point of the chip — the quantities every
// figure of the paper reports some subset of.
type Summary struct {
	Label       string
	ActiveCores int
	TotalCores  int
	GIPS        float64
	PowerW      float64
	PeakTempC   float64
}

// DarkCores returns the number of unpowered cores.
func (s Summary) DarkCores() int { return s.TotalCores - s.ActiveCores }

// DarkFraction returns the dark-silicon fraction in [0, 1].
func (s Summary) DarkFraction() float64 {
	if s.TotalCores == 0 {
		return 0
	}
	return float64(s.DarkCores()) / float64(s.TotalCores)
}

// ActivePercent returns the active-core percentage, the y-axis of
// Figures 5–7 and 9.
func (s Summary) ActivePercent() float64 { return 100 * (1 - s.DarkFraction()) }

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d/%d active (%.0f%% dark), %.1f GIPS, %.1f W, peak %.1f °C",
		s.Label, s.ActiveCores, s.TotalCores, 100*s.DarkFraction(), s.GIPS, s.PowerW, s.PeakTempC)
}

// EnergyMeter integrates power over time (rectangle rule, matching the
// fixed-step transient simulator).
type EnergyMeter struct {
	joules  float64
	seconds float64
}

// ErrMeter is returned for non-physical meter input.
var ErrMeter = errors.New("metrics: invalid meter input")

// Add accumulates powerW over dt seconds.
func (e *EnergyMeter) Add(dt, powerW float64) error {
	if dt < 0 || powerW < 0 || math.IsNaN(dt) || math.IsNaN(powerW) {
		return fmt.Errorf("%w: dt=%g power=%g", ErrMeter, dt, powerW)
	}
	e.joules += dt * powerW
	e.seconds += dt
	return nil
}

// TotalJ returns the accumulated energy in joules.
func (e *EnergyMeter) TotalJ() float64 { return e.joules }

// TotalKJ returns the accumulated energy in kilojoules (Figure 14's unit).
func (e *EnergyMeter) TotalKJ() float64 { return e.joules / 1e3 }

// Elapsed returns the integrated time in seconds.
func (e *EnergyMeter) Elapsed() float64 { return e.seconds }

// AveragePowerW returns the mean power over the integrated interval.
func (e *EnergyMeter) AveragePowerW() float64 {
	if e.seconds == 0 {
		return 0
	}
	return e.joules / e.seconds
}

// Series is a sampled time series (or any x/y series for figure output).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one sample.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.X) }

// Mean returns the mean of Y (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// Max returns the maximum of Y (−Inf when empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, y := range s.Y {
		if y > m {
			m = y
		}
	}
	return m
}

// Min returns the minimum of Y (+Inf when empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, y := range s.Y {
		if y < m {
			m = y
		}
	}
	return m
}

// Downsample returns a series with at most n points, keeping every k-th
// sample (and always the last). It is used to print long transients
// compactly.
func (s *Series) Downsample(n int) Series {
	if n <= 0 || s.Len() <= n {
		return *s
	}
	step := (s.Len() + n - 1) / n
	out := Series{Name: s.Name}
	for i := 0; i < s.Len(); i += step {
		out.Append(s.X[i], s.Y[i])
	}
	if last := s.Len() - 1; out.X[len(out.X)-1] != s.X[last] {
		out.Append(s.X[last], s.Y[last])
	}
	return out
}
