package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSummaryAccounting(t *testing.T) {
	s := Summary{Label: "x", ActiveCores: 60, TotalCores: 100, GIPS: 123, PowerW: 185, PeakTempC: 79}
	if s.DarkCores() != 40 {
		t.Errorf("dark = %d", s.DarkCores())
	}
	if math.Abs(s.DarkFraction()-0.4) > 1e-12 {
		t.Errorf("dark fraction = %v", s.DarkFraction())
	}
	if math.Abs(s.ActivePercent()-60) > 1e-12 {
		t.Errorf("active %% = %v", s.ActivePercent())
	}
	if !strings.Contains(s.String(), "40% dark") {
		t.Errorf("String = %q", s.String())
	}
	var empty Summary
	if empty.DarkFraction() != 0 {
		t.Errorf("empty summary dark fraction = %v", empty.DarkFraction())
	}
}

func TestEnergyMeter(t *testing.T) {
	var e EnergyMeter
	if err := e.Add(1.0, 100); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(0.5, 200); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.TotalJ()-200) > 1e-12 {
		t.Errorf("TotalJ = %v", e.TotalJ())
	}
	if math.Abs(e.TotalKJ()-0.2) > 1e-12 {
		t.Errorf("TotalKJ = %v", e.TotalKJ())
	}
	if math.Abs(e.Elapsed()-1.5) > 1e-12 {
		t.Errorf("Elapsed = %v", e.Elapsed())
	}
	if math.Abs(e.AveragePowerW()-200.0/1.5) > 1e-9 {
		t.Errorf("AvgPower = %v", e.AveragePowerW())
	}
	var zero EnergyMeter
	if zero.AveragePowerW() != 0 {
		t.Errorf("empty meter avg = %v", zero.AveragePowerW())
	}
}

func TestEnergyMeterErrors(t *testing.T) {
	var e EnergyMeter
	if err := e.Add(-1, 5); err == nil {
		t.Errorf("negative dt should error")
	}
	if err := e.Add(1, -5); err == nil {
		t.Errorf("negative power should error")
	}
	if err := e.Add(math.NaN(), 5); err == nil {
		t.Errorf("NaN should error")
	}
}

func TestSeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 {
		t.Errorf("empty mean = %v", s.Mean())
	}
	if !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Errorf("empty extremes wrong")
	}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Max() != 81 || s.Min() != 0 {
		t.Errorf("extremes = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Mean()-28.5) > 1e-12 {
		t.Errorf("Mean = %v", s.Mean())
	}
}

func TestDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 1000; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(100)
	if d.Len() > 101 {
		t.Errorf("downsampled len = %d", d.Len())
	}
	// Last point preserved.
	if d.X[len(d.X)-1] != 999 {
		t.Errorf("last x = %v", d.X[len(d.X)-1])
	}
	// No-op cases.
	small := Series{X: []float64{1, 2}, Y: []float64{3, 4}}
	if got := small.Downsample(10); got.Len() != 2 {
		t.Errorf("small downsample changed length")
	}
	if got := small.Downsample(0); got.Len() != 2 {
		t.Errorf("n=0 should be a no-op")
	}
}
