package thermal

import (
	"fmt"
	"testing"

	"darksim/internal/floorplan"
)

// benchThermalSolve measures a cold steady-state solve — model
// construction, factorization/preconditioning and one solve — on an
// n×n-core platform with the given solver path forced. The cold solve is
// the honest cost comparison: the dense path pays an O(n³) factorization
// the sparse path replaces with an O(nnz) preconditioner plus a few dozen
// CG iterations.
func benchThermalSolve(b *testing.B, side int, k SolverKind) {
	fp, err := floorplan.NewGrid(side, side, 5.1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(fp.DieW, fp.DieH, side, side)
	cfg.Solver = k
	p := make([]float64, side*side)
	for i := range p {
		p[i] = 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewModel(fp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.SteadyState(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThermalSolveDense(b *testing.B) {
	for _, side := range []int{10, 24} {
		b.Run(fmt.Sprintf("cores=%d", side*side), func(b *testing.B) {
			benchThermalSolve(b, side, SolverDense)
		})
	}
}

func BenchmarkThermalSolveSparse(b *testing.B) {
	for _, side := range []int{10, 24} {
		b.Run(fmt.Sprintf("cores=%d", side*side), func(b *testing.B) {
			benchThermalSolve(b, side, SolverSparse)
		})
	}
}
