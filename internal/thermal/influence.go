package thermal

import (
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"darksim/internal/linalg"
	"darksim/internal/runner"
)

// influenceDefaultPanel is the block width used by the sparse influence
// fan-out when Config.InfluencePanel is zero: 16 right-hand sides share
// each CSR traversal and preconditioner sweep. The blocked solver
// performs each column's arithmetic in the per-column order, so among
// blocked widths (>1) the width changes throughput only, never results.
const influenceDefaultPanel = 16

// influenceMaxMeanBand caps the envelope Cholesky preconditioner the
// blocked fan-out amortizes across its columns: if the profile-reordered
// matrix stores more than this many factor entries per row on average,
// the exact factor would cost more than it saves and the blocked path
// falls back to the model's incomplete factorization.
const influenceMaxMeanBand = 256

// defaultInfluenceCacheCap bounds the process-wide influence cache. An
// influence matrix is nb×nb float64s (8 MB at 1024 cores), so a handful
// of entries covers every platform a bench run or service instance
// cycles through without unbounded growth.
const defaultInfluenceCacheCap = 8

// influenceSolveHook, when non-nil, is invoked once per influence column
// before its solve and may inject a failure or observe progress. It
// exists for tests (retry-after-failure, cancellation) and must stay nil
// in production code.
var influenceSolveHook func(col int) error

// CacheStats is a snapshot of the process-wide influence cache.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

// infCache is the process-wide influence cache. The influence matrix is
// a pure function of the stack configuration, the resolved solver path
// and the floorplan geometry, so models built from equal platforms — a
// service request, a CLI figure and a bench iteration — share one
// computation keyed by content hash. Entries are immutable matrices;
// eviction is LRU.
var infCache = struct {
	sync.Mutex
	cap    int
	order  *list.List // front = most recently used; values are *infEntry
	byKey  map[uint64]*list.Element
	hits   uint64
	misses uint64
}{cap: defaultInfluenceCacheCap, order: list.New(), byKey: make(map[uint64]*list.Element)}

type infEntry struct {
	key uint64
	mat *linalg.Matrix
}

// SetInfluenceCacheCap resizes the process-wide influence cache,
// evicting least-recently-used entries as needed. A non-positive cap
// disables caching entirely. It returns the previous cap.
func SetInfluenceCacheCap(n int) int {
	infCache.Lock()
	defer infCache.Unlock()
	prev := infCache.cap
	infCache.cap = n
	for infCache.order.Len() > 0 && infCache.order.Len() > n {
		evictOldestLocked()
	}
	return prev
}

// ResetInfluenceCache drops every cached influence matrix and zeroes the
// hit/miss counters. Benchmarks use it to measure cold builds honestly.
func ResetInfluenceCache() {
	infCache.Lock()
	defer infCache.Unlock()
	infCache.order.Init()
	infCache.byKey = make(map[uint64]*list.Element)
	infCache.hits, infCache.misses = 0, 0
}

// InfluenceCacheStats snapshots the process-wide influence cache
// counters; the warm-path assertion in `make check` relies on Hits
// moving while the model's solve counter does not.
func InfluenceCacheStats() CacheStats {
	infCache.Lock()
	defer infCache.Unlock()
	return CacheStats{Hits: infCache.hits, Misses: infCache.misses, Entries: infCache.order.Len()}
}

func evictOldestLocked() {
	el := infCache.order.Back()
	if el == nil {
		return
	}
	infCache.order.Remove(el)
	delete(infCache.byKey, el.Value.(*infEntry).key)
}

func cacheGet(key uint64) (*linalg.Matrix, bool) {
	infCache.Lock()
	defer infCache.Unlock()
	if el, ok := infCache.byKey[key]; ok {
		infCache.order.MoveToFront(el)
		infCache.hits++
		return el.Value.(*infEntry).mat, true
	}
	infCache.misses++
	return nil, false
}

func cachePut(key uint64, mat *linalg.Matrix) {
	infCache.Lock()
	defer infCache.Unlock()
	if infCache.cap <= 0 {
		return
	}
	if el, ok := infCache.byKey[key]; ok {
		el.Value.(*infEntry).mat = mat
		infCache.order.MoveToFront(el)
		return
	}
	for infCache.order.Len() >= infCache.cap {
		evictOldestLocked()
	}
	infCache.byKey[key] = infCache.order.PushFront(&infEntry{key: key, mat: mat})
}

// influenceKey content-hashes everything the influence matrix depends
// on: the layer stack, the boundary conditions, the resolved solve path
// (dense Cholesky, per-column IC(0) CG and blocked envelope-
// preconditioned CG round differently in the last bits, so the three
// paths must not share entries) and the floorplan geometry. The panel
// width itself is deliberately excluded: every blocked width performs
// each column's arithmetic in the same per-column order, so all widths
// > 1 produce bit-identical matrices. FNV-64a keeps the key dependency-
// free; the input is structured (length-prefixed fields), not attacker-
// controlled.
func (m *Model) influenceKey() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	wi := func(v int) { w64(uint64(int64(v))) }

	wi(len(m.cfg.Layers))
	for _, l := range m.cfg.Layers {
		wf(l.Thickness)
		wf(l.Material.Conductivity)
		wf(l.Material.VolumetricHeat)
		wf(l.W)
		wf(l.H)
		wi(l.Nx)
		wi(l.Ny)
	}
	wf(m.cfg.ConvectionR)
	wf(m.cfg.ConvectionC)
	wf(m.cfg.AmbientC)
	switch {
	case !m.steady.sparse():
		wi(0)
	case m.panelWidth() > 1:
		wi(2)
	default:
		wi(1)
	}
	wf(m.fp.DieW)
	wf(m.fp.DieH)
	wi(len(m.fp.Blocks))
	for _, b := range m.fp.Blocks {
		wf(b.X)
		wf(b.Y)
		wf(b.W)
		wf(b.H)
	}
	return h.Sum64()
}

// InfluenceMatrix returns the block×block matrix B with B[i][j] = steady-
// state temperature rise of block i per watt in block j (K/W). By
// linearity, T = B·P + Tambient-field, which is the foundation of the
// TSP computation.
//
// Lookup order: the model's own memo, then the process-wide cache (so a
// freshly constructed model for an already-seen platform pays nothing),
// then a parallel computation — blocked multi-RHS CG on the sparse path,
// per-column solves on the dense one. A failed computation is NOT
// memoized: the next call retries, so a transient CG failure cannot
// poison the model. The context cancels the column fan-out.
func (m *Model) InfluenceMatrix(ctx context.Context) (*linalg.Matrix, error) {
	m.infMu.Lock()
	defer m.infMu.Unlock()
	if m.influence != nil {
		return m.influence, nil
	}
	if !m.infKeyed {
		m.infKey = m.influenceKey()
		m.infKeyed = true
	}
	if mat, ok := cacheGet(m.infKey); ok {
		m.influence = mat
		return mat, nil
	}
	mat, err := m.computeInfluence(ctx)
	if err != nil {
		return nil, err
	}
	m.influence = mat
	cachePut(m.infKey, mat)
	return mat, nil
}

// panelWidth resolves Config.InfluencePanel: 0 means the default width,
// 1 forces the per-column path, anything larger is the block width.
func (m *Model) panelWidth() int {
	if m.cfg.InfluencePanel == 0 {
		return influenceDefaultPanel
	}
	return m.cfg.InfluencePanel
}

// computeInfluence builds the influence matrix. Columns (or panels of
// columns) are independent solves against the shared immutable steady-
// state factorization and run in parallel on the runner pool. The dense
// path keeps the historical one-column-per-item shape (bit-identical to
// every release since the golden corpus was frozen); the sparse path
// solves panels of panelWidth right-hand sides through the blocked CG,
// which shares matrix and preconditioner traversals across the panel
// while performing each column's arithmetic in the per-column order.
func (m *Model) computeInfluence(ctx context.Context) (*linalg.Matrix, error) {
	nb := len(m.blockCells)
	inf := linalg.NewMatrix(nb, nb)
	var err error
	if m.steady.sparse() && m.panelWidth() > 1 {
		err = m.influenceBlocked(ctx, inf)
	} else {
		err = m.influenceColumns(ctx, inf)
	}
	if err != nil {
		return nil, err
	}
	return inf, nil
}

// fillColumnRHS writes the unit-power node loading of block j into rhs.
func (m *Model) fillColumnRHS(rhs linalg.Vector, j int) {
	rhs.Fill(0)
	for _, s := range m.blockCells[j] {
		rhs[s.node] = s.fraction
	}
}

// readColumn reduces the solved node field of column j to per-block
// readout temperatures.
func (m *Model) readColumn(inf *linalg.Matrix, nodeT linalg.Vector, j int) {
	for i := 0; i < inf.Rows; i++ {
		var t float64
		for _, s := range m.blockCells[i] {
			t += nodeT[s.node] * s.weight
		}
		inf.Set(i, j, t)
	}
}

// influenceColumns is the one-RHS-at-a-time fan-out: each runner item
// solves a single column. RHS buffers are recycled across solves; the
// Put is deferred so an errored solve cannot leak its buffer.
func (m *Model) influenceColumns(ctx context.Context, inf *linalg.Matrix) error {
	nb := len(m.blockCells)
	var rhsPool sync.Pool
	rhsPool.New = func() any {
		v := linalg.NewVector(len(m.cells))
		return &v
	}
	_, err := runner.MapN(ctx, nb, runner.Options{}, func(ctx context.Context, j int) (struct{}, error) {
		if err := ctx.Err(); err != nil {
			return struct{}{}, err
		}
		if h := influenceSolveHook; h != nil {
			if err := h(j); err != nil {
				return struct{}{}, fmt.Errorf("influence column %d: %w", j, err)
			}
		}
		vp := rhsPool.Get().(*linalg.Vector)
		defer rhsPool.Put(vp)
		rhs := *vp
		m.fillColumnRHS(rhs, j)
		if err := m.steady.solveInPlace(rhs); err != nil {
			return struct{}{}, fmt.Errorf("influence column %d: %w", j, err)
		}
		m.readColumn(inf, rhs, j)
		return struct{}{}, nil
	})
	return err
}

// blockWork is one goroutine's reusable blocked-CG state: the solver
// (which owns its panel scratch) plus RHS and solution columns.
type blockWork struct {
	s    *linalg.CGBlockSolver
	b, x []linalg.Vector
}

// influenceBlocked is the multi-RHS fan-out: each runner item solves a
// panel of up to panelWidth columns through one CGBlockSolver, sharing
// every CSR traversal and preconditioner sweep across the panel. The
// many-column workload also pays for a preconditioner no single solve
// could justify: an exact envelope Cholesky of the profile-reordered
// system, factored once here and shared (it is immutable) by every
// panel worker, under which each column converges in one or two CG
// iterations. Matrices whose envelope is too wide fall back to the
// model's incomplete factorization. Failed panels surface the lowest
// failing original column, matching the per-column path's error shape;
// runner.MapN then keeps the lowest-indexed panel's error, so the
// reported column is deterministic.
func (m *Model) influenceBlocked(ctx context.Context, inf *linalg.Matrix) error {
	nb := len(m.blockCells)
	k := m.panelWidth()
	if k > nb {
		k = nb
	}
	panels := (nb + k - 1) / k
	prec := m.steady.prec
	if env, err := linalg.NewEnvelopeCholesky(m.steady.a, linalg.ProfileOrder(m.steady.a), influenceMaxMeanBand); err == nil {
		prec = env
	}
	var pool sync.Pool
	pool.New = func() any {
		s, err := linalg.NewCGBlockSolver(m.steady.a, k, linalg.CGOptions{Tol: cgTol, Precond: prec})
		if err != nil {
			// Width and options are validated; this cannot fail.
			panic(fmt.Sprintf("thermal: block CG construction: %v", err))
		}
		w := &blockWork{s: s, b: make([]linalg.Vector, k), x: make([]linalg.Vector, k)}
		for c := 0; c < k; c++ {
			w.b[c] = linalg.NewVector(len(m.cells))
			w.x[c] = linalg.NewVector(len(m.cells))
		}
		return w
	}
	_, err := runner.MapN(ctx, panels, runner.Options{}, func(ctx context.Context, p int) (struct{}, error) {
		if err := ctx.Err(); err != nil {
			return struct{}{}, err
		}
		j0 := p * k
		ka := k
		if j0+ka > nb {
			ka = nb - j0
		}
		if h := influenceSolveHook; h != nil {
			for c := 0; c < ka; c++ {
				if err := h(j0 + c); err != nil {
					return struct{}{}, fmt.Errorf("influence column %d: %w", j0+c, err)
				}
			}
		}
		w := pool.Get().(*blockWork)
		defer pool.Put(w)
		for c := 0; c < ka; c++ {
			m.fillColumnRHS(w.b[c], j0+c)
			w.x[c].Fill(0)
		}
		stats, err := w.s.SolveBlock(w.b[:ka], w.x[:ka])
		for _, st := range stats {
			m.steady.record(st)
		}
		if err != nil {
			var ce *linalg.ColumnError
			if errors.As(err, &ce) {
				return struct{}{}, fmt.Errorf("influence column %d: thermal: sparse solve: %w", j0+ce.Col, ce.Err)
			}
			return struct{}{}, fmt.Errorf("influence columns [%d,%d): %w", j0, j0+ka, err)
		}
		for c := 0; c < ka; c++ {
			m.readColumn(inf, w.x[c], j0+c)
		}
		return struct{}{}, nil
	})
	return err
}
