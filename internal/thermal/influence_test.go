package thermal

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"darksim/internal/floorplan"
	"darksim/internal/linalg"
)

// sparseModelWithPanel builds the 100-core platform on the forced sparse
// path with the given influence panel width.
func sparseModelWithPanel(t testing.TB, panel int) *Model {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(fp.DieW, fp.DieH, 10, 10)
	cfg.Solver = SolverSparse
	cfg.InfluencePanel = panel
	m, err := NewModel(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestInfluenceRetryAfterFailure is the regression test for the old
// sync.Once poisoning: a transient solve failure must not be memoized —
// the next InfluenceMatrix call retries and succeeds.
func TestInfluenceRetryAfterFailure(t *testing.T) {
	ResetInfluenceCache()
	defer func() { influenceSolveHook = nil }()

	m := model16(t)
	boom := errors.New("injected solve failure")
	influenceSolveHook = func(col int) error {
		if col == 7 {
			return boom
		}
		return nil
	}
	_, err := m.InfluenceMatrix(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "influence column 7") {
		t.Errorf("error %q does not name the failing column", err)
	}
	// The failure must not have been cached anywhere.
	if st := InfluenceCacheStats(); st.Entries != 0 {
		t.Fatalf("failed computation landed in the cache: %+v", st)
	}
	influenceSolveHook = nil
	inf, err := m.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if inf == nil || inf.Rows != 100 {
		t.Fatalf("retry returned bad matrix %v", inf)
	}
}

// TestInfluenceBlockedFailureNamesColumn pins the blocked path's error
// shape: the reported column is the original (global) column index, not
// the panel-local one.
func TestInfluenceBlockedFailureNamesColumn(t *testing.T) {
	ResetInfluenceCache()
	defer func() { influenceSolveHook = nil }()

	m := sparseModelWithPanel(t, 8)
	boom := errors.New("injected solve failure")
	influenceSolveHook = func(col int) error {
		if col == 42 {
			return boom
		}
		return nil
	}
	_, err := m.InfluenceMatrix(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("injected failure not surfaced: %v", err)
	}
	if !strings.Contains(err.Error(), "influence column 42") {
		t.Errorf("error %q does not name global column 42", err)
	}
}

// TestInfluenceCancelStopsWork verifies the context actually reaches the
// column fan-out: cancelling mid-build must abort the remaining columns
// and surface context.Canceled, and a later call with a live context
// must recover.
func TestInfluenceCancelStopsWork(t *testing.T) {
	if runtime.NumCPU() >= 100 {
		t.Skip("worker pool as wide as the column count; cancellation cannot save work")
	}
	ResetInfluenceCache()
	defer func() { influenceSolveHook = nil }()

	// Panel width 1 keeps one column per work item, the finest
	// cancellation granularity.
	m := sparseModelWithPanel(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	influenceSolveHook = func(col int) error {
		if calls.Add(1) == 3 {
			cancel()
		}
		return nil
	}
	_, err := m.InfluenceMatrix(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v", err)
	}
	if n := calls.Load(); n >= 100 {
		t.Errorf("all %d columns solved despite cancellation", n)
	}
	influenceSolveHook = nil
	if _, err := m.InfluenceMatrix(context.Background()); err != nil {
		t.Fatalf("build after cancellation: %v", err)
	}
}

// TestInfluenceBlockedMatchesColumns is the differential between the two
// sparse fan-outs. The per-column path iterates IC(0)-preconditioned CG
// while the blocked path amortizes an exact envelope factorization, so
// the two agree to solver tolerance (1e-9 relative), not bitwise. Among
// themselves, blocked widths must be bit-identical — each column's
// arithmetic is performed in the same per-column order at every width —
// which is what lets the cache key ignore the panel width.
func TestInfluenceBlockedMatchesColumns(t *testing.T) {
	ResetInfluenceCache()
	cols := sparseModelWithPanel(t, 1)
	ref, err := cols.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Drop the cached entry so every build below is a real computation.
	ResetInfluenceCache()
	var blkRef *linalg.Matrix
	for _, panel := range []int{2, 7, 16, 100, 200} {
		blk := sparseModelWithPanel(t, panel)
		got, err := blk.InfluenceMatrix(context.Background())
		if err != nil {
			t.Fatalf("panel %d: %v", panel, err)
		}
		for i := 0; i < ref.Rows; i++ {
			for j := 0; j < ref.Cols; j++ {
				want := ref.At(i, j)
				if diff := math.Abs(got.At(i, j) - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("panel %d: influence differs at (%d,%d): %v vs %v",
						panel, i, j, got.At(i, j), want)
				}
				if blkRef != nil && got.At(i, j) != blkRef.At(i, j) {
					t.Fatalf("panel %d: blocked widths disagree at (%d,%d): %v vs %v",
						panel, i, j, got.At(i, j), blkRef.At(i, j))
				}
			}
		}
		if blkRef == nil {
			blkRef = got
		}
		ResetInfluenceCache()
	}
}

// TestInfluenceWarmPathZeroSolves is the cache contract `make check`
// relies on: a second model of an identical platform takes the influence
// matrix from the process-wide cache without a single linear solve.
func TestInfluenceWarmPathZeroSolves(t *testing.T) {
	ResetInfluenceCache()
	cold := sparseModelWithPanel(t, 0)
	first, err := cold.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := InfluenceCacheStats()
	if st.Misses != 1 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("after cold build: %+v", st)
	}

	warm := sparseModelWithPanel(t, 0)
	before := warm.SolverStats().Solves
	second, err := warm.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Errorf("warm model did not receive the cached matrix")
	}
	if after := warm.SolverStats().Solves; after != before {
		t.Errorf("warm influence path performed %d solves, want 0", after-before)
	}
	if st := InfluenceCacheStats(); st.Hits != 1 {
		t.Errorf("cache hits = %d, want 1 (%+v)", st.Hits, st)
	}
}

// TestInfluenceCacheKey checks the content hash separates what it must
// (boundary conditions, solver path, floorplan) and unifies what it may
// (panel width).
func TestInfluenceCacheKey(t *testing.T) {
	base := sparseModelWithPanel(t, 0)
	widened := sparseModelWithPanel(t, 4)
	if base.influenceKey() != widened.influenceKey() {
		t.Errorf("panel width changed the cache key")
	}
	dense := modelWithSolver(t, SolverDense)
	if base.influenceKey() == dense.influenceKey() {
		t.Errorf("solver path does not separate cache keys")
	}
	legacy := sparseModelWithPanel(t, 1)
	if base.influenceKey() == legacy.influenceKey() {
		t.Errorf("per-column and blocked paths share a cache key")
	}
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	hot := DefaultConfig(fp.DieW, fp.DieH, 10, 10)
	hot.Solver = SolverSparse
	hot.AmbientC += 1
	mh, err := NewModel(fp, hot)
	if err != nil {
		t.Fatal(err)
	}
	if base.influenceKey() == mh.influenceKey() {
		t.Errorf("ambient temperature does not separate cache keys")
	}
	small, err := floorplan.NewGrid(9, 9, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	scfg := DefaultConfig(small.DieW, small.DieH, 9, 9)
	scfg.Solver = SolverSparse
	ms, err := NewModel(small, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.influenceKey() == ms.influenceKey() {
		t.Errorf("floorplan does not separate cache keys")
	}
}

// TestInfluenceCacheEviction exercises the LRU bound and the disable
// switch.
func TestInfluenceCacheEviction(t *testing.T) {
	ResetInfluenceCache()
	prev := SetInfluenceCacheCap(1)
	defer SetInfluenceCacheCap(prev)

	builds := []func(testing.TB, int) *Model{
		sparseModelWithPanel,
		func(t testing.TB, panel int) *Model {
			fp, err := floorplan.NewGrid(9, 9, 5.1)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig(fp.DieW, fp.DieH, 9, 9)
			cfg.Solver = SolverSparse
			cfg.InfluencePanel = panel
			m, err := NewModel(fp, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
	for _, build := range builds {
		if _, err := build(t, 0).InfluenceMatrix(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := InfluenceCacheStats(); st.Entries != 1 || st.Misses != 2 {
		t.Fatalf("cap-1 cache after two platforms: %+v", st)
	}
	// The first platform was evicted by the second: rebuilding it misses.
	if _, err := builds[0](t, 0).InfluenceMatrix(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := InfluenceCacheStats(); st.Misses != 3 {
		t.Fatalf("evicted platform should miss: %+v", st)
	}

	// Cap 0 disables caching entirely.
	ResetInfluenceCache()
	SetInfluenceCacheCap(0)
	if _, err := builds[0](t, 0).InfluenceMatrix(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := InfluenceCacheStats(); st.Entries != 0 {
		t.Fatalf("disabled cache stored an entry: %+v", st)
	}
}

func TestInfluencePanelValidate(t *testing.T) {
	cfg := DefaultConfig(0.02, 0.02, 4, 4)
	cfg.InfluencePanel = -1
	if err := cfg.Validate(); err == nil {
		t.Errorf("negative panel width should fail validation")
	}
	for _, p := range []int{0, 1, 16} {
		cfg.InfluencePanel = p
		if err := cfg.Validate(); err != nil {
			t.Errorf("panel width %d rejected: %v", p, err)
		}
	}
}

// ExampleInfluenceCacheStats documents the warm-path contract.
func ExampleInfluenceCacheStats() {
	ResetInfluenceCache()
	fp, _ := floorplan.NewGrid(4, 4, 5.1)
	cfg := DefaultConfig(fp.DieW, fp.DieH, 4, 4)
	for i := 0; i < 2; i++ {
		m, _ := NewModel(fp, cfg)
		m.InfluenceMatrix(context.Background())
	}
	st := InfluenceCacheStats()
	fmt.Printf("hits=%d misses=%d entries=%d\n", st.Hits, st.Misses, st.Entries)
	// Output: hits=1 misses=1 entries=1
}
