// Package thermal implements a HotSpot-style compact thermal model for
// manycore dies: the chip stack (silicon die, thermal interface material,
// heat spreader, heat sink) is discretized into per-layer grids of RC
// cells, connected by lateral and vertical thermal conductances, with a
// convection boundary to the ambient.
//
// The conductance matrix is assembled directly in CSR form; steady state
// solves the SPD linear system G·T = P (+ ambient coupling) behind a
// solver seam chosen at construction — dense Cholesky for small stacks,
// IC(0)-preconditioned conjugate gradients for large ones. The transient
// solver uses unconditionally stable implicit Euler, re-using one cached
// factorization (or preconditioner) per step size. Both expose per-core
// (floorplan block) temperatures.
//
// The default configuration reproduces the paper's §2.1 HotSpot setup:
// 0.15 mm die, k_Si = 100 W/(m·K), c_Si = 1.75e6 J/(m³·K); 20 µm interface
// material with k = 4 and c = 4e6; 3×3 cm × 1 mm copper spreader and
// 6×6 cm × 6.9 mm sink with k = 400 and c = 3.55e6; convection resistance
// 0.1 K/W and capacitance 140.4 J/K; 45 °C ambient.
package thermal

import (
	"errors"
	"fmt"
)

// Material bundles the two bulk properties the RC model needs.
type Material struct {
	// Conductivity is the thermal conductivity in W/(m·K).
	Conductivity float64
	// VolumetricHeat is the volumetric specific heat in J/(m³·K).
	VolumetricHeat float64
}

// Paper §2.1 materials.
var (
	// Silicon: k = 100 W/(m·K), c = 1.75e6 J/(m³·K).
	Silicon = Material{Conductivity: 100, VolumetricHeat: 1.75e6}
	// Interface is the thermal interface material: k = 4, c = 4e6.
	Interface = Material{Conductivity: 4, VolumetricHeat: 4e6}
	// Copper is used for both spreader and sink: k = 400, c = 3.55e6.
	Copper = Material{Conductivity: 400, VolumetricHeat: 3.55e6}
)

// Layer describes one stratum of the package stack. Layers are listed from
// the die downwards (die, TIM, spreader, sink); every layer is centred on
// the chip centre.
type Layer struct {
	Name      string
	Thickness float64 // metres
	Material  Material
	W, H      float64 // lateral extent in metres
	Nx, Ny    int     // grid resolution
}

// Config is a full thermal-stack description.
type Config struct {
	Layers []Layer
	// ConvectionR is the sink-to-air convection resistance in K/W
	// (paper: 0.1 K/W).
	ConvectionR float64
	// ConvectionC is the lumped convection capacitance in J/K
	// (paper: 140.4 J/K), distributed over the sink cells.
	ConvectionC float64
	// AmbientC is the ambient temperature in °C.
	AmbientC float64
	// Solver selects the linear-solver path. The zero value (SolverAuto)
	// picks dense Cholesky for small stacks and sparse preconditioned CG
	// above sparseNodeThreshold nodes.
	Solver SolverKind
	// InfluencePanel sets how many influence-matrix columns the sparse
	// path solves per blocked-CG pass. Zero picks the default width,
	// 1 forces the historical one-column-at-a-time fan-out, larger
	// values widen the panel. The blocked solver reproduces per-column
	// arithmetic exactly, so this knob trades throughput only. Ignored
	// on the dense path.
	InfluencePanel int
}

// Paper §2.1 stack geometry.
const (
	DieThickness      = 0.15e-3 // 0.15 mm
	TIMThickness      = 20e-6   // 20 µm
	SpreaderThickness = 1e-3    // 1 mm
	SpreaderSide      = 0.03    // 3 cm
	SinkThickness     = 6.9e-3  // 6.9 mm
	SinkSide          = 0.06    // 6 cm
	ConvectionR       = 0.1     // K/W
	ConvectionC       = 140.4   // J/K
	// DefaultAmbientC is the ambient temperature. HotSpot's stock default
	// is 45 °C; this model uses 42 °C, calibrated so that the paper's
	// published operating points straddle the 80 °C DTM threshold the way
	// the paper reports: a contiguous 52-core mapping at 196 W (Fig. 8a)
	// violates 80 °C while a patterned 60-core mapping at 226 W (Fig. 8b)
	// does not, and the 220 W optimistic TDP of Fig. 5 violates the
	// threshold while the 185 W pessimistic TDP does not.
	DefaultAmbientC = 42.0 // °C
)

// DefaultConfig builds the paper's §2.1 stack for a die of the given size,
// with the die and TIM discretized at dieNx×dieNy (normally the core grid)
// and fixed moderate resolutions for spreader (8×8) and sink (10×10).
// If the die is larger than the nominal spreader/sink, those layers grow
// to cover it (this happens for the hypothetical 22 nm 100-core chip,
// whose 960 mm² die outgrows a 3 cm spreader).
func DefaultConfig(dieW, dieH float64, dieNx, dieNy int) Config {
	spreadW, spreadH := SpreaderSide, SpreaderSide
	if dieW > spreadW {
		spreadW = dieW
	}
	if dieH > spreadH {
		spreadH = dieH
	}
	sinkW, sinkH := SinkSide, SinkSide
	if spreadW > sinkW {
		sinkW = spreadW
	}
	if spreadH > sinkH {
		sinkH = spreadH
	}
	return Config{
		Layers: []Layer{
			{Name: "die", Thickness: DieThickness, Material: Silicon, W: dieW, H: dieH, Nx: dieNx, Ny: dieNy},
			{Name: "tim", Thickness: TIMThickness, Material: Interface, W: dieW, H: dieH, Nx: dieNx, Ny: dieNy},
			{Name: "spreader", Thickness: SpreaderThickness, Material: Copper, W: spreadW, H: spreadH, Nx: 8, Ny: 8},
			{Name: "sink", Thickness: SinkThickness, Material: Copper, W: sinkW, H: sinkH, Nx: 10, Ny: 10},
		},
		ConvectionR: ConvectionR,
		ConvectionC: ConvectionC,
		AmbientC:    DefaultAmbientC,
	}
}

// ErrConfig is returned for malformed thermal configurations.
var ErrConfig = errors.New("thermal: invalid configuration")

// Validate checks the configuration for physical plausibility.
func (c Config) Validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("%w: no layers", ErrConfig)
	}
	for i, l := range c.Layers {
		if l.Thickness <= 0 || l.W <= 0 || l.H <= 0 {
			return fmt.Errorf("%w: layer %d (%s) has non-positive geometry", ErrConfig, i, l.Name)
		}
		if l.Nx <= 0 || l.Ny <= 0 {
			return fmt.Errorf("%w: layer %d (%s) has empty grid", ErrConfig, i, l.Name)
		}
		if l.Material.Conductivity <= 0 || l.Material.VolumetricHeat <= 0 {
			return fmt.Errorf("%w: layer %d (%s) has non-physical material", ErrConfig, i, l.Name)
		}
		if i > 0 {
			prev := c.Layers[i-1]
			if l.W < prev.W-1e-12 || l.H < prev.H-1e-12 {
				return fmt.Errorf("%w: layer %d (%s) narrower than layer above", ErrConfig, i, l.Name)
			}
		}
	}
	if c.ConvectionR <= 0 {
		return fmt.Errorf("%w: convection resistance must be positive", ErrConfig)
	}
	if c.ConvectionC < 0 {
		return fmt.Errorf("%w: convection capacitance must be non-negative", ErrConfig)
	}
	if c.Solver < SolverAuto || c.Solver > SolverSparse {
		return fmt.Errorf("%w: unknown solver kind %d", ErrConfig, int(c.Solver))
	}
	if c.InfluencePanel < 0 {
		return fmt.Errorf("%w: negative influence panel width %d", ErrConfig, c.InfluencePanel)
	}
	return nil
}
