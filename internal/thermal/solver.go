package thermal

import (
	"fmt"
	"sync"
	"sync/atomic"

	"darksim/internal/linalg"
)

// SolverKind selects the linear-solver path of a Model.
type SolverKind int

const (
	// SolverAuto picks the dense direct solver below
	// sparseNodeThreshold nodes and the sparse iterative solver above.
	SolverAuto SolverKind = iota
	// SolverDense forces the dense Cholesky path.
	SolverDense
	// SolverSparse forces the CSR + preconditioned-CG path.
	SolverSparse
)

// String implements fmt.Stringer.
func (k SolverKind) String() string {
	switch k {
	case SolverAuto:
		return "auto"
	case SolverDense:
		return "dense"
	case SolverSparse:
		return "sparse"
	}
	return fmt.Sprintf("SolverKind(%d)", int(k))
}

// sparseNodeThreshold is the node count above which SolverAuto switches
// from the dense Cholesky to the sparse preconditioned-CG path. Below
// it, a cached dense triangular solve (O(n²) per RHS after an O(n³)
// factorization that is cheap at this size) beats CG's iteration loop;
// above it, the dense factorization's cubic time and quadratic memory
// take over. The paper's 100-core platforms (364 nodes) stay dense; the
// 198- and 361-core platforms and everything larger go sparse.
const sparseNodeThreshold = 512

// cgTol is the relative-residual tolerance of the sparse path. The
// golden corpus compares at abs 1e-6 / rel 2e-3; 1e-10 leaves four
// orders of magnitude of headroom while staying a few dozen iterations
// on IC(0)-preconditioned grids.
const cgTol = 1e-10

// solveCounters aggregates solver work across a model's lifetime. The
// counters are atomic because steady-state solves fan out on the runner
// pool (influence columns) and transients may step concurrently.
type solveCounters struct {
	solves     atomic.Uint64
	iterations atomic.Uint64
}

// SolverStats is a snapshot of the linear-solver work a model (and its
// transients) performed.
type SolverStats struct {
	// Path is "dense" or "sparse".
	Path string `json:"path"`
	// Solves counts linear solves (steady-state, influence columns and
	// transient steps combined).
	Solves uint64 `json:"solves"`
	// CGIterations counts conjugate-gradient iterations; always zero on
	// the dense path.
	CGIterations uint64 `json:"cg_iterations"`
}

// factor is one factored linear system behind the solver seam: either a
// dense Cholesky or a sparse matrix with its preconditioner. Factors are
// immutable after construction and safe for concurrent solves; the
// sparse side pools per-goroutine CG workspaces.
type factor struct {
	// Dense path.
	chol *linalg.Cholesky
	// Sparse path.
	a    *linalg.CSR
	prec linalg.Preconditioner
	pool sync.Pool // of *cgWork

	stats *solveCounters
}

// cgWork is one goroutine's reusable CG state: the solver scratch and a
// solution buffer.
type cgWork struct {
	s *linalg.CGSolver
	x linalg.Vector
}

// newDenseFactor factors a dense SPD matrix.
func newDenseFactor(a *linalg.Matrix, stats *solveCounters) (*factor, error) {
	ch, err := linalg.NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return &factor{chol: ch, stats: stats}, nil
}

// newSparseFactor builds the IC(0) (fallback: Jacobi) preconditioner for
// a sparse SPD matrix.
func newSparseFactor(a *linalg.CSR, stats *solveCounters) (*factor, error) {
	var prec linalg.Preconditioner
	ic, err := linalg.NewIC0(a)
	if err == nil {
		prec = ic
	} else {
		j, jerr := linalg.NewJacobi(a)
		if jerr != nil {
			return nil, jerr
		}
		prec = j
	}
	f := &factor{a: a, prec: prec, stats: stats}
	f.pool.New = func() any {
		return &cgWork{s: f.newSolver(), x: linalg.NewVector(a.N)}
	}
	return f, nil
}

// newSolver creates a CG solver bound to this factor's matrix and
// shared preconditioner. Callers that solve sequentially (the transient
// stepper) hold one; concurrent callers go through solveInPlace's pool.
func (f *factor) newSolver() *linalg.CGSolver {
	s, err := linalg.NewCGSolver(f.a, linalg.CGOptions{Tol: cgTol, Precond: f.prec})
	if err != nil {
		// Options are fixed and valid; this cannot fail.
		panic(fmt.Sprintf("thermal: CG solver construction: %v", err))
	}
	return s
}

// sparse reports whether this factor uses the iterative path.
func (f *factor) sparse() bool { return f.chol == nil }

// record folds one solve's statistics into the model counters.
func (f *factor) record(st linalg.CGStats) {
	f.stats.solves.Add(1)
	if st.Iterations > 0 {
		f.stats.iterations.Add(uint64(st.Iterations))
	}
}

// solveInPlace overwrites b with A⁻¹·b. It is safe for concurrent use.
func (f *factor) solveInPlace(b linalg.Vector) error {
	if f.chol != nil {
		f.chol.SolveInPlace(b)
		f.record(linalg.CGStats{})
		return nil
	}
	w := f.pool.Get().(*cgWork)
	defer f.pool.Put(w)
	w.x.Fill(0)
	st, err := w.s.Solve(b, w.x)
	f.record(st)
	if err != nil {
		return fmt.Errorf("thermal: sparse solve: %w", err)
	}
	copy(b, w.x)
	return nil
}
