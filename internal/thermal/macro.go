package thermal

import (
	"fmt"

	"darksim/internal/linalg"
)

// The macro-stepping kernel exploits that the implicit-Euler update with
// a frozen power map is an affine map of the node temperatures:
//
//	(C/dt + G)·T⁺ = (C/dt)·T + P + P_amb
//	T⁺ = M·T + b,   M = (C/dt+G)⁻¹·(C/dt),   b = (C/dt+G)⁻¹·(P + P_amb)
//
// so k quiet steps collapse to T ← Mᵏ·T + S_k·b in O(log k) matrix
// applies via the linalg.AffinePowers ladder. The kernel is cached per
// (model, dt) on the transFactor, next to the factorization it derives
// from; sparse models get a one-off dense factorization of (C/dt+G) for
// the inverse, which the node-count gate keeps affordable.

const (
	// macroNodeLimit gates kernel construction: above it the dense
	// inverse (O(n³) build, O(n²) per apply) stops paying for itself and
	// MacroStep falls back to repeated exact steps. All paper platforms
	// that macro-step (364- and 584-node models) sit below the gate.
	macroNodeLimit = 768

	// macroMemBudgetBytes caps the ladder's matrix memory (each rung and
	// each memoized composite hop is two n×n float64 matrices).
	macroMemBudgetBytes = 96 << 20

	// macroMinSteps is the shortest advance worth routing through the
	// ladder; below it the two fused mat-vecs of one hop cost more than
	// the triangular solves they replace.
	macroMinSteps = 4
)

// macroKernel is the per-(model, dt) fast-path state.
type macroKernel struct {
	ainv   *linalg.Matrix // (C/dt + G)⁻¹, dense
	powers *linalg.AffinePowers
}

// kernel returns the macro kernel for this factor, building it on first
// use. A nil kernel with nil error means the model is above the macro
// gate and callers must use the exact path; a build error is sticky.
func (tf *transFactor) kernel(m *Model) (*macroKernel, error) {
	tf.macroMu.Lock()
	defer tf.macroMu.Unlock()
	if tf.macroUp {
		return tf.macro, tf.macroErr
	}
	tf.macroUp = true
	n := len(m.cells)
	if n > macroNodeLimit {
		return nil, nil
	}
	tf.macro, tf.macroErr = buildMacroKernel(m, tf)
	return tf.macro, tf.macroErr
}

// buildMacroKernel materializes (C/dt+G)⁻¹ and the affine-powers ladder.
func buildMacroKernel(m *Model, tf *transFactor) (*macroKernel, error) {
	n := len(m.cells)
	var chol *linalg.Cholesky
	if !tf.fac.sparse() {
		chol = tf.fac.chol
	} else {
		// The sparse path never materializes (C/dt+G) densely; do it
		// once here — the node gate keeps this a sub-second, few-MB
		// detour that the whole sweep then shares.
		a, err := m.gs.AddDiagonal(tf.capDt)
		if err != nil {
			return nil, err
		}
		chol, err = linalg.NewCholesky(a.Dense())
		if err != nil {
			return nil, fmt.Errorf("thermal: macro kernel factorization: %w", err)
		}
	}
	ainv := chol.Inverse()
	// M = A⁻¹·(C/dt): scale column j by capDt[j].
	step := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		arow := ainv.Data[i*n : (i+1)*n]
		srow := step.Data[i*n : (i+1)*n]
		for j, v := range arow {
			srow[j] = v * tf.capDt[j]
		}
	}
	powers, err := linalg.NewAffinePowers(step, ladderDepth(n))
	if err != nil {
		return nil, err
	}
	return &macroKernel{ainv: ainv, powers: powers}, nil
}

// ladderDepth picks the deepest repeated-squaring ladder whose rungs fit
// the memory budget, leaving half the budget for composed hops.
func ladderDepth(n int) int {
	perRung := 16 * n * n // two n×n float64 matrices
	depth := 1
	for depth < 10 && (depth+2)*perRung <= macroMemBudgetBytes/2 {
		depth++
	}
	return depth
}
