package thermal

import (
	"math"
	"testing"
)

// macroTestPower is an uneven 100-block power map that heats the chip
// well above ambient so macro-vs-exact drift has room to show.
func macroTestPower() []float64 {
	p := make([]float64, 100)
	for i := range p {
		p[i] = 1.5 + 0.05*float64(i%7)
	}
	return p
}

// TestMacroStepMatchesExact is the macro property test on real models:
// advancing k frozen-power steps through the affine-powers ladder must
// agree with k exact steps to within 1e-9 on the dense path. On the
// sparse path "exact" means CG truncated at a 1e-10 relative residual —
// about 1e-8 of solution error per step — so there the ladder (which is
// fully direct) is compared at 1e-6, still three orders of magnitude
// inside the golden corpus tolerance.
func TestMacroStepMatchesExact(t *testing.T) {
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		m := modelWithSolver(t, kind)
		tol := 1e-9
		if kind == SolverSparse {
			tol = 1e-6
		}
		p := macroTestPower()
		for _, k := range []int{1, 3, 7, 50, 130, 1000} {
			exact, err := m.NewTransient(1e-3)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := m.NewTransient(1e-3)
			if err != nil {
				t.Fatal(err)
			}
			if !fast.MacroSupported() {
				t.Fatalf("%v: macro unsupported on %d nodes", kind, m.NumNodes())
			}
			var want []float64
			for s := 0; s < k; s++ {
				if want, err = exact.Step(p); err != nil {
					t.Fatal(err)
				}
			}
			got, err := fast.MacroStep(p, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if d := math.Abs(got[i] - want[i]); d > tol*(1+math.Abs(want[i])) {
					t.Fatalf("%v k=%d block %d: macro %v vs exact %v (|Δ|=%g)",
						kind, k, i, got[i], want[i], d)
				}
			}
		}
	}
}

// TestMacroStepFallbackBitIdentical pins that short advances — below the
// ladder's break-even — take the exact kernel and match repeated Step
// calls bit for bit.
func TestMacroStepFallbackBitIdentical(t *testing.T) {
	m := model16(t)
	p := macroTestPower()
	exact, err := m.NewTransient(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := m.NewTransient(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	k := macroMinSteps - 1
	var want []float64
	for s := 0; s < k; s++ {
		if want, err = exact.Step(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := fast.MacroStep(p, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("block %d: fallback %v != exact %v", i, got[i], want[i])
		}
	}
}

// TestAdvanceQuietSnapsToSteady drives a transient from ambient under
// constant power: quiet advances must converge to the frozen-power
// steady state and eventually snap exactly onto it, after which further
// advances are fixed points.
func TestAdvanceQuietSnapsToSteady(t *testing.T) {
	m := model16(t)
	p := macroTestPower()
	tr, err := m.NewTransient(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	var temps []float64
	for seg := 0; seg < 400; seg++ { // 400 s simulated: well past the sink time constant
		var ok bool
		temps, ok, err = tr.AdvanceQuiet(p, 1000, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("AdvanceQuiet refused with no safety cap")
		}
	}
	for i := range want {
		if d := math.Abs(temps[i] - want[i]); d > 0.02 {
			t.Fatalf("block %d: quiet advance ended at %v, steady %v (|Δ|=%g)", i, temps[i], want[i], d)
		}
	}
	// Snapped: one more advance must be an exact fixed point.
	again, ok, err := tr.AdvanceQuiet(p, 1000, 0.01, 0)
	if err != nil || !ok {
		t.Fatalf("post-snap advance: ok=%v err=%v", ok, err)
	}
	for i := range temps {
		if again[i] != temps[i] {
			t.Fatalf("block %d: snapped state moved: %v -> %v", i, temps[i], again[i])
		}
	}
}

// TestAdvanceQuietRefusesAboveSafetyCap pins the DTM guard: when the
// frozen-power steady state would exceed the cap, AdvanceQuiet must
// refuse without touching the state.
func TestAdvanceQuietRefusesAboveSafetyCap(t *testing.T) {
	m := model16(t)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 6 // hot enough to settle far above any sane cap
	}
	tr, err := m.NewTransient(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), tr.BlockTemps()...)
	temps, ok, err := tr.AdvanceQuiet(p, 100, 0.01, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ok || temps != nil {
		t.Fatalf("want refusal above safety cap, got ok=%v temps=%v", ok, temps != nil)
	}
	after := tr.BlockTemps()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("block %d: refused advance still moved state", i)
		}
	}
}

// TestTransientBatchMatchesStep pins the lockstep batch to the
// sequential path bit for bit on both solver paths, including inactive
// lanes staying frozen.
func TestTransientBatchMatchesStep(t *testing.T) {
	for _, kind := range []SolverKind{SolverDense, SolverSparse} {
		m := modelWithSolver(t, kind)
		const lanes = 3
		batch, err := m.NewTransientBatch(1e-3, lanes)
		if err != nil {
			t.Fatal(err)
		}
		seq := make([]*Transient, lanes)
		powers := make([][]float64, lanes)
		temps := make([][]float64, lanes)
		for i := range seq {
			if seq[i], err = m.NewTransient(1e-3); err != nil {
				t.Fatal(err)
			}
			powers[i] = make([]float64, m.NumBlocks())
			for j := range powers[i] {
				powers[i][j] = 1 + 0.3*float64(i) + 0.01*float64(j%11)
			}
			temps[i] = make([]float64, m.NumBlocks())
		}
		active := []bool{true, true, true}
		for step := 0; step < 25; step++ {
			if step == 15 {
				active[1] = false // drop a lane mid-run
			}
			if err := batch.StepAll(powers, active, temps); err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if !active[i] {
					continue
				}
				want, err := seq[i].Step(powers[i])
				if err != nil {
					t.Fatal(err)
				}
				for b := range want {
					if temps[i][b] != want[b] {
						t.Fatalf("%v step %d lane %d block %d: batch %v != sequential %v",
							kind, step, i, b, temps[i][b], want[b])
					}
				}
			}
		}
		// The dropped lane's state must be exactly where step 14 left it.
		lane1 := batch.Transient(1).BlockTemps()
		want := seq[1].BlockTemps()
		for b := range want {
			if lane1[b] != want[b] {
				t.Fatalf("%v: dropped lane moved: block %d %v != %v", kind, b, lane1[b], want[b])
			}
		}
	}
}
