package thermal

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/floorplan"
	"darksim/internal/linalg"
)

// model16 builds the standard 100-core 16 nm platform model (5.1 mm²
// cores) used by most tests.
func model16(t testing.TB) *Model {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(fp, DefaultConfig(fp.DieW, fp.DieH, 10, 10))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(0.02, 0.02, 4, 4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Layers = nil
	if err := bad.Validate(); err == nil {
		t.Errorf("no layers should error")
	}
	bad = good
	bad.Layers = append([]Layer(nil), good.Layers...)
	bad.Layers[0].Thickness = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero thickness should error")
	}
	bad = good
	bad.Layers = append([]Layer(nil), good.Layers...)
	bad.Layers[1].Nx = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("empty grid should error")
	}
	bad = good
	bad.Layers = append([]Layer(nil), good.Layers...)
	bad.Layers[2].Material.Conductivity = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("bad material should error")
	}
	bad = good
	bad.ConvectionR = 0
	if err := bad.Validate(); err == nil {
		t.Errorf("zero convection R should error")
	}
	bad = good
	bad.ConvectionC = -5
	if err := bad.Validate(); err == nil {
		t.Errorf("negative convection C should error")
	}
	// Layer narrower than the one above.
	bad = good
	bad.Layers = append([]Layer(nil), good.Layers...)
	bad.Layers[3].W = bad.Layers[2].W / 2
	if err := bad.Validate(); err == nil {
		t.Errorf("shrinking stack should error")
	}
}

func TestDefaultConfigGrowsForLargeDie(t *testing.T) {
	// The 22 nm 100-core die (960 mm² ≈ 31 mm side) outgrows the 3 cm
	// spreader; the config must expand spreader and sink to cover it.
	c := DefaultConfig(0.031, 0.031, 10, 10)
	if c.Layers[2].W < 0.031 {
		t.Errorf("spreader not grown: %v", c.Layers[2].W)
	}
	if c.Layers[3].W < c.Layers[2].W {
		t.Errorf("sink smaller than spreader")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("grown config invalid: %v", err)
	}
}

func TestZeroPowerIsAmbient(t *testing.T) {
	m := model16(t)
	temps, err := m.SteadyState(make([]float64, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range temps {
		if math.Abs(tc-DefaultAmbientC) > 1e-6 {
			t.Fatalf("block %d at %v °C with zero power", i, tc)
		}
	}
}

func TestUniformPowerSymmetry(t *testing.T) {
	m := model16(t)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2.0
	}
	temps, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// The four corners see identical temperatures by symmetry.
	fp := m.Floorplan()
	corners := []int{fp.Index(0, 0), fp.Index(0, 9), fp.Index(9, 0), fp.Index(9, 9)}
	for _, c := range corners[1:] {
		if math.Abs(temps[c]-temps[corners[0]]) > 1e-6 {
			t.Errorf("corner temps differ: %v vs %v", temps[c], temps[corners[0]])
		}
	}
	// Centre hotter than corners (lateral spreading).
	centre := temps[fp.Index(5, 5)]
	if centre <= temps[corners[0]] {
		t.Errorf("centre %v not hotter than corner %v", centre, temps[corners[0]])
	}
}

func TestLinearityAndSuperposition(t *testing.T) {
	m := model16(t)
	amb := m.Ambient()
	p1 := make([]float64, 100)
	p2 := make([]float64, 100)
	p1[12] = 3
	p2[87] = 2
	t1, err := m.SteadyState(p1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.SteadyState(p2)
	if err != nil {
		t.Fatal(err)
	}
	sum := make([]float64, 100)
	for i := range sum {
		sum[i] = p1[i] + p2[i]
	}
	t12, err := m.SteadyState(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t12 {
		want := t1[i] + t2[i] - amb
		if math.Abs(t12[i]-want) > 1e-6 {
			t.Fatalf("superposition violated at %d: %v vs %v", i, t12[i], want)
		}
	}
	// Doubling power doubles the rise.
	double := make([]float64, 100)
	for i := range double {
		double[i] = 2 * p1[i]
	}
	td, err := m.SteadyState(double)
	if err != nil {
		t.Fatal(err)
	}
	for i := range td {
		want := amb + 2*(t1[i]-amb)
		if math.Abs(td[i]-want) > 1e-6 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestConcentrationHeatsMore(t *testing.T) {
	// The physical heart of dark-silicon patterning (Fig. 8): the same
	// total power concentrated in a contiguous cluster produces a higher
	// peak temperature than when spread across the die.
	m := model16(t)
	fp := m.Floorplan()
	const total = 150.0
	clustered := make([]float64, 100)
	for r := 0; r < 5; r++ {
		for c := 0; c < 5; c++ {
			clustered[fp.Index(r, c)] = total / 25
		}
	}
	spread := make([]float64, 100)
	for r := 0; r < 10; r += 2 {
		for c := 0; c < 10; c += 2 {
			spread[fp.Index(r, c)] = total / 25
		}
	}
	pc, _, err := m.PeakSteadyState(clustered)
	if err != nil {
		t.Fatal(err)
	}
	ps, _, err := m.PeakSteadyState(spread)
	if err != nil {
		t.Fatal(err)
	}
	if pc <= ps+0.5 {
		t.Errorf("clustered peak %v should clearly exceed spread peak %v", pc, ps)
	}
}

func TestMagnitudeSanity(t *testing.T) {
	// 100 cores × 2 W = 200 W: convection alone contributes 20 K over
	// 45 °C ambient; with conduction the peak should land in the
	// 65–85 °C band the paper's experiments live in.
	m := model16(t)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2.0
	}
	peak, _, err := m.PeakSteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	if peak < 65 || peak > 85 {
		t.Errorf("peak at 200 W uniform = %.2f °C, want within [65, 85]", peak)
	}
}

func TestPowerVectorErrors(t *testing.T) {
	m := model16(t)
	if _, err := m.SteadyState(make([]float64, 7)); err == nil {
		t.Errorf("wrong-length power vector should error")
	}
	bad := make([]float64, 100)
	bad[3] = -1
	if _, err := m.SteadyState(bad); err == nil {
		t.Errorf("negative power should error")
	}
}

func TestNewModelErrors(t *testing.T) {
	fp, err := floorplan.NewGrid(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(fp.DieW, fp.DieH, 2, 2)
	bad.ConvectionR = -1
	if _, err := NewModel(fp, bad); err == nil {
		t.Errorf("invalid config should error")
	}
	// Die layer smaller than the floorplan.
	small := DefaultConfig(fp.DieW/4, fp.DieH/4, 2, 2)
	if _, err := NewModel(fp, small); err == nil {
		t.Errorf("undersized die should error")
	}
	var empty floorplan.Floorplan
	if _, err := NewModel(&empty, DefaultConfig(1, 1, 2, 2)); err == nil {
		t.Errorf("empty floorplan should error")
	}
}

func TestInfluenceMatrix(t *testing.T) {
	m := model16(t)
	inf, err := m.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inf.Rows != 100 || inf.Cols != 100 {
		t.Fatalf("influence shape %dx%d", inf.Rows, inf.Cols)
	}
	// Cached on second call.
	if again, _ := m.InfluenceMatrix(context.Background()); again != inf {
		t.Errorf("influence matrix should be cached")
	}
	// Self-influence dominates cross influence.
	if inf.At(0, 0) <= inf.At(0, 99) {
		t.Errorf("self influence %v <= far influence %v", inf.At(0, 0), inf.At(0, 99))
	}
	// All entries positive (heat anywhere warms everything at steady state).
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			if inf.At(i, j) <= 0 {
				t.Fatalf("influence[%d][%d] = %v", i, j, inf.At(i, j))
			}
		}
	}
	// Symmetry: injection and readout use identical weights, G is
	// symmetric, so B = W·G⁻¹·Wᵀ is symmetric.
	if !inf.IsSymmetric(1e-9) {
		t.Errorf("influence matrix should be symmetric")
	}
	// Consistency with SteadyState: T = B·P + ambient field.
	p := make([]float64, 100)
	p[42] = 4
	direct, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	base := m.AmbientField()
	for i := 0; i < 100; i++ {
		want := base[i] + inf.At(i, 42)*4
		if math.Abs(direct[i]-want) > 1e-6 {
			t.Fatalf("influence inconsistency at %d: %v vs %v", i, direct[i], want)
		}
	}
}

func TestAmbientField(t *testing.T) {
	m := model16(t)
	for i, b := range m.AmbientField() {
		if math.Abs(b-DefaultAmbientC) > 1e-6 {
			t.Fatalf("ambient field[%d] = %v", i, b)
		}
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	m := model16(t)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 1.8
	}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.NewTransient(0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The sink/convection time constant is ~100.4·0.1 s-scale; run long.
	var got []float64
	for i := 0; i < 20000; i++ {
		got, err = tr.Step(p)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.05 {
			t.Fatalf("transient[%d] = %v, steady = %v", i, got[i], want[i])
		}
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	m := model16(t)
	tr, err := m.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2.5
	}
	prev, _ := tr.PeakBlockTemp()
	for i := 0; i < 200; i++ {
		if _, err := tr.Step(p); err != nil {
			t.Fatal(err)
		}
		cur, _ := tr.PeakBlockTemp()
		if cur < prev-1e-9 {
			t.Fatalf("heating not monotone at step %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
	if prev <= DefaultAmbientC+0.5 {
		t.Errorf("chip barely heated after 2 s: %v", prev)
	}
}

func TestTransientStateControls(t *testing.T) {
	m := model16(t)
	tr, err := m.NewTransient(0.001)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Dt() != 0.001 {
		t.Errorf("Dt = %v", tr.Dt())
	}
	tr.SetUniform(60)
	if peak, _ := tr.PeakBlockTemp(); math.Abs(peak-60) > 1e-9 {
		t.Errorf("SetUniform peak = %v", peak)
	}
	p := make([]float64, 100)
	p[50] = 5
	if err := tr.SetSteadyState(p); err != nil {
		t.Fatal(err)
	}
	want, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.BlockTemps()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("SetSteadyState mismatch at %d", i)
		}
	}
	if err := tr.SetSteadyState(make([]float64, 3)); err == nil {
		t.Errorf("bad power length should error")
	}
	if _, err := tr.Step(make([]float64, 3)); err == nil {
		t.Errorf("bad power length in Step should error")
	}
	if _, err := m.NewTransient(0); err == nil {
		t.Errorf("zero dt should error")
	}
}

// Property: steady-state peak temperature is monotone in any single
// block's power.
func TestPeakMonotoneInPowerProperty(t *testing.T) {
	m := model16(t)
	base := make([]float64, 100)
	for i := range base {
		base[i] = 1.0
	}
	f := func(blockRaw uint8, extraRaw float64) bool {
		block := int(blockRaw) % 100
		extra := math.Mod(math.Abs(extraRaw), 5)
		p0, _, err := m.PeakSteadyState(base)
		if err != nil {
			return false
		}
		bumped := append([]float64(nil), base...)
		bumped[block] += extra
		p1, _, err := m.PeakSteadyState(bumped)
		if err != nil {
			return false
		}
		return p1 >= p0-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: total heat flow to ambient equals total injected power at
// steady state (energy conservation).
func TestEnergyConservationProperty(t *testing.T) {
	m := model16(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, 100)
		var total float64
		for i := range p {
			p[i] = 4 * rng.Float64()
			total += p[i]
		}
		nodeT, err := m.SteadyStateNodes(p)
		if err != nil {
			return false
		}
		var out float64
		for i, c := range m.cells {
			if c.gAmbW > 0 {
				out += c.gAmbW * (nodeT[i] - m.cfg.AmbientC)
			}
		}
		return math.Abs(out-total) < 1e-6*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestConductanceMatrixSymmetric(t *testing.T) {
	m := model16(t)
	if !m.Conductances().IsSymmetric(1e-12) {
		t.Errorf("conductance matrix must be symmetric")
	}
	if m.NumNodes() != 100+100+64+100 {
		t.Errorf("node count = %d", m.NumNodes())
	}
	if m.NumBlocks() != 100 {
		t.Errorf("block count = %d", m.NumBlocks())
	}
	_ = linalg.Vector(nil) // keep import if asserts change
}

// modelWithSolver builds the 10x10 platform with a forced solver path.
func modelWithSolver(t testing.TB, k SolverKind) *Model {
	t.Helper()
	fp, err := floorplan.NewGrid(10, 10, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(fp.DieW, fp.DieH, 10, 10)
	cfg.Solver = k
	m, err := NewModel(fp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSolverPathSelection(t *testing.T) {
	// 364 nodes: auto stays dense; forcing sparse flips the path.
	if got := model16(t).SolverPath(); got != "dense" {
		t.Errorf("auto path on 364 nodes = %q, want dense", got)
	}
	if got := modelWithSolver(t, SolverSparse).SolverPath(); got != "sparse" {
		t.Errorf("forced sparse path = %q", got)
	}
	if got := modelWithSolver(t, SolverDense).SolverPath(); got != "dense" {
		t.Errorf("forced dense path = %q", got)
	}
	// A model above the threshold goes sparse on auto.
	fp, err := floorplan.NewGrid(15, 15, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewModel(fp, DefaultConfig(fp.DieW, fp.DieH, 15, 15))
	if err != nil {
		t.Fatal(err)
	}
	if big.NumNodes() <= sparseNodeThreshold {
		t.Fatalf("15x15 platform has %d nodes, expected above threshold", big.NumNodes())
	}
	if got := big.SolverPath(); got != "sparse" {
		t.Errorf("auto path on %d nodes = %q, want sparse", big.NumNodes(), got)
	}
	// SolverKind strings and config validation.
	if SolverAuto.String() != "auto" || SolverDense.String() != "dense" || SolverSparse.String() != "sparse" {
		t.Errorf("SolverKind strings wrong")
	}
	if SolverKind(9).String() == "" {
		t.Errorf("unknown kind should still print")
	}
	bad := DefaultConfig(0.02, 0.02, 4, 4)
	bad.Solver = SolverKind(9)
	if err := bad.Validate(); err == nil {
		t.Errorf("unknown solver kind should fail validation")
	}
}

// TestSparseMatchesDenseSteadyState is the cross-path differential: the
// sparse preconditioned-CG engine must reproduce the dense Cholesky
// solution far inside the golden-corpus tolerance.
func TestSparseMatchesDenseSteadyState(t *testing.T) {
	dense := modelWithSolver(t, SolverDense)
	sparse := modelWithSolver(t, SolverSparse)
	rng := rand.New(rand.NewSource(7))
	p := make([]float64, 100)
	for i := range p {
		p[i] = 4 * rng.Float64()
	}
	td, err := dense.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := sparse.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range td {
		if math.Abs(td[i]-ts[i]) > 1e-7 {
			t.Fatalf("paths disagree at %d: dense %v sparse %v", i, td[i], ts[i])
		}
	}
	// Influence matrices agree too (parallel multi-RHS on the seam).
	id, err := dense.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	is, err := sparse.InfluenceMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < id.Rows; i++ {
		for j := 0; j < id.Cols; j++ {
			if math.Abs(id.At(i, j)-is.At(i, j)) > 1e-8 {
				t.Fatalf("influence disagrees at (%d,%d)", i, j)
			}
		}
	}
	// Stats reflect the work done.
	sd, ss := dense.SolverStats(), sparse.SolverStats()
	if sd.Path != "dense" || sd.Solves == 0 || sd.CGIterations != 0 {
		t.Errorf("dense stats = %+v", sd)
	}
	if ss.Path != "sparse" || ss.Solves == 0 || ss.CGIterations == 0 {
		t.Errorf("sparse stats = %+v", ss)
	}
}

func TestSparseMatchesDenseTransient(t *testing.T) {
	dense := modelWithSolver(t, SolverDense)
	sparse := modelWithSolver(t, SolverSparse)
	trd, err := dense.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	trs, err := sparse.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2.5
	}
	for step := 0; step < 50; step++ {
		td, err := trd.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := trs.Step(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range td {
			if math.Abs(td[i]-ts[i]) > 1e-6 {
				t.Fatalf("step %d block %d: dense %v sparse %v", step, i, td[i], ts[i])
			}
		}
	}
	// The per-dt factor cache hands a second transient the same factor.
	again, err := sparse.NewTransient(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if again.tf != trs.tf {
		t.Errorf("transient factor not cached per dt")
	}
	other, err := sparse.NewTransient(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if other.tf == trs.tf {
		t.Errorf("distinct dt must not share a factor")
	}
}

func BenchmarkSteadyState100(b *testing.B) {
	m := model16(b)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientStep100(b *testing.B) {
	m := model16(b)
	tr, err := m.NewTransient(0.001)
	if err != nil {
		b.Fatal(err)
	}
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlocksSpanningMultipleDieCells(t *testing.T) {
	// When the die grid is coarser than the floorplan (here 2x2 cells
	// under a 4x4 core grid), each block's power must be distributed by
	// area overlap and its readout averaged over the overlapped cells.
	fp, err := floorplan.NewGrid(4, 4, 5.1)
	if err != nil {
		t.Fatal(err)
	}
	coarse := DefaultConfig(fp.DieW, fp.DieH, 2, 2)
	m, err := NewModel(fp, coarse)
	if err != nil {
		t.Fatal(err)
	}
	// Energy conservation still holds with fractional bindings.
	p := make([]float64, 16)
	for i := range p {
		p[i] = 1.5
	}
	nodeT, err := m.SteadyStateNodes(p)
	if err != nil {
		t.Fatal(err)
	}
	var out float64
	for i, c := range m.cells {
		if c.gAmbW > 0 {
			out += c.gAmbW * (nodeT[i] - m.cfg.AmbientC)
		}
	}
	if math.Abs(out-24) > 1e-6 {
		t.Errorf("energy conservation broken with coarse die grid: %v W out", out)
	}
	// A central block straddles all four cells; corner blocks map to one.
	temps, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, tc := range temps {
		if tc <= m.Ambient() {
			t.Fatalf("block %d at %v °C", i, tc)
		}
	}
	// The die grid is finer than the floorplan in the usual setup; also
	// exercise the opposite: a 8x8 die grid under the same 4x4 cores.
	fine := DefaultConfig(fp.DieW, fp.DieH, 8, 8)
	mf, err := NewModel(fp, fine)
	if err != nil {
		t.Fatal(err)
	}
	tf, err := mf.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse and fine models agree to within a degree on this uniform map.
	for i := range temps {
		if math.Abs(temps[i]-tf[i]) > 1.0 {
			t.Errorf("block %d: coarse %v vs fine %v", i, temps[i], tf[i])
		}
	}
}

func TestSteadyStateIterativeMatchesDirect(t *testing.T) {
	m := model16(t)
	rng := rand.New(rand.NewSource(31))
	p := make([]float64, 100)
	for i := range p {
		p[i] = 4 * rng.Float64()
	}
	direct, err := m.SteadyState(p)
	if err != nil {
		t.Fatal(err)
	}
	iter, err := m.SteadyStateIterative(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(direct[i]-iter[i]) > 1e-5 {
			t.Fatalf("solvers disagree at %d: %v vs %v", i, direct[i], iter[i])
		}
	}
	// Error paths propagate.
	if _, err := m.SteadyStateIterative(make([]float64, 3)); err == nil {
		t.Errorf("bad power length should error")
	}
}

func BenchmarkSteadyStateIterative100(b *testing.B) {
	m := model16(b)
	p := make([]float64, 100)
	for i := range p {
		p[i] = 2
	}
	if _, err := m.SteadyStateIterative(p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyStateIterative(p); err != nil {
			b.Fatal(err)
		}
	}
}
