package thermal

import (
	"fmt"

	"darksim/internal/linalg"
)

// TransientBatch steps several independent temperature states of one
// (model, dt) pair in lockstep. All states share the cached
// factorization; on the dense path the per-state triangular solves are
// batched through linalg.SolveBatchInPlace, which streams each factor
// row once across all states instead of once per state. Per state the
// arithmetic is bit-for-bit identical to calling Transient.Step — the
// policy sandbox relies on that to race policies in lockstep without
// perturbing any policy's trace.
type TransientBatch struct {
	m    *Model
	trs  []*Transient
	cols []linalg.Vector // reused dense-path batch view
}

// NewTransientBatch creates k transient integrators sharing one cached
// factorization for step size dt.
func (m *Model) NewTransientBatch(dt float64, k int) (*TransientBatch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: transient batch of %d states", ErrConfig, k)
	}
	b := &TransientBatch{m: m, trs: make([]*Transient, k)}
	for i := range b.trs {
		tr, err := m.NewTransient(dt)
		if err != nil {
			return nil, err
		}
		b.trs[i] = tr
	}
	return b, nil
}

// Transient returns the i-th state for per-state setup and queries
// (SetSteadyState, BlockTemps, ...).
func (b *TransientBatch) Transient(i int) *Transient { return b.trs[i] }

// Len returns the number of states in the batch.
func (b *TransientBatch) Len() int { return len(b.trs) }

// StepAll advances every active state by one dt under its own power map
// and writes the resulting per-block temperatures into temps[i]. Entries
// with active[i] == false are skipped entirely (a nil active means all
// are live). powers and temps must have Len() entries; each live
// temps[i] must have NumBlocks length.
func (b *TransientBatch) StepAll(powers [][]float64, active []bool, temps [][]float64) error {
	if len(powers) != len(b.trs) || len(temps) != len(b.trs) {
		return fmt.Errorf("%w: batch step with %d power maps, %d temp buffers for %d states",
			ErrConfig, len(powers), len(temps), len(b.trs))
	}
	live := func(i int) bool { return active == nil || active[i] }

	dense := b.trs[0].cgs == nil
	if !dense {
		// Sparse path: each state's warm-started CG solve depends on its
		// own previous iterate, so states step independently — exactly as
		// Transient.Step would.
		for i, tr := range b.trs {
			if !live(i) {
				continue
			}
			t, err := tr.Step(powers[i])
			if err != nil {
				return err
			}
			copy(temps[i], t)
		}
		return nil
	}

	// Dense path: assemble every live right-hand side, then solve them
	// as one batch against the shared factor.
	b.cols = b.cols[:0]
	for i, tr := range b.trs {
		if !live(i) {
			continue
		}
		if err := tr.m.nodePowerInto(tr.rhs, powers[i]); err != nil {
			return err
		}
		p := tr.rhs
		for j := range p {
			p[j] += tr.tf.capDt[j]*tr.t[j] + tr.m.ambRHS[j]
		}
		b.cols = append(b.cols, p)
	}
	if len(b.cols) == 0 {
		return nil
	}
	if err := b.trs[0].tf.fac.chol.SolveBatchInPlace(b.cols); err != nil {
		return err
	}
	for i, tr := range b.trs {
		if !live(i) {
			continue
		}
		tr.tf.fac.record(linalg.CGStats{})
		tr.t, tr.rhs = tr.rhs, tr.t
		tr.m.blockTempsInto(temps[i], tr.t)
	}
	return nil
}
