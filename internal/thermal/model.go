package thermal

import (
	"fmt"
	"math"
	"sync"

	"darksim/internal/floorplan"
	"darksim/internal/linalg"
)

// cell is one RC node of the discretized stack.
type cell struct {
	layer int
	x, y  float64 // lower-left corner, chip-centred coordinates (m)
	w, h  float64
	capJK float64 // thermal capacitance in J/K
	gAmbW float64 // direct conductance to ambient in W/K (sink cells)
}

// Model is a compact RC thermal model bound to one floorplan.
type Model struct {
	cfg    Config
	fp     *floorplan.Floorplan
	cells  []cell
	layers [][]int // node indices per layer

	// gs is the symmetric conductance matrix in CSR form, including
	// ambient coupling on the diagonal; steady state solves
	// gs·T = P + gAmb·Tamb. It is the only stored form of the matrix —
	// the dense n×n representation is never materialized on the sparse
	// path, which is what lets the model scale to thousands of cores
	// with O(nnz) assembly memory.
	gs     *linalg.CSR
	ambRHS linalg.Vector // gAmb·Tamb per node

	// steady is the factored steady-state system behind the solver
	// seam: dense Cholesky below sparseNodeThreshold nodes, IC(0)-
	// preconditioned CG above (see Config.Solver to force a path).
	steady   *factor
	counters solveCounters

	// ambNodes is the zero-power steady state (≈ ambient everywhere),
	// solved once at construction; it seeds transients and AmbientField.
	ambNodes linalg.Vector

	// blockCells[b] lists (node, fraction) pairs distributing block b's
	// power over die cells; fractions sum to 1.
	blockCells [][]cellShare

	// influence is the lazily computed block×block matrix of steady
	// state dT_i/dP_j in K/W (see influence.go). infMu serializes the
	// computation; a failed computation is never memoized, so callers
	// retry naturally. infKey memoizes the platform content hash used to
	// look the matrix up in the process-wide cache.
	influence *linalg.Matrix
	infMu     sync.Mutex
	infKey    uint64
	infKeyed  bool

	// transFacs caches the factored implicit-Euler system per step size
	// so repeated transients over one model (Fig11–13's sweeps) factor
	// and precondition each dt exactly once.
	transMu   sync.Mutex
	transFacs map[float64]*transFactor
}

// transFactor bundles the per-dt transient system: the factored
// (C/dt + G) matrix and the C/dt diagonal. The macro-stepping kernel
// (see macro.go) is cached here, next to the factor, so every transient
// over one (model, dt) pair — a sweep's worth of boosting runs — shares
// one inverse and one ladder of affine powers.
type transFactor struct {
	fac   *factor
	capDt linalg.Vector

	macroMu  sync.Mutex
	macro    *macroKernel
	macroErr error
	macroUp  bool // a build was attempted; macro/macroErr are final
}

type cellShare struct {
	node     int
	fraction float64 // of the block's power into this cell
	weight   float64 // of this cell in the block's readout temperature
}

// NewModel discretizes the stack, assembles the conductance matrix
// directly in sparse form and prepares the solver path selected by
// cfg.Solver (dense Cholesky for small models, preconditioned CG above
// sparseNodeThreshold nodes).
func NewModel(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, fp: fp, transFacs: make(map[float64]*transFactor)}
	m.buildCells()
	m.buildConductances()
	if err := m.bindFloorplan(); err != nil {
		return nil, err
	}
	var (
		fac *factor
		err error
	)
	if m.useSparse() {
		fac, err = newSparseFactor(m.gs, &m.counters)
	} else {
		fac, err = newDenseFactor(m.gs.Dense(), &m.counters)
	}
	if err != nil {
		return nil, fmt.Errorf("thermal: conductance matrix not SPD (disconnected node?): %w", err)
	}
	m.steady = fac
	// Solve the zero-power steady state once; it doubles as an early
	// convergence check of the iterative path.
	amb := m.ambRHS.Clone()
	if err := m.steady.solveInPlace(amb); err != nil {
		return nil, err
	}
	m.ambNodes = amb
	return m, nil
}

// useSparse resolves the configured SolverKind to a concrete path.
func (m *Model) useSparse() bool {
	switch m.cfg.Solver {
	case SolverDense:
		return false
	case SolverSparse:
		return true
	}
	return len(m.cells) > sparseNodeThreshold
}

// SolverPath reports which solver the model selected: "dense" or
// "sparse".
func (m *Model) SolverPath() string {
	if m.steady.sparse() {
		return "sparse"
	}
	return "dense"
}

// SolverStats snapshots the linear-solver work performed so far by this
// model and its transients.
func (m *Model) SolverStats() SolverStats {
	return SolverStats{
		Path:         m.SolverPath(),
		Solves:       m.counters.solves.Load(),
		CGIterations: m.counters.iterations.Load(),
	}
}

func (m *Model) buildCells() {
	m.layers = make([][]int, len(m.cfg.Layers))
	// Count sink cells first so the convection capacitance can be
	// distributed over them.
	sinkLayer := len(m.cfg.Layers) - 1
	sinkCells := m.cfg.Layers[sinkLayer].Nx * m.cfg.Layers[sinkLayer].Ny
	for li, l := range m.cfg.Layers {
		cw, ch := l.W/float64(l.Nx), l.H/float64(l.Ny)
		for iy := 0; iy < l.Ny; iy++ {
			for ix := 0; ix < l.Nx; ix++ {
				c := cell{
					layer: li,
					x:     -l.W/2 + float64(ix)*cw,
					y:     -l.H/2 + float64(iy)*ch,
					w:     cw,
					h:     ch,
					capJK: l.Material.VolumetricHeat * l.Thickness * cw * ch,
				}
				if li == sinkLayer {
					area := cw * ch
					total := l.W * l.H
					c.gAmbW = (1 / m.cfg.ConvectionR) * area / total
					c.capJK += m.cfg.ConvectionC / float64(sinkCells)
				}
				m.layers[li] = append(m.layers[li], len(m.cells))
				m.cells = append(m.cells, c)
			}
		}
	}
}

// buildConductances assembles the conductance matrix directly into CSR
// form. The RC grid couples each node to at most itself, four lateral
// neighbours and the overlapping cells of the layers above and below, so
// assembly is O(nnz): the vertical coupling enumerates only the lower-
// grid cells whose index range can overlap each upper cell instead of
// scanning the full cross product.
func (m *Model) buildConductances() {
	n := len(m.cells)
	b := linalg.NewCSRBuilder(n)
	m.ambRHS = linalg.NewVector(n)

	addPair := func(i, j int, g float64) {
		if g <= 0 {
			return
		}
		b.Add(i, i, g)
		b.Add(j, j, g)
		b.Add(i, j, -g)
		b.Add(j, i, -g)
	}

	// Lateral conductances inside each layer (4-neighbour grid).
	for li, l := range m.cfg.Layers {
		idx := m.layers[li]
		at := func(ix, iy int) int { return idx[iy*l.Nx+ix] }
		cw, ch := l.W/float64(l.Nx), l.H/float64(l.Ny)
		k, t := l.Material.Conductivity, l.Thickness
		for iy := 0; iy < l.Ny; iy++ {
			for ix := 0; ix < l.Nx; ix++ {
				if ix+1 < l.Nx {
					// Shared edge length ch, centre distance cw.
					addPair(at(ix, iy), at(ix+1, iy), k*t*ch/cw)
				}
				if iy+1 < l.Ny {
					addPair(at(ix, iy), at(ix, iy+1), k*t*cw/ch)
				}
			}
		}
	}

	// Vertical conductances between consecutive layers, coupling cells
	// by their area overlap through the two half-thickness resistances.
	for li := 0; li+1 < len(m.cfg.Layers); li++ {
		upper, lower := m.cfg.Layers[li], m.cfg.Layers[li+1]
		rPerArea := upper.Thickness/(2*upper.Material.Conductivity) +
			lower.Thickness/(2*lower.Material.Conductivity)
		lw, lh := lower.W/float64(lower.Nx), lower.H/float64(lower.Ny)
		lowIdx := m.layers[li+1]
		for _, ui := range m.layers[li] {
			uc := m.cells[ui]
			// Candidate lower-grid window covering the upper cell,
			// padded by one cell against floating-point edge cases;
			// cells outside it have zero overlap by construction.
			ix0 := clampGrid(int(math.Floor((uc.x+lower.W/2)/lw))-1, lower.Nx)
			ix1 := clampGrid(int(math.Floor((uc.x+uc.w+lower.W/2)/lw))+1, lower.Nx)
			iy0 := clampGrid(int(math.Floor((uc.y+lower.H/2)/lh))-1, lower.Ny)
			iy1 := clampGrid(int(math.Floor((uc.y+uc.h+lower.H/2)/lh))+1, lower.Ny)
			for iy := iy0; iy <= iy1; iy++ {
				for ix := ix0; ix <= ix1; ix++ {
					wi := lowIdx[iy*lower.Nx+ix]
					ov := overlap(uc, m.cells[wi])
					if ov <= 0 {
						continue
					}
					addPair(ui, wi, ov/rPerArea)
				}
			}
		}
	}

	// Ambient coupling: diagonal term plus RHS contribution.
	for i, c := range m.cells {
		if c.gAmbW > 0 {
			b.Add(i, i, c.gAmbW)
			m.ambRHS[i] = c.gAmbW * m.cfg.AmbientC
		}
	}
	m.gs = b.Build()
}

// clampGrid clamps a grid index into [0, n).
func clampGrid(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// overlap returns the overlapping area of two cells in m².
func overlap(a, b cell) float64 {
	w := math.Min(a.x+a.w, b.x+b.w) - math.Max(a.x, b.x)
	h := math.Min(a.y+a.h, b.y+b.h) - math.Max(a.y, b.y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// bindFloorplan maps floorplan blocks onto die-layer cells.
func (m *Model) bindFloorplan() error {
	die := m.cfg.Layers[0]
	// The floorplan uses lower-left-origin coordinates; the stack is
	// chip-centred. Centre the floorplan's bounding box on the die.
	offX := -m.fp.DieW / 2
	offY := -m.fp.DieH / 2
	if m.fp.DieW > die.W+1e-9 || m.fp.DieH > die.H+1e-9 {
		return fmt.Errorf("%w: floorplan (%.4f x %.4f m) larger than die layer (%.4f x %.4f m)",
			ErrConfig, m.fp.DieW, m.fp.DieH, die.W, die.H)
	}
	m.blockCells = make([][]cellShare, len(m.fp.Blocks))
	for bi, b := range m.fp.Blocks {
		bc := cell{x: b.X + offX, y: b.Y + offY, w: b.W, h: b.H}
		var total float64
		var shares []cellShare
		for _, ci := range m.layers[0] {
			ov := overlap(bc, m.cells[ci])
			if ov <= 0 {
				continue
			}
			shares = append(shares, cellShare{node: ci, fraction: ov})
			total += ov
		}
		if total <= 0 {
			return fmt.Errorf("%w: block %q does not overlap the die grid", ErrConfig, b.Name)
		}
		for i := range shares {
			shares[i].fraction /= total
			shares[i].weight = shares[i].fraction
		}
		m.blockCells[bi] = shares
	}
	return nil
}

// NumNodes returns the number of RC nodes in the model.
func (m *Model) NumNodes() int { return len(m.cells) }

// NumBlocks returns the number of floorplan blocks (cores).
func (m *Model) NumBlocks() int { return len(m.fp.Blocks) }

// Ambient returns the configured ambient temperature in °C.
func (m *Model) Ambient() float64 { return m.cfg.AmbientC }

// Floorplan returns the bound floorplan.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// Conductances returns the assembled conductance matrix in CSR form.
// The matrix is shared and must not be mutated.
func (m *Model) Conductances() *linalg.CSR { return m.gs }

// nodePower expands per-block power into per-node power.
func (m *Model) nodePower(blockPower []float64) (linalg.Vector, error) {
	p := linalg.NewVector(len(m.cells))
	if err := m.nodePowerInto(p, blockPower); err != nil {
		return nil, err
	}
	return p, nil
}

// nodePowerInto expands per-block power into per-node power without
// allocating; dst must have NumNodes length and is overwritten.
func (m *Model) nodePowerInto(dst linalg.Vector, blockPower []float64) error {
	if len(blockPower) != len(m.blockCells) {
		return fmt.Errorf("thermal: power vector length %d, want %d", len(blockPower), len(m.blockCells))
	}
	dst.Fill(0)
	for bi, shares := range m.blockCells {
		pw := blockPower[bi]
		if pw < 0 {
			return fmt.Errorf("thermal: negative power %g W for block %d", pw, bi)
		}
		for _, s := range shares {
			dst[s.node] += pw * s.fraction
		}
	}
	return nil
}

// blockTemps reduces node temperatures to per-block temperatures.
func (m *Model) blockTemps(nodeT linalg.Vector) []float64 {
	out := make([]float64, len(m.blockCells))
	m.blockTempsInto(out, nodeT)
	return out
}

// blockTempsInto reduces node temperatures into a caller-provided
// per-block slice of NumBlocks length.
func (m *Model) blockTempsInto(out []float64, nodeT linalg.Vector) {
	for bi, shares := range m.blockCells {
		var t float64
		for _, s := range shares {
			t += nodeT[s.node] * s.weight
		}
		out[bi] = t
	}
}

// SteadyState returns the steady-state temperature of every floorplan
// block (°C) for the given per-block power map (W).
func (m *Model) SteadyState(blockPower []float64) ([]float64, error) {
	nodeT, err := m.SteadyStateNodes(blockPower)
	if err != nil {
		return nil, err
	}
	return m.blockTemps(nodeT), nil
}

// SteadyStateNodes returns the steady-state temperature of every RC node.
func (m *Model) SteadyStateNodes(blockPower []float64) (linalg.Vector, error) {
	p, err := m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	p.AddScaled(1, m.ambRHS)
	if err := m.steady.solveInPlace(p); err != nil {
		return nil, err
	}
	return p, nil
}

// PeakSteadyState returns the maximum block temperature and its index.
func (m *Model) PeakSteadyState(blockPower []float64) (float64, int, error) {
	t, err := m.SteadyState(blockPower)
	if err != nil {
		return 0, -1, err
	}
	peak, at := linalg.Vector(t).Max()
	return peak, at, nil
}

// AmbientField returns the per-block steady-state temperature with zero
// power everywhere: the baseline each block sits at (≈ ambient). It is
// solved once at construction and reused.
func (m *Model) AmbientField() []float64 {
	return m.blockTemps(m.ambNodes)
}

// SteadyStateIterative solves the steady state with the sparse
// preconditioned-CG path regardless of the model's selected solver. It
// is retained for differential testing of the two paths; SteadyState is
// the production entry point and already uses CG on large models.
func (m *Model) SteadyStateIterative(blockPower []float64) ([]float64, error) {
	p, err := m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	p.AddScaled(1, m.ambRHS)
	x, _, err := linalg.SolveCG(m.gs, p, linalg.CGOptions{Tol: 1e-11})
	if err != nil {
		return nil, err
	}
	return m.blockTemps(x), nil
}

// transientFactor returns (building and caching on first use) the
// factored implicit-Euler system for step size dt. The cache makes
// repeated transients over one model — a sweep of boosting runs, or
// several app instances sharing a cached platform — factor each dt once.
func (m *Model) transientFactor(dt float64) (*transFactor, error) {
	m.transMu.Lock()
	defer m.transMu.Unlock()
	if tf, ok := m.transFacs[dt]; ok {
		return tf, nil
	}
	n := len(m.cells)
	capDt := linalg.NewVector(n)
	for i, c := range m.cells {
		capDt[i] = c.capJK / dt
	}
	var (
		fac *factor
		err error
	)
	if m.steady.sparse() {
		a, aerr := m.gs.AddDiagonal(capDt)
		if aerr != nil {
			return nil, aerr
		}
		fac, err = newSparseFactor(a, &m.counters)
	} else {
		a := m.gs.Dense()
		for i := 0; i < n; i++ {
			a.Add(i, i, capDt[i])
		}
		fac, err = newDenseFactor(a, &m.counters)
	}
	if err != nil {
		return nil, fmt.Errorf("thermal: transient matrix not SPD: %w", err)
	}
	tf := &transFactor{fac: fac, capDt: capDt}
	m.transFacs[dt] = tf
	return tf, nil
}
