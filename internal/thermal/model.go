package thermal

import (
	"context"
	"fmt"
	"math"
	"sync"

	"darksim/internal/floorplan"
	"darksim/internal/linalg"
	"darksim/internal/runner"
)

// cell is one RC node of the discretized stack.
type cell struct {
	layer int
	x, y  float64 // lower-left corner, chip-centred coordinates (m)
	w, h  float64
	capJK float64 // thermal capacitance in J/K
	gAmbW float64 // direct conductance to ambient in W/K (sink cells)
}

// Model is a compact RC thermal model bound to one floorplan.
type Model struct {
	cfg    Config
	fp     *floorplan.Floorplan
	cells  []cell
	layers [][]int // node indices per layer

	// g is the symmetric conductance matrix including ambient coupling
	// on the diagonal; steady state solves g·T = P + gAmb·Tamb.
	g      *linalg.Matrix
	chol   *linalg.Cholesky
	ambRHS linalg.Vector // gAmb·Tamb per node

	// blockCells[b] lists (node, fraction) pairs distributing block b's
	// power over die cells; fractions sum to 1.
	blockCells [][]cellShare

	// influence is the lazily computed block×block matrix of steady
	// state dT_i/dP_j in K/W, guarded by infOnce for concurrent callers.
	influence *linalg.Matrix
	infOnce   sync.Once

	// csr is the lazily built sparse conductance matrix for the
	// iterative (CG) solve path.
	csr     *linalg.CSR
	csrErr  error
	csrOnce sync.Once
}

type cellShare struct {
	node     int
	fraction float64 // of the block's power into this cell
	weight   float64 // of this cell in the block's readout temperature
}

// NewModel discretizes the stack and factors the conductance matrix.
func NewModel(fp *floorplan.Floorplan, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, fp: fp}
	m.buildCells()
	if err := m.buildConductances(); err != nil {
		return nil, err
	}
	if err := m.bindFloorplan(); err != nil {
		return nil, err
	}
	ch, err := linalg.NewCholesky(m.g)
	if err != nil {
		return nil, fmt.Errorf("thermal: conductance matrix not SPD (disconnected node?): %w", err)
	}
	m.chol = ch
	return m, nil
}

func (m *Model) buildCells() {
	m.layers = make([][]int, len(m.cfg.Layers))
	// Count sink cells first so the convection capacitance can be
	// distributed over them.
	sinkLayer := len(m.cfg.Layers) - 1
	sinkCells := m.cfg.Layers[sinkLayer].Nx * m.cfg.Layers[sinkLayer].Ny
	for li, l := range m.cfg.Layers {
		cw, ch := l.W/float64(l.Nx), l.H/float64(l.Ny)
		for iy := 0; iy < l.Ny; iy++ {
			for ix := 0; ix < l.Nx; ix++ {
				c := cell{
					layer: li,
					x:     -l.W/2 + float64(ix)*cw,
					y:     -l.H/2 + float64(iy)*ch,
					w:     cw,
					h:     ch,
					capJK: l.Material.VolumetricHeat * l.Thickness * cw * ch,
				}
				if li == sinkLayer {
					area := cw * ch
					total := l.W * l.H
					c.gAmbW = (1 / m.cfg.ConvectionR) * area / total
					c.capJK += m.cfg.ConvectionC / float64(sinkCells)
				}
				m.layers[li] = append(m.layers[li], len(m.cells))
				m.cells = append(m.cells, c)
			}
		}
	}
}

func (m *Model) buildConductances() error {
	n := len(m.cells)
	m.g = linalg.NewMatrix(n, n)
	m.ambRHS = linalg.NewVector(n)

	addPair := func(i, j int, g float64) {
		if g <= 0 {
			return
		}
		m.g.Add(i, i, g)
		m.g.Add(j, j, g)
		m.g.Add(i, j, -g)
		m.g.Add(j, i, -g)
	}

	// Lateral conductances inside each layer (4-neighbour grid).
	for li, l := range m.cfg.Layers {
		idx := m.layers[li]
		at := func(ix, iy int) int { return idx[iy*l.Nx+ix] }
		cw, ch := l.W/float64(l.Nx), l.H/float64(l.Ny)
		k, t := l.Material.Conductivity, l.Thickness
		for iy := 0; iy < l.Ny; iy++ {
			for ix := 0; ix < l.Nx; ix++ {
				if ix+1 < l.Nx {
					// Shared edge length ch, centre distance cw.
					addPair(at(ix, iy), at(ix+1, iy), k*t*ch/cw)
				}
				if iy+1 < l.Ny {
					addPair(at(ix, iy), at(ix, iy+1), k*t*cw/ch)
				}
			}
		}
	}

	// Vertical conductances between consecutive layers, coupling cells
	// by their area overlap through the two half-thickness resistances.
	for li := 0; li+1 < len(m.cfg.Layers); li++ {
		upper, lower := m.cfg.Layers[li], m.cfg.Layers[li+1]
		rPerArea := upper.Thickness/(2*upper.Material.Conductivity) +
			lower.Thickness/(2*lower.Material.Conductivity)
		for _, ui := range m.layers[li] {
			uc := m.cells[ui]
			for _, wi := range m.layers[li+1] {
				wc := m.cells[wi]
				ov := overlap(uc, wc)
				if ov <= 0 {
					continue
				}
				addPair(ui, wi, ov/rPerArea)
			}
		}
	}

	// Ambient coupling: diagonal term plus RHS contribution.
	for i, c := range m.cells {
		if c.gAmbW > 0 {
			m.g.Add(i, i, c.gAmbW)
			m.ambRHS[i] = c.gAmbW * m.cfg.AmbientC
		}
	}
	return nil
}

// overlap returns the overlapping area of two cells in m².
func overlap(a, b cell) float64 {
	w := math.Min(a.x+a.w, b.x+b.w) - math.Max(a.x, b.x)
	h := math.Min(a.y+a.h, b.y+b.h) - math.Max(a.y, b.y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// bindFloorplan maps floorplan blocks onto die-layer cells.
func (m *Model) bindFloorplan() error {
	die := m.cfg.Layers[0]
	// The floorplan uses lower-left-origin coordinates; the stack is
	// chip-centred. Centre the floorplan's bounding box on the die.
	offX := -m.fp.DieW / 2
	offY := -m.fp.DieH / 2
	if m.fp.DieW > die.W+1e-9 || m.fp.DieH > die.H+1e-9 {
		return fmt.Errorf("%w: floorplan (%.4f x %.4f m) larger than die layer (%.4f x %.4f m)",
			ErrConfig, m.fp.DieW, m.fp.DieH, die.W, die.H)
	}
	m.blockCells = make([][]cellShare, len(m.fp.Blocks))
	for bi, b := range m.fp.Blocks {
		bc := cell{x: b.X + offX, y: b.Y + offY, w: b.W, h: b.H}
		var total float64
		var shares []cellShare
		for _, ci := range m.layers[0] {
			ov := overlap(bc, m.cells[ci])
			if ov <= 0 {
				continue
			}
			shares = append(shares, cellShare{node: ci, fraction: ov})
			total += ov
		}
		if total <= 0 {
			return fmt.Errorf("%w: block %q does not overlap the die grid", ErrConfig, b.Name)
		}
		for i := range shares {
			shares[i].fraction /= total
			shares[i].weight = shares[i].fraction
		}
		m.blockCells[bi] = shares
	}
	return nil
}

// NumNodes returns the number of RC nodes in the model.
func (m *Model) NumNodes() int { return len(m.cells) }

// NumBlocks returns the number of floorplan blocks (cores).
func (m *Model) NumBlocks() int { return len(m.fp.Blocks) }

// Ambient returns the configured ambient temperature in °C.
func (m *Model) Ambient() float64 { return m.cfg.AmbientC }

// Floorplan returns the bound floorplan.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// nodePower expands per-block power into per-node power.
func (m *Model) nodePower(blockPower []float64) (linalg.Vector, error) {
	if len(blockPower) != len(m.blockCells) {
		return nil, fmt.Errorf("thermal: power vector length %d, want %d", len(blockPower), len(m.blockCells))
	}
	p := linalg.NewVector(len(m.cells))
	for bi, shares := range m.blockCells {
		pw := blockPower[bi]
		if pw < 0 {
			return nil, fmt.Errorf("thermal: negative power %g W for block %d", pw, bi)
		}
		for _, s := range shares {
			p[s.node] += pw * s.fraction
		}
	}
	return p, nil
}

// blockTemps reduces node temperatures to per-block temperatures.
func (m *Model) blockTemps(nodeT linalg.Vector) []float64 {
	out := make([]float64, len(m.blockCells))
	for bi, shares := range m.blockCells {
		var t float64
		for _, s := range shares {
			t += nodeT[s.node] * s.weight
		}
		out[bi] = t
	}
	return out
}

// SteadyState returns the steady-state temperature of every floorplan
// block (°C) for the given per-block power map (W).
func (m *Model) SteadyState(blockPower []float64) ([]float64, error) {
	nodeT, err := m.SteadyStateNodes(blockPower)
	if err != nil {
		return nil, err
	}
	return m.blockTemps(nodeT), nil
}

// SteadyStateNodes returns the steady-state temperature of every RC node.
func (m *Model) SteadyStateNodes(blockPower []float64) (linalg.Vector, error) {
	p, err := m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	p.AddScaled(1, m.ambRHS)
	m.chol.SolveInPlace(p)
	return p, nil
}

// PeakSteadyState returns the maximum block temperature and its index.
func (m *Model) PeakSteadyState(blockPower []float64) (float64, int, error) {
	t, err := m.SteadyState(blockPower)
	if err != nil {
		return 0, -1, err
	}
	peak, at := linalg.Vector(t).Max()
	return peak, at, nil
}

// InfluenceMatrix returns (computing on first use) the block×block matrix
// B with B[i][j] = steady-state temperature rise of block i per watt in
// block j (K/W). By linearity, T = B·P + Tambient-field, which is the
// foundation of the TSP computation.
//
// The columns are independent triangular solves against the shared (and
// immutable) Cholesky factorization, so they are computed in parallel.
func (m *Model) InfluenceMatrix() *linalg.Matrix {
	m.infOnce.Do(m.computeInfluence)
	return m.influence
}

func (m *Model) computeInfluence() {
	nb := len(m.blockCells)
	inf := linalg.NewMatrix(nb, nb)
	// Columns run on the shared pool; RHS buffers are recycled across
	// solves instead of allocated per column.
	var rhsPool sync.Pool
	rhsPool.New = func() any {
		v := linalg.NewVector(len(m.cells))
		return &v
	}
	// The per-column solves cannot fail, so the error is statically nil.
	_, _ = runner.MapN(context.Background(), nb, runner.Options{}, func(_ context.Context, j int) (struct{}, error) {
		vp := rhsPool.Get().(*linalg.Vector)
		rhs := *vp
		rhs.Fill(0)
		for _, s := range m.blockCells[j] {
			rhs[s.node] = s.fraction
		}
		m.chol.SolveInPlace(rhs)
		for i := 0; i < nb; i++ {
			var t float64
			for _, s := range m.blockCells[i] {
				t += rhs[s.node] * s.weight
			}
			inf.Set(i, j, t)
		}
		rhsPool.Put(vp)
		return struct{}{}, nil
	})
	m.influence = inf
}

// AmbientField returns the per-block steady-state temperature with zero
// power everywhere: the baseline each block sits at (≈ ambient).
func (m *Model) AmbientField() []float64 {
	rhs := m.ambRHS.Clone()
	m.chol.SolveInPlace(rhs)
	return m.blockTemps(rhs)
}

// csr caches the sparse form of the conductance matrix for the iterative
// path.
func (m *Model) csrMatrix() (*linalg.CSR, error) {
	m.csrOnce.Do(func() {
		m.csr, m.csrErr = linalg.NewCSRFromDense(m.g, 0)
	})
	return m.csr, m.csrErr
}

// SteadyStateIterative solves the same steady state as SteadyState with a
// Jacobi-preconditioned conjugate-gradient on the sparse conductance
// matrix instead of the dense Cholesky. The conductance matrix has ≈7
// nonzeros per row, so this path scales to chips far beyond the paper's
// 361 cores; on the paper-sized models it agrees with the direct solver
// to solver tolerance.
func (m *Model) SteadyStateIterative(blockPower []float64) ([]float64, error) {
	p, err := m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	p.AddScaled(1, m.ambRHS)
	a, err := m.csrMatrix()
	if err != nil {
		return nil, err
	}
	x, _, err := linalg.SolveCG(a, p, linalg.CGOptions{Tol: 1e-11})
	if err != nil {
		return nil, err
	}
	return m.blockTemps(x), nil
}
