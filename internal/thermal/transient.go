package thermal

import (
	"fmt"

	"darksim/internal/linalg"
)

// Transient advances the RC network in time with the unconditionally
// stable implicit (backward) Euler scheme:
//
//	C·(T⁺ − T)/dt = −G·T⁺ + P + P_amb
//	(C/dt + G)·T⁺ = (C/dt)·T + P + P_amb
//
// The left-hand matrix depends only on dt, so one Cholesky factorization
// serves the whole run; each step is a single triangular solve. This is
// what makes the paper's §6 boosting experiments (100 s at 1 ms control
// period, i.e. 10⁵ steps) tractable.
type Transient struct {
	m     *Model
	dt    float64
	chol  *linalg.Cholesky
	capDt linalg.Vector // C/dt per node
	t     linalg.Vector // current node temperatures
}

// NewTransient creates a transient integrator with step size dt (seconds),
// initialized to the ambient-only steady state (a cold chip).
func (m *Model) NewTransient(dt float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("%w: transient step %g s", ErrConfig, dt)
	}
	n := len(m.cells)
	a := m.g.Clone()
	capDt := linalg.NewVector(n)
	for i, c := range m.cells {
		capDt[i] = c.capJK / dt
		a.Add(i, i, capDt[i])
	}
	ch, err := linalg.NewCholesky(a)
	if err != nil {
		return nil, fmt.Errorf("thermal: transient matrix not SPD: %w", err)
	}
	tr := &Transient{m: m, dt: dt, chol: ch, capDt: capDt}
	// Start from the zero-power steady state.
	rhs := m.ambRHS.Clone()
	m.chol.SolveInPlace(rhs)
	tr.t = rhs
	return tr, nil
}

// Dt returns the integrator step size in seconds.
func (tr *Transient) Dt() float64 { return tr.dt }

// SetUniform resets every node to the given temperature.
func (tr *Transient) SetUniform(tempC float64) { tr.t.Fill(tempC) }

// SetSteadyState resets the state to the steady-state solution for the
// given per-block power map.
func (tr *Transient) SetSteadyState(blockPower []float64) error {
	nodeT, err := tr.m.SteadyStateNodes(blockPower)
	if err != nil {
		return err
	}
	tr.t = nodeT
	return nil
}

// Step advances the model by one dt under the given per-block power map
// and returns the resulting per-block temperatures.
func (tr *Transient) Step(blockPower []float64) ([]float64, error) {
	p, err := tr.m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	for i := range p {
		p[i] += tr.capDt[i]*tr.t[i] + tr.m.ambRHS[i]
	}
	tr.chol.SolveInPlace(p)
	tr.t = p
	return tr.m.blockTemps(tr.t), nil
}

// BlockTemps returns the current per-block temperatures.
func (tr *Transient) BlockTemps() []float64 { return tr.m.blockTemps(tr.t) }

// PeakBlockTemp returns the hottest block temperature and its index.
func (tr *Transient) PeakBlockTemp() (float64, int) {
	return linalg.Vector(tr.BlockTemps()).Max()
}
