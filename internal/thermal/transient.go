package thermal

import (
	"fmt"

	"darksim/internal/linalg"
)

// Transient advances the RC network in time with the unconditionally
// stable implicit (backward) Euler scheme:
//
//	C·(T⁺ − T)/dt = −G·T⁺ + P + P_amb
//	(C/dt + G)·T⁺ = (C/dt)·T + P + P_amb
//
// The left-hand matrix depends only on dt, so one factorization (dense
// path) or preconditioner (sparse path) serves the whole run, and the
// model caches it per dt across runs. On the dense path each step is a
// single triangular solve; on the sparse path each step is a CG solve
// warm-started from the previous temperatures, which converges in a
// handful of iterations at small dt because consecutive states are
// close. This is what makes the paper's §6 boosting experiments (100 s
// at 1 ms control period, i.e. 10⁵ steps) tractable.
type Transient struct {
	m  *Model
	dt float64
	tf *transFactor
	t  linalg.Vector // current node temperatures
	// cgs/x are the sparse path's private solver and solution buffer; a
	// Transient is not safe for concurrent Steps, so no pooling needed.
	cgs *linalg.CGSolver
	x   linalg.Vector
}

// NewTransient creates a transient integrator with step size dt (seconds),
// initialized to the ambient-only steady state (a cold chip). Repeated
// calls with the same dt share one cached factorization.
func (m *Model) NewTransient(dt float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("%w: transient step %g s", ErrConfig, dt)
	}
	tf, err := m.transientFactor(dt)
	if err != nil {
		return nil, err
	}
	tr := &Transient{m: m, dt: dt, tf: tf, t: m.ambNodes.Clone()}
	if tf.fac.sparse() {
		tr.cgs = tf.fac.newSolver()
		tr.x = linalg.NewVector(len(m.cells))
	}
	return tr, nil
}

// Dt returns the integrator step size in seconds.
func (tr *Transient) Dt() float64 { return tr.dt }

// SetUniform resets every node to the given temperature.
func (tr *Transient) SetUniform(tempC float64) { tr.t.Fill(tempC) }

// SetSteadyState resets the state to the steady-state solution for the
// given per-block power map.
func (tr *Transient) SetSteadyState(blockPower []float64) error {
	nodeT, err := tr.m.SteadyStateNodes(blockPower)
	if err != nil {
		return err
	}
	tr.t = nodeT
	if tr.x != nil && len(tr.x) != len(tr.t) {
		tr.x = linalg.NewVector(len(tr.t))
	}
	return nil
}

// Step advances the model by one dt under the given per-block power map
// and returns the resulting per-block temperatures.
func (tr *Transient) Step(blockPower []float64) ([]float64, error) {
	p, err := tr.m.nodePower(blockPower)
	if err != nil {
		return nil, err
	}
	for i := range p {
		p[i] += tr.tf.capDt[i]*tr.t[i] + tr.m.ambRHS[i]
	}
	if tr.cgs == nil {
		tr.tf.fac.chol.SolveInPlace(p)
		tr.tf.fac.record(linalg.CGStats{})
		tr.t = p
	} else {
		// Warm start from the current temperatures: at control-period
		// step sizes consecutive states differ by millikelvins, so CG
		// typically converges in a few iterations.
		copy(tr.x, tr.t)
		st, err := tr.cgs.Solve(p, tr.x)
		tr.tf.fac.record(st)
		if err != nil {
			return nil, fmt.Errorf("thermal: transient step: %w", err)
		}
		tr.t, tr.x = tr.x, tr.t
	}
	return tr.m.blockTemps(tr.t), nil
}

// BlockTemps returns the current per-block temperatures.
func (tr *Transient) BlockTemps() []float64 { return tr.m.blockTemps(tr.t) }

// PeakBlockTemp returns the hottest block temperature and its index.
func (tr *Transient) PeakBlockTemp() (float64, int) {
	return linalg.Vector(tr.BlockTemps()).Max()
}
