package thermal

import (
	"fmt"

	"darksim/internal/linalg"
)

// Transient advances the RC network in time with the unconditionally
// stable implicit (backward) Euler scheme:
//
//	C·(T⁺ − T)/dt = −G·T⁺ + P + P_amb
//	(C/dt + G)·T⁺ = (C/dt)·T + P + P_amb
//
// The left-hand matrix depends only on dt, so one factorization (dense
// path) or preconditioner (sparse path) serves the whole run, and the
// model caches it per dt across runs. On the dense path each step is a
// single triangular solve; on the sparse path each step is a CG solve
// warm-started from the previous temperatures, which converges in a
// handful of iterations at small dt because consecutive states are
// close. This is what makes the paper's §6 boosting experiments (100 s
// at 1 ms control period, i.e. 10⁵ steps) tractable.
//
// On top of the exact per-step path, MacroStep and AdvanceQuiet expose
// the macro-stepping fast path for intervals of frozen power (see
// macro.go). Step itself is untouched by the fast path: it performs the
// same floating-point operations as it always has, which is what the
// bit-for-bit differential pins rely on.
type Transient struct {
	m  *Model
	dt float64
	tf *transFactor
	t  linalg.Vector // current node temperatures
	// cgs/x are the sparse path's private solver and solution buffer; a
	// Transient is not safe for concurrent Steps, so no pooling needed.
	cgs *linalg.CGSolver
	x   linalg.Vector

	// rhs is the pooled node-power / right-hand-side buffer every step
	// assembles into; on the dense path it swaps with t after the solve.
	rhs linalg.Vector

	// Macro-path state: ladder vectors and the frozen-power steady-state
	// cache. tinf is T∞ for the power map frozen in tinfPow; steadyCG
	// warm-starts successive T∞ solves on the sparse path, where
	// consecutive frozen power maps differ only through leakage drift.
	b, scratch linalg.Vector
	tinf       linalg.Vector
	tinfPow    []float64
	haveTinf   bool
	steadyCG   *linalg.CGSolver
}

// NewTransient creates a transient integrator with step size dt (seconds),
// initialized to the ambient-only steady state (a cold chip). Repeated
// calls with the same dt share one cached factorization.
func (m *Model) NewTransient(dt float64) (*Transient, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("%w: transient step %g s", ErrConfig, dt)
	}
	tf, err := m.transientFactor(dt)
	if err != nil {
		return nil, err
	}
	n := len(m.cells)
	tr := &Transient{m: m, dt: dt, tf: tf, t: m.ambNodes.Clone(), rhs: linalg.NewVector(n)}
	if tf.fac.sparse() {
		tr.cgs = tf.fac.newSolver()
		tr.x = linalg.NewVector(n)
	}
	return tr, nil
}

// Dt returns the integrator step size in seconds.
func (tr *Transient) Dt() float64 { return tr.dt }

// SetUniform resets every node to the given temperature.
func (tr *Transient) SetUniform(tempC float64) { tr.t.Fill(tempC) }

// SetSteadyState resets the state to the steady-state solution for the
// given per-block power map.
func (tr *Transient) SetSteadyState(blockPower []float64) error {
	nodeT, err := tr.m.SteadyStateNodes(blockPower)
	if err != nil {
		return err
	}
	tr.t = nodeT
	if tr.x != nil && len(tr.x) != len(tr.t) {
		tr.x = linalg.NewVector(len(tr.t))
	}
	return nil
}

// Step advances the model by one dt under the given per-block power map
// and returns the resulting per-block temperatures.
func (tr *Transient) Step(blockPower []float64) ([]float64, error) {
	if err := tr.m.nodePowerInto(tr.rhs, blockPower); err != nil {
		return nil, err
	}
	if err := tr.stepNodes(); err != nil {
		return nil, err
	}
	return tr.m.blockTemps(tr.t), nil
}

// stepNodes performs one implicit-Euler step assuming tr.rhs holds the
// expanded node power; it completes the right-hand side and solves.
func (tr *Transient) stepNodes() error {
	p := tr.rhs
	for i := range p {
		p[i] += tr.tf.capDt[i]*tr.t[i] + tr.m.ambRHS[i]
	}
	if tr.cgs == nil {
		tr.tf.fac.chol.SolveInPlace(p)
		tr.tf.fac.record(linalg.CGStats{})
		tr.t, tr.rhs = p, tr.t
	} else {
		// Warm start from the current temperatures: at control-period
		// step sizes consecutive states differ by millikelvins, so CG
		// typically converges in a few iterations.
		copy(tr.x, tr.t)
		st, err := tr.cgs.Solve(p, tr.x)
		tr.tf.fac.record(st)
		if err != nil {
			return fmt.Errorf("thermal: transient step: %w", err)
		}
		tr.t, tr.x = tr.x, tr.t
	}
	return nil
}

// MacroSupported reports whether this model/dt pair can macro-step,
// building the kernel on first call. Models above the macro node gate
// always return false and keep the exact path.
func (tr *Transient) MacroSupported() bool {
	k, err := tr.tf.kernel(tr.m)
	return err == nil && k != nil
}

// MacroStep advances k implicit-Euler steps under a power map frozen for
// the whole interval and returns the resulting per-block temperatures.
// With the kernel available and k at least macroMinSteps the advance
// costs O(log k) fused matrix applies; otherwise it degrades to k exact
// steps of the frozen map. Against k exact steps the ladder agrees to
// ~1e-9 (see the property tests); it is NOT bit-identical, which is why
// the simulator only routes provably quiet intervals here.
func (tr *Transient) MacroStep(blockPower []float64, k int) ([]float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: macro step count %d", ErrConfig, k)
	}
	kern, err := tr.tf.kernel(tr.m)
	if err != nil {
		return nil, err
	}
	if kern == nil || k < macroMinSteps {
		return tr.stepFrozen(blockPower, k)
	}
	if err := tr.m.nodePowerInto(tr.rhs, blockPower); err != nil {
		return nil, err
	}
	tr.ensureMacroBufs()
	p := tr.rhs
	for i := range p {
		p[i] += tr.m.ambRHS[i]
	}
	if err := kern.ainv.MulVecInto(tr.b, p); err != nil {
		return nil, err
	}
	if err := kern.powers.Advance(k, tr.t, tr.b, tr.scratch); err != nil {
		return nil, err
	}
	return tr.m.blockTemps(tr.t), nil
}

// stepFrozen is the exact fallback of MacroStep: k ordinary steps with
// the node power expanded once.
func (tr *Transient) stepFrozen(blockPower []float64, k int) ([]float64, error) {
	tr.ensureMacroBufs()
	if err := tr.m.nodePowerInto(tr.b, blockPower); err != nil {
		return nil, err
	}
	for s := 0; s < k; s++ {
		copy(tr.rhs, tr.b)
		if err := tr.stepNodes(); err != nil {
			return nil, err
		}
	}
	return tr.m.blockTemps(tr.t), nil
}

// AdvanceQuiet advances k steps of a quiet interval — a stretch where
// the caller holds the power map constant — and returns the resulting
// per-block temperatures. Once the state is within snapTolC (°C, per
// node) of the frozen-power steady state it snaps there exactly, after
// which identical power maps advance for free. When maxSafeC > 0 and
// the frozen steady state would peak above it, AdvanceQuiet refuses
// (ok=false) without advancing, so the caller can fall back to exact
// per-period stepping and keep its thermal-emergency checks intact.
func (tr *Transient) AdvanceQuiet(blockPower []float64, k int, snapTolC, maxSafeC float64) (temps []float64, ok bool, err error) {
	if k <= 0 {
		return nil, false, fmt.Errorf("%w: quiet advance of %d steps", ErrConfig, k)
	}
	tinf, err := tr.frozenSteadyNodes(blockPower)
	if err != nil {
		return nil, false, err
	}
	if maxSafeC > 0 {
		peak, _ := linalg.Vector(tr.m.blockTemps(tinf)).Max()
		if peak > maxSafeC {
			return nil, false, nil
		}
	}
	if dist := nodeDistInf(tr.t, tinf); dist <= snapTolC {
		copy(tr.t, tinf)
		return tr.m.blockTemps(tr.t), true, nil
	}
	temps, err = tr.MacroStep(blockPower, k)
	if err != nil {
		return nil, false, err
	}
	// Post-advance snap: landing exactly on T∞ makes the *next* quiet
	// interval with a bitwise-identical power map free.
	if dist := nodeDistInf(tr.t, tinf); dist <= snapTolC {
		copy(tr.t, tinf)
		temps = tr.m.blockTemps(tr.t)
	}
	return temps, true, nil
}

// frozenSteadyNodes returns the steady-state node temperatures for a
// frozen power map, cached while the map stays bitwise identical — the
// steady state of a settled control loop is recomputed exactly once.
func (tr *Transient) frozenSteadyNodes(blockPower []float64) (linalg.Vector, error) {
	if tr.haveTinf && floatsEqual(tr.tinfPow, blockPower) {
		return tr.tinf, nil
	}
	tr.ensureMacroBufs()
	if err := tr.m.nodePowerInto(tr.scratch, blockPower); err != nil {
		return nil, err
	}
	rhs := tr.scratch
	rhs.AddScaled(1, tr.m.ambRHS)
	if !tr.m.steady.sparse() {
		tr.m.steady.chol.SolveInPlace(rhs)
		tr.m.steady.record(linalg.CGStats{})
		copy(tr.tinf, rhs)
	} else {
		if tr.steadyCG == nil {
			tr.steadyCG = tr.m.steady.newSolver()
		}
		// Warm start from the previous steady target (or the current
		// state on the first solve): successive frozen power maps differ
		// only by leakage drift, so CG converges in a few iterations.
		if !tr.haveTinf {
			copy(tr.tinf, tr.t)
		}
		st, err := tr.steadyCG.Solve(rhs, tr.tinf)
		tr.m.steady.record(st)
		if err != nil {
			return nil, fmt.Errorf("thermal: frozen steady state: %w", err)
		}
	}
	tr.tinfPow = append(tr.tinfPow[:0], blockPower...)
	tr.haveTinf = true
	return tr.tinf, nil
}

// ensureMacroBufs allocates the macro-path vectors on first use, so
// exact-only transients never pay for them.
func (tr *Transient) ensureMacroBufs() {
	if tr.b == nil {
		n := len(tr.t)
		tr.b = linalg.NewVector(n)
		tr.scratch = linalg.NewVector(n)
		tr.tinf = linalg.NewVector(n)
	}
}

// nodeDistInf returns ‖a−b‖∞.
func nodeDistInf(a, b linalg.Vector) float64 {
	d := 0.0
	for i, v := range a {
		if dv := v - b[i]; dv > d {
			d = dv
		} else if -dv > d {
			d = -dv
		}
	}
	return d
}

// floatsEqual reports bitwise equality of two float slices.
func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// BlockTemps returns the current per-block temperatures.
func (tr *Transient) BlockTemps() []float64 { return tr.m.blockTemps(tr.t) }

// PeakBlockTemp returns the hottest block temperature and its index.
func (tr *Transient) PeakBlockTemp() (float64, int) {
	return linalg.Vector(tr.BlockTemps()).Max()
}
