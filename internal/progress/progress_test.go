package progress

import (
	"context"
	"testing"

	"darksim/internal/report"
)

func TestSinkRidesTheContext(t *testing.T) {
	ctx := context.Background()
	if Enabled(ctx) {
		t.Fatal("bare context reports a sink")
	}
	// Emitting without a sink is a safe no-op.
	Emit(ctx, Point{Done: 1, Total: 1})

	var got []Point
	ctx = With(ctx, func(p Point) { got = append(got, p) })
	if !Enabled(ctx) {
		t.Fatal("context with sink reports Enabled() == false")
	}
	tbl := &report.Table{Title: "frag", Columns: []string{"v"}, Rows: [][]string{{"1"}}}
	Emit(ctx, Point{Table: tbl, Done: 1, Total: 2})
	Emit(ctx, Point{Done: 2, Total: 2})
	if len(got) != 2 || got[0].Table != tbl || got[1].Done != 2 {
		t.Fatalf("sink received %+v, want both points in order", got)
	}

	// A nil sink leaves the context untouched instead of poisoning it.
	if With(context.Background(), nil) != context.Background() {
		t.Error("With(nil) wrapped the context")
	}
}
