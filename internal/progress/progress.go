// Package progress carries a per-point result sink through a context.
//
// Long sweeps (the fig12 core-count sweep, the fig13 app×instances grid,
// a scenario's per-entry TDP fill) complete one independent point at a
// time; the async job runtime wants each point the moment it is done, as
// a report.Table fragment, so partial results can be persisted and
// streamed to subscribers while the sweep is still running.
//
// The sink rides on the context so the experiment signatures stay
// unchanged: a caller that wants streaming installs a sink with With,
// sweep loops publish fragments with Emit, and everything else pays a
// single nil check. Sinks must be safe for concurrent calls — parallel
// sweeps emit from worker goroutines in completion order.
package progress

import (
	"context"

	"darksim/internal/report"
)

// Point is one completed unit of a larger computation: a self-describing
// table fragment (typically one row in the shape of the final table) plus
// the completion count it represents. Done is the arrival rank of the
// point (1-based), Total the number of points the computation will emit;
// parallel sweeps emit in completion order, so a fragment's Done says how
// many points are finished, not which sweep position it holds — the
// fragment's own cells carry that.
type Point struct {
	Table *report.Table
	Done  int
	Total int
}

// Sink receives completed points. Implementations must tolerate
// concurrent calls from multiple goroutines.
type Sink func(Point)

// ctxKey is the private context key for the sink.
type ctxKey struct{}

// With returns a context carrying the sink. A nil sink returns ctx
// unchanged.
func With(ctx context.Context, s Sink) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// Enabled reports whether ctx carries a sink, so sweeps can skip building
// fragment tables nobody will see.
func Enabled(ctx context.Context) bool {
	return ctx.Value(ctxKey{}) != nil
}

// Emit publishes one point to the context's sink; without a sink it is a
// no-op.
func Emit(ctx context.Context, p Point) {
	if s, ok := ctx.Value(ctxKey{}).(Sink); ok {
		s(p)
	}
}
