package power_test

import (
	"fmt"

	"darksim/internal/power"
)

// ExampleCoreModel_Power evaluates Equation (1) at an operating point:
// dynamic switching plus temperature-dependent leakage plus the
// frequency-independent floor.
func ExampleCoreModel_Power() {
	m := power.CoreModel{
		CeffNF: 1.65, // swaptions' 22 nm effective capacitance
		PindW:  0.3,
		Leak:   power.DefaultLeakage22(),
	}
	const (
		alpha = 0.95
		vdd   = 1.0
		fGHz  = 2.6
		tempC = 80.0
	)
	fmt.Printf("dynamic: %.2f W\n", m.Dynamic(alpha, vdd, fGHz))
	fmt.Printf("leakage: %.2f W\n", m.Leak.Power(vdd, tempC))
	fmt.Printf("total:   %.2f W\n", m.Power(alpha, vdd, fGHz, tempC))
	// Output:
	// dynamic: 4.08 W
	// leakage: 0.90 W
	// total:   5.28 W
}

// ExampleFit recovers the model constants from measured samples, the
// Figure 3 workflow.
func ExampleFit() {
	truth := power.CoreModel{CeffNF: 2.0, PindW: 0.5, Leak: power.DefaultLeakage22()}
	var samples []power.Sample
	for f := 1.0; f <= 4.0; f += 0.5 {
		vdd := 0.5 + 0.22*f
		samples = append(samples, power.Sample{
			FGHz: f, Vdd: vdd, TempC: 60,
			PowerW: truth.Power(0.9, vdd, f, 60),
		})
	}
	fit, err := power.Fit(samples, truth.Leak, 0.9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("Ceff = %.2f nF, Pind = %.2f W\n", fit.CeffNF, fit.PindW)
	// Output: Ceff = 2.00 nF, Pind = 0.50 W
}
