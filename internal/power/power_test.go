package power

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/tech"
)

func TestLeakageShape(t *testing.T) {
	l := DefaultLeakage22()
	// Reference point.
	if got := l.Current(l.VddRef, l.TRef); math.Abs(got-l.I0) > 1e-12 {
		t.Errorf("Current at reference = %v, want I0 = %v", got, l.I0)
	}
	// Monotone in temperature.
	if l.Current(1.0, 90) <= l.Current(1.0, 80) {
		t.Errorf("leakage should grow with temperature")
	}
	// Monotone in voltage.
	if l.Current(1.1, 80) <= l.Current(1.0, 80) {
		t.Errorf("leakage should grow with voltage")
	}
	// Gated core leaks nothing.
	if l.Current(0, 80) != 0 || l.Power(0, 80) != 0 {
		t.Errorf("gated core should not leak")
	}
	// Power = V·I.
	if got, want := l.Power(0.9, 70), 0.9*l.Current(0.9, 70); got != want {
		t.Errorf("Power = %v, want %v", got, want)
	}
}

func TestLeakageScale(t *testing.T) {
	l := DefaultLeakage22()
	f, err := tech.FactorsFor(tech.Node16)
	if err != nil {
		t.Fatal(err)
	}
	s := l.Scale(f)
	if s.VddRef != l.VddRef*f.Vdd {
		t.Errorf("scaled VddRef = %v", s.VddRef)
	}
	if s.I0 != l.I0*f.Capacitance*f.Frequency {
		t.Errorf("scaled I0 = %v", s.I0)
	}
	if s.GammaT != l.GammaT || s.GammaV != l.GammaV {
		t.Errorf("sensitivities should not scale")
	}
}

func TestCoreModelPower(t *testing.T) {
	m := CoreModel{CeffNF: 2.0, PindW: 0.3, Leak: DefaultLeakage22()}
	// Dark core consumes nothing.
	if m.Power(1, 0, 0, 80) != 0 {
		t.Errorf("dark core should consume 0")
	}
	if m.Power(1, 0.9, 0, 80) != 0 || m.Power(1, 0, 2.0, 80) != 0 {
		t.Errorf("gated core should consume 0")
	}
	// Dynamic term: α·Ceff·V²·f = 0.5·2.0·1·2 = 2 W.
	if got := m.Dynamic(0.5, 1.0, 2.0); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("Dynamic = %v, want 2", got)
	}
	total := m.Power(0.5, 1.0, 2.0, 80)
	want := 2.0 + m.Leak.Power(1.0, 80) + 0.3
	if math.Abs(total-want) > 1e-12 {
		t.Errorf("Power = %v, want %v", total, want)
	}
}

func TestCoreModelScaleReducesSwitchingEnergy(t *testing.T) {
	m := CoreModel{CeffNF: 2.0, PindW: 0.3, Leak: DefaultLeakage22()}
	f, err := tech.FactorsFor(tech.Node8)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Scale(f)
	if s.CeffNF != 2.0*0.24 {
		t.Errorf("scaled Ceff = %v", s.CeffNF)
	}
	if s.PindW >= m.PindW {
		t.Errorf("Pind should shrink at 8 nm: %v", s.PindW)
	}
	// Energy per operation at nominal V/f must fall with scaling
	// (C·V² shrinks), even though frequency rises.
	e22 := m.CeffNF * 1.0 * 1.0
	e8 := s.CeffNF * (1.0 * f.Vdd) * (1.0 * f.Vdd)
	if e8 >= e22 {
		t.Errorf("switching energy should fall: 22nm %v vs 8nm %v", e22, e8)
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := CoreModel{CeffNF: 1.8, PindW: 0.4, Leak: DefaultLeakage22()}
	alpha := 0.9
	var samples []Sample
	for f := 0.5; f <= 4.0; f += 0.25 {
		vdd := 0.6 + 0.2*f // arbitrary but monotone pairing
		samples = append(samples, Sample{
			FGHz: f, Vdd: vdd, TempC: 75,
			PowerW: truth.Power(alpha, vdd, f, 75),
		})
	}
	got, err := Fit(samples, truth.Leak, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CeffNF-truth.CeffNF) > 1e-6 {
		t.Errorf("CeffNF = %v, want %v", got.CeffNF, truth.CeffNF)
	}
	if math.Abs(got.PindW-truth.PindW) > 1e-6 {
		t.Errorf("PindW = %v, want %v", got.PindW, truth.PindW)
	}
	if rms := got.RMSError(samples, alpha); rms > 1e-9 {
		t.Errorf("RMS = %v on noiseless data", rms)
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := CoreModel{CeffNF: 2.2, PindW: 0.2, Leak: DefaultLeakage22()}
	rng := rand.New(rand.NewSource(7))
	var samples []Sample
	for f := 0.5; f <= 4.0; f += 0.1 {
		vdd := 0.55 + 0.22*f
		p := truth.Power(1, vdd, f, 80) * (1 + 0.02*rng.NormFloat64())
		samples = append(samples, Sample{FGHz: f, Vdd: vdd, TempC: 80, PowerW: p})
	}
	got, err := Fit(samples, truth.Leak, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CeffNF-truth.CeffNF)/truth.CeffNF > 0.05 {
		t.Errorf("CeffNF = %v, want ≈%v", got.CeffNF, truth.CeffNF)
	}
	if got.RMSError(samples, 1) > 0.5 {
		t.Errorf("RMS too large: %v", got.RMSError(samples, 1))
	}
}

func TestFitErrors(t *testing.T) {
	leak := DefaultLeakage22()
	if _, err := Fit(nil, leak, 1); err == nil {
		t.Errorf("no samples should error")
	}
	if _, err := Fit([]Sample{{FGHz: 1, Vdd: 1, PowerW: 1}}, leak, 1); err == nil {
		t.Errorf("one sample should error")
	}
	two := []Sample{{FGHz: 1, Vdd: 1, PowerW: 2}, {FGHz: 2, Vdd: 1.1, PowerW: 4}}
	if _, err := Fit(two, leak, 0); err == nil {
		t.Errorf("zero alpha should error")
	}
	// Identical design rows make the normal equations singular.
	same := []Sample{{FGHz: 1, Vdd: 1, PowerW: 2}, {FGHz: 1, Vdd: 1, PowerW: 2}}
	if _, err := Fit(same, leak, 1); err == nil {
		t.Errorf("degenerate design should error")
	}
	// A decreasing power-vs-f relation yields non-physical Ceff.
	neg := []Sample{{FGHz: 1, Vdd: 1, PowerW: 10}, {FGHz: 4, Vdd: 1.4, PowerW: 1}}
	if _, err := Fit(neg, leak, 1); err == nil {
		t.Errorf("non-physical fit should error")
	}
}

func TestFitClampsSmallNegativeIntercept(t *testing.T) {
	// Noise-free data with Pind = 0 plus a leakage model that slightly
	// overestimates produces a tiny negative intercept; Fit must clamp it.
	truth := CoreModel{CeffNF: 1.0, PindW: 0, Leak: DefaultLeakage22()}
	over := truth.Leak
	over.I0 *= 1.05
	var samples []Sample
	for f := 1.0; f <= 3.0; f += 0.5 {
		vdd := 0.6 + 0.2*f
		samples = append(samples, Sample{FGHz: f, Vdd: vdd, TempC: 80, PowerW: truth.Power(1, vdd, f, 80)})
	}
	got, err := Fit(samples, over, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.PindW != 0 {
		t.Errorf("PindW = %v, want clamped 0", got.PindW)
	}
}

// Property: power is monotone in each of α, Vdd (for fixed f) and f.
func TestPowerMonotoneProperty(t *testing.T) {
	m := CoreModel{CeffNF: 1.5, PindW: 0.3, Leak: DefaultLeakage22()}
	f := func(a1, a2, v1, v2, f1, f2 float64) bool {
		norm := func(x, lo, hi float64) float64 { return lo + math.Mod(math.Abs(x), hi-lo) }
		aLo, aHi := norm(a1, 0.1, 1.0), norm(a2, 0.1, 1.0)
		if aLo > aHi {
			aLo, aHi = aHi, aLo
		}
		vLo, vHi := norm(v1, 0.4, 1.3), norm(v2, 0.4, 1.3)
		if vLo > vHi {
			vLo, vHi = vHi, vLo
		}
		fLo, fHi := norm(f1, 0.2, 4.4), norm(f2, 0.2, 4.4)
		if fLo > fHi {
			fLo, fHi = fHi, fLo
		}
		const temp = 80
		if m.Power(aLo, 1.0, 2.0, temp) > m.Power(aHi, 1.0, 2.0, temp)+1e-12 {
			return false
		}
		if m.Power(0.5, vLo, 2.0, temp) > m.Power(0.5, vHi, 2.0, temp)+1e-12 {
			return false
		}
		return m.Power(0.5, 1.0, fLo, temp) <= m.Power(0.5, 1.0, fHi, temp)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Error(err)
	}
}

// Property: fitting noiseless synthetic data recovers Ceff for random
// ground-truth models.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := CoreModel{
			CeffNF: 0.5 + 3*rng.Float64(),
			PindW:  rng.Float64(),
			Leak:   DefaultLeakage22(),
		}
		alpha := 0.3 + 0.7*rng.Float64()
		var samples []Sample
		for fr := 0.5; fr <= 4.0; fr += 0.5 {
			vdd := 0.5 + 0.2*fr
			samples = append(samples, Sample{FGHz: fr, Vdd: vdd, TempC: 70, PowerW: truth.Power(alpha, vdd, fr, 70)})
		}
		got, err := Fit(samples, truth.Leak, alpha)
		if err != nil {
			return false
		}
		return math.Abs(got.CeffNF-truth.CeffNF) < 1e-6 && math.Abs(got.PindW-truth.PindW) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
