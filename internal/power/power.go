// Package power implements the per-core power-consumption model of the
// paper's Equation (1):
//
//	P = α · Ceff · Vdd² · f  +  Vdd · Ileak(Vdd, T)  +  Pind
//
// where α is the core's activity factor (utilization), Ceff the effective
// switching capacitance of the running application, Vdd the supply voltage,
// f the clock frequency, Ileak the leakage current (dependent on voltage
// and on the core temperature T) and Pind the frequency-independent power
// of keeping the core in execution mode.
//
// Units: Ceff is carried in nanofarads and f in gigahertz, so the dynamic
// term α·Ceff[nF]·Vdd²·f[GHz] is directly in watts (1 nF · 1 GHz = 1 F/s).
//
// The temperature dependence of leakage couples the power model to the
// thermal model; internal/sim resolves the fixed point by iteration.
package power

import (
	"errors"
	"fmt"
	"math"

	"darksim/internal/linalg"
	"darksim/internal/tech"
)

// Leakage models the leakage current Ileak(Vdd, T). The standard compact
// form is an exponential in both the supply voltage and the temperature:
//
//	Ileak(Vdd, T) = I0 · exp(γv·(Vdd − VddRef)) · exp(γt·(T − TRef))
//
// with I0 the reference current at (VddRef, TRef). The exponential-in-T
// shape is what makes leakage a thermal-runaway concern in the dark-silicon
// literature; γt ≈ 0.01–0.03 /K is typical for the nodes studied.
type Leakage struct {
	I0     float64 // reference leakage current in amperes
	VddRef float64 // reference voltage in volts
	TRef   float64 // reference temperature in °C
	GammaV float64 // voltage sensitivity in 1/V
	GammaT float64 // temperature sensitivity in 1/K
}

// Current returns Ileak(vdd, tempC) in amperes. Power-gated cores
// (vdd == 0) leak nothing.
func (l Leakage) Current(vdd, tempC float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return l.I0 * math.Exp(l.GammaV*(vdd-l.VddRef)) * math.Exp(l.GammaT*(tempC-l.TRef))
}

// Power returns the leakage power Vdd·Ileak(Vdd, T) in watts.
func (l Leakage) Power(vdd, tempC float64) float64 {
	return vdd * l.Current(vdd, tempC)
}

// Scale derives the leakage model for a scaled node: the reference current
// scales with the capacitance factor (a proxy for device width × count at
// constant area utilization) and the reference voltage with the Vdd factor.
func (l Leakage) Scale(f tech.Factors) Leakage {
	out := l
	out.I0 = l.I0 * f.Capacitance * f.Frequency // more, faster transistors per core
	out.VddRef = l.VddRef * f.Vdd
	return out
}

// DefaultLeakage22 is the 22 nm baseline leakage model. The reference
// current is calibrated so leakage contributes roughly 10–20 % of a core's
// total power at the nominal operating point and 80 °C, consistent with the
// McPAT-era breakdowns the paper builds on.
func DefaultLeakage22() Leakage {
	return Leakage{
		I0:     0.9,   // A at (1.0 V, 80 °C)
		VddRef: 1.0,   // V
		TRef:   80.0,  // °C
		GammaV: 2.0,   // /V
		GammaT: 0.018, // /K
	}
}

// CoreModel is the full Equation (1) model for one core running one
// application.
type CoreModel struct {
	CeffNF float64 // effective switching capacitance in nF (application-specific)
	PindW  float64 // frequency-independent power in W
	Leak   Leakage
}

// Dynamic returns the dynamic power α·Ceff·Vdd²·f in watts.
func (m CoreModel) Dynamic(alpha, vdd, fGHz float64) float64 {
	return alpha * m.CeffNF * vdd * vdd * fGHz
}

// Power evaluates Equation (1) in watts. A core with fGHz == 0 and
// vdd == 0 is dark and consumes nothing.
func (m CoreModel) Power(alpha, vdd, fGHz, tempC float64) float64 {
	if vdd <= 0 || fGHz <= 0 {
		return 0
	}
	return m.Dynamic(alpha, vdd, fGHz) + m.Leak.Power(vdd, tempC) + m.PindW
}

// Scale derives the model for a scaled technology node. Ceff scales with
// the capacitance factor; Pind (dominated by always-on logic and clocking)
// scales like dynamic power at the nominal point: Capacitance·Vdd².
func (m CoreModel) Scale(f tech.Factors) CoreModel {
	return CoreModel{
		CeffNF: m.CeffNF * f.Capacitance,
		PindW:  m.PindW * f.Capacitance * f.Vdd * f.Vdd * f.Frequency,
		Leak:   m.Leak.Scale(f),
	}
}

// Sample is one observed operating point, e.g. a row of a McPAT-style
// power trace: the core ran at (FGHz, Vdd), its temperature was TempC, and
// the measured total power was PowerW.
type Sample struct {
	FGHz   float64
	Vdd    float64
	TempC  float64
	PowerW float64
}

// ErrFit is returned when model fitting is ill-posed.
var ErrFit = errors.New("power: cannot fit model")

// Fit estimates CeffNF and PindW from measured samples by linear least
// squares, given a known leakage model and activity factor. This mirrors
// the paper's Figure 3, where Equation (1) is fit to McPAT results for
// every application. At least two samples at distinct (Vdd²·f) points are
// required.
func Fit(samples []Sample, leak Leakage, alpha float64) (CoreModel, error) {
	if len(samples) < 2 {
		return CoreModel{}, fmt.Errorf("%w: need at least 2 samples, got %d", ErrFit, len(samples))
	}
	if alpha <= 0 {
		return CoreModel{}, fmt.Errorf("%w: activity factor must be positive", ErrFit)
	}
	a := linalg.NewMatrix(len(samples), 2)
	b := linalg.NewVector(len(samples))
	xMin, xMax := math.Inf(1), math.Inf(-1)
	for i, s := range samples {
		x := alpha * s.Vdd * s.Vdd * s.FGHz
		xMin, xMax = math.Min(xMin, x), math.Max(xMax, x)
		a.Set(i, 0, x) // coefficient of CeffNF
		a.Set(i, 1, 1) // coefficient of PindW
		b[i] = s.PowerW - leak.Power(s.Vdd, s.TempC)
	}
	if xMax-xMin < 1e-9*(1+math.Abs(xMax)) {
		return CoreModel{}, fmt.Errorf("%w: all samples share the same Vdd²·f point", ErrFit)
	}
	coef, err := linalg.SolveLeastSquares(a, b)
	if err != nil {
		return CoreModel{}, fmt.Errorf("%w: %v", ErrFit, err)
	}
	m := CoreModel{CeffNF: coef[0], PindW: coef[1], Leak: leak}
	if m.CeffNF <= 0 {
		return CoreModel{}, fmt.Errorf("%w: fitted Ceff = %.3g nF is non-physical", ErrFit, m.CeffNF)
	}
	if m.PindW < 0 {
		// Small negative intercepts can arise from noise; clamp at zero
		// rather than failing, matching common practice when regressing
		// simulator output.
		m.PindW = 0
	}
	return m, nil
}

// RMSError returns the root-mean-square error of the model against the
// samples, in watts; used to report fit quality (Figure 3).
func (m CoreModel) RMSError(samples []Sample, alpha float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range samples {
		d := m.Power(alpha, s.Vdd, s.FGHz, s.TempC) - s.PowerW
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(samples)))
}
