package endofscaling

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"darksim/internal/apps"
	"darksim/internal/tech"
)

// budget960 is the 22 nm 100-core chip's core-array area with the paper's
// pessimistic TDP.
func budget960() ChipBudget { return ChipBudget{AreaMM2: 960, TDPW: 185} }

func TestDarkSiliconGrowsWithScaling(t *testing.T) {
	// The ISCA'11 headline: at a fixed area and power budget, dark
	// silicon grows monotonically with scaling (more cores fit, the
	// budget powers relatively fewer).
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	ests, err := Sweep(s, budget960(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 4 {
		t.Fatalf("sweep = %d nodes", len(ests))
	}
	prev := -1.0
	for _, e := range ests {
		if e.DarkFraction < prev-1e-9 {
			t.Errorf("dark fraction should grow with scaling: %+v", ests)
		}
		prev = e.DarkFraction
		if e.ActiveCores > e.AreaCores {
			t.Errorf("%v: active %d exceeds area cores %d", e.Node, e.ActiveCores, e.AreaCores)
		}
	}
	// The model predicts massive dark silicon at the smallest node —
	// the over-pessimism the paper pushes back on.
	last := ests[len(ests)-1]
	if last.Node != tech.Node8 || last.DarkFraction < 0.5 {
		t.Errorf("8 nm baseline dark fraction = %.2f, expected > 0.5", last.DarkFraction)
	}
}

func TestAreaCoreCounts(t *testing.T) {
	s, _ := apps.ByName("swaptions")
	e, err := DarkSilicon(tech.Node22, s, budget960(), 80)
	if err != nil {
		t.Fatal(err)
	}
	// 960 mm² / 9.6 mm² = 100 cores at 22 nm.
	if e.AreaCores != 100 {
		t.Errorf("22 nm area cores = %d, want 100", e.AreaCores)
	}
	e16, err := DarkSilicon(tech.Node16, s, budget960(), 80)
	if err != nil {
		t.Fatal(err)
	}
	// 960 / 5.1 ≈ 188 cores at 16 nm.
	if e16.AreaCores < 185 || e16.AreaCores > 190 {
		t.Errorf("16 nm area cores = %d", e16.AreaCores)
	}
}

func TestDarkSiliconErrors(t *testing.T) {
	s, _ := apps.ByName("swaptions")
	if _, err := DarkSilicon(tech.Node16, s, ChipBudget{AreaMM2: 0, TDPW: 185}, 80); err == nil {
		t.Errorf("zero area should error")
	}
	if _, err := DarkSilicon(tech.Node16, s, ChipBudget{AreaMM2: 960, TDPW: 0}, 80); err == nil {
		t.Errorf("zero TDP should error")
	}
	if _, err := DarkSilicon(tech.Node(14), s, budget960(), 80); err == nil {
		t.Errorf("unknown node should error")
	}
	if _, err := DarkSilicon(tech.Node16, s, ChipBudget{AreaMM2: 1, TDPW: 185}, 80); err == nil {
		t.Errorf("sub-core area should error")
	}
	if _, err := Sweep(s, ChipBudget{AreaMM2: -1, TDPW: 1}, 80); err == nil {
		t.Errorf("sweep with bad budget should error")
	}
}

func TestSpeedupBound(t *testing.T) {
	s, _ := apps.ByName("swaptions")
	e22, err := DarkSilicon(tech.Node22, s, budget960(), 80)
	if err != nil {
		t.Fatal(err)
	}
	// At the baseline node the serial factor is 1, so the bound is pure
	// Amdahl over the active cores.
	sp, err := e22.SpeedupBound(0.75)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (0.25 + 0.75/float64(e22.ActiveCores))
	if math.Abs(sp-want) > 1e-9 {
		t.Errorf("22 nm bound = %v, want %v", sp, want)
	}
	// Invalid fraction.
	if _, err := e22.SpeedupBound(1.5); err != nil {
		// expected
	} else {
		t.Errorf("invalid parallel fraction should error")
	}
	// Zero active cores gives zero speedup.
	zero := Estimate{Node: tech.Node8, AreaCores: 10}
	if sp, err := zero.SpeedupBound(0.9); err != nil || sp != 0 {
		t.Errorf("zero-active bound = %v, %v", sp, err)
	}
	// Speedup saturates far below the core count: the "end of multicore
	// scaling" message.
	e8, err := DarkSilicon(tech.Node8, s, budget960(), 80)
	if err != nil {
		t.Fatal(err)
	}
	sp8, err := e8.SpeedupBound(0.75)
	if err != nil {
		t.Fatal(err)
	}
	if sp8 > 10 {
		t.Errorf("8 nm Amdahl bound %.1f should saturate near 1/(1-p) scaled", sp8)
	}
	if sp8 <= 0 {
		t.Errorf("8 nm bound should be positive")
	}
}

func TestBaselineOverestimatesVsPaper22nm(t *testing.T) {
	// The paper's complaint about [6]: "this work predicted that the
	// dark silicon in 22 nm would exceed 50% of the total chip area,
	// which has not been observed". Our baseline reproduces a
	// qualitatively similar over-estimate once the budget is tightened
	// the way [6]'s fixed-envelope analysis does (the 22 nm chip
	// saturates its area budget, so dark silicon comes from power).
	s, _ := apps.ByName("swaptions")
	tight := ChipBudget{AreaMM2: 960, TDPW: 120}
	e, err := DarkSilicon(tech.Node22, s, tight, 80)
	if err != nil {
		t.Fatal(err)
	}
	if e.DarkFraction < 0.3 {
		t.Errorf("tight-budget 22 nm dark fraction = %.2f; baseline should over-estimate", e.DarkFraction)
	}
}

// Property: the baseline's dark fraction is within [0, 1], shrinks (or
// holds) as the TDP grows, and never activates more cores than fit.
func TestBaselineMonotoneInBudgetProperty(t *testing.T) {
	s, err := apps.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		node := []tech.Node{tech.Node22, tech.Node16, tech.Node11, tech.Node8}[rng.Intn(4)]
		area := 200 + 1000*rng.Float64()
		tdpLo := 50 + 200*rng.Float64()
		tdpHi := tdpLo + 100*rng.Float64()
		lo, err := DarkSilicon(node, s, ChipBudget{AreaMM2: area, TDPW: tdpLo}, 80)
		if err != nil {
			return false
		}
		hi, err := DarkSilicon(node, s, ChipBudget{AreaMM2: area, TDPW: tdpHi}, 80)
		if err != nil {
			return false
		}
		if lo.DarkFraction < 0 || lo.DarkFraction > 1 {
			return false
		}
		return hi.DarkFraction <= lo.DarkFraction+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
